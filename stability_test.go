package userv6

import "testing"

// TestShapeStabilityAcrossSeeds re-checks the headline orderings on two
// additional seeds: the findings must be properties of the model, not of
// one random draw.
func TestShapeStabilityAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed stability is slow")
	}
	for _, seed := range []uint64{11, 29} {
		seed := seed
		t.Run("", func(t *testing.T) {
			sim := NewSim(DefaultScenario(6_000).WithSeed(seed))

			// Weekly medians: v6 > v4.
			f2 := sim.Fig2()
			if f2.WeekV6.Median() <= f2.WeekV4.Median() {
				t.Errorf("seed %d: weekly medians v6 %d <= v4 %d",
					seed, f2.WeekV6.Median(), f2.WeekV4.Median())
			}

			// Lifespans: v6 far fresher than v4.
			ls := sim.Fig5And6(false)
			if ls.AgeV6.CDFAt(0) < ls.AgeV4.CDFAt(0)+0.15 {
				t.Errorf("seed %d: freshness gap %.3f vs %.3f",
					seed, ls.AgeV6.CDFAt(0), ls.AgeV4.CDFAt(0))
			}

			// Users per address: v6 nearly single-user.
			ipc := sim.IPCentricWeek()
			if ipc.V6[128].UsersPerPrefix().CDFAt(1) < 0.9 {
				t.Errorf("seed %d: v6 single-user share %.3f",
					seed, ipc.V6[128].UsersPerPrefix().CDFAt(1))
			}
			if ipc.V4.UsersPerPrefix().CDFAt(1) > 0.7 {
				t.Errorf("seed %d: v4 single-user share %.3f too high",
					seed, ipc.V4.UsersPerPrefix().CDFAt(1))
			}

			// ROC: v4 recall tops at t=0, v6 dominates at low FPR.
			roc := sim.Fig11()
			pv4, _ := roc.Curves["IPv4"].At(0)
			p64, _ := roc.Curves["/64"].At(0)
			if pv4.TPR <= p64.TPR {
				t.Errorf("seed %d: v4 TPR %.3f <= /64 TPR %.3f", seed, pv4.TPR, p64.TPR)
			}

			// Outliers: heavy v6 in the gateway ASN.
			out := sim.Outliers()
			if out.V6Concentration.Heavy > 0 && out.V6Concentration.TopASN != 20057 {
				t.Errorf("seed %d: heavy v6 ASN = %d", seed, out.V6Concentration.TopASN)
			}
			if out.V4MaxUsers <= out.V6MaxUsers {
				t.Errorf("seed %d: outlier ordering: v4 %d <= v6 %d",
					seed, out.V4MaxUsers, out.V6MaxUsers)
			}
		})
	}
}
