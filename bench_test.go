package userv6

// The benchmark harness: one testing.B benchmark per table and figure in
// the paper's evaluation. Each benchmark regenerates its experiment on
// the synthetic substrate and reports the headline statistics as custom
// benchmark metrics (so `go test -bench` output doubles as a results
// table; EXPERIMENTS.md records the paper-vs-measured comparison).
//
// Benchmarks intentionally run at a modest population so the full sweep
// completes quickly; scale up with the cmd/userv6 harness for tighter
// numbers.

import (
	"sync"
	"testing"

	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

const benchUsers = 8_000

var (
	benchSimOnce sync.Once
	benchSim     *Sim
)

func getBenchSim() *Sim {
	benchSimOnce.Do(func() {
		benchSim = NewSim(DefaultScenario(benchUsers))
	})
	return benchSim
}

// BenchmarkFig1 regenerates the daily IPv6 prevalence series (Figure 1).
func BenchmarkFig1(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		days := sim.Fig1(simtime.AnalysisWeekStart, simtime.AnalysisWeekEnd)
		if i == b.N-1 {
			last := days[len(days)-1]
			b.ReportMetric(last.UserShare*100, "userV6_%")
			b.ReportMetric(last.ReqShare*100, "reqV6_%")
		}
	}
}

// BenchmarkTable1 regenerates the top-ASN IPv6 ratio table (Table 1).
func BenchmarkTable1(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		r := sim.Table1(AnalysisWeek())
		if i == b.N-1 && len(r.Rows) > 0 {
			b.ReportMetric(r.Rows[0].Ratio*100, "topASN_ratio_%")
			b.ReportMetric(r.ZeroShare*100, "zeroV6_ASNs_%")
			b.ReportMetric(r.UnderTenShare*100, "under10_ASNs_%")
		}
	}
}

// BenchmarkTable2 regenerates the country ratio comparison (Table 2 /
// Figure 12).
func BenchmarkTable2(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		r := sim.Table2()
		if i == b.N-1 {
			b.ReportMetric(r.April[0].Ratio*100, "topCountry_%")
			b.ReportMetric((r.GermanyApr-r.GermanyJan)*100, "germany_shift_pp")
		}
	}
}

// BenchmarkClientAddrPatterns regenerates the §4.4 address structure
// summary.
func BenchmarkClientAddrPatterns(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		p := sim.ClientAddrPatterns()
		if i == b.N-1 {
			b.ReportMetric(p.EUI64Share*100, "eui64_%")
			b.ReportMetric(p.EUI64IIDReuse*100, "iid_reuse_%")
			b.ReportMetric((p.TeredoShare+p.SixToFourShare)*100, "transition_%")
		}
	}
}

// BenchmarkFig2 regenerates addresses-per-user (Figure 2).
func BenchmarkFig2(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		r := sim.Fig2()
		if i == b.N-1 {
			b.ReportMetric(float64(r.WeekV4.Median()), "v4_week_median")
			b.ReportMetric(float64(r.WeekV6.Median()), "v6_week_median")
			b.ReportMetric(r.DayV4.CDFAt(1)*100, "v4_day_single_%")
			b.ReportMetric(r.DayV6.CDFAt(1)*100, "v6_day_single_%")
		}
	}
}

// BenchmarkFig3 regenerates addresses-per-abusive-account (Figure 3).
func BenchmarkFig3(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		r := sim.Fig3()
		if i == b.N-1 {
			b.ReportMetric(r.DayV4.CDFAt(1)*100, "v4_day_single_%")
			b.ReportMetric(r.DayV6.CDFAt(1)*100, "v6_day_single_%")
		}
	}
}

// BenchmarkFig4 regenerates prefixes-per-entity (Figure 4a/4b).
func BenchmarkFig4(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		r := sim.Fig4()
		if i == b.N-1 {
			for _, s := range r.Users {
				switch s.Length {
				case 64:
					b.ReportMetric(s.One*100, "users_one64_%")
				case 128:
					b.ReportMetric(s.One*100, "users_one128_%")
				}
			}
		}
	}
}

// BenchmarkFig5 regenerates address lifespans (Figure 5).
func BenchmarkFig5(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		r := sim.Fig5And6(false)
		if i == b.N-1 {
			b.ReportMetric(r.AgeV4.CDFAt(0)*100, "v4_fresh_%")
			b.ReportMetric(r.AgeV6.CDFAt(0)*100, "v6_fresh_%")
			b.ReportMetric(r.AgeV4.FracAbove(7)*100, "v4_gt7d_%")
			b.ReportMetric(r.AgeV6.FracAbove(7)*100, "v6_gt7d_%")
		}
	}
}

// BenchmarkFig6 regenerates prefix lifespans (Figure 6a/6b).
func BenchmarkFig6(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		r := sim.Fig5And6(false)
		if i == b.N-1 {
			for _, fs := range r.FreshV6 {
				switch fs.Length {
				case 64:
					b.ReportMetric(fs.Within1*100, "v6_64_fresh1d_%")
				case 128:
					b.ReportMetric(fs.Within1*100, "v6_128_fresh1d_%")
				}
			}
			for _, fs := range r.FreshV4 {
				if fs.Length == 32 {
					b.ReportMetric(fs.Within1*100, "v4_32_fresh1d_%")
				}
			}
		}
	}
}

// BenchmarkFig7 regenerates users-per-address (Figure 7).
func BenchmarkFig7(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		r := sim.IPCentricWeek()
		if i == b.N-1 {
			b.ReportMetric(r.V4.UsersPerPrefix().CDFAt(1)*100, "v4_single_%")
			b.ReportMetric(r.V6[128].UsersPerPrefix().CDFAt(1)*100, "v6_single_%")
		}
	}
}

// BenchmarkFig8 regenerates populations on abusive addresses (Figure 8).
func BenchmarkFig8(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		r := sim.IPCentricWeek()
		if i == b.N-1 {
			b.ReportMetric(r.V4.AbusivePerAbusivePrefix().CDFAt(1)*100, "v4_1AA_%")
			b.ReportMetric(r.V6[128].AbusivePerAbusivePrefix().CDFAt(1)*100, "v6_1AA_%")
			b.ReportMetric(r.V6[128].BenignPerAbusivePrefix().CDFAt(0)*100, "v6_0benign_%")
			b.ReportMetric(r.V4.BenignPerAbusivePrefix().FracAbove(10)*100, "v4_gt10benign_%")
		}
	}
}

// BenchmarkFig9 regenerates users-per-prefix by length (Figure 9).
func BenchmarkFig9(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		r := sim.IPCentricWeek()
		if i == b.N-1 {
			b.ReportMetric(r.V6[64].UsersPerPrefix().CDFAt(1)*100, "v6_64_single_%")
			b.ReportMetric(r.V6[48].UsersPerPrefix().CDFAt(1)*100, "v6_48_single_%")
			b.ReportMetric(r.V4.UsersPerPrefix().CDFAt(1)*100, "v4_single_%")
		}
	}
}

// BenchmarkFig10 regenerates abusive populations per prefix (Fig 10).
func BenchmarkFig10(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		r := sim.IPCentricWeek()
		if i == b.N-1 {
			b.ReportMetric(r.V6[64].AbusivePerAbusivePrefix().CDFAt(1)*100, "v6_64_1AA_%")
			b.ReportMetric(r.V6[56].AbusivePerAbusivePrefix().CDFAt(1)*100, "v6_56_1AA_%")
			b.ReportMetric(r.V6[64].BenignPerAbusivePrefix().CDFAt(1)*100, "v6_64_le1benign_%")
		}
	}
}

// BenchmarkFig11 regenerates the actioning ROC curves (Figure 11).
func BenchmarkFig11(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		r := sim.Fig11()
		if i == b.N-1 {
			if p, ok := r.Curves["/128"].At(0); ok {
				b.ReportMetric(p.TPR*100, "v6_128_TPR0_%")
			}
			if p, ok := r.Curves["/64"].At(0); ok {
				b.ReportMetric(p.TPR*100, "v6_64_TPR0_%")
			}
			if p, ok := r.Curves["IPv4"].At(0); ok {
				b.ReportMetric(p.TPR*100, "v4_TPR0_%")
				b.ReportMetric(p.FPR*100, "v4_FPR0_%")
			}
		}
	}
}

// BenchmarkOutliers regenerates the RQ3 outlier summary (§5.1.3/§6.1.3).
func BenchmarkOutliers(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		r := sim.Outliers()
		if i == b.N-1 {
			b.ReportMetric(float64(r.V4MaxUsers), "v4_max_users")
			b.ReportMetric(float64(r.V6MaxUsers), "v6_max_users")
			b.ReportMetric(r.V6Concentration.TopASNShare*100, "heavy_topASN_%")
		}
	}
}

// BenchmarkAdvise regenerates the §7.2 policy advisor end to end.
func BenchmarkAdvise(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		a := sim.Advise(0.001)
		if i == b.N-1 {
			b.ReportMetric(float64(a.BlocklistGranularity), "granularity")
			b.ReportMetric(float64(a.BlocklistTTLDays), "ttl_days")
		}
	}
}

// BenchmarkGenerateWeek measures raw telemetry generation throughput.
func BenchmarkGenerateWeek(b *testing.B) {
	sim := getBenchSim()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = 0
		sim.Generate(simtime.AnalysisWeekStart, simtime.AnalysisWeekEnd, func(o telemetry.Observation) { n++ })
	}
	b.ReportMetric(float64(n), "observations")
}

// BenchmarkNewSim measures world + population construction.
func BenchmarkNewSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = NewSim(DefaultScenario(benchUsers))
	}
}

// BenchmarkAblationNoGateways quantifies the gateway carrier's role in
// the heavy-outlier finding: without it, the heavy IPv6 population
// collapses (the DESIGN.md ablation on structured-IID gateways).
func BenchmarkAblationNoGateways(b *testing.B) {
	sc := DefaultScenario(benchUsers)
	sc.Abuse.GatewayW = 0
	sim := NewSim(sc)
	for i := 0; i < b.N; i++ {
		r := sim.Outliers()
		if i == b.N-1 {
			b.ReportMetric(float64(r.V6HeavyAddrs), "v6_heavy_addrs")
		}
	}
}

// BenchmarkAblationNoIIDRotation quantifies privacy-extension rotation:
// freezing IIDs collapses the v6 address-per-user and lifespan gaps.
func BenchmarkAblationNoIIDRotation(b *testing.B) {
	sc := DefaultScenario(benchUsers)
	sim := NewSim(sc)
	// Freeze rotation by reconfiguring every SLAAC network in place.
	for _, n := range sim.World.Networks() {
		if n.V6.IIDRotationDays > 0 {
			n.V6.IIDRotationDays = 0
		}
	}
	for i := 0; i < b.N; i++ {
		r := sim.Fig5And6(false)
		if i == b.N-1 {
			b.ReportMetric(r.AgeV6.CDFAt(0)*100, "v6_fresh_%")
		}
	}
}
