package userv6

// The execute layer of the source/plan/execute analysis stack. A
// dataset.Source names the parts of one logical telemetry corpus (a
// merged file, a sharded export's manifest, a bare part list), a
// core.Plan picks the execution mode, and AnalyzeSource runs the plan:
// per part, decode workers fan out exactly as they would over a single
// file, and because a sharded export's parts cover disjoint user
// ranges, worker-local analyzer replicas fold across parts exactly like
// generation shards — so analyzing a manifest directly is byte-identical
// to merging it first and analyzing the merged file, minus the merge.

import (
	"context"
	"fmt"
	"path/filepath"

	"userv6/internal/core"
	"userv6/internal/dataset"
	"userv6/internal/telemetry"
)

// AnalyzeOptions configures one analysis run over a Source.
type AnalyzeOptions struct {
	// Workers is the decode/analysis pool size: <= 0 means GOMAXPROCS,
	// 1 means explicitly single-threaded (under ModeAuto that selects
	// the sequential reference path).
	Workers int
	// Tolerant selects the salvage read on every part: corrupt blocks
	// are skipped and the returned report says what the results
	// describe. Strict mode additionally verifies each part's declared
	// whole-file checksum (when the source carries one) before reading.
	Tolerant bool
	// Mode is the requested execution mode; core.RequestAuto picks the
	// fastest exact one.
	Mode core.ModeRequest
}

// PlanSource resolves the execution plan for analyzing src with set
// under opts, without running anything — the CLI's -explain flag, and
// the first half of AnalyzeSource.
func PlanSource(src dataset.Source, set *core.AnalyzerSet, opts AnalyzeOptions) (core.Plan, error) {
	caps := src.Caps()
	return set.Plan(core.PlanInput{
		Request:       opts.Mode,
		Workers:       opts.Workers,
		Tolerant:      opts.Tolerant,
		Parts:         caps.PartCount,
		SeekableParts: caps.SeekableParts,
		Codec:         caps.Codec,
	})
}

// AnalyzeSource plans and runs one analysis pass over src, populating
// set's primaries. The returned report aggregates per-part read
// coverage (blocks, records, per-codec block counts) across the whole
// source; for a manifest it matches what a merge-then-analyze of the
// same parts would report. On error the primaries are left unfolded
// for every parallel mode (the sequential mode feeds them directly,
// like the sequential reader always has).
func AnalyzeSource(ctx context.Context, src dataset.Source, set *core.AnalyzerSet, opts AnalyzeOptions) (telemetry.SalvageReport, error) {
	plan, err := PlanSource(src, set, opts)
	if err != nil {
		return telemetry.SalvageReport{}, err
	}
	return ExecutePlan(ctx, src, set, plan)
}

// Analyze is AnalyzeSource as a Sim method, for symmetry with the
// generation-side entry points.
func (s *Sim) Analyze(ctx context.Context, src dataset.Source, set *core.AnalyzerSet, opts AnalyzeOptions) (telemetry.SalvageReport, error) {
	return AnalyzeSource(ctx, src, set, opts)
}

// ExecutePlan runs an already-resolved plan over src. Callers normally
// use AnalyzeSource; this entry point exists so a caller that printed
// Plan.Explain() runs exactly the plan it printed.
func ExecutePlan(ctx context.Context, src dataset.Source, set *core.AnalyzerSet, plan core.Plan) (telemetry.SalvageReport, error) {
	var zero telemetry.SalvageReport
	parts := src.Parts()
	if len(parts) == 0 {
		return zero, fmt.Errorf("userv6: source %s lists no parts", src.Kind())
	}

	// Strict mode verifies manifest-declared whole-file checksums up
	// front — the same per-part integrity gate a merge applies — so a
	// swapped or damaged part fails fast with its name, not mid-analysis
	// with a block error.
	if !plan.Tolerant {
		for i, path := range parts {
			want, ok := src.Expected(i)
			if !ok || want.CRC32C == "" {
				continue
			}
			got, err := dataset.FileCRC32C(path)
			if err != nil {
				return zero, err
			}
			if got != want.CRC32C {
				return zero, fmt.Errorf("userv6: part %s: file checksum %s does not match manifest %s",
					filepath.Base(path), got, want.CRC32C)
			}
		}
	}

	// agg accumulates every part's read coverage; finishPart also
	// cross-checks the part's observed frame codecs against its declared
	// policy, exactly like a merge does (tolerant admits the mismatch,
	// strict refuses).
	var agg telemetry.SalvageReport
	finishPart := func(i int, pr *dataset.ParallelReader) error {
		rep, ok := pr.Coverage()
		if !ok {
			return fmt.Errorf("userv6: part %s: read completed without coverage", filepath.Base(parts[i]))
		}
		if want, declared := src.Expected(i); declared && !plan.Tolerant {
			if err := dataset.CheckPartCodecs(want.Codec, rep.Codecs); err != nil {
				return fmt.Errorf("userv6: part %s: %w", filepath.Base(parts[i]), err)
			}
		}
		agg.Add(rep)
		return nil
	}
	open := func(path string, unordered bool) (*dataset.ParallelReader, error) {
		return dataset.OpenParallel(path, dataset.ParallelOptions{
			Workers: plan.Workers, Tolerant: plan.Tolerant, Unordered: unordered,
		})
	}

	switch plan.Mode {
	case core.ModeSequential:
		// One decode worker, ordered delivery, primaries fed directly
		// from the delivery goroutine: the reference semantics of the
		// sequential reader with the same coverage accounting as every
		// other mode.
		for i, path := range parts {
			pr, err := open(path, false)
			if err != nil {
				return zero, err
			}
			err = pr.ForEachBatch(ctx, func(b dataset.Batch) error {
				for _, o := range b.Recs {
					set.Observe(o)
				}
				return nil
			})
			if err == nil {
				err = finishPart(i, pr)
			}
			pr.Close()
			if err != nil {
				return zero, err
			}
		}

	case core.ModePipeline:
		// One hash router shared across every part: per-user order holds
		// within a part, and parts don't interleave users (disjoint
		// ranges), so the routed stream is order-equivalent to the merged
		// file. Abort on error so a partial run never folds.
		pipe := set.NewPipeline(plan.Workers)
		defer pipe.Abort()
		for i, path := range parts {
			pr, err := open(path, false)
			if err != nil {
				return zero, err
			}
			err = pr.ForEachBatch(ctx, func(b dataset.Batch) error {
				pipe.ObserveBatch(b.Recs)
				return nil
			})
			if err == nil {
				err = finishPart(i, pr)
			}
			pr.Close()
			if err != nil {
				return zero, err
			}
		}
		if err := pipe.Close(); err != nil {
			return zero, err
		}

	case core.ModeFused:
		// Worker-local replicas persist across parts: part k+1's factory
		// runs only after part k's workers have been joined, so replica
		// reuse is race-free, and one fold at the very end covers the
		// whole source.
		replicas := make([]*core.Replica, plan.Workers)
		for i, path := range parts {
			pr, err := open(path, false)
			if err != nil {
				return zero, err
			}
			err = pr.ForEachWorker(ctx, func(w int) func(dataset.Batch) error {
				if replicas[w] == nil {
					replicas[w] = set.NewReplica()
				}
				r := replicas[w]
				return func(b dataset.Batch) error {
					for _, o := range b.Recs {
						r.Observe(o)
					}
					return nil
				}
			})
			if err == nil {
				err = finishPart(i, pr)
			}
			pr.Close()
			if err != nil {
				return zero, err
			}
		}
		for _, r := range replicas {
			if r != nil {
				set.Fold(r)
			}
		}

	case core.ModeUnordered:
		// One replica channel pool shared across parts; batches from any
		// part land on whichever replica is free — exact because the
		// planner only emits this mode for commutative sets.
		replicas := make([]*core.Replica, plan.Workers)
		pool := make(chan *core.Replica, plan.Workers)
		for i := range replicas {
			replicas[i] = set.NewReplica()
			pool <- replicas[i]
		}
		for i, path := range parts {
			pr, err := open(path, true)
			if err != nil {
				return zero, err
			}
			err = pr.ForEachBatch(ctx, func(b dataset.Batch) error {
				r := <-pool
				for _, o := range b.Recs {
					r.Observe(o)
				}
				pool <- r
				return nil
			})
			if err == nil {
				err = finishPart(i, pr)
			}
			pr.Close()
			if err != nil {
				return zero, err
			}
		}
		set.Fold(replicas...)

	default:
		return zero, fmt.Errorf("userv6: unknown execution mode %v", plan.Mode)
	}
	return agg, nil
}
