package netaddr

import (
	"testing"
	"testing/quick"
)

func TestSubnetBasic(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	cases := []struct {
		newLen int
		idx    uint64
		want   string
	}{
		{48, 0, "2001:db8::/48"},
		{48, 1, "2001:db8:1::/48"},
		{48, 0xffff, "2001:db8:ffff::/48"},
		{48, 0x10000, "2001:db8::/48"}, // wraps modulo capacity
		{64, 0x1234_5678, "2001:db8:1234:5678::/64"},
		{32, 7, "2001:db8::/32"}, // same length: idx ignored
	}
	for _, c := range cases {
		if got := p.Subnet(c.newLen, c.idx); got.String() != c.want {
			t.Errorf("Subnet(%d, %#x) = %s, want %s", c.newLen, c.idx, got, c.want)
		}
	}
}

func TestSubnetStraddlesWordBoundary(t *testing.T) {
	p := MustParsePrefix("2001:db8:1234:5600::/56")
	got := p.Subnet(72, 0xabcd)
	// 16 bits inserted at [56, 72): top 8 in hi's low byte, low 8 in lo's
	// top byte.
	want := MustParsePrefix("2001:db8:1234:56ab:cd00::/72")
	if got != want {
		t.Fatalf("Subnet = %s, want %s", got, want)
	}
	if !p.Contains(got.Addr()) {
		t.Fatal("subnet escaped parent")
	}
}

func TestSubnetIntoLowWord(t *testing.T) {
	p := MustParsePrefix("2001:db8::/64")
	got := p.Subnet(112, 0xdeadbeef1234)
	want := MustParsePrefix("2001:db8::dead:beef:1234:0/112")
	if got != want {
		t.Fatalf("Subnet = %s, want %s", got, want)
	}
}

func TestSubnetV4(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if got := p.Subnet(16, 5); got.String() != "10.5.0.0/16" {
		t.Fatalf("Subnet = %s", got)
	}
	if got := p.Subnet(32, 0x010203); got.String() != "10.1.2.3/32" {
		t.Fatalf("Subnet = %s", got)
	}
	// newLen beyond family width clamps.
	if got := p.Subnet(64, 1); got.Bits() != 32 {
		t.Fatalf("clamp failed: %s", got)
	}
}

func TestSubnetClampsShorter(t *testing.T) {
	p := MustParsePrefix("2001:db8::/48")
	if got := p.Subnet(32, 3); got != p.Subnet(48, 3) || got.Bits() != 48 {
		t.Fatalf("shorter newLen should clamp to parent length, got %s", got)
	}
	var zero Prefix
	if zero.Subnet(64, 1).IsValid() {
		t.Fatal("subnet of invalid prefix should be invalid")
	}
}

// Properties: the subnet is always contained in the parent, has the
// requested length, and distinct small indices give distinct subnets.
func TestSubnetProperties(t *testing.T) {
	f := func(hi, lo, idx uint64, pb, nb uint8) bool {
		pbits := int(pb) % 129
		nbits := pbits + int(nb)%(129-pbits)
		parent := PrefixFrom(AddrFrom6(hi, lo), pbits)
		sub := parent.Subnet(nbits, idx)
		if sub.Bits() != nbits {
			return false
		}
		if !parent.Overlaps(sub) {
			return false
		}
		// Parent must contain the subnet's base address.
		return parent.Contains(sub.Addr())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestSubnetDistinctIndices(t *testing.T) {
	p := MustParsePrefix("2a00:1450::/32")
	seen := make(map[Prefix]bool)
	for i := uint64(0); i < 1000; i++ {
		s := p.Subnet(64, i)
		if seen[s] {
			t.Fatalf("duplicate subnet at idx %d", i)
		}
		seen[s] = true
	}
}
