package netaddr

import (
	"testing"
	"testing/quick"
)

func TestClassifyTransitionProtocols(t *testing.T) {
	cases := []struct {
		addr string
		want AddrKind
	}{
		{"2001:0:53aa:64c:0:fbff:b03f:f6bd", KindTeredo},
		{"2001::1", KindTeredo},
		{"2001:1::a1b2:c3d4:e5f6:789a", KindRandomIID}, // outside 2001::/32
		{"2002:c000:201::1", Kind6to4},
		{"2002::1", Kind6to4},
		{"2003::a1b2:c3d4:e5f6:789a", KindRandomIID},
		{"2003::1", KindStructuredIID}, // tiny IID: structured layout
		{"2001:db8::a1b2:c3d4:e5f6:789a", KindRandomIID},
	}
	for _, c := range cases {
		if got := Classify(MustParseAddr(c.addr)); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestClassifyEUI64(t *testing.T) {
	// 2001:db8::0211:22ff:fe33:4455 embeds MAC 00:11:22:33:44:55.
	a := MustParseAddr("2001:db8::211:22ff:fe33:4455")
	if !IsEUI64IID(a) {
		t.Fatal("should detect EUI-64 IID")
	}
	if got := Classify(a); got != KindEUI64 {
		t.Fatalf("Classify = %v", got)
	}
	// Without ff:fe in the middle it is not EUI-64.
	b := MustParseAddr("2001:db8::211:22fe:ff33:4455")
	if IsEUI64IID(b) {
		t.Fatal("false positive EUI-64")
	}
}

func TestClassifyStructuredIID(t *testing.T) {
	a := MustParseAddr("2600:380:1234:5678::1f3a")
	if !IsStructuredIID(a) {
		t.Fatal("should detect structured IID")
	}
	if Classify(a) != KindStructuredIID {
		t.Fatalf("Classify = %v", Classify(a))
	}
	// All-zero IID is the anycast address, not a structured client slot.
	b := MustParseAddr("2600:380:1234:5678::")
	if IsStructuredIID(b) {
		t.Fatal("all-zero IID misclassified as structured")
	}
	// A bit above the low 16 disqualifies.
	c := MustParseAddr("2600:380:1234:5678::1:1f3a")
	if IsStructuredIID(c) {
		t.Fatal("high bits set should disqualify")
	}
}

func TestClassifyNonV6(t *testing.T) {
	if Classify(MustParseAddr("1.2.3.4")) != KindOther {
		t.Fatal("IPv4 should classify as other")
	}
	if Classify(Addr{}) != KindOther {
		t.Fatal("invalid should classify as other")
	}
	if IsTeredo(MustParseAddr("1.2.3.4")) || Is6to4(MustParseAddr("1.2.3.4")) {
		t.Fatal("IPv4 matched v6 transition prefixes")
	}
}

func TestEUI64MACRoundTrip(t *testing.T) {
	mac := uint64(0x001122334455)
	iid := EUI64FromMAC(mac)
	// Universal/local bit must be flipped: 00 -> 02 in the first byte.
	if iid>>56 != 0x02 {
		t.Fatalf("first IID byte = %#x, want 0x02", iid>>56)
	}
	if (iid>>24)&0xffff != 0xfffe {
		t.Fatalf("middle bytes = %#x, want fffe", (iid>>24)&0xffff)
	}
	if got := MACFromEUI64(iid); got != mac {
		t.Fatalf("MACFromEUI64 = %#x, want %#x", got, mac)
	}
}

// Property: every EUI64FromMAC output is detected by IsEUI64IID and
// round-trips back to the (48-bit truncated) MAC.
func TestEUI64Property(t *testing.T) {
	base := MustParseAddr("2001:db8:1:2::")
	f := func(mac uint64) bool {
		iid := EUI64FromMAC(mac)
		a := base.WithIID(iid)
		return IsEUI64IID(a) && MACFromEUI64(iid) == mac&0xffffffffffff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrKindString(t *testing.T) {
	kinds := map[AddrKind]string{
		KindOther:         "other",
		KindTeredo:        "teredo",
		Kind6to4:          "6to4",
		KindEUI64:         "eui64",
		KindStructuredIID: "structured-iid",
		KindRandomIID:     "random-iid",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
