package netaddr

// Classification of IPv6 address structure, following the observations in
// §4.4 of the paper: transition protocols are recognizable from well-known
// prefixes (Teredo 2001::/32, 6to4 2002::/16), and a minority of clients
// embed a MAC address into the interface identifier using the modified
// EUI-64 scheme (RFC 4291 appendix A: the 48-bit MAC is split in half and
// ff:fe inserted in the middle). Mobile-gateway addresses with structured
// IIDs (all zero except the low 16 bits) are the signature the paper found
// on heavily populated addresses in ASN 20057.

// AddrKind describes the structural class of an IPv6 address.
type AddrKind uint8

const (
	// KindOther is any address not matching a more specific class.
	KindOther AddrKind = iota
	// KindTeredo is a Teredo (RFC 4380) tunnel address in 2001::/32.
	KindTeredo
	// Kind6to4 is a 6to4 (RFC 3056) transition address in 2002::/16.
	Kind6to4
	// KindEUI64 has a modified EUI-64 interface identifier embedding a
	// MAC address (ff:fe in the middle of the IID, universal/local bit
	// semantics per RFC 4291).
	KindEUI64
	// KindStructuredIID has an interface identifier that is all zeros
	// except for the low 16 bits — the gateway-style layout the paper
	// associates with heavily populated mobile-carrier addresses.
	KindStructuredIID
	// KindRandomIID is the default modern client address: a 64-bit IID
	// with no recognizable embedded structure (SLAAC privacy extensions
	// or temporary DHCPv6).
	KindRandomIID
)

// String returns a short label for the kind.
func (k AddrKind) String() string {
	switch k {
	case KindTeredo:
		return "teredo"
	case Kind6to4:
		return "6to4"
	case KindEUI64:
		return "eui64"
	case KindStructuredIID:
		return "structured-iid"
	case KindRandomIID:
		return "random-iid"
	default:
		return "other"
	}
}

var (
	teredoPrefix = MustParsePrefix("2001::/32")
	sixToFour    = MustParsePrefix("2002::/16")
)

// IsTeredo reports whether a is a Teredo tunnel address.
func IsTeredo(a Addr) bool { return teredoPrefix.Contains(a) }

// Is6to4 reports whether a is a 6to4 transition address.
func Is6to4(a Addr) bool { return sixToFour.Contains(a) }

// IsEUI64IID reports whether the IPv6 address's interface identifier uses
// the modified EUI-64 MAC embedding: bytes 11-12 of the address (the
// middle of the IID) are 0xff, 0xfe.
func IsEUI64IID(a Addr) bool {
	if !a.Is6() {
		return false
	}
	return (a.lo>>24)&0xffff == 0xfffe
}

// IsStructuredIID reports whether the IID is all zeros except possibly the
// low 16 bits, and at least one of those bits is set. (An IID of exactly
// zero is the subnet-router anycast address, not a gateway client slot.)
func IsStructuredIID(a Addr) bool {
	if !a.Is6() {
		return false
	}
	return a.lo != 0 && a.lo&^uint64(0xffff) == 0
}

// Classify returns the structural class of an IPv6 address. For IPv4 and
// invalid addresses it returns KindOther. Transition-protocol prefixes
// take precedence over IID structure, matching how an operator would
// bucket addresses.
func Classify(a Addr) AddrKind {
	if !a.Is6() {
		return KindOther
	}
	switch {
	case IsTeredo(a):
		return KindTeredo
	case Is6to4(a):
		return Kind6to4
	case IsEUI64IID(a):
		return KindEUI64
	case IsStructuredIID(a):
		return KindStructuredIID
	default:
		return KindRandomIID
	}
}

// EUI64FromMAC builds the modified EUI-64 interface identifier for a
// 48-bit MAC address (RFC 4291 appendix A): the MAC is split into its
// OUI and NIC halves, 0xfffe is inserted between them, and the
// universal/local bit (bit 6 of the first byte) is inverted.
func EUI64FromMAC(mac uint64) uint64 {
	mac &= 0xffffffffffff
	oui := mac >> 24 & 0xffffff
	nic := mac & 0xffffff
	iid := oui<<40 | 0xfffe<<24 | nic
	return iid ^ 1<<57 // flip universal/local bit
}

// MACFromEUI64 recovers the MAC address from a modified EUI-64 IID.
// The caller should first check IsEUI64IID on the containing address.
func MACFromEUI64(iid uint64) uint64 {
	iid ^= 1 << 57
	oui := iid >> 40 & 0xffffff
	nic := iid & 0xffffff
	return oui<<24 | nic
}
