// Package netaddr provides compact value types for IPv4 and IPv6 addresses
// and prefixes, tuned for the high-volume aggregation workloads in this
// library: masking an address at an arbitrary prefix length, classifying
// IPv6 address structure (transition protocols, EUI-64 interface
// identifiers, gateway-style structured IIDs), and generating addresses
// under the assignment schemes observed in the wild (SLAAC privacy
// extensions, DHCPv6 temporary addresses, embedded MAC identifiers).
//
// Addr is a two-word value type: comparable, usable as a map key, and
// maskable without allocation. It plays the role net/netip.Addr plays in
// the standard library, but exposes the raw 128-bit words so that the
// prefix trie and the analyzers can operate on them directly.
package netaddr

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// Family distinguishes the two IP protocol families.
type Family uint8

const (
	// Invalid is the family of the zero Addr.
	Invalid Family = iota
	// IPv4 is the 32-bit address family.
	IPv4
	// IPv6 is the 128-bit address family.
	IPv6
)

// String returns "IPv4", "IPv6" or "invalid".
func (f Family) String() string {
	switch f {
	case IPv4:
		return "IPv4"
	case IPv6:
		return "IPv6"
	default:
		return "invalid"
	}
}

// Addr is an IPv4 or IPv6 address stored as a 128-bit value plus a family
// tag. IPv6 addresses occupy the full 128 bits; IPv4 addresses are stored
// in the low 32 bits of lo with hi == 0. The zero Addr is invalid.
type Addr struct {
	hi, lo uint64
	family Family
}

// AddrFrom6 returns the IPv6 address with the given high and low 64-bit
// words (network byte order: hi holds bytes 0-7).
func AddrFrom6(hi, lo uint64) Addr {
	return Addr{hi: hi, lo: lo, family: IPv6}
}

// AddrFrom4 returns the IPv4 address for a 32-bit big-endian value.
func AddrFrom4(v uint32) Addr {
	return Addr{lo: uint64(v), family: IPv4}
}

// AddrFrom16 returns the IPv6 address for a 16-byte slice or array content.
func AddrFrom16(b [16]byte) Addr {
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(b[i])
		lo = lo<<8 | uint64(b[i+8])
	}
	return AddrFrom6(hi, lo)
}

// FromNetip converts a net/netip address. IPv4-mapped IPv6 addresses are
// unmapped to IPv4. The zero netip.Addr converts to the zero Addr.
func FromNetip(a netip.Addr) Addr {
	if !a.IsValid() {
		return Addr{}
	}
	a = a.Unmap()
	if a.Is4() {
		b := a.As4()
		return AddrFrom4(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
	}
	return AddrFrom16(a.As16())
}

// Netip converts to a net/netip.Addr.
func (a Addr) Netip() netip.Addr {
	switch a.family {
	case IPv4:
		v := uint32(a.lo)
		return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
	case IPv6:
		return netip.AddrFrom16(a.As16())
	default:
		return netip.Addr{}
	}
}

// ParseAddr parses an address in standard textual form ("192.0.2.1",
// "2001:db8::1"). It rejects zones and IPv4-in-IPv6 forms are unmapped.
func ParseAddr(s string) (Addr, error) {
	a, err := netip.ParseAddr(s)
	if err != nil {
		return Addr{}, fmt.Errorf("netaddr: parse %q: %w", s, err)
	}
	if a.Zone() != "" {
		return Addr{}, fmt.Errorf("netaddr: parse %q: zones not supported", s)
	}
	return FromNetip(a), nil
}

// MustParseAddr is ParseAddr that panics on error, for tests and tables.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// IsValid reports whether a is a real address (not the zero value).
func (a Addr) IsValid() bool { return a.family != Invalid }

// Family returns the address family.
func (a Addr) Family() Family { return a.family }

// Is4 reports whether a is an IPv4 address.
func (a Addr) Is4() bool { return a.family == IPv4 }

// Is6 reports whether a is an IPv6 address.
func (a Addr) Is6() bool { return a.family == IPv6 }

// Words returns the raw 128-bit value as two 64-bit words. For IPv4 the
// address occupies the low 32 bits of the second word.
func (a Addr) Words() (hi, lo uint64) { return a.hi, a.lo }

// V4 returns the 32-bit value of an IPv4 address, or 0 if a is not IPv4.
func (a Addr) V4() uint32 {
	if a.family != IPv4 {
		return 0
	}
	return uint32(a.lo)
}

// As16 returns the address as 16 bytes in network order. IPv4 addresses
// are returned in IPv4-mapped form (::ffff:a.b.c.d).
func (a Addr) As16() [16]byte {
	var b [16]byte
	hi, lo := a.hi, a.lo
	if a.family == IPv4 {
		hi = 0
		lo = 0xffff00000000 | (a.lo & 0xffffffff)
	}
	for i := 7; i >= 0; i-- {
		b[i] = byte(hi)
		b[i+8] = byte(lo)
		hi >>= 8
		lo >>= 8
	}
	return b
}

// Bits returns the address length in bits: 32 for IPv4, 128 for IPv6,
// 0 for the zero Addr.
func (a Addr) Bits() int {
	switch a.family {
	case IPv4:
		return 32
	case IPv6:
		return 128
	default:
		return 0
	}
}

// Compare orders addresses: by family (IPv4 < IPv6), then numerically.
func (a Addr) Compare(b Addr) int {
	switch {
	case a.family != b.family:
		if a.family < b.family {
			return -1
		}
		return 1
	case a.hi != b.hi:
		if a.hi < b.hi {
			return -1
		}
		return 1
	case a.lo != b.lo:
		if a.lo < b.lo {
			return -1
		}
		return 1
	}
	return 0
}

// Less reports whether a orders before b (see Compare).
func (a Addr) Less(b Addr) bool { return a.Compare(b) < 0 }

// String formats the address in standard textual form. The zero Addr
// formats as "invalid".
func (a Addr) String() string {
	if !a.IsValid() {
		return "invalid"
	}
	return a.Netip().String()
}

// IID returns the low 64 bits (the interface identifier of an IPv6
// address under the conventional 64-bit split). For IPv4 it returns the
// 32-bit address value.
func (a Addr) IID() uint64 { return a.lo }

// WithIID returns a copy of the IPv6 address with the low 64 bits
// replaced. For non-IPv6 addresses it returns a unchanged.
func (a Addr) WithIID(iid uint64) Addr {
	if a.family != IPv6 {
		return a
	}
	a.lo = iid
	return a
}

// Next returns the numerically next address within the family, wrapping
// at the top of the address space.
func (a Addr) Next() Addr {
	switch a.family {
	case IPv4:
		a.lo = uint64(uint32(a.lo) + 1)
	case IPv6:
		a.lo++
		if a.lo == 0 {
			a.hi++
		}
	}
	return a
}

// mask returns a with all bits after the first n cleared. n is clamped to
// [0, a.Bits()]. For IPv4, bit 0 is the top bit of the 32-bit value.
func (a Addr) mask(n int) Addr {
	bits := a.Bits()
	if n < 0 {
		n = 0
	}
	if n >= bits {
		return a
	}
	if a.family == IPv4 {
		if n == 0 {
			a.lo = 0
			return a
		}
		m := uint32(0xffffffff) << (32 - n)
		a.lo = uint64(uint32(a.lo) & m)
		return a
	}
	switch {
	case n == 0:
		a.hi, a.lo = 0, 0
	case n < 64:
		a.hi &= ^uint64(0) << (64 - n)
		a.lo = 0
	case n == 64:
		a.lo = 0
	default:
		a.lo &= ^uint64(0) << (128 - n)
	}
	return a
}

// Bit returns bit i of the address (0 = most significant) as 0 or 1.
// It panics if i is outside [0, Bits()).
func (a Addr) Bit(i int) byte {
	bits := a.Bits()
	if i < 0 || i >= bits {
		panic("netaddr: Bit index out of range: " + strconv.Itoa(i))
	}
	if a.family == IPv4 {
		return byte(uint32(a.lo) >> (31 - i) & 1)
	}
	if i < 64 {
		return byte(a.hi >> (63 - i) & 1)
	}
	return byte(a.lo >> (127 - i) & 1)
}

// Prefix is an address plus a prefix length: a subnet. The address is
// stored in canonical (masked) form, so Prefix values are comparable:
// two Prefixes are equal iff they denote the same subnet.
type Prefix struct {
	addr Addr
	bits uint8
}

// PrefixFrom returns the prefix of a at length bits, with the address
// canonicalized (host bits zeroed). bits is clamped to [0, a.Bits()].
func PrefixFrom(a Addr, bits int) Prefix {
	if !a.IsValid() {
		return Prefix{}
	}
	if bits < 0 {
		bits = 0
	}
	if max := a.Bits(); bits > max {
		bits = max
	}
	return Prefix{addr: a.mask(bits), bits: uint8(bits)}
}

// ParsePrefix parses CIDR notation ("2001:db8::/48", "192.0.2.0/24").
func ParsePrefix(s string) (Prefix, error) {
	i := strings.LastIndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("netaddr: parse prefix %q: no '/'", s)
	}
	a, err := ParseAddr(s[:i])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[i+1:])
	if err != nil || bits < 0 || bits > a.Bits() {
		return Prefix{}, fmt.Errorf("netaddr: parse prefix %q: bad length", s)
	}
	return PrefixFrom(a, bits), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// IsValid reports whether p is a real prefix (not the zero value).
func (p Prefix) IsValid() bool { return p.addr.IsValid() }

// Addr returns the canonical (masked) base address of the prefix.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return int(p.bits) }

// Family returns the prefix's address family.
func (p Prefix) Family() Family { return p.addr.family }

// Contains reports whether the prefix contains address a. Addresses of a
// different family are never contained.
func (p Prefix) Contains(a Addr) bool {
	if a.family != p.addr.family {
		return false
	}
	return a.mask(int(p.bits)) == p.addr
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.addr.family != q.addr.family {
		return false
	}
	if p.bits > q.bits {
		p, q = q, p
	}
	return q.addr.mask(int(p.bits)) == p.addr
}

// Parent returns the prefix one bit shorter, or p itself at length 0.
func (p Prefix) Parent() Prefix {
	if p.bits == 0 {
		return p
	}
	return PrefixFrom(p.addr, int(p.bits)-1)
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string {
	if !p.IsValid() {
		return "invalid"
	}
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// Subnet returns the idx-th subnet of length newLen within p, wrapping
// idx modulo the subnet capacity. newLen is clamped to [p.Bits(),
// address width]. This is the allocator primitive used by the network
// models: "the /64 number idx inside this routing /32".
func (p Prefix) Subnet(newLen int, idx uint64) Prefix {
	if !p.IsValid() {
		return Prefix{}
	}
	maxBits := p.addr.Bits()
	if newLen > maxBits {
		newLen = maxBits
	}
	if newLen < int(p.bits) {
		newLen = int(p.bits)
	}
	width := newLen - int(p.bits)
	if width == 0 {
		return PrefixFrom(p.addr, newLen)
	}
	if width < 64 {
		idx &= 1<<width - 1
	}
	a := p.addr
	if a.family == IPv4 {
		v := uint32(a.lo) | uint32(idx)<<(32-newLen)
		return PrefixFrom(AddrFrom4(v), newLen)
	}
	hi, lo := a.hi, a.lo
	// Scatter idx into bit positions [p.bits, newLen) of the 128-bit value.
	if newLen <= 64 {
		hi |= idx << (64 - newLen)
	} else if int(p.bits) >= 64 {
		lo |= idx << (128 - newLen)
	} else {
		// idx straddles the word boundary: its top bits land in the low
		// bits of hi, the rest in the high bits of lo.
		loWidth := newLen - 64
		hi |= idx >> loWidth
		if loWidth < 64 {
			lo |= (idx & (1<<loWidth - 1)) << (64 - loWidth)
		} else {
			lo |= idx
		}
	}
	return PrefixFrom(AddrFrom6(hi, lo), newLen)
}
