package netaddr

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestParseAddrV4(t *testing.T) {
	a, err := ParseAddr("192.0.2.1")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Is4() || a.Is6() {
		t.Fatalf("family = %v, want IPv4", a.Family())
	}
	if got := a.V4(); got != 0xc0000201 {
		t.Fatalf("V4() = %#x, want 0xc0000201", got)
	}
	if got := a.String(); got != "192.0.2.1" {
		t.Fatalf("String() = %q", got)
	}
	if a.Bits() != 32 {
		t.Fatalf("Bits() = %d, want 32", a.Bits())
	}
}

func TestParseAddrV6(t *testing.T) {
	a, err := ParseAddr("2001:db8::1")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Is6() {
		t.Fatalf("family = %v, want IPv6", a.Family())
	}
	hi, lo := a.Words()
	if hi != 0x20010db800000000 || lo != 1 {
		t.Fatalf("Words() = %#x, %#x", hi, lo)
	}
	if got := a.String(); got != "2001:db8::1" {
		t.Fatalf("String() = %q", got)
	}
	if a.Bits() != 128 {
		t.Fatalf("Bits() = %d, want 128", a.Bits())
	}
}

func TestParseAddrErrors(t *testing.T) {
	for _, s := range []string{"", "not-an-ip", "256.1.1.1", "fe80::1%eth0", "2001:db8::/64"} {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", s)
		}
	}
}

func TestZeroAddrInvalid(t *testing.T) {
	var a Addr
	if a.IsValid() {
		t.Fatal("zero Addr is valid")
	}
	if a.String() != "invalid" {
		t.Fatalf("String() = %q", a.String())
	}
	if a.Bits() != 0 {
		t.Fatalf("Bits() = %d", a.Bits())
	}
	if a.Netip().IsValid() {
		t.Fatal("zero Addr converts to valid netip")
	}
}

func TestAddrFrom4RoundTrip(t *testing.T) {
	a := AddrFrom4(0x01020304)
	if got := a.String(); got != "1.2.3.4" {
		t.Fatalf("String() = %q", got)
	}
	back := FromNetip(a.Netip())
	if back != a {
		t.Fatalf("round trip mismatch: %v != %v", back, a)
	}
}

func TestV4MappedUnmaps(t *testing.T) {
	a := FromNetip(netip.MustParseAddr("::ffff:1.2.3.4"))
	if !a.Is4() {
		t.Fatalf("v4-mapped should unmap to IPv4, got %v", a.Family())
	}
	if a.String() != "1.2.3.4" {
		t.Fatalf("String() = %q", a.String())
	}
}

func TestAs16(t *testing.T) {
	a := MustParseAddr("2001:db8:1:2:3:4:5:6")
	b := a.As16()
	if got := AddrFrom16(b); got != a {
		t.Fatalf("AddrFrom16(As16()) = %v, want %v", got, a)
	}
	v4 := MustParseAddr("10.0.0.1")
	b16 := v4.As16()
	want := [16]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 10, 0, 0, 1}
	if b16 != want {
		t.Fatalf("As16() = %v, want %v", b16, want)
	}
}

func TestCompareOrdering(t *testing.T) {
	addrs := []string{"0.0.0.0", "10.0.0.1", "255.255.255.255", "::", "2001:db8::", "ffff::"}
	for i := range addrs {
		for j := range addrs {
			a, b := MustParseAddr(addrs[i]), MustParseAddr(addrs[j])
			got := a.Compare(b)
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%s, %s) = %d, want %d", a, b, got, want)
			}
			if a.Less(b) != (want < 0) {
				t.Errorf("Less(%s, %s) mismatch", a, b)
			}
		}
	}
}

func TestNext(t *testing.T) {
	cases := []struct{ in, want string }{
		{"10.0.0.1", "10.0.0.2"},
		{"10.0.0.255", "10.0.1.0"},
		{"255.255.255.255", "0.0.0.0"},
		{"2001:db8::ffff:ffff:ffff:ffff", "2001:db8:0:1::"},
		{"::1", "::2"},
	}
	for _, c := range cases {
		if got := MustParseAddr(c.in).Next(); got != MustParseAddr(c.want) {
			t.Errorf("Next(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestBit(t *testing.T) {
	a := MustParseAddr("8000::") // only bit 0 set
	if a.Bit(0) != 1 {
		t.Error("bit 0 should be 1")
	}
	for i := 1; i < 128; i++ {
		if a.Bit(i) != 0 {
			t.Errorf("bit %d should be 0", i)
		}
	}
	one := MustParseAddr("::1")
	if one.Bit(127) != 1 {
		t.Error("bit 127 of ::1 should be 1")
	}
	v4 := MustParseAddr("128.0.0.1")
	if v4.Bit(0) != 1 || v4.Bit(31) != 1 || v4.Bit(1) != 0 {
		t.Error("IPv4 bit extraction wrong")
	}
}

func TestBitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bit(-1) did not panic")
		}
	}()
	MustParseAddr("::1").Bit(-1)
}

func TestWithIID(t *testing.T) {
	a := MustParseAddr("2001:db8:1:2::")
	b := a.WithIID(0xdeadbeef)
	if b.String() != "2001:db8:1:2::dead:beef" {
		t.Fatalf("WithIID = %s", b)
	}
	if b.IID() != 0xdeadbeef {
		t.Fatalf("IID() = %#x", b.IID())
	}
	v4 := MustParseAddr("1.2.3.4")
	if v4.WithIID(99) != v4 {
		t.Fatal("WithIID should not modify IPv4")
	}
}

func TestPrefixCanonicalization(t *testing.T) {
	a := MustParseAddr("2001:db8:abcd:1234:5678:9abc:def0:1234")
	cases := []struct {
		bits int
		want string
	}{
		{0, "::/0"},
		{16, "2001::/16"},
		{32, "2001:db8::/32"},
		{48, "2001:db8:abcd::/48"},
		{64, "2001:db8:abcd:1234::/64"},
		{68, "2001:db8:abcd:1234:5000::/68"},
		{112, "2001:db8:abcd:1234:5678:9abc:def0:0/112"},
		{128, "2001:db8:abcd:1234:5678:9abc:def0:1234/128"},
	}
	for _, c := range cases {
		p := PrefixFrom(a, c.bits)
		if p.String() != c.want {
			t.Errorf("PrefixFrom(a, %d) = %s, want %s", c.bits, p, c.want)
		}
		if p.Bits() != c.bits {
			t.Errorf("Bits() = %d, want %d", p.Bits(), c.bits)
		}
		if !p.Contains(a) {
			t.Errorf("%s should contain %s", p, a)
		}
	}
}

func TestPrefixFromClamps(t *testing.T) {
	a := MustParseAddr("10.1.2.3")
	if p := PrefixFrom(a, 99); p.Bits() != 32 {
		t.Fatalf("clamp high: Bits() = %d", p.Bits())
	}
	if p := PrefixFrom(a, -5); p.Bits() != 0 {
		t.Fatalf("clamp low: Bits() = %d", p.Bits())
	}
	if p := PrefixFrom(Addr{}, 10); p.IsValid() {
		t.Fatal("prefix of invalid addr should be invalid")
	}
}

func TestPrefixEqualityAsSubnetIdentity(t *testing.T) {
	p1 := PrefixFrom(MustParseAddr("2001:db8::1"), 64)
	p2 := PrefixFrom(MustParseAddr("2001:db8::ffff"), 64)
	if p1 != p2 {
		t.Fatal("same /64 from different hosts should be equal")
	}
	p3 := PrefixFrom(MustParseAddr("2001:db8:0:1::1"), 64)
	if p1 == p3 {
		t.Fatal("different /64s should differ")
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("192.0.2.128/25")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "192.0.2.128/25" {
		t.Fatalf("String() = %s", p)
	}
	if !p.Contains(MustParseAddr("192.0.2.200")) {
		t.Error("should contain .200")
	}
	if p.Contains(MustParseAddr("192.0.2.1")) {
		t.Error("should not contain .1")
	}
	for _, bad := range []string{"", "1.2.3.4", "1.2.3.4/33", "::/129", "::/x", "::/-1"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded", bad)
		}
	}
}

func TestPrefixContainsCrossFamily(t *testing.T) {
	p := MustParsePrefix("::/0")
	if p.Contains(MustParseAddr("1.2.3.4")) {
		t.Fatal("IPv6 ::/0 must not contain IPv4 addresses")
	}
	p4 := MustParsePrefix("0.0.0.0/0")
	if p4.Contains(MustParseAddr("::1")) {
		t.Fatal("IPv4 /0 must not contain IPv6 addresses")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"2001:db8::/32", "2001:db8:1::/48", true},
		{"2001:db8:1::/48", "2001:db8::/32", true},
		{"2001:db8::/32", "2001:db9::/32", false},
		{"10.0.0.0/8", "10.1.0.0/16", true},
		{"10.0.0.0/8", "11.0.0.0/8", false},
		{"10.0.0.0/8", "2001::/16", false},
	}
	for _, c := range cases {
		got := MustParsePrefix(c.a).Overlaps(MustParsePrefix(c.b))
		if got != c.want {
			t.Errorf("Overlaps(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPrefixParent(t *testing.T) {
	p := MustParsePrefix("2001:db8:8000::/33")
	parent := p.Parent()
	if parent.String() != "2001:db8::/32" {
		t.Fatalf("Parent() = %s", parent)
	}
	root := MustParsePrefix("::/0")
	if root.Parent() != root {
		t.Fatal("Parent of /0 should be itself")
	}
}

// Property: masking is idempotent and monotone — masking at n then at
// m <= n equals masking at m directly, and the masked address is always
// contained in the prefix.
func TestMaskProperties(t *testing.T) {
	f := func(hi, lo uint64, n1, n2 uint8) bool {
		a := AddrFrom6(hi, lo)
		n, m := int(n1)%129, int(n2)%129
		if m > n {
			n, m = m, n
		}
		pn := PrefixFrom(a, n)
		pm := PrefixFrom(a, m)
		// Re-masking the canonical address at the shorter length must
		// equal masking the original at the shorter length.
		if PrefixFrom(pn.Addr(), m) != pm {
			return false
		}
		return pn.Contains(a) && pm.Contains(a) && pm.Contains(pn.Addr())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: As16/AddrFrom16 round-trips for all IPv6 values.
func TestAs16RoundTripProperty(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := AddrFrom6(hi, lo)
		return AddrFrom16(a.As16()) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: String/ParseAddr round-trips.
func TestStringParseRoundTripProperty(t *testing.T) {
	f := func(hi, lo uint64, v4 uint32) bool {
		a6 := AddrFrom6(hi, lo)
		r6, err := ParseAddr(a6.String())
		if err != nil || r6 != a6 {
			return false
		}
		a4 := AddrFrom4(v4)
		r4, err := ParseAddr(a4.String())
		return err == nil && r4 == a4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Contains is consistent with Overlaps for equal-length args.
func TestContainsOverlapsConsistency(t *testing.T) {
	f := func(hi, lo, hi2, lo2 uint64, n uint8) bool {
		bits := int(n) % 129
		p := PrefixFrom(AddrFrom6(hi, lo), bits)
		q := PrefixFrom(AddrFrom6(hi2, lo2), bits)
		// Same-length prefixes overlap iff equal iff each contains the
		// other's base address.
		return p.Overlaps(q) == (p == q) &&
			p.Contains(q.Addr()) == (p == q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFamilyString(t *testing.T) {
	if IPv4.String() != "IPv4" || IPv6.String() != "IPv6" || Invalid.String() != "invalid" {
		t.Fatal("Family.String mismatch")
	}
}

func BenchmarkPrefixFrom(b *testing.B) {
	a := MustParseAddr("2001:db8:abcd:1234:5678:9abc:def0:1234")
	for i := 0; i < b.N; i++ {
		_ = PrefixFrom(a, i%129)
	}
}

func BenchmarkClassify(b *testing.B) {
	a := MustParseAddr("2001:db8:abcd:1234:5678:9abc:def0:1234")
	for i := 0; i < b.N; i++ {
		_ = Classify(a)
	}
}
