// Package simtime models the study calendar. The paper's datasets span
// Jan 23 – Apr 19, 2020 — a window that happens to contain the global
// COVID-19 lockdowns — and several analyses depend on which days are
// weekends and how far a day is into the pandemic. Days are represented
// as integer offsets from the study start so the generators and analyzers
// can use them as array indices.
package simtime

import (
	"fmt"
	"time"
)

// Day is a day index relative to the study start (Day 0 = Jan 23, 2020).
type Day int

// Study window constants.
const (
	// StudyDays is the length of the full study window Jan 23 – Apr 19,
	// 2020 inclusive (88 days).
	StudyDays = 88

	// AnalysisWeekStart is the first day of the Apr 13–19 window on which
	// most of the paper's single-week analyses run.
	AnalysisWeekStart Day = 81
	// AnalysisWeekEnd is the last day (Apr 19) of the analysis week.
	AnalysisWeekEnd Day = 87

	// JanWeekStart / JanWeekEnd bound the Jan 23–29 comparison week.
	JanWeekStart Day = 0
	JanWeekEnd   Day = 6
)

// studyStart is Thursday, January 23, 2020 (UTC).
var studyStart = time.Date(2020, time.January, 23, 0, 0, 0, 0, time.UTC)

// Date returns the calendar date for a day index.
func (d Day) Date() time.Time { return studyStart.AddDate(0, 0, int(d)) }

// String formats the day as its calendar date.
func (d Day) String() string {
	return fmt.Sprintf("day %d (%s)", int(d), d.Date().Format("Jan 2"))
}

// Weekday returns the day of week.
func (d Day) Weekday() time.Weekday { return d.Date().Weekday() }

// IsWeekend reports whether the day is a Saturday or Sunday.
func (d Day) IsWeekend() bool {
	wd := d.Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

// InStudy reports whether the day falls inside the study window.
func (d Day) InStudy() bool { return d >= 0 && d < StudyDays }

// Phase describes the pandemic period a day belongs to. The paper treats
// mid-March as the global inflection point (Italy locked down Mar 9, the
// first US state Mar 19).
type Phase uint8

const (
	// PrePandemic covers days before lockdowns began affecting mobility.
	PrePandemic Phase = iota
	// Transition covers the ramp between the first European lockdowns
	// and broad global lockdown (Mar 9 – Mar 21).
	Transition
	// Lockdown covers the fully locked-down tail of the study window.
	Lockdown
)

// String labels the phase.
func (p Phase) String() string {
	switch p {
	case PrePandemic:
		return "pre-pandemic"
	case Transition:
		return "transition"
	default:
		return "lockdown"
	}
}

// Phase boundaries as day indices: Mar 9 is day 46, Mar 22 is day 59.
const (
	transitionStart Day = 46
	lockdownStart   Day = 59
)

// PhaseOf returns the pandemic phase of a day.
func PhaseOf(d Day) Phase {
	switch {
	case d < transitionStart:
		return PrePandemic
	case d < lockdownStart:
		return Transition
	default:
		return Lockdown
	}
}

// LockdownIntensity returns how locked-down the world is on day d, from
// 0 (normal mobility) to 1 (full lockdown), ramping linearly through the
// transition window. Population mobility models scale their
// enterprise/travel behavior by this factor.
func LockdownIntensity(d Day) float64 {
	switch {
	case d < transitionStart:
		return 0
	case d >= lockdownStart:
		return 1
	default:
		return float64(d-transitionStart) / float64(lockdownStart-transitionStart)
	}
}

// Range calls fn for each day in [from, to] inclusive.
func Range(from, to Day, fn func(Day)) {
	for d := from; d <= to; d++ {
		fn(d)
	}
}
