package simtime

import (
	"testing"
	"time"
)

func TestDayZeroIsJan23(t *testing.T) {
	d := Day(0)
	if got := d.Date(); got.Year() != 2020 || got.Month() != time.January || got.Day() != 23 {
		t.Fatalf("Day(0) = %v", got)
	}
	if d.Weekday() != time.Thursday {
		t.Fatalf("Jan 23 2020 should be Thursday, got %v", d.Weekday())
	}
}

func TestStudyWindowEndsApr19(t *testing.T) {
	last := Day(StudyDays - 1)
	if got := last.Date(); got.Month() != time.April || got.Day() != 19 {
		t.Fatalf("last study day = %v, want Apr 19", got)
	}
	if !last.InStudy() || Day(StudyDays).InStudy() || Day(-1).InStudy() {
		t.Fatal("InStudy boundaries wrong")
	}
}

func TestAnalysisWeek(t *testing.T) {
	if got := AnalysisWeekStart.Date(); got.Month() != time.April || got.Day() != 13 {
		t.Fatalf("AnalysisWeekStart = %v, want Apr 13", got)
	}
	if got := AnalysisWeekEnd.Date(); got.Month() != time.April || got.Day() != 19 {
		t.Fatalf("AnalysisWeekEnd = %v, want Apr 19", got)
	}
	if AnalysisWeekEnd-AnalysisWeekStart != 6 {
		t.Fatal("analysis week should span 7 days")
	}
	if got := JanWeekEnd.Date(); got.Day() != 29 {
		t.Fatalf("JanWeekEnd = %v, want Jan 29", got)
	}
}

func TestWeekends(t *testing.T) {
	// Jan 25-26 2020 was the first weekend of the study (days 2, 3).
	if !Day(2).IsWeekend() || !Day(3).IsWeekend() {
		t.Fatal("days 2-3 should be weekend")
	}
	if Day(0).IsWeekend() || Day(4).IsWeekend() {
		t.Fatal("Thursday/Monday flagged as weekend")
	}
	// Weekends repeat with period 7.
	for d := Day(2); d < StudyDays; d += 7 {
		if !d.IsWeekend() {
			t.Fatalf("%v should be a Saturday", d)
		}
	}
}

func TestPhases(t *testing.T) {
	// Mar 9 2020 = day 46; Mar 22 = day 59.
	if got := Day(46).Date(); got.Month() != time.March || got.Day() != 9 {
		t.Fatalf("day 46 = %v, want Mar 9", got)
	}
	if got := Day(59).Date(); got.Month() != time.March || got.Day() != 22 {
		t.Fatalf("day 59 = %v, want Mar 22", got)
	}
	if PhaseOf(45) != PrePandemic || PhaseOf(46) != Transition || PhaseOf(58) != Transition || PhaseOf(59) != Lockdown {
		t.Fatal("phase boundaries wrong")
	}
	if PrePandemic.String() != "pre-pandemic" || Transition.String() != "transition" || Lockdown.String() != "lockdown" {
		t.Fatal("phase labels wrong")
	}
}

func TestLockdownIntensityMonotone(t *testing.T) {
	prev := -0.001
	for d := Day(0); d < StudyDays; d++ {
		v := LockdownIntensity(d)
		if v < 0 || v > 1 {
			t.Fatalf("intensity(%v) = %v out of range", d, v)
		}
		if v < prev {
			t.Fatalf("intensity not monotone at %v", d)
		}
		prev = v
	}
	if LockdownIntensity(0) != 0 {
		t.Fatal("pre-pandemic intensity should be 0")
	}
	if LockdownIntensity(59) != 1 || LockdownIntensity(87) != 1 {
		t.Fatal("lockdown intensity should be 1")
	}
	mid := LockdownIntensity(52)
	if mid <= 0 || mid >= 1 {
		t.Fatalf("transition intensity = %v, want in (0,1)", mid)
	}
}

func TestRange(t *testing.T) {
	var got []Day
	Range(3, 6, func(d Day) { got = append(got, d) })
	if len(got) != 4 || got[0] != 3 || got[3] != 6 {
		t.Fatalf("Range = %v", got)
	}
	Range(5, 4, func(Day) { t.Fatal("empty range visited") })
}

func TestDayString(t *testing.T) {
	if got := Day(0).String(); got != "day 0 (Jan 23)" {
		t.Fatalf("String = %q", got)
	}
}
