package telemetry

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzSeeds returns representative streams: valid v1, valid v2, empty,
// and structured garbage, so the fuzzer starts near the format.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	obs := frameObs(70)
	var v1 bytes.Buffer
	w1 := NewWriter(&v1)
	for _, o := range obs {
		if err := w1.Write(o); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w1.Flush(); err != nil {
		tb.Fatal(err)
	}
	var v2 bytes.Buffer
	w2 := NewWriterV2Blocks(&v2, 16)
	for _, o := range obs {
		if err := w2.Write(o); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w2.Flush(); err != nil {
		tb.Fatal(err)
	}
	var v2lz bytes.Buffer
	wlz, err := NewWriterV2Codec(&v2lz, 16, CodecLZ)
	if err != nil {
		tb.Fatal(err)
	}
	for _, o := range obs {
		if err := wlz.Write(o); err != nil {
			tb.Fatal(err)
		}
	}
	if err := wlz.Flush(); err != nil {
		tb.Fatal(err)
	}
	return [][]byte{
		v1.Bytes(),
		v2.Bytes(),
		v2lz.Bytes(),
		{},
		magicV2[:],
		append(append([]byte{}, magicV2[:]...), blockMagic[:]...),
		[]byte("uv6\x03not-a-version"),
		bytes.Repeat([]byte{0xa5}, 300),
	}
}

// FuzzReader: arbitrary input must never panic the reader; every
// successfully decoded record must survive an encode/decode round trip
// (i.e. the decoder only ever produces representable observations), and
// failures must be one of the typed errors.
func FuzzReader(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			o, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) &&
					!errors.Is(err, ErrUnsupportedVersion) {
					t.Fatalf("untyped reader error: %v", err)
				}
				break
			}
			var buf bytes.Buffer
			w := NewWriterV2(&buf)
			if err := w.Write(o); err != nil || w.Flush() != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			got, err := NewReader(&buf).Read()
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if got != o {
				t.Fatalf("round trip diverged: %+v vs %+v", got, o)
			}
		}
	})
}

// FuzzSalvage: salvage must never panic, never error except for
// unrecognizable input, and never recover more than the input could
// possibly hold.
func FuzzSalvage(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var n uint64
		rep, err := Salvage(bytes.NewReader(data), func(Observation) { n++ })
		if err != nil {
			if !errors.Is(err, ErrBadMagic) {
				t.Fatalf("unexpected salvage error: %v", err)
			}
			return
		}
		if rep.Records != n {
			t.Fatalf("report says %d records, emitted %d", rep.Records, n)
		}
		// LZ frames expand on decode, but never past ~44x (a 3-byte match
		// token yields at most lzMaxMatch bytes), so records per stored
		// byte stay comfortably under 2.
		if rep.Records > uint64(2*len(data)) {
			t.Fatalf("recovered %d records from %d bytes", rep.Records, len(data))
		}
	})
}
