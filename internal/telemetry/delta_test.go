package telemetry

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"userv6/internal/netmodel"
)

// deltaRoundTrip encodes src, decodes the result, and fails unless the
// decode reproduces src exactly within the exact bound.
func deltaRoundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	enc := deltaAppendEncode(nil, src)
	dec, err := deltaAppendDecode(nil, enc, len(src))
	if err != nil {
		t.Fatalf("decode failed for %d-byte input: %v", len(src), err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip diverged for %d-byte input", len(src))
	}
	return enc
}

func TestDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	random := make([]byte, 37*recordSize)
	rng.Read(random)

	cases := map[string][]byte{
		"empty":         {},
		"one byte":      {0x42},
		"half a record": bytes.Repeat([]byte{7}, recordSize/2),
		"all zero":      make([]byte, 10*recordSize),
		"records":       lzRecordPayload(frameObs(200)),
		"noisy records": lzRecordPayload(noisyObs(200)),
		"random bytes":  random,
		"record + tail": append(lzRecordPayload(frameObs(3)), 'x', 'y'),
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { deltaRoundTrip(t, src) })
	}
}

// TestDeltaRoundTripExtremes: the per-column running values must wrap
// exactly like the encoder's per-record reads, so payloads holding
// extreme or descending values still round-trip.
func TestDeltaRoundTripExtremes(t *testing.T) {
	obs := []Observation{
		{Day: 1 << 30, UserID: ^uint64(0), ASN: netmodel.ASN(^uint32(0)), Requests: ^uint32(0)},
		{Day: -(1 << 30), UserID: 0, ASN: 0, Requests: 0},
		{Day: 0, UserID: 1, ASN: 1, Requests: 1},
		{Day: -1, UserID: ^uint64(0) - 1, ASN: 42, Requests: 7},
	}
	deltaRoundTrip(t, lzRecordPayload(obs))
}

// TestDeltaBeatsLZOnSortedRecords: the codec's whole reason to exist —
// on (user, day)-sorted record payloads the columnar delta form must be
// smaller than what the generic LZ stage manages.
func TestDeltaBeatsLZOnSortedRecords(t *testing.T) {
	payload := lzRecordPayload(benchObs(DefaultBlockRecords))
	delta := deltaRoundTrip(t, payload)
	lz := lzAppendEncode(nil, payload)
	if len(delta) >= len(lz) {
		t.Fatalf("delta %d bytes >= lz %d bytes on sorted records", len(delta), len(lz))
	}
	if len(delta)*4 > len(payload) {
		t.Fatalf("delta compressed %d -> %d bytes, want >= 4x on sorted records",
			len(payload), len(delta))
	}
}

func TestDeltaEncodeDeterministic(t *testing.T) {
	payload := lzRecordPayload(benchObs(500))
	a := deltaAppendEncode(nil, payload)
	b := deltaAppendEncode(nil, payload)
	if !bytes.Equal(a, b) {
		t.Fatal("encoder is not deterministic; merge passthrough depends on it")
	}
}

func TestDeltaDecodeRejectsAdversarial(t *testing.T) {
	cases := map[string]struct {
		src    []byte
		maxLen int
		want   error
	}{
		"empty payload":     {src: []byte{}, maxLen: 100, want: errDeltaEmpty},
		"unknown flag bits": {src: []byte{0x02, 0x00}, maxLen: 100, want: errDeltaFlags},
		"missing count":     {src: []byte{0x00}, maxLen: 100, want: errDeltaTruncated},
		"oversized count": {src: []byte{0x00, 0xff, 0xff, 0xff, 0xff, 0x0f},
			maxLen: 2 * recordSize, want: errDeltaCount},
		"truncated column": {src: []byte{0x00, 0x02, 0x00}, maxLen: 100, want: errDeltaTruncated},
		"tail over bound":  {src: []byte{0x00, 0x00, 'a', 'b', 'c'}, maxLen: 2, want: errDeltaTooLong},
		"bad lz cascade":   {src: []byte{0x01, 0x80}, maxLen: 100, want: errLZTruncated},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := deltaAppendDecode(nil, tc.src, tc.maxLen)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestCodecChainByName(t *testing.T) {
	ids := func(chain []BlockCodec) []CodecID {
		out := make([]CodecID, len(chain))
		for i, c := range chain {
			out[i] = c.ID()
		}
		return out
	}
	for name, want := range map[string][]CodecID{
		"":         nil,
		"identity": nil,
		"none":     nil,
		"lz":       {CodecLZ},
		"delta":    {CodecDelta},
		"auto":     {CodecDelta, CodecLZ},
		"AUTO":     {CodecDelta, CodecLZ},
	} {
		chain, ok := CodecChainByName(name)
		if !ok {
			t.Fatalf("CodecChainByName(%q) unknown", name)
		}
		got := ids(chain)
		if len(got) != len(want) {
			t.Fatalf("CodecChainByName(%q) = %v, want %v", name, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("CodecChainByName(%q) = %v, want %v", name, got, want)
			}
		}
	}
	if _, ok := CodecChainByName("zstd"); ok {
		t.Fatal("unknown policy resolved")
	}
	for in, want := range map[string]string{
		"": "", "identity": "", "NONE": "", "lz": "lz", "Auto": "auto", "zstd": "zstd",
	} {
		if got := CanonicalPolicy(in); got != want {
			t.Fatalf("CanonicalPolicy(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWriterV2PolicyAuto: sorted records must land under delta, noisy
// records under whatever wins per block (never larger than identity),
// and the stream must read back exactly under every reader.
func TestWriterV2PolicyAuto(t *testing.T) {
	obs := append(benchObs(3*DefaultBlockRecords/2), noisyObs(DefaultBlockRecords/2)...)
	var buf bytes.Buffer
	w, err := NewWriterV2Policy(&buf, DefaultBlockRecords, "auto")
	if err != nil {
		t.Fatal(err)
	}
	if w.Codec() != CodecDelta {
		t.Fatalf("auto writer Codec() = %v, want delta", w.Codec())
	}
	for _, o := range obs {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	ids := blockCodecs(t, buf.Bytes())
	if len(ids) == 0 || ids[0] != CodecDelta {
		t.Fatalf("first (sorted) block stored under %v, want delta", ids)
	}
	got, err := readAllV2(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(obs) {
		t.Fatalf("read %d of %d records", len(got), len(obs))
	}
	for i := range obs {
		if got[i] != obs[i] {
			t.Fatalf("record %d diverged", i)
		}
	}
}

func TestWriterV2PolicyUnknown(t *testing.T) {
	if _, err := NewWriterV2Policy(io.Discard, DefaultBlockRecords, "zstd"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestCodecCompatible(t *testing.T) {
	ident := NewWriterV2(io.Discard)
	if !ident.CodecCompatible(CodecIdentity) || ident.CodecCompatible(CodecLZ) {
		t.Fatal("identity writer compatibility wrong")
	}
	lzw, err := NewWriterV2Codec(io.Discard, DefaultBlockRecords, CodecLZ)
	if err != nil {
		t.Fatal(err)
	}
	if !lzw.CodecCompatible(CodecLZ) || lzw.CodecCompatible(CodecIdentity) || lzw.CodecCompatible(CodecDelta) {
		t.Fatal("lz writer compatibility wrong")
	}
	auto, err := NewWriterV2Policy(io.Discard, DefaultBlockRecords, "auto")
	if err != nil {
		t.Fatal(err)
	}
	if !auto.CodecCompatible(CodecDelta) || !auto.CodecCompatible(CodecLZ) || auto.CodecCompatible(CodecIdentity) {
		t.Fatal("auto writer compatibility wrong")
	}
}

// TestSalvageReportCodecBlocks: the per-codec block counts must agree
// with the codec set and sum to the intact block total.
func TestSalvageReportCodecBlocks(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriterV2Policy(&buf, 64, "auto")
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range append(benchObs(128), noisyObs(64)...) {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := Scan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for id, n := range rep.CodecBlocks {
		if !rep.Codecs.Has(id) {
			t.Fatalf("CodecBlocks has %v, Codecs does not", id)
		}
		if n == 0 {
			t.Fatalf("CodecBlocks[%v] = 0", id)
		}
		sum += n
	}
	if sum != uint64(rep.Blocks) {
		t.Fatalf("per-codec counts sum to %d, report has %d blocks", sum, rep.Blocks)
	}
	if rep.CodecBlocks[CodecDelta] == 0 {
		t.Fatalf("no delta blocks in an auto stream: %+v", rep.CodecBlocks)
	}
}

// FuzzDeltaRoundTrip: every input must encode and decode back to itself
// within the exact output bound.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(lzRecordPayload(frameObs(64)))
	f.Add(append(lzRecordPayload(benchObs(16)), 1, 2, 3))
	f.Fuzz(func(t *testing.T, src []byte) {
		enc := deltaAppendEncode(nil, src)
		dec, err := deltaAppendDecode(nil, enc, len(src))
		if err != nil {
			t.Fatalf("own output failed to decode: %v", err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatal("round trip diverged")
		}
	})
}

// FuzzDeltaDecode: arbitrary bytes fed to the decoder must never panic,
// read out of bounds, grow the output past the caller's bound, or fail
// with anything but the typed sentinels (its own, or the LZ stage's
// when the cascade flag is set).
func FuzzDeltaDecode(f *testing.F) {
	f.Add([]byte{}, 40)
	f.Add([]byte{0x00, 0x01}, 40)
	f.Add(deltaAppendEncode(nil, lzRecordPayload(frameObs(32))), 32*recordSize)
	f.Add([]byte{0x01, 0x00, 0x05}, 1<<12)
	f.Fuzz(func(t *testing.T, src []byte, maxLen int) {
		if maxLen < 0 || maxLen > DefaultBlockRecords*recordSize {
			maxLen = DefaultBlockRecords * recordSize
		}
		dec, err := deltaAppendDecode(nil, src, maxLen)
		if len(dec) > maxLen {
			t.Fatalf("decoded %d bytes past bound %d", len(dec), maxLen)
		}
		if err != nil &&
			!errors.Is(err, errDeltaEmpty) &&
			!errors.Is(err, errDeltaFlags) &&
			!errors.Is(err, errDeltaTruncated) &&
			!errors.Is(err, errDeltaCount) &&
			!errors.Is(err, errDeltaTooLong) &&
			!errors.Is(err, errLZTruncated) &&
			!errors.Is(err, errLZBadDistance) &&
			!errors.Is(err, errLZTooLong) {
			t.Fatalf("untyped decode error: %v", err)
		}
	})
}

// BenchmarkWriterV2Delta is BenchmarkWriterV2 under the auto policy:
// the cost of the delta transpose plus the LZ cascade and the
// smallest-wins comparison per block.
func BenchmarkWriterV2Delta(b *testing.B) {
	obs := benchObs(64 * DefaultBlockRecords)
	b.SetBytes(int64(len(obs)) * recordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := NewWriterV2Policy(io.Discard, DefaultBlockRecords, "auto")
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range obs {
			if err := w.Write(o); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReaderV2Delta measures CRC-verify + delta-decode + record
// decode throughput. SetBytes uses the decoded size, so the number is
// directly comparable to BenchmarkReaderV2 and BenchmarkReaderV2LZ.
func BenchmarkReaderV2Delta(b *testing.B) {
	obs := benchObs(64 * DefaultBlockRecords)
	var buf bytes.Buffer
	w, err := NewWriterV2Policy(&buf, DefaultBlockRecords, "delta")
	if err != nil {
		b.Fatal(err)
	}
	for _, o := range obs {
		if err := w.Write(o); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(obs)) * recordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(buf.Bytes()))
		n := 0
		if err := r.ForEach(func(Observation) { n++ }); err != nil {
			b.Fatal(err)
		}
		if n != len(obs) {
			b.Fatalf("read %d of %d records", n, len(obs))
		}
	}
}
