package telemetry

// A small byte-level LZ codec, baked in because the repo rule forbids
// new dependencies. The format is a single token stream:
//
//	control byte c < 0x80: literal run of c+1 bytes (1..128) follows
//	control byte c >= 0x80: match of (c&0x7f)+4 bytes (4..131) at a
//	    back-distance given by the following uint16 LE (1..65535)
//
// Matches may overlap their own output (distance < length), which is
// what makes runs of a repeated byte compress. Telemetry payloads are
// fixed 40-byte records whose high bytes are mostly zero and whose
// fields repeat across adjacent records (same user, same day, same
// /64), so even this greedy single-pass encoder lands well above the
// 2x target on generated datasets.
//
// The decoder is total: any input either decodes or fails with a typed
// error; it never panics, reads out of bounds, or allocates past the
// caller-supplied output bound.

import (
	"encoding/binary"
	"errors"
	"sync"
)

const (
	lzMinMatch    = 4
	lzMaxMatch    = 0x7f + lzMinMatch
	lzMaxLiteral  = 128
	lzMaxDistance = 1<<16 - 1
	lzHashLog     = 14
)

// Decoder failure modes, all wrapped into a *CorruptError by the frame
// layer; package-level so the hot path never formats strings.
var (
	errLZTruncated   = errors.New("truncated lz token")
	errLZBadDistance = errors.New("lz match distance out of range")
	errLZTooLong     = errors.New("lz output exceeds bound")
)

// lzTablePool recycles the encoder's hash table (64 KiB) across blocks.
var lzTablePool = sync.Pool{
	New: func() any { return new([1 << lzHashLog]int32) },
}

func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzHashLog)
}

// lzAppendEncode appends the LZ encoding of src to dst and returns the
// extended slice. The output is deterministic for a given src, which
// the merge passthrough relies on: re-encoding the same block payload
// reproduces the same bytes.
func lzAppendEncode(dst, src []byte) []byte {
	if len(src) < lzMinMatch {
		return lzAppendLiterals(dst, src)
	}
	table := lzTablePool.Get().(*[1 << lzHashLog]int32)
	clear(table[:])
	defer lzTablePool.Put(table)

	// Table entries store position+1 so the zero value means "empty".
	s, lit := 0, 0
	limit := len(src) - lzMinMatch
	for s <= limit {
		seq := binary.LittleEndian.Uint32(src[s:])
		h := lzHash(seq)
		cand := int(table[h]) - 1
		table[h] = int32(s + 1)
		if cand < 0 || s-cand > lzMaxDistance ||
			binary.LittleEndian.Uint32(src[cand:]) != seq {
			s++
			continue
		}
		mlen := lzMinMatch
		for s+mlen < len(src) && mlen < lzMaxMatch && src[cand+mlen] == src[s+mlen] {
			mlen++
		}
		dst = lzAppendLiterals(dst, src[lit:s])
		dist := s - cand
		dst = append(dst, 0x80|byte(mlen-lzMinMatch), byte(dist), byte(dist>>8))
		s += mlen
		lit = s
	}
	return lzAppendLiterals(dst, src[lit:])
}

// lzAppendLiterals emits lit as a sequence of literal runs.
func lzAppendLiterals(dst, lit []byte) []byte {
	for len(lit) > 0 {
		n := min(len(lit), lzMaxLiteral)
		dst = append(dst, byte(n-1))
		dst = append(dst, lit[:n]...)
		lit = lit[n:]
	}
	return dst
}

// lzAppendDecode appends the decoded form of src to dst, refusing to
// grow the decoded portion past maxLen bytes. Match distances are
// relative to the start of this block's decoded output (base = the
// initial len(dst)), so dst may carry unrelated prior content.
func lzAppendDecode(dst, src []byte, maxLen int) ([]byte, error) {
	base := len(dst)
	bound := base + maxLen
	for i := 0; i < len(src); {
		c := src[i]
		i++
		if c < 0x80 {
			n := int(c) + 1
			if i+n > len(src) {
				return dst, errLZTruncated
			}
			if len(dst)+n > bound {
				return dst, errLZTooLong
			}
			dst = append(dst, src[i:i+n]...)
			i += n
			continue
		}
		if i+2 > len(src) {
			return dst, errLZTruncated
		}
		mlen := int(c&0x7f) + lzMinMatch
		dist := int(binary.LittleEndian.Uint16(src[i:]))
		i += 2
		pos := len(dst) - dist
		if dist == 0 || pos < base {
			return dst, errLZBadDistance
		}
		if len(dst)+mlen > bound {
			return dst, errLZTooLong
		}
		if dist >= mlen {
			dst = append(dst, dst[pos:pos+mlen]...)
			continue
		}
		// Overlapping match: the source window grows as we copy.
		for k := 0; k < mlen; k++ {
			dst = append(dst, dst[pos+k])
		}
	}
	return dst, nil
}
