package telemetry

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/simtime"
)

// encodeV2LZ writes obs into a v2 stream under the LZ codec.
func encodeV2LZ(t *testing.T, obs []Observation, perBlock int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterV2Codec(&buf, perBlock, CodecLZ)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// noisyObs builds observations whose encoded records are almost all
// random bytes, so LZ cannot shrink the block payload.
func noisyObs(n int) []Observation {
	rng := rand.New(rand.NewSource(99))
	out := make([]Observation, n)
	for i := range out {
		o := Observation{
			Day:      simtime.Day(rng.Int31()),
			UserID:   rng.Uint64(),
			Addr:     netaddr.AddrFrom6(rng.Uint64(), rng.Uint64()),
			Requests: rng.Uint32(),
			ASN:      netmodel.ASN(rng.Uint32()),
			Abusive:  rng.Intn(2) == 0,
		}
		o.SetCountry(string([]byte{byte('A' + rng.Intn(26)), byte('A' + rng.Intn(26))}))
		out[i] = o
	}
	return out
}

// blockCodecs reads every frame in a v2 stream and returns its codecs
// in order.
func blockCodecs(t *testing.T, stream []byte) []CodecID {
	t.Helper()
	br := NewBlockReader(bytes.NewReader(stream))
	var ids []CodecID
	for {
		b, err := br.Next(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, b.Codec)
	}
	return ids
}

func TestWriterV2LZRoundTrip(t *testing.T) {
	obs := frameObs(1000)
	lz := encodeV2LZ(t, obs, 128)
	plain := encodeV2(t, obs, 128)
	if len(lz) >= len(plain) {
		t.Fatalf("LZ stream %d bytes, identity stream %d", len(lz), len(plain))
	}
	got, err := readAllV2(lz)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(obs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(obs))
	}
	for i := range got {
		if got[i] != obs[i] {
			t.Fatalf("record %d diverged: %+v vs %+v", i, got[i], obs[i])
		}
	}
	for i, id := range blockCodecs(t, lz) {
		if id != CodecLZ {
			t.Fatalf("block %d stored as %v, want lz", i, id)
		}
	}
}

// TestWriterV2LZFallbackIdentity: when encoding does not shrink a block
// the writer must store it under identity, and readers must accept the
// mixed stream.
func TestWriterV2LZFallbackIdentity(t *testing.T) {
	obs := noisyObs(256)
	stream := encodeV2LZ(t, obs, 64)
	ids := blockCodecs(t, stream)
	if len(ids) != 4 {
		t.Fatalf("got %d blocks, want 4", len(ids))
	}
	for i, id := range ids {
		if id != CodecIdentity {
			t.Fatalf("noisy block %d stored as %v, want identity fallback", i, id)
		}
	}
	got, err := readAllV2(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(obs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(obs))
	}
}

// TestReaderRejectsUnknownCodec: a frame whose flags byte names a codec
// this build does not implement is corrupt, not skippable garbage the
// reader should guess at.
func TestReaderRejectsUnknownCodec(t *testing.T) {
	obs := frameObs(128)
	stream := append([]byte{}, encodeV2LZ(t, obs, 64)...)
	// The flags byte is the high byte of the little-endian count word at
	// header offset 8 — byte 11 of the first frame, which starts right
	// after the 4-byte stream magic.
	off := 4 + 8 + 3
	if stream[off] != byte(CodecLZ) {
		t.Fatalf("flags byte at %d is %d, want %d", off, stream[off], CodecLZ)
	}
	stream[off] = 7
	_, err := readAllV2(stream)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown codec gave %v, want ErrCorrupt", err)
	}
	var n uint64
	rep, err := Salvage(bytes.NewReader(stream), func(Observation) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if n != 64 || rep.Records != 64 {
		t.Fatalf("salvage recovered %d records, want the 64 from the intact block", n)
	}
	if rep.CorruptBlocks != 1 {
		t.Fatalf("CorruptBlocks = %d, want 1", rep.CorruptBlocks)
	}
	if !rep.Codecs.Has(CodecLZ) || rep.Codecs.Has(CodecID(7)) {
		t.Fatalf("salvage codec set %v wrong", rep.Codecs.Names())
	}
}

// TestSalvageCRCValidButUndecodable: a frame can checksum clean while
// its payload fails to decode to count*recordSize bytes (the checksum
// covers stored bytes). Salvage must drop the whole frame, not emit a
// short block.
func TestSalvageCRCValidButUndecodable(t *testing.T) {
	payload := lzAppendEncode(nil, make([]byte, 10*recordSize))
	var stream []byte
	stream = append(stream, magicV2[:]...)
	stream = append(stream, blockMagic[:]...)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], packCountFlags(16, CodecLZ))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(payload, castagnoli))
	stream = append(stream, hdr[:]...)
	stream = append(stream, payload...)

	if _, err := readAllV2(stream); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("undecodable frame gave %v, want ErrCorrupt", err)
	}
	var n uint64
	rep, err := Salvage(bytes.NewReader(stream), func(Observation) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || rep.Records != 0 {
		t.Fatalf("salvage emitted %d records from an undecodable frame", n)
	}
	if rep.CorruptBlocks != 1 {
		t.Fatalf("CorruptBlocks = %d, want 1", rep.CorruptBlocks)
	}
}

// TestSalvageCompressedCorruption is the flip-a-byte drill from the
// format docs, on a compressed stream: one damaged byte inside a
// block's stored payload must cost exactly that block, with every
// sibling recovered and the reports agreeing across Salvage, Scan, and
// SalvageRawBlocks.
func TestSalvageCompressedCorruption(t *testing.T) {
	const perBlock = 64
	obs := frameObs(perBlock * 5)
	stream := append([]byte{}, encodeV2LZ(t, obs, perBlock)...)

	// Locate block 2's stored payload via a clean raw walk.
	var offsets []int64
	var lengths []int
	if _, err := SalvageRawBlocks(stream, func(b RawBlock, decoded []byte) {
		offsets = append(offsets, b.Offset)
		lengths = append(lengths, len(b.Payload))
	}); err != nil {
		t.Fatal(err)
	}
	if len(offsets) != 5 {
		t.Fatalf("got %d blocks, want 5", len(offsets))
	}
	stream[int(offsets[2])+blockHeaderSize+lengths[2]/2] ^= 0xff

	var got []Observation
	rep, err := Salvage(bytes.NewReader(stream), func(o Observation) { got = append(got, o) })
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Observation{}, obs[:2*perBlock]...), obs[3*perBlock:]...)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d diverged", i)
		}
	}
	if rep.Blocks != 4 || rep.CorruptBlocks != 1 || rep.Intact() {
		t.Fatalf("report %+v: want 4 intact blocks, 1 corrupt, not intact", rep)
	}
	if rep.SkippedBytes != int64(blockHeaderSize+lengths[2]) {
		t.Fatalf("SkippedBytes = %d, want the whole damaged frame (%d)",
			rep.SkippedBytes, blockHeaderSize+lengths[2])
	}

	// Scan and the raw-block walk must report identical coverage.
	scan, err := Scan(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	var rawRecs uint64
	raw, err := SalvageRawBlocks(stream, func(b RawBlock, decoded []byte) {
		if len(decoded) != b.Count*recordSize {
			t.Fatalf("decoded %d bytes for a %d-record block", len(decoded), b.Count)
		}
		rawRecs += uint64(b.Count)
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, other := range map[string]SalvageReport{"Scan": scan, "SalvageRawBlocks": raw} {
		if other.Blocks != rep.Blocks || other.CorruptBlocks != rep.CorruptBlocks ||
			other.Records != rep.Records || other.SkippedBytes != rep.SkippedBytes ||
			other.Codecs != rep.Codecs {
			t.Fatalf("%s coverage %+v disagrees with Salvage %+v", name, other, rep)
		}
	}
	if rawRecs != rep.Records {
		t.Fatalf("raw walk visited %d records, report says %d", rawRecs, rep.Records)
	}
}

func TestWriteEncodedBlockPassthrough(t *testing.T) {
	obs := frameObs(512)
	orig := encodeV2LZ(t, obs, 64)

	var buf bytes.Buffer
	w, err := NewWriterV2Codec(&buf, 64, CodecLZ)
	if err != nil {
		t.Fatal(err)
	}
	br := NewBlockReader(bytes.NewReader(orig))
	for {
		b, err := br.Next(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ok, err := w.WriteEncodedBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("writer declined an aligned same-codec block (index %d)", b.Index)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), orig) {
		t.Fatal("passthrough re-emission diverged from the original stream")
	}
	if w.Count() != uint64(len(obs)) || w.Blocks() != 8 {
		t.Fatalf("counters: %d records / %d blocks", w.Count(), w.Blocks())
	}
}

func TestWriteEncodedBlockDeclines(t *testing.T) {
	obs := frameObs(128)
	stream := encodeV2LZ(t, obs, 64)
	br := NewBlockReader(bytes.NewReader(stream))
	blk, err := br.Next(nil)
	if err != nil {
		t.Fatal(err)
	}

	mk := func(perBlock int, codec CodecID) *WriterV2 {
		w, err := NewWriterV2Codec(io.Discard, perBlock, codec)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	cases := map[string]func() (*WriterV2, RawBlock){
		"codec mismatch": func() (*WriterV2, RawBlock) {
			return mk(64, CodecIdentity), blk
		},
		"count below perBlock": func() (*WriterV2, RawBlock) {
			return mk(128, CodecLZ), blk
		},
		"writer mid-block": func() (*WriterV2, RawBlock) {
			w := mk(64, CodecLZ)
			if err := w.Write(obs[0]); err != nil {
				t.Fatal(err)
			}
			return w, blk
		},
		"v1 block": func() (*WriterV2, RawBlock) {
			var v1 bytes.Buffer
			w1 := NewWriter(&v1)
			for _, o := range obs[:64] {
				if err := w1.Write(o); err != nil {
					t.Fatal(err)
				}
			}
			if err := w1.Flush(); err != nil {
				t.Fatal(err)
			}
			b1, err := NewBlockReader(bytes.NewReader(v1.Bytes())).Next(nil)
			if err != nil {
				t.Fatal(err)
			}
			return mk(64, CodecLZ), b1
		},
	}
	for name, setup := range cases {
		t.Run(name, func(t *testing.T) {
			w, b := setup()
			ok, err := w.WriteEncodedBlock(b)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatal("writer accepted a block it must re-encode")
			}
		})
	}
}

func TestFrameShapeValid(t *testing.T) {
	cases := []struct {
		length, count uint32
		codec         CodecID
		want          bool
	}{
		{40, 1, CodecIdentity, true},
		{41, 1, CodecIdentity, false},
		{0, 0, CodecIdentity, false},
		{39, 1, CodecLZ, true},
		{40, 1, CodecLZ, false}, // not strictly smaller: writer would have fallen back
		{0, 1, CodecLZ, false},
		{39, 1, CodecID(7), false}, // unknown codec
		{40 * (maxBlockRecords + 1), maxBlockRecords + 1, CodecIdentity, false},
	}
	for _, tc := range cases {
		if got := frameShapeValid(tc.length, tc.count, tc.codec); got != tc.want {
			t.Errorf("frameShapeValid(%d, %d, %v) = %v, want %v",
				tc.length, tc.count, tc.codec, got, tc.want)
		}
	}
}

// TestBlockAppendDecoded: the block-level decode used by the parallel
// reader must handle both stored forms and reject unknown codecs.
func TestBlockAppendDecoded(t *testing.T) {
	obs := frameObs(64)
	stream := encodeV2LZ(t, obs, 64)
	blk, err := NewBlockReader(bytes.NewReader(stream)).Next(nil)
	if err != nil {
		t.Fatal(err)
	}
	if blk.Codec != CodecLZ {
		t.Fatalf("block codec %v, want lz", blk.Codec)
	}
	recs, scratch, err := blk.AppendDecoded(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 64 {
		t.Fatalf("decoded %d records, want 64", len(recs))
	}
	for i := range recs {
		if recs[i] != obs[i] {
			t.Fatalf("record %d diverged", i)
		}
	}
	// Scratch reuse must reproduce the same result.
	recs2, _, err := blk.AppendDecoded(nil, scratch)
	if err != nil || len(recs2) != 64 {
		t.Fatalf("scratch-reuse decode: %d records, err %v", len(recs2), err)
	}

	bad := blk
	bad.Codec = CodecID(9)
	if _, _, err := bad.AppendDecoded(nil, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown codec decode gave %v, want ErrCorrupt", err)
	}
}

func TestPackSplitCountFlags(t *testing.T) {
	for _, count := range []int{1, 1024, maxBlockRecords} {
		for _, codec := range []CodecID{CodecIdentity, CodecLZ, CodecID(200)} {
			word := packCountFlags(count, codec)
			c, id := splitCountFlags(word)
			if int(c) != count || id != codec {
				t.Fatalf("pack/split(%d, %v) -> (%d, %v)", count, codec, c, id)
			}
		}
	}
	if _, id := splitCountFlags(1024); id != CodecIdentity {
		t.Fatal("pre-codec count word must read as identity")
	}
}
