package telemetry

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// v2Stream encodes obs into a framed v2 stream with the given block size.
func v2Stream(t testing.TB, obs []Observation, perBlock int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriterV2Blocks(&buf, perBlock)
	for _, o := range obs {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// v1Stream encodes obs into a legacy v1 stream.
func v1Stream(t testing.TB, obs []Observation) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, o := range obs {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drainBlocks reads every block, reusing one payload buffer, and
// decodes the records.
func drainBlocks(t *testing.T, data []byte) []Observation {
	t.Helper()
	br := NewBlockReader(bytes.NewReader(data))
	var out []Observation
	var buf []byte
	for {
		blk, err := br.Next(buf)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out, err = blk.Decode(out)
		if err != nil {
			t.Fatal(err)
		}
		buf = blk.Payload
	}
}

func TestBlockReaderMatchesReader(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []byte
		n    int
	}{
		{"v2-multi-block", v2Stream(t, benchObs(2500), 1000), 2500},
		{"v2-partial-tail", v2Stream(t, benchObs(1500), 1024), 1500},
		{"v2-empty", v2Stream(t, nil, 1024), 0},
		{"v1", v1Stream(t, benchObs(3000)), 3000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var want []Observation
			if err := NewReader(bytes.NewReader(tc.data)).ForEach(func(o Observation) {
				want = append(want, o)
			}); err != nil {
				t.Fatal(err)
			}
			got := drainBlocks(t, tc.data)
			if len(got) != tc.n || len(want) != tc.n {
				t.Fatalf("got %d / want %d records, expected %d", len(got), len(want), tc.n)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d differs: %+v vs %+v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestBlockReaderIndexesSequential(t *testing.T) {
	data := v2Stream(t, benchObs(4096), 512)
	br := NewBlockReader(bytes.NewReader(data))
	for want := 0; ; want++ {
		blk, err := br.Next(nil)
		if err == io.EOF {
			if want != 8 {
				t.Fatalf("saw %d blocks, want 8", want)
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if blk.Index != want {
			t.Fatalf("block index %d, want %d", blk.Index, want)
		}
		if !blk.Checksummed() {
			t.Fatal("v2 block reports no checksum")
		}
		if err := blk.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBlockReaderDetectsCorruptPayload(t *testing.T) {
	data := v2Stream(t, benchObs(2048), 1024)
	// Flip a payload byte in the second block: the scan must still hand
	// the block over, and Verify must reject it with its index.
	off := 4 + blockHeaderSize + 1024*recordSize + blockHeaderSize + 100
	data[off] ^= 0xff

	br := NewBlockReader(bytes.NewReader(data))
	b0, err := br.Next(nil)
	if err != nil || b0.Verify() != nil {
		t.Fatalf("first block should verify: %v", err)
	}
	b1, err := br.Next(nil)
	if err != nil {
		t.Fatalf("scan must not fail on a bad checksum: %v", err)
	}
	verr := b1.Verify()
	var ce *CorruptError
	if !errors.As(verr, &ce) || ce.Block != 1 {
		t.Fatalf("want *CorruptError for block 1, got %v", verr)
	}
	if _, derr := b1.Decode(nil); !errors.Is(derr, ErrCorrupt) {
		t.Fatalf("Decode must reject the block: %v", derr)
	}
}

func TestBlockReaderBadMarker(t *testing.T) {
	data := v2Stream(t, benchObs(100), 50)
	copy(data[4:], "junk")
	_, err := NewBlockReader(bytes.NewReader(data)).Next(nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestBlockReaderV1TruncatedTail(t *testing.T) {
	data := v1Stream(t, benchObs(10))
	data = data[:len(data)-7] // tear the last record

	br := NewBlockReader(bytes.NewReader(data))
	blk, err := br.Next(nil)
	if err != nil {
		t.Fatal(err)
	}
	if blk.Count != 9 {
		t.Fatalf("recovered %d complete records, want 9", blk.Count)
	}
	if _, err := br.Next(blk.Payload); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn tail must yield ErrCorrupt, got %v", err)
	}
	// The error is sticky.
	if _, err := br.Next(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sticky error lost: %v", err)
	}
}

// SalvageBlocks must report exactly what Salvage reports and deliver
// the same records, both on intact and damaged streams.
func TestSalvageBlocksMatchesSalvage(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"intact", func(b []byte) []byte { return b }},
		{"corrupt-middle", func(b []byte) []byte {
			b[4+blockHeaderSize+512*recordSize+blockHeaderSize+9] ^= 0x40
			return b
		}},
		{"torn-tail", func(b []byte) []byte { return b[:len(b)-33] }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(v2Stream(t, benchObs(2000), 512))

			var want []Observation
			wantRep, werr := SalvageBytes(data, func(o Observation) { want = append(want, o) })

			var got []Observation
			gotRep, gerr := SalvageBlocks(data, func(payload []byte, count int) {
				before := len(got)
				got = AppendRecords(got, payload)
				if len(got)-before != count {
					t.Fatalf("payload decoded to %d records, header says %d", len(got)-before, count)
				}
			})
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("error mismatch: %v vs %v", werr, gerr)
			}
			if !wantRep.Equal(gotRep) {
				t.Fatalf("reports differ:\n salvage: %+v\n  blocks: %+v", wantRep, gotRep)
			}
			if len(want) != len(got) {
				t.Fatalf("recovered %d vs %d records", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d differs", i)
				}
			}
		})
	}
}

// A v1 stream is delivered in bounded pseudo-blocks but still reported
// as a single block.
func TestSalvageBlocksV1Chunks(t *testing.T) {
	data := v1Stream(t, benchObs(2*DefaultBlockRecords+100))
	visits := 0
	total := 0
	rep, err := SalvageBlocks(data, func(payload []byte, count int) {
		visits++
		total += count
		if count > DefaultBlockRecords {
			t.Fatalf("pseudo-block of %d records exceeds cap", count)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if visits != 3 || total != 2*DefaultBlockRecords+100 {
		t.Fatalf("visits=%d total=%d", visits, total)
	}
	if rep.Blocks != 1 || rep.Records != uint64(total) {
		t.Fatalf("report %+v", rep)
	}
}
