package telemetry

// Format v2: framed record blocks with per-block CRC32C checksums.
//
// A v2 stream is the 4-byte signature "uv6\x02" followed by a sequence
// of blocks. Each block is a 16-byte frame header and a payload of
// consecutive fixed-size records:
//
//	offset size field
//	0      4    block marker "blk\x01"
//	4      4    payload length in bytes (uint32 LE, = count*recordSize)
//	8      4    record count (uint32 LE, > 0)
//	12     4    CRC32C (Castagnoli) of the payload (uint32 LE)
//	16     N    payload: count records of recordSize bytes
//
// The design goals, in the spirit of the IPv6 Hitlists pipelines that
// must tolerate malformed input at scale: a single flipped bit anywhere
// in a block is detected by the checksum; the per-block marker lets
// Salvage resynchronize past a corrupt or truncated region and recover
// every other intact block; and the strict length/count bounds make the
// decoder total — arbitrary bytes either decode or fail with a typed
// error, never panic or allocate unbounded memory.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	blockHeaderSize = 16
	// DefaultBlockRecords is the records-per-block target for WriterV2:
	// 1024 records = 40 KiB payloads, small enough that one corrupt
	// block loses little, large enough that framing overhead is ~0.04%.
	DefaultBlockRecords = 1024
	// maxBlockRecords bounds the record count a reader accepts in one
	// frame, capping per-block allocation at 2.5 MiB.
	maxBlockRecords = 1 << 16
	maxBlockPayload = maxBlockRecords * recordSize
)

var (
	magicV2    = [4]byte{'u', 'v', '6', 2}
	blockMagic = [4]byte{'b', 'l', 'k', 1}
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// ErrCorrupt is the sentinel wrapped by every *CorruptError, so callers
// can test errors.Is(err, ErrCorrupt) without caring about the detail.
var ErrCorrupt = errors.New("telemetry: corrupt data")

// CorruptError reports a v2 frame that failed validation: a bad marker,
// an impossible length/count, a short read, or a checksum mismatch.
type CorruptError struct {
	Block  int    // 0-based index of the failing block
	Offset int64  // byte offset of the frame start within the stream
	Reason string // human-readable failure detail
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("telemetry: corrupt block %d at offset %d: %s", e.Block, e.Offset, e.Reason)
}

// Unwrap makes errors.Is(err, ErrCorrupt) true.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// WriterV2 streams observations in the framed v2 format. Records are
// buffered into blocks and emitted with a checksum when a block fills;
// Flush emits any partial block and drains the buffer, so it must be
// called before the stream is final (partial blocks are valid blocks —
// a stream may freely mix block sizes).
type WriterV2 struct {
	bw          *bufio.Writer
	payload     []byte
	hdr         [blockHeaderSize]byte
	rec         [recordSize]byte
	perBlock    int
	count       int // records in the current (unflushed) block
	n           uint64
	blocks      uint64
	wroteHeader bool
}

// NewWriterV2 returns a v2 Writer with the default block size.
func NewWriterV2(w io.Writer) *WriterV2 { return NewWriterV2Blocks(w, DefaultBlockRecords) }

// NewWriterV2Blocks returns a v2 Writer emitting blocks of
// recordsPerBlock records (clamped to [1, maxBlockRecords]).
func NewWriterV2Blocks(w io.Writer, recordsPerBlock int) *WriterV2 {
	if recordsPerBlock <= 0 || recordsPerBlock > maxBlockRecords {
		recordsPerBlock = DefaultBlockRecords
	}
	return &WriterV2{
		bw:       bufio.NewWriterSize(w, 1<<16),
		payload:  make([]byte, 0, recordsPerBlock*recordSize),
		perBlock: recordsPerBlock,
	}
}

// Write appends one observation, emitting a block when full.
func (w *WriterV2) Write(o Observation) error {
	if err := w.writeMagic(); err != nil {
		return err
	}
	encodeRecord(w.rec[:], o)
	w.payload = append(w.payload, w.rec[:]...)
	w.count++
	w.n++
	if w.count >= w.perBlock {
		return w.emitBlock()
	}
	return nil
}

func (w *WriterV2) writeMagic() error {
	if w.wroteHeader {
		return nil
	}
	if _, err := w.bw.Write(magicV2[:]); err != nil {
		return fmt.Errorf("telemetry: write header: %w", err)
	}
	w.wroteHeader = true
	return nil
}

func (w *WriterV2) emitBlock() error {
	if w.count == 0 {
		return nil
	}
	h := w.hdr[:]
	copy(h, blockMagic[:])
	binary.LittleEndian.PutUint32(h[4:], uint32(len(w.payload)))
	binary.LittleEndian.PutUint32(h[8:], uint32(w.count))
	binary.LittleEndian.PutUint32(h[12:], crc32.Checksum(w.payload, castagnoli))
	if _, err := w.bw.Write(h); err != nil {
		return fmt.Errorf("telemetry: write frame: %w", err)
	}
	if _, err := w.bw.Write(w.payload); err != nil {
		return fmt.Errorf("telemetry: write frame payload: %w", err)
	}
	w.payload = w.payload[:0]
	w.count = 0
	w.blocks++
	return nil
}

// Count returns the number of records written.
func (w *WriterV2) Count() uint64 { return w.n }

// Blocks returns the number of frames emitted so far (the block in
// progress is not counted until it is flushed). Sharded sinks record it
// per part so a merge can verify per-part coverage.
func (w *WriterV2) Blocks() uint64 { return w.blocks }

// Flush emits the partial block in progress (if any) and drains the
// buffer. An empty stream still gets its signature, so a zero-record
// v2 file is recognizable as v2.
func (w *WriterV2) Flush() error {
	if err := w.writeMagic(); err != nil {
		return err
	}
	if err := w.emitBlock(); err != nil {
		return err
	}
	return w.bw.Flush()
}

// readV2 serves the next record from the current block, pulling and
// verifying the next frame when the block is exhausted.
func (r *Reader) readV2() (Observation, error) {
	for r.blkOff >= len(r.blk) {
		if err := r.readBlock(); err != nil {
			return Observation{}, err
		}
	}
	o := decodeRecord(r.blk[r.blkOff:])
	r.blkOff += recordSize
	return o, nil
}

// readBlock reads and verifies one frame. io.EOF is returned only at a
// clean frame boundary; anything else is a *CorruptError.
func (r *Reader) readBlock() error {
	frameOff := r.off
	h := r.hdr[:]
	n, err := io.ReadFull(r.br, h)
	r.off += int64(n)
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return &CorruptError{Block: r.blockIdx, Offset: frameOff, Reason: "short frame header"}
	}
	if [4]byte(h[0:4]) != blockMagic {
		return &CorruptError{Block: r.blockIdx, Offset: frameOff, Reason: "bad block marker"}
	}
	length := binary.LittleEndian.Uint32(h[4:])
	count := binary.LittleEndian.Uint32(h[8:])
	sum := binary.LittleEndian.Uint32(h[12:])
	if length > maxBlockPayload {
		return &CorruptError{Block: r.blockIdx, Offset: frameOff,
			Reason: fmt.Sprintf("oversized frame (%d bytes)", length)}
	}
	if count == 0 || uint64(count)*recordSize != uint64(length) {
		return &CorruptError{Block: r.blockIdx, Offset: frameOff,
			Reason: fmt.Sprintf("frame length %d / record count %d mismatch", length, count)}
	}
	if cap(r.blk) < int(length) {
		r.blk = make([]byte, length)
	} else {
		r.blk = r.blk[:length]
	}
	n, err = io.ReadFull(r.br, r.blk)
	r.off += int64(n)
	if err != nil {
		return &CorruptError{Block: r.blockIdx, Offset: frameOff, Reason: "short frame payload"}
	}
	if got := crc32.Checksum(r.blk, castagnoli); got != sum {
		return &CorruptError{Block: r.blockIdx, Offset: frameOff,
			Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", sum, got)}
	}
	r.blkOff = 0
	r.blockIdx++
	return nil
}

// SalvageReport summarizes what Salvage or Scan recovered from a
// possibly damaged stream.
type SalvageReport struct {
	// Version is the detected format (1 or 2). When the signature
	// itself is damaged but intact v2 blocks were found, Version is 2.
	Version int
	// Blocks is the number of intact blocks recovered. A v1 stream
	// counts as one pseudo-block when it yields any records.
	Blocks int
	// CorruptBlocks counts frames whose marker was found but which
	// failed validation or checksum (regions with a destroyed marker
	// show up in SkippedBytes instead).
	CorruptBlocks int
	// Records is the number of records recovered from intact blocks.
	Records uint64
	// SkippedBytes is the byte count not accounted for by the signature
	// or an intact block — corrupt frames, torn tails, garbage.
	SkippedBytes int64
}

// Intact reports whether the stream decoded end to end with nothing
// skipped or corrupt.
func (r SalvageReport) Intact() bool {
	return r.CorruptBlocks == 0 && r.SkippedBytes == 0
}

// Scan is Salvage without record delivery: it verifies the stream and
// reports what a salvage pass would recover.
func Scan(r io.Reader) (SalvageReport, error) {
	return Salvage(r, nil)
}

// Salvage recovers every intact record from a possibly corrupted or
// truncated stream, emitting recovered records in stream order. For v2
// streams it validates each frame's checksum and resynchronizes on the
// block marker after damage, so one corrupt block never hides the
// blocks behind it. For v1 streams (no checksums) it recovers all
// complete records and drops a torn tail. The stream is buffered in
// memory; salvage is an offline recovery operation, not a hot path.
//
// Salvage returns ErrBadMagic only when the input is unrecognizable:
// no valid signature and no intact v2 block anywhere.
func Salvage(r io.Reader, emit EmitFunc) (SalvageReport, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return SalvageReport{}, fmt.Errorf("telemetry: salvage read: %w", err)
	}
	return salvageBytes(data, emit)
}

// SalvageBytes is Salvage over an in-memory stream. Callers that manage
// their own I/O (e.g. a merge engine retrying transient read errors
// before decoding) use it to keep the read and the salvage pass
// separate: by the time SalvageBytes runs, no I/O error can interrupt
// emission, so a retry can never deliver duplicate records.
func SalvageBytes(data []byte, emit EmitFunc) (SalvageReport, error) {
	return salvageBytes(data, emit)
}

func salvageBytes(data []byte, emit EmitFunc) (SalvageReport, error) {
	var visit func(payload []byte, count int)
	if emit != nil {
		visit = func(payload []byte, count int) {
			for rec := 0; rec < count; rec++ {
				emit(decodeRecord(payload[rec*recordSize:]))
			}
		}
	}
	return salvageWalk(data, visit)
}

// SalvageBlocks walks data exactly like Salvage but delivers the intact
// block payloads — already checksum-verified, each a whole number of
// records — instead of decoded records, so a caller can fan record
// decoding out to a worker pool while the marker-resync scan stays
// sequential (the scan must know each candidate frame's checksum
// verdict before choosing the next scan position, so the verify step
// cannot be deferred without changing which bytes salvage recovers).
// Payload slices alias data and stay valid as long as data does. A v1
// stream, which has no frames, is delivered in pseudo-blocks of at most
// DefaultBlockRecords records; the report still counts it as one block.
func SalvageBlocks(data []byte, visit func(payload []byte, count int)) (SalvageReport, error) {
	return salvageWalk(data, visit)
}

func salvageWalk(data []byte, visit func(payload []byte, count int)) (SalvageReport, error) {
	var rep SalvageReport
	if len(data) >= 4 && [4]byte(data[0:4]) == magic {
		// v1: fixed records with no checksums — every complete record
		// is recoverable, a trailing partial record is dropped.
		rep.Version = 1
		body := data[4:]
		nrec := len(body) / recordSize
		rep.Records = uint64(nrec)
		if nrec > 0 {
			rep.Blocks = 1
		}
		rep.SkippedBytes = int64(len(body) - nrec*recordSize)
		if visit != nil {
			for i := 0; i < nrec; i += DefaultBlockRecords {
				n := min(DefaultBlockRecords, nrec-i)
				visit(body[i*recordSize:(i+n)*recordSize], n)
			}
		}
		return rep, nil
	}

	start := 0
	if len(data) >= 4 && [4]byte(data[0:4]) == magicV2 {
		rep.Version = 2
		start = 4
	}
	i, lastEnd := start, start
	for i+blockHeaderSize <= len(data) {
		if [4]byte(data[i:i+4]) != blockMagic {
			i++
			continue
		}
		length := binary.LittleEndian.Uint32(data[i+4:])
		count := binary.LittleEndian.Uint32(data[i+8:])
		sum := binary.LittleEndian.Uint32(data[i+12:])
		end := i + blockHeaderSize + int(length)
		if length <= maxBlockPayload && count > 0 &&
			uint64(count)*recordSize == uint64(length) && end <= len(data) {
			payload := data[i+blockHeaderSize : end]
			if crc32.Checksum(payload, castagnoli) == sum {
				rep.Blocks++
				rep.Records += uint64(count)
				rep.SkippedBytes += int64(i - lastEnd)
				if visit != nil {
					visit(payload, int(count))
				}
				i, lastEnd = end, end
				continue
			}
		}
		// Marker matched but the frame is invalid: count it once and
		// resume scanning just past the marker.
		rep.CorruptBlocks++
		i++
	}
	rep.SkippedBytes += int64(len(data) - lastEnd)
	if rep.Version == 0 {
		if rep.Blocks == 0 {
			return SalvageReport{SkippedBytes: int64(len(data))}, ErrBadMagic
		}
		// Damaged signature but intact v2 blocks: recoverable v2.
		rep.Version = 2
	}
	return rep, nil
}
