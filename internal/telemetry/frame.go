package telemetry

// Format v2: framed record blocks with per-block CRC32C checksums.
//
// A v2 stream is the 4-byte signature "uv6\x02" followed by a sequence
// of blocks. Each block is a 16-byte frame header and a stored payload:
//
//	offset size field
//	0      4    block marker "blk\x01"
//	4      4    stored payload length in bytes (uint32 LE)
//	8      3    record count (uint24 LE, > 0, <= maxBlockRecords)
//	11     1    flags: the block codec ID (0 = identity)
//	12     4    CRC32C (Castagnoli) of the stored payload (uint32 LE)
//	16     N    stored payload: count records, encoded under the codec
//
// The count and flags share one little-endian uint32: because
// maxBlockRecords is 1<<16, the word's high byte was always zero before
// codecs existed, so identity-codec frames are bit-for-bit the original
// v2 layout and every pre-codec stream still reads. Under the identity
// codec the stored length is exactly count*recordSize; under any other
// codec it is strictly smaller (writers fall back to identity when
// encoding does not pay), which gives readers a total validity check
// before they allocate.
//
// The checksum always covers the stored payload, not the decoded one:
// a frame is verifiable without decoding, salvage can accept or reject
// frames on bytes alone, and merge can pass already-encoded blocks
// through untouched.
//
// The design goals, in the spirit of the IPv6 Hitlists pipelines that
// must tolerate malformed input at scale: a single flipped bit anywhere
// in a block is detected by the checksum; the per-block marker lets
// Salvage resynchronize past a corrupt or truncated region and recover
// every other intact block; and the strict length/count bounds make the
// decoder total — arbitrary bytes either decode or fail with a typed
// error, never panic or allocate unbounded memory.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"maps"
)

const (
	blockHeaderSize = 16
	// DefaultBlockRecords is the records-per-block target for WriterV2:
	// 1024 records = 40 KiB payloads, small enough that one corrupt
	// block loses little, large enough that framing overhead is ~0.04%.
	DefaultBlockRecords = 1024
	// maxBlockRecords bounds the record count a reader accepts in one
	// frame, capping per-block allocation at 2.5 MiB. It must stay
	// below 1<<blockFlagsShift so the count and flags never collide.
	maxBlockRecords = 1 << 16
	maxBlockPayload = maxBlockRecords * recordSize
	// blockFlagsShift positions the codec flags byte within the frame
	// header's count word.
	blockFlagsShift = 24
	blockCountMask  = 1<<blockFlagsShift - 1
)

// packCountFlags builds the frame header's count word from a record
// count and a codec ID.
func packCountFlags(count int, codec CodecID) uint32 {
	return uint32(count) | uint32(codec)<<blockFlagsShift
}

// splitCountFlags splits the frame header's count word into the record
// count and the codec ID.
func splitCountFlags(word uint32) (count uint32, codec CodecID) {
	return word & blockCountMask, CodecID(word >> blockFlagsShift)
}

// frameShapeValid reports whether a frame header's (length, count,
// codec) triple is structurally possible. Identity frames must carry
// exactly count*recordSize bytes; encoded frames must carry at least
// one and strictly fewer (a writer never stores an encoding that did
// not shrink the payload). Unknown codecs are invalid: their payload
// cannot be interpreted, so readers treat such frames as corrupt.
func frameShapeValid(length, count uint32, codec CodecID) bool {
	if count == 0 || count > maxBlockRecords {
		return false
	}
	raw := uint64(count) * recordSize
	if codec == CodecIdentity {
		return uint64(length) == raw
	}
	if _, ok := CodecByID(codec); !ok {
		return false
	}
	return length > 0 && uint64(length) < raw
}

var (
	magicV2    = [4]byte{'u', 'v', '6', 2}
	blockMagic = [4]byte{'b', 'l', 'k', 1}
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// ErrCorrupt is the sentinel wrapped by every *CorruptError, so callers
// can test errors.Is(err, ErrCorrupt) without caring about the detail.
var ErrCorrupt = errors.New("telemetry: corrupt data")

// CorruptError reports a v2 frame that failed validation: a bad marker,
// an impossible length/count, a short read, or a checksum mismatch.
type CorruptError struct {
	Block  int    // 0-based index of the failing block
	Offset int64  // byte offset of the frame start within the stream
	Reason string // human-readable failure detail
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("telemetry: corrupt block %d at offset %d: %s", e.Block, e.Offset, e.Reason)
}

// Unwrap makes errors.Is(err, ErrCorrupt) true.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// WriterV2 streams observations in the framed v2 format. Records are
// buffered into blocks and emitted with a checksum when a block fills;
// Flush emits any partial block and drains the buffer, so it must be
// called before the stream is final (partial blocks are valid blocks —
// a stream may freely mix block sizes).
type WriterV2 struct {
	bw          *bufio.Writer
	payload     []byte
	encs        [][]byte // per-chain-codec scratch for encoded payloads
	hdr         [blockHeaderSize]byte
	rec         [recordSize]byte
	chain       []BlockCodec // empty means identity (no encode pass at all)
	perBlock    int
	count       int // records in the current (unflushed) block
	n           uint64
	blocks      uint64
	wroteHeader bool
}

// NewWriterV2 returns a v2 Writer with the default block size.
func NewWriterV2(w io.Writer) *WriterV2 { return NewWriterV2Blocks(w, DefaultBlockRecords) }

// NewWriterV2Blocks returns a v2 Writer emitting blocks of
// recordsPerBlock records (clamped to [1, maxBlockRecords]).
func NewWriterV2Blocks(w io.Writer, recordsPerBlock int) *WriterV2 {
	if recordsPerBlock <= 0 || recordsPerBlock > maxBlockRecords {
		recordsPerBlock = DefaultBlockRecords
	}
	return &WriterV2{
		bw:       bufio.NewWriterSize(w, 1<<16),
		payload:  make([]byte, 0, recordsPerBlock*recordSize),
		perBlock: recordsPerBlock,
	}
}

// NewWriterV2Codec returns a v2 Writer that stores each block under
// codec, falling back to identity per block when the encoded payload
// is not strictly smaller (so a pathological block never grows the
// stream past the uncompressed layout plus headers).
func NewWriterV2Codec(w io.Writer, recordsPerBlock int, codec CodecID) (*WriterV2, error) {
	c, ok := CodecByID(codec)
	if !ok {
		return nil, fmt.Errorf("telemetry: unknown block codec id %d", codec)
	}
	wr := NewWriterV2Blocks(w, recordsPerBlock)
	if c.ID() != CodecIdentity {
		wr.chain = []BlockCodec{c}
		wr.encs = make([][]byte, 1)
	}
	return wr, nil
}

// NewWriterV2Policy returns a v2 Writer driven by a compression policy
// name (see CodecChainByName): every block is encoded under each codec
// in the policy's chain and stored under whichever yields the smallest
// payload, identity included. With "auto" that makes the per-block
// selection a delta → lz → identity fallback; ties go to the earlier
// chain entry.
func NewWriterV2Policy(w io.Writer, recordsPerBlock int, policy string) (*WriterV2, error) {
	chain, ok := CodecChainByName(policy)
	if !ok {
		return nil, fmt.Errorf("telemetry: unknown compression policy %q", policy)
	}
	wr := NewWriterV2Blocks(w, recordsPerBlock)
	wr.chain = chain
	wr.encs = make([][]byte, len(chain))
	return wr, nil
}

// Codec returns the preferred codec of the writer's chain (identity
// for writers created without one). Individual blocks may still be
// stored under a later chain entry or as identity when the preferred
// encoding did not pay.
func (w *WriterV2) Codec() CodecID {
	if len(w.chain) == 0 {
		return CodecIdentity
	}
	return w.chain[0].ID()
}

// CodecCompatible reports whether a stored block under codec id could
// have been produced by this writer's encode step: identity for a
// chain-less writer, any chain member otherwise. Identity blocks under
// a chained writer are NOT compatible — an identity frame could be an
// uncompressed source or an encoder fallback, and the two cannot be
// told apart without re-encoding. WriteEncodedBlock and the merge
// passthrough planner use this as their codec gate.
func (w *WriterV2) CodecCompatible(id CodecID) bool {
	if len(w.chain) == 0 {
		return id == CodecIdentity
	}
	for _, c := range w.chain {
		if c.ID() == id {
			return true
		}
	}
	return false
}

// Pending returns the records buffered in the block in progress.
func (w *WriterV2) Pending() int { return w.count }

// RecordsPerBlock returns the full-block record target.
func (w *WriterV2) RecordsPerBlock() int { return w.perBlock }

// Write appends one observation, emitting a block when full.
func (w *WriterV2) Write(o Observation) error {
	if err := w.writeMagic(); err != nil {
		return err
	}
	encodeRecord(w.rec[:], o)
	w.payload = append(w.payload, w.rec[:]...)
	w.count++
	w.n++
	if w.count >= w.perBlock {
		return w.emitBlock()
	}
	return nil
}

func (w *WriterV2) writeMagic() error {
	if w.wroteHeader {
		return nil
	}
	if _, err := w.bw.Write(magicV2[:]); err != nil {
		return fmt.Errorf("telemetry: write header: %w", err)
	}
	w.wroteHeader = true
	return nil
}

func (w *WriterV2) emitBlock() error {
	if w.count == 0 {
		return nil
	}
	stored, codec := w.payload, CodecIdentity
	for i, c := range w.chain {
		w.encs[i] = c.AppendEncode(w.encs[i][:0], w.payload)
		// Strictly smaller wins; on a tie the earlier chain entry (or
		// identity) keeps the block, so selection is deterministic.
		if len(w.encs[i]) < len(stored) {
			stored, codec = w.encs[i], c.ID()
		}
	}
	h := w.hdr[:]
	copy(h, blockMagic[:])
	binary.LittleEndian.PutUint32(h[4:], uint32(len(stored)))
	binary.LittleEndian.PutUint32(h[8:], packCountFlags(w.count, codec))
	binary.LittleEndian.PutUint32(h[12:], crc32.Checksum(stored, castagnoli))
	if _, err := w.bw.Write(h); err != nil {
		return fmt.Errorf("telemetry: write frame: %w", err)
	}
	if _, err := w.bw.Write(stored); err != nil {
		return fmt.Errorf("telemetry: write frame payload: %w", err)
	}
	w.payload = w.payload[:0]
	w.count = 0
	w.blocks++
	return nil
}

// WriteEncodedBlock re-emits an already-stored frame without decoding
// it, the merge fast path. It only applies when the result is provably
// byte-identical to feeding the block's records through Write: no
// partial block may be pending, the block must be exactly full, and
// its stored codec must be one this writer's chain could have chosen
// (an identity block under a chained writer could be either an
// uncompressed source or an encoder fallback — indistinguishable, so
// it is re-encoded via the slow path instead). For multi-codec chains
// the caller must additionally know the block came from a writer with
// the SAME chain — chain selection depends on every member's output
// size, so a block a single-codec writer stored under lz might lose to
// delta under "auto"; the dataset merge layer enforces this with its
// declared-policy cross-check before offering blocks here. Returns
// false, nil when the block does not qualify; the caller then decodes
// and writes records normally.
func (w *WriterV2) WriteEncodedBlock(b RawBlock) (bool, error) {
	if b.version < 2 || b.Count != w.perBlock || w.count != 0 || !w.CodecCompatible(b.Codec) {
		return false, nil
	}
	if err := w.writeMagic(); err != nil {
		return false, err
	}
	h := w.hdr[:]
	copy(h, blockMagic[:])
	binary.LittleEndian.PutUint32(h[4:], uint32(len(b.Payload)))
	binary.LittleEndian.PutUint32(h[8:], packCountFlags(b.Count, b.Codec))
	binary.LittleEndian.PutUint32(h[12:], b.Sum)
	if _, err := w.bw.Write(h); err != nil {
		return false, fmt.Errorf("telemetry: write frame: %w", err)
	}
	if _, err := w.bw.Write(b.Payload); err != nil {
		return false, fmt.Errorf("telemetry: write frame payload: %w", err)
	}
	w.n += uint64(b.Count)
	w.blocks++
	return true, nil
}

// Count returns the number of records written.
func (w *WriterV2) Count() uint64 { return w.n }

// Blocks returns the number of frames emitted so far (the block in
// progress is not counted until it is flushed). Sharded sinks record it
// per part so a merge can verify per-part coverage.
func (w *WriterV2) Blocks() uint64 { return w.blocks }

// Flush emits the partial block in progress (if any) and drains the
// buffer. An empty stream still gets its signature, so a zero-record
// v2 file is recognizable as v2.
func (w *WriterV2) Flush() error {
	if err := w.writeMagic(); err != nil {
		return err
	}
	if err := w.emitBlock(); err != nil {
		return err
	}
	return w.bw.Flush()
}

// readV2 serves the next record from the current block, pulling and
// verifying the next frame when the block is exhausted.
func (r *Reader) readV2() (Observation, error) {
	for r.blkOff >= len(r.blk) {
		if err := r.readBlock(); err != nil {
			return Observation{}, err
		}
	}
	o := decodeRecord(r.blk[r.blkOff:])
	r.blkOff += recordSize
	return o, nil
}

// readBlock reads and verifies one frame. io.EOF is returned only at a
// clean frame boundary; anything else is a *CorruptError.
func (r *Reader) readBlock() error {
	frameOff := r.off
	h := r.hdr[:]
	n, err := io.ReadFull(r.br, h)
	r.off += int64(n)
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return &CorruptError{Block: r.blockIdx, Offset: frameOff, Reason: "short frame header"}
	}
	if [4]byte(h[0:4]) != blockMagic {
		return &CorruptError{Block: r.blockIdx, Offset: frameOff, Reason: "bad block marker"}
	}
	length := binary.LittleEndian.Uint32(h[4:])
	count, codec := splitCountFlags(binary.LittleEndian.Uint32(h[8:]))
	sum := binary.LittleEndian.Uint32(h[12:])
	if length > maxBlockPayload {
		return &CorruptError{Block: r.blockIdx, Offset: frameOff,
			Reason: fmt.Sprintf("oversized frame (%d bytes)", length)}
	}
	if !frameShapeValid(length, count, codec) {
		return &CorruptError{Block: r.blockIdx, Offset: frameOff,
			Reason: fmt.Sprintf("frame length %d / record count %d mismatch (codec %s)", length, count, codec)}
	}
	stored := &r.blk
	if codec != CodecIdentity {
		stored = &r.cblk
	}
	*stored = sliceFor(*stored, int(length))
	n, err = io.ReadFull(r.br, *stored)
	r.off += int64(n)
	if err != nil {
		return &CorruptError{Block: r.blockIdx, Offset: frameOff, Reason: "short frame payload"}
	}
	if got := crc32.Checksum(*stored, castagnoli); got != sum {
		return &CorruptError{Block: r.blockIdx, Offset: frameOff,
			Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", sum, got)}
	}
	if codec != CodecIdentity {
		c, _ := CodecByID(codec) // frameShapeValid guarantees it resolves
		raw := int(count) * recordSize
		blk, derr := c.AppendDecode(r.blk[:0], r.cblk, raw)
		r.blk = blk
		if derr != nil {
			return &CorruptError{Block: r.blockIdx, Offset: frameOff,
				Reason: fmt.Sprintf("payload decode (%s): %v", codec, derr)}
		}
		if len(r.blk) != raw {
			return &CorruptError{Block: r.blockIdx, Offset: frameOff,
				Reason: fmt.Sprintf("decoded length %d, want %d", len(r.blk), raw)}
		}
	}
	r.blkOff = 0
	r.blockIdx++
	return nil
}

// SalvageReport summarizes what Salvage or Scan recovered from a
// possibly damaged stream.
type SalvageReport struct {
	// Version is the detected format (1 or 2). When the signature
	// itself is damaged but intact v2 blocks were found, Version is 2.
	Version int
	// Blocks is the number of intact blocks recovered. A v1 stream
	// counts as one pseudo-block when it yields any records.
	Blocks int
	// CorruptBlocks counts frames whose marker was found but which
	// failed validation or checksum (regions with a destroyed marker
	// show up in SkippedBytes instead).
	CorruptBlocks int
	// Records is the number of records recovered from intact blocks.
	Records uint64
	// SkippedBytes is the byte count not accounted for by the signature
	// or an intact block — corrupt frames, torn tails, garbage.
	SkippedBytes int64
	// Codecs records the codec of every intact block, so callers can
	// cross-check a stream's frames against its declared codec (a v1
	// stream or one with zero intact blocks leaves it empty).
	Codecs CodecSet
	// CodecBlocks counts intact blocks per codec, the per-codec
	// breakdown behind Codecs: with a fallback-chain writer a stream
	// legitimately mixes codecs, and the mix — how many blocks the
	// preferred codec actually won — is what a compression-ratio
	// regression shows up in. Nil for v1 streams and streams with zero
	// intact v2 blocks.
	CodecBlocks map[CodecID]uint64
}

// Equal reports whether two reports describe identical coverage,
// per-codec block counts included (the map makes the struct itself
// non-comparable).
func (r SalvageReport) Equal(o SalvageReport) bool {
	return r.Version == o.Version && r.Blocks == o.Blocks &&
		r.CorruptBlocks == o.CorruptBlocks && r.Records == o.Records &&
		r.SkippedBytes == o.SkippedBytes && r.Codecs == o.Codecs &&
		maps.Equal(r.CodecBlocks, o.CodecBlocks)
}

// addCodecBlock records one intact block stored under id.
func (r *SalvageReport) addCodecBlock(id CodecID) {
	r.Codecs.Add(id)
	if r.CodecBlocks == nil {
		r.CodecBlocks = make(map[CodecID]uint64, 2)
	}
	r.CodecBlocks[id]++
}

// RecordBlock counts one delivered block toward the report: readers
// that verify blocks inline (the strict parallel paths) use it to build
// the same coverage a salvage walk reports. checksummed distinguishes
// v2 frames (codec tracked, Version 2) from v1 pseudo-blocks.
func (r *SalvageReport) RecordBlock(codec CodecID, checksummed bool, records int) {
	r.Blocks++
	r.Records += uint64(records)
	if checksummed {
		r.Version = 2
		r.addCodecBlock(codec)
	} else if r.Version == 0 {
		r.Version = 1
	}
}

// Add folds another part's report into r — the cross-part aggregation a
// sharded source (manifest or explicit part list) presents as the
// coverage of the whole logical stream: counts sum, codec sets union,
// per-codec block counts add, and Version is the newest format seen.
// Summed this way over a manifest's parts, the totals match what a
// merge of the same parts reports per part (blocks recovered, records,
// corrupt blocks, skipped bytes).
func (r *SalvageReport) Add(o SalvageReport) {
	if o.Version > r.Version {
		r.Version = o.Version
	}
	r.Blocks += o.Blocks
	r.CorruptBlocks += o.CorruptBlocks
	r.Records += o.Records
	r.SkippedBytes += o.SkippedBytes
	r.Codecs |= o.Codecs
	for id, n := range o.CodecBlocks {
		if r.CodecBlocks == nil {
			r.CodecBlocks = make(map[CodecID]uint64, len(o.CodecBlocks))
		}
		r.CodecBlocks[id] += n
	}
}

// Intact reports whether the stream decoded end to end with nothing
// skipped or corrupt.
func (r SalvageReport) Intact() bool {
	return r.CorruptBlocks == 0 && r.SkippedBytes == 0
}

// Scan is Salvage without record delivery: it verifies the stream and
// reports what a salvage pass would recover.
func Scan(r io.Reader) (SalvageReport, error) {
	return Salvage(r, nil)
}

// Salvage recovers every intact record from a possibly corrupted or
// truncated stream, emitting recovered records in stream order. For v2
// streams it validates each frame's checksum and resynchronizes on the
// block marker after damage, so one corrupt block never hides the
// blocks behind it. For v1 streams (no checksums) it recovers all
// complete records and drops a torn tail. The stream is buffered in
// memory; salvage is an offline recovery operation, not a hot path.
//
// Salvage returns ErrBadMagic only when the input is unrecognizable:
// no valid signature and no intact v2 block anywhere.
func Salvage(r io.Reader, emit EmitFunc) (SalvageReport, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return SalvageReport{}, fmt.Errorf("telemetry: salvage read: %w", err)
	}
	return salvageBytes(data, emit)
}

// SalvageBytes is Salvage over an in-memory stream. Callers that manage
// their own I/O (e.g. a merge engine retrying transient read errors
// before decoding) use it to keep the read and the salvage pass
// separate: by the time SalvageBytes runs, no I/O error can interrupt
// emission, so a retry can never deliver duplicate records.
func SalvageBytes(data []byte, emit EmitFunc) (SalvageReport, error) {
	return salvageBytes(data, emit)
}

func salvageBytes(data []byte, emit EmitFunc) (SalvageReport, error) {
	var visit func(b RawBlock, decoded []byte)
	if emit != nil {
		visit = func(b RawBlock, decoded []byte) {
			for rec := 0; rec < b.Count; rec++ {
				emit(decodeRecord(decoded[rec*recordSize:]))
			}
		}
	}
	return salvageWalk(data, visit)
}

// SalvageBlocks walks data exactly like Salvage but delivers the intact
// decoded block payloads — already checksum-verified and codec-decoded,
// each a whole number of records — instead of decoded records, so a
// caller can fan record decoding out to a worker pool while the
// marker-resync scan stays sequential (the scan must know each
// candidate frame's checksum verdict before choosing the next scan
// position, so the verify step cannot be deferred without changing
// which bytes salvage recovers). Identity payloads alias data and stay
// valid as long as data does; codec-encoded payloads are decoded into a
// fresh buffer per block, so every delivered slice is safe to retain or
// hand to another goroutine. A v1 stream, which has no frames, is
// delivered in pseudo-blocks of at most DefaultBlockRecords records;
// the report still counts it as one block.
func SalvageBlocks(data []byte, visit func(payload []byte, count int)) (SalvageReport, error) {
	if visit == nil {
		return salvageWalk(data, nil)
	}
	return salvageWalk(data, func(b RawBlock, decoded []byte) {
		visit(decoded, b.Count)
	})
}

// SalvageRawBlocks walks data exactly like Salvage but delivers each
// intact block twice over: the RawBlock as stored on disk (payload
// still codec-encoded, checksum already verified against it) and its
// decoded payload. Merge uses the stored form to pass aligned blocks
// through without a re-encode and the decoded form for everything
// else. The same aliasing rules as SalvageBlocks apply: b.Payload and
// an identity block's decoded slice alias data; a codec-encoded
// block's decoded slice is freshly allocated.
func SalvageRawBlocks(data []byte, visit func(b RawBlock, decoded []byte)) (SalvageReport, error) {
	return salvageWalk(data, visit)
}

func salvageWalk(data []byte, visit func(b RawBlock, decoded []byte)) (SalvageReport, error) {
	var rep SalvageReport
	if len(data) >= 4 && [4]byte(data[0:4]) == magic {
		// v1: fixed records with no checksums — every complete record
		// is recoverable, a trailing partial record is dropped.
		rep.Version = 1
		body := data[4:]
		nrec := len(body) / recordSize
		rep.Records = uint64(nrec)
		if nrec > 0 {
			rep.Blocks = 1
		}
		rep.SkippedBytes = int64(len(body) - nrec*recordSize)
		if visit != nil {
			for i := 0; i < nrec; i += DefaultBlockRecords {
				n := min(DefaultBlockRecords, nrec-i)
				chunk := body[i*recordSize : (i+n)*recordSize]
				visit(RawBlock{
					Index:   i / DefaultBlockRecords,
					Offset:  4 + int64(i*recordSize),
					Count:   n,
					Payload: chunk,
					version: 1,
				}, chunk)
			}
		}
		return rep, nil
	}

	start := 0
	if len(data) >= 4 && [4]byte(data[0:4]) == magicV2 {
		rep.Version = 2
		start = 4
	}
	i, lastEnd := start, start
	for i+blockHeaderSize <= len(data) {
		if [4]byte(data[i:i+4]) != blockMagic {
			i++
			continue
		}
		length := binary.LittleEndian.Uint32(data[i+4:])
		count, codec := splitCountFlags(binary.LittleEndian.Uint32(data[i+8:]))
		sum := binary.LittleEndian.Uint32(data[i+12:])
		end := i + blockHeaderSize + int(length)
		if frameShapeValid(length, count, codec) && end <= len(data) {
			payload := data[i+blockHeaderSize : end]
			if crc32.Checksum(payload, castagnoli) == sum {
				decoded := payload
				if codec != CodecIdentity {
					// The checksum only vouches for the stored bytes; an
					// authentic-looking frame can still hold a payload
					// that does not decode (e.g. corruption that happens
					// to preserve the CRC of a garbage region promoted to
					// a frame). Decode failures mean the frame is corrupt:
					// skip the whole frame — resuming inside it could only
					// resynchronize on garbage.
					c, _ := CodecByID(codec) // shape-valid implies known
					raw := int(count) * recordSize
					buf, derr := c.AppendDecode(make([]byte, 0, raw), payload, raw)
					if derr != nil || len(buf) != raw {
						rep.CorruptBlocks++
						i = end
						continue
					}
					decoded = buf
				}
				rep.Blocks++
				rep.Records += uint64(count)
				rep.SkippedBytes += int64(i - lastEnd)
				rep.addCodecBlock(codec)
				if visit != nil {
					visit(RawBlock{
						Index:   rep.Blocks - 1,
						Offset:  int64(i),
						Count:   int(count),
						Sum:     sum,
						Codec:   codec,
						Payload: payload,
						version: 2,
					}, decoded)
				}
				i, lastEnd = end, end
				continue
			}
		}
		// Marker matched but the frame is invalid: count it once and
		// resume scanning just past the marker.
		rep.CorruptBlocks++
		i++
	}
	rep.SkippedBytes += int64(len(data) - lastEnd)
	if rep.Version == 0 {
		if rep.Blocks == 0 {
			return SalvageReport{SkippedBytes: int64(len(data))}, ErrBadMagic
		}
		// Damaged signature but intact v2 blocks: recoverable v2.
		rep.Version = 2
	}
	return rep, nil
}
