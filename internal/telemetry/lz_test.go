package telemetry

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// lzRecordPayload serializes obs into a block-style payload.
func lzRecordPayload(obs []Observation) []byte {
	payload := make([]byte, len(obs)*recordSize)
	for i, o := range obs {
		encodeRecord(payload[i*recordSize:], o)
	}
	return payload
}

// lzRoundTrip encodes src, decodes the result, and fails unless the
// decode reproduces src exactly within the exact bound.
func lzRoundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	enc := lzAppendEncode(nil, src)
	dec, err := lzAppendDecode(nil, enc, len(src))
	if err != nil {
		t.Fatalf("decode failed for %d-byte input: %v", len(src), err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip diverged for %d-byte input", len(src))
	}
	return enc
}

func TestLZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	random := make([]byte, 3000)
	rng.Read(random)

	payload := lzRecordPayload(frameObs(200))

	cases := map[string][]byte{
		"empty":       {},
		"one byte":    {0x42},
		"short":       []byte("abc"),
		"all zero":    make([]byte, 500),
		"all same":    bytes.Repeat([]byte{0xee}, 1000),
		"period 3":    bytes.Repeat([]byte{1, 2, 3}, 400),
		"random":      random,
		"records":     payload,
		"max literal": random[:lzMaxLiteral+1],
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { lzRoundTrip(t, src) })
	}
}

// TestLZRoundTripBase: decoding into a non-empty dst must treat the
// prior content as out of bounds for match distances, and the appended
// region must still round-trip.
func TestLZRoundTripBase(t *testing.T) {
	src := bytes.Repeat([]byte("userv6"), 100)
	enc := lzAppendEncode(nil, src)
	prefix := []byte("prior block payload, not part of the window")
	dec, err := lzAppendDecode(append([]byte{}, prefix...), enc, len(src))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec[:len(prefix)], prefix) {
		t.Fatal("decode clobbered prior dst content")
	}
	if !bytes.Equal(dec[len(prefix):], src) {
		t.Fatal("appended region diverged from source")
	}
}

// TestLZCompressesRecords: the target is a >= 2x smaller dataset at the
// default config. Real telemetry emits several records per (user, day)
// — same user ID, country, ASN, adjacent addresses — so shape the
// payload that way rather than using fully-distinct frameObs records.
func TestLZCompressesRecords(t *testing.T) {
	base := frameObs(DefaultBlockRecords / 4)
	obs := make([]Observation, 0, DefaultBlockRecords)
	for _, o := range base {
		for k := 0; k < 4; k++ {
			v := o
			v.Requests = o.Requests + uint32(k)
			obs = append(obs, v)
		}
	}
	payload := lzRecordPayload(obs)
	enc := lzRoundTrip(t, payload)
	if len(enc)*2 > len(payload) {
		t.Fatalf("record payload compressed %d -> %d bytes, want >= 2x", len(payload), len(enc))
	}
}

func TestLZEncodeDeterministic(t *testing.T) {
	payload := lzRecordPayload(frameObs(500))
	a := lzAppendEncode(nil, payload)
	b := lzAppendEncode(nil, payload)
	if !bytes.Equal(a, b) {
		t.Fatal("encoder is not deterministic; merge passthrough depends on it")
	}
}

func TestLZDecodeRejectsAdversarial(t *testing.T) {
	cases := map[string]struct {
		src    []byte
		maxLen int
		want   error
	}{
		"truncated literal run": {src: []byte{0x05, 'a', 'b'}, maxLen: 100, want: errLZTruncated},
		"bare match control":    {src: []byte{0x80}, maxLen: 100, want: errLZTruncated},
		"half match distance":   {src: []byte{0x00, 'x', 0x80, 0x01}, maxLen: 100, want: errLZTruncated},
		"zero distance":         {src: []byte{0x00, 'x', 0x80, 0x00, 0x00}, maxLen: 100, want: errLZBadDistance},
		"distance before base":  {src: []byte{0x00, 'x', 0x80, 0x02, 0x00}, maxLen: 100, want: errLZBadDistance},
		"literal over bound":    {src: []byte{0x03, 'a', 'b', 'c', 'd'}, maxLen: 3, want: errLZTooLong},
		"match over bound":      {src: []byte{0x00, 'x', 0xff, 0x01, 0x00}, maxLen: 10, want: errLZTooLong},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := lzAppendDecode(nil, tc.src, tc.maxLen)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestLZDecodeOverlap: distances shorter than the match length copy
// from the output being produced (RLE-style); check the exact expansion.
func TestLZDecodeOverlap(t *testing.T) {
	// One literal 'a', then a 7-byte match at distance 1: "aaaaaaaa".
	src := []byte{0x00, 'a', 0x80 | (7 - lzMinMatch), 0x01, 0x00}
	dec, err := lzAppendDecode(nil, src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, bytes.Repeat([]byte{'a'}, 8)) {
		t.Fatalf("overlap copy produced %q", dec)
	}
}

func TestCodecByNameAliases(t *testing.T) {
	for _, name := range []string{"", "identity", "none", "IDENTITY"} {
		c, ok := CodecByName(name)
		if !ok || c.ID() != CodecIdentity {
			t.Fatalf("CodecByName(%q) = %v, %v", name, c, ok)
		}
	}
	c, ok := CodecByName("LZ")
	if !ok || c.ID() != CodecLZ {
		t.Fatalf("CodecByName(LZ) = %v, %v", c, ok)
	}
	if _, ok := CodecByName("zstd"); ok {
		t.Fatal("unknown codec name resolved")
	}
	if _, ok := CodecByID(CodecID(9)); ok {
		t.Fatal("unknown codec ID resolved")
	}
	if got := CodecID(9).String(); got != "codec(9)" {
		t.Fatalf("unknown codec String() = %q", got)
	}
}

func TestCodecSet(t *testing.T) {
	var s CodecSet
	if !s.Empty() {
		t.Fatal("zero CodecSet not empty")
	}
	s.Add(CodecLZ)
	s.Add(CodecIdentity)
	if !s.Has(CodecIdentity) || !s.Has(CodecLZ) || s.Has(CodecID(5)) {
		t.Fatalf("membership wrong: %b", s)
	}
	want := []string{"identity", "lz"}
	got := s.Names()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

// FuzzLZRoundTrip: every input must encode and decode back to itself
// within the exact output bound.
func FuzzLZRoundTrip(f *testing.F) {
	payload := lzRecordPayload(frameObs(64))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(bytes.Repeat([]byte{0x7f}, 300))
	f.Add(payload)
	f.Fuzz(func(t *testing.T, src []byte) {
		enc := lzAppendEncode(nil, src)
		dec, err := lzAppendDecode(nil, enc, len(src))
		if err != nil {
			t.Fatalf("own output failed to decode: %v", err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatal("round trip diverged")
		}
	})
}

// FuzzLZDecode: arbitrary bytes fed to the decoder must never panic,
// read out of bounds, grow the output past the caller's bound, or fail
// with anything but the typed sentinels.
func FuzzLZDecode(f *testing.F) {
	f.Add([]byte{}, 40)
	f.Add([]byte{0x00, 'x', 0x80, 0x01, 0x00}, 10)
	f.Add(lzAppendEncode(nil, bytes.Repeat([]byte{1, 2, 3, 4}, 100)), 400)
	f.Add(bytes.Repeat([]byte{0xff}, 64), 1<<16)
	f.Fuzz(func(t *testing.T, src []byte, maxLen int) {
		if maxLen < 0 || maxLen > DefaultBlockRecords*recordSize {
			maxLen = DefaultBlockRecords * recordSize
		}
		dec, err := lzAppendDecode(nil, src, maxLen)
		if len(dec) > maxLen {
			t.Fatalf("decoded %d bytes past bound %d", len(dec), maxLen)
		}
		if err != nil &&
			!errors.Is(err, errLZTruncated) &&
			!errors.Is(err, errLZBadDistance) &&
			!errors.Is(err, errLZTooLong) {
			t.Fatalf("untyped decode error: %v", err)
		}
	})
}
