package telemetry

// Block-granular stream access: the sequential-I/O half of a parallel
// decode pipeline. A BlockReader pulls raw frames off the stream
// without touching their payload bytes beyond copying them in, so that
// the CPU-heavy work — CRC verification and record decoding — can be
// fanned out to a worker pool (dataset.ParallelReader). The v2 framing
// makes each block independently verifiable and decodable, which is
// exactly what makes it the unit of parallelism.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// RawBlock is one undecoded unit of a telemetry stream: a v2 frame, or
// a pseudo-block of consecutive v1 records (v1 streams have no framing,
// so the reader chunks them to bound batch sizes). The payload has not
// been checksum-verified; call Verify or Decode before trusting it.
type RawBlock struct {
	// Index is the 0-based position of the block in the stream.
	Index int
	// Offset is the byte offset of the frame start within the stream.
	Offset int64
	// Count is the number of records the frame header claims.
	Count int
	// Sum is the stored CRC32C of the payload (v2 only).
	Sum uint32
	// Codec is the block codec the payload is stored under (v2 only;
	// v1 pseudo-blocks are always identity).
	Codec CodecID
	// Payload holds the stored payload — Count records encoded under
	// Codec — unverified. The checksum covers these stored bytes.
	Payload []byte

	version byte
}

// Checksummed reports whether the block carries a checksum to verify
// (v2 frames do; v1 pseudo-blocks have none and always verify clean).
func (b RawBlock) Checksummed() bool { return b.version >= 2 }

// Verify checks the payload against the stored checksum, returning a
// *CorruptError on mismatch. v1 pseudo-blocks verify vacuously.
func (b RawBlock) Verify() error {
	if b.version < 2 {
		return nil
	}
	if got := crc32.Checksum(b.Payload, castagnoli); got != b.Sum {
		return &CorruptError{Block: b.Index, Offset: b.Offset,
			Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", b.Sum, got)}
	}
	return nil
}

// Decode verifies the block and appends its records to dst, reusing
// dst's capacity. On a checksum mismatch dst is returned unchanged
// alongside the *CorruptError.
func (b RawBlock) Decode(dst []Observation) ([]Observation, error) {
	dst, _, err := b.AppendDecoded(dst, nil)
	return dst, err
}

// AppendDecoded verifies the block's checksum, reverses its codec, and
// appends the records to dst. scratch holds the decoded payload for
// codec-encoded blocks; the (possibly grown) scratch is returned so a
// worker looping over blocks decodes with zero steady-state
// allocations. Any failure — checksum mismatch, unknown codec, payload
// that does not decode to exactly Count records — returns dst
// unchanged alongside a *CorruptError.
func (b RawBlock) AppendDecoded(dst []Observation, scratch []byte) ([]Observation, []byte, error) {
	if err := b.Verify(); err != nil {
		return dst, scratch, err
	}
	payload := b.Payload
	if b.version >= 2 && b.Codec != CodecIdentity {
		c, ok := CodecByID(b.Codec)
		if !ok {
			return dst, scratch, &CorruptError{Block: b.Index, Offset: b.Offset,
				Reason: fmt.Sprintf("unknown codec %s", b.Codec)}
		}
		raw := b.Count * recordSize
		buf, err := c.AppendDecode(scratch[:0], b.Payload, raw)
		scratch = buf
		if err != nil {
			return dst, scratch, &CorruptError{Block: b.Index, Offset: b.Offset,
				Reason: fmt.Sprintf("payload decode (%s): %v", b.Codec, err)}
		}
		if len(buf) != raw {
			return dst, scratch, &CorruptError{Block: b.Index, Offset: b.Offset,
				Reason: fmt.Sprintf("decoded length %d, want %d", len(buf), raw)}
		}
		payload = buf
	}
	return AppendRecords(dst, payload), scratch, nil
}

// AppendRecords decodes a verified payload — a whole number of records
// — appending each to dst and returning the extended slice. Callers
// that recycle dst across blocks decode with zero per-record
// allocations.
func AppendRecords(dst []Observation, payload []byte) []Observation {
	for off := 0; off+recordSize <= len(payload); off += recordSize {
		dst = append(dst, decodeRecord(payload[off:]))
	}
	return dst
}

// BlockReader scans a telemetry stream frame by frame. It performs only
// sequential I/O and frame-header sanity checks; payload checksums are
// deliberately left to the caller (RawBlock.Verify) so verification can
// run concurrently across blocks. The stream version is auto-detected
// like Reader's: v2 streams yield one RawBlock per frame, v1 streams
// yield pseudo-blocks of at most DefaultBlockRecords records.
type BlockReader struct {
	br         *bufio.Reader
	hdr        [blockHeaderSize]byte
	readHeader bool
	version    byte
	idx        int
	off        int64
	err        error // sticky: set once the stream is corrupt or done
}

// NewBlockReader returns a BlockReader wrapping r.
func NewBlockReader(r io.Reader) *BlockReader {
	return &BlockReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next raw block. The payload is stored in buf when
// its capacity suffices (buf may be nil); a caller recycling buffers
// across calls reads the stream with zero steady-state allocations.
// io.EOF is returned only at a clean block boundary; a malformed frame
// header or torn payload yields a *CorruptError. Errors are sticky.
func (r *BlockReader) Next(buf []byte) (RawBlock, error) {
	if r.err != nil {
		return RawBlock{}, r.err
	}
	blk, err := r.next(buf)
	if err != nil {
		r.err = err
	}
	return blk, err
}

func (r *BlockReader) next(buf []byte) (RawBlock, error) {
	if !r.readHeader {
		var m [4]byte
		if _, err := io.ReadFull(r.br, m[:]); err != nil {
			if err == io.EOF {
				return RawBlock{}, io.EOF
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return RawBlock{}, fmt.Errorf("%w (truncated signature)", ErrBadMagic)
			}
			return RawBlock{}, fmt.Errorf("telemetry: read header: %w", err)
		}
		r.off += 4
		switch {
		case m == magic:
			r.version = 1
		case m == magicV2:
			r.version = 2
		case m[0] == 'u' && m[1] == 'v' && m[2] == '6':
			return RawBlock{}, fmt.Errorf("%w: %d", ErrUnsupportedVersion, m[3])
		default:
			return RawBlock{}, ErrBadMagic
		}
		r.readHeader = true
	}
	if r.version == 1 {
		return r.nextV1(buf)
	}
	return r.nextV2(buf)
}

// nextV1 chunks the unframed v1 record stream into pseudo-blocks. A
// trailing partial record surfaces as ErrCorrupt after the complete
// records before it have been delivered, matching the strict Reader.
func (r *BlockReader) nextV1(buf []byte) (RawBlock, error) {
	const chunk = DefaultBlockRecords * recordSize
	buf = sliceFor(buf, chunk)
	n, err := io.ReadFull(r.br, buf)
	if err != nil && err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) {
		return RawBlock{}, fmt.Errorf("telemetry: read record: %w", err)
	}
	if n == 0 {
		return RawBlock{}, io.EOF
	}
	blk := RawBlock{
		Index:   r.idx,
		Offset:  r.off,
		Count:   n / recordSize,
		Payload: buf[:n-n%recordSize],
		version: 1,
	}
	r.off += int64(n)
	if blk.Count == 0 {
		return RawBlock{}, fmt.Errorf("%w (truncated record)", ErrCorrupt)
	}
	if n%recordSize != 0 {
		// Serve the complete records now; the torn tail errors next call.
		r.err = fmt.Errorf("%w (truncated record)", ErrCorrupt)
	}
	r.idx++
	return blk, nil
}

// nextV2 reads one frame, validating the header bounds but not the
// payload checksum.
func (r *BlockReader) nextV2(buf []byte) (RawBlock, error) {
	frameOff := r.off
	h := r.hdr[:]
	n, err := io.ReadFull(r.br, h)
	r.off += int64(n)
	if err == io.EOF {
		return RawBlock{}, io.EOF
	}
	if err != nil {
		return RawBlock{}, &CorruptError{Block: r.idx, Offset: frameOff, Reason: "short frame header"}
	}
	if [4]byte(h[0:4]) != blockMagic {
		return RawBlock{}, &CorruptError{Block: r.idx, Offset: frameOff, Reason: "bad block marker"}
	}
	length := binary.LittleEndian.Uint32(h[4:])
	count, codec := splitCountFlags(binary.LittleEndian.Uint32(h[8:]))
	sum := binary.LittleEndian.Uint32(h[12:])
	if length > maxBlockPayload {
		return RawBlock{}, &CorruptError{Block: r.idx, Offset: frameOff,
			Reason: fmt.Sprintf("oversized frame (%d bytes)", length)}
	}
	if !frameShapeValid(length, count, codec) {
		return RawBlock{}, &CorruptError{Block: r.idx, Offset: frameOff,
			Reason: fmt.Sprintf("frame length %d / record count %d mismatch (codec %s)", length, count, codec)}
	}
	buf = sliceFor(buf, int(length))
	n, err = io.ReadFull(r.br, buf)
	r.off += int64(n)
	if err != nil {
		return RawBlock{}, &CorruptError{Block: r.idx, Offset: frameOff, Reason: "short frame payload"}
	}
	blk := RawBlock{
		Index:   r.idx,
		Offset:  frameOff,
		Count:   int(count),
		Sum:     sum,
		Codec:   codec,
		Payload: buf,
		version: 2,
	}
	r.idx++
	return blk, nil
}

// sliceFor returns buf resized to n bytes, reallocating only when its
// capacity is insufficient.
func sliceFor(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}
