package telemetry

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/simtime"
)

// frameObs builds n distinct observations with UserID == index, so
// recovered subsequences can be mapped back to their originals.
func frameObs(n int) []Observation {
	out := make([]Observation, n)
	for i := range out {
		o := Observation{
			Day:      simtime.Day(i % 7),
			UserID:   uint64(i),
			Addr:     netaddr.AddrFrom6(0x20010db8<<32|uint64(i%97), uint64(i)),
			Requests: uint32(i%100 + 1),
			Abusive:  i%11 == 0,
		}
		o.SetCountry([]string{"US", "IN", "DE", "BR"}[i%4])
		out[i] = o
	}
	return out
}

// encodeV2 writes obs into a v2 stream with the given block size.
func encodeV2(t *testing.T, obs []Observation, perBlock int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriterV2Blocks(&buf, perBlock)
	for _, o := range obs {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(obs)) {
		t.Fatalf("count = %d, want %d", w.Count(), len(obs))
	}
	return buf.Bytes()
}

func readAllV2(data []byte) ([]Observation, error) {
	r := NewReader(bytes.NewReader(data))
	var out []Observation
	for {
		o, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, o)
	}
}

func TestV2RoundTrip(t *testing.T) {
	in := frameObs(3000)
	data := encodeV2(t, in, 256)
	got, err := readAllV2(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("read %d records, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], in[i])
		}
	}
}

func TestV2EmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriterV2(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 4 {
		t.Fatalf("empty v2 stream is %d bytes, want 4 (magic only)", buf.Len())
	}
	if _, err := NewReader(&buf).Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// Flush mid-stream emits a valid partial block; writing continues in a
// fresh block and readers see one seamless stream.
func TestV2PartialBlockFlush(t *testing.T) {
	in := frameObs(10)
	var buf bytes.Buffer
	w := NewWriterV2Blocks(&buf, 256)
	for _, o := range in[:4] {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, o := range in[4:] {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := readAllV2(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("read %d records, want %d", len(got), len(in))
	}
}

// Every single-byte flip in a v2 stream must surface as a typed error
// from the strict reader — never a silent mis-decode and never a panic.
func TestV2EveryByteFlipDetected(t *testing.T) {
	in := frameObs(300)
	data := encodeV2(t, in, 64)
	for off := range data {
		mut := bytes.Clone(data)
		mut[off] ^= 0xff
		got, err := readAllV2(mut)
		if err == nil {
			t.Fatalf("flip at offset %d: stream read cleanly", off)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) &&
			!errors.Is(err, ErrUnsupportedVersion) {
			t.Fatalf("flip at offset %d: untyped error %v", off, err)
		}
		// Records decoded before the corrupt block must be pristine.
		for i, o := range got {
			if o != in[i] {
				t.Fatalf("flip at offset %d: record %d damaged before error", off, i)
			}
		}
	}
}

func TestV2CorruptErrorAttribution(t *testing.T) {
	in := frameObs(200)
	data := encodeV2(t, in, 50) // 4 blocks of 50
	// Flip one payload byte in the third block: 4-byte magic, then
	// blocks of 16+50*40 = 2016 bytes each.
	off := 4 + 2*2016 + blockHeaderSize + 123
	mut := bytes.Clone(data)
	mut[off] ^= 0x01
	_, err := readAllV2(mut)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	if ce.Block != 2 {
		t.Fatalf("block = %d, want 2", ce.Block)
	}
	if want := int64(4 + 2*2016); ce.Offset != want {
		t.Fatalf("offset = %d, want %d", ce.Offset, want)
	}
}

func TestV2OversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magicV2[:])
	buf.Write(blockMagic[:])
	// Length far over the cap: reader must reject before allocating.
	buf.Write([]byte{0xff, 0xff, 0xff, 0x7f})
	buf.Write(make([]byte, 8))
	_, err := readAllV2(buf.Bytes())
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
}

func TestV2TruncatedMidBlock(t *testing.T) {
	data := encodeV2(t, frameObs(100), 25)
	got, err := readAllV2(data[:len(data)-7])
	if err == nil {
		t.Fatal("truncated stream read cleanly")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if len(got) != 75 {
		t.Fatalf("decoded %d records before truncation, want 75", len(got))
	}
}

func TestUnsupportedVersion(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte{'u', 'v', '6', 3, 0, 0})).Read()
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("want ErrUnsupportedVersion, got %v", err)
	}
}

func TestSalvageIntactV2(t *testing.T) {
	in := frameObs(500)
	data := encodeV2(t, in, 100)
	var got []Observation
	rep, err := Salvage(bytes.NewReader(data), func(o Observation) { got = append(got, o) })
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Intact() || rep.Version != 2 || rep.Blocks != 5 || rep.Records != 500 {
		t.Fatalf("report = %+v", rep)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

// A corrupt middle block costs exactly that block: every other block's
// records come back, in order.
func TestSalvageCorruptMiddleBlock(t *testing.T) {
	in := frameObs(500)
	data := encodeV2(t, in, 100)
	blockLen := blockHeaderSize + 100*recordSize
	mut := bytes.Clone(data)
	mut[4+2*blockLen+blockHeaderSize+55] ^= 0x80 // payload of block 2

	var got []Observation
	rep, err := Salvage(bytes.NewReader(mut), func(o Observation) { got = append(got, o) })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blocks != 4 || rep.CorruptBlocks != 1 || rep.Records != 400 {
		t.Fatalf("report = %+v", rep)
	}
	want := append(append([]Observation{}, in[:200]...), in[300:]...)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered record %d differs", i)
		}
	}
}

// A destroyed block marker hides that block from the frame walk; the
// scanner resynchronizes on the next marker and recovers the rest.
func TestSalvageDestroyedMarker(t *testing.T) {
	data := encodeV2(t, frameObs(500), 100)
	blockLen := blockHeaderSize + 100*recordSize
	mut := bytes.Clone(data)
	mut[4+1*blockLen] ^= 0xff // first marker byte of block 1

	rep, err := Scan(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blocks != 4 || rep.Records != 400 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.SkippedBytes != int64(blockLen) {
		t.Fatalf("skipped = %d, want %d", rep.SkippedBytes, blockLen)
	}
}

// Even the stream signature is expendable: intact blocks are found by
// their markers.
func TestSalvageDamagedSignature(t *testing.T) {
	data := encodeV2(t, frameObs(300), 100)
	mut := bytes.Clone(data)
	mut[0] ^= 0xff
	rep, err := Scan(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 2 || rep.Records != 300 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSalvageTruncated(t *testing.T) {
	data := encodeV2(t, frameObs(500), 100)
	blockLen := blockHeaderSize + 100*recordSize
	// Cut mid-way through block 3: blocks 0-2 survive.
	rep, err := Scan(bytes.NewReader(data[:4+3*blockLen+blockLen/2]))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blocks != 3 || rep.Records != 300 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSalvageV1(t *testing.T) {
	in := frameObs(41)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, o := range in {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Torn tail: half a record.
	data := buf.Bytes()[:buf.Len()-recordSize/2]
	var got []Observation
	rep, err := Salvage(bytes.NewReader(data), func(o Observation) { got = append(got, o) })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 1 || rep.Records != 40 || rep.SkippedBytes != recordSize/2 {
		t.Fatalf("report = %+v", rep)
	}
	for i := range got {
		if got[i] != in[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestSalvageGarbage(t *testing.T) {
	junk := make([]byte, 4096)
	rnd := rand.New(rand.NewSource(42))
	rnd.Read(junk)
	_, err := Scan(bytes.NewReader(junk))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

// Random single-byte flips anywhere in the stream: salvage must always
// recover all blocks the flip did not touch.
func TestSalvageRandomFlips(t *testing.T) {
	const perBlock = 100
	in := frameObs(1000)
	data := encodeV2(t, in, perBlock)
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		off := rnd.Intn(len(data))
		mut := bytes.Clone(data)
		mut[off] ^= byte(1 + rnd.Intn(255))
		var got []Observation
		rep, err := Salvage(bytes.NewReader(mut), func(o Observation) { got = append(got, o) })
		if err != nil {
			t.Fatalf("flip at %d: %v", off, err)
		}
		if rep.Records < uint64(len(in)-perBlock) {
			t.Fatalf("flip at %d: only %d records recovered", off, rep.Records)
		}
		// Every recovered record must be one of the originals, at its
		// original position (UserID encodes the index).
		for _, o := range got {
			if o != in[o.UserID] {
				t.Fatalf("flip at %d: corrupt record slipped through salvage: %+v", off, o)
			}
		}
	}
}
