package telemetry

import (
	"testing"

	"userv6/internal/netmodel"
	"userv6/internal/population"
	"userv6/internal/simtime"
)

func testGen(t *testing.T, users int) *Generator {
	t.Helper()
	world := netmodel.BuildWorld(netmodel.WorldConfig{Seed: 7, Scale: float64(users) / 200000})
	cfg := population.DefaultConfig()
	cfg.Seed = 7
	cfg.Users = users
	pop := population.Synthesize(world, cfg)
	return NewGenerator(pop, 7)
}

func TestGeneratorDeterministic(t *testing.T) {
	g1 := testGen(t, 500)
	g2 := testGen(t, 500)
	var a, b []Observation
	g1.Generate(0, 2, func(o Observation) { a = append(a, o) })
	g2.Generate(0, 2, func(o Observation) { b = append(b, o) })
	if len(a) == 0 {
		t.Fatal("no observations")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("observation %d differs", i)
		}
	}
}

func TestGeneratorObservationsWellFormed(t *testing.T) {
	g := testGen(t, 800)
	day := simtime.Day(10)
	n := 0
	g.GenerateDay(day, func(o Observation) {
		n++
		if o.Day != day {
			t.Fatalf("day = %v", o.Day)
		}
		if !o.Addr.IsValid() {
			t.Fatal("invalid address emitted")
		}
		if o.Requests == 0 {
			t.Fatal("zero-request observation")
		}
		if o.Abusive {
			t.Fatal("benign generator emitted abusive flag")
		}
		if o.ASN == 0 {
			t.Fatal("missing ASN")
		}
		if o.CountryCode() == "\x00\x00" {
			t.Fatal("missing country")
		}
		if int(o.UserID) >= len(g.Pop.Users) {
			t.Fatal("unknown user id")
		}
	})
	if n == 0 {
		t.Fatal("no observations for a day")
	}
}

func TestGeneratorAddressesMatchRouting(t *testing.T) {
	g := testGen(t, 500)
	world := g.Pop.World
	g.GenerateDay(5, func(o Observation) {
		if got := world.ASNOf(o.Addr); got != o.ASN {
			t.Fatalf("obs ASN %d but routing says %d for %s", o.ASN, got, o.Addr)
		}
	})
}

func TestUserDayIndependentOfOtherDays(t *testing.T) {
	// Generating a single (user, day) in isolation must match the same
	// pair inside a range generation — the property that lets analyses
	// re-generate windows cheaply.
	g := testGen(t, 300)
	u := &g.Pop.Users[42]
	var solo []Observation
	g.UserDay(u, 9, func(o Observation) { solo = append(solo, o) })
	var inRange []Observation
	g.Generate(8, 10, func(o Observation) {
		if o.UserID == u.ID && o.Day == 9 {
			inRange = append(inRange, o)
		}
	})
	if len(solo) != len(inRange) {
		t.Fatalf("solo %d vs in-range %d", len(solo), len(inRange))
	}
	for i := range solo {
		if solo[i] != inRange[i] {
			t.Fatalf("obs %d differs", i)
		}
	}
}

func TestWeekendShiftsWorkActivity(t *testing.T) {
	g := testGen(t, 4000)
	// Day 5 (Tue Jan 28) vs day 9 (Sat Feb 1): enterprise observations
	// must drop sharply on the weekend.
	entASNs := make(map[netmodel.ASN]bool)
	for _, c := range g.Pop.World.Countries {
		entASNs[c.EntV6.ASN] = true
		entASNs[c.EntV4.ASN] = true
	}
	count := func(day simtime.Day) (ent, total int) {
		g.GenerateDay(day, func(o Observation) {
			total++
			if entASNs[o.ASN] {
				ent++
			}
		})
		return
	}
	entWeekday, totalWeekday := count(5)
	entWeekend, totalWeekend := count(9)
	if entWeekday == 0 {
		t.Fatal("no enterprise traffic on a weekday")
	}
	fWeekday := float64(entWeekday) / float64(totalWeekday)
	fWeekend := float64(entWeekend) / float64(totalWeekend)
	if fWeekend > fWeekday*0.5 {
		t.Fatalf("enterprise share weekday %.4f -> weekend %.4f; want a sharp drop", fWeekday, fWeekend)
	}
}

func TestLockdownShiftsWorkHome(t *testing.T) {
	g := testGen(t, 4000)
	entASNs := make(map[netmodel.ASN]bool)
	for _, c := range g.Pop.World.Countries {
		entASNs[c.EntV6.ASN] = true
		entASNs[c.EntV4.ASN] = true
	}
	share := func(day simtime.Day) float64 {
		var ent, total int
		g.GenerateDay(day, func(o Observation) {
			total++
			if entASNs[o.ASN] {
				ent++
			}
		})
		return float64(ent) / float64(total)
	}
	// Tue Jan 28 (pre) vs Tue Apr 14 (locked).
	pre, locked := share(5), share(82)
	if locked > pre*0.4 {
		t.Fatalf("enterprise share pre %.4f -> lockdown %.4f; want a collapse", pre, locked)
	}
}

func TestDualStackSplitsRequests(t *testing.T) {
	g := testGen(t, 2000)
	var v4Reqs, v6Reqs uint64
	g.GenerateDay(10, func(o Observation) {
		if o.Addr.Is6() {
			v6Reqs += uint64(o.Requests)
		} else {
			v4Reqs += uint64(o.Requests)
		}
	})
	if v6Reqs == 0 || v4Reqs == 0 {
		t.Fatalf("one-sided traffic: v4=%d v6=%d", v4Reqs, v6Reqs)
	}
	share := float64(v6Reqs) / float64(v4Reqs+v6Reqs)
	// Calibrated to the paper's 22-25% band; allow slack at small scale.
	if share < 0.12 || share > 0.40 {
		t.Fatalf("v6 request share = %.3f, outside plausible band", share)
	}
}

func BenchmarkGenerateDay(b *testing.B) {
	world := netmodel.BuildWorld(netmodel.WorldConfig{Seed: 7, Scale: 0.01})
	cfg := population.DefaultConfig()
	cfg.Seed = 7
	cfg.Users = 2000
	pop := population.Synthesize(world, cfg)
	g := NewGenerator(pop, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		g.GenerateDay(simtime.Day(i%28), func(Observation) { n++ })
	}
}
