// Package telemetry defines the request-observation event model and the
// streaming generator that turns a synthesized population into the
// telemetry stream the paper's analyses consume.
//
// An Observation aggregates the authenticated requests one user made
// from one source address on one day — exactly the telemetry fields the
// paper collects (timestamp, user ID, source IP, ASN, country), rolled
// up to day granularity, which is the granularity of every analysis in
// the paper. Generation is fully deterministic and streaming: the
// generator emits observations through a callback and retains nothing,
// in the spirit of preallocated single-pass packet decoding.
package telemetry

import (
	"context"

	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/population"
	"userv6/internal/rng"
	"userv6/internal/simtime"
)

// Observation is the atomic telemetry record: one (day, user, source
// address) triple with its request count and routing metadata.
type Observation struct {
	Day      simtime.Day
	UserID   uint64
	Addr     netaddr.Addr
	ASN      netmodel.ASN
	Country  [2]byte
	Requests uint32
	// Abusive marks observations from labeled abusive accounts.
	Abusive bool
}

// CountryCode returns the observation's country as a string.
func (o Observation) CountryCode() string { return string(o.Country[:]) }

// SetCountry stores a 2-letter country code.
func (o *Observation) SetCountry(code string) {
	if len(code) >= 2 {
		o.Country[0], o.Country[1] = code[0], code[1]
	}
}

// EmitFunc receives generated observations. Implementations must not
// retain the Observation beyond the call (it is a value type, so copying
// is cheap and safe if needed).
type EmitFunc func(Observation)

// GenConfig tunes the behavioral layer of the generator: session rates,
// protocol preference, and the temporal modifiers that produce the
// paper's weekend and pandemic effects.
type GenConfig struct {
	// Session rates per active context-day by kind.
	HomeSessions, MobileSessions, WorkSessions, VPNSessions float64
	// RequestsPerSession is the mean request count per session before
	// activity scaling.
	RequestsPerSession float64
	// V6RequestShare is the fraction of a dual-stack session's requests
	// sent over IPv6 (happy-eyeballs outcome).
	V6RequestShare float64
	// WeekendWorkFactor scales work activity on weekends; the remainder
	// shifts to home. WeekendMobileFactor scales mobile likewise.
	WeekendWorkFactor, WeekendMobileFactor float64
	// LockdownWorkFactor is the share of work activity remaining at
	// full lockdown (rest shifts home); LockdownMobileFactor likewise
	// for mobile.
	LockdownWorkFactor, LockdownMobileFactor float64
}

// DefaultGenConfig returns the calibrated behavioral defaults.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		HomeSessions:         1.8,
		MobileSessions:       2.2,
		WorkSessions:         1.0,
		VPNSessions:          0.6,
		RequestsPerSession:   7,
		V6RequestShare:       0.78,
		WeekendWorkFactor:    0.15,
		WeekendMobileFactor:  0.85,
		LockdownWorkFactor:   0.08,
		LockdownMobileFactor: 0.70,
	}
}

// Generator produces observation streams for a population.
type Generator struct {
	Pop *population.Population
	Cfg GenConfig
	// Seed decorrelates behavior from population structure.
	Seed uint64
}

// NewGenerator returns a generator with calibrated defaults.
func NewGenerator(pop *population.Population, seed uint64) *Generator {
	return &Generator{Pop: pop, Cfg: DefaultGenConfig(), Seed: rng.Derive(seed, "telemetry")}
}

// Generate emits all observations for days [from, to] inclusive, user by
// user, day by day. Order is deterministic: ascending user, then day.
func (g *Generator) Generate(from, to simtime.Day, emit EmitFunc) {
	for i := range g.Pop.Users {
		u := &g.Pop.Users[i]
		for d := from; d <= to; d++ {
			g.UserDay(u, d, emit)
		}
	}
}

// GenerateDay emits all observations for a single day.
func (g *Generator) GenerateDay(day simtime.Day, emit EmitFunc) {
	g.Generate(day, day, emit)
}

// GenerateUsers emits observations for the user-index range [lo, hi)
// over days [from, to]. Because generation is a pure function of (user,
// day), disjoint ranges can be generated concurrently; each goroutine
// gets its own emit.
func (g *Generator) GenerateUsers(lo, hi int, from, to simtime.Day, emit EmitFunc) {
	g.GenerateUsersCtx(context.Background(), lo, hi, from, to, emit)
}

// GenerateUsersCtx is GenerateUsers with cooperative cancellation: the
// context is checked before every (user, day) batch, so generation
// stops within one batch of ctx being cancelled and returns ctx.Err().
// It returns nil when the range was generated to completion.
func (g *Generator) GenerateUsersCtx(ctx context.Context, lo, hi int, from, to simtime.Day, emit EmitFunc) error {
	if lo < 0 {
		lo = 0
	}
	if hi > len(g.Pop.Users) {
		hi = len(g.Pop.Users)
	}
	done := ctx.Done()
	for i := lo; i < hi; i++ {
		u := &g.Pop.Users[i]
		for d := from; d <= to; d++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			g.UserDay(u, d, emit)
		}
	}
	return nil
}

// GenerateCtx is Generate with cooperative cancellation (see
// GenerateUsersCtx).
func (g *Generator) GenerateCtx(ctx context.Context, from, to simtime.Day, emit EmitFunc) error {
	return g.GenerateUsersCtx(ctx, 0, len(g.Pop.Users), from, to, emit)
}

// GenerateFromCtx resumes generation at a (user, day) frontier: it
// emits days [startDay, to] for the user at index startUser, then days
// [from, to] for every subsequent user. Because generation is a pure
// function of (user, day), the resumed stream is identical to the
// suffix of a full run from that frontier onward —
// GenerateFromCtx(ctx, 0, from, from, to, emit) is exactly
// GenerateCtx(ctx, from, to, emit).
func (g *Generator) GenerateFromCtx(ctx context.Context, startUser int, startDay, from, to simtime.Day, emit EmitFunc) error {
	return g.GenerateUsersFromCtx(ctx, startUser, startDay, len(g.Pop.Users), from, to, emit)
}

// GenerateUsersFromCtx is GenerateFromCtx bounded to the user-index
// range [startUser, hi): the resume primitive for one shard of a
// sharded export, whose part covers a contiguous range rather than the
// whole population. It emits days [startDay, to] for startUser, then
// days [from, to] for users (startUser, hi).
func (g *Generator) GenerateUsersFromCtx(ctx context.Context, startUser int, startDay simtime.Day, hi int, from, to simtime.Day, emit EmitFunc) error {
	if startUser < 0 {
		startUser = 0
	}
	if hi > len(g.Pop.Users) {
		hi = len(g.Pop.Users)
	}
	if startDay < from {
		startDay = from
	}
	done := ctx.Done()
	if startUser < hi {
		u := &g.Pop.Users[startUser]
		for d := startDay; d <= to; d++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			g.UserDay(u, d, emit)
		}
	}
	return g.GenerateUsersCtx(ctx, startUser+1, hi, from, to, emit)
}

// UserDay emits the observations of one user on one day. It is the
// deterministic unit of generation: the same (user, day) always yields
// the same observations.
func (g *Generator) UserDay(u *population.User, day simtime.Day, emit EmitFunc) {
	src := rng.New(rng.DeriveN(rng.DeriveN(g.Seed, u.ID), uint64(day)))
	weekend := day.IsWeekend()
	lock := simtime.LockdownIntensity(day)

	// Effective context weights. Work activity lost to lockdowns shifts
	// to the home context (work-from-home); weekend work absence shifts
	// home only for ordinary users — work-only users simply go quiet on
	// weekends, which is what makes lockdown (work happening *at home*
	// every day) and weekends (no work at all) differ, and is the
	// mechanism behind Germany's lockdown IPv6 jump (Appendix A.2).
	shiftToHome := 0.0
	effW := make([]float64, len(u.Contexts))
	for i := range u.Contexts {
		c := &u.Contexts[i]
		w := c.Weight
		switch c.Kind {
		case population.Work:
			lockFactor := 1 - (1-g.Cfg.LockdownWorkFactor)*lock
			weekendFactor := 1.0
			if weekend {
				weekendFactor = g.Cfg.WeekendWorkFactor
			}
			shiftToHome += w * (1 - lockFactor)
			if !u.WorkOnly {
				shiftToHome += w * lockFactor * (1 - weekendFactor)
			}
			w *= lockFactor * weekendFactor
		case population.MobileCtx:
			if weekend {
				w *= g.Cfg.WeekendMobileFactor
			}
			w *= 1 - (1-g.Cfg.LockdownMobileFactor)*lock
		}
		effW[i] = w
	}
	for i := range u.Contexts {
		if u.Contexts[i].Kind == population.Home {
			effW[i] += shiftToHome
		}
	}

	for i := range u.Contexts {
		c := &u.Contexts[i]
		w := effW[i]
		if w <= 0 {
			continue
		}
		var rate float64
		switch c.Kind {
		case population.Home:
			rate = g.Cfg.HomeSessions
		case population.MobileCtx:
			rate = g.Cfg.MobileSessions
		case population.Work:
			rate = g.Cfg.WorkSessions
		default:
			rate = g.Cfg.VPNSessions
		}
		// Session volume tracks the user's overall activity level, which
		// gives the heavy tail of addresses-per-day the paper observes.
		sessions := src.Poisson(rate * w * 2 * u.Activity)
		for s := 0; s < sessions; s++ {
			g.session(u, c, day, s, src, emit)
		}
	}
}

// session emits the observations of one session: up to one IPv6 and one
// IPv4 observation, splitting the session's requests across protocols.
func (g *Generator) session(u *population.User, c *population.Context, day simtime.Day, s int, src *rng.Source, emit EmitFunc) {
	reqs := 1 + src.Poisson(g.Cfg.RequestsPerSession*u.Activity)

	// Device choice: mobile sessions come from the phone (device 0);
	// home/work sessions come from the primary device most of the time,
	// occasionally a secondary one. MAC-embedding (StaticIID) users are
	// modeled with one device so their identifier is genuinely stable.
	device := uint64(0)
	if c.Kind != population.MobileCtx && u.Devices > 1 && !u.StaticIID && src.Bool(0.5) {
		device = 1 + uint64(src.Intn(u.Devices-1))
	}
	// The effective device identity carries the user's globally unique
	// hardware identity so MAC-embedding devices present the same EUI-64
	// identifier on every network; MAC-randomizing devices present a
	// fresh one each day.
	effDevice := u.DeviceBase + device
	if u.MACRandomizing {
		effDevice = device + (u.ID<<10|1000)*(uint64(day)+1)
	}

	v6 := c.Net.V6AddrAt(c.Sub, effDevice, day, s, u.StaticIID)
	// IPv4 bindings are sticky within a day (NAT/CGN keep a public
	// address for the device's active period), so the session index is
	// not part of the benign IPv4 assignment.
	v4 := c.Net.V4AddrAt(c.Sub, day, 0)

	var r6 int
	if v6.IsValid() && v4.IsValid() {
		// Binomial split approximated per-request for small counts.
		for r := 0; r < reqs; r++ {
			if src.Bool(g.Cfg.V6RequestShare) {
				r6++
			}
		}
	} else if v6.IsValid() {
		r6 = reqs
	}
	r4 := reqs - r6

	if r6 > 0 {
		emit(g.obs(u, c, day, v6, r6))
	}
	if r4 > 0 && v4.IsValid() {
		emit(g.obs(u, c, day, v4, r4))
	}
}

func (g *Generator) obs(u *population.User, c *population.Context, day simtime.Day, a netaddr.Addr, reqs int) Observation {
	o := Observation{
		Day:      day,
		UserID:   u.ID,
		Addr:     a,
		ASN:      c.Net.ASN,
		Requests: uint32(reqs),
	}
	o.SetCountry(u.Country)
	return o
}
