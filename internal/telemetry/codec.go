package telemetry

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/simtime"
)

// Binary observation record layout (little endian, fixed 40 bytes):
//
//	offset size field
//	0      4    day (int32)
//	4      8    user id
//	12     16   address (16-byte canonical form)
//	28     1    family (1=IPv4, 2=IPv6)
//	29     1    abusive flag
//	30     2    country code
//	32     4    asn
//	36     4    requests
const recordSize = 40

// magic is the v1 file signature; magicV2 (frame.go) marks the framed,
// checksummed v2 layout. The first three bytes identify the family, the
// fourth is the format version.
var magic = [4]byte{'u', 'v', '6', 1}

// ErrBadMagic is returned when a stream does not start with the
// telemetry file signature.
var ErrBadMagic = errors.New("telemetry: bad file magic")

// ErrUnsupportedVersion is returned when a stream carries the telemetry
// signature but a format version this build cannot decode.
var ErrUnsupportedVersion = errors.New("telemetry: unsupported format version")

// encodeRecord serializes o into b, which must hold recordSize bytes.
func encodeRecord(b []byte, o Observation) {
	binary.LittleEndian.PutUint32(b[0:], uint32(int32(o.Day)))
	binary.LittleEndian.PutUint64(b[4:], o.UserID)
	a16 := o.Addr.As16()
	copy(b[12:28], a16[:])
	switch o.Addr.Family() {
	case netaddr.IPv4:
		b[28] = 1
	case netaddr.IPv6:
		b[28] = 2
	default:
		b[28] = 0
	}
	if o.Abusive {
		b[29] = 1
	} else {
		b[29] = 0
	}
	b[30], b[31] = o.Country[0], o.Country[1]
	binary.LittleEndian.PutUint32(b[32:], uint32(o.ASN))
	binary.LittleEndian.PutUint32(b[36:], o.Requests)
}

// decodeRecord parses one record from b (at least recordSize bytes).
func decodeRecord(b []byte) Observation {
	var o Observation
	o.Day = simtime.Day(int32(binary.LittleEndian.Uint32(b[0:])))
	o.UserID = binary.LittleEndian.Uint64(b[4:])
	var a16 [16]byte
	copy(a16[:], b[12:28])
	switch b[28] {
	case 1:
		v4 := uint32(a16[12])<<24 | uint32(a16[13])<<16 | uint32(a16[14])<<8 | uint32(a16[15])
		o.Addr = netaddr.AddrFrom4(v4)
	case 2:
		o.Addr = netaddr.AddrFrom16(a16)
	}
	o.Abusive = b[29] == 1
	o.Country[0], o.Country[1] = b[30], b[31]
	o.ASN = netmodel.ASN(binary.LittleEndian.Uint32(b[32:]))
	o.Requests = binary.LittleEndian.Uint32(b[36:])
	return o
}

// Writer streams observations to an io.Writer in the legacy v1 binary
// format: raw fixed-size records with no framing or checksums. New
// files should use WriterV2, which detects corruption; Writer is kept
// for compatibility and as a fixture producer. Close (or Flush) must be
// called to drain the buffer.
type Writer struct {
	bw          *bufio.Writer
	buf         [recordSize]byte
	n           uint64
	wroteHeader bool
}

// NewWriter returns a v1-format Writer wrapping w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one observation.
func (w *Writer) Write(o Observation) error {
	if !w.wroteHeader {
		if _, err := w.bw.Write(magic[:]); err != nil {
			return fmt.Errorf("telemetry: write header: %w", err)
		}
		w.wroteHeader = true
	}
	encodeRecord(w.buf[:], o)
	if _, err := w.bw.Write(w.buf[:]); err != nil {
		return fmt.Errorf("telemetry: write record: %w", err)
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.n }

// Flush drains the internal buffer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams observations from the binary format. The format
// version is detected from the file signature: v1 streams decode as raw
// fixed-size records, v2 streams decode framed blocks with per-block
// CRC32C verification (frame.go). A corrupt v2 frame yields a
// *CorruptError identifying the block and byte offset.
type Reader struct {
	br         *bufio.Reader
	buf        [recordSize]byte
	readHeader bool
	version    byte

	// v2 framing state. hdr is the reusable frame-header scratch: a
	// local [16]byte escapes through io.ReadFull's interface argument,
	// which used to cost one heap allocation per block.
	blk      []byte // current verified (and decoded) block payload
	cblk     []byte // scratch for a codec-encoded stored payload
	hdr      [blockHeaderSize]byte
	blkOff   int   // read cursor within blk
	blockIdx int   // index of the next block to read
	off      int64 // bytes consumed from the underlying stream
}

// NewReader returns a Reader wrapping r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Read returns the next observation, or io.EOF at end of stream.
func (r *Reader) Read() (Observation, error) {
	if !r.readHeader {
		var m [4]byte
		if _, err := io.ReadFull(r.br, m[:]); err != nil {
			if err == io.EOF {
				return Observation{}, io.EOF
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return Observation{}, fmt.Errorf("%w (truncated signature)", ErrBadMagic)
			}
			return Observation{}, fmt.Errorf("telemetry: read header: %w", err)
		}
		r.off += 4
		switch {
		case m == magic:
			r.version = 1
		case m == magicV2:
			r.version = 2
		case m[0] == 'u' && m[1] == 'v' && m[2] == '6':
			return Observation{}, fmt.Errorf("%w: %d", ErrUnsupportedVersion, m[3])
		default:
			return Observation{}, ErrBadMagic
		}
		r.readHeader = true
	}
	if r.version == 2 {
		return r.readV2()
	}
	b := r.buf[:]
	if _, err := io.ReadFull(r.br, b); err != nil {
		if err == io.EOF {
			return Observation{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Observation{}, fmt.Errorf("%w (truncated record)", ErrCorrupt)
		}
		return Observation{}, fmt.Errorf("telemetry: read record: %w", err)
	}
	r.off += recordSize
	return decodeRecord(b), nil
}

// ForEach reads the whole stream, invoking fn per observation.
func (r *Reader) ForEach(fn EmitFunc) error {
	for {
		o, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		fn(o)
	}
}

// jsonObs is the JSONL wire form, using textual addresses for
// interoperability with external tooling.
type jsonObs struct {
	Day      int    `json:"day"`
	User     uint64 `json:"user"`
	Addr     string `json:"addr"`
	ASN      uint32 `json:"asn"`
	Country  string `json:"country"`
	Requests uint32 `json:"requests"`
	Abusive  bool   `json:"abusive,omitempty"`
}

// JSONLWriter streams observations as JSON lines.
type JSONLWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONLWriter returns a JSONLWriter wrapping w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one observation as a JSON line.
func (w *JSONLWriter) Write(o Observation) error {
	return w.enc.Encode(jsonObs{
		Day:      int(o.Day),
		User:     o.UserID,
		Addr:     o.Addr.String(),
		ASN:      uint32(o.ASN),
		Country:  o.CountryCode(),
		Requests: o.Requests,
		Abusive:  o.Abusive,
	})
}

// Flush drains the buffer.
func (w *JSONLWriter) Flush() error { return w.bw.Flush() }

// JSONLReader streams observations from JSON lines.
type JSONLReader struct {
	dec *json.Decoder
}

// NewJSONLReader returns a JSONLReader wrapping r.
func NewJSONLReader(r io.Reader) *JSONLReader {
	return &JSONLReader{dec: json.NewDecoder(bufio.NewReaderSize(r, 1<<16))}
}

// Read returns the next observation, or io.EOF.
func (r *JSONLReader) Read() (Observation, error) {
	var j jsonObs
	if err := r.dec.Decode(&j); err != nil {
		if err == io.EOF {
			return Observation{}, io.EOF
		}
		return Observation{}, fmt.Errorf("telemetry: decode jsonl: %w", err)
	}
	a, err := netaddr.ParseAddr(j.Addr)
	if err != nil {
		return Observation{}, fmt.Errorf("telemetry: jsonl addr: %w", err)
	}
	o := Observation{
		Day:      simtime.Day(j.Day),
		UserID:   j.User,
		Addr:     a,
		ASN:      netmodel.ASN(j.ASN),
		Requests: j.Requests,
		Abusive:  j.Abusive,
	}
	o.SetCountry(j.Country)
	return o, nil
}
