package telemetry

// Codec benchmarks: raw framed-stream encode/decode throughput, one of
// the three hot paths (generation, codec, trie) the CI bench-smoke gate
// watches for regressions.

import (
	"bytes"
	"io"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/simtime"
)

func benchObs(n int) []Observation {
	out := make([]Observation, n)
	for i := range out {
		o := Observation{
			Day:      simtime.Day(i % 7),
			UserID:   uint64(i),
			Addr:     netaddr.AddrFrom6(0x20010db8<<32, uint64(i)*0x9e3779b9),
			ASN:      netmodel.ASN(64500 + i%16),
			Requests: uint32(1 + i%40),
			Abusive:  i%97 == 0,
		}
		o.SetCountry("DE")
		out[i] = o
	}
	return out
}

// BenchmarkWriterV2 measures framed, checksummed encode throughput.
func BenchmarkWriterV2(b *testing.B) {
	obs := benchObs(64 * DefaultBlockRecords)
	b.SetBytes(int64(len(obs)) * recordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewWriterV2(io.Discard)
		for _, o := range obs {
			if err := w.Write(o); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReaderV2 measures verify-then-decode throughput of the
// strict reader (per-block CRC32C checked before any record is served).
func BenchmarkReaderV2(b *testing.B) {
	obs := benchObs(64 * DefaultBlockRecords)
	var buf bytes.Buffer
	w := NewWriterV2(&buf)
	for _, o := range obs {
		if err := w.Write(o); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(obs)) * recordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(buf.Bytes()))
		n := 0
		if err := r.ForEach(func(Observation) { n++ }); err != nil {
			b.Fatal(err)
		}
		if n != len(obs) {
			b.Fatalf("read %d of %d records", n, len(obs))
		}
	}
}

// BenchmarkWriterV2LZ is BenchmarkWriterV2 with per-block LZ: the extra
// cost of compressing each payload before checksumming it.
func BenchmarkWriterV2LZ(b *testing.B) {
	obs := benchObs(64 * DefaultBlockRecords)
	b.SetBytes(int64(len(obs)) * recordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := NewWriterV2Codec(io.Discard, DefaultBlockRecords, CodecLZ)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range obs {
			if err := w.Write(o); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReaderV2LZ measures CRC-verify + decompress + decode
// throughput over an LZ stream. SetBytes uses the decoded size, so the
// number is directly comparable to BenchmarkReaderV2.
func BenchmarkReaderV2LZ(b *testing.B) {
	obs := benchObs(64 * DefaultBlockRecords)
	var buf bytes.Buffer
	w, err := NewWriterV2Codec(&buf, DefaultBlockRecords, CodecLZ)
	if err != nil {
		b.Fatal(err)
	}
	for _, o := range obs {
		if err := w.Write(o); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(obs)) * recordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(buf.Bytes()))
		n := 0
		if err := r.ForEach(func(Observation) { n++ }); err != nil {
			b.Fatal(err)
		}
		if n != len(obs) {
			b.Fatalf("read %d of %d records", n, len(obs))
		}
	}
}
