package telemetry

// Pluggable per-block codecs. A v2 frame stores its payload under one
// codec, identified by the flags byte of the frame header (the high
// byte of the count word — see frame.go). Codec 0 is the identity,
// which keeps every pre-codec v2 stream byte-for-byte valid. Checksums
// always cover the stored (encoded) payload, so a frame is verifiable
// without decoding it — salvage and merge passthrough depend on that.

import (
	"fmt"
	"strings"
)

// CodecID is the on-disk codec identifier carried in the frame flags.
type CodecID uint8

const (
	// CodecIdentity stores payloads uncompressed (flags byte 0, the
	// format's pre-codec wire layout).
	CodecIdentity CodecID = 0
	// CodecLZ stores payloads under the built-in byte-level LZ variant
	// (lz.go). Writers fall back to identity per block when the encoded
	// form is not strictly smaller, so an LZ stream may mix both.
	CodecLZ CodecID = 1
	// CodecDelta stores payloads column-transposed with
	// frame-of-reference deltas on the sorted user/day columns and an
	// optional LZ cascade over the residual (delta.go). Same fallback
	// rule as CodecLZ.
	CodecDelta CodecID = 2
)

// String returns the codec's canonical name, or a numeric form for
// IDs this build does not know.
func (id CodecID) String() string {
	if c, ok := CodecByID(id); ok {
		return c.Name()
	}
	return fmt.Sprintf("codec(%d)", uint8(id))
}

// BlockCodec encodes and decodes whole block payloads. Implementations
// must be stateless and safe for concurrent use; encoding must be
// deterministic (merge passthrough equates "same decoded payload" with
// "same stored bytes").
type BlockCodec interface {
	// ID is the identifier stored in the frame flags.
	ID() CodecID
	// Name is the stable lowercase name used in dataset metadata.
	Name() string
	// AppendEncode appends the encoded form of src to dst.
	AppendEncode(dst, src []byte) []byte
	// AppendDecode appends the decoded form of src to dst, failing
	// (not panicking, not over-allocating) on any input whose decoded
	// form would exceed maxLen bytes or is otherwise malformed.
	AppendDecode(dst, src []byte, maxLen int) ([]byte, error)
}

type identityCodec struct{}

func (identityCodec) ID() CodecID  { return CodecIdentity }
func (identityCodec) Name() string { return "identity" }
func (identityCodec) AppendEncode(dst, src []byte) []byte {
	return append(dst, src...)
}
func (identityCodec) AppendDecode(dst, src []byte, maxLen int) ([]byte, error) {
	if len(src) > maxLen {
		return dst, errLZTooLong
	}
	return append(dst, src...), nil
}

type lzCodec struct{}

func (lzCodec) ID() CodecID  { return CodecLZ }
func (lzCodec) Name() string { return "lz" }
func (lzCodec) AppendEncode(dst, src []byte) []byte {
	return lzAppendEncode(dst, src)
}
func (lzCodec) AppendDecode(dst, src []byte, maxLen int) ([]byte, error) {
	return lzAppendDecode(dst, src, maxLen)
}

type deltaCodec struct{}

func (deltaCodec) ID() CodecID  { return CodecDelta }
func (deltaCodec) Name() string { return "delta" }
func (deltaCodec) AppendEncode(dst, src []byte) []byte {
	return deltaAppendEncode(dst, src)
}
func (deltaCodec) AppendDecode(dst, src []byte, maxLen int) ([]byte, error) {
	return deltaAppendDecode(dst, src, maxLen)
}

// CodecByID resolves a codec identifier. The second result is false
// for IDs this build does not implement (frames carrying one are
// treated as corrupt by readers and skipped by salvage).
func CodecByID(id CodecID) (BlockCodec, bool) {
	switch id {
	case CodecIdentity:
		return identityCodec{}, true
	case CodecLZ:
		return lzCodec{}, true
	case CodecDelta:
		return deltaCodec{}, true
	}
	return nil, false
}

// CodecByName resolves a codec by its metadata name. The empty string
// and "none" are accepted as aliases for identity, so datasets written
// before the codec field existed resolve without special-casing.
func CodecByName(name string) (BlockCodec, bool) {
	switch strings.ToLower(name) {
	case "", "identity", "none":
		return identityCodec{}, true
	case "lz":
		return lzCodec{}, true
	case "delta":
		return deltaCodec{}, true
	}
	return nil, false
}

// CodecChainByName resolves a compression policy name to a writer
// fallback chain: the writer encodes each block under every codec in
// the chain and stores the smallest result (identity when nothing
// shrinks the payload; chain order breaks ties). Single-codec names
// resolve to one-element chains; "auto" tries delta first, then LZ. A
// nil chain with ok=true is the identity policy. Policy names are a
// strict superset of codec names, so dataset metadata written with a
// plain codec name resolves unchanged.
func CodecChainByName(name string) ([]BlockCodec, bool) {
	switch strings.ToLower(name) {
	case "", "identity", "none":
		return nil, true
	case "lz":
		return []BlockCodec{lzCodec{}}, true
	case "delta":
		return []BlockCodec{deltaCodec{}}, true
	case "auto":
		return []BlockCodec{deltaCodec{}, lzCodec{}}, true
	}
	return nil, false
}

// CanonicalPolicy normalizes a compression policy name for equality
// comparison: case is folded and the identity aliases collapse to "".
// Unknown names normalize to their folded form, so two datasets with
// the same unknown label still compare equal.
func CanonicalPolicy(name string) string {
	n := strings.ToLower(name)
	if n == "identity" || n == "none" {
		return ""
	}
	return n
}

// CodecSet is a bitmask of codec IDs observed in a stream; salvage and
// scan reports carry one so callers can cross-check a dataset's frames
// against its declared codec without a second pass.
type CodecSet uint32

// Add records id in the set.
func (s *CodecSet) Add(id CodecID) { *s |= 1 << uint32(id%32) }

// Has reports whether id is in the set.
func (s CodecSet) Has(id CodecID) bool { return s&(1<<uint32(id%32)) != 0 }

// Empty reports whether no codec has been recorded.
func (s CodecSet) Empty() bool { return s == 0 }

// Names lists the codecs in the set in ID order.
func (s CodecSet) Names() []string {
	var names []string
	for id := 0; id < 32; id++ {
		if s.Has(CodecID(id)) {
			names = append(names, CodecID(id).String())
		}
	}
	return names
}
