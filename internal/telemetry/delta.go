package telemetry

// A frame-of-reference/delta codec for block payloads, exploiting the
// structure the generic LZ stage cannot see: v2 blocks hold fixed
// 40-byte records already sorted by (user, day), so the user column is
// a non-decreasing integer sequence (deltas of mostly 0 or 1), the day
// column cycles through a handful of small values per user, and
// consecutive addresses usually share their routing prefix. The codec
// transposes a block into columns and encodes each with the transform
// that fits it:
//
//	column    bytes/rec  transform
//	day       4          zigzag varint of the delta to the previous day
//	user      8          zigzag varint of the delta to the previous user
//	addr      16         XOR with the previous record's address, raw
//	family    1          raw
//	abusive   1          raw
//	country   2          raw
//	asn       4          zigzag varint of the delta to the previous ASN
//	requests  4          unsigned varint of the value
//
// The encoded body is
//
//	uvarint(n)  n = number of whole records in the payload
//	day column, user column, addr column, family column, abusive
//	column, country column, asn column, requests column
//	tail        payload bytes past the last whole record, raw
//
// prefixed by a one-byte cascade flag. The varint columns are
// self-delimiting, so the tail needs no length word. Columns of XORed
// addresses and near-constant flag bytes are long runs of zeros —
// exactly what the existing LZ stage compresses best — so the encoder
// optionally cascades the body through lzAppendEncode and keeps
// whichever form is smaller (bit 0 of the flag byte records the
// choice). Both stages are deterministic, which the merge passthrough
// relies on.
//
// The decoder is total: arbitrary input either decodes or fails with a
// typed error; it never panics, reads out of bounds, or allocates past
// the caller-supplied output bound.

import (
	"encoding/binary"
	"errors"
	"sync"
)

// deltaFlagLZ marks a body that was cascaded through the LZ stage.
const deltaFlagLZ = 0x01

// Decoder failure modes, package-level so the hot path never formats
// strings; the frame layer wraps them into a *CorruptError.
var (
	errDeltaEmpty     = errors.New("empty delta payload")
	errDeltaFlags     = errors.New("unknown delta flag bits")
	errDeltaTruncated = errors.New("truncated delta column")
	errDeltaCount     = errors.New("delta record count exceeds bound")
	errDeltaTooLong   = errors.New("delta output exceeds bound")
)

// deltaBodyPool recycles the column-transposed body scratch across
// blocks (encode builds the body before choosing the cascade; decode
// needs it to hold a cascaded body's expansion).
var deltaBodyPool = sync.Pool{
	New: func() any { return new([]byte) },
}

// deltaBodyBound is the largest body a payload of rawLen decoded bytes
// can encode to: varint columns cost at most 45 bytes per 40-byte
// record (5+10+16+1+1+2+5+5), plus the count varint and a sub-record
// tail. Used to bound the LZ stage's decode of a cascaded body.
func deltaBodyBound(rawLen int) int {
	return rawLen + rawLen/4 + 16
}

// zigzag maps a signed delta to an unsigned varint-friendly form.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// deltaAppendEncode appends the delta encoding of src to dst. The
// output is deterministic for a given src: same payload, same bytes.
func deltaAppendEncode(dst, src []byte) []byte {
	bp := deltaBodyPool.Get().(*[]byte)
	body := deltaEncodeBody((*bp)[:0], src)
	lz := lzAppendEncode(body[len(body):], body)
	if len(lz) < len(body) {
		dst = append(dst, deltaFlagLZ)
		dst = append(dst, lz...)
	} else {
		dst = append(dst, 0)
		dst = append(dst, body...)
	}
	// body and lz share one backing buffer (lz appends past body's
	// length), so returning body keeps both for the next block.
	*bp = body[:cap(body)]
	deltaBodyPool.Put(bp)
	return dst
}

// deltaEncodeBody builds the column-transposed body of src in dst.
func deltaEncodeBody(dst, src []byte) []byte {
	n := len(src) / recordSize
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(n))]...)

	// day column: int32 deltas.
	prevDay := int64(0)
	for i := 0; i < n; i++ {
		v := int64(int32(binary.LittleEndian.Uint32(src[i*recordSize:])))
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], zigzag(v-prevDay))]...)
		prevDay = v
	}
	// user column: uint64 ring deltas (two's-complement subtraction is
	// exact under wraparound, so arbitrary payloads still round-trip).
	prevUser := uint64(0)
	for i := 0; i < n; i++ {
		v := binary.LittleEndian.Uint64(src[i*recordSize+4:])
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], zigzag(int64(v-prevUser)))]...)
		prevUser = v
	}
	// addr column: XOR with the previous record's address.
	var prevAddr [16]byte
	for i := 0; i < n; i++ {
		a := src[i*recordSize+12 : i*recordSize+28]
		for j := 0; j < 16; j++ {
			dst = append(dst, a[j]^prevAddr[j])
			prevAddr[j] = a[j]
		}
	}
	// family, abusive, country columns: raw.
	for i := 0; i < n; i++ {
		dst = append(dst, src[i*recordSize+28])
	}
	for i := 0; i < n; i++ {
		dst = append(dst, src[i*recordSize+29])
	}
	for i := 0; i < n; i++ {
		dst = append(dst, src[i*recordSize+30], src[i*recordSize+31])
	}
	// asn column: uint32 deltas.
	prevASN := int64(0)
	for i := 0; i < n; i++ {
		v := int64(binary.LittleEndian.Uint32(src[i*recordSize+32:]))
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], zigzag(v-prevASN))]...)
		prevASN = v
	}
	// requests column: plain varints of the values.
	for i := 0; i < n; i++ {
		v := uint64(binary.LittleEndian.Uint32(src[i*recordSize+36:]))
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...)
	}
	// tail: payload bytes past the last whole record.
	return append(dst, src[n*recordSize:]...)
}

// deltaAppendDecode appends the decoded form of src to dst, refusing to
// grow the decoded portion past maxLen bytes.
func deltaAppendDecode(dst, src []byte, maxLen int) ([]byte, error) {
	if len(src) == 0 {
		return dst, errDeltaEmpty
	}
	flags, body := src[0], src[1:]
	if flags&^byte(deltaFlagLZ) != 0 {
		return dst, errDeltaFlags
	}
	if flags&deltaFlagLZ != 0 {
		bp := deltaBodyPool.Get().(*[]byte)
		defer deltaBodyPool.Put(bp)
		buf, err := lzAppendDecode((*bp)[:0], body, deltaBodyBound(maxLen))
		*bp = buf[:cap(buf)]
		if err != nil {
			return dst, err
		}
		body = buf
	}
	return deltaDecodeBody(dst, body, maxLen)
}

// deltaDecodeBody reverses deltaEncodeBody, bounding the output at
// maxLen appended bytes.
func deltaDecodeBody(dst, body []byte, maxLen int) ([]byte, error) {
	u, sz := binary.Uvarint(body)
	if sz <= 0 {
		return dst, errDeltaTruncated
	}
	body = body[sz:]
	if u > uint64(maxLen/recordSize) {
		return dst, errDeltaCount
	}
	n := int(u)

	// Grow dst by the record region once; columns fill it in place.
	base := len(dst)
	need := n * recordSize
	if cap(dst)-base < need {
		grown := make([]byte, base+need, base+need+recordSize)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:base+need]
	}
	out := dst[base:]

	varintCol := func(fill func(i int, v int64)) bool {
		for i := 0; i < n; i++ {
			u, sz := binary.Uvarint(body)
			if sz <= 0 {
				return false
			}
			body = body[sz:]
			fill(i, unzigzag(u))
		}
		return true
	}

	// day column: the running value is reduced to int32 each step,
	// mirroring the encoder's per-record reads, so arbitrary deltas
	// still round-trip.
	prevDay := int64(0)
	if !varintCol(func(i int, d int64) {
		prevDay = int64(int32(prevDay + d))
		binary.LittleEndian.PutUint32(out[i*recordSize:], uint32(prevDay))
	}) {
		return dst[:base], errDeltaTruncated
	}
	prevUser := uint64(0)
	if !varintCol(func(i int, d int64) {
		prevUser += uint64(d)
		binary.LittleEndian.PutUint64(out[i*recordSize+4:], prevUser)
	}) {
		return dst[:base], errDeltaTruncated
	}
	if len(body) < 16*n {
		return dst[:base], errDeltaTruncated
	}
	var prevAddr [16]byte
	for i := 0; i < n; i++ {
		a := out[i*recordSize+12 : i*recordSize+28]
		for j := 0; j < 16; j++ {
			prevAddr[j] ^= body[i*16+j]
			a[j] = prevAddr[j]
		}
	}
	body = body[16*n:]
	if len(body) < 4*n {
		return dst[:base], errDeltaTruncated
	}
	for i := 0; i < n; i++ {
		out[i*recordSize+28] = body[i]
		out[i*recordSize+29] = body[n+i]
		out[i*recordSize+30] = body[2*n+2*i]
		out[i*recordSize+31] = body[2*n+2*i+1]
	}
	body = body[4*n:]
	prevASN := int64(0)
	if !varintCol(func(i int, d int64) {
		prevASN = int64(uint32(prevASN + d))
		binary.LittleEndian.PutUint32(out[i*recordSize+32:], uint32(prevASN))
	}) {
		return dst[:base], errDeltaTruncated
	}
	for i := 0; i < n; i++ {
		u, sz := binary.Uvarint(body)
		if sz <= 0 {
			return dst[:base], errDeltaTruncated
		}
		body = body[sz:]
		binary.LittleEndian.PutUint32(out[i*recordSize+36:], uint32(u))
	}
	// Whatever remains is the sub-record tail.
	if need+len(body) > maxLen {
		return dst[:base], errDeltaTooLong
	}
	return append(dst, body...), nil
}
