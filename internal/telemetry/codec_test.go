package telemetry

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/rng"
	"userv6/internal/simtime"
)

func sampleObs() []Observation {
	mk := func(uid uint64, addr string, day int, asn uint32, cc string, reqs uint32, abusive bool) Observation {
		o := Observation{
			Day:      simtime.Day(day),
			UserID:   uid,
			Addr:     netaddr.MustParseAddr(addr),
			ASN:      netmodel.ASN(asn),
			Requests: reqs,
			Abusive:  abusive,
		}
		o.SetCountry(cc)
		return o
	}
	return []Observation{
		mk(1, "10.0.0.1", 0, 7922, "US", 3, false),
		mk(281474976710656, "2001:db8::dead:beef", 87, 20057, "IN", 1, true),
		mk(42, "2002:102:304::1", 15, 64512, "ZZ", 1000000, false),
		mk(0, "255.255.255.255", 1, 0, "DE", 1, false),
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := sampleObs()
	for _, o := range in {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(in)) {
		t.Fatalf("count = %d", w.Count())
	}

	r := NewReader(&buf)
	for i, want := range in {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	r := NewReader(bytes.NewBufferString("nope-not-telemetry"))
	if _, err := r.Read(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	r := NewReader(bytes.NewBuffer(nil))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestBinaryTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleObs()[0]); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-5]
	r := NewReader(bytes.NewBuffer(trunc))
	if _, err := r.Read(); err == nil {
		t.Fatal("truncated record read succeeded")
	}
}

func TestForEach(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, o := range sampleObs() {
		w.Write(o)
	}
	w.Flush()
	n := 0
	if err := NewReader(&buf).ForEach(func(Observation) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != len(sampleObs()) {
		t.Fatalf("visited %d", n)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	in := sampleObs()
	for _, o := range in {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewJSONLReader(&buf)
	for i, want := range in {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestJSONLBadAddr(t *testing.T) {
	r := NewJSONLReader(bytes.NewBufferString(`{"day":1,"user":1,"addr":"nope"}` + "\n"))
	if _, err := r.Read(); err == nil {
		t.Fatal("bad address accepted")
	}
}

// Property: random observations survive both codecs.
func TestCodecRoundTripProperty(t *testing.T) {
	src := rng.New(99)
	f := func(uid uint64, hi, lo uint64, day uint8, asn uint32, reqs uint32, abusive, v4 bool) bool {
		var addr netaddr.Addr
		if v4 {
			addr = netaddr.AddrFrom4(uint32(lo))
		} else {
			addr = netaddr.AddrFrom6(hi, lo)
		}
		o := Observation{
			Day:      simtime.Day(day),
			UserID:   uid,
			Addr:     addr,
			ASN:      netmodel.ASN(asn),
			Requests: reqs,
			Abusive:  abusive,
		}
		o.SetCountry([]string{"US", "IN", "BR", "DE"}[src.Intn(4)])

		var buf bytes.Buffer
		w := NewWriter(&buf)
		if w.Write(o) != nil || w.Flush() != nil {
			return false
		}
		got, err := NewReader(&buf).Read()
		if err != nil || got != o {
			return false
		}

		var jbuf bytes.Buffer
		jw := NewJSONLWriter(&jbuf)
		if jw.Write(o) != nil || jw.Flush() != nil {
			return false
		}
		jgot, err := NewJSONLReader(&jbuf).Read()
		return err == nil && jgot == o
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCountryCodeHelpers(t *testing.T) {
	var o Observation
	o.SetCountry("US")
	if o.CountryCode() != "US" {
		t.Fatalf("CountryCode = %q", o.CountryCode())
	}
	o.SetCountry("X") // too short: ignored
	if o.CountryCode() != "US" {
		t.Fatalf("short code overwrote: %q", o.CountryCode())
	}
}
