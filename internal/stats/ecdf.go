// Package stats provides the statistical primitives behind every figure:
// empirical CDFs, quantiles, integer histograms, ROC curve assembly, and
// sample-to-population extrapolation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over float64
// samples. Build one with NewECDF or incrementally via an Accumulator.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples. The input slice is copied.
func NewECDF(samples []float64) *ECDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the number of samples.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x) in [0, 1]. For an empty ECDF it returns NaN.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile (q in [0, 1]) using the nearest-rank
// method. For an empty ECDF it returns NaN.
func (e *ECDF) Quantile(q float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[n-1]
	}
	rank := int(math.Ceil(q*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	return e.sorted[rank]
}

// Median returns Quantile(0.5).
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Mean returns the sample mean, or NaN when empty.
func (e *ECDF) Mean() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range e.sorted {
		sum += v
	}
	return sum / float64(len(e.sorted))
}

// Max returns the largest sample, or NaN when empty.
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[len(e.sorted)-1]
}

// Min returns the smallest sample, or NaN when empty.
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[0]
}

// Points returns (x, P(X <= x)) pairs at the given x values, the form the
// figure renderers consume.
func (e *ECDF) Points(xs []float64) []Point {
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{X: x, Y: e.At(x)}
	}
	return pts
}

// Point is a 2-D sample of a curve.
type Point struct{ X, Y float64 }

// IntHist is an exact histogram over non-negative integers: dense buckets
// for small values (the common case for "addresses per user"-style
// counts) and a sparse map for the heavy tail, so the CDF is exact at
// every value. The zero IntHist is not usable; call NewIntHist.
type IntHist struct {
	buckets  []uint64       // counts for 0..len-1
	overflow map[int]uint64 // counts for values >= len(buckets)
	total    uint64
	sum      uint64
	max      uint64
}

// NewIntHist returns a histogram with dense buckets for values < cap.
func NewIntHist(cap int) *IntHist {
	if cap < 1 {
		cap = 1
	}
	return &IntHist{buckets: make([]uint64, cap)}
}

// Add records one observation of value v (negative values count as 0).
func (h *IntHist) Add(v int) {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if v < len(h.buckets) {
		h.buckets[v]++
	} else {
		if h.overflow == nil {
			h.overflow = make(map[int]uint64)
		}
		h.overflow[v]++
	}
	h.total++
	h.sum += u
	if u > h.max {
		h.max = u
	}
}

// N returns the number of observations.
func (h *IntHist) N() uint64 { return h.total }

// Mean returns the observation mean, or NaN when empty.
func (h *IntHist) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return float64(h.sum) / float64(h.total)
}

// Max returns the largest observed value.
func (h *IntHist) Max() uint64 { return h.max }

// CDFAt returns the exact P(X <= v).
func (h *IntHist) CDFAt(v int) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if v < 0 {
		return 0
	}
	if uint64(v) >= h.max {
		return 1
	}
	var cum uint64
	limit := v
	if limit >= len(h.buckets) {
		limit = len(h.buckets) - 1
	}
	for i := 0; i <= limit; i++ {
		cum += h.buckets[i]
	}
	for ov, c := range h.overflow {
		if ov <= v {
			cum += c
		}
	}
	return float64(cum) / float64(h.total)
}

// FracAbove returns P(X > v).
func (h *IntHist) FracAbove(v int) float64 {
	c := h.CDFAt(v)
	if math.IsNaN(c) {
		return math.NaN()
	}
	return 1 - c
}

// Median returns the smallest v with CDFAt(v) >= 0.5, searching the exact
// buckets; if the median falls into overflow it returns the bucket cap.
func (h *IntHist) Median() int { return h.QuantileInt(0.5) }

// QuantileInt returns the smallest v with P(X <= v) >= q.
func (h *IntHist) QuantileInt(q float64) int {
	if h.total == 0 {
		return 0
	}
	target := q * float64(h.total)
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if float64(cum) >= target {
			return i
		}
	}
	ovs := make([]int, 0, len(h.overflow))
	for v := range h.overflow {
		ovs = append(ovs, v)
	}
	sort.Ints(ovs)
	for _, v := range ovs {
		cum += h.overflow[v]
		if float64(cum) >= target {
			return v
		}
	}
	return int(h.max)
}

// CDFPoints returns (v, P(X <= v)) pairs for v in [0, maxV].
func (h *IntHist) CDFPoints(maxV int) []Point {
	pts := make([]Point, 0, maxV+1)
	for v := 0; v <= maxV; v++ {
		pts = append(pts, Point{X: float64(v), Y: h.CDFAt(v)})
	}
	return pts
}

// Merge folds other into h. The bucket capacities must match.
func (h *IntHist) Merge(other *IntHist) error {
	if len(h.buckets) != len(other.buckets) {
		return fmt.Errorf("stats: IntHist capacity mismatch %d != %d", len(h.buckets), len(other.buckets))
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	for v, c := range other.overflow {
		if h.overflow == nil {
			h.overflow = make(map[int]uint64)
		}
		h.overflow[v] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	return nil
}
