package stats

import (
	"fmt"
	"math"
	"sort"
)

// ROCPoint is one operating point of a detector: the actioning threshold
// that produced it and the resulting true/false positive rates.
type ROCPoint struct {
	Threshold float64
	TPR, FPR  float64
}

// ROC is a receiver operating characteristic curve: operating points
// ordered by ascending FPR.
type ROC struct {
	Points []ROCPoint
}

// NewROC sorts points by ascending FPR (ties by ascending TPR) and
// returns the curve.
func NewROC(points []ROCPoint) *ROC {
	ps := append([]ROCPoint(nil), points...)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].FPR != ps[j].FPR {
			return ps[i].FPR < ps[j].FPR
		}
		return ps[i].TPR < ps[j].TPR
	})
	return &ROC{Points: ps}
}

// AUC returns the area under the curve by trapezoidal integration,
// anchored at (0,0) and (1,1).
func (r *ROC) AUC() float64 {
	if len(r.Points) == 0 {
		return math.NaN()
	}
	area := 0.0
	prev := ROCPoint{FPR: 0, TPR: 0}
	for _, p := range r.Points {
		area += (p.FPR - prev.FPR) * (p.TPR + prev.TPR) / 2
		prev = p
	}
	area += (1 - prev.FPR) * (1 + prev.TPR) / 2
	return area
}

// TPRAtFPR returns the highest TPR achievable at a false positive rate
// not exceeding maxFPR, and whether any operating point qualifies.
func (r *ROC) TPRAtFPR(maxFPR float64) (float64, bool) {
	best, ok := 0.0, false
	for _, p := range r.Points {
		if p.FPR <= maxFPR && p.TPR >= best {
			best, ok = p.TPR, true
		}
	}
	return best, ok
}

// At returns the operating point for the given threshold, or false.
func (r *ROC) At(threshold float64) (ROCPoint, bool) {
	for _, p := range r.Points {
		if p.Threshold == threshold {
			return p, true
		}
	}
	return ROCPoint{}, false
}

// DominatesBelow reports whether r's achievable TPR is at least as high
// as other's at every probe FPR in probes, with strict improvement at one
// or more. This is the comparison behind the paper's "for FPR values
// below 1%, IPv4's ROC curve is consistently below those of IPv6".
func (r *ROC) DominatesBelow(other *ROC, probes []float64) bool {
	strict := false
	for _, f := range probes {
		mine, ok1 := r.TPRAtFPR(f)
		theirs, ok2 := other.TPRAtFPR(f)
		if !ok1 && !ok2 {
			continue
		}
		if !ok1 {
			return false
		}
		if ok2 && mine < theirs {
			return false
		}
		if !ok2 || mine > theirs {
			strict = true
		}
	}
	return strict
}

// String summarizes the curve.
func (r *ROC) String() string {
	return fmt.Sprintf("stats.ROC{points=%d, auc=%.3f}", len(r.Points), r.AUC())
}

// BinaryCounts accumulates confusion-matrix tallies for one threshold.
type BinaryCounts struct {
	TP, FP, TN, FN uint64
}

// TPR returns TP / (TP + FN), or NaN with no positives.
func (c BinaryCounts) TPR() float64 {
	if c.TP+c.FN == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR returns FP / (FP + TN), or NaN with no negatives.
func (c BinaryCounts) FPR() float64 {
	if c.FP+c.TN == 0 {
		return math.NaN()
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// Precision returns TP / (TP + FP), or NaN with no predicted positives.
func (c BinaryCounts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Extrapolate scales a count observed under a sampling rate to the full
// population: count/rate. It panics on non-positive rates, which always
// indicate a configuration bug.
func Extrapolate(count uint64, rate float64) float64 {
	if rate <= 0 {
		panic("stats: Extrapolate with non-positive sampling rate")
	}
	return float64(count) / rate
}

// WilsonInterval returns the 95% Wilson score interval for a proportion
// of k successes in n trials — the uncertainty the experiment reports
// carry at simulation scale. For n == 0 it returns (0, 1).
func WilsonInterval(k, n uint64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.959963984540054 // 97.5th normal percentile
	nf := float64(n)
	p := float64(k) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
