package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"userv6/internal/rng"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3, 10})
	cases := []struct{ x, want float64 }{
		{0, 0},
		{1, 0.2},
		{1.5, 0.2},
		{2, 0.6},
		{3, 0.8},
		{9.99, 0.8},
		{10, 1},
		{100, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 5 {
		t.Fatalf("N = %d", e.N())
	}
	if e.Min() != 1 || e.Max() != 10 {
		t.Fatalf("Min/Max = %v/%v", e.Min(), e.Max())
	}
	if got := e.Mean(); math.Abs(got-3.6) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if !math.IsNaN(e.At(1)) || !math.IsNaN(e.Quantile(0.5)) || !math.IsNaN(e.Mean()) {
		t.Fatal("empty ECDF should return NaN")
	}
	if !math.IsNaN(e.Min()) || !math.IsNaN(e.Max()) {
		t.Fatal("empty Min/Max should be NaN")
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{5, 1, 3, 2, 4})
	if e.Quantile(0) != 1 || e.Quantile(1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if e.Median() != 3 {
		t.Fatalf("Median = %v", e.Median())
	}
	if e.Quantile(0.2) != 1 || e.Quantile(0.21) != 2 {
		t.Fatalf("nearest-rank boundary wrong: %v, %v", e.Quantile(0.2), e.Quantile(0.21))
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	e := NewECDF(in)
	in[0] = 100
	if e.Max() != 3 {
		t.Fatal("ECDF aliased caller slice")
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	pts := e.Points([]float64{0, 2, 4})
	want := []Point{{0, 0}, {2, 0.5}, {4, 1}}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("Points = %v, want %v", pts, want)
		}
	}
}

// Property: ECDF is monotone nondecreasing and bounded in [0,1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(samples []float64, x1, x2 float64) bool {
		if len(samples) == 0 {
			return true
		}
		for _, s := range samples {
			if math.IsNaN(s) {
				return true
			}
		}
		if math.IsNaN(x1) || math.IsNaN(x2) {
			return true
		}
		e := NewECDF(samples)
		lo, hi := x1, x2
		if lo > hi {
			lo, hi = hi, lo
		}
		a, b := e.At(lo), e.At(hi)
		return a >= 0 && b <= 1 && a <= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile and At are near-inverses.
func TestQuantileInverseProperty(t *testing.T) {
	src := rng.New(5)
	for trial := 0; trial < 100; trial++ {
		n := 1 + src.Intn(200)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = src.Float64() * 100
		}
		e := NewECDF(samples)
		q := src.Float64()
		v := e.Quantile(q)
		if e.At(v) < q-1e-9 {
			t.Fatalf("At(Quantile(%v)) = %v < q", q, e.At(v))
		}
	}
}

func TestIntHistBasics(t *testing.T) {
	h := NewIntHist(10)
	for _, v := range []int{0, 1, 1, 2, 5, 20} {
		h.Add(v)
	}
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Max() != 20 {
		t.Fatalf("Max = %d", h.Max())
	}
	if got := h.CDFAt(1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CDFAt(1) = %v", got)
	}
	if got := h.CDFAt(5); math.Abs(got-5.0/6) > 1e-12 {
		t.Fatalf("CDFAt(5) = %v", got)
	}
	if got := h.CDFAt(20); got != 1 {
		t.Fatalf("CDFAt(max) = %v", got)
	}
	if got := h.CDFAt(-1); got != 0 {
		t.Fatalf("CDFAt(-1) = %v", got)
	}
	if got := h.FracAbove(1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FracAbove(1) = %v", got)
	}
	if got := h.Mean(); math.Abs(got-29.0/6) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	if h.Median() != 1 {
		t.Fatalf("Median = %d", h.Median())
	}
}

func TestIntHistNegativeClamped(t *testing.T) {
	h := NewIntHist(4)
	h.Add(-5)
	if got := h.CDFAt(0); got != 1 {
		t.Fatalf("negative add not clamped to 0: %v", got)
	}
}

func TestIntHistEmpty(t *testing.T) {
	h := NewIntHist(4)
	if !math.IsNaN(h.CDFAt(1)) || !math.IsNaN(h.Mean()) || !math.IsNaN(h.FracAbove(0)) {
		t.Fatal("empty hist should yield NaN")
	}
	if h.QuantileInt(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestIntHistMerge(t *testing.T) {
	a, b := NewIntHist(8), NewIntHist(8)
	a.Add(1)
	a.Add(3)
	b.Add(3)
	b.Add(100)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 4 || a.Max() != 100 {
		t.Fatalf("merged N=%d Max=%d", a.N(), a.Max())
	}
	if got := a.CDFAt(3); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("merged CDFAt(3) = %v", got)
	}
	c := NewIntHist(4)
	if err := a.Merge(c); err == nil {
		t.Fatal("capacity mismatch merge succeeded")
	}
}

func TestIntHistCDFPoints(t *testing.T) {
	h := NewIntHist(8)
	h.Add(0)
	h.Add(2)
	pts := h.CDFPoints(3)
	if len(pts) != 4 || pts[0].Y != 0.5 || pts[2].Y != 1 {
		t.Fatalf("CDFPoints = %v", pts)
	}
}

// Property: IntHist CDF matches a brute-force computation.
func TestIntHistMatchesBruteForce(t *testing.T) {
	f := func(vals []uint8, probe uint8) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewIntHist(16)
		for _, v := range vals {
			h.Add(int(v))
		}
		count := 0
		for _, v := range vals {
			if int(v) <= int(probe) {
				count++
			}
		}
		want := float64(count) / float64(len(vals))
		got := h.CDFAt(int(probe))
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestROCOrderingAndAUC(t *testing.T) {
	r := NewROC([]ROCPoint{
		{Threshold: 1.0, TPR: 0.1, FPR: 0.0},
		{Threshold: 0.0, TPR: 0.9, FPR: 0.5},
		{Threshold: 0.5, TPR: 0.5, FPR: 0.1},
	})
	if !sort.SliceIsSorted(r.Points, func(i, j int) bool { return r.Points[i].FPR < r.Points[j].FPR }) {
		t.Fatal("points not sorted by FPR")
	}
	auc := r.AUC()
	if auc <= 0.5 || auc > 1 {
		t.Fatalf("AUC = %v", auc)
	}
	// Perfect detector AUC = 1.
	perfect := NewROC([]ROCPoint{{TPR: 1, FPR: 0}})
	if got := perfect.AUC(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect AUC = %v", got)
	}
	// Random detector along the diagonal ≈ 0.5.
	random := NewROC([]ROCPoint{{TPR: 0.3, FPR: 0.3}, {TPR: 0.7, FPR: 0.7}})
	if got := random.AUC(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("diagonal AUC = %v", got)
	}
	empty := NewROC(nil)
	if !math.IsNaN(empty.AUC()) {
		t.Fatal("empty AUC should be NaN")
	}
}

func TestTPRAtFPR(t *testing.T) {
	r := NewROC([]ROCPoint{
		{Threshold: 1.0, TPR: 0.08, FPR: 0.00001},
		{Threshold: 0.1, TPR: 0.13, FPR: 0.0001},
		{Threshold: 0.0, TPR: 0.14, FPR: 0.009},
	})
	if tpr, ok := r.TPRAtFPR(0.001); !ok || tpr != 0.13 {
		t.Fatalf("TPRAtFPR(0.001) = %v, %v", tpr, ok)
	}
	if tpr, ok := r.TPRAtFPR(1); !ok || tpr != 0.14 {
		t.Fatalf("TPRAtFPR(1) = %v, %v", tpr, ok)
	}
	if _, ok := r.TPRAtFPR(0.0000001); ok {
		t.Fatal("impossible FPR constraint satisfied")
	}
}

func TestROCAt(t *testing.T) {
	r := NewROC([]ROCPoint{{Threshold: 0.5, TPR: 0.4, FPR: 0.1}})
	if p, ok := r.At(0.5); !ok || p.TPR != 0.4 {
		t.Fatalf("At(0.5) = %+v, %v", p, ok)
	}
	if _, ok := r.At(0.9); ok {
		t.Fatal("absent threshold found")
	}
}

func TestDominatesBelow(t *testing.T) {
	good := NewROC([]ROCPoint{{TPR: 0.2, FPR: 0.001}, {TPR: 0.25, FPR: 0.01}})
	bad := NewROC([]ROCPoint{{TPR: 0.05, FPR: 0.001}, {TPR: 0.1, FPR: 0.01}})
	probes := []float64{0.001, 0.01}
	if !good.DominatesBelow(bad, probes) {
		t.Fatal("good should dominate bad")
	}
	if bad.DominatesBelow(good, probes) {
		t.Fatal("bad should not dominate good")
	}
	if good.DominatesBelow(good, probes) {
		t.Fatal("curve should not strictly dominate itself")
	}
}

func TestBinaryCounts(t *testing.T) {
	c := BinaryCounts{TP: 30, FN: 70, FP: 1, TN: 999}
	if got := c.TPR(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("TPR = %v", got)
	}
	if got := c.FPR(); math.Abs(got-0.001) > 1e-12 {
		t.Fatalf("FPR = %v", got)
	}
	if got := c.Precision(); math.Abs(got-30.0/31) > 1e-12 {
		t.Fatalf("Precision = %v", got)
	}
	var zero BinaryCounts
	if !math.IsNaN(zero.TPR()) || !math.IsNaN(zero.FPR()) || !math.IsNaN(zero.Precision()) {
		t.Fatal("zero counts should yield NaN rates")
	}
}

func TestExtrapolate(t *testing.T) {
	if got := Extrapolate(10, 0.001); got != 10000 {
		t.Fatalf("Extrapolate = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Extrapolate(1, 0) did not panic")
		}
	}()
	Extrapolate(1, 0)
}

func BenchmarkECDFAt(b *testing.B) {
	src := rng.New(1)
	samples := make([]float64, 100000)
	for i := range samples {
		samples[i] = src.Float64()
	}
	e := NewECDF(samples)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.At(0.5)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatalf("n=0 interval = [%v, %v]", lo, hi)
	}
	// 50/100: symmetric-ish around 0.5, roughly ±0.1.
	lo, hi = WilsonInterval(50, 100)
	if lo > 0.5 || hi < 0.5 {
		t.Fatalf("interval [%v, %v] excludes p", lo, hi)
	}
	if hi-lo < 0.15 || hi-lo > 0.25 {
		t.Fatalf("width = %v", hi-lo)
	}
	// Extremes stay in [0, 1] and contain sane mass.
	lo, hi = WilsonInterval(0, 20)
	if lo != 0 || hi < 0.1 || hi > 0.3 {
		t.Fatalf("0/20 interval = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(20, 20)
	if hi != 1 || lo > 0.9 {
		t.Fatalf("20/20 interval = [%v, %v]", lo, hi)
	}
	// Interval shrinks with n.
	lo1, hi1 := WilsonInterval(5, 10)
	lo2, hi2 := WilsonInterval(500, 1000)
	if hi2-lo2 >= hi1-lo1 {
		t.Fatal("interval did not shrink with n")
	}
}
