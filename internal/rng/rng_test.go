package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
}

func TestSeedResets(t *testing.T) {
	s := New(7)
	first := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	s.Seed(7)
	for i, want := range first {
		if got := s.Uint64(); got != want {
			t.Fatalf("after reseed, value %d = %d, want %d", i, got, want)
		}
	}
}

func TestZeroSourceUsable(t *testing.T) {
	var s Source
	// Must not panic; draws from the zero state.
	_ = s.Uint64()
	_ = s.Float64()
}

func TestDeriveIndependence(t *testing.T) {
	s1 := Derive(1, "population")
	s2 := Derive(1, "abuse")
	s3 := Derive(2, "population")
	if s1 == s2 || s1 == s3 || s2 == s3 {
		t.Fatal("derived seeds collide")
	}
	if Derive(1, "population") != s1 {
		t.Fatal("Derive not deterministic")
	}
	if DeriveN(1, 5) == DeriveN(1, 6) || DeriveN(1, 5) != DeriveN(1, 5) {
		t.Fatal("DeriveN broken")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(1)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	s := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(5)
	if s.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v", p)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("variance = %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("mean = %v, want ~1", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(17)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(19)
	p := 0.25
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Geometric(p)
	}
	want := (1 - p) / p // mean failures before success
	if got := float64(sum) / n; math.Abs(got-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean = %v, want %v", p, got, want)
	}
	if s.Geometric(1) != 0 {
		t.Fatal("Geometric(1) should be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(23)
	const n, draws = 100, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := s.Zipf(n, 1.0)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[n-1] {
		t.Fatal("Zipf not skewed toward low ranks")
	}
	// Rank 0 should be roughly n times as likely as rank n-1 for alpha=1.
	ratio := float64(counts[0]) / float64(counts[n-1]+1)
	if ratio < 20 {
		t.Fatalf("Zipf head/tail ratio = %v, want large", ratio)
	}
	if s.Zipf(1, 1) != 0 || s.Zipf(0, 1) != 0 {
		t.Fatal("degenerate Zipf should return 0")
	}
}

func TestParetoTail(t *testing.T) {
	s := New(29)
	const n = 100000
	over10 := 0
	for i := 0; i < n; i++ {
		v := s.Pareto(1, 1.5)
		if v < 1 {
			t.Fatalf("Pareto below scale: %v", v)
		}
		if v > 10 {
			over10++
		}
	}
	// P(X > 10) = 10^-1.5 ≈ 0.0316.
	got := float64(over10) / n
	if math.Abs(got-0.0316) > 0.005 {
		t.Fatalf("Pareto tail mass = %v, want ~0.0316", got)
	}
}

func TestWeightedChoice(t *testing.T) {
	s := New(31)
	weights := []float64{1, 0, 3, -2, 6}
	const n = 100000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[s.WeightedChoice(weights)]++
	}
	if counts[1] != 0 || counts[3] != 0 {
		t.Fatal("zero/negative weights were chosen")
	}
	if !(counts[4] > counts[2] && counts[2] > counts[0]) {
		t.Fatalf("weights not respected: %v", counts)
	}
	if got := float64(counts[4]) / n; math.Abs(got-0.6) > 0.01 {
		t.Fatalf("weight-6 share = %v, want ~0.6", got)
	}
	if s.WeightedChoice([]float64{0, 0}) != 0 {
		t.Fatal("all-zero weights should return 0")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(37)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		if seen[x] {
			t.Fatal("duplicate after shuffle")
		}
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Fatal("lost elements")
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(41)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.LogNormal(2, 0.5)
	}
	// Median of LogNormal(mu, sigma) is exp(mu).
	below := 0
	want := math.Exp(2)
	for _, v := range vals {
		if v < want {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("fraction below exp(mu) = %v, want ~0.5", frac)
	}
}

// Property: Uint64n(n) < n for all n > 0.
func TestUint64nBoundProperty(t *testing.T) {
	s := New(43)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkPoisson(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Poisson(8)
	}
}
