// Package rng provides small, fully deterministic pseudo-random number
// generators with hierarchical seed derivation.
//
// Every stochastic component of the simulator (population synthesis,
// address assignment, attacker behavior, request arrival) draws from an
// rng.Source derived from the scenario seed and a stable label. This makes
// whole-experiment runs byte-for-byte reproducible across machines and Go
// versions — something math/rand does not guarantee across releases — and
// lets independent components consume randomness without contending on a
// shared source.
package rng

import "math/bits"

// splitmix64 is the seed-expansion function from Vigna's SplitMix64.
// It is used both to derive sub-seeds and to bootstrap PCG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Derive deterministically mixes a parent seed with a label, producing an
// independent child seed. Labels are hashed with FNV-1a before mixing so
// that human-readable component names can be used directly.
func Derive(seed uint64, label string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return splitmix64(seed ^ h)
}

// DeriveN mixes a parent seed with an integer index (for per-user,
// per-day, per-entity streams).
func DeriveN(seed uint64, n uint64) uint64 {
	return splitmix64(seed ^ bits.RotateLeft64(n, 32) ^ 0xd6e8feb86659fd93)
}

// Source is a PCG-XSH-RR 64/32-based generator (O'Neill) extended to 64-bit
// output by pairing two draws. The zero Source is valid and behaves as if
// seeded with 0.
type Source struct {
	state uint64
	inc   uint64
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the generator to a state derived from seed.
func (s *Source) Seed(seed uint64) {
	s.state = splitmix64(seed)
	s.inc = splitmix64(seed+0x632be59bd9b4e019) | 1
	s.next32()
}

func (s *Source) next32() uint32 {
	old := s.state
	s.state = old*6364136223846793005 + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return bits.RotateLeft32(xorshifted, -int(rot))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 {
	return uint64(s.next32())<<32 | uint64(s.next32())
}

// Uint32 returns a uniformly distributed 32-bit value.
func (s *Source) Uint32() uint32 { return s.next32() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Rejection sampling on the top bits: unbiased for all n.
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// NormFloat64 returns a standard normal variate (polar Marsaglia method).
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * sqrt(-2*ln(q)/q)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -ln(u)
		}
	}
}

// Poisson returns a Poisson variate with the given mean, using inversion
// for small means and the normal approximation above 64 (adequate for
// workload generation; the distribution tail beyond that point is not
// load-bearing for any experiment).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := int(mean + sqrt(mean)*s.NormFloat64() + 0.5)
		if v < 0 {
			return 0
		}
		return v
	}
	l := exp(-mean)
	k, p := 0, 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns a geometric variate: the number of failures before the
// first success with success probability p in (0, 1]. For p >= 1 it
// returns 0.
func (s *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with non-positive p")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return int(ln(u) / ln(1-p))
}

// Zipf returns a value in [0, n) with probability proportional to
// 1/(rank+1)^alpha, via rejection-free inverse-CDF on a precomputed table
// is avoided: this uses simple rejection with the standard envelope and is
// intended for modest n. For repeated heavy use, build a Zipf table.
func (s *Source) Zipf(n int, alpha float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-transform on the harmonic CDF computed incrementally.
	// For simulation-sized n (≤ a few thousand) this is fast enough and
	// exactly distributed.
	target := s.Float64() * harmonic(n, alpha)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / pow(float64(i+1), alpha)
		if sum >= target {
			return i
		}
	}
	return n - 1
}

// LogNormal returns exp(mu + sigma*Z).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return exp(mu + sigma*s.NormFloat64())
}

// Pareto returns a Pareto variate with scale xm and shape alpha:
// xm / U^(1/alpha). Heavy-tailed; used for outlier populations.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / pow(u, 1/alpha)
}

// WeightedChoice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Zero and negative weights are treated as 0.
// If all weights are non-positive it returns 0.
func (s *Source) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	target := s.Float64() * total
	sum := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		sum += w
		if sum >= target {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the first n indices using swap, Fisher-Yates.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

func harmonic(n int, alpha float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / pow(float64(i), alpha)
	}
	return sum
}
