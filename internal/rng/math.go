package rng

import "math"

// Thin wrappers keep the distribution code readable without repeating the
// math package qualifier on every call.

func sqrt(x float64) float64   { return math.Sqrt(x) }
func ln(x float64) float64     { return math.Log(x) }
func exp(x float64) float64    { return math.Exp(x) }
func pow(x, y float64) float64 { return math.Pow(x, y) }
