package trie

import (
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/rng"
)

func TestRollupBasic(t *testing.T) {
	src := New[uint64]()
	// Three /128 counts inside one /64, one in another /64 of the same
	// /48.
	base := addr("2001:db8:0:1::")
	src.Set(netaddr.PrefixFrom(base.WithIID(1), 128), 2)
	src.Set(netaddr.PrefixFrom(base.WithIID(2), 128), 3)
	src.Set(netaddr.PrefixFrom(base.WithIID(3), 128), 5)
	src.Set(netaddr.PrefixFrom(addr("2001:db8:0:2::9"), 128), 7)

	c := Rollup(src, 48, 64)
	if got := c.Count(pfx("2001:db8:0:1::/64")); got != 10 {
		t.Fatalf("/64 rollup = %d, want 10", got)
	}
	if got := c.Count(pfx("2001:db8:0:2::/64")); got != 7 {
		t.Fatalf("second /64 = %d", got)
	}
	if got := c.Count(pfx("2001:db8::/48")); got != 17 {
		t.Fatalf("/48 rollup = %d, want 17", got)
	}
	if c.LenAt(64) != 2 || c.LenAt(48) != 1 {
		t.Fatalf("prefix counts: /64=%d /48=%d", c.LenAt(64), c.LenAt(48))
	}
}

func TestRollupSkipsShorterEntries(t *testing.T) {
	src := New[uint64]()
	src.Set(pfx("2001:db8::/32"), 100) // shorter than the target length
	src.Set(netaddr.PrefixFrom(addr("2001:db8::1"), 128), 1)
	c := Rollup(src, 64)
	if got := c.Count(pfx("2001:db8::/64")); got != 1 {
		t.Fatalf("/64 = %d: /32 entry must not contribute to /64", got)
	}
}

func TestRollupEntryAtTargetLength(t *testing.T) {
	src := New[uint64]()
	src.Set(pfx("2001:db8:0:1::/64"), 4)
	src.Set(netaddr.PrefixFrom(addr("2001:db8:0:1::7"), 128), 1)
	c := Rollup(src, 64)
	if got := c.Count(pfx("2001:db8:0:1::/64")); got != 5 {
		t.Fatalf("/64 = %d, want 5 (own entry + child)", got)
	}
}

// Property: rolling up per-/128 counts agrees with Counter fed the same
// addresses directly.
func TestRollupMatchesCounter(t *testing.T) {
	src := rng.New(55)
	perAddr := New[uint64]()
	direct := NewCounter(48, 64, 96)
	for i := 0; i < 5000; i++ {
		a := netaddr.AddrFrom6(0x2400<<48|uint64(src.Intn(64)), uint64(src.Intn(4096)))
		delta := uint64(1 + src.Intn(3))
		perAddr.Update(netaddr.PrefixFrom(a, 128), func(v *uint64) { *v += delta })
		direct.Add(a, delta)
	}
	rolled := Rollup(perAddr, 48, 64, 96)
	for _, l := range []int{48, 64, 96} {
		if rolled.LenAt(l) != direct.LenAt(l) {
			t.Fatalf("/%d prefix counts differ: %d vs %d", l, rolled.LenAt(l), direct.LenAt(l))
		}
		direct.AtLength(l, func(p netaddr.Prefix, want uint64) {
			if got := rolled.Count(p); got != want {
				t.Fatalf("%s: rollup %d vs direct %d", p, got, want)
			}
		})
	}
}

func BenchmarkRollup(b *testing.B) {
	src := rng.New(1)
	perAddr := New[uint64]()
	for i := 0; i < 20000; i++ {
		a := netaddr.AddrFrom6(0x2400<<48|src.Uint64()%1024, src.Uint64())
		perAddr.Update(netaddr.PrefixFrom(a, 128), func(v *uint64) { *v++ })
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Rollup(perAddr, 48, 64)
	}
}
