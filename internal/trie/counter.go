package trie

import "userv6/internal/netaddr"

// Counter counts occurrences per prefix across a fixed set of prefix
// lengths simultaneously. This is the primitive behind the paper's
// "users per prefix, for varying prefix sizes" analyses (Figures 9-10):
// each observed address is attributed to its enclosing prefix at every
// configured length in one pass.
//
// Counter deduplicates nothing by itself — pair it with a per-(prefix,
// entity) seen-set or a sketch.Distinct when distinct counting is needed.
type Counter struct {
	lengths []int
	tries   []*Trie[uint64]
}

// NewCounter returns a Counter aggregating at the given prefix lengths.
// Lengths apply to whichever family an added address belongs to; lengths
// above a family's bit width are skipped for that family.
func NewCounter(lengths ...int) *Counter {
	c := &Counter{lengths: append([]int(nil), lengths...)}
	c.tries = make([]*Trie[uint64], len(c.lengths))
	for i := range c.tries {
		c.tries[i] = New[uint64]()
	}
	return c
}

// Lengths returns the configured prefix lengths.
func (c *Counter) Lengths() []int { return append([]int(nil), c.lengths...) }

// Add increments the counter for a's enclosing prefix at every configured
// length valid for a's family, by delta.
func (c *Counter) Add(a netaddr.Addr, delta uint64) {
	if !a.IsValid() {
		return
	}
	max := a.Bits()
	for i, l := range c.lengths {
		if l > max {
			continue
		}
		c.tries[i].Update(netaddr.PrefixFrom(a, l), func(v *uint64) { *v += delta })
	}
}

// Merge folds other's counts into c by summing per-prefix totals at
// every length the two counters share (lengths only one side configured
// are skipped on that side). Addition commutes, so the result is exact
// for any split of the Add stream across counters — the fold step for
// analyzers that shard address attribution across workers.
func (c *Counter) Merge(other *Counter) {
	if other == nil {
		return
	}
	for i, l := range other.lengths {
		j := indexOfLength(c, l)
		if j < 0 {
			continue
		}
		c.tries[j].Merge(other.tries[i], func(dst *uint64, src uint64) { *dst += src })
	}
}

// Count returns the accumulated count for prefix p, which must use one of
// the configured lengths (otherwise 0).
func (c *Counter) Count(p netaddr.Prefix) uint64 {
	for i, l := range c.lengths {
		if l == p.Bits() {
			v, _ := c.tries[i].Get(p)
			return v
		}
	}
	return 0
}

// AtLength calls fn for every prefix of the given length with a nonzero
// count. It is a no-op if the length is not configured.
func (c *Counter) AtLength(length int, fn func(netaddr.Prefix, uint64)) {
	for i, l := range c.lengths {
		if l != length {
			continue
		}
		c.tries[i].Walk(func(p netaddr.Prefix, v uint64) bool {
			fn(p, v)
			return true
		})
		return
	}
}

// LenAt returns the number of distinct prefixes seen at the given length.
func (c *Counter) LenAt(length int) int {
	for i, l := range c.lengths {
		if l == length {
			return c.tries[i].Len()
		}
	}
	return 0
}
