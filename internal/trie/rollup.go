package trie

import "userv6/internal/netaddr"

// Rollup computes, from a trie of per-prefix counts, the aggregate count
// of every ancestor prefix at a set of shorter lengths — the classic
// prefix-aggregation operation ("users per /64 from users per /128")
// done in one walk instead of re-scanning the raw stream per length.
//
// Counts at a target length are the sums of all stored counts at longer
// (more specific) prefixes beneath it; a stored count exactly at a
// target length contributes to that length too.
func Rollup(src *Trie[uint64], lengths ...int) *Counter {
	out := NewCounter(lengths...)
	src.Walk(func(p netaddr.Prefix, v uint64) bool {
		for _, l := range lengths {
			if l > p.Bits() {
				continue
			}
			out.tries[indexOfLength(out, l)].Update(
				netaddr.PrefixFrom(p.Addr(), l),
				func(c *uint64) { *c += v },
			)
		}
		return true
	})
	return out
}

// indexOfLength locates a configured length's trie index.
func indexOfLength(c *Counter, length int) int {
	for i, l := range c.lengths {
		if l == length {
			return i
		}
	}
	return -1
}
