package trie

import (
	"sort"
	"testing"
	"testing/quick"

	"userv6/internal/netaddr"
	"userv6/internal/rng"
)

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }
func addr(s string) netaddr.Addr  { return netaddr.MustParseAddr(s) }

func TestSetGet(t *testing.T) {
	tr := New[string]()
	tr.Set(pfx("2001:db8::/32"), "a")
	tr.Set(pfx("2001:db8::/48"), "b")
	tr.Set(pfx("10.0.0.0/8"), "c")
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, c := range []struct {
		p    string
		want string
		ok   bool
	}{
		{"2001:db8::/32", "a", true},
		{"2001:db8::/48", "b", true},
		{"10.0.0.0/8", "c", true},
		{"2001:db8::/40", "", false},
		{"10.0.0.0/9", "", false},
	} {
		got, ok := tr.Get(pfx(c.p))
		if ok != c.ok || got != c.want {
			t.Errorf("Get(%s) = %q, %v; want %q, %v", c.p, got, ok, c.want, c.ok)
		}
	}
}

func TestSetReplaces(t *testing.T) {
	tr := New[int]()
	tr.Set(pfx("::/0"), 1)
	tr.Set(pfx("::/0"), 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if v, _ := tr.Get(pfx("::/0")); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
}

func TestZeroTrieUsable(t *testing.T) {
	var tr Trie[int]
	if _, ok := tr.Get(pfx("::/0")); ok {
		t.Fatal("zero trie should be empty")
	}
	tr.Set(pfx("1.0.0.0/8"), 7)
	if v, ok := tr.Get(pfx("1.0.0.0/8")); !ok || v != 7 {
		t.Fatal("set on zero trie failed")
	}
}

func TestUpdateCounts(t *testing.T) {
	tr := New[int]()
	p := pfx("2001:db8::/64")
	for i := 0; i < 5; i++ {
		tr.Update(p, func(v *int) { *v++ })
	}
	if v, _ := tr.Get(p); v != 5 {
		t.Fatalf("count = %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := New[int]()
	tr.Set(pfx("2001:db8::/32"), 1)
	tr.Set(pfx("2001:db8::/64"), 2)
	if !tr.Delete(pfx("2001:db8::/32")) {
		t.Fatal("delete existing returned false")
	}
	if tr.Delete(pfx("2001:db8::/32")) {
		t.Fatal("double delete returned true")
	}
	if tr.Delete(pfx("3fff::/20")) {
		t.Fatal("delete absent returned true")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, ok := tr.Get(pfx("2001:db8::/64")); !ok {
		t.Fatal("sibling lost after delete")
	}
	tr.Compact()
	if _, ok := tr.Get(pfx("2001:db8::/64")); !ok {
		t.Fatal("entry lost after compact")
	}
}

func TestLookupLongestMatch(t *testing.T) {
	tr := New[string]()
	tr.Set(pfx("::/0"), "default")
	tr.Set(pfx("2001:db8::/32"), "net")
	tr.Set(pfx("2001:db8:0:1::/64"), "subnet")
	cases := []struct {
		a          string
		wantPfx    string
		wantV      string
		wantExists bool
	}{
		{"2001:db8:0:1::5", "2001:db8:0:1::/64", "subnet", true},
		{"2001:db8:1::5", "2001:db8::/32", "net", true},
		{"3fff::1", "::/0", "default", true},
	}
	for _, c := range cases {
		p, v, ok := tr.Lookup(addr(c.a))
		if ok != c.wantExists || v != c.wantV || p.String() != c.wantPfx {
			t.Errorf("Lookup(%s) = %s, %q, %v", c.a, p, v, ok)
		}
	}
	// No IPv4 entries: IPv4 lookup misses even with an IPv6 default.
	if _, _, ok := tr.Lookup(addr("1.2.3.4")); ok {
		t.Fatal("cross-family lookup matched")
	}
	if _, _, ok := tr.Lookup(netaddr.Addr{}); ok {
		t.Fatal("invalid addr matched")
	}
}

func TestLookupNoDefault(t *testing.T) {
	tr := New[int]()
	tr.Set(pfx("2001:db8::/32"), 1)
	if _, _, ok := tr.Lookup(addr("3fff::1")); ok {
		t.Fatal("lookup outside any prefix matched")
	}
}

func TestWalkOrderAndCoverage(t *testing.T) {
	tr := New[int]()
	inputs := []string{"10.0.0.0/8", "9.0.0.0/8", "2001:db8::/48", "::/0", "2001:db8::/32", "0.0.0.0/0"}
	for i, s := range inputs {
		tr.Set(pfx(s), i)
	}
	var got []string
	tr.Walk(func(p netaddr.Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"0.0.0.0/0", "9.0.0.0/8", "10.0.0.0/8", "::/0", "2001:db8::/32", "2001:db8::/48"}
	if len(got) != len(want) {
		t.Fatalf("walked %d prefixes, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order %v, want %v", got, want)
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 10; i++ {
		tr.Set(netaddr.PrefixFrom(netaddr.AddrFrom4(uint32(i)<<24), 8), i)
	}
	n := 0
	tr.Walk(func(netaddr.Prefix, int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

// Property: a trie agrees with a map for random inserts/deletes/gets.
func TestTrieMatchesMapProperty(t *testing.T) {
	src := rng.New(12345)
	tr := New[uint64]()
	ref := make(map[netaddr.Prefix]uint64)
	randPfx := func() netaddr.Prefix {
		if src.Bool(0.3) {
			return netaddr.PrefixFrom(netaddr.AddrFrom4(src.Uint32()), src.Intn(33))
		}
		return netaddr.PrefixFrom(netaddr.AddrFrom6(src.Uint64(), src.Uint64()), src.Intn(129))
	}
	for i := 0; i < 20000; i++ {
		p := randPfx()
		switch src.Intn(3) {
		case 0:
			v := src.Uint64()
			tr.Set(p, v)
			ref[p] = v
		case 1:
			delete(ref, p)
			tr.Delete(p)
		case 2:
			got, ok := tr.Get(p)
			want, wok := ref[p]
			if ok != wok || got != want {
				t.Fatalf("iter %d: Get(%s) = %d,%v want %d,%v", i, p, got, ok, want, wok)
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("iter %d: Len = %d, ref = %d", i, tr.Len(), len(ref))
		}
	}
	// Final full verification via Walk.
	walked := make(map[netaddr.Prefix]uint64)
	tr.Walk(func(p netaddr.Prefix, v uint64) bool {
		walked[p] = v
		return true
	})
	if len(walked) != len(ref) {
		t.Fatalf("walk found %d, ref %d", len(walked), len(ref))
	}
	for p, v := range ref {
		if walked[p] != v {
			t.Fatalf("walk value mismatch at %s", p)
		}
	}
}

// Property: Lookup result equals brute-force longest match.
func TestLookupMatchesBruteForceProperty(t *testing.T) {
	src := rng.New(777)
	tr := New[int]()
	var stored []netaddr.Prefix
	for i := 0; i < 300; i++ {
		p := netaddr.PrefixFrom(netaddr.AddrFrom6(src.Uint64()&0xff00000000000000, src.Uint64()), src.Intn(129))
		tr.Set(p, i)
		stored = append(stored, p)
	}
	f := func(hi, lo uint64) bool {
		a := netaddr.AddrFrom6(hi&0xff00000000000000|hi>>32, lo)
		best := -1
		for _, p := range stored {
			if p.Contains(a) && p.Bits() > best {
				best = p.Bits()
			}
		}
		p, _, ok := tr.Lookup(a)
		if best < 0 {
			return !ok
		}
		return ok && p.Bits() == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterMultiLength(t *testing.T) {
	c := NewCounter(32, 64, 128)
	base := addr("2001:db8:1:1::")
	// 3 addresses in the same /64, 1 in a different /64 same /32.
	c.Add(base.WithIID(1), 1)
	c.Add(base.WithIID(2), 1)
	c.Add(base.WithIID(3), 1)
	c.Add(addr("2001:db8:9:9::1"), 1)
	if got := c.Count(pfx("2001:db8::/32")); got != 4 {
		t.Fatalf("/32 count = %d, want 4", got)
	}
	if got := c.Count(pfx("2001:db8:1:1::/64")); got != 3 {
		t.Fatalf("/64 count = %d, want 3", got)
	}
	if got := c.Count(netaddr.PrefixFrom(base.WithIID(1), 128)); got != 1 {
		t.Fatalf("/128 count = %d, want 1", got)
	}
	if got := c.Count(pfx("2001:db8::/48")); got != 0 {
		t.Fatalf("unconfigured length count = %d, want 0", got)
	}
	if c.LenAt(64) != 2 {
		t.Fatalf("LenAt(64) = %d, want 2", c.LenAt(64))
	}
	if c.LenAt(48) != 0 {
		t.Fatalf("LenAt(48) = %d, want 0", c.LenAt(48))
	}
}

func TestCounterSkipsOverlongForV4(t *testing.T) {
	c := NewCounter(24, 64)
	c.Add(addr("10.1.2.3"), 1)
	if got := c.Count(pfx("10.1.2.0/24")); got != 1 {
		t.Fatalf("/24 count = %d", got)
	}
	if c.LenAt(64) != 0 {
		t.Fatal("IPv4 address should not appear at /64")
	}
	c.Add(netaddr.Addr{}, 1) // no-op
	if c.LenAt(24) != 1 {
		t.Fatal("invalid addr affected counter")
	}
}

func TestCounterAtLength(t *testing.T) {
	c := NewCounter(64)
	c.Add(addr("2001:db8::1"), 2)
	c.Add(addr("2001:db8:0:1::1"), 3)
	sum := uint64(0)
	var ps []string
	c.AtLength(64, func(p netaddr.Prefix, v uint64) {
		sum += v
		ps = append(ps, p.String())
	})
	if sum != 5 || len(ps) != 2 {
		t.Fatalf("AtLength sum=%d prefixes=%v", sum, ps)
	}
	sort.Strings(ps)
	if ps[0] != "2001:db8:0:1::/64" || ps[1] != "2001:db8::/64" {
		t.Fatalf("prefixes = %v", ps)
	}
	c.AtLength(48, func(netaddr.Prefix, uint64) { t.Fatal("unconfigured length visited") })
	if got := c.Lengths(); len(got) != 1 || got[0] != 64 {
		t.Fatalf("Lengths = %v", got)
	}
}

func BenchmarkTrieUpdate(b *testing.B) {
	tr := New[uint64]()
	src := rng.New(1)
	addrs := make([]netaddr.Prefix, 4096)
	for i := range addrs {
		addrs[i] = netaddr.PrefixFrom(netaddr.AddrFrom6(src.Uint64(), src.Uint64()), 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Update(addrs[i%len(addrs)], func(v *uint64) { *v++ })
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	tr := New[int]()
	src := rng.New(2)
	for i := 0; i < 10000; i++ {
		tr.Set(netaddr.PrefixFrom(netaddr.AddrFrom6(src.Uint64(), src.Uint64()), 48), i)
	}
	probe := netaddr.AddrFrom6(src.Uint64(), src.Uint64())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(probe)
	}
}
