// Package trie implements a binary (bit-at-a-time) prefix trie over IP
// addresses and prefixes, the aggregation substrate for the IP-centric
// analyses: counting distinct entities per prefix at every length,
// longest-prefix match for policy lookup, and subtree walks for reporting.
//
// A Trie is generic over its node payload. The zero Trie is empty and
// ready to use. Tries are not safe for concurrent mutation; analyzers
// shard by family and merge.
package trie

import (
	"fmt"

	"userv6/internal/netaddr"
)

// node is a binary trie node. Payloads live only on nodes that were
// explicitly inserted (term == true); internal nodes exist solely for
// routing. Children are indexed by the next address bit.
type node[V any] struct {
	child [2]*node[V]
	value V
	term  bool
}

// Trie maps prefixes to values of type V. Distinct prefix lengths of the
// same address are distinct keys, as in a routing table.
type Trie[V any] struct {
	root4, root6 *node[V]
	len          int
}

// New returns an empty trie. The zero value is also usable.
func New[V any]() *Trie[V] { return &Trie[V]{} }

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.len }

func (t *Trie[V]) rootFor(f netaddr.Family, create bool) **node[V] {
	switch f {
	case netaddr.IPv4:
		if t.root4 == nil && create {
			t.root4 = &node[V]{}
		}
		return &t.root4
	case netaddr.IPv6:
		if t.root6 == nil && create {
			t.root6 = &node[V]{}
		}
		return &t.root6
	default:
		return nil
	}
}

// Set stores value at prefix p, replacing any existing value.
func (t *Trie[V]) Set(p netaddr.Prefix, value V) {
	if !p.IsValid() {
		return
	}
	rp := t.rootFor(p.Family(), true)
	n := *rp
	a := p.Addr()
	for i := 0; i < p.Bits(); i++ {
		b := a.Bit(i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	if !n.term {
		t.len++
	}
	n.term = true
	n.value = value
}

// Get returns the value stored exactly at p.
func (t *Trie[V]) Get(p netaddr.Prefix) (V, bool) {
	var zero V
	if !p.IsValid() {
		return zero, false
	}
	rp := t.rootFor(p.Family(), false)
	if rp == nil || *rp == nil {
		return zero, false
	}
	n := *rp
	a := p.Addr()
	for i := 0; i < p.Bits(); i++ {
		n = n.child[a.Bit(i)]
		if n == nil {
			return zero, false
		}
	}
	if !n.term {
		return zero, false
	}
	return n.value, true
}

// Update applies fn to the value at p, inserting the zero value first if p
// is absent. It is the workhorse for counter aggregation:
//
//	t.Update(p, func(c *int) { *c++ })
func (t *Trie[V]) Update(p netaddr.Prefix, fn func(*V)) {
	if !p.IsValid() {
		return
	}
	rp := t.rootFor(p.Family(), true)
	n := *rp
	a := p.Addr()
	for i := 0; i < p.Bits(); i++ {
		b := a.Bit(i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	if !n.term {
		n.term = true
		t.len++
	}
	fn(&n.value)
}

// Delete removes the value at p, reporting whether it was present.
// Emptied branches are left in place; call Compact to reclaim them after
// bulk deletions.
func (t *Trie[V]) Delete(p netaddr.Prefix) bool {
	if !p.IsValid() {
		return false
	}
	rp := t.rootFor(p.Family(), false)
	if rp == nil || *rp == nil {
		return false
	}
	n := *rp
	a := p.Addr()
	for i := 0; i < p.Bits(); i++ {
		n = n.child[a.Bit(i)]
		if n == nil {
			return false
		}
	}
	if !n.term {
		return false
	}
	n.term = false
	var zero V
	n.value = zero
	t.len--
	return true
}

// Merge folds other's stored prefixes into t, calling combine(dst, src)
// for every prefix in other: dst points at t's value for that prefix
// (the zero value if t had no entry), src is other's value. For
// commutative, associative combines (sums, unions, maxima) the result
// is exact for any split of the insertions, which is what lets sharded
// analyzers build private tries and fold them afterwards. The merge is
// structural — one simultaneous walk of both tries, no per-prefix
// re-descent — and never aliases other's nodes, so other remains valid
// and independently mutable.
func (t *Trie[V]) Merge(other *Trie[V], combine func(dst *V, src V)) {
	if other == nil {
		return
	}
	t.root4 = mergeNode(t, t.root4, other.root4, combine)
	t.root6 = mergeNode(t, t.root6, other.root6, combine)
}

func mergeNode[V any](t *Trie[V], dst, src *node[V], combine func(*V, V)) *node[V] {
	if src == nil {
		return dst
	}
	if dst == nil {
		dst = &node[V]{}
	}
	if src.term {
		if !dst.term {
			dst.term = true
			t.len++
		}
		combine(&dst.value, src.value)
	}
	dst.child[0] = mergeNode(t, dst.child[0], src.child[0], combine)
	dst.child[1] = mergeNode(t, dst.child[1], src.child[1], combine)
	return dst
}

// Compact prunes branches that contain no stored prefixes.
func (t *Trie[V]) Compact() {
	t.root4 = compact(t.root4)
	t.root6 = compact(t.root6)
}

func compact[V any](n *node[V]) *node[V] {
	if n == nil {
		return nil
	}
	n.child[0] = compact(n.child[0])
	n.child[1] = compact(n.child[1])
	if !n.term && n.child[0] == nil && n.child[1] == nil {
		return nil
	}
	return n
}

// Lookup returns the value of the longest stored prefix containing a,
// its prefix, and whether any match exists.
func (t *Trie[V]) Lookup(a netaddr.Addr) (netaddr.Prefix, V, bool) {
	var (
		zero  V
		bestV V
		bestL = -1
	)
	if !a.IsValid() {
		return netaddr.Prefix{}, zero, false
	}
	rp := t.rootFor(a.Family(), false)
	if rp == nil || *rp == nil {
		return netaddr.Prefix{}, zero, false
	}
	n := *rp
	if n.term {
		bestV, bestL = n.value, 0
	}
	bits := a.Bits()
	for i := 0; i < bits; i++ {
		n = n.child[a.Bit(i)]
		if n == nil {
			break
		}
		if n.term {
			bestV, bestL = n.value, i+1
		}
	}
	if bestL < 0 {
		return netaddr.Prefix{}, zero, false
	}
	return netaddr.PrefixFrom(a, bestL), bestV, true
}

// Walk visits every stored prefix in address order (IPv4 first, then
// IPv6), calling fn with the prefix and its value. Returning false from
// fn stops the walk early.
func (t *Trie[V]) Walk(fn func(netaddr.Prefix, V) bool) {
	var w walker[V]
	w.fn = fn
	if t.root4 != nil {
		w.walk(t.root4, netaddr.MustParseAddr("0.0.0.0"), 0)
	}
	if !w.stopped && t.root6 != nil {
		w.walk(t.root6, netaddr.MustParseAddr("::"), 0)
	}
}

type walker[V any] struct {
	fn      func(netaddr.Prefix, V) bool
	stopped bool
}

func (w *walker[V]) walk(n *node[V], base netaddr.Addr, depth int) {
	if w.stopped {
		return
	}
	if n.term {
		if !w.fn(netaddr.PrefixFrom(base, depth), n.value) {
			w.stopped = true
			return
		}
	}
	if n.child[0] != nil {
		w.walk(n.child[0], base, depth+1)
	}
	if n.child[1] != nil {
		w.walk(n.child[1], setBit(base, depth), depth+1)
	}
}

// setBit returns base with bit i (0 = most significant) set.
func setBit(a netaddr.Addr, i int) netaddr.Addr {
	hi, lo := a.Words()
	if a.Is4() {
		return netaddr.AddrFrom4(uint32(lo) | 1<<(31-i))
	}
	if i < 64 {
		hi |= 1 << (63 - i)
	} else {
		lo |= 1 << (127 - i)
	}
	return netaddr.AddrFrom6(hi, lo)
}

// String summarizes the trie for debugging.
func (t *Trie[V]) String() string {
	return fmt.Sprintf("trie.Trie{len=%d}", t.len)
}
