package trie

import (
	"reflect"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/rng"
)

func sumU64(dst *uint64, src uint64) { *dst += src }

// collect walks a trie into a prefix→value map for equality checks.
func collect(tr *Trie[uint64]) map[netaddr.Prefix]uint64 {
	out := make(map[netaddr.Prefix]uint64)
	tr.Walk(func(p netaddr.Prefix, v uint64) bool {
		out[p] = v
		return true
	})
	return out
}

func TestTrieMergeBasic(t *testing.T) {
	a, b := New[uint64](), New[uint64]()
	a.Set(pfx("2001:db8::/32"), 1)
	a.Set(pfx("10.0.0.0/8"), 2)
	b.Set(pfx("2001:db8::/32"), 10) // overlaps a
	b.Set(pfx("2001:db8::/48"), 20) // new, deeper on a shared path
	b.Set(pfx("192.168.0.0/16"), 30)

	a.Merge(b, sumU64)
	if a.Len() != 4 {
		t.Fatalf("Len = %d, want 4", a.Len())
	}
	want := map[netaddr.Prefix]uint64{
		pfx("2001:db8::/32"):  11,
		pfx("2001:db8::/48"):  20,
		pfx("10.0.0.0/8"):     2,
		pfx("192.168.0.0/16"): 30,
	}
	if got := collect(a); !reflect.DeepEqual(got, want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
	// b must be untouched and independently mutable.
	if b.Len() != 3 {
		t.Fatalf("source Len = %d after merge, want 3", b.Len())
	}
	b.Update(pfx("2001:db8::/32"), func(v *uint64) { *v = 999 })
	if v, _ := a.Get(pfx("2001:db8::/32")); v != 11 {
		t.Fatalf("mutating source changed merged trie: %d", v)
	}
}

func TestTrieMergeEmptyAndNil(t *testing.T) {
	a := New[uint64]()
	a.Set(pfx("::/0"), 5)
	a.Merge(nil, sumU64)
	a.Merge(New[uint64](), sumU64)
	if a.Len() != 1 {
		t.Fatalf("Len = %d after no-op merges, want 1", a.Len())
	}
	// Merging into an empty trie copies everything.
	c := New[uint64]()
	c.Merge(a, sumU64)
	if !reflect.DeepEqual(collect(c), collect(a)) {
		t.Fatal("merge into empty trie differs from source")
	}
}

// Splitting a random insertion stream across two tries and merging must
// equal inserting the whole stream into one trie.
func TestTrieMergeMatchesSequential(t *testing.T) {
	src := rng.New(99)
	randPfx := func() netaddr.Prefix {
		if src.Uint64()%4 == 0 {
			return netaddr.PrefixFrom(netaddr.AddrFrom4(uint32(src.Uint64())), int(src.Uint64()%33))
		}
		return netaddr.PrefixFrom(
			netaddr.AddrFrom6(0x2001_0db8_0000_0000|src.Uint64()%1024, src.Uint64()%64),
			int(src.Uint64()%129))
	}
	want := New[uint64]()
	a, b := New[uint64](), New[uint64]()
	for i := 0; i < 4000; i++ {
		p, d := randPfx(), src.Uint64()%100
		want.Update(p, func(v *uint64) { *v += d })
		half := a
		if i%2 == 1 {
			half = b
		}
		half.Update(p, func(v *uint64) { *v += d })
	}
	a.Merge(b, sumU64)
	if a.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", a.Len(), want.Len())
	}
	if !reflect.DeepEqual(collect(a), collect(want)) {
		t.Fatal("merged trie differs from sequential insertion")
	}
}

func TestCounterMerge(t *testing.T) {
	src := rng.New(7)
	randAddr := func() netaddr.Addr {
		if src.Uint64()%5 == 0 {
			return netaddr.AddrFrom4(0x0a00_0000 | uint32(src.Uint64()%4096))
		}
		return netaddr.AddrFrom6(0x2001_0db8_0000_0000|src.Uint64()%256, src.Uint64()%16)
	}
	want := NewCounter(32, 64, 128)
	a, b := NewCounter(32, 64, 128), NewCounter(32, 64, 128)
	for i := 0; i < 3000; i++ {
		ad := randAddr()
		want.Add(ad, 1)
		if i%3 == 0 {
			a.Add(ad, 1)
		} else {
			b.Add(ad, 1)
		}
	}
	a.Merge(b)
	for _, l := range []int{32, 64, 128} {
		if a.LenAt(l) != want.LenAt(l) {
			t.Fatalf("LenAt(%d) = %d, want %d", l, a.LenAt(l), want.LenAt(l))
		}
		want.AtLength(l, func(p netaddr.Prefix, v uint64) {
			if got := a.Count(p); got != v {
				t.Fatalf("Count(%v) = %d, want %d", p, got, v)
			}
		})
	}
}

// Lengths configured on only one side are skipped, not corrupted.
func TestCounterMergeLengthMismatch(t *testing.T) {
	a := NewCounter(64)
	b := NewCounter(64, 48)
	addr6 := netaddr.AddrFrom6(0x2001_0db8_0000_0000, 1)
	a.Add(addr6, 1)
	b.Add(addr6, 2)
	a.Merge(b)
	if got := a.Count(netaddr.PrefixFrom(addr6, 64)); got != 3 {
		t.Fatalf("Count at /64 = %d, want 3", got)
	}
	if a.LenAt(48) != 0 {
		t.Fatalf("unconfigured length leaked into counter: LenAt(48) = %d", a.LenAt(48))
	}
}

func TestCounterMergeNil(t *testing.T) {
	a := NewCounter(64)
	a.Add(netaddr.AddrFrom6(0x2001_0db8_0000_0000, 1), 4)
	a.Merge(nil)
	if a.LenAt(64) != 1 {
		t.Fatal("nil merge changed counter")
	}
}
