package faultio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeThrough(t *testing.T, fsys FS, path string, chunks ...[]byte) error {
	t.Helper()
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	for _, c := range chunks {
		if _, err := f.Write(c); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// TestOSPassthrough: the OS filesystem behaves like the os package.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a.bin")
	if err := writeThrough(t, OS, p, []byte("hello "), []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err := OS.ReadFile(p)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	q := filepath.Join(dir, "b.bin")
	if err := OS.Rename(p, q); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Stat(q); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove(q); err != nil {
		t.Fatal(err)
	}
}

// TestTransientErrBudget: an err failpoint fires for its budget, then
// the operation succeeds — the retryable shape.
func TestTransientErrBudget(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "part-0000.uv6")
	if err := os.WriteFile(p, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := New(OS, 1)
	if err := in.Arm("flaky@part-*.uv6:readfile:n=1:x=2:err"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := in.ReadFile(p); !errors.Is(err, ErrTransient) {
			t.Fatalf("read %d err = %v, want ErrTransient", i, err)
		}
	}
	if b, err := in.ReadFile(p); err != nil || string(b) != "data" {
		t.Fatalf("post-budget read = %q, %v", b, err)
	}
	if in.Hits("flaky") != 2 {
		t.Fatalf("hits = %d", in.Hits("flaky"))
	}
	// Other files are untouched.
	q := filepath.Join(dir, "other.txt")
	os.WriteFile(q, []byte("x"), 0o644)
	if _, err := in.ReadFile(q); err != nil {
		t.Fatalf("unmatched path injected: %v", err)
	}
}

// TestShortAndTornWrites: short writes half the buffer; torn writes a
// seeded-random prefix; both return ErrTransient and persist the
// prefix.
func TestShortAndTornWrites(t *testing.T) {
	for _, action := range []Action{ActionShort, ActionTorn} {
		t.Run(string(action), func(t *testing.T) {
			dir := t.TempDir()
			in := New(OS, 7)
			if err := in.ArmPoint(Failpoint{Path: "*.bin", Op: OpWrite, Action: action}); err != nil {
				t.Fatal(err)
			}
			p := filepath.Join(dir, "t.bin")
			f, err := in.Create(p)
			if err != nil {
				t.Fatal(err)
			}
			buf := bytes.Repeat([]byte{0xAB}, 100)
			n, err := f.Write(buf)
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("err = %v", err)
			}
			if action == ActionShort && n != 50 {
				t.Fatalf("short write persisted %d bytes, want 50", n)
			}
			if n < 0 || n >= 100 {
				t.Fatalf("torn write persisted %d bytes", n)
			}
			// The failpoint budget is spent: the retry goes through.
			if _, err := f.Write(buf[n:]); err != nil {
				t.Fatalf("retry write: %v", err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			got, _ := os.ReadFile(p)
			if !bytes.Equal(got, buf) {
				t.Fatalf("file holds %d bytes after retry, want 100", len(got))
			}
		})
	}
}

// TestCrashAtOffset: a crash failpoint tears the file at the exact
// byte and poisons every subsequent operation — renames and removes
// included, so temp files survive like they would a real crash.
func TestCrashAtOffset(t *testing.T) {
	dir := t.TempDir()
	in := New(OS, 3)
	if err := in.Arm("part-0000.uv6.tmp:write:off=150:crash"); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "part-0000.uv6.tmp")
	f, err := in.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	chunk := bytes.Repeat([]byte{0x11}, 100)
	if _, err := f.Write(chunk); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write(chunk) // crosses offset 150
	if !errors.Is(err, ErrCrash) || n != 50 {
		t.Fatalf("crash write: n=%d err=%v", n, err)
	}
	if !in.Crashed() {
		t.Fatal("injector not crashed")
	}
	if _, err := f.Write(chunk); !errors.Is(err, ErrCrash) {
		t.Fatal("write after crash succeeded")
	}
	if err := f.Sync(); !errors.Is(err, ErrCrash) {
		t.Fatal("sync after crash succeeded")
	}
	f.Close()
	if err := in.Rename(tmp, filepath.Join(dir, "part-0000.uv6")); !errors.Is(err, ErrCrash) {
		t.Fatal("rename after crash succeeded")
	}
	if err := in.Remove(tmp); !errors.Is(err, ErrCrash) {
		t.Fatal("remove after crash succeeded")
	}
	got, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 150 {
		t.Fatalf("crashed file holds %d bytes, want exactly 150", len(got))
	}
}

// TestProbabilisticDeterminism: p-triggered faults replay identically
// from the same seed.
func TestProbabilisticDeterminism(t *testing.T) {
	run := func(seed uint64) []bool {
		in := New(OS, seed)
		if err := in.Arm("*:readfile:p=0.3:x=-1:err"); err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		p := filepath.Join(dir, "f")
		os.WriteFile(p, []byte("x"), 0o644)
		out := make([]bool, 64)
		for i := range out {
			_, err := in.ReadFile(p)
			out[i] = err != nil
		}
		return out
	}
	a, b := run(42), run(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.3 fired %d/%d times", fired, len(a))
	}
}

// TestSpecErrors: malformed specs are rejected with the offending
// clause named.
func TestSpecErrors(t *testing.T) {
	bad := []string{
		"x.bin:write",              // no action
		"x.bin:teleport:err",       // unknown op
		"x.bin:write:explode",      // unknown action
		"x.bin:write:n=0:err",      // bad n
		"x.bin:write:q=3:err",      // unknown trigger
		"x.bin:write:p=1.5:err",    // bad probability
		"[:write:err",              // bad glob
		"x.bin:write:off=zero:err", // bad offset
	}
	for _, s := range bad {
		in := New(OS, 0)
		if err := in.Arm(s); err == nil {
			t.Fatalf("spec %q accepted", s)
		}
	}
	in := New(OS, 0)
	if err := in.Arm(" ; part-*.uv6:write:n=2:x=-1:short ; name@*.uv6m:rename:crash"); err != nil {
		t.Fatal(err)
	}
	if got := len(in.Points()); got != 2 {
		t.Fatalf("armed %d failpoints, want 2", got)
	}
}
