package faultio

// Failpoint spec parsing — the text form behind `userv6gen gen -faults`
// and the fault-injection test harness. See docs/FAULT_INJECTION.md.
//
// Grammar (';'-separated failpoints):
//
//	failpoint := [name '@'] glob ':' op (':' trigger)* ':' action
//	trigger   := 'n=' NUM   — arm at the NUM-th matching call (1-based)
//	           | 'x=' NUM   — fire NUM times once armed (-1 = forever)
//	           | 'off=' NUM — fire when a write crosses byte offset NUM
//	           | 'p=' FLOAT — fire each call with probability FLOAT
//	action    := 'err' | 'short' | 'torn' | 'crash'
//
// Examples:
//
//	part-0002.uv6.tmp:write:off=41232:crash
//	flaky@part-*.uv6:readfile:n=1:x=2:err
//	*.uv6m.tmp:create:n=2:crash

import (
	"fmt"
	"strconv"
	"strings"
)

// Arm parses a failpoint spec and arms every failpoint it describes.
func (in *Injector) Arm(spec string) error {
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		fp, err := ParseFailpoint(item)
		if err != nil {
			return err
		}
		if err := in.ArmPoint(fp); err != nil {
			return err
		}
	}
	return nil
}

// ParseFailpoint parses one failpoint clause of a spec.
func ParseFailpoint(item string) (Failpoint, error) {
	var fp Failpoint
	fields := strings.Split(item, ":")
	if len(fields) < 3 {
		return fp, fmt.Errorf("faultio: failpoint %q: want glob:op[:trigger...]:action", item)
	}
	glob := fields[0]
	if name, rest, ok := strings.Cut(glob, "@"); ok {
		fp.Name, glob = name, rest
	}
	fp.Path = glob
	fp.Op = Op(fields[1])
	fp.Action = Action(fields[len(fields)-1])
	fp.Offset = -1
	for _, trig := range fields[2 : len(fields)-1] {
		key, val, ok := strings.Cut(trig, "=")
		if !ok {
			return fp, fmt.Errorf("faultio: failpoint %q: trigger %q is not key=value", item, trig)
		}
		switch key {
		case "n":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return fp, fmt.Errorf("faultio: failpoint %q: bad n=%q", item, val)
			}
			fp.Nth = n
		case "x":
			n, err := strconv.Atoi(val)
			if err != nil || n == 0 {
				return fp, fmt.Errorf("faultio: failpoint %q: bad x=%q", item, val)
			}
			fp.Times = n
		case "off":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return fp, fmt.Errorf("faultio: failpoint %q: bad off=%q", item, val)
			}
			fp.Offset = n
		case "p":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p <= 0 || p > 1 {
				return fp, fmt.Errorf("faultio: failpoint %q: bad p=%q", item, val)
			}
			fp.P = p
		default:
			return fp, fmt.Errorf("faultio: failpoint %q: unknown trigger %q", item, key)
		}
	}
	return fp, nil
}
