// Package faultio is the filesystem seam the dataset layer does its
// I/O through, plus a deterministic fault injector over it.
//
// Production code writes through the FS interface (OS is the
// passthrough implementation); tests and the `userv6gen gen -faults`
// debug flag wrap it in an Injector armed with named failpoints that
// fire transient errors, short writes, torn writes, and crash-at-offset
// faults at exact, reproducible moments. Probabilistic triggers draw
// from internal/rng, so a fault campaign is replayable from its seed.
//
// The crash action models process death: the file write that trips it
// persists only the bytes preceding the crash offset, and every
// subsequent operation through the injector fails — buffered data is
// lost, finalize renames never happen, temp files are left behind.
// That is exactly the disk state a resumable pipeline must recover
// from, which is why the sharded-resume tests drive their truncation
// sweeps through this package rather than editing files by hand.
package faultio

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"userv6/internal/rng"
)

// File is the handle interface dataset writers and readers use;
// *os.File implements it.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	io.Closer
	Sync() error
}

// FS is the filesystem surface the dataset layer needs. OS passes
// through to the os package; Injector wraps any FS with failpoints.
type FS interface {
	Create(name string) (File, error)
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (fs.FileInfo, error)
	MkdirAll(name string, perm os.FileMode) error
}

type osFS struct{}

func (osFS) Create(name string) (File, error)             { return os.Create(name) }
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }

// OS is the passthrough filesystem.
var OS FS = osFS{}

// Op names an instrumented filesystem operation.
type Op string

const (
	OpCreate   Op = "create"
	OpOpen     Op = "open"
	OpReadFile Op = "readfile"
	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpWriteAt  Op = "writeat"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
)

var validOps = map[Op]bool{
	OpCreate: true, OpOpen: true, OpReadFile: true, OpRead: true,
	OpWrite: true, OpWriteAt: true, OpSync: true, OpClose: true,
	OpRename: true, OpRemove: true,
}

// Action is what an armed failpoint does when it fires.
type Action string

const (
	// ActionErr fails the operation with ErrTransient and no side
	// effect; a retry succeeds once the failpoint's budget is spent.
	ActionErr Action = "err"
	// ActionShort performs half the requested write, then returns
	// ErrTransient — the classic short-write tear.
	ActionShort Action = "short"
	// ActionTorn writes a seeded-random prefix of the buffer, then
	// returns ErrTransient, tearing a frame at an arbitrary byte.
	ActionTorn Action = "torn"
	// ActionCrash simulates process death at this point: the triggering
	// write persists only up to the crash offset (when the trigger is
	// offset-based), and every later operation through the injector
	// fails with ErrCrash.
	ActionCrash Action = "crash"
)

var validActions = map[Action]bool{
	ActionErr: true, ActionShort: true, ActionTorn: true, ActionCrash: true,
}

// ErrTransient is the retryable error injected by err/short/torn
// actions.
var ErrTransient = errors.New("faultio: injected transient error")

// ErrCrash is the terminal error every operation returns after a crash
// failpoint fires.
var ErrCrash = errors.New("faultio: injected crash (filesystem dead)")

// Failpoint is one armed fault site. The zero trigger values mean
// "first matching call, once".
type Failpoint struct {
	// Name identifies the failpoint in specs and hit counts; defaults
	// to "<path>:<op>" when armed unnamed.
	Name string
	// Path is a glob matched against the basename of the operated-on
	// file (filepath.Match). Empty matches everything.
	Path string
	// Op is the operation to intercept.
	Op Op
	// Nth arms the failpoint starting at the Nth matching call
	// (1-based; 0 means 1).
	Nth int
	// Times is how many matching calls fire once armed (0 means 1;
	// negative means every call forever).
	Times int
	// Offset, for OpWrite with a non-negative value, fires when the
	// file's byte offset crosses it: the write persists bytes up to
	// exactly Offset, then the action applies. Use -1 or leave Nth/P
	// triggers for offset-insensitive faults.
	Offset int64
	// P, when positive, fires each matching call with probability P
	// (drawn from the injector's seeded rng) instead of counting.
	P float64
	// Action is what happens on fire.
	Action Action

	calls int // matching calls seen (Nth/Times accounting)
	hits  int // times the action fired
}

// Injector wraps an FS, arming failpoints over it. Safe for concurrent
// use.
type Injector struct {
	under   FS
	mu      sync.Mutex
	src     *rng.Source
	points  []*Failpoint
	crashed atomic.Bool
}

// New returns an Injector over under with no failpoints armed;
// probabilistic triggers draw from a stream seeded by seed.
func New(under FS, seed uint64) *Injector {
	if under == nil {
		under = OS
	}
	return &Injector{under: under, src: rng.New(rng.Derive(seed, "faultio"))}
}

// ArmPoint arms one failpoint.
func (in *Injector) ArmPoint(fp Failpoint) error {
	if !validOps[fp.Op] {
		return fmt.Errorf("faultio: unknown op %q", fp.Op)
	}
	if !validActions[fp.Action] {
		return fmt.Errorf("faultio: unknown action %q", fp.Action)
	}
	if fp.Path != "" {
		if _, err := filepath.Match(fp.Path, "probe"); err != nil {
			return fmt.Errorf("faultio: bad path glob %q: %w", fp.Path, err)
		}
	}
	if fp.Name == "" {
		fp.Name = fp.Path + ":" + string(fp.Op)
	}
	if fp.Nth <= 0 {
		fp.Nth = 1
	}
	if fp.Times == 0 {
		fp.Times = 1
	}
	in.mu.Lock()
	in.points = append(in.points, &fp)
	in.mu.Unlock()
	return nil
}

// Hits returns how many times the named failpoint has fired.
func (in *Injector) Hits(name string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, fp := range in.points {
		if fp.Name == name {
			n += fp.hits
		}
	}
	return n
}

// TotalHits returns the number of faults injected across all
// failpoints.
func (in *Injector) TotalHits() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, fp := range in.points {
		n += fp.hits
	}
	return n
}

// Crashed reports whether a crash failpoint has fired.
func (in *Injector) Crashed() bool { return in.crashed.Load() }

// Points returns a snapshot of the armed failpoints (name, hit count)
// for debug output.
func (in *Injector) Points() []struct {
	Name string
	Hits int
} {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]struct {
		Name string
		Hits int
	}, len(in.points))
	for i, fp := range in.points {
		out[i].Name, out[i].Hits = fp.Name, fp.hits
	}
	return out
}

// hit is one fired fault: the action to apply, and for offset triggers
// the number of bytes of the current write to persist first.
type hit struct {
	action Action
	keep   int // bytes of the buffer to write through; -1 = action decides
}

// check consults the armed failpoints for an operation on name. off is
// the file offset before the operation and n the buffer length
// (negative when not a write). It returns nil when no failpoint fires.
func (in *Injector) check(name string, op Op, off int64, n int) *hit {
	if in.crashed.Load() {
		return &hit{action: ActionCrash, keep: 0}
	}
	base := filepath.Base(name)
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, fp := range in.points {
		if fp.Op != op {
			continue
		}
		if fp.Path != "" {
			if ok, _ := filepath.Match(fp.Path, base); !ok {
				continue
			}
		}
		if fp.Offset > 0 && op == OpWrite {
			// Offset trigger: fire on the write that crosses the mark.
			if off >= fp.Offset || off+int64(n) <= fp.Offset {
				continue
			}
			if fp.hits >= fp.Times && fp.Times >= 0 {
				continue
			}
			fp.hits++
			if fp.Action == ActionCrash {
				in.crashed.Store(true)
			}
			return &hit{action: fp.Action, keep: int(fp.Offset - off)}
		}
		if fp.P > 0 {
			if !in.src.Bool(fp.P) {
				continue
			}
			if fp.Times >= 0 && fp.hits >= fp.Times {
				continue
			}
		} else {
			fp.calls++
			if fp.calls < fp.Nth {
				continue
			}
			if fp.Times >= 0 && fp.calls >= fp.Nth+fp.Times {
				continue
			}
		}
		fp.hits++
		if fp.Action == ActionCrash {
			in.crashed.Store(true)
		}
		return &hit{action: fp.Action, keep: -1}
	}
	return nil
}

func (in *Injector) Create(name string) (File, error) {
	if h := in.check(name, OpCreate, -1, -1); h != nil {
		return nil, in.errFor(h)
	}
	f, err := in.under.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: f, name: name}, nil
}

func (in *Injector) Open(name string) (File, error) {
	if h := in.check(name, OpOpen, -1, -1); h != nil {
		return nil, in.errFor(h)
	}
	f, err := in.under.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: f, name: name}, nil
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	if h := in.check(name, OpReadFile, -1, -1); h != nil {
		return nil, in.errFor(h)
	}
	return in.under.ReadFile(name)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if h := in.check(oldpath, OpRename, -1, -1); h != nil {
		return in.errFor(h)
	}
	if h := in.check(newpath, OpRename, -1, -1); h != nil {
		return in.errFor(h)
	}
	return in.under.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if h := in.check(name, OpRemove, -1, -1); h != nil {
		return in.errFor(h)
	}
	return in.under.Remove(name)
}

func (in *Injector) Stat(name string) (fs.FileInfo, error) {
	if in.crashed.Load() {
		return nil, ErrCrash
	}
	return in.under.Stat(name)
}

func (in *Injector) MkdirAll(name string, perm os.FileMode) error {
	if in.crashed.Load() {
		return ErrCrash
	}
	return in.under.MkdirAll(name, perm)
}

// errFor maps a fired hit to its error (crash wins over everything).
func (in *Injector) errFor(h *hit) error {
	if h.action == ActionCrash || in.crashed.Load() {
		return ErrCrash
	}
	return ErrTransient
}

// faultFile threads every file operation back through the injector's
// failpoints, tracking the sequential write offset so crash-at-offset
// faults can tear the file at an exact byte.
type faultFile struct {
	in   *Injector
	f    File
	name string
	pos  int64 // sequential position (Seek/Write/Read advance it)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	h := ff.in.check(ff.name, OpWrite, ff.pos, len(p))
	if h == nil {
		n, err := ff.f.Write(p)
		ff.pos += int64(n)
		return n, err
	}
	keep := 0
	switch {
	case h.keep >= 0:
		keep = h.keep
	case h.action == ActionShort:
		keep = len(p) / 2
	case h.action == ActionTorn:
		ff.in.mu.Lock()
		keep = ff.in.src.Intn(len(p) + 1)
		ff.in.mu.Unlock()
	}
	if keep > 0 {
		n, err := ff.f.Write(p[:keep])
		ff.pos += int64(n)
		if err != nil {
			return n, err
		}
		keep = n
	}
	return keep, ff.in.errFor(h)
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if h := ff.in.check(ff.name, OpWriteAt, off, len(p)); h != nil {
		return 0, ff.in.errFor(h)
	}
	return ff.f.WriteAt(p, off)
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if h := ff.in.check(ff.name, OpRead, ff.pos, len(p)); h != nil {
		return 0, ff.in.errFor(h)
	}
	n, err := ff.f.Read(p)
	ff.pos += int64(n)
	return n, err
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if h := ff.in.check(ff.name, OpRead, off, len(p)); h != nil {
		return 0, ff.in.errFor(h)
	}
	return ff.f.ReadAt(p, off)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	if ff.in.crashed.Load() {
		return 0, ErrCrash
	}
	pos, err := ff.f.Seek(offset, whence)
	if err == nil {
		ff.pos = pos
	}
	return pos, err
}

func (ff *faultFile) Sync() error {
	if h := ff.in.check(ff.name, OpSync, -1, -1); h != nil {
		return ff.in.errFor(h)
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	if h := ff.in.check(ff.name, OpClose, -1, -1); h != nil {
		ff.f.Close() // release the descriptor regardless
		return ff.in.errFor(h)
	}
	return ff.f.Close()
}
