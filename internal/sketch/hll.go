// Package sketch provides streaming summary structures used to scale the
// IP-centric analyses beyond exact in-memory maps: HyperLogLog for
// distinct-user counts per prefix, Count-Min for frequency estimation,
// and Space-Saving for heavy-hitter (most-populated address) detection.
//
// At the paper's vantage point — a trillion requests a day — exact
// per-address user sets are infeasible; production pipelines use exactly
// these summaries. The analyzers in internal/core accept either exact or
// sketched counting backends, and the test suite cross-validates the
// sketches against exact counts on simulated traffic.
package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// hash64 is the shared 64-bit mixer (SplitMix64 finalizer). All sketches
// hash through it so callers can feed raw entity IDs.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HLL is a HyperLogLog distinct counter with 2^p registers.
// The zero HLL is not usable; call NewHLL.
type HLL struct {
	p    uint8
	regs []uint8
}

// NewHLL returns a HyperLogLog with precision p in [4, 16]. The standard
// error is roughly 1.04 / sqrt(2^p); p = 12 (4096 registers, ~1.6% error)
// suits per-prefix user counting.
func NewHLL(p uint8) (*HLL, error) {
	if p < 4 || p > 16 {
		return nil, fmt.Errorf("sketch: HLL precision %d out of [4, 16]", p)
	}
	return &HLL{p: p, regs: make([]uint8, 1<<p)}, nil
}

// MustNewHLL is NewHLL that panics on error.
func MustNewHLL(p uint8) *HLL {
	h, err := NewHLL(p)
	if err != nil {
		panic(err)
	}
	return h
}

// Add inserts an item identified by a 64-bit key.
func (h *HLL) Add(key uint64) {
	x := hash64(key)
	idx := x >> (64 - h.p)
	rest := x<<h.p | 1<<(h.p-1) // ensure termination without branch
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// Estimate returns the approximate number of distinct items added.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.regs))
	var (
		sum   float64
		zeros int
	)
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	e := alpha * m * m / sum
	// Linear counting correction for small cardinalities.
	if e <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// Merge folds other into h. Both must have the same precision.
func (h *HLL) Merge(other *HLL) error {
	if h.p != other.p {
		return fmt.Errorf("sketch: HLL precision mismatch %d != %d", h.p, other.p)
	}
	for i, r := range other.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
	return nil
}

// Reset clears the sketch for reuse without reallocating.
func (h *HLL) Reset() {
	for i := range h.regs {
		h.regs[i] = 0
	}
}
