package sketch

import "fmt"

// CountMin is a Count-Min sketch: a fixed-memory frequency estimator that
// only ever over-counts. Used to pre-filter candidate heavy prefixes
// before exact counting.
type CountMin struct {
	width, depth int
	rows         [][]uint64
	seeds        []uint64
}

// NewCountMin returns a sketch with the given width (counters per row)
// and depth (independent rows). Estimation error is roughly
// total/width with probability 1 - 2^-depth.
func NewCountMin(width, depth int) (*CountMin, error) {
	if width < 1 || depth < 1 {
		return nil, fmt.Errorf("sketch: CountMin dimensions %dx%d invalid", width, depth)
	}
	cm := &CountMin{width: width, depth: depth}
	cm.rows = make([][]uint64, depth)
	cm.seeds = make([]uint64, depth)
	for i := range cm.rows {
		cm.rows[i] = make([]uint64, width)
		cm.seeds[i] = hash64(uint64(i) + 0x5bd1e995)
	}
	return cm, nil
}

// MustNewCountMin is NewCountMin that panics on error.
func MustNewCountMin(width, depth int) *CountMin {
	cm, err := NewCountMin(width, depth)
	if err != nil {
		panic(err)
	}
	return cm
}

// Add increments the count of key by delta.
func (cm *CountMin) Add(key uint64, delta uint64) {
	for i := 0; i < cm.depth; i++ {
		idx := hash64(key^cm.seeds[i]) % uint64(cm.width)
		cm.rows[i][idx] += delta
	}
}

// Count returns an upper-bound estimate of key's total added delta.
func (cm *CountMin) Count(key uint64) uint64 {
	min := ^uint64(0)
	for i := 0; i < cm.depth; i++ {
		idx := hash64(key^cm.seeds[i]) % uint64(cm.width)
		if v := cm.rows[i][idx]; v < min {
			min = v
		}
	}
	return min
}

// Reset clears all counters.
func (cm *CountMin) Reset() {
	for _, row := range cm.rows {
		for i := range row {
			row[i] = 0
		}
	}
}
