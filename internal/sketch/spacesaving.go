package sketch

import (
	"container/heap"
	"fmt"
	"sort"
)

// SpaceSaving tracks the approximate top-k most frequent keys in a stream
// (Metwally et al.). It is the heavy-hitter detector behind the outlier
// analyses: finding the most user-populated addresses and prefixes without
// retaining a counter for every address seen.
type SpaceSaving struct {
	capacity int
	entries  ssHeap
	index    map[uint64]int // key -> heap position
}

// ssEntry is a monitored key: count is an upper bound on its true
// frequency, err bounds the over-count.
type ssEntry struct {
	key        uint64
	count, err uint64
}

// ssHeap is a min-heap on count so the least-watched key is evictable.
type ssHeap struct {
	items []ssEntry
	pos   map[uint64]int
}

func (h *ssHeap) Len() int           { return len(h.items) }
func (h *ssHeap) Less(i, j int) bool { return h.items[i].count < h.items[j].count }
func (h *ssHeap) Push(x any)         { panic("unused") }
func (h *ssHeap) Pop() any           { panic("unused") }
func (h *ssHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].key] = i
	h.pos[h.items[j].key] = j
}

// NewSpaceSaving returns a tracker monitoring at most capacity keys.
func NewSpaceSaving(capacity int) (*SpaceSaving, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("sketch: SpaceSaving capacity %d invalid", capacity)
	}
	s := &SpaceSaving{capacity: capacity}
	s.entries.pos = make(map[uint64]int, capacity)
	return s, nil
}

// MustNewSpaceSaving is NewSpaceSaving that panics on error.
func MustNewSpaceSaving(capacity int) *SpaceSaving {
	s, err := NewSpaceSaving(capacity)
	if err != nil {
		panic(err)
	}
	return s
}

// Add records one occurrence of key.
func (s *SpaceSaving) Add(key uint64) { s.AddN(key, 1) }

// AddN records n occurrences of key.
func (s *SpaceSaving) AddN(key uint64, n uint64) {
	h := &s.entries
	if i, ok := h.pos[key]; ok {
		h.items[i].count += n
		heap.Fix(h, i)
		return
	}
	if len(h.items) < s.capacity {
		h.items = append(h.items, ssEntry{key: key, count: n})
		h.pos[key] = len(h.items) - 1
		heap.Fix(h, len(h.items)-1)
		return
	}
	// Evict the minimum: the newcomer inherits its count as error bound.
	min := h.items[0]
	delete(h.pos, min.key)
	h.items[0] = ssEntry{key: key, count: min.count + n, err: min.count}
	h.pos[key] = 0
	heap.Fix(h, 0)
}

// Item is a reported heavy hitter. Count overestimates the true frequency
// by at most Err.
type Item struct {
	Key        uint64
	Count, Err uint64
}

// Top returns up to k monitored keys ordered by descending count.
func (s *SpaceSaving) Top(k int) []Item {
	items := make([]Item, 0, len(s.entries.items))
	for _, e := range s.entries.items {
		items = append(items, Item{Key: e.key, Count: e.count, Err: e.err})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Count != items[j].Count {
			return items[i].Count > items[j].Count
		}
		return items[i].Key < items[j].Key
	})
	if k < len(items) {
		items = items[:k]
	}
	return items
}

// Count returns the (over-)estimated count for key and whether the key is
// currently monitored.
func (s *SpaceSaving) Count(key uint64) (uint64, bool) {
	if i, ok := s.entries.pos[key]; ok {
		return s.entries.items[i].count, true
	}
	return 0, false
}

// Len returns the number of monitored keys.
func (s *SpaceSaving) Len() int { return len(s.entries.items) }
