package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"userv6/internal/rng"
)

func TestHLLPrecisionValidation(t *testing.T) {
	for _, p := range []uint8{0, 3, 17, 200} {
		if _, err := NewHLL(p); err == nil {
			t.Errorf("NewHLL(%d) succeeded", p)
		}
	}
	if _, err := NewHLL(12); err != nil {
		t.Fatal(err)
	}
}

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 100000} {
		h := MustNewHLL(12)
		src := rng.New(uint64(n))
		seen := make(map[uint64]bool, n)
		for len(seen) < n {
			k := src.Uint64()
			seen[k] = true
			h.Add(k)
			h.Add(k) // duplicates must not inflate
		}
		est := h.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		// p=12 gives ~1.6% standard error; allow 5 sigma.
		if relErr > 0.08 {
			t.Errorf("n=%d: estimate %.0f, rel err %.3f", n, est, relErr)
		}
	}
}

func TestHLLEmpty(t *testing.T) {
	h := MustNewHLL(10)
	if est := h.Estimate(); est != 0 {
		t.Fatalf("empty estimate = %v", est)
	}
}

func TestHLLMerge(t *testing.T) {
	a, b := MustNewHLL(12), MustNewHLL(12)
	src := rng.New(9)
	union := MustNewHLL(12)
	for i := 0; i < 50000; i++ {
		k := src.Uint64()
		if i%2 == 0 {
			a.Add(k)
		} else {
			b.Add(k)
		}
		union.Add(k)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Estimate()-union.Estimate()) > 1e-9 {
		t.Fatalf("merged estimate %v != union estimate %v", a.Estimate(), union.Estimate())
	}
	c := MustNewHLL(10)
	if err := a.Merge(c); err == nil {
		t.Fatal("precision mismatch merge succeeded")
	}
}

func TestHLLReset(t *testing.T) {
	h := MustNewHLL(8)
	for i := uint64(0); i < 1000; i++ {
		h.Add(i)
	}
	h.Reset()
	if est := h.Estimate(); est != 0 {
		t.Fatalf("after reset estimate = %v", est)
	}
}

// Property: HLL estimate is invariant under duplicate insertion order.
func TestHLLDuplicateInvariance(t *testing.T) {
	f := func(keys []uint64) bool {
		a, b := MustNewHLL(8), MustNewHLL(8)
		for _, k := range keys {
			a.Add(k)
		}
		for i := len(keys) - 1; i >= 0; i-- {
			b.Add(keys[i])
			b.Add(keys[i])
		}
		return a.Estimate() == b.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountMinNeverUndercounts(t *testing.T) {
	cm := MustNewCountMin(512, 4)
	src := rng.New(4)
	truth := make(map[uint64]uint64)
	for i := 0; i < 20000; i++ {
		k := src.Uint64n(2000)
		truth[k]++
		cm.Add(k, 1)
	}
	for k, want := range truth {
		if got := cm.Count(k); got < want {
			t.Fatalf("undercounted key %d: %d < %d", k, got, want)
		}
	}
}

func TestCountMinAccuracyOnHeavyKeys(t *testing.T) {
	cm := MustNewCountMin(4096, 4)
	src := rng.New(8)
	const heavy = 42
	for i := 0; i < 100000; i++ {
		cm.Add(src.Uint64n(100000), 1)
	}
	cm.Add(heavy, 50000)
	got := cm.Count(heavy)
	// Expected over-count ≈ total/width ≈ 150000/4096 ≈ 37 per row; min of
	// 4 rows should stay within a small multiple.
	if got < 50000 || got > 50500 {
		t.Fatalf("heavy key count = %d, want ~50000", got)
	}
}

func TestCountMinValidationAndReset(t *testing.T) {
	if _, err := NewCountMin(0, 1); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := NewCountMin(1, 0); err == nil {
		t.Fatal("zero depth accepted")
	}
	cm := MustNewCountMin(64, 2)
	cm.Add(7, 9)
	cm.Reset()
	if got := cm.Count(7); got != 0 {
		t.Fatalf("after reset count = %d", got)
	}
}

func TestSpaceSavingExactWhenUnderCapacity(t *testing.T) {
	s := MustNewSpaceSaving(10)
	freqs := map[uint64]uint64{1: 5, 2: 3, 3: 8}
	for k, n := range freqs {
		s.AddN(k, n)
	}
	for k, want := range freqs {
		got, ok := s.Count(k)
		if !ok || got != want {
			t.Fatalf("Count(%d) = %d,%v want %d", k, got, ok, want)
		}
	}
	top := s.Top(2)
	if len(top) != 2 || top[0].Key != 3 || top[1].Key != 1 {
		t.Fatalf("Top(2) = %+v", top)
	}
	if top[0].Err != 0 {
		t.Fatal("under capacity, error bound should be 0")
	}
}

func TestSpaceSavingFindsHeavyHitters(t *testing.T) {
	s := MustNewSpaceSaving(1000)
	src := rng.New(15)
	// 5 heavy keys at ~1000 each over a noise floor of 100k singletons
	// spread across 1000 slots (floor ~100 per slot).
	for i := 0; i < 100000; i++ {
		s.Add(src.Uint64())
		if i%20 == 0 {
			s.Add(uint64(1 + (i/20)%5))
		}
	}
	top := s.Top(5)
	found := make(map[uint64]bool)
	for _, it := range top {
		found[it.Key] = true
		if it.Count < it.Err {
			t.Fatalf("count %d below error bound %d", it.Count, it.Err)
		}
	}
	for k := uint64(1); k <= 5; k++ {
		if !found[k] {
			t.Fatalf("heavy key %d missing from top: %+v", k, top)
		}
	}
}

// Property: SpaceSaving count upper-bounds the true count, and
// count - err lower-bounds it.
func TestSpaceSavingBoundsProperty(t *testing.T) {
	f := func(stream []uint16) bool {
		s := MustNewSpaceSaving(8)
		truth := make(map[uint64]uint64)
		for _, v := range stream {
			k := uint64(v % 64)
			truth[k]++
			s.Add(k)
		}
		for _, it := range s.Top(8) {
			actual := truth[it.Key]
			if it.Count < actual || it.Count-it.Err > actual {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceSavingValidation(t *testing.T) {
	if _, err := NewSpaceSaving(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	s := MustNewSpaceSaving(2)
	if s.Len() != 0 {
		t.Fatal("new tracker not empty")
	}
	if _, ok := s.Count(99); ok {
		t.Fatal("absent key reported present")
	}
	if got := s.Top(5); len(got) != 0 {
		t.Fatalf("Top on empty = %v", got)
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	h := MustNewHLL(12)
	for i := 0; i < b.N; i++ {
		h.Add(uint64(i))
	}
}

func BenchmarkSpaceSavingAdd(b *testing.B) {
	s := MustNewSpaceSaving(1024)
	src := rng.New(1)
	keys := make([]uint64, 65536)
	for i := range keys {
		keys[i] = src.Uint64n(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(keys[i%len(keys)])
	}
}
