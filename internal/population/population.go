// Package population synthesizes the benign user base: who lives where,
// which access networks each user reaches the platform through (home,
// mobile, work, VPN), how many devices they carry, and how active they
// are. The synthesized population is the generative counterpart of the
// paper's "user random sample" — each simulated user stands for one
// sampled user of a much larger platform.
package population

import (
	"fmt"

	"userv6/internal/netmodel"
	"userv6/internal/rng"
)

// ContextKind classifies a user's access contexts.
type ContextKind uint8

const (
	// Home is the user's residential line.
	Home ContextKind = iota
	// MobileCtx is the user's cellular connection.
	MobileCtx
	// Work is the user's workplace network.
	Work
	// VPN routes through a proxy/VPN provider.
	VPN
)

// String labels the context kind.
func (k ContextKind) String() string {
	switch k {
	case Home:
		return "home"
	case MobileCtx:
		return "mobile"
	case Work:
		return "work"
	case VPN:
		return "vpn"
	default:
		return fmt.Sprintf("context(%d)", uint8(k))
	}
}

// Context is one access context of a user.
type Context struct {
	Kind ContextKind
	Net  *netmodel.Network
	// Sub is the subscriber identity on Net: the household line, the
	// mobile subscription, the office site, or the VPN account.
	Sub uint64
	// Weight is the context's share of the user's pre-pandemic weekday
	// activity. Weights sum to 1 per user.
	Weight float64
}

// User is one synthesized platform user.
type User struct {
	ID      uint64
	Country string
	// Devices is how many distinct devices the user owns (>= 1).
	Devices int
	// StaticIID marks users whose devices embed a stable EUI-64 MAC
	// identifier instead of rotating privacy IIDs (§4.4: ~2.5%).
	StaticIID bool
	// MACRandomizing marks StaticIID users whose OS randomizes the MAC,
	// so the embedded identifier still changes over time (§4.4: the
	// ~17% of EUI-64 users that do not reuse IIDs).
	MACRandomizing bool
	// Activity scales the user's request volume (lognormal around 1).
	Activity float64
	// DeviceBase is the user's globally unique device-identity base;
	// household members occasionally share it (shared family devices),
	// which is what puts a second user on the same IPv6 address.
	DeviceBase uint64
	// WorkOnly marks users active only from work before lockdowns.
	WorkOnly bool
	Contexts []Context
}

// Context returns the user's context of the given kind, or nil.
func (u *User) Context(kind ContextKind) *Context {
	for i := range u.Contexts {
		if u.Contexts[i].Kind == kind {
			return &u.Contexts[i]
		}
	}
	return nil
}

// HasV6Context reports whether any of the user's contexts can assign the
// user an IPv6 address.
func (u *User) HasV6Context() bool {
	for i := range u.Contexts {
		c := &u.Contexts[i]
		if c.Net.SubscriberHasV6(c.Sub) {
			return true
		}
	}
	return false
}

// Config controls population synthesis.
type Config struct {
	// Seed drives all randomness; Users is the population size.
	Seed  uint64
	Users int
	// StaticIIDShare is the fraction of users with MAC-embedding
	// devices (paper §4.4: 0.025).
	StaticIIDShare float64
	// MACRandomizingShare is the fraction of StaticIID users whose OS
	// randomizes the MAC per network, giving dynamic EUI-64 IIDs
	// (paper §4.4: 17% of EUI-64 users show changing IIDs).
	MACRandomizingShare float64
	// VPNShare is the fraction of users who route some traffic through
	// proxy/VPN providers.
	VPNShare float64
	// TransitionShare is the fraction of users reaching IPv6 through
	// 6to4/Teredo transition relays (paper §4.4: < 0.01% of v6 users).
	TransitionShare float64
	// HomeShare and MobileShare are the probabilities a user has the
	// respective context at all.
	HomeShare, MobileShare float64
	// MeanHouseholdExtra is the mean number of additional members per
	// household beyond the first (household size ≈ 1 + Poisson(this)).
	MeanHouseholdExtra float64
	// WorkSiteSize is the mean number of users per enterprise site.
	WorkSiteSize int
}

// DefaultConfig returns the calibrated defaults for a 200k-user run.
func DefaultConfig() Config {
	return Config{
		Seed:                1,
		Users:               200_000,
		StaticIIDShare:      0.028,
		MACRandomizingShare: 0.12,
		VPNShare:            0.03,
		TransitionShare:     0.00006,
		HomeShare:           0.90,
		MobileShare:         0.82,
		MeanHouseholdExtra:  0.9,
		WorkSiteSize:        40,
	}
}

// Population is the synthesized user base.
type Population struct {
	Users []User
	World *netmodel.World
	cfg   Config
}

// Config returns the configuration the population was built with.
func (p *Population) Config() Config { return p.cfg }

// household tracks an open household accepting further members.
type household struct {
	sub      uint64
	capacity int
	// deviceBase is the household's shared-device identity pool.
	deviceBase uint64
}

// Synthesize builds the population deterministically.
func Synthesize(w *netmodel.World, cfg Config) *Population {
	if cfg.Users <= 0 {
		cfg.Users = 1
	}
	src := rng.New(rng.Derive(cfg.Seed, "population"))
	p := &Population{World: w, cfg: cfg}
	p.Users = make([]User, cfg.Users)

	countries := w.Countries
	weights := make([]float64, len(countries))
	total := 0.0
	for i, c := range countries {
		weights[i] = c.Country.Weight
		total += c.Country.Weight
	}

	// Expected users per country determine enterprise site counts.
	siteCounts := make([]int, len(countries))
	for i, c := range countries {
		exp := float64(cfg.Users) * c.Country.Weight / total
		workUsers := exp * c.Country.WorkW * 2.2
		siteCounts[i] = int(workUsers)/max(1, cfg.WorkSiteSize) + 1
	}

	// Open households per (country, ISP slot 0=v6, 1=v4, 2=legacy).
	households := make(map[[2]int]*household)
	nextHousehold := make(map[[2]int]uint64)

	for i := range p.Users {
		u := &p.Users[i]
		u.ID = uint64(i)
		ci := src.WeightedChoice(weights)
		cn := countries[ci]
		c := cn.Country
		u.Country = c.Code
		u.Devices = 1 + src.Geometric(0.45)
		if u.Devices > 5 {
			u.Devices = 5
		}
		u.StaticIID = src.Bool(cfg.StaticIIDShare)
		u.DeviceBase = (u.ID + 1) << 20
		u.MACRandomizing = u.StaticIID && src.Bool(cfg.MACRandomizingShare)
		u.Activity = src.LogNormal(0, 0.75)
		u.WorkOnly = src.Bool(c.WorkOnly)

		// Context weights: jittered country means, renormalized below.
		hw := c.HomeW * (0.5 + src.Float64())
		mw := c.MobW * (0.5 + src.Float64())
		ww := c.WorkW * (0.5 + src.Float64())

		// Home context with household sharing.
		if src.Bool(cfg.HomeShare) {
			slot := 1 // v4-only ISP
			var net *netmodel.Network
			switch {
			case src.Bool(c.LegacyShare):
				slot, net = 2, cn.ResLegacy
			case src.Bool(resV6Prob(c, u.WorkOnly)):
				slot, net = 0, cn.ResV6
			default:
				net = cn.ResV4
			}
			key := [2]int{ci, slot}
			hh := households[key]
			if hh == nil || hh.capacity <= 0 {
				sub := nextHousehold[key]
				nextHousehold[key] = sub + 1
				hh = &household{sub: sub, capacity: 1 + src.Poisson(cfg.MeanHouseholdExtra), deviceBase: u.DeviceBase}
				households[key] = hh
			} else if src.Bool(0.3) && !u.StaticIID {
				// Shared family device: this member reuses the
				// household's device identities, so their home IPv6
				// addresses coincide with the first member's.
				u.DeviceBase = hh.deviceBase
			}
			hh.capacity--
			u.Contexts = append(u.Contexts, Context{Kind: Home, Net: net, Sub: hh.sub, Weight: hw})
		}

		// Mobile context: personal subscription.
		if src.Bool(cfg.MobileShare) {
			var net *netmodel.Network
			if src.Bool(c.MobV6) {
				net = cn.MobV6[src.WeightedChoice(cn.MobV6W)]
			} else {
				net = cn.MobV4
			}
			u.Contexts = append(u.Contexts, Context{Kind: MobileCtx, Net: net, Sub: u.ID, Weight: mw})
		}

		// Work context: shared enterprise site.
		hasWork := c.WorkW > 0 && (u.WorkOnly || src.Bool(minf(1, c.WorkW*2.2)))
		if hasWork {
			net := cn.EntV4
			if src.Bool(c.EntV6) {
				net = cn.EntV6
			}
			site := src.Uint64n(uint64(siteCounts[ci]))
			u.Contexts = append(u.Contexts, Context{Kind: Work, Net: net, Sub: site, Weight: ww})
		}

		// Transition-relay users: their home line tunnels v6 through
		// 6to4 or Teredo instead of native service.
		if src.Bool(cfg.TransitionShare) && len(w.Transition) > 0 {
			net := w.Transition[src.Intn(len(w.Transition))]
			u.Contexts = append(u.Contexts, Context{Kind: Home, Net: net, Sub: u.ID, Weight: hw})
		}

		// VPN context: occasional proxy egress.
		if src.Bool(cfg.VPNShare) && len(w.Proxies) > 0 {
			net := w.Proxies[src.Intn(len(w.Proxies))]
			u.Contexts = append(u.Contexts, Context{Kind: VPN, Net: net, Sub: u.ID, Weight: 0.08})
		}

		// Guarantee at least one context: fall back to mobile.
		if len(u.Contexts) == 0 {
			u.Contexts = append(u.Contexts, Context{Kind: MobileCtx, Net: cn.MobV4, Sub: u.ID, Weight: 1})
		}

		// WorkOnly users concentrate their weight on work (when they
		// have it); their other contexts exist but see ~no platform use
		// until lockdown shifts them home.
		if u.WorkOnly {
			for j := range u.Contexts {
				if u.Contexts[j].Kind == Work {
					u.Contexts[j].Weight = 1
				} else {
					u.Contexts[j].Weight = 0.02
				}
			}
		}
		normalizeWeights(u.Contexts)
	}
	return p
}

// normalizeWeights scales context weights to sum to 1.
func normalizeWeights(cs []Context) {
	sum := 0.0
	for i := range cs {
		sum += cs[i].Weight
	}
	if sum <= 0 {
		for i := range cs {
			cs[i].Weight = 1 / float64(len(cs))
		}
		return
	}
	for i := range cs {
		cs[i].Weight /= sum
	}
}

// resV6Prob is the probability a user's home line is on the IPv6
// residential ISP. Work-only users skew toward the incumbent telco
// (office-worker demographic), which is what makes lockdown shift their
// country's IPv6 ratio upward (the paper's Germany effect).
func resV6Prob(c netmodel.Country, workOnly bool) float64 {
	p := c.ResV6
	if workOnly {
		p = minf(1, p*1.4)
	}
	return p
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
