package population

import (
	"math"
	"testing"

	"userv6/internal/netmodel"
)

func testPop(t *testing.T, users int, seed uint64) *Population {
	t.Helper()
	world := netmodel.BuildWorld(netmodel.WorldConfig{Seed: seed, Scale: float64(users) / 200000})
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Users = users
	return Synthesize(world, cfg)
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := testPop(t, 2000, 5)
	b := testPop(t, 2000, 5)
	if len(a.Users) != len(b.Users) {
		t.Fatal("sizes differ")
	}
	for i := range a.Users {
		ua, ub := &a.Users[i], &b.Users[i]
		if ua.Country != ub.Country || ua.Devices != ub.Devices ||
			ua.StaticIID != ub.StaticIID || len(ua.Contexts) != len(ub.Contexts) {
			t.Fatalf("user %d differs", i)
		}
		for j := range ua.Contexts {
			ca, cb := ua.Contexts[j], ub.Contexts[j]
			if ca.Kind != cb.Kind || ca.Sub != cb.Sub || ca.Net.ID != cb.Net.ID {
				t.Fatalf("user %d context %d differs", i, j)
			}
		}
	}
}

func TestEveryUserWellFormed(t *testing.T) {
	p := testPop(t, 5000, 1)
	for i := range p.Users {
		u := &p.Users[i]
		if u.ID != uint64(i) {
			t.Fatalf("user %d has ID %d", i, u.ID)
		}
		if u.Country == "" {
			t.Fatal("missing country")
		}
		if u.Devices < 1 || u.Devices > 5 {
			t.Fatalf("devices = %d", u.Devices)
		}
		if u.Activity <= 0 {
			t.Fatalf("activity = %v", u.Activity)
		}
		if len(u.Contexts) == 0 {
			t.Fatal("user with no contexts")
		}
		sum := 0.0
		for _, c := range u.Contexts {
			if c.Net == nil {
				t.Fatal("context without network")
			}
			if c.Weight < 0 {
				t.Fatalf("negative weight %v", c.Weight)
			}
			sum += c.Weight
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("user %d weights sum to %v", i, sum)
		}
		if u.MACRandomizing && !u.StaticIID {
			t.Fatal("MACRandomizing without StaticIID")
		}
	}
}

func TestCountryDistributionFollowsWeights(t *testing.T) {
	p := testPop(t, 30000, 2)
	counts := make(map[string]int)
	for i := range p.Users {
		counts[p.Users[i].Country]++
	}
	total := 0.0
	for _, c := range netmodel.Countries() {
		total += c.Weight
	}
	for _, c := range netmodel.Countries() {
		want := c.Weight / total
		got := float64(counts[c.Code]) / float64(len(p.Users))
		if math.Abs(got-want) > 0.02+want*0.25 {
			t.Errorf("%s share = %.4f, want ~%.4f", c.Code, got, want)
		}
	}
}

func TestHouseholdsShared(t *testing.T) {
	p := testPop(t, 20000, 3)
	// Count users per (network, household sub) for home contexts.
	type hh struct {
		net uint32
		sub uint64
	}
	sizes := make(map[hh]int)
	for i := range p.Users {
		if c := p.Users[i].Context(Home); c != nil {
			sizes[hh{c.Net.ID, c.Sub}]++
		}
	}
	if len(sizes) == 0 {
		t.Fatal("no households")
	}
	multi := 0
	maxSize := 0
	for _, n := range sizes {
		if n > 1 {
			multi++
		}
		if n > maxSize {
			maxSize = n
		}
	}
	if multi == 0 {
		t.Fatal("no multi-member households")
	}
	if maxSize > 12 {
		t.Fatalf("implausible household of %d", maxSize)
	}
}

func TestStaticIIDShare(t *testing.T) {
	p := testPop(t, 40000, 4)
	static, randomizing := 0, 0
	for i := range p.Users {
		if p.Users[i].StaticIID {
			static++
			if p.Users[i].MACRandomizing {
				randomizing++
			}
		}
	}
	share := float64(static) / float64(len(p.Users))
	if math.Abs(share-p.Config().StaticIIDShare) > 0.005 {
		t.Fatalf("static share = %v, want ~%v", share, p.Config().StaticIIDShare)
	}
	if static > 0 {
		rshare := float64(randomizing) / float64(static)
		if math.Abs(rshare-p.Config().MACRandomizingShare) > 0.06 {
			t.Fatalf("randomizing share = %v", rshare)
		}
	}
}

func TestDeviceSharingWithinHouseholds(t *testing.T) {
	p := testPop(t, 30000, 5)
	// Some household members must share a DeviceBase.
	type hh struct {
		net uint32
		sub uint64
	}
	bases := make(map[hh]map[uint64]int)
	for i := range p.Users {
		u := &p.Users[i]
		c := u.Context(Home)
		if c == nil {
			continue
		}
		k := hh{c.Net.ID, c.Sub}
		if bases[k] == nil {
			bases[k] = make(map[uint64]int)
		}
		bases[k][u.DeviceBase]++
	}
	shared := 0
	for _, m := range bases {
		for _, n := range m {
			if n > 1 {
				shared++
			}
		}
	}
	if shared == 0 {
		t.Fatal("no shared family devices synthesized")
	}
}

func TestWorkOnlyConcentratesWeight(t *testing.T) {
	p := testPop(t, 30000, 6)
	found := false
	for i := range p.Users {
		u := &p.Users[i]
		if !u.WorkOnly {
			continue
		}
		w := u.Context(Work)
		if w == nil {
			t.Fatal("work-only user without work context")
		}
		if w.Weight < 0.85 {
			t.Fatalf("work-only user work weight = %v", w.Weight)
		}
		found = true
	}
	if !found {
		t.Fatal("no work-only users synthesized")
	}
}

func TestHasV6Context(t *testing.T) {
	p := testPop(t, 10000, 7)
	with := 0
	for i := range p.Users {
		if p.Users[i].HasV6Context() {
			with++
		}
	}
	share := float64(with) / float64(len(p.Users))
	// Global capability should be in the broad band around the paper's
	// 35% weekly-active share (capability is an upper bound on it).
	if share < 0.3 || share < 0.01 || share > 0.75 {
		t.Fatalf("v6-capable share = %v", share)
	}
}

func TestContextKindString(t *testing.T) {
	if Home.String() != "home" || MobileCtx.String() != "mobile" ||
		Work.String() != "work" || VPN.String() != "vpn" {
		t.Fatal("context labels wrong")
	}
	if ContextKind(99).String() != "context(99)" {
		t.Fatal("unknown label wrong")
	}
}

func TestZeroUsersClamped(t *testing.T) {
	world := netmodel.BuildWorld(netmodel.WorldConfig{Seed: 1, Scale: 0.01})
	cfg := DefaultConfig()
	cfg.Users = 0
	p := Synthesize(world, cfg)
	if len(p.Users) != 1 {
		t.Fatalf("users = %d, want clamp to 1", len(p.Users))
	}
}
