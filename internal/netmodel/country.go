package netmodel

// Country holds the per-country calibration inputs for the synthetic
// population. The values are set so that the marginals the paper reports
// (Table 1's ASN ratios, Table 2's country ratios, Figure 1's global
// prevalence) emerge from simulation; they are the only public anchors
// the paper provides, since the raw data is proprietary.
type Country struct {
	// Code is an ISO-3166-style country code, Name the display name.
	Code, Name string
	// Weight is the country's share of the platform's user base.
	Weight float64
	// ResV6, MobV6 and EntV6 are the probabilities that a user's home,
	// mobile, and workplace networks deploy IPv6.
	ResV6, MobV6, EntV6 float64
	// LegacyShare is the probability that a user's home network is the
	// country's "legacy" ISP with marginal IPv6 deployment (<10% of its
	// subscribers), the population behind the paper's 28.3%-of-ASNs-
	// below-10% observation.
	LegacyShare float64
	// HomeW, MobW and WorkW are mean daily time shares for the three
	// context types (normalized per user at synthesis).
	HomeW, MobW, WorkW float64
	// WorkOnly is the fraction of users active on the platform only
	// from work before lockdowns (the mechanism behind Germany's
	// lockdown-driven IPv6 jump).
	WorkOnly float64
}

// Countries returns the calibrated country table. Weights need not sum
// to 1; the population synthesizer normalizes.
func Countries() []Country {
	return []Country{
		// Top IPv6 countries (paper Table 2): India leads at ~84%.
		{Code: "IN", Name: "India", Weight: 0.145, ResV6: 0.55, MobV6: 0.93, EntV6: 0.30, LegacyShare: 0.10, HomeW: 0.30, MobW: 0.60, WorkW: 0.10, WorkOnly: 0.02},
		{Code: "US", Name: "United States", Weight: 0.095, ResV6: 0.66, MobV6: 0.62, EntV6: 0.30, LegacyShare: 0.08, HomeW: 0.45, MobW: 0.40, WorkW: 0.15, WorkOnly: 0.03},
		{Code: "GR", Name: "Greece", Weight: 0.006, ResV6: 0.66, MobV6: 0.60, EntV6: 0.70, LegacyShare: 0.05, HomeW: 0.40, MobW: 0.35, WorkW: 0.25, WorkOnly: 0.04},
		{Code: "VN", Name: "Vietnam", Weight: 0.040, ResV6: 0.64, MobV6: 0.64, EntV6: 0.30, LegacyShare: 0.08, HomeW: 0.45, MobW: 0.45, WorkW: 0.10, WorkOnly: 0.02},
		{Code: "BE", Name: "Belgium", Weight: 0.005, ResV6: 0.70, MobV6: 0.62, EntV6: 0.40, LegacyShare: 0.05, HomeW: 0.45, MobW: 0.40, WorkW: 0.15, WorkOnly: 0.03},
		{Code: "TW", Name: "Taiwan", Weight: 0.010, ResV6: 0.62, MobV6: 0.62, EntV6: 0.35, LegacyShare: 0.06, HomeW: 0.45, MobW: 0.40, WorkW: 0.15, WorkOnly: 0.03},
		{Code: "BR", Name: "Brazil", Weight: 0.080, ResV6: 0.52, MobV6: 0.55, EntV6: 0.25, LegacyShare: 0.10, HomeW: 0.40, MobW: 0.50, WorkW: 0.10, WorkOnly: 0.02},
		{Code: "MY", Name: "Malaysia", Weight: 0.012, ResV6: 0.55, MobV6: 0.58, EntV6: 0.25, LegacyShare: 0.08, HomeW: 0.45, MobW: 0.45, WorkW: 0.10, WorkOnly: 0.02},
		{Code: "PT", Name: "Portugal", Weight: 0.005, ResV6: 0.50, MobV6: 0.48, EntV6: 0.35, LegacyShare: 0.06, HomeW: 0.45, MobW: 0.40, WorkW: 0.15, WorkOnly: 0.03},
		{Code: "FI", Name: "Finland", Weight: 0.003, ResV6: 0.48, MobV6: 0.50, EntV6: 0.30, LegacyShare: 0.05, HomeW: 0.45, MobW: 0.40, WorkW: 0.15, WorkOnly: 0.03},
		// Germany: modest pre-pandemic ratio that jumps under lockdown —
		// a large work-only population whose home lines (Deutsche
		// Telekom) are IPv6-rich.
		{Code: "DE", Name: "Germany", Weight: 0.024, ResV6: 0.58, MobV6: 0.18, EntV6: 0.12, LegacyShare: 0.10, HomeW: 0.35, MobW: 0.30, WorkW: 0.35, WorkOnly: 0.38},
		// Large v4-heavy populations; Indonesia also hosts the mega-CGN
		// IPv4 outliers (Telkom).
		{Code: "ID", Name: "Indonesia", Weight: 0.070, ResV6: 0.10, MobV6: 0.12, EntV6: 0.05, LegacyShare: 0.20, HomeW: 0.35, MobW: 0.55, WorkW: 0.10, WorkOnly: 0.02},
		{Code: "MX", Name: "Mexico", Weight: 0.040, ResV6: 0.26, MobV6: 0.30, EntV6: 0.15, LegacyShare: 0.12, HomeW: 0.40, MobW: 0.50, WorkW: 0.10, WorkOnly: 0.02},
		{Code: "PH", Name: "Philippines", Weight: 0.040, ResV6: 0.15, MobV6: 0.25, EntV6: 0.05, LegacyShare: 0.15, HomeW: 0.35, MobW: 0.55, WorkW: 0.10, WorkOnly: 0.02},
		{Code: "TH", Name: "Thailand", Weight: 0.030, ResV6: 0.32, MobV6: 0.46, EntV6: 0.15, LegacyShare: 0.10, HomeW: 0.40, MobW: 0.50, WorkW: 0.10, WorkOnly: 0.02},
		{Code: "EG", Name: "Egypt", Weight: 0.030, ResV6: 0.03, MobV6: 0.04, EntV6: 0.02, LegacyShare: 0.20, HomeW: 0.40, MobW: 0.50, WorkW: 0.10, WorkOnly: 0.02},
		{Code: "TR", Name: "Turkey", Weight: 0.022, ResV6: 0.03, MobV6: 0.05, EntV6: 0.02, LegacyShare: 0.18, HomeW: 0.40, MobW: 0.50, WorkW: 0.10, WorkOnly: 0.02},
		{Code: "GB", Name: "United Kingdom", Weight: 0.020, ResV6: 0.36, MobV6: 0.30, EntV6: 0.20, LegacyShare: 0.08, HomeW: 0.45, MobW: 0.40, WorkW: 0.15, WorkOnly: 0.03},
		{Code: "FR", Name: "France", Weight: 0.020, ResV6: 0.38, MobV6: 0.34, EntV6: 0.20, LegacyShare: 0.08, HomeW: 0.45, MobW: 0.40, WorkW: 0.15, WorkOnly: 0.03},
		{Code: "IT", Name: "Italy", Weight: 0.020, ResV6: 0.25, MobV6: 0.30, EntV6: 0.10, LegacyShare: 0.12, HomeW: 0.45, MobW: 0.40, WorkW: 0.15, WorkOnly: 0.03},
		{Code: "JP", Name: "Japan", Weight: 0.028, ResV6: 0.34, MobV6: 0.32, EntV6: 0.20, LegacyShare: 0.08, HomeW: 0.45, MobW: 0.40, WorkW: 0.15, WorkOnly: 0.04},
		{Code: "ES", Name: "Spain", Weight: 0.015, ResV6: 0.15, MobV6: 0.20, EntV6: 0.08, LegacyShare: 0.12, HomeW: 0.45, MobW: 0.40, WorkW: 0.15, WorkOnly: 0.03},
		{Code: "NG", Name: "Nigeria", Weight: 0.020, ResV6: 0.02, MobV6: 0.02, EntV6: 0.01, LegacyShare: 0.25, HomeW: 0.35, MobW: 0.55, WorkW: 0.10, WorkOnly: 0.02},
		{Code: "BD", Name: "Bangladesh", Weight: 0.020, ResV6: 0.08, MobV6: 0.10, EntV6: 0.03, LegacyShare: 0.20, HomeW: 0.35, MobW: 0.55, WorkW: 0.10, WorkOnly: 0.02},
		{Code: "PK", Name: "Pakistan", Weight: 0.020, ResV6: 0.04, MobV6: 0.06, EntV6: 0.02, LegacyShare: 0.20, HomeW: 0.35, MobW: 0.55, WorkW: 0.10, WorkOnly: 0.02},
		{Code: "AR", Name: "Argentina", Weight: 0.015, ResV6: 0.16, MobV6: 0.21, EntV6: 0.08, LegacyShare: 0.12, HomeW: 0.40, MobW: 0.50, WorkW: 0.10, WorkOnly: 0.02},
		{Code: "CO", Name: "Colombia", Weight: 0.015, ResV6: 0.14, MobV6: 0.18, EntV6: 0.08, LegacyShare: 0.12, HomeW: 0.40, MobW: 0.50, WorkW: 0.10, WorkOnly: 0.02},
		{Code: "PL", Name: "Poland", Weight: 0.010, ResV6: 0.12, MobV6: 0.18, EntV6: 0.06, LegacyShare: 0.12, HomeW: 0.45, MobW: 0.40, WorkW: 0.15, WorkOnly: 0.03},
		{Code: "NL", Name: "Netherlands", Weight: 0.008, ResV6: 0.27, MobV6: 0.25, EntV6: 0.18, LegacyShare: 0.08, HomeW: 0.45, MobW: 0.40, WorkW: 0.15, WorkOnly: 0.03},
		{Code: "CA", Name: "Canada", Weight: 0.008, ResV6: 0.27, MobV6: 0.27, EntV6: 0.18, LegacyShare: 0.08, HomeW: 0.45, MobW: 0.40, WorkW: 0.15, WorkOnly: 0.03},
		{Code: "AU", Name: "Australia", Weight: 0.008, ResV6: 0.23, MobV6: 0.23, EntV6: 0.15, LegacyShare: 0.08, HomeW: 0.45, MobW: 0.40, WorkW: 0.15, WorkOnly: 0.03},
		{Code: "SE", Name: "Sweden", Weight: 0.005, ResV6: 0.22, MobV6: 0.25, EntV6: 0.12, LegacyShare: 0.08, HomeW: 0.45, MobW: 0.40, WorkW: 0.15, WorkOnly: 0.03},
		// Aggregate bucket for the long tail of smaller countries.
		{Code: "ZZ", Name: "Rest of world", Weight: 0.200, ResV6: 0.07, MobV6: 0.09, EntV6: 0.05, LegacyShare: 0.15, HomeW: 0.40, MobW: 0.50, WorkW: 0.10, WorkOnly: 0.02},
	}
}
