package netmodel

import (
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/simtime"
)

func testWorld(t *testing.T) *World {
	t.Helper()
	return BuildWorld(WorldConfig{Seed: 42, Scale: 0.1})
}

func TestWorldConstruction(t *testing.T) {
	w := testWorld(t)
	if len(w.Countries) != len(Countries()) {
		t.Fatalf("countries = %d, want %d", len(w.Countries), len(Countries()))
	}
	if len(w.Hosting) != 4 || len(w.Proxies) != 3 {
		t.Fatalf("hosting/proxies = %d/%d", len(w.Hosting), len(w.Proxies))
	}
	for i, n := range w.Networks() {
		if int(n.ID) != i {
			t.Fatalf("network %d has ID %d", i, n.ID)
		}
		if n.HasV6() && !n.V6.RoutingBlock.IsValid() {
			t.Fatalf("network %s has v6 but no routing block", n.Name)
		}
		if n.HasV4() && !n.V4.Pool.IsValid() {
			t.Fatalf("network %s has v4 but no pool", n.Name)
		}
	}
}

func TestWorldDeterministic(t *testing.T) {
	w1 := BuildWorld(WorldConfig{Seed: 7, Scale: 0.1})
	w2 := BuildWorld(WorldConfig{Seed: 7, Scale: 0.1})
	n1, n2 := w1.Networks(), w2.Networks()
	if len(n1) != len(n2) {
		t.Fatal("network count differs across identical builds")
	}
	for i := range n1 {
		if n1[i].V6.RoutingBlock != n2[i].V6.RoutingBlock || n1[i].V4.Pool != n2[i].V4.Pool {
			t.Fatalf("network %d blocks differ", i)
		}
		a1 := n1[i].V6AddrAt(5, 0, 10, 0, false)
		a2 := n2[i].V6AddrAt(5, 0, 10, 0, false)
		if a1 != a2 {
			t.Fatalf("network %d assigns different addresses", i)
		}
	}
}

func TestRoutingBlocksDisjoint(t *testing.T) {
	w := testWorld(t)
	var v6 []netaddr.Prefix
	var v4 []netaddr.Prefix
	for _, n := range w.Networks() {
		if n.HasV6() {
			v6 = append(v6, n.V6.RoutingBlock)
		}
		if n.HasV4() {
			v4 = append(v4, n.V4.Pool)
		}
	}
	for i := range v6 {
		for j := i + 1; j < len(v6); j++ {
			if v6[i].Overlaps(v6[j]) {
				t.Fatalf("v6 blocks overlap: %s / %s", v6[i], v6[j])
			}
		}
	}
	for i := range v4 {
		for j := i + 1; j < len(v4); j++ {
			if v4[i].Overlaps(v4[j]) {
				t.Fatalf("v4 pools overlap: %s / %s", v4[i], v4[j])
			}
		}
	}
}

func TestASNRouting(t *testing.T) {
	w := testWorld(t)
	for _, n := range w.Networks() {
		if n.HasV6() {
			a := n.V6AddrAt(1, 0, 0, 0, false)
			if !a.IsValid() {
				// Subscriber 1 may lack v6 capability; find one that has it.
				for sub := uint64(0); sub < 100; sub++ {
					if a = n.V6AddrAt(sub, 0, 0, 0, false); a.IsValid() {
						break
					}
				}
			}
			if a.IsValid() {
				if got := w.ASNOf(a); got != n.ASN {
					t.Errorf("%s: ASNOf(%s) = %d, want %d", n.Name, a, got, n.ASN)
				}
			}
		}
		if n.HasV4() {
			a := n.V4AddrAt(1, 0, 0)
			if got := w.ASNOf(a); got != n.ASN {
				t.Errorf("%s: ASNOf(%s) = %d, want %d", n.Name, a, got, n.ASN)
			}
		}
	}
	if got := w.ASNOf(netaddr.MustParseAddr("3fff::1")); got != 0 {
		t.Errorf("ASNOf outside all blocks = %d, want 0", got)
	}
}

func TestSLAACResidentialBehavior(t *testing.T) {
	w := testWorld(t)
	us := w.CountryByCode("US")
	if us == nil {
		t.Fatal("US missing")
	}
	n := us.ResV6
	// Find a v6-capable subscriber.
	var sub uint64
	for ; sub < 1000; sub++ {
		if n.SubscriberHasV6(sub) {
			break
		}
	}
	day := simtime.Day(10)
	a1 := n.V6AddrAt(sub, 0, day, 0, false)
	a2 := n.V6AddrAt(sub, 0, day, 1, false) // same day, different session
	if a1 != a2 {
		t.Fatal("SLAAC address should be stable within a day")
	}
	next := n.V6AddrAt(sub, 0, day+1, 0, false)
	if next == a1 {
		t.Fatal("daily IID rotation should change the address")
	}
	// Same /64 across rotation (same delegation window).
	if netaddr.PrefixFrom(a1, 64) != netaddr.PrefixFrom(next, 64) {
		t.Fatal("rotated address should stay in the same /64")
	}
	// Two devices share the /64 but differ in IID.
	dev2 := n.V6AddrAt(sub, 1, day, 0, false)
	if netaddr.PrefixFrom(a1, 64) != netaddr.PrefixFrom(dev2, 64) {
		t.Fatal("devices should share the home /64")
	}
	if dev2 == a1 {
		t.Fatal("devices should have distinct IIDs")
	}
	// Delegation eventually rotates to a different prefix.
	changed := false
	base := n.SubscriberDelegation(sub, day)
	if base.Bits() != 56 {
		t.Fatalf("delegation length = %d, want 56", base.Bits())
	}
	for d := day; d < day+40; d++ {
		if n.SubscriberDelegation(sub, d) != base {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("delegation never rotated in 40 days")
	}
}

func TestStaticIIDIsEUI64AndStable(t *testing.T) {
	w := testWorld(t)
	n := w.CountryByCode("US").ResV6
	var sub uint64
	for ; sub < 1000; sub++ {
		if n.SubscriberHasV6(sub) {
			break
		}
	}
	a1 := n.V6AddrAt(sub, 0, 5, 0, true)
	a2 := n.V6AddrAt(sub, 0, 25, 0, true)
	if !netaddr.IsEUI64IID(a1) {
		t.Fatalf("static IID not EUI-64: %s", a1)
	}
	if a1.IID() != a2.IID() {
		t.Fatal("static IID changed across days")
	}
}

func TestMobilePerSessionSubnet(t *testing.T) {
	w := testWorld(t)
	in := w.CountryByCode("IN")
	n := in.MobV6[0] // Reliance Jio
	if n.ASN != 55836 {
		t.Fatalf("first IN mobile = ASN %d, want 55836", n.ASN)
	}
	var sub uint64
	for ; sub < 1000; sub++ {
		if n.SubscriberHasV6(sub) {
			break
		}
	}
	a1 := n.V6AddrAt(sub, 0, 3, 0, false)
	a2 := n.V6AddrAt(sub, 0, 3, 1, false)
	// Sessions within a day stay inside the subscriber's current /64
	// (sticky PDP context), while IIDs churn roughly every other session.
	if netaddr.PrefixFrom(a1, 64) != netaddr.PrefixFrom(a2, 64) {
		t.Fatal("same-day sessions should share the current /64")
	}
	if a1 == a2 {
		t.Fatal("consecutive sessions should rotate the IID")
	}
	// Both inside the carrier's routing block.
	if !n.V6.RoutingBlock.Contains(a1) || !n.V6.RoutingBlock.Contains(a2) {
		t.Fatal("session subnets escaped routing block")
	}
	// The /64 eventually moves (subnet lifetime boundary).
	moved := false
	for d := simtime.Day(0); d < 30; d++ {
		if netaddr.PrefixFrom(n.V6AddrAt(sub, 0, d, 0, false), 64) != netaddr.PrefixFrom(a1, 64) {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("mobile /64 never moved in 30 days")
	}
}

func TestGatewayStructuredIIDs(t *testing.T) {
	w := testWorld(t)
	us := w.CountryByCode("US")
	var gw *Network
	for _, m := range us.MobV6 {
		if m.ASN == 20057 {
			gw = m
		}
	}
	if gw == nil {
		t.Fatal("AT&T gateway network missing")
	}
	if gw.Kind != MobileGateway {
		t.Fatalf("kind = %v", gw.Kind)
	}
	seen112 := make(map[netaddr.Prefix]bool)
	seenAddr := make(map[netaddr.Addr]bool)
	for sub := uint64(0); sub < 3000; sub++ {
		a := gw.V6AddrAt(sub, 0, 7, 0, false)
		if !a.IsValid() {
			continue
		}
		if !netaddr.IsStructuredIID(a) {
			t.Fatalf("gateway address lacks structured IID: %s", a)
		}
		seen112[netaddr.PrefixFrom(a, 112)] = true
		seenAddr[a] = true
	}
	if len(seen112) == 0 {
		t.Fatal("no gateway addresses at all")
	}
	if len(seen112) > gw.V6.Gateways {
		t.Fatalf("more /112s (%d) than gateways (%d)", len(seen112), gw.V6.Gateways)
	}
	// Many subscribers, few addresses: heavy aggregation.
	if len(seenAddr) > gw.V6.Gateways*gw.V6.SlotsPerGateway {
		t.Fatalf("%d distinct addresses exceeds gateways*slots", len(seenAddr))
	}
}

func TestHouseholdV4LeaseStability(t *testing.T) {
	w := testWorld(t)
	n := w.CountryByCode("BR").ResV4
	sub := uint64(99)
	a1 := n.V4AddrAt(sub, 10, 0)
	a2 := n.V4AddrAt(sub, 11, 3)
	if !a1.Is4() {
		t.Fatalf("household address not v4: %s", a1)
	}
	if a1 != a2 {
		// Lease might have rolled exactly between days 10 and 11 for
		// this subscriber; adjacent days mostly match.
		same := 0
		for d := simtime.Day(0); d < 16; d++ {
			if n.V4AddrAt(sub, d, 0) == n.V4AddrAt(sub, d+1, 0) {
				same++
			}
		}
		if same < 14 {
			t.Fatalf("household v4 unstable: only %d/16 adjacent days equal", same)
		}
	}
	// Address changes across a full lease period.
	far := n.V4AddrAt(sub, 10+simtime.Day(n.V4.LeaseDays)*3, 0)
	if far == a1 {
		t.Fatal("lease never rotated")
	}
}

func TestCGNPoolBounded(t *testing.T) {
	w := testWorld(t)
	id := w.CountryByCode("ID")
	n := id.MobV4
	if n.ASN != 23693 {
		t.Fatalf("ID mobile v4 = ASN %d, want Telkom 23693", n.ASN)
	}
	seen := make(map[netaddr.Addr]bool)
	for sub := uint64(0); sub < 5000; sub++ {
		for sess := 0; sess < 3; sess++ {
			seen[n.V4AddrAt(sub, 3, sess)] = true
		}
	}
	if len(seen) > n.V4.PoolSize {
		t.Fatalf("CGN produced %d addresses, pool size %d", len(seen), n.V4.PoolSize)
	}
	if len(seen) < n.V4.PoolSize/2 {
		t.Fatalf("CGN pool underused: %d of %d", len(seen), n.V4.PoolSize)
	}
}

func TestHostingIIDHopping(t *testing.T) {
	w := testWorld(t)
	h := w.Hosting[0]
	sn := h.HostSubnet(7)
	if sn.Bits() != 64 {
		t.Fatalf("host subnet length = %d", sn.Bits())
	}
	a1 := h.HostAddrWithIID(7, 100)
	a2 := h.HostAddrWithIID(7, 200)
	if netaddr.PrefixFrom(a1, 64) != sn || netaddr.PrefixFrom(a2, 64) != sn {
		t.Fatal("hopped IIDs left the host /64")
	}
	if a1 == a2 {
		t.Fatal("distinct IIDs gave equal addresses")
	}
	// Non-hosting networks return the zero value.
	if w.Proxies[0].HostAddrWithIID(1, 1).IsValid() {
		t.Fatal("proxy should not expose host addressing")
	}
}

func TestSubscriberShareRespected(t *testing.T) {
	w := testWorld(t)
	n := w.CountryByCode("DE").ResV6 // Deutsche Telekom, share 0.83
	if n.ASN != 3320 {
		t.Fatalf("DE residential = ASN %d", n.ASN)
	}
	with := 0
	const subs = 20000
	for sub := uint64(0); sub < subs; sub++ {
		if n.SubscriberHasV6(sub) {
			with++
		}
	}
	got := float64(with) / subs
	if got < 0.80 || got > 0.86 {
		t.Fatalf("DT v6 subscriber share = %v, want ~0.83", got)
	}
	// Legacy ISP: ~13% (the paper's under-10%-of-users ASN band once
	// weighted by activity).
	leg := w.CountryByCode("DE").ResLegacy
	with = 0
	for sub := uint64(0); sub < subs; sub++ {
		if leg.SubscriberHasV6(sub) {
			with++
		}
	}
	got = float64(with) / subs
	if got < 0.11 || got > 0.15 {
		t.Fatalf("legacy v6 share = %v, want ~0.13", got)
	}
}

func TestV6NoneNetworksNeverAssignV6(t *testing.T) {
	w := testWorld(t)
	// Nigeria's v4 ISP has no IPv6 at all (ResV6 below trial threshold).
	n := w.CountryByCode("NG").ResV4
	for sub := uint64(0); sub < 100; sub++ {
		if n.V6AddrAt(sub, 0, 0, 0, false).IsValid() {
			t.Fatal("v4-only network assigned v6")
		}
		if n.SubscriberHasV6(sub) {
			t.Fatal("v4-only network claims v6 subscriber")
		}
	}
}

func TestTopASNsByV6Share(t *testing.T) {
	w := testWorld(t)
	top := w.TopASNsByV6Share(10)
	if len(top) != 10 {
		t.Fatalf("top = %d entries", len(top))
	}
	if top[0].ASN != 55836 {
		t.Fatalf("top ASN = %d (%s), want Reliance Jio", top[0].ASN, top[0].Name)
	}
	for i := 1; i < len(top); i++ {
		if top[i].V6SubscriberShare > top[i-1].V6SubscriberShare {
			t.Fatal("top list not sorted")
		}
	}
}

func TestASNNames(t *testing.T) {
	w := testWorld(t)
	for asn, want := range map[ASN]string{
		20057: "AT&T Mobility",
		13335: "Cloudflare",
		23693: "Telkom Indonesia",
		55836: "Reliance Jio",
	} {
		if got := w.ASNName(asn); got != want {
			t.Errorf("ASNName(%d) = %q, want %q", asn, got, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if Residential.String() != "residential" || MobileGateway.String() != "mobile-gateway" {
		t.Fatal("kind labels wrong")
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatal("unknown kind label wrong")
	}
}

func BenchmarkV6AddrAt(b *testing.B) {
	w := BuildWorld(WorldConfig{Seed: 1, Scale: 0.1})
	n := w.CountryByCode("US").ResV6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.V6AddrAt(uint64(i%1024), 0, simtime.Day(i%28), 0, false)
	}
}
