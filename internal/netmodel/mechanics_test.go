package netmodel

import (
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/simtime"
)

// TestHotCGNShare verifies the warm/hot subscriber split of V4CGN.
func TestHotCGNShare(t *testing.T) {
	w := testWorld(t)
	n := w.CountryByCode("VN").MobV4
	if n.V4.HotShare <= 0 {
		t.Skip("no hot share configured")
	}
	hot := 0
	const subs = 4000
	for sub := uint64(0); sub < subs; sub++ {
		// A hot subscriber's address varies with the session index.
		a0 := n.V4AddrAt(sub, 3, 0)
		varies := false
		for s := 1; s < 6; s++ {
			if n.V4AddrAt(sub, 3, s) != a0 {
				varies = true
				break
			}
		}
		if varies {
			hot++
		}
	}
	got := float64(hot) / subs
	// Hot subscribers occasionally draw the same pool slot repeatedly,
	// so the observed share slightly undershoots the configured one.
	if got < n.V4.HotShare-0.08 || got > n.V4.HotShare+0.05 {
		t.Fatalf("hot share = %v, configured %v", got, n.V4.HotShare)
	}
}

// TestStaticHouseholdShare verifies that a share of household lines
// never rotates.
func TestStaticHouseholdShare(t *testing.T) {
	w := testWorld(t)
	n := w.CountryByCode("US").ResV4
	static := 0
	const subs = 3000
	for sub := uint64(0); sub < subs; sub++ {
		a0 := n.V4AddrAt(sub, 0, 0)
		stable := true
		for d := simtime.Day(1); d < 60; d += 3 {
			if n.V4AddrAt(sub, d, 0) != a0 {
				stable = false
				break
			}
		}
		if stable {
			static++
		}
	}
	got := float64(static) / subs
	want := n.V4.StaticShare
	if got < want-0.04 || got > want+0.04 {
		t.Fatalf("static share = %v, configured %v", got, want)
	}
}

// TestResidentialRegionalAggregation: a subscriber's delegated prefixes
// across rotations stay inside one /44 region, and regions are shared by
// many subscribers.
func TestResidentialRegionalAggregation(t *testing.T) {
	w := testWorld(t)
	n := w.CountryByCode("US").ResV6
	var sub uint64
	for ; sub < 1000; sub++ {
		if n.SubscriberHasV6(sub) {
			break
		}
	}
	region := netaddr.PrefixFrom(n.SubscriberDelegation(sub, 0).Addr(), 44)
	sawRotation := false
	base := n.SubscriberDelegation(sub, 0)
	for d := simtime.Day(1); d < 120; d++ {
		deleg := n.SubscriberDelegation(sub, d)
		if deleg != base {
			sawRotation = true
		}
		if netaddr.PrefixFrom(deleg.Addr(), 44) != region {
			t.Fatalf("delegation %s left region %s", deleg, region)
		}
	}
	if !sawRotation {
		t.Fatal("delegation never rotated in 120 days")
	}
	// Regions are shared: at most 256 regions exist per ISP.
	regions := make(map[netaddr.Prefix]bool)
	for s := uint64(0); s < 2000; s++ {
		if !n.SubscriberHasV6(s) {
			continue
		}
		regions[netaddr.PrefixFrom(n.SubscriberDelegation(s, 0).Addr(), 44)] = true
	}
	if len(regions) > 256 {
		t.Fatalf("regions = %d, want <= 256", len(regions))
	}
	if len(regions) < 32 {
		t.Fatalf("regions = %d, want spread", len(regions))
	}
}

// TestMobileRegionPinning: a mobile subscriber's /64s across subnet
// epochs stay inside one /48 of the carrier block.
func TestMobileRegionPinning(t *testing.T) {
	w := testWorld(t)
	n := w.CountryByCode("IN").MobV6[0]
	checked := 0
	for sub := uint64(0); sub < 200 && checked < 20; sub++ {
		if !n.SubscriberHasV6(sub) {
			continue
		}
		checked++
		var region netaddr.Prefix
		for d := simtime.Day(0); d < 60; d++ {
			a := n.V6AddrAt(sub, 0, d, 0, false)
			r := netaddr.PrefixFrom(a, 48)
			if !region.IsValid() {
				region = r
			} else if r != region {
				t.Fatalf("sub %d /48 moved: %s -> %s", sub, region, r)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no v6 subscribers checked")
	}
}

// TestMobilePoolBounded: the carrier's distinct /64s stay within the
// configured pool size.
func TestMobilePoolBounded(t *testing.T) {
	w := testWorld(t)
	n := w.CountryByCode("IN").MobV6[0]
	seen := make(map[netaddr.Prefix]bool)
	for sub := uint64(0); sub < 3000; sub++ {
		if !n.SubscriberHasV6(sub) {
			continue
		}
		for d := simtime.Day(0); d < 28; d += 7 {
			seen[netaddr.PrefixFrom(n.V6AddrAt(sub, 0, d, 0, false), 64)] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("no /64s observed")
	}
	if len(seen) > n.V6.PoolSize {
		t.Fatalf("distinct /64s %d exceed pool %d", len(seen), n.V6.PoolSize)
	}
	// The pool recycles: far more subscriber-epochs than /64s.
	if len(seen) < n.V6.PoolSize/10 {
		t.Fatalf("pool underused: %d of %d", len(seen), n.V6.PoolSize)
	}
}

// TestTransitionRelays: relay networks assign addresses inside the
// well-known transition prefixes and classify accordingly.
func TestTransitionRelays(t *testing.T) {
	w := testWorld(t)
	if len(w.Transition) != 2 {
		t.Fatalf("transition networks = %d", len(w.Transition))
	}
	for _, n := range w.Transition {
		a := n.V6AddrAt(42, 0, 3, 0, false)
		if !a.IsValid() {
			t.Fatalf("%s assigned no address", n.Name)
		}
		kind := netaddr.Classify(a)
		if kind != netaddr.KindTeredo && kind != netaddr.Kind6to4 {
			t.Fatalf("%s address %s classifies as %v", n.Name, a, kind)
		}
		if got := w.ASNOf(a); got != n.ASN {
			t.Fatalf("relay address not routed to relay ASN")
		}
	}
}

// TestMobileChurnHeterogeneity: a minority of subscribers move /64s much
// faster than the rest.
func TestMobileChurnHeterogeneity(t *testing.T) {
	w := testWorld(t)
	n := w.CountryByCode("IN").MobV6[0]
	fast, slow, total := 0, 0, 0
	for sub := uint64(0); sub < 2000 && total < 400; sub++ {
		if !n.SubscriberHasV6(sub) {
			continue
		}
		total++
		distinct := make(map[netaddr.Prefix]bool)
		for d := simtime.Day(0); d < 14; d++ {
			distinct[netaddr.PrefixFrom(n.V6AddrAt(sub, 0, d, 0, false), 64)] = true
		}
		switch {
		case len(distinct) >= 7:
			fast++
		case len(distinct) <= 2:
			slow++
		}
	}
	if fast == 0 {
		t.Fatal("no fast-churn subscribers")
	}
	if slow == 0 {
		t.Fatal("no slow subscribers")
	}
	fastShare := float64(fast) / float64(total)
	if fastShare < 0.1 || fastShare > 0.35 {
		t.Fatalf("fast-churn share = %v, want ~0.2", fastShare)
	}
}

// TestGatewayBenignAggregation: gateway subscribers funnel through few
// addresses, all inside per-gateway /112s.
func TestGatewayBenignAggregation(t *testing.T) {
	w := testWorld(t)
	var gw *Network
	for _, m := range w.CountryByCode("US").MobV6 {
		if m.Kind == MobileGateway {
			gw = m
		}
	}
	addrs := make(map[netaddr.Addr]int)
	per112 := make(map[netaddr.Prefix]int)
	for sub := uint64(0); sub < 2000; sub++ {
		a := gw.V6AddrAt(sub, 0, 9, 0, false)
		if !a.IsValid() {
			continue
		}
		addrs[a]++
		per112[netaddr.PrefixFrom(a, 112)]++
	}
	if len(addrs) == 0 {
		t.Fatal("no gateway addresses")
	}
	if len(addrs) > gw.V6.Gateways*gw.V6.SlotsPerGateway {
		t.Fatalf("addresses %d exceed slots", len(addrs))
	}
	// Aggregation: average users per address far above 1.
	if 2000/len(addrs) < 10 {
		t.Fatalf("weak gateway aggregation: %d addrs for 2000 subs", len(addrs))
	}
	for p, c := range per112 {
		if c < 2 {
			t.Fatalf("sparse /112 %s (%d)", p, c)
		}
	}
}
