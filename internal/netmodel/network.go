// Package netmodel models the access networks through which users reach
// the platform: their autonomous systems, countries, IPv6 deployment, and
// — most importantly — their address assignment behavior.
//
// The paper explains every curve it measures by appeal to assignment
// mechanisms: NAT and CGN on IPv4, privacy-extended SLAAC and temporary
// DHCPv6 on IPv6, per-session /64s on mobile carriers, and mobile
// gateways that funnel enormous user populations through a handful of
// structured-IID addresses. This package implements those mechanisms as
// *pure deterministic functions* of (network, subscriber, device, day,
// session): the same query always yields the same address, so the
// telemetry generator never needs to store per-entity address state.
package netmodel

import (
	"fmt"

	"userv6/internal/netaddr"
	"userv6/internal/rng"
	"userv6/internal/simtime"
)

// ASN is an autonomous system number.
type ASN uint32

// Kind is the archetype of an access network; it determines both typical
// IPv6 deployment and address-assignment behavior.
type Kind uint8

const (
	// Residential is a fixed-line ISP: per-household NAT on IPv4,
	// delegated prefix + SLAAC on IPv6.
	Residential Kind = iota
	// Mobile is a cellular carrier: CGN on IPv4, a fresh /64 per data
	// session on IPv6.
	Mobile
	// Enterprise is a corporate/campus network: static egress on IPv4,
	// static subnets on IPv6 when deployed at all.
	Enterprise
	// Hosting is a server/cloud provider: static per-host IPv4, a /64
	// per host on IPv6 with tenant-controlled IIDs. Attacker exits and
	// VPN endpoints live here.
	Hosting
	// MobileGateway is a carrier that concentrates its users behind a
	// small set of gateway addresses with structured IIDs — the paper's
	// ASN 20057 pattern, and the source of the heavy IPv6 outliers.
	MobileGateway
	// Proxy is a CDN/VPN egress fleet: a small static pool of exits
	// shared by many users on both protocols.
	Proxy
)

// String labels the kind.
func (k Kind) String() string {
	switch k {
	case Residential:
		return "residential"
	case Mobile:
		return "mobile"
	case Enterprise:
		return "enterprise"
	case Hosting:
		return "hosting"
	case MobileGateway:
		return "mobile-gateway"
	case Proxy:
		return "proxy"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// V6Mode selects the IPv6 assignment mechanism.
type V6Mode uint8

const (
	// V6None means the network has not deployed IPv6.
	V6None V6Mode = iota
	// V6SLAAC delegates a prefix per subscriber and rotates interface
	// identifiers per device on a configurable period (privacy
	// extensions / temporary DHCPv6).
	V6SLAAC
	// V6PerSessionSubnet assigns a fresh /64 from the routing block for
	// every data session (mobile carriers).
	V6PerSessionSubnet
	// V6Gateway funnels subscribers through per-gateway /112s whose
	// addresses differ only in the low 16 IID bits.
	V6Gateway
	// V6StaticPool serves sessions from a small static pool of exit
	// addresses (proxies, VPNs).
	V6StaticPool
	// V6StaticHost gives each subscriber (host) a stable address inside
	// its own /64 — hosting providers. The subscriber may additionally
	// hop IIDs at will; see HostAddrWithIID.
	V6StaticHost
)

// V4Mode selects the IPv4 assignment mechanism.
type V4Mode uint8

const (
	// V4None means no IPv4 service (rare; completeness).
	V4None V4Mode = iota
	// V4Household gives each subscriber line one public NAT address,
	// re-drawn from the pool every LeaseDays.
	V4Household
	// V4CGN shares a small pool of public addresses across all
	// subscribers, re-drawn per session.
	V4CGN
	// V4Static pins each subscriber to one pool address indefinitely.
	V4Static
	// V4StaticPool serves sessions from a small static exit pool
	// (proxies).
	V4StaticPool
)

// V6Policy configures IPv6 assignment for a network.
type V6Policy struct {
	Mode V6Mode
	// RoutingBlock is the network's global routing prefix; all its IPv6
	// addresses fall inside it.
	RoutingBlock netaddr.Prefix
	// DelegatedLen is the per-subscriber delegation length for V6SLAAC
	// (typically 56 or 64).
	DelegatedLen int
	// IIDRotationDays is the device IID rotation period for V6SLAAC;
	// 0 means static IIDs.
	IIDRotationDays int
	// DelegationRotationDays re-draws the subscriber's delegated prefix
	// on this period; 0 means a stable delegation.
	DelegationRotationDays int
	// SubnetLifetimeDays is how long a V6PerSessionSubnet subscriber
	// keeps one /64 before the carrier moves it (default 5). Interface
	// identifiers still change per session within the /64.
	SubnetLifetimeDays int
	// Gateways is the number of /112 gateways for V6Gateway.
	Gateways int
	// SlotsPerGateway is the number of busy egress addresses per
	// gateway for V6Gateway.
	SlotsPerGateway int
	// PoolSize is the number of exit addresses for V6StaticPool.
	PoolSize int
}

// V4Policy configures IPv4 assignment for a network.
type V4Policy struct {
	Mode V4Mode
	// Pool is the public address block addresses are drawn from.
	Pool netaddr.Prefix
	// LeaseDays is the re-draw period for V4Household.
	LeaseDays int
	// StaticShare is the fraction of V4Household lines with a de-facto
	// static address (lease never rotates).
	StaticShare float64
	// PoolSize caps the number of distinct public addresses for V4CGN,
	// V4Static and V4StaticPool.
	PoolSize int
	// HotShare is the fraction of V4CGN subscribers whose binding churns
	// per session ("hot" CGN paths); the rest re-bind daily.
	HotShare float64
}

// Network is one access network: an ASN in a country with concrete
// assignment policies. Build networks through a World, which allocates
// non-overlapping address blocks.
type Network struct {
	// ID is unique within a World.
	ID uint32
	// ASN identifies the autonomous system (may be shared by networks
	// of the same operator).
	ASN ASN
	// Name is the operator name, for reports.
	Name string
	// Country is the ISO-style code of the network's user base.
	Country string
	// Kind is the archetype.
	Kind Kind
	// V6 and V4 are the assignment policies.
	V6 V6Policy
	V4 V4Policy
	// V6SubscriberShare is the fraction of subscribers with working
	// IPv6 (CPE/handset capability); subscribers outside it behave as
	// v4-only even on a v6-deploying network. 0 is treated as 1.
	V6SubscriberShare float64

	seed uint64
}

// SubscriberHasV6 reports whether a specific subscriber gets IPv6
// service, combining network deployment with per-subscriber capability.
func (n *Network) SubscriberHasV6(sub uint64) bool {
	if n.V6.Mode == V6None {
		return false
	}
	share := n.V6SubscriberShare
	if share <= 0 || share >= 1 {
		return true
	}
	return float64(n.hash(sub, 30)%(1<<20))/(1<<20) < share
}

// HasV6 reports whether the network assigns IPv6 addresses.
func (n *Network) HasV6() bool { return n.V6.Mode != V6None }

// HasV4 reports whether the network assigns IPv4 addresses.
func (n *Network) HasV4() bool { return n.V4.Mode != V4None }

// hash mixes the network seed with a stream of values into a uniform
// 64-bit output; the deterministic assignment core.
func (n *Network) hash(vals ...uint64) uint64 {
	h := n.seed
	for _, v := range vals {
		h = rng.DeriveN(h, v)
	}
	return h
}

// V6AddrAt returns the IPv6 address presented by (subscriber, device) on
// the given day and session, or the zero Addr when the network has no
// IPv6. staticIID forces a stable, EUI-64-style identifier (the ~2.5% of
// devices that embed their MAC).
func (n *Network) V6AddrAt(sub, device uint64, day simtime.Day, session int, staticIID bool) netaddr.Addr {
	if !n.SubscriberHasV6(sub) {
		return netaddr.Addr{}
	}
	switch n.V6.Mode {
	case V6SLAAC:
		lan := n.subscriberLAN(sub, day)
		var iid uint64
		switch {
		case staticIID:
			// The embedded MAC belongs to the device, not the network:
			// the same device presents the same EUI-64 identifier on
			// every network it roams to (callers encode the device
			// identity in the device argument).
			iid = netaddr.EUI64FromMAC(rng.DeriveN(device, 0xde71ce))
		case n.V6.IIDRotationDays > 0:
			// Per-device rotation period: most devices regenerate their
			// temporary address daily (RFC 4941 default), a minority
			// keep one for several days — the mixture behind the
			// paper's daily-vs-weekly address count ratio (Fig. 2/5).
			rot := uint64(n.V6.IIDRotationDays)
			switch n.hash(sub, device, 16) % 100 {
			case 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14:
				rot *= 7
			case 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39:
				rot *= 3
			}
			phase := n.hash(sub, device, 1) % rot
			epoch := (uint64(day) + phase) / rot
			iid = n.hash(sub, device, 2, epoch)
		default:
			iid = n.hash(sub, device, 3)
		}
		return lan.Addr().WithIID(iid)

	case V6PerSessionSubnet:
		// The subscriber keeps one /64 for SubnetLifetimeDays (PDP
		// contexts are sticky), then the PGW moves them. A minority of
		// subscribers sit on fast-churn paths (frequent reattachment)
		// and move /64s almost daily — the heterogeneity behind the
		// short-lived end of the (user, /64) lifespan curve (Fig. 6).
		life := uint64(5)
		if n.V6.SubnetLifetimeDays > 0 {
			life = uint64(n.V6.SubnetLifetimeDays)
		}
		if n.hash(sub, 19)%100 < 20 {
			life = 1
		}
		phase := n.hash(sub, 15) % life
		epoch := (uint64(day) + phase) / life
		idx := n.hash(sub, epoch, 4)
		if n.V6.PoolSize > 0 {
			// Finite PGW pools are regional: the subscriber is pinned to
			// one regional gateway /48, and draws /64s from that
			// gateway's slice of the pool — a roaming subscriber's /64s
			// aggregate within the carrier prefix, and pool /64s recycle
			// across subscribers (Figs. 4/9).
			perRegion := uint64(n.V6.PoolSize) / 16
			if perRegion < 48 {
				perRegion = 48
			}
			regions := uint64(n.V6.PoolSize) / perRegion
			if regions < 1 {
				regions = 1
			}
			region := n.hash(sub, 17) % regions
			slot := rng.DeriveN(idx%perRegion, 0x64) & 0xffff
			idx = region<<16 | slot
		}
		sn := n.V6.RoutingBlock.Subnet(64, idx)
		if staticIID {
			// Legacy handsets derive cellular IIDs from the MAC too.
			return sn.Addr().WithIID(netaddr.EUI64FromMAC(rng.DeriveN(device, 0xde71ce)))
		}
		// Temporary addresses regenerate on roughly every other
		// reconnect: daily rotation plus intra-day churn (Fig. 2).
		return sn.Addr().WithIID(n.hash(sub, uint64(day), uint64(session+1)/2, 5))

	case V6Gateway:
		g := n.hash(sub, 6) % uint64(max(1, n.V6.Gateways))
		// Each gateway owns a /64; its egress addresses use only the low
		// 16 IID bits, so they all share one /112 and classify as
		// structured IIDs (the paper's ASN 20057 signature). Slot 0 maps
		// to 1 to avoid the all-zero anycast address.
		gw := n.V6.RoutingBlock.Subnet(64, g)
		slot := n.hash(sub, uint64(day), 7) % uint64(max(1, n.V6.SlotsPerGateway))
		return gw.Addr().WithIID(slot&0xffff + 1)

	case V6StaticPool:
		// Each exit address sits in its own /64 (egress hosts are
		// distinct machines scattered through the provider block).
		idx := n.hash(sub, uint64(day), uint64(session), 8) % uint64(max(1, n.V6.PoolSize))
		sn := n.V6.RoutingBlock.Subnet(64, rng.DeriveN(idx, 0xe))
		return sn.Addr().WithIID(n.hash(idx, 9))

	case V6StaticHost:
		return n.HostAddrWithIID(sub, n.hash(sub, 10))

	default:
		return netaddr.Addr{}
	}
}

// subscriberLAN returns the first /64 of the subscriber's current
// delegated prefix.
func (n *Network) subscriberLAN(sub uint64, day simtime.Day) netaddr.Prefix {
	epoch := uint64(0)
	if r := n.V6.DelegationRotationDays; r > 0 {
		phase := n.hash(sub, 11) % uint64(r)
		epoch = (uint64(day) + phase) / uint64(r)
	}
	delegLen := n.V6.DelegatedLen
	if delegLen <= 0 {
		delegLen = 56
	}
	// Subscribers are pooled into regional /44 aggregates of the ISP's
	// routing block; delegation re-draws stay within the region. This
	// is the structure behind the paper's observation that a user's /64s
	// aggregate within prefixes shorter than /48 (the global routing
	// prefix; Figures 4 and 6).
	region := n.V6.RoutingBlock
	if region.Bits() < 44 {
		// 256 shared regional aggregates per ISP: delegations re-draw
		// within the subscriber's region, and regions hold many
		// subscribers (cross-user aggregation at /44, Figs. 4/9).
		region = region.Subnet(44, n.hash(sub, 14)%256)
	}
	deleg := region.Subnet(delegLen, n.hash(sub, 12, epoch))
	return deleg.Subnet(64, 0)
}

// SubscriberDelegation returns the subscriber's delegated prefix on the
// given day (V6SLAAC networks only; zero Prefix otherwise). Exposed for
// analyses that reason about delegation-level aggregation.
func (n *Network) SubscriberDelegation(sub uint64, day simtime.Day) netaddr.Prefix {
	if n.V6.Mode != V6SLAAC {
		return netaddr.Prefix{}
	}
	lan := n.subscriberLAN(sub, day)
	delegLen := n.V6.DelegatedLen
	if delegLen <= 0 {
		delegLen = 56
	}
	return netaddr.PrefixFrom(lan.Addr(), delegLen)
}

// HostAddrWithIID returns the address of host sub with a caller-chosen
// interface identifier — hosting tenants (and attackers renting them)
// control the low 64 bits of their /64 freely.
func (n *Network) HostAddrWithIID(sub, iid uint64) netaddr.Addr {
	if n.V6.Mode != V6StaticHost {
		return netaddr.Addr{}
	}
	return n.HostSubnet(sub).Addr().WithIID(iid)
}

// HostSubnet returns the /64 owned by host sub on a hosting network.
func (n *Network) HostSubnet(sub uint64) netaddr.Prefix {
	if n.V6.Mode != V6StaticHost {
		return netaddr.Prefix{}
	}
	// Customers are packed into /56 allocation regions (24 per
	// provider), so tenants of one provider cluster at /56 — which is
	// where abusive hosting infrastructure aggregates (Fig. 10a).
	region := n.hash(sub, 18) % 24
	return n.V6.RoutingBlock.Subnet(56, region).Subnet(64, n.hash(sub, 13))
}

// V4AddrAt returns the IPv4 address presented by subscriber sub on the
// given day and session, or the zero Addr when the network has no IPv4.
func (n *Network) V4AddrAt(sub uint64, day simtime.Day, session int) netaddr.Addr {
	switch n.V4.Mode {
	case V4Household:
		lease := max(1, n.V4.LeaseDays)
		epoch := uint64(0)
		// A share of lines is effectively static (no lease rotation).
		if float64(n.hash(sub, 26)%(1<<20))/(1<<20) >= n.V4.StaticShare {
			phase := n.hash(sub, 20) % uint64(lease)
			epoch = (uint64(day) + phase) / uint64(lease)
		}
		return n.poolAddr(n.hash(sub, 21, epoch))

	case V4CGN:
		// Hot subscribers re-bind per session; the rest re-bind daily.
		var idx uint64
		if float64(n.hash(sub, 27)%(1<<20))/(1<<20) < n.V4.HotShare {
			idx = n.hash(sub, uint64(day), uint64(session), 22)
		} else {
			idx = n.hash(sub, uint64(day), 22)
		}
		return n.poolAddr(idx % uint64(max(1, n.V4.PoolSize)))

	case V4Static:
		return n.poolAddr(n.hash(sub, 23) % uint64(max(1, n.V4.PoolSize)))

	case V4StaticPool:
		idx := n.hash(sub, uint64(day), uint64(session), 24) % uint64(max(1, n.V4.PoolSize))
		return n.poolAddr(idx)

	default:
		return netaddr.Addr{}
	}
}

// V4HotAddrAt is V4AddrAt with per-session binding forced for CGN
// networks — attackers deliberately re-connect to cycle addresses.
func (n *Network) V4HotAddrAt(sub uint64, day simtime.Day, session int) netaddr.Addr {
	if n.V4.Mode != V4CGN {
		return n.V4AddrAt(sub, day, session)
	}
	idx := n.hash(sub, uint64(day), uint64(session), 22)
	return n.poolAddr(idx % uint64(max(1, n.V4.PoolSize)))
}

// poolAddr maps an index into the network's IPv4 pool.
func (n *Network) poolAddr(idx uint64) netaddr.Addr {
	return n.V4.Pool.Subnet(32, idx).Addr()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
