package netmodel

import (
	"fmt"
	"sort"

	"userv6/internal/netaddr"
	"userv6/internal/rng"
	"userv6/internal/trie"
)

// WorldConfig controls world construction.
type WorldConfig struct {
	// Seed drives all deterministic address-block and parameter choices.
	Seed uint64
	// Scale linearly adjusts shared-pool sizes (CGN pools, gateway slot
	// counts, mobile /64 pools) to the simulated population size.
	// Scale 1.0 is calibrated for roughly 200k simulated users.
	Scale float64
}

// CountryNets bundles a country's calibration row with its constructed
// access networks. The population synthesizer assigns user contexts from
// these.
type CountryNets struct {
	Country Country
	// ResV6 is the IPv6-deploying residential ISP, ResV4 the v4-only
	// one, ResLegacy the ISP with marginal (<10%) IPv6 rollout.
	ResV6, ResV4, ResLegacy *Network
	// MobV6 are the IPv6 mobile carriers with selection weights MobV6W;
	// MobV4 is the v4-only carrier.
	MobV6  []*Network
	MobV6W []float64
	MobV4  *Network
	// EntV6 and EntV4 are the aggregate enterprise networks.
	EntV6, EntV4 *Network
}

// World is the constructed internet: countries with their networks,
// global hosting and proxy providers, and routing metadata.
type World struct {
	Countries []*CountryNets
	// Hosting and Proxies are the global provider fleets used by both
	// benign VPN users and attackers.
	Hosting []*Network
	Proxies []*Network
	// Transition are the 6to4/Teredo relay pseudo-networks (§4.4).
	Transition []*Network

	networks []*Network
	asnNames map[ASN]string
	routes   *trie.Trie[ASN]

	next6    uint64 // next /32 block index
	next4    uint64 // next IPv4 /12 block index
	synthASN uint32
	scale    float64
	seed     uint64
}

// BuildWorld constructs the world deterministically from cfg.
func BuildWorld(cfg WorldConfig) *World {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	w := &World{
		asnNames: make(map[ASN]string),
		routes:   trie.New[ASN](),
		synthASN: 64512,
		scale:    cfg.Scale,
		seed:     cfg.Seed,
	}
	for _, c := range Countries() {
		w.Countries = append(w.Countries, w.buildCountry(c))
	}
	w.buildGlobal()
	return w
}

// Scale returns the pool-size scale factor the world was built with.
func (w *World) Scale() float64 { return w.scale }

// Networks returns all constructed networks, indexed by Network.ID.
func (w *World) Networks() []*Network { return w.networks }

// ASNName returns the operator name registered for an ASN.
func (w *World) ASNName(a ASN) string { return w.asnNames[a] }

// ASNOf returns the ASN announcing addr, or 0 if the address is outside
// every constructed block (which indicates a generator bug).
func (w *World) ASNOf(a netaddr.Addr) ASN {
	_, asn, ok := w.routes.Lookup(a)
	if !ok {
		return 0
	}
	return asn
}

// CountryByCode returns the CountryNets for a code, or nil.
func (w *World) CountryByCode(code string) *CountryNets {
	for _, c := range w.Countries {
		if c.Country.Code == code {
			return c
		}
	}
	return nil
}

// scaled returns base scaled by the world's scale factor, floored at min.
func (w *World) scaled(base float64, min int) int {
	v := int(base * w.scale)
	if v < min {
		v = min
	}
	return v
}

// alloc6 reserves the next IPv6 routing block of the given length under
// the synthetic global-unicast arena.
func (w *World) alloc6(bits int) netaddr.Prefix {
	base := netaddr.MustParsePrefix("2400::/6")
	block := base.Subnet(32, w.next6)
	w.next6++
	if bits <= 32 {
		return block
	}
	// Longer routing prefixes still get a dedicated /32 so blocks never
	// collide; the announced prefix is its first subnet of that length.
	return block.Subnet(bits, 0)
}

// alloc4 reserves the next IPv4 /12 pool.
func (w *World) alloc4() netaddr.Prefix {
	base := netaddr.MustParsePrefix("0.0.0.0/0")
	p := base.Subnet(12, w.next4)
	w.next4++
	return p
}

// nextSynthASN returns a fresh private-range ASN.
func (w *World) nextSynthASN() ASN {
	a := ASN(w.synthASN)
	w.synthASN++
	return a
}

// netSpec is the builder input for one network.
type netSpec struct {
	asn     ASN // 0 means allocate a synthetic ASN
	name    string
	country string
	kind    Kind
	v6      V6Policy // RoutingBlock filled by builder when Mode != V6None
	v6Bits  int      // routing block length (default 32)
	v4      V4Policy // Pool filled by builder when Mode != V4None
}

// addNetwork constructs, registers and returns a network.
func (w *World) addNetwork(s netSpec) *Network {
	asn := s.asn
	if asn == 0 {
		asn = w.nextSynthASN()
	}
	n := &Network{
		ID:      uint32(len(w.networks)),
		ASN:     asn,
		Name:    s.name,
		Country: s.country,
		Kind:    s.kind,
		V6:      s.v6,
		V4:      s.v4,
	}
	n.seed = rng.Derive(w.seed, fmt.Sprintf("net/%s/%d", s.name, n.ID))
	if n.V6.Mode != V6None {
		bits := s.v6Bits
		if bits == 0 {
			bits = 32
		}
		n.V6.RoutingBlock = w.alloc6(bits)
		w.routes.Set(n.V6.RoutingBlock, asn)
	}
	if n.V4.Mode != V4None {
		n.V4.Pool = w.alloc4()
		w.routes.Set(n.V4.Pool, asn)
	}
	w.networks = append(w.networks, n)
	w.asnNames[asn] = s.name
	return n
}

// realMobile describes a named carrier from the paper's Table 1.
type realMobile struct {
	asn    ASN
	name   string
	weight float64
}

// namedNetworks returns the paper-named operators for a country, if any.
// Countries without entries get synthetic operators.
func namedNetworks(code string) (resV6 *netSpec, mobiles []realMobile) {
	switch code {
	case "IN":
		return nil, []realMobile{{55836, "Reliance Jio", 0.8}, {0, "Airtel IN", 0.2}}
	case "US":
		return &netSpec{asn: 7922, name: "Comcast"}, []realMobile{
			{21928, "T-Mobile US", 0.30},
			{10507, "Sprint", 0.15},
			{22394, "Verizon Wireless", 0.25},
			// AT&T Mobility: the structured-IID gateway carrier behind
			// the paper's heavy IPv6 outliers (ASN 20057).
			{20057, "AT&T Mobility", 0.30},
		}
	case "GB":
		return &netSpec{asn: 5607, name: "Sky Broadband"}, nil
	case "DE":
		return &netSpec{asn: 3320, name: "Deutsche Telekom"}, nil
	case "TH":
		return nil, []realMobile{{131445, "Advanced Wireless Network", 1}}
	case "BR":
		return &netSpec{asn: 26599, name: "Telefonica Brasil"}, []realMobile{{26615, "TIM Brasil", 1}}
	default:
		return nil, nil
	}
}

func (w *World) buildCountry(c Country) *CountryNets {
	cn := &CountryNets{Country: c}
	namedRes, namedMob := namedNetworks(c.Code)

	// IPv6 residential ISP: household NAT v4 + delegated-prefix SLAAC
	// v6 with daily privacy-IID rotation on most lines.
	resSpec := netSpec{
		country: c.Code, kind: Residential,
		name: "Res6-" + c.Code,
		v6: V6Policy{
			Mode:            V6SLAAC,
			DelegatedLen:    56,
			IIDRotationDays: 1,
			// A delegated prefix occasionally re-draws (CPE reboots,
			// ISP renumbering): every ~45 days.
			DelegationRotationDays: 45,
		},
		v4: V4Policy{Mode: V4Household, LeaseDays: 9, StaticShare: 0.18},
	}
	if namedRes != nil {
		resSpec.asn, resSpec.name = namedRes.asn, namedRes.name
	}
	cn.ResV6 = w.addNetwork(resSpec)
	cn.ResV6.V6SubscriberShare = subscriberShareFor(resSpec.asn)

	// Predominantly-v4 residential ISP: in countries with meaningful
	// IPv6 momentum it runs a small trial deployment (<10% of lines),
	// elsewhere none at all — together with the legacy ISPs this yields
	// the paper's §4.2 bands (10.7% of ASNs zero-v6, 28.3% under 10%).
	res4 := netSpec{
		country: c.Code, kind: Residential, name: "Res4-" + c.Code,
		v4: V4Policy{Mode: V4Household, LeaseDays: 11, StaticShare: 0.22},
	}
	if c.ResV6 > 0.05 {
		res4.v6 = V6Policy{Mode: V6SLAAC, DelegatedLen: 56, IIDRotationDays: 1, DelegationRotationDays: 25}
	}
	cn.ResV4 = w.addNetwork(res4)
	cn.ResV4.V6SubscriberShare = 0.03

	// Legacy ISP: IPv6 exists but reaches only a sliver of subscribers.
	cn.ResLegacy = w.addNetwork(netSpec{
		country: c.Code, kind: Residential, name: "ResLegacy-" + c.Code,
		v6: V6Policy{Mode: V6SLAAC, DelegatedLen: 56, IIDRotationDays: 1, DelegationRotationDays: 30},
		v4: V4Policy{Mode: V4Household, LeaseDays: 29, StaticShare: 0.25},
	})
	cn.ResLegacy.V6SubscriberShare = 0.13

	// IPv6 mobile carriers: per-session /64 v6 + CGN v4. The /64 pool
	// and CGN pool scale with the population.
	mobs := namedMob
	if len(mobs) == 0 {
		mobs = []realMobile{{0, "Mob6-" + c.Code, 1}}
	}
	for _, m := range mobs {
		spec := netSpec{
			asn: m.asn, name: m.name, country: c.Code, kind: Mobile,
			v6: V6Policy{
				Mode: V6PerSessionSubnet,
				// Finite PGW /64 pool: multiple users share a /64
				// within a week, per Fig. 9's /64 aggregation.
				PoolSize:           w.scaled(4000, 64),
				SubnetLifetimeDays: 14,
			},
			v4: V4Policy{Mode: V4CGN, PoolSize: w.scaled(2500, 128), HotShare: 0.5},
		}
		if m.asn == 20057 {
			// AT&T Mobility: gateway aggregation with structured IIDs.
			spec.kind = MobileGateway
			spec.v6 = V6Policy{
				Mode:            V6Gateway,
				Gateways:        w.scaled(40, 3),
				SlotsPerGateway: 4,
			}
		}
		n := w.addNetwork(spec)
		n.V6SubscriberShare = mobileShareFor(m.asn)
		cn.MobV6 = append(cn.MobV6, n)
		cn.MobV6W = append(cn.MobV6W, m.weight)
	}

	// v4-only carrier. Indonesia's is the mega-CGN (Telkom 23693 plus
	// Axiata/Indosat share its profile); India's v4 carrier is Vodafone.
	mv4 := netSpec{
		country: c.Code, kind: Mobile, name: "Mob4-" + c.Code,
		v4: V4Policy{Mode: V4CGN, PoolSize: w.scaled(2500, 128), HotShare: 0.5},
	}
	if c.MobV6 > 0.05 {
		// Carriers in markets with any v6 momentum run small trials.
		mv4.v6 = V6Policy{Mode: V6PerSessionSubnet, PoolSize: w.scaled(4000, 64), SubnetLifetimeDays: 14}
	}
	switch c.Code {
	case "ID":
		mv4.asn, mv4.name = 23693, "Telkom Indonesia"
		// Mega-CGN: a tiny public pool serving a huge base — the
		// source of the paper's 830k-users-per-IPv4 outliers.
		mv4.v4.PoolSize = w.scaled(24, 4)
	case "IN":
		mv4.asn, mv4.name = 38266, "Vodafone India"
		mv4.v4.PoolSize = w.scaled(90, 8)
	}
	cn.MobV4 = w.addNetwork(mv4)
	cn.MobV4.V6SubscriberShare = 0.04

	// Enterprise aggregates: static egress v4; v6 side adds static
	// per-site subnets with weekly-rotating device IIDs.
	cn.EntV6 = w.addNetwork(netSpec{
		country: c.Code, kind: Enterprise, name: "Ent6-" + c.Code,
		v6:     V6Policy{Mode: V6SLAAC, DelegatedLen: 64, IIDRotationDays: 7},
		v6Bits: 40,
		v4:     V4Policy{Mode: V4Static, PoolSize: w.scaled(700, 32)},
	})
	cn.EntV6.V6SubscriberShare = 0.55
	ent4 := netSpec{
		country: c.Code, kind: Enterprise, name: "Ent4-" + c.Code,
		v4: V4Policy{Mode: V4Static, PoolSize: w.scaled(700, 32)},
	}
	if c.EntV6 > 0.04 {
		// A few sites in most enterprise aggregates dual-stack.
		ent4.v6 = V6Policy{Mode: V6SLAAC, DelegatedLen: 64, IIDRotationDays: 7}
		ent4.v6Bits = 40
	}
	cn.EntV4 = w.addNetwork(ent4)
	cn.EntV4.V6SubscriberShare = 0.12
	return cn
}

// buildGlobal constructs the hosting and proxy fleets.
func (w *World) buildGlobal() {
	hosting := []struct {
		asn  ASN
		name string
	}{
		{16276, "OVH"},
		{14061, "DigitalOcean"},
		{0, "SynthHost-1"},
		{0, "SynthHost-2"},
	}
	for _, h := range hosting {
		n := w.addNetwork(netSpec{
			asn: h.asn, name: h.name, country: "ZZ", kind: Hosting,
			v6: V6Policy{Mode: V6StaticHost},
			v4: V4Policy{Mode: V4Static, PoolSize: w.scaled(4000, 256)},
		})
		n.V6SubscriberShare = 1
		w.Hosting = append(w.Hosting, n)
	}
	proxies := []struct {
		asn  ASN
		name string
	}{
		{13335, "Cloudflare"},
		{9009, "M247"},
		{0, "SynthVPN"},
	}
	for _, p := range proxies {
		n := w.addNetwork(netSpec{
			asn: p.asn, name: p.name, country: "ZZ", kind: Proxy,
			v6: V6Policy{Mode: V6StaticPool, PoolSize: w.scaled(400, 48)},
			v4: V4Policy{Mode: V4StaticPool, PoolSize: w.scaled(100, 12)},
		})
		n.V6SubscriberShare = 1
		w.Proxies = append(w.Proxies, n)
	}

	// 6to4 and Teredo transition relays: IPv6 inside the well-known
	// transition prefixes, tunneled over a household IPv4 line.
	for _, tr := range []struct {
		name  string
		block string
	}{
		{"6to4 Relay", "2002::/16"},
		{"Teredo Relay", "2001::/32"},
	} {
		n := w.addNetwork(netSpec{
			name: tr.name, country: "ZZ", kind: Residential,
			v4: V4Policy{Mode: V4Household, LeaseDays: 23},
		})
		// Transition blocks are fixed by RFC, not drawn from the arena.
		n.V6 = V6Policy{Mode: V6SLAAC, RoutingBlock: netaddr.MustParsePrefix(tr.block), DelegatedLen: 56, IIDRotationDays: 1}
		n.V6SubscriberShare = 1
		w.routes.Set(n.V6.RoutingBlock, n.ASN)
		w.Transition = append(w.Transition, n)
	}
}

// subscriberShareFor returns the fraction of a residential ISP's
// subscribers with working IPv6, using Table 1's published ratios for
// the named operators.
func subscriberShareFor(asn ASN) float64 {
	switch asn {
	case 5607: // Sky Broadband
		return 0.95
	case 3320: // Deutsche Telekom
		return 0.83
	case 7922: // Comcast
		return 0.82
	case 26599: // Telefonica Brasil
		return 0.86
	default:
		return 0.75
	}
}

// mobileShareFor is subscriberShareFor for mobile carriers.
func mobileShareFor(asn ASN) float64 {
	switch asn {
	case 55836: // Reliance Jio
		return 0.96
	case 21928: // T-Mobile US
		return 0.95
	case 131445: // Advanced Wireless Network
		return 0.88
	case 10507: // Sprint
		return 0.86
	case 22394: // Verizon Wireless
		return 0.86
	case 20057: // AT&T Mobility
		return 0.80
	case 26615: // TIM Brasil
		return 0.82
	default:
		return 0.72
	}
}

// TopASNsByV6Share returns the constructed networks ordered by their
// configured subscriber IPv6 share (descending), for Table 1 sanity
// checks. Measurement-based rankings come from the analyzers.
func (w *World) TopASNsByV6Share(k int) []*Network {
	relay := make(map[*Network]bool, len(w.Transition))
	for _, n := range w.Transition {
		relay[n] = true
	}
	nets := make([]*Network, 0, len(w.networks))
	for _, n := range w.networks {
		if n.HasV6() && n.Kind != Hosting && n.Kind != Proxy && !relay[n] {
			nets = append(nets, n)
		}
	}
	sort.Slice(nets, func(i, j int) bool {
		if nets[i].V6SubscriberShare != nets[j].V6SubscriberShare {
			return nets[i].V6SubscriberShare > nets[j].V6SubscriberShare
		}
		return nets[i].ASN < nets[j].ASN
	})
	if k < len(nets) {
		nets = nets[:k]
	}
	return nets
}
