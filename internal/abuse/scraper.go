package abuse

import (
	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/rng"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// The paper's §8 names "attacks that don't require accounts (e.g.,
// public data scraping)" as the attacker class IP-based defenses matter
// most for — a scraper has no account to ban, so the source address is
// the only handle. ScraperGen models logged-out scraping fleets: bots on
// hosting and proxy infrastructure issuing large request volumes with no
// user identity.

// ScraperIDBase marks scraper observations: they carry synthetic entity
// IDs in a dedicated range (a real platform would see no user ID at all;
// the ID here identifies the bot for evaluation purposes only).
const ScraperIDBase uint64 = 1 << 52

// ScraperConfig tunes the scraping model.
type ScraperConfig struct {
	Seed uint64
	// Bots is the fleet size; BotLifetimeDays how long a bot keeps one
	// identity/address before rotating.
	Bots            int
	BotLifetimeDays int
	// RequestsMean is the mean requests per bot-day — scrapers are loud.
	RequestsMean float64
	// V6Share is the fraction of bots scraping over IPv6 (hosting /64s
	// with hopping IIDs); the rest use static hosting IPv4.
	V6Share float64
	// SessionsMean is the mean address rotations per bot-day on IPv6.
	SessionsMean float64
}

// DefaultScraperConfig returns defaults scaled for a 200k-user world.
func DefaultScraperConfig() ScraperConfig {
	return ScraperConfig{
		Seed:            1,
		Bots:            220,
		BotLifetimeDays: 6,
		RequestsMean:    6000,
		V6Share:         0.45,
		SessionsMean:    25,
	}
}

// ScraperGen emits scraper telemetry over hosting infrastructure.
type ScraperGen struct {
	World *netmodel.World
	Cfg   ScraperConfig
	seed  uint64
}

// NewScraperGen builds a scraper generator over the given world.
func NewScraperGen(w *netmodel.World, cfg ScraperConfig) *ScraperGen {
	return &ScraperGen{World: w, Cfg: cfg, seed: rng.Derive(cfg.Seed, "scrapers")}
}

// GenerateDay emits one day of scraper observations. Observations carry
// Abusive = true and IDs in the scraper range.
func (g *ScraperGen) GenerateDay(d simtime.Day, emit telemetry.EmitFunc) {
	for b := 0; b < g.Cfg.Bots; b++ {
		g.botDay(uint64(b), d, emit)
	}
}

// Generate emits days [from, to] inclusive.
func (g *ScraperGen) Generate(from, to simtime.Day, emit telemetry.EmitFunc) {
	for d := from; d <= to; d++ {
		g.GenerateDay(d, emit)
	}
}

func (g *ScraperGen) botDay(bot uint64, d simtime.Day, emit telemetry.EmitFunc) {
	src := rng.New(rng.DeriveN(rng.DeriveN(g.seed, bot), uint64(d)))
	// Bot identity rotates every BotLifetimeDays (new rented host).
	life := uint64(max(1, g.Cfg.BotLifetimeDays))
	epoch := (uint64(d) + rng.DeriveN(g.seed, bot+0xb07)%life) / life
	hostID := rng.DeriveN(rng.DeriveN(g.seed, bot+1), epoch)
	net := g.World.Hosting[int(hostID%uint64(len(g.World.Hosting)))]

	reqs := 1 + src.Poisson(g.Cfg.RequestsMean)
	v6 := float64(rng.DeriveN(g.seed, bot+2)%1000)/1000 < g.Cfg.V6Share

	id := ScraperIDBase + bot
	if !v6 {
		o := scraperObs(id, d, net.V4AddrAt(hostID, d, 0), net.ASN, reqs)
		emit(o)
		return
	}
	// IPv6 scraping: rotate IIDs within the host /64 across sessions to
	// dodge per-address limits — which is exactly why the paper points
	// rate limiting at /64 granularity.
	sessions := 1 + src.Poisson(g.Cfg.SessionsMean)
	per := reqs / sessions
	for s := 0; s < sessions; s++ {
		iid := rng.DeriveN(rng.DeriveN(hostID, uint64(d)), uint64(s)+0x5c)
		n := per
		if s == 0 {
			n = reqs - per*(sessions-1)
		}
		if n <= 0 {
			n = 1
		}
		emit(scraperObs(id, d, net.HostAddrWithIID(hostID, iid), net.ASN, n))
	}
}

func scraperObs(id uint64, d simtime.Day, addr netaddr.Addr, asn netmodel.ASN, reqs int) telemetry.Observation {
	o := telemetry.Observation{
		Day:      d,
		UserID:   id,
		Addr:     addr,
		ASN:      asn,
		Requests: uint32(reqs),
		Abusive:  true,
	}
	o.SetCountry("ZZ")
	return o
}
