package abuse

import (
	"userv6/internal/netmodel"
	"userv6/internal/population"
	"userv6/internal/rng"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// The paper's §8 also names account hijacking as an unexplored attacker
// class. HijackGen models it: a small fraction of *benign* accounts are
// compromised for a few days, during which attacker activity is emitted
// from attacker infrastructure under the victim's user ID — alongside
// the victim's own continuing legitimate activity. The signature that
// makes hijacks detectable at the IP level is exactly this mixture: an
// established account's address set suddenly gains hosting-network
// addresses far from its history.

// HijackConfig tunes the hijacking model.
type HijackConfig struct {
	Seed uint64
	// VictimShare is the fraction of benign users compromised at some
	// point in the study window.
	VictimShare float64
	// DurationDays is how long a compromise lasts before recovery.
	DurationDays int
	// RequestsMean is the attacker's request volume per hijacked
	// account-day.
	RequestsMean float64
}

// DefaultHijackConfig returns the default hijacking parameters.
func DefaultHijackConfig() HijackConfig {
	return HijackConfig{
		Seed:         1,
		VictimShare:  0.004,
		DurationDays: 3,
		RequestsMean: 25,
	}
}

// HijackGen emits attacker-side telemetry for compromised accounts. The
// victims' own benign telemetry continues to come from the benign
// generator; a consumer joining on user ID sees the mixture.
type HijackGen struct {
	World *netmodel.World
	Pop   *population.Population
	Cfg   HijackConfig
	seed  uint64
}

// NewHijackGen builds a hijack generator over a synthesized population.
func NewHijackGen(w *netmodel.World, pop *population.Population, cfg HijackConfig) *HijackGen {
	return &HijackGen{World: w, Pop: pop, Cfg: cfg, seed: rng.Derive(cfg.Seed, "hijack")}
}

// Victim describes one compromised account.
type Victim struct {
	UserID uint64
	// Start is the first compromised day; Duration the number of days.
	Start    simtime.Day
	Duration int
}

// CompromisedOn reports whether the victim is compromised on day d.
func (v Victim) CompromisedOn(d simtime.Day) bool {
	return d >= v.Start && int(d-v.Start) < v.Duration
}

// VictimOf returns the victim record for a user, or false if the user is
// never compromised. Deterministic per (seed, user).
func (g *HijackGen) VictimOf(uid uint64) (Victim, bool) {
	h := rng.DeriveN(g.seed, uid)
	if float64(h%(1<<20))/(1<<20) >= g.Cfg.VictimShare {
		return Victim{}, false
	}
	start := simtime.Day(rng.DeriveN(h, 1) % uint64(simtime.StudyDays))
	return Victim{UserID: uid, Start: start, Duration: max(1, g.Cfg.DurationDays)}, true
}

// Victims returns all victims in the population, for evaluation.
func (g *HijackGen) Victims() []Victim {
	var out []Victim
	for i := range g.Pop.Users {
		if v, ok := g.VictimOf(g.Pop.Users[i].ID); ok {
			out = append(out, v)
		}
	}
	return out
}

// GenerateDay emits the attacker-side observations of all accounts
// compromised on day d. Observations carry Abusive = true under the
// victim's own user ID.
func (g *HijackGen) GenerateDay(d simtime.Day, emit telemetry.EmitFunc) {
	for i := range g.Pop.Users {
		uid := g.Pop.Users[i].ID
		v, ok := g.VictimOf(uid)
		if !ok || !v.CompromisedOn(d) {
			continue
		}
		src := rng.New(rng.DeriveN(rng.DeriveN(g.seed, uid+0x41), uint64(d)))
		// The attacker works the account from a rented host, keeping
		// one address for the whole compromise.
		hostID := rng.DeriveN(g.seed, uid+0x42)
		net := g.World.Hosting[int(hostID%uint64(len(g.World.Hosting)))]
		reqs := 1 + src.Poisson(g.Cfg.RequestsMean)
		addr := net.HostAddrWithIID(hostID, rng.DeriveN(hostID, uid))
		if src.Bool(0.25) {
			addr = net.V4AddrAt(hostID, d, 0)
		}
		o := telemetry.Observation{
			Day:      d,
			UserID:   uid,
			Addr:     addr,
			ASN:      net.ASN,
			Requests: uint32(reqs),
			Abusive:  true,
		}
		o.SetCountry(g.Pop.Users[i].Country)
		emit(o)
	}
}

// Generate emits days [from, to] inclusive.
func (g *HijackGen) Generate(from, to simtime.Day, emit telemetry.EmitFunc) {
	for d := from; d <= to; d++ {
		g.GenerateDay(d, emit)
	}
}
