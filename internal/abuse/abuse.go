// Package abuse models attackers: campaigns that continuously create
// abusive accounts, run them through rented or hijacked infrastructure,
// and lose most of them to detection within a day.
//
// The model encodes the behavioral findings of the paper's abusive-
// account analyses:
//
//   - the population is heavily skewed to one-day lifespans because the
//     platform detects most accounts quickly (§3.3);
//   - accounts use ~one address per day, with IPv4 counts at or above
//     IPv6 counts (forced CGN cycling) — the inverse of benign users
//     (§5.1.2);
//   - IPv6 exits are dominated by hosting providers where the attacker
//     owns a whole /64 and hops interface identifiers, so abusive IPv6
//     addresses are isolated from benign users but cluster inside /64s
//     (§6.1.2, §7.1);
//   - IPv4 exits ride CGN carriers and proxies shared with large benign
//     populations, producing the collateral-damage asymmetry (§6.1.2).
//
// Like the network models, everything is a deterministic function of
// (seed, account, day), so generation is streaming and reproducible.
package abuse

import (
	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/rng"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// AccountIDBase offsets abusive account IDs so they can never collide
// with benign user IDs.
const AccountIDBase uint64 = 1 << 48

// attackerSubBase offsets subscriber identities attackers use on shared
// carrier networks, so they draw from the same address pools as benign
// subscribers without aliasing a benign identity.
const attackerSubBase uint64 = 1 << 40

// ExitKind is the kind of infrastructure an account exits through.
type ExitKind uint8

const (
	// ExitHosting is a rented server: static IPv4, attacker-controlled
	// /64 on IPv6.
	ExitHosting ExitKind = iota
	// ExitMobile is a carrier data subscription (v6 per-session /64s,
	// CGN v4).
	ExitMobile
	// ExitGateway is a subscription on the structured-IID gateway
	// carrier.
	ExitGateway
	// ExitProxy is a commercial proxy/VPN egress.
	ExitProxy
	// ExitCGN is a v4-only carrier subscription (no IPv6 at all).
	ExitCGN
)

// String labels the exit kind.
func (k ExitKind) String() string {
	switch k {
	case ExitHosting:
		return "hosting"
	case ExitMobile:
		return "mobile"
	case ExitGateway:
		return "gateway"
	case ExitProxy:
		return "proxy"
	default:
		return "cgn"
	}
}

// Config tunes the attacker model.
type Config struct {
	Seed uint64
	// AccountsPerDay is the number of new abusive accounts created per
	// day across all campaigns.
	AccountsPerDay int
	// Campaigns is the number of independent attacker groups.
	Campaigns int
	// DetectFirstDay is the probability an account is caught within its
	// first active day (the paper: "the vast majority").
	DetectFirstDay float64
	// SurvivorDailyDeath is the per-day death probability for accounts
	// that evade first-day detection.
	SurvivorDailyDeath float64
	// MaxLifeDays bounds account lifespans.
	MaxLifeDays int
	// HostsPerCampaign is the rented-server fleet size per campaign;
	// HostLifetimeDays is how long a host is kept before replacement;
	// AddrLifetimeDays is how long the attacker keeps one IPv6 IID on a
	// host before hopping.
	HostsPerCampaign, HostLifetimeDays, AddrLifetimeDays int
	// MobileSubsPerCampaign and GatewaySubsPerCampaign size the carrier
	// subscription pools.
	MobileSubsPerCampaign, GatewaySubsPerCampaign int
	// Exit mix (weights, normalized internally).
	HostingW, MobileW, GatewayW, ProxyW, CGNW float64
	// RequestsMean is the mean requests per account-day.
	RequestsMean float64
	// V4ExtraSessionMean adds forced CGN re-connects: extra IPv4
	// sessions per account-day beyond the first.
	V4ExtraSessionMean float64
}

// DefaultConfig returns the calibrated attacker defaults for a 200k-user
// world (scale with population size).
func DefaultConfig() Config {
	return Config{
		Seed:                   1,
		AccountsPerDay:         700,
		Campaigns:              12,
		DetectFirstDay:         0.85,
		SurvivorDailyDeath:     0.45,
		MaxLifeDays:            21,
		HostsPerCampaign:       8,
		HostLifetimeDays:       5,
		AddrLifetimeDays:       2,
		MobileSubsPerCampaign:  800,
		GatewaySubsPerCampaign: 300,
		HostingW:               0.18,
		MobileW:                0.16,
		GatewayW:               0.08,
		ProxyW:                 0.14,
		CGNW:                   0.44,
		RequestsMean:           14,
		V4ExtraSessionMean:     1.2,
	}
}

// Generator produces abusive-account telemetry.
type Generator struct {
	World *netmodel.World
	Cfg   Config
	seed  uint64
	// carrier shortlists the attacker concentrates on.
	cgnNets     []*netmodel.Network
	mobileNets  []*netmodel.Network
	gatewayNets []*netmodel.Network
	mix         []float64
}

// NewGenerator builds a generator over the given world.
func NewGenerator(w *netmodel.World, cfg Config) *Generator {
	g := &Generator{World: w, Cfg: cfg, seed: rng.Derive(cfg.Seed, "abuse")}
	// Attackers concentrate on large v4-heavy carriers (cheap SIM pools)
	// and the v6 mobile carriers of big countries.
	for _, code := range []string{"ID", "IN", "PH", "VN", "BR"} {
		if c := w.CountryByCode(code); c != nil {
			g.cgnNets = append(g.cgnNets, c.MobV4)
			if len(c.MobV6) > 0 {
				g.mobileNets = append(g.mobileNets, c.MobV6[0])
			}
		}
	}
	if us := w.CountryByCode("US"); us != nil {
		for _, m := range us.MobV6 {
			if m.Kind == netmodel.MobileGateway {
				g.gatewayNets = append(g.gatewayNets, m)
			}
		}
	}
	g.mix = []float64{cfg.HostingW, cfg.MobileW, cfg.GatewayW, cfg.ProxyW, cfg.CGNW}
	return g
}

// Account describes one abusive account's static properties.
type Account struct {
	// ID is the platform user ID (offset by AccountIDBase).
	ID uint64
	// Index is the global creation index.
	Index uint64
	// Campaign identifies the owning attacker group.
	Campaign int
	// Birth is the first active day; Life the number of active days.
	Birth simtime.Day
	Life  int
	// Exit is the infrastructure kind the account operates through.
	Exit ExitKind
}

// AccountAt reconstructs the account with global index k.
func (g *Generator) AccountAt(k uint64) Account {
	src := rng.New(rng.DeriveN(g.seed, k))
	a := Account{
		ID:       AccountIDBase + k,
		Index:    k,
		Campaign: int(k % uint64(max(1, g.Cfg.Campaigns))),
		Birth:    simtime.Day(k / uint64(max(1, g.Cfg.AccountsPerDay))),
	}
	if src.Bool(g.Cfg.DetectFirstDay) {
		a.Life = 1
	} else {
		a.Life = 2 + src.Geometric(g.Cfg.SurvivorDailyDeath)
		if a.Life > g.Cfg.MaxLifeDays {
			a.Life = g.Cfg.MaxLifeDays
		}
	}
	a.Exit = ExitKind(src.WeightedChoice(g.mix))
	return a
}

// ActiveOn reports whether the account is active on day d.
func (a Account) ActiveOn(d simtime.Day) bool {
	return d >= a.Birth && int(d-a.Birth) < a.Life
}

// ForEachActive calls fn for every account active on day d.
func (g *Generator) ForEachActive(d simtime.Day, fn func(Account)) {
	perDay := uint64(max(1, g.Cfg.AccountsPerDay))
	firstBirth := int64(d) - int64(g.Cfg.MaxLifeDays) + 1
	if firstBirth < 0 {
		firstBirth = 0
	}
	start := uint64(firstBirth) * perDay
	end := (uint64(d) + 1) * perDay
	for k := start; k < end; k++ {
		if a := g.AccountAt(k); a.ActiveOn(d) {
			fn(a)
		}
	}
}

// GenerateDay emits the telemetry of all abusive accounts active on day
// d. Observations carry Abusive = true.
func (g *Generator) GenerateDay(d simtime.Day, emit telemetry.EmitFunc) {
	g.ForEachActive(d, func(a Account) {
		g.accountDay(a, d, emit)
	})
}

// Generate emits abusive telemetry for days [from, to] inclusive.
func (g *Generator) Generate(from, to simtime.Day, emit telemetry.EmitFunc) {
	for d := from; d <= to; d++ {
		g.GenerateDay(d, emit)
	}
}

// accountDay emits one account's observations for one day.
func (g *Generator) accountDay(a Account, d simtime.Day, emit telemetry.EmitFunc) {
	src := rng.New(rng.DeriveN(rng.DeriveN(g.seed, a.Index), uint64(d)+1))
	reqs := 1 + src.Poisson(g.Cfg.RequestsMean)

	var v6 netaddr.Addr
	var v4s []netaddr.Addr
	var net *netmodel.Network

	campaignSeed := rng.DeriveN(g.seed, uint64(a.Campaign)+0x5eed)

	switch a.Exit {
	case ExitHosting:
		net, v6, v4s = g.hostingExit(a, d, campaignSeed)
	case ExitMobile:
		// Attackers favor the carriers with the largest user bases
		// (cheap SIMs, good cover): IN-class carriers get the bulk.
		mi := int(rng.DeriveN(campaignSeed, a.Index+0x3b) % 10)
		if mi < 6 {
			mi = 1 // the IN carrier slot
		} else {
			mi = mi % len(g.mobileNets)
		}
		net = g.mobileNets[mi%len(g.mobileNets)]
		sub := attackerSubBase + rng.DeriveN(campaignSeed, a.Index)%uint64(max(1, g.Cfg.MobileSubsPerCampaign)) + uint64(a.Campaign)<<20
		v6 = net.V6AddrAt(sub, 0, d, int(a.Index%7), false)
		if rng.DeriveN(g.seed, a.Index+0x4e)%100 < 15 {
			v4s = append(v4s, net.V4AddrAt(sub, d, int(a.Index%7)))
		}
	case ExitGateway:
		if len(g.gatewayNets) > 0 {
			net = g.gatewayNets[int(a.Index)%len(g.gatewayNets)]
			sub := attackerSubBase + rng.DeriveN(campaignSeed, a.Index)%uint64(max(1, g.Cfg.GatewaySubsPerCampaign)) + uint64(a.Campaign)<<20
			v6 = net.V6AddrAt(sub, 0, d, 0, false)
			if rng.DeriveN(g.seed, a.Index+0x4d)%100 < 15 {
				v4s = append(v4s, net.V4AddrAt(sub, d, 0))
			}
		}
	case ExitProxy:
		net = g.World.Proxies[int(a.Index)%len(g.World.Proxies)]
		sub := attackerSubBase + a.Index
		v6 = net.V6AddrAt(sub, 0, d, 0, false)
		if rng.DeriveN(g.seed, a.Index+0x4c)%100 < 30 {
			v4s = append(v4s, net.V4AddrAt(sub, d, 0))
		}
	case ExitCGN:
		// Attackers concentrate on the cheapest SIM markets, which are
		// also the carriers with the smallest (mega-CGN) pools — this is
		// what makes day-n IPv4 indicators recur on day n+1 (Fig. 11).
		pick := int(rng.DeriveN(campaignSeed, a.Index+0xc91) % 10)
		switch {
		case pick < 6:
			pick = 0 // Telkom-class mega-CGN
		case pick < 8:
			pick = 1 // Vodafone-class
		default:
			pick = 2 + pick%(len(g.cgnNets)-2)
		}
		net = g.cgnNets[pick%len(g.cgnNets)]
		sub := attackerSubBase + rng.DeriveN(campaignSeed, a.Index)%256 + uint64(a.Campaign)<<20
		// Forced CGN cycling: extra sessions mean extra v4 addresses.
		sessions := 1 + src.Poisson(g.Cfg.V4ExtraSessionMean)
		for s := 0; s < sessions; s++ {
			v4s = append(v4s, net.V4HotAddrAt(sub, d, s))
		}
	}
	if net == nil {
		return
	}

	country := net.Country
	// Split requests: v6-capable exits send most traffic over v6, and
	// hosting exits are effectively v6-only (the occasional account
	// falls back to the host's static IPv4).
	r6 := 0
	if v6.IsValid() {
		r6 = reqs * 7 / 10
		if a.Exit == ExitHosting && rng.DeriveN(g.seed, a.Index+0x4f)%100 >= 8 {
			r6 = reqs
		}
		if len(v4s) == 0 {
			r6 = reqs
		}
	}
	r4 := reqs - r6
	if r6 > 0 {
		emit(g.obs(a, d, v6, net.ASN, country, r6))
	}
	if r4 > 0 && len(v4s) > 0 {
		per := r4 / len(v4s)
		for i, addr := range v4s {
			if !addr.IsValid() {
				continue
			}
			n := per
			if i == 0 {
				n = r4 - per*(len(v4s)-1)
			}
			if n <= 0 {
				n = 1
			}
			emit(g.obs(a, d, addr, net.ASN, country, n))
		}
	}
}

// hostingExit computes the addresses of a hosting-based account-day.
// Hosts churn every HostLifetimeDays; the attacker hops the host's IPv6
// IID every AddrLifetimeDays; IPv4 is the host's static address.
func (g *Generator) hostingExit(a Account, d simtime.Day, campaignSeed uint64) (*netmodel.Network, netaddr.Addr, []netaddr.Addr) {
	hosts := max(1, g.Cfg.HostsPerCampaign)
	slot := rng.DeriveN(campaignSeed, a.Index) % uint64(hosts)
	// Host identity at this slot rotates with a per-slot phase.
	lifetime := uint64(max(1, g.Cfg.HostLifetimeDays))
	hostEpoch := (uint64(d) + rng.DeriveN(campaignSeed, slot)%lifetime) / lifetime
	hostID := rng.DeriveN(rng.DeriveN(campaignSeed, slot+1), hostEpoch)
	net := g.World.Hosting[int(hostID%uint64(len(g.World.Hosting)))]

	// IPv6: each account runs its own interface identifier on the host
	// /64 and keeps it for its lifetime — so addresses are single-
	// account, survivors recur day over day, and the accounts of one
	// host cluster inside its /64 (Figs. 8, 10a, 11).
	iid := rng.DeriveN(rng.DeriveN(hostID, a.Index), 0x11d)
	v6 := net.HostAddrWithIID(hostID, iid)
	v4 := net.V4AddrAt(hostID, d, 0)
	return net, v6, []netaddr.Addr{v4}
}

func (g *Generator) obs(a Account, d simtime.Day, addr netaddr.Addr, asn netmodel.ASN, country string, reqs int) telemetry.Observation {
	o := telemetry.Observation{
		Day:      d,
		UserID:   a.ID,
		Addr:     addr,
		ASN:      asn,
		Requests: uint32(reqs),
		Abusive:  true,
	}
	o.SetCountry(country)
	return o
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
