package abuse

import (
	"math"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

func testGen(t *testing.T) *Generator {
	t.Helper()
	world := netmodel.BuildWorld(netmodel.WorldConfig{Seed: 3, Scale: 0.05})
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.AccountsPerDay = 120
	return NewGenerator(world, cfg)
}

func TestAccountsDeterministic(t *testing.T) {
	g := testGen(t)
	for k := uint64(0); k < 500; k++ {
		a1, a2 := g.AccountAt(k), g.AccountAt(k)
		if a1 != a2 {
			t.Fatalf("account %d not deterministic", k)
		}
		if a1.ID != AccountIDBase+k {
			t.Fatalf("account %d ID = %d", k, a1.ID)
		}
		if a1.Life < 1 || a1.Life > g.Cfg.MaxLifeDays {
			t.Fatalf("account %d life = %d", k, a1.Life)
		}
		if a1.Campaign < 0 || a1.Campaign >= g.Cfg.Campaigns {
			t.Fatalf("account %d campaign = %d", k, a1.Campaign)
		}
	}
}

func TestLifespanSkew(t *testing.T) {
	g := testGen(t)
	oneDay, total := 0, 5000
	for k := uint64(0); k < uint64(total); k++ {
		if g.AccountAt(k).Life == 1 {
			oneDay++
		}
	}
	share := float64(oneDay) / float64(total)
	if math.Abs(share-g.Cfg.DetectFirstDay) > 0.03 {
		t.Fatalf("one-day share = %v, want ~%v", share, g.Cfg.DetectFirstDay)
	}
}

func TestActiveWindow(t *testing.T) {
	g := testGen(t)
	a := g.AccountAt(uint64(g.Cfg.AccountsPerDay) * 10) // born day 10
	if a.Birth != 10 {
		t.Fatalf("birth = %v", a.Birth)
	}
	if a.ActiveOn(9) {
		t.Fatal("active before birth")
	}
	if !a.ActiveOn(10) {
		t.Fatal("inactive on birth day")
	}
	if a.ActiveOn(10 + simtime.Day(a.Life)) {
		t.Fatal("active after death")
	}
}

func TestForEachActiveMatchesActiveOn(t *testing.T) {
	g := testGen(t)
	day := simtime.Day(25)
	seen := make(map[uint64]bool)
	g.ForEachActive(day, func(a Account) {
		if !a.ActiveOn(day) {
			t.Fatalf("ForEachActive yielded inactive account %d", a.Index)
		}
		if seen[a.Index] {
			t.Fatalf("account %d visited twice", a.Index)
		}
		seen[a.Index] = true
	})
	// Brute force over the feasible index range.
	lo := uint64(0)
	hi := uint64(day+1) * uint64(g.Cfg.AccountsPerDay)
	want := 0
	for k := lo; k < hi; k++ {
		if g.AccountAt(k).ActiveOn(day) {
			want++
			if !seen[k] {
				t.Fatalf("active account %d missed", k)
			}
		}
	}
	if len(seen) != want {
		t.Fatalf("visited %d, want %d", len(seen), want)
	}
}

func TestGenerateDayObservations(t *testing.T) {
	g := testGen(t)
	day := simtime.Day(30)
	accounts := make(map[uint64]bool)
	n := 0
	g.GenerateDay(day, func(o telemetry.Observation) {
		n++
		if !o.Abusive {
			t.Fatal("abusive generator emitted benign observation")
		}
		if o.Day != day {
			t.Fatalf("day = %v", o.Day)
		}
		if !o.Addr.IsValid() {
			t.Fatal("invalid address")
		}
		if o.UserID < AccountIDBase {
			t.Fatal("account ID below base")
		}
		if o.Requests == 0 {
			t.Fatal("zero requests")
		}
		accounts[o.UserID] = true
	})
	if n == 0 || len(accounts) == 0 {
		t.Fatal("no abusive telemetry")
	}
	// Most active accounts should emit at least one observation.
	active := 0
	g.ForEachActive(day, func(Account) { active++ })
	if len(accounts) < active*8/10 {
		t.Fatalf("only %d of %d active accounts emitted", len(accounts), active)
	}
}

func TestAddressesInsideRoutedBlocks(t *testing.T) {
	g := testGen(t)
	world := g.World
	g.GenerateDay(20, func(o telemetry.Observation) {
		if world.ASNOf(o.Addr) == 0 {
			t.Fatalf("abusive address %s outside all routed blocks", o.Addr)
		}
	})
}

func TestMostAccountsUseOneV6AddressPerDay(t *testing.T) {
	g := testGen(t)
	addrs := make(map[uint64]map[netaddr.Addr]struct{})
	g.GenerateDay(30, func(o telemetry.Observation) {
		if !o.Addr.Is6() {
			return
		}
		if addrs[o.UserID] == nil {
			addrs[o.UserID] = make(map[netaddr.Addr]struct{})
		}
		addrs[o.UserID][o.Addr] = struct{}{}
	})
	single := 0
	for _, set := range addrs {
		if len(set) == 1 {
			single++
		}
	}
	if len(addrs) == 0 {
		t.Fatal("no v6-active accounts")
	}
	if share := float64(single) / float64(len(addrs)); share < 0.9 {
		t.Fatalf("single-v6-address share = %v, want >= 0.9", share)
	}
}

func TestHostingSurvivorsKeepAddress(t *testing.T) {
	g := testGen(t)
	// Find a hosting account that survives at least 2 days.
	var target Account
	for k := uint64(0); k < 20000; k++ {
		a := g.AccountAt(k)
		if a.Exit == ExitHosting && a.Life >= 2 {
			target = a
			break
		}
	}
	if target.Life < 2 {
		t.Skip("no multi-day hosting account in range")
	}
	addrOn := func(d simtime.Day) netaddr.Addr {
		var v6 netaddr.Addr
		g.GenerateDay(d, func(o telemetry.Observation) {
			if o.UserID == target.ID && o.Addr.Is6() {
				v6 = o.Addr
			}
		})
		return v6
	}
	a1 := addrOn(target.Birth)
	a2 := addrOn(target.Birth + 1)
	if !a1.IsValid() || a1 != a2 {
		t.Fatalf("hosting survivor address changed: %s -> %s", a1, a2)
	}
}

func TestExitKindStrings(t *testing.T) {
	want := map[ExitKind]string{
		ExitHosting: "hosting", ExitMobile: "mobile", ExitGateway: "gateway",
		ExitProxy: "proxy", ExitCGN: "cgn",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestExitMixRoughlyMatchesWeights(t *testing.T) {
	g := testGen(t)
	counts := make(map[ExitKind]int)
	const n = 20000
	for k := uint64(0); k < n; k++ {
		counts[g.AccountAt(k).Exit]++
	}
	total := g.Cfg.HostingW + g.Cfg.MobileW + g.Cfg.GatewayW + g.Cfg.ProxyW + g.Cfg.CGNW
	for kind, w := range map[ExitKind]float64{
		ExitHosting: g.Cfg.HostingW, ExitMobile: g.Cfg.MobileW,
		ExitGateway: g.Cfg.GatewayW, ExitProxy: g.Cfg.ProxyW, ExitCGN: g.Cfg.CGNW,
	} {
		want := w / total
		got := float64(counts[kind]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%v share = %v, want ~%v", kind, got, want)
		}
	}
}
