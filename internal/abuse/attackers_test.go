package abuse

import (
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/population"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

func scraperGen(t *testing.T) *ScraperGen {
	t.Helper()
	world := netmodel.BuildWorld(netmodel.WorldConfig{Seed: 3, Scale: 0.05})
	cfg := DefaultScraperConfig()
	cfg.Bots = 40
	return NewScraperGen(world, cfg)
}

func TestScraperObservations(t *testing.T) {
	g := scraperGen(t)
	var v4, v6 int
	ids := make(map[uint64]bool)
	var reqs uint64
	g.GenerateDay(10, func(o telemetry.Observation) {
		if !o.Abusive {
			t.Fatal("scraper observation not abusive")
		}
		if o.UserID < ScraperIDBase {
			t.Fatal("scraper ID below base")
		}
		if !o.Addr.IsValid() {
			t.Fatal("invalid address")
		}
		ids[o.UserID] = true
		reqs += uint64(o.Requests)
		if o.Addr.Is6() {
			v6++
		} else {
			v4++
		}
	})
	if len(ids) != g.Cfg.Bots {
		t.Fatalf("bots emitted = %d, want %d", len(ids), g.Cfg.Bots)
	}
	if v4 == 0 || v6 == 0 {
		t.Fatalf("protocol mix: v4=%d v6=%d", v4, v6)
	}
	// Scrapers are loud: far more requests per entity than users.
	if reqs/uint64(len(ids)) < 100 {
		t.Fatalf("requests per bot = %d", reqs/uint64(len(ids)))
	}
}

func TestScraperV6HopsWithinHost64(t *testing.T) {
	g := scraperGen(t)
	per64 := make(map[uint64]map[netaddr.Prefix]map[netaddr.Addr]bool)
	g.GenerateDay(20, func(o telemetry.Observation) {
		if !o.Addr.Is6() {
			return
		}
		if per64[o.UserID] == nil {
			per64[o.UserID] = make(map[netaddr.Prefix]map[netaddr.Addr]bool)
		}
		p := netaddr.PrefixFrom(o.Addr, 64)
		if per64[o.UserID][p] == nil {
			per64[o.UserID][p] = make(map[netaddr.Addr]bool)
		}
		per64[o.UserID][p][o.Addr] = true
	})
	if len(per64) == 0 {
		t.Fatal("no v6 scrapers")
	}
	hopping := 0
	for _, prefixes := range per64 {
		if len(prefixes) != 1 {
			t.Fatalf("bot scraped from %d /64s in one day, want 1", len(prefixes))
		}
		for _, addrs := range prefixes {
			if len(addrs) > 1 {
				hopping++
			}
		}
	}
	if hopping == 0 {
		t.Fatal("no bot hopped IIDs within its /64")
	}
}

func TestScraperRotatesHostsOverTime(t *testing.T) {
	g := scraperGen(t)
	bot := ScraperIDBase
	addrOn := func(d simtime.Day) netaddr.Prefix {
		var p netaddr.Prefix
		g.GenerateDay(d, func(o telemetry.Observation) {
			if o.UserID == bot {
				p = netaddr.PrefixFrom(o.Addr, 64)
			}
		})
		return p
	}
	first := addrOn(0)
	moved := false
	for d := simtime.Day(1); d < 30; d++ {
		if addrOn(d) != first {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("bot never rotated hosts in 30 days")
	}
}

func TestHijackVictimsDeterministic(t *testing.T) {
	world := netmodel.BuildWorld(netmodel.WorldConfig{Seed: 5, Scale: 0.05})
	pcfg := population.DefaultConfig()
	pcfg.Seed = 5
	pcfg.Users = 8000
	pop := population.Synthesize(world, pcfg)
	g := NewHijackGen(world, pop, DefaultHijackConfig())

	v1 := g.Victims()
	v2 := g.Victims()
	if len(v1) == 0 {
		t.Fatal("no victims at 0.4% share of 8000 users")
	}
	if len(v1) != len(v2) {
		t.Fatal("victims not deterministic")
	}
	share := float64(len(v1)) / float64(pcfg.Users)
	if share < 0.001 || share > 0.01 {
		t.Fatalf("victim share = %v", share)
	}
	for _, v := range v1 {
		if v.Duration != g.Cfg.DurationDays {
			t.Fatalf("victim duration = %d", v.Duration)
		}
		if !v.CompromisedOn(v.Start) || v.CompromisedOn(v.Start+simtime.Day(v.Duration)) {
			t.Fatal("compromise window wrong")
		}
	}
}

func TestHijackEmitsUnderVictimID(t *testing.T) {
	world := netmodel.BuildWorld(netmodel.WorldConfig{Seed: 5, Scale: 0.05})
	pcfg := population.DefaultConfig()
	pcfg.Seed = 5
	pcfg.Users = 8000
	pop := population.Synthesize(world, pcfg)
	g := NewHijackGen(world, pop, DefaultHijackConfig())

	victims := g.Victims()
	victimSet := make(map[uint64]Victim, len(victims))
	for _, v := range victims {
		victimSet[v.UserID] = v
	}
	emitted := make(map[uint64]bool)
	hostingASNs := make(map[netmodel.ASN]bool)
	for _, n := range world.Hosting {
		hostingASNs[n.ASN] = true
	}
	for d := simtime.Day(0); d < simtime.StudyDays; d++ {
		g.GenerateDay(d, func(o telemetry.Observation) {
			v, ok := victimSet[o.UserID]
			if !ok {
				t.Fatalf("hijack emission for non-victim %d", o.UserID)
			}
			if !v.CompromisedOn(o.Day) {
				t.Fatalf("emission outside compromise window")
			}
			if !o.Abusive {
				t.Fatal("hijack emission not abusive")
			}
			if !hostingASNs[o.ASN] {
				t.Fatalf("hijack from non-hosting ASN %d", o.ASN)
			}
			emitted[o.UserID] = true
		})
	}
	if len(emitted) != len(victims) {
		t.Fatalf("emitted for %d victims of %d", len(emitted), len(victims))
	}
}

func TestHijackAddressStableWithinCompromise(t *testing.T) {
	world := netmodel.BuildWorld(netmodel.WorldConfig{Seed: 5, Scale: 0.05})
	pcfg := population.DefaultConfig()
	pcfg.Seed = 5
	pcfg.Users = 8000
	pop := population.Synthesize(world, pcfg)
	cfg := DefaultHijackConfig()
	cfg.DurationDays = 4
	g := NewHijackGen(world, pop, cfg)
	victims := g.Victims()
	if len(victims) == 0 {
		t.Skip("no victims")
	}
	v := victims[0]
	per64 := make(map[netaddr.Prefix]bool)
	for d := v.Start; d < v.Start+simtime.Day(v.Duration); d++ {
		g.GenerateDay(d, func(o telemetry.Observation) {
			if o.UserID == v.UserID && o.Addr.Is6() {
				per64[netaddr.PrefixFrom(o.Addr, 64)] = true
			}
		})
	}
	if len(per64) > 1 {
		t.Fatalf("hijacker moved across %d /64s within one compromise", len(per64))
	}
}
