// Package report renders analysis results as text: aligned tables and
// ASCII curve plots, the output format of the cmd/userv6 experiment
// harness. Everything writes to an io.Writer so tools and tests can
// capture output.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"userv6/internal/stats"
)

// Table renders rows with aligned columns. The first row is the header.
type Table struct {
	rows [][]string
}

// NewTable returns a table with the given header.
func NewTable(header ...string) *Table {
	t := &Table{}
	t.rows = append(t.rows, header)
	return t
}

// Row appends a data row; values are formatted with %v, floats with %.4g.
func (t *Table) Row(values ...any) *Table {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		case float32:
			row[i] = formatFloat(float64(x))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

func formatFloat(x float64) string {
	if math.IsNaN(x) {
		return "-"
	}
	return fmt.Sprintf("%.4g", x)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, 0)
	for _, row := range t.rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	for ri, row := range t.rows {
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		sb.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					sb.WriteString("  ")
				}
				sb.WriteString(strings.Repeat("-", w))
			}
			sb.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Series is one named curve for plotting.
type Series struct {
	Name   string
	Points []stats.Point
}

// Plot renders one or more series as an ASCII chart of the given size.
// X and Y ranges cover all points; each series uses its own marker.
func Plot(w io.Writer, width, height int, series ...Series) error {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if !any {
		_, err := io.WriteString(w, "(no data)\n")
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	markers := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				continue
			}
			x := int((p.X - minX) / (maxX - minX) * float64(width-1))
			y := int((p.Y - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - y
			if row >= 0 && row < height && x >= 0 && x < width {
				grid[row][x] = m
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%10.3g ┤\n", maxY)
	for _, row := range grid {
		sb.WriteString(strings.Repeat(" ", 11))
		sb.WriteByte('|')
		sb.Write(row)
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%10.3g └%s\n", minY, strings.Repeat("─", width))
	fmt.Fprintf(&sb, "%12s%-*.3g%*.3g\n", "", width/2, minX, width/2, maxX)
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// CDFSeries samples an integer histogram's CDF into a plottable series.
func CDFSeries(name string, h *stats.IntHist, maxV int) Series {
	return Series{Name: name, Points: h.CDFPoints(maxV)}
}

// ROCSeries converts an ROC curve to a plottable series (FPR on a log10
// x-axis, as in the paper's Figure 11).
func ROCSeries(name string, r *stats.ROC) Series {
	s := Series{Name: name}
	for _, p := range r.Points {
		if p.FPR <= 0 {
			continue
		}
		s.Points = append(s.Points, stats.Point{X: math.Log10(p.FPR), Y: p.TPR})
	}
	return s
}

// Percent formats a ratio as a percentage string.
func Percent(x float64) string {
	if math.IsNaN(x) {
		return "-"
	}
	switch {
	case x != 0 && math.Abs(x) < 0.0001:
		return fmt.Sprintf("%.4f%%", x*100)
	case x != 0 && math.Abs(x) < 0.01:
		return fmt.Sprintf("%.2f%%", x*100)
	default:
		return fmt.Sprintf("%.1f%%", x*100)
	}
}
