package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"userv6/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	err := NewTable("name", "value").
		Row("alpha", 1).
		Row("b", 22.5).
		Write(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator = %q", lines[1])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[3], "22.5") {
		t.Fatalf("rows = %q", out)
	}
	// Columns align: "value" column starts at the same offset everywhere.
	col := strings.Index(lines[0], "value")
	if lines[2][col-1] != ' ' {
		t.Fatalf("misaligned row: %q", lines[2])
	}
}

func TestTableNaN(t *testing.T) {
	var buf bytes.Buffer
	NewTable("x").Row(math.NaN()).Write(&buf)
	if !strings.Contains(buf.String(), "-") {
		t.Fatalf("NaN not rendered as dash: %q", buf.String())
	}
}

func TestPlotRendersAllSeries(t *testing.T) {
	var buf bytes.Buffer
	err := Plot(&buf, 32, 8,
		Series{Name: "up", Points: []stats.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}},
		Series{Name: "down", Points: []stats.Point{{X: 0, Y: 1}, {X: 1, Y: 0}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("markers missing: %q", out)
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Fatalf("legend missing: %q", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Plot(&buf, 32, 8, Series{Name: "none"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Fatalf("empty plot = %q", buf.String())
	}
}

func TestPlotDegenerateRanges(t *testing.T) {
	var buf bytes.Buffer
	// Single point: ranges collapse; must not panic or divide by zero.
	if err := Plot(&buf, 4, 2, Series{Name: "pt", Points: []stats.Point{{X: 5, Y: 5}}}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestPlotSkipsNaN(t *testing.T) {
	var buf bytes.Buffer
	err := Plot(&buf, 16, 4, Series{Name: "s", Points: []stats.Point{
		{X: math.NaN(), Y: 1}, {X: 1, Y: math.NaN()}, {X: 0, Y: 0}, {X: 1, Y: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCDFSeries(t *testing.T) {
	h := stats.NewIntHist(8)
	h.Add(0)
	h.Add(2)
	s := CDFSeries("cdf", h, 3)
	if s.Name != "cdf" || len(s.Points) != 4 {
		t.Fatalf("series = %+v", s)
	}
	if s.Points[0].Y != 0.5 || s.Points[3].Y != 1 {
		t.Fatalf("points = %+v", s.Points)
	}
}

func TestROCSeriesLogScaleAndZeroFPR(t *testing.T) {
	roc := stats.NewROC([]stats.ROCPoint{
		{TPR: 0.1, FPR: 0},     // dropped: log10(0) undefined
		{TPR: 0.2, FPR: 0.001}, // x = -3
		{TPR: 0.5, FPR: 0.1},   // x = -1
	})
	s := ROCSeries("roc", roc)
	if len(s.Points) != 2 {
		t.Fatalf("points = %+v", s.Points)
	}
	if math.Abs(s.Points[0].X+3) > 1e-9 || math.Abs(s.Points[1].X+1) > 1e-9 {
		t.Fatalf("log x = %+v", s.Points)
	}
}

func TestPercent(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0.5, "50.0%"},
		{0.001, "0.10%"},
		{0.00001, "0.0010%"},
		{0, "0.0%"},
	}
	for _, c := range cases {
		if got := Percent(c.in); got != c.want {
			t.Errorf("Percent(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if Percent(math.NaN()) != "-" {
		t.Error("NaN percent")
	}
}
