package sampling

import (
	"math"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/telemetry"
)

func addrObs(uid uint64, addr string) telemetry.Observation {
	return telemetry.Observation{UserID: uid, Addr: netaddr.MustParseAddr(addr), Requests: 1}
}

func TestUserSamplerDeterministicAndComplete(t *testing.T) {
	s := ByUser(0.1, 42)
	// Determinism: same user always in or out, regardless of address.
	for uid := uint64(0); uid < 200; uid++ {
		a := s.Sampled(addrObs(uid, "10.0.0.1"))
		b := s.Sampled(addrObs(uid, "2001:db8::1"))
		c := s.SampledUser(uid)
		if a != b || b != c {
			t.Fatalf("user %d inconsistent sampling", uid)
		}
	}
}

func TestUserSamplerRate(t *testing.T) {
	s := ByUser(0.1, 1)
	in := 0
	const n = 100000
	for uid := uint64(0); uid < n; uid++ {
		if s.SampledUser(uid) {
			in++
		}
	}
	got := float64(in) / n
	if math.Abs(got-0.1) > 0.01 {
		t.Fatalf("sample rate = %v, want ~0.1", got)
	}
	if s.Rate() != 0.1 {
		t.Fatalf("Rate() = %v", s.Rate())
	}
}

func TestUserSamplerSeedsDiffer(t *testing.T) {
	a, b := ByUser(0.5, 1), ByUser(0.5, 2)
	same := 0
	for uid := uint64(0); uid < 1000; uid++ {
		if a.SampledUser(uid) == b.SampledUser(uid) {
			same++
		}
	}
	if same > 600 || same < 400 {
		t.Fatalf("different seeds agree on %d/1000", same)
	}
}

func TestRateExtremes(t *testing.T) {
	none := ByUser(0, 1)
	all := ByUser(1, 1)
	for uid := uint64(1); uid < 100; uid++ {
		if none.SampledUser(uid) {
			t.Fatal("rate-0 sampler admitted a user")
		}
		if !all.SampledUser(uid) {
			t.Fatal("rate-1 sampler rejected a user")
		}
	}
}

func TestAddrSampler(t *testing.T) {
	s := ByAddr(0.2, 7)
	// Same address, any user: consistent.
	a := netaddr.MustParseAddr("2001:db8::1")
	r1 := s.SampledAddr(a)
	for uid := uint64(0); uid < 50; uid++ {
		o := telemetry.Observation{UserID: uid, Addr: a}
		if s.Sampled(o) != r1 {
			t.Fatal("address sampling depends on user")
		}
	}
	// Rate check over distinct v6 addresses.
	in, n := 0, 50000
	for i := 0; i < n; i++ {
		if s.SampledAddr(netaddr.AddrFrom6(0x20010db8<<32, uint64(i))) {
			in++
		}
	}
	if got := float64(in) / float64(n); math.Abs(got-0.2) > 0.01 {
		t.Fatalf("addr sample rate = %v", got)
	}
}

func TestPrefixSampler(t *testing.T) {
	s := ByPrefix(0.25, 64, 3)
	if s.Length() != 64 {
		t.Fatalf("Length = %d", s.Length())
	}
	// All addresses within one /64 share a fate.
	base := netaddr.MustParseAddr("2001:db8:1:2::")
	want := s.Sampled(telemetry.Observation{Addr: base})
	for i := uint64(1); i < 100; i++ {
		if s.Sampled(telemetry.Observation{Addr: base.WithIID(i)}) != want {
			t.Fatal("same /64 sampled inconsistently")
		}
	}
	// Rate over distinct /64s.
	in, n := 0, 50000
	for i := 0; i < n; i++ {
		p := netaddr.MustParsePrefix("2001:db8::/32").Subnet(64, uint64(i))
		if s.SampledPrefix(p) {
			in++
		}
	}
	if got := float64(in) / float64(n); math.Abs(got-0.25) > 0.01 {
		t.Fatalf("prefix sample rate = %v", got)
	}
}

func TestPrefixSamplersAtDifferentLengthsIndependent(t *testing.T) {
	s64 := ByPrefix(0.5, 64, 3)
	s48 := ByPrefix(0.5, 48, 3)
	agree := 0
	for i := 0; i < 1000; i++ {
		p := netaddr.MustParsePrefix("2001:db8::/32").Subnet(64, uint64(i))
		a := s64.SampledPrefix(p)
		b := s48.SampledPrefix(netaddr.PrefixFrom(p.Addr(), 48))
		if a == b {
			agree++
		}
	}
	if agree > 950 {
		t.Fatalf("length-64 and length-48 samplers agree on %d/1000", agree)
	}
}

func TestAllSampler(t *testing.T) {
	var s All
	if !s.Sampled(telemetry.Observation{}) || s.Rate() != 1 {
		t.Fatal("All sampler broken")
	}
}

func TestFilter(t *testing.T) {
	s := ByUser(0.5, 9)
	passed := 0
	emit := Filter(s, func(telemetry.Observation) { passed++ })
	want := 0
	for uid := uint64(0); uid < 1000; uid++ {
		o := addrObs(uid, "10.0.0.1")
		if s.Sampled(o) {
			want++
		}
		emit(o)
	}
	if passed != want {
		t.Fatalf("filter passed %d, want %d", passed, want)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		ok   bool
	}{
		{"all", true},
		{"", true},
		{"user:0.1", true},
		{"addr:0.5", true},
		{"prefix64:0.3", true},
		{"prefix48:1", true},
		{"user:1.5", false},
		{"user:x", false},
		{"bogus:0.1", false},
		{"user", false},
		{"prefix:0.1", false},
		{"prefixab:0.1", false},
		{"prefix200:0.1", false},
	}
	for _, c := range cases {
		s, err := Parse(c.spec, 1)
		if (err == nil) != c.ok {
			t.Errorf("Parse(%q) err = %v, want ok=%v", c.spec, err, c.ok)
		}
		if c.ok && s == nil {
			t.Errorf("Parse(%q) returned nil sampler", c.spec)
		}
	}
	// Spot-check semantics.
	s, _ := Parse("user:0.25", 7)
	if s.Rate() != 0.25 {
		t.Fatalf("rate = %v", s.Rate())
	}
	if _, isUser := s.(*UserSampler); !isUser {
		t.Fatal("wrong sampler type")
	}
	p, _ := Parse("prefix56:0.5", 7)
	if ps, ok := p.(*PrefixSampler); !ok || ps.Length() != 56 {
		t.Fatal("prefix sampler wrong")
	}
}
