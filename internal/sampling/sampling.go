// Package sampling implements the paper's deterministic attribute-hash
// sampling (§3.1): a sample selects all records whose hashed attribute
// (user ID, source address, or enclosing prefix) falls under a rate
// threshold. Determinism over time and records means a sampled entity's
// *complete* request history is retained — the property every user-level
// analysis in the paper depends on.
package sampling

import (
	"fmt"
	"strconv"
	"strings"

	"userv6/internal/netaddr"
	"userv6/internal/telemetry"
)

// hash64 is the SplitMix64 finalizer, shared with the sketches.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// threshold converts a sampling rate in [0, 1] to a hash cutoff.
func threshold(rate float64) uint64 {
	switch {
	case rate <= 0:
		return 0
	case rate >= 1:
		return ^uint64(0)
	default:
		return uint64(rate * float64(1<<63) * 2)
	}
}

// admit applies a cutoff with exact behavior at the extremes (hash 0
// exists — SplitMix64 maps 0 to 0 — so rate 0 must short-circuit).
func admit(hash, cut uint64) bool {
	switch cut {
	case 0:
		return false
	case ^uint64(0):
		return true
	default:
		return hash <= cut
	}
}

// Sampler decides whether an observation belongs to a sample.
type Sampler interface {
	// Sampled reports whether the observation is in the sample.
	Sampled(o telemetry.Observation) bool
	// Rate returns the configured sampling rate for extrapolation.
	Rate() float64
}

// UserSampler selects all observations of a deterministic fraction of
// users — the paper's "user random sample".
type UserSampler struct {
	cut  uint64
	rate float64
	seed uint64
}

// ByUser returns a UserSampler at the given rate.
func ByUser(rate float64, seed uint64) *UserSampler {
	return &UserSampler{cut: threshold(rate), rate: rate, seed: seed}
}

// Sampled implements Sampler.
func (s *UserSampler) Sampled(o telemetry.Observation) bool {
	return admit(hash64(o.UserID^s.seed), s.cut)
}

// Rate implements Sampler.
func (s *UserSampler) Rate() float64 { return s.rate }

// SampledUser reports whether a bare user ID is in the sample.
func (s *UserSampler) SampledUser(id uint64) bool {
	return admit(hash64(id^s.seed), s.cut)
}

// AddrSampler selects all observations from a deterministic fraction of
// source addresses — the paper's "IP random sample".
type AddrSampler struct {
	cut  uint64
	rate float64
	seed uint64
}

// ByAddr returns an AddrSampler at the given rate.
func ByAddr(rate float64, seed uint64) *AddrSampler {
	return &AddrSampler{cut: threshold(rate), rate: rate, seed: seed}
}

// Sampled implements Sampler.
func (s *AddrSampler) Sampled(o telemetry.Observation) bool {
	return s.SampledAddr(o.Addr)
}

// SampledAddr reports whether a bare address is in the sample.
func (s *AddrSampler) SampledAddr(a netaddr.Addr) bool {
	hi, lo := a.Words()
	return admit(hash64(hi^hash64(lo^s.seed)), s.cut)
}

// Rate implements Sampler.
func (s *AddrSampler) Rate() float64 { return s.rate }

// PrefixSampler selects all observations whose address falls in a
// deterministic fraction of prefixes of a fixed length — the paper's
// "IPv6 prefix random sample" (one sampler per prefix length).
type PrefixSampler struct {
	cut    uint64
	rate   float64
	seed   uint64
	length int
}

// ByPrefix returns a PrefixSampler for the given prefix length.
func ByPrefix(rate float64, length int, seed uint64) *PrefixSampler {
	return &PrefixSampler{cut: threshold(rate), rate: rate, seed: seed, length: length}
}

// Length returns the prefix length the sampler operates on.
func (s *PrefixSampler) Length() int { return s.length }

// Sampled implements Sampler.
func (s *PrefixSampler) Sampled(o telemetry.Observation) bool {
	return s.SampledPrefix(netaddr.PrefixFrom(o.Addr, s.length))
}

// SampledPrefix reports whether a prefix is in the sample. The prefix
// must already be at the sampler's length (callers mask first).
func (s *PrefixSampler) SampledPrefix(p netaddr.Prefix) bool {
	hi, lo := p.Addr().Words()
	return admit(hash64(hi^hash64(lo^hash64(uint64(p.Bits())^s.seed))), s.cut)
}

// Rate implements Sampler.
func (s *PrefixSampler) Rate() float64 { return s.rate }

// All is a pass-through sampler (rate 1) for analyses that consume the
// entire simulated platform.
type All struct{}

// Sampled implements Sampler: always true.
func (All) Sampled(telemetry.Observation) bool { return true }

// Rate implements Sampler: 1.
func (All) Rate() float64 { return 1 }

// Filter wraps an EmitFunc so only sampled observations pass through.
func Filter(s Sampler, fn telemetry.EmitFunc) telemetry.EmitFunc {
	return func(o telemetry.Observation) {
		if s.Sampled(o) {
			fn(o)
		}
	}
}

// Parse builds a sampler from a compact spec string, the form the
// command-line tools accept:
//
//	"all"          every observation
//	"user:0.1"     10% of users
//	"addr:0.01"    1% of addresses
//	"prefix64:0.3" 30% of /64 prefixes (any length: "prefix48:...")
func Parse(spec string, seed uint64) (Sampler, error) {
	if spec == "" || spec == "all" {
		return All{}, nil
	}
	i := strings.IndexByte(spec, ':')
	if i < 0 {
		return nil, fmt.Errorf("sampling: bad spec %q (want kind:rate)", spec)
	}
	kind, rateStr := spec[:i], spec[i+1:]
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || rate < 0 || rate > 1 {
		return nil, fmt.Errorf("sampling: bad rate %q", rateStr)
	}
	switch {
	case kind == "user":
		return ByUser(rate, seed), nil
	case kind == "addr":
		return ByAddr(rate, seed), nil
	case strings.HasPrefix(kind, "prefix"):
		length, err := strconv.Atoi(kind[len("prefix"):])
		if err != nil || length < 0 || length > 128 {
			return nil, fmt.Errorf("sampling: bad prefix length in %q", spec)
		}
		return ByPrefix(rate, length, seed), nil
	default:
		return nil, fmt.Errorf("sampling: unknown kind %q", kind)
	}
}
