package core

import (
	"errors"
	"reflect"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/rng"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// pipelineStream builds a day-ordered synthetic stream exercising every
// analyzer: dual-stack users that rotate IIDs, move /64s within their
// /44, and occasionally switch networks, spread over ASNs and countries,
// with a sprinkling of abusive accounts.
func pipelineStream() []telemetry.Observation {
	src := rng.New(4242)
	const users = 400
	countries := []string{"US", "DE", "JP", "BR", "IN"}
	var out []telemetry.Observation

	type state struct {
		region, subnet uint64
		iid            uint64
	}
	states := make([]state, users)
	for u := range states {
		states[u] = state{region: src.Uint64() % 8, subnet: src.Uint64() % 4, iid: src.Uint64()}
	}

	for day := simtime.Day(0); day <= 7; day++ {
		for u := 0; u < users; u++ {
			st := &states[u]
			// Churn: mostly IID rotation, sometimes subnet move, rarely a
			// network switch.
			switch r := src.Uint64() % 100; {
			case r < 5:
				st.region = src.Uint64() % 8
				st.subnet = src.Uint64() % 4
				st.iid = src.Uint64()
			case r < 25:
				st.subnet = src.Uint64() % 4
				st.iid = src.Uint64()
			case r < 70:
				st.iid = src.Uint64()
			}
			hi := 0x2001_0db8_0000_0000 | st.region<<20 | st.subnet
			o := telemetry.Observation{
				Day:      day,
				UserID:   uint64(u),
				Addr:     netaddr.AddrFrom6(hi, st.iid),
				ASN:      netmodel.ASN(100 + st.region),
				Requests: uint32(1 + src.Uint64()%20),
				Abusive:  u%11 == 0,
			}
			o.SetCountry(countries[u%len(countries)])
			out = append(out, o)
			// Dual stack: most users also show up over IPv4.
			if u%3 != 0 {
				o4 := o
				o4.Addr = netaddr.AddrFrom4(0xc0a8_0000 | uint32(u))
				o4.Requests = uint32(1 + src.Uint64()%10)
				out = append(out, o4)
			}
		}
	}
	return out
}

// fullSet registers one of every analyzer on a fresh AnalyzerSet and
// returns the primaries for querying. Every default analyzer's
// accumulated state is a pure order-free fold (set union, min-day,
// OR/sum), so the whole set registers commutative — which is what
// authorizes the unordered and fused analysis paths.
func fullSet(ref simtime.Day) (*AnalyzerSet, *UserCentric, *IPCentric, *ChurnAttribution, *Lifespans, *Prevalence) {
	set := NewAnalyzerSet()
	uc := NewUserCentricFor(false)
	AddCommutativeAnalyzer(set, uc, func() *UserCentric { return NewUserCentricFor(false) }, (*UserCentric).Merge)
	ic := NewIPCentric(netaddr.IPv6, 64)
	AddCommutativeAnalyzer(set, ic, func() *IPCentric { return NewIPCentric(netaddr.IPv6, 64) }, (*IPCentric).Merge)
	churn := NewChurnAttribution(2)
	AddCommutativeAnalyzer(set, churn, func() *ChurnAttribution { return NewChurnAttribution(2) }, (*ChurnAttribution).Merge)
	life := NewLifespans(ref, 64, 128, 32)
	AddCommutativeAnalyzer(set, life, func() *Lifespans { return NewLifespans(ref, 64, 128, 32) }, (*Lifespans).Merge)
	prev := NewPrevalence()
	AddCommutativeAnalyzerFiltered(set, prev, NewPrevalence, (*Prevalence).Merge,
		func(o telemetry.Observation) bool { return !o.Abusive })
	return set, uc, ic, churn, life, prev
}

// TestFullSetCommutative pins the headline property: the default
// analyzer set reports Commutative() == true, so unordered and fused
// analysis are legal for it.
func TestFullSetCommutative(t *testing.T) {
	set, _, _, _, _, _ := fullSet(7)
	if !set.Commutative() {
		t.Fatalf("default analyzer set must be commutative; offenders: %v", set.NonCommutative())
	}
}

// TestPipelineMatchesSequential is the core equality guarantee: for
// every analyzer, a pipeline run over any worker count produces exactly
// the state a sequential feed produces.
func TestPipelineMatchesSequential(t *testing.T) {
	stream := pipelineStream()
	const ref = simtime.Day(7)

	seqSet, suc, sic, schurn, slife, sprev := fullSet(ref)
	for _, o := range stream {
		seqSet.Observe(o)
	}

	for _, workers := range []int{1, 3, 8} {
		set, uc, ic, churn, life, prev := fullSet(ref)
		pipe := set.NewPipeline(workers)
		pipe.ObserveBatch(stream)
		if err := pipe.Close(); err != nil {
			t.Fatal(err)
		}

		if uc.Users() != suc.Users() {
			t.Fatalf("workers=%d: UserCentric users %d, want %d", workers, uc.Users(), suc.Users())
		}
		for _, fam := range []netaddr.Family{netaddr.IPv4, netaddr.IPv6} {
			if !reflect.DeepEqual(uc.AddrsPerUser(fam), suc.AddrsPerUser(fam)) {
				t.Fatalf("workers=%d: AddrsPerUser(%v) differs", workers, fam)
			}
		}
		if !reflect.DeepEqual(uc.PrefixSpans([]int{44, 64}), suc.PrefixSpans([]int{44, 64})) {
			t.Fatalf("workers=%d: PrefixSpans differ", workers)
		}
		if !reflect.DeepEqual(uc.TopUsersByAddrs(netaddr.IPv6, 10), suc.TopUsersByAddrs(netaddr.IPv6, 10)) {
			t.Fatalf("workers=%d: TopUsersByAddrs differ", workers)
		}
		if !reflect.DeepEqual(uc.AddrPatterns(), suc.AddrPatterns()) {
			t.Fatalf("workers=%d: AddrPatterns differ", workers)
		}

		if ic.Prefixes() != sic.Prefixes() {
			t.Fatalf("workers=%d: IPCentric prefixes %d, want %d", workers, ic.Prefixes(), sic.Prefixes())
		}
		if !reflect.DeepEqual(ic.UsersPerPrefix(), sic.UsersPerPrefix()) {
			t.Fatalf("workers=%d: UsersPerPrefix differs", workers)
		}
		if !reflect.DeepEqual(ic.TopPrefixes(5), sic.TopPrefixes(5)) {
			t.Fatalf("workers=%d: TopPrefixes differ", workers)
		}
		if !reflect.DeepEqual(ic.AbusivePerAbusivePrefix(), sic.AbusivePerAbusivePrefix()) {
			t.Fatalf("workers=%d: AbusivePerAbusivePrefix differs", workers)
		}

		if churn.Breakdown() != schurn.Breakdown() {
			t.Fatalf("workers=%d: churn %+v, want %+v", workers, churn.Breakdown(), schurn.Breakdown())
		}

		if life.Pairs() != slife.Pairs() {
			t.Fatalf("workers=%d: lifespan pairs %d, want %d", workers, life.Pairs(), slife.Pairs())
		}
		if !reflect.DeepEqual(life.AgeHist(netaddr.IPv6, 128), slife.AgeHist(netaddr.IPv6, 128)) {
			t.Fatalf("workers=%d: AgeHist differs", workers)
		}
		if !reflect.DeepEqual(life.MedianAgePerUser(netaddr.IPv6, 64), slife.MedianAgePerUser(netaddr.IPv6, 64)) {
			t.Fatalf("workers=%d: MedianAgePerUser differs", workers)
		}
		if !reflect.DeepEqual(life.FreshShares(netaddr.IPv6), slife.FreshShares(netaddr.IPv6)) {
			t.Fatalf("workers=%d: FreshShares differ", workers)
		}

		if !reflect.DeepEqual(prev.Daily(), sprev.Daily()) {
			t.Fatalf("workers=%d: Daily differs", workers)
		}
		if !reflect.DeepEqual(prev.TopASNs(1, 0, nil), sprev.TopASNs(1, 0, nil)) {
			t.Fatalf("workers=%d: TopASNs differ", workers)
		}
		if !reflect.DeepEqual(prev.TopCountries(1, 0), sprev.TopCountries(1, 0)) {
			t.Fatalf("workers=%d: TopCountries differ", workers)
		}
	}
}

// Merging two analyzers fed arbitrary (non-user-disjoint) splits must be
// exact for the set-algebraic analyzers.
func TestLifespanPrevalenceMergeArbitrarySplit(t *testing.T) {
	stream := pipelineStream()
	const ref = simtime.Day(7)

	wantLife := NewLifespans(ref, 64, 128)
	wantPrev := NewPrevalence()
	for _, o := range stream {
		wantLife.Observe(o)
		wantPrev.Observe(o)
	}

	// Interleave records across two shards — users deliberately split.
	la, lb := NewLifespans(ref, 64, 128), NewLifespans(ref, 64, 128)
	pa, pb := NewPrevalence(), NewPrevalence()
	for i, o := range stream {
		if i%2 == 0 {
			la.Observe(o)
			pa.Observe(o)
		} else {
			lb.Observe(o)
			pb.Observe(o)
		}
	}
	la.Merge(lb)
	pa.Merge(pb)

	if la.Pairs() != wantLife.Pairs() {
		t.Fatalf("merged pairs %d, want %d", la.Pairs(), wantLife.Pairs())
	}
	if !reflect.DeepEqual(la.AgeHist(netaddr.IPv6, 128), wantLife.AgeHist(netaddr.IPv6, 128)) {
		t.Fatal("merged AgeHist differs")
	}
	if !reflect.DeepEqual(pa.Daily(), wantPrev.Daily()) {
		t.Fatal("merged Daily differs")
	}
	if !reflect.DeepEqual(pa.TopASNs(1, 0, nil), wantPrev.TopASNs(1, 0, nil)) {
		t.Fatal("merged TopASNs differ")
	}
	if !reflect.DeepEqual(pa.TopCountries(1, 0), wantPrev.TopCountries(1, 0)) {
		t.Fatal("merged TopCountries differ")
	}
}

// Churn merge is exact for user-disjoint splits (the pipeline's split).
func TestChurnMergeUserDisjoint(t *testing.T) {
	stream := pipelineStream()
	want := NewChurnAttribution(2)
	for _, o := range stream {
		want.Observe(o)
	}
	a, b := NewChurnAttribution(2), NewChurnAttribution(2)
	for _, o := range stream {
		if o.UserID%2 == 0 {
			a.Observe(o)
		} else {
			b.Observe(o)
		}
	}
	a.Merge(b)
	if a.Breakdown() != want.Breakdown() {
		t.Fatalf("merged %+v, want %+v", a.Breakdown(), want.Breakdown())
	}
}

type panicAnalyzer struct{ at uint64 }

func (p *panicAnalyzer) Observe(o telemetry.Observation) {
	if o.UserID == p.at {
		panic("poisoned record")
	}
}

func (p *panicAnalyzer) merge(*panicAnalyzer) {}

func TestPipelineWorkerPanic(t *testing.T) {
	set := NewAnalyzerSet()
	AddAnalyzer(set, &panicAnalyzer{at: 17},
		func() *panicAnalyzer { return &panicAnalyzer{at: 17} },
		func(into, from *panicAnalyzer) { into.merge(from) })
	pipe := set.NewPipeline(4)
	for _, o := range pipelineStream() {
		pipe.Observe(o)
	}
	err := pipe.Close()
	var wp *WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("want *WorkerPanicError, got %v", err)
	}
	if len(wp.Stack) == 0 {
		t.Fatal("panic error missing stack")
	}
}

func TestPipelineCloseIdempotent(t *testing.T) {
	set := NewAnalyzerSet()
	uc := NewUserCentric()
	AddAnalyzer(set, uc, NewUserCentric, (*UserCentric).Merge)
	pipe := set.NewPipeline(2)
	pipe.Observe(obs(1, "2001:db8::1", 0, false))
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	if uc.Users() != 1 {
		t.Fatalf("users %d after double close, want 1", uc.Users())
	}
}
