package core

import (
	"fmt"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/rng"
	"userv6/internal/telemetry"
)

// synthStream feeds both analyzers an identical synthetic stream: a few
// heavy addresses with large user populations over a background of
// single-user addresses.
func synthStream(emit func(telemetry.Observation)) {
	src := rng.New(777)
	// 5 heavy addresses with 2000, 1000, 500, 400, 300 users.
	heavyUsers := []int{2000, 1000, 500, 400, 300}
	uid := uint64(0)
	for i, n := range heavyUsers {
		addr := netaddr.MustParseAddr("2600:380::").WithIID(uint64(i + 1))
		for u := 0; u < n; u++ {
			uid++
			o := telemetry.Observation{UserID: uid, Addr: addr, Requests: 1}
			emit(o)
			// Occasional repeat sightings must not inflate counts.
			if src.Bool(0.3) {
				emit(o)
			}
		}
	}
	// 30k background single-user addresses spread across random /64s.
	for i := 0; i < 30000; i++ {
		uid++
		addr := netaddr.AddrFrom6(0x2400_0000_0000_0000|src.Uint64()&0x0000_ffff_ffff_ffff, src.Uint64())
		emit(telemetry.Observation{UserID: uid, Addr: addr, Requests: 1})
	}
}

func TestSketchedMatchesExactOnHeavyHitters(t *testing.T) {
	exact := NewIPCentric(netaddr.IPv6, 128)
	sk := NewSketchedIPCentric(netaddr.IPv6, 128, 512)
	synthStream(func(o telemetry.Observation) {
		exact.Observe(o)
		sk.Observe(o)
	})

	topErr, recall := CompareExact(sk, exact, 5)
	if recall < 0.99 {
		t.Fatalf("heavy-hitter recall = %v", recall)
	}
	if topErr > 0.10 {
		t.Fatalf("top-prefix user estimate error = %v", topErr)
	}

	// The heaviest sketched prefix matches the exact heaviest.
	exTop := exact.TopPrefixes(1)[0]
	skTop := sk.Top(1)[0]
	if skTop.Prefix != exTop.Prefix {
		t.Fatalf("heaviest prefix: sketch %v vs exact %v", skTop.Prefix, exTop.Prefix)
	}
	if skTop.Users < float64(exTop.Users)*0.9 || skTop.Users > float64(exTop.Users)*1.1 {
		t.Fatalf("heaviest estimate %v vs exact %d", skTop.Users, exTop.Users)
	}
}

func TestSketchedPrefixCardinality(t *testing.T) {
	sk := NewSketchedIPCentric(netaddr.IPv6, 128, 64)
	exactCount := 0
	synthStream(func(o telemetry.Observation) { sk.Observe(o) })
	exactCount = 5 + 30000 // heavy + background (collisions negligible)
	est := sk.Prefixes()
	if est < float64(exactCount)*0.9 || est > float64(exactCount)*1.1 {
		t.Fatalf("prefix cardinality estimate %v, want ~%d", est, exactCount)
	}
}

func TestSketchedHeavyAbove(t *testing.T) {
	sk := NewSketchedIPCentric(netaddr.IPv6, 128, 128)
	synthStream(sk.Observe)
	// 5 addresses exceed 250 users; allow sketch slack.
	got := sk.HeavyAbove(250)
	if got < 4 || got > 8 {
		t.Fatalf("HeavyAbove(250) = %d, want ~5", got)
	}
	if sk.HeavyAbove(10_000) != 0 {
		t.Fatal("phantom mega-heavy prefix")
	}
}

func TestSketchedEstimateUsers(t *testing.T) {
	sk := NewSketchedIPCentric(netaddr.IPv6, 128, 64)
	synthStream(sk.Observe)
	heaviest := netaddr.PrefixFrom(netaddr.MustParseAddr("2600:380::").WithIID(1), 128)
	est, ok := sk.EstimateUsers(heaviest)
	if !ok {
		t.Fatal("heaviest prefix not tracked")
	}
	if est < 1800 || est > 2200 {
		t.Fatalf("estimate = %v, want ~2000", est)
	}
	if _, ok := sk.EstimateUsers(netaddr.MustParsePrefix("3fff::1/128")); ok {
		t.Fatal("untracked prefix reported as tracked")
	}
}

func TestSketchedAtPrefixGranularity(t *testing.T) {
	// At /64, the heavy addresses (same /64) merge into one very heavy
	// prefix.
	sk := NewSketchedIPCentric(netaddr.IPv6, 64, 64)
	exact := NewIPCentric(netaddr.IPv6, 64)
	synthStream(func(o telemetry.Observation) {
		sk.Observe(o)
		exact.Observe(o)
	})
	exTop := exact.TopPrefixes(1)[0]
	skTop := sk.Top(1)[0]
	if skTop.Prefix != exTop.Prefix {
		t.Fatalf("/64 heaviest: sketch %v vs exact %v", skTop.Prefix, exTop.Prefix)
	}
	if exTop.Users != 4200 {
		t.Fatalf("exact /64 population = %d, want 4200", exTop.Users)
	}
	if skTop.Users < 3800 || skTop.Users > 4600 {
		t.Fatalf("sketched /64 population = %v", skTop.Users)
	}
}

func TestSketchedIgnoresWrongFamily(t *testing.T) {
	sk := NewSketchedIPCentric(netaddr.IPv4, 32, 16)
	sk.Observe(telemetry.Observation{UserID: 1, Addr: netaddr.MustParseAddr("2001:db8::1")})
	if sk.Prefixes() != 0 {
		t.Fatal("v6 observation counted by v4 sketch")
	}
}

func TestSketchedHeavyHist(t *testing.T) {
	sk := NewSketchedIPCentric(netaddr.IPv6, 128, 64)
	synthStream(sk.Observe)
	h := sk.HeavyHist()
	if h.N() == 0 {
		t.Fatal("empty heavy histogram")
	}
	if h.Max() < 1800 {
		t.Fatalf("heavy hist max = %d", h.Max())
	}
}

func BenchmarkSketchedObserve(b *testing.B) {
	sk := NewSketchedIPCentric(netaddr.IPv6, 64, 1024)
	src := rng.New(1)
	obs := make([]telemetry.Observation, 8192)
	for i := range obs {
		obs[i] = telemetry.Observation{
			UserID: uint64(src.Intn(100000)),
			Addr:   netaddr.AddrFrom6(0x2400<<48|uint64(src.Intn(5000)), src.Uint64()),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Observe(obs[i%len(obs)])
	}
}

func ExampleSketchedIPCentric() {
	sk := NewSketchedIPCentric(netaddr.IPv6, 128, 64)
	addr := netaddr.MustParseAddr("2600:380::1")
	for uid := uint64(1); uid <= 1000; uid++ {
		sk.Observe(telemetry.Observation{UserID: uid, Addr: addr})
	}
	top := sk.Top(1)
	fmt.Println(top[0].Prefix, top[0].Users > 900 && top[0].Users < 1100)
	// Output: 2600:380::1/128 true
}
