package core

import (
	"math"
	"testing"

	"userv6/internal/netmodel"
)

func TestFeatureExtractorBasics(t *testing.T) {
	infra := map[netmodel.ASN]bool{16276: true}
	fe := NewFeatureExtractor(infra)

	// Entity 1: dual-stack, 3 v6 addrs in one /64, one infra obs.
	o1 := obs(1, "2001:db8:0:1::a", 0, false)
	o1.Requests = 10
	fe.Observe(o1)
	fe.Observe(obs(1, "2001:db8:0:1::b", 1, false))
	fe.Observe(obs(1, "2001:db8:0:1::c", 2, false))
	fe.Observe(obs(1, "10.0.0.1", 0, false))
	infraObs := obs(1, "2a01::1", 3, false)
	infraObs.ASN = 16276
	fe.Observe(infraObs)

	v, ok := fe.Vector(1)
	if !ok {
		t.Fatal("entity missing")
	}
	if v.V4Addrs != 1 || v.V6Addrs != 4 || v.V6Prefixes64 != 2 {
		t.Fatalf("vector = %+v", v)
	}
	if !v.DualStack {
		t.Fatal("dual stack not detected")
	}
	if v.ActiveDays != 4 {
		t.Fatalf("active days = %d", v.ActiveDays)
	}
	if math.Abs(v.V6IIDSpread-2) > 1e-12 {
		t.Fatalf("spread = %v", v.V6IIDSpread)
	}
	if math.Abs(v.InfraShare-0.2) > 1e-12 {
		t.Fatalf("infra share = %v", v.InfraShare)
	}
	if v.Requests != 14 {
		t.Fatalf("requests = %d", v.Requests)
	}
	if _, ok := fe.Vector(999); ok {
		t.Fatal("phantom entity")
	}
	if fe.Entities() != 1 {
		t.Fatalf("entities = %d", fe.Entities())
	}
}

func TestFeatureStructuredCount(t *testing.T) {
	fe := NewFeatureExtractor(nil)
	fe.Observe(obs(1, "2600:380:1:2::1f3a", 0, false))
	fe.Observe(obs(1, "2001:db8::a1b2:c3d4:e5f6:789a", 0, false))
	v, _ := fe.Vector(1)
	if v.StructuredV6 != 1 {
		t.Fatalf("structured = %d", v.StructuredV6)
	}
}

func TestAbuseScoreReference(t *testing.T) {
	// Hosting-dominated entity scores high.
	hot := FeatureVector{InfraShare: 0.9, Observations: 2}
	if hot.AbuseScore() < 2 {
		t.Fatalf("score = %v", hot.AbuseScore())
	}
	// A normal benign profile scores zero: active, access-network,
	// dual-stack with heavy IID spread (which must NOT penalize).
	benign := FeatureVector{
		V4Addrs: 2, V6Addrs: 12, V6Prefixes64: 2, V6IIDSpread: 6,
		Observations: 40, InfraShare: 0, DualStack: true,
	}
	if benign.AbuseScore() != 0 {
		t.Fatalf("benign score = %v", benign.AbuseScore())
	}
	// v4-only CGN churner picks up a mild score.
	churner := FeatureVector{V4Addrs: 5, Observations: 20}
	if churner.AbuseScore() != 0.75 {
		t.Fatalf("churner score = %v", churner.AbuseScore())
	}
}

func TestFeatureForEach(t *testing.T) {
	fe := NewFeatureExtractor(nil)
	fe.Observe(obs(1, "10.0.0.1", 0, false))
	fe.Observe(obs(2, "10.0.0.2", 0, false))
	n := 0
	fe.ForEach(func(uid uint64, v FeatureVector) {
		n++
		if v.V4Addrs != 1 {
			t.Fatalf("uid %d vector %+v", uid, v)
		}
	})
	if n != 2 {
		t.Fatalf("visited %d", n)
	}
}
