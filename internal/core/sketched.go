package core

import (
	"userv6/internal/netaddr"
	"userv6/internal/sketch"
	"userv6/internal/stats"
	"userv6/internal/telemetry"
)

// SketchedIPCentric is the fixed-memory counterpart of IPCentric: it
// tracks distinct users per prefix with HyperLogLog sketches attached to
// the heavy-hitter candidates that a Space-Saving pass surfaces, plus a
// Count-Min filter for population estimates of everything else.
//
// At the paper's vantage point — a trillion requests a day — exact
// per-address user sets are infeasible; this is the shape of the
// production pipeline. The analyzer answers the outlier questions
// (which prefixes are heavy, how heavy, owned by whom) within sketch
// error; the exact IPCentric remains the reference for full CDFs. The
// test suite cross-validates the two on identical streams.
type SketchedIPCentric struct {
	Family netaddr.Family
	Length int

	// heavy tracks candidate heavy prefixes; each candidate gets an HLL
	// for distinct-user counting.
	heavy *sketch.SpaceSaving
	hlls  map[uint64]*sketch.HLL
	keyed map[uint64]netaddr.Prefix
	// pairFilter suppresses repeat (user, prefix) pairs approximately.
	pairFilter *sketch.CountMin
	prefixes   *sketch.HLL
	hllPrec    uint8
	maxHLLs    int
}

// NewSketchedIPCentric returns a sketched analyzer bounded to roughly
// maxTracked heavy candidates.
func NewSketchedIPCentric(fam netaddr.Family, length, maxTracked int) *SketchedIPCentric {
	if maxTracked < 16 {
		maxTracked = 16
	}
	return &SketchedIPCentric{
		Family:     fam,
		Length:     length,
		heavy:      sketch.MustNewSpaceSaving(maxTracked),
		hlls:       make(map[uint64]*sketch.HLL, maxTracked),
		keyed:      make(map[uint64]netaddr.Prefix, maxTracked),
		pairFilter: sketch.MustNewCountMin(1<<16, 4),
		prefixes:   sketch.MustNewHLL(14),
		hllPrec:    12,
		maxHLLs:    maxTracked,
	}
}

// prefixKey folds a prefix into a 64-bit sketch key.
func prefixKey(p netaddr.Prefix) uint64 {
	hi, lo := p.Addr().Words()
	x := hi ^ (lo * 0x9e3779b97f4a7c15) ^ uint64(p.Bits())<<56
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

func pairSketchKey(uid uint64, pk uint64) uint64 {
	x := uid*0xff51afd7ed558ccd ^ pk
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Observe feeds one observation.
func (s *SketchedIPCentric) Observe(o telemetry.Observation) {
	if o.Addr.Family() != s.Family || s.Length > o.Addr.Bits() {
		return
	}
	p := netaddr.PrefixFrom(o.Addr, s.Length)
	pk := prefixKey(p)
	s.prefixes.Add(pk)

	// Approximate (user, prefix) dedup: only the first sighting bumps
	// the heavy-hitter counter, so its counts approximate distinct
	// users rather than observations.
	pairKey := pairSketchKey(o.UserID, pk)
	if s.pairFilter.Count(pairKey) == 0 {
		s.pairFilter.Add(pairKey, 1)
		s.heavy.Add(pk)
	}
	// Every tracked candidate keeps an exact-ish distinct-user HLL.
	if h, ok := s.hlls[pk]; ok {
		h.Add(o.UserID)
		return
	}
	if _, tracked := s.heavy.Count(pk); tracked && len(s.hlls) < s.maxHLLs*2 {
		h := sketch.MustNewHLL(s.hllPrec)
		h.Add(o.UserID)
		s.hlls[pk] = h
		s.keyed[pk] = p
	}
}

// Prefixes estimates the number of distinct prefixes observed.
func (s *SketchedIPCentric) Prefixes() float64 { return s.prefixes.Estimate() }

// SketchedHeavy is one heavy prefix with its estimated user population.
type SketchedHeavy struct {
	Prefix netaddr.Prefix
	// Users is the HLL distinct-user estimate (0 if the candidate was
	// admitted after its first sightings — a lower bound then comes
	// from Count).
	Users float64
	// Count is the Space-Saving (over-)estimate of first-sighting hits.
	Count uint64
}

// Top returns the k heaviest prefixes by estimated distinct users.
func (s *SketchedIPCentric) Top(k int) []SketchedHeavy {
	items := s.heavy.Top(s.maxHLLs)
	out := make([]SketchedHeavy, 0, k)
	for _, it := range items {
		h := SketchedHeavy{Count: it.Count}
		if p, ok := s.keyed[it.Key]; ok {
			h.Prefix = p
		}
		if hll, ok := s.hlls[it.Key]; ok {
			h.Users = hll.Estimate()
		}
		out = append(out, h)
		if len(out) == k {
			break
		}
	}
	return out
}

// EstimateUsers returns the estimated distinct users on prefix p and
// whether p was tracked as a heavy candidate.
func (s *SketchedIPCentric) EstimateUsers(p netaddr.Prefix) (float64, bool) {
	if h, ok := s.hlls[prefixKey(p)]; ok {
		return h.Estimate(), true
	}
	return 0, false
}

// HeavyAbove estimates how many tracked prefixes exceed n distinct
// users. It is a lower bound: only tracked candidates are counted.
func (s *SketchedIPCentric) HeavyAbove(n int) int {
	count := 0
	for _, h := range s.hlls {
		if h.Estimate() > float64(n) {
			count++
		}
	}
	return count
}

// CompareExact summarizes agreement between the sketched and exact
// analyzers: the relative error of the heaviest prefix's user estimate
// and the recall of the exact top-k within the sketched top-2k.
func CompareExact(sk *SketchedIPCentric, exact *IPCentric, k int) (topErr float64, recall float64) {
	exTop := exact.TopPrefixes(k)
	if len(exTop) == 0 {
		return 0, 1
	}
	skTop := sk.Top(2 * k)
	inSketch := make(map[netaddr.Prefix]float64, len(skTop))
	for _, h := range skTop {
		if h.Prefix.IsValid() {
			inSketch[h.Prefix] = h.Users
		}
	}
	hits := 0
	for _, e := range exTop {
		if _, ok := inSketch[e.Prefix]; ok {
			hits++
		}
	}
	recall = float64(hits) / float64(len(exTop))
	if est, ok := inSketch[exTop[0].Prefix]; ok && exTop[0].Users > 0 {
		topErr = abs(est-float64(exTop[0].Users)) / float64(exTop[0].Users)
	} else {
		topErr = 1
	}
	return topErr, recall
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// statsHistFromTop builds an IntHist over tracked heavy populations,
// for coarse reporting when no exact analyzer is available.
func (s *SketchedIPCentric) statsHistFromTop() *stats.IntHist {
	h := stats.NewIntHist(256)
	for _, hll := range s.hlls {
		h.Add(int(hll.Estimate() + 0.5))
	}
	return h
}

// HeavyHist returns the histogram of tracked heavy-prefix populations.
func (s *SketchedIPCentric) HeavyHist() *stats.IntHist { return s.statsHistFromTop() }
