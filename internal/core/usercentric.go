// Package core implements the paper's contribution: user-level analysis
// of IPv6 (and IPv4) behavior. It provides user-centric analyzers
// (addresses, prefixes and lifespans per user — §5), IP-centric
// analyzers (user populations per address and prefix — §6), the
// actioning/ROC simulator (§7.1), outlier characterization (RQ3), and
// the security-policy advisor (§7.2).
//
// All analyzers are streaming: they consume telemetry.Observation values
// through Observe and answer queries afterwards. They deduplicate
// (entity, address) pairs internally, so feeding the same observation
// twice is harmless.
package core

import (
	"sort"

	"userv6/internal/netaddr"
	"userv6/internal/stats"
	"userv6/internal/telemetry"
)

// pairKey identifies a (user, prefix-or-address) pair.
type pairKey struct {
	uid uint64
	pfx netaddr.Prefix
}

// UserCentric accumulates per-user address diversity over its feeding
// window: the engine behind Figures 2, 3 and 4 and the §4.4 client
// address patterns. The zero value is ready to use.
type UserCentric struct {
	seen  map[pairKey]struct{}
	users map[uint64]*userAddrs
	// abusiveOnly restricts accounting to abusive or benign entities.
	abusiveOnly, benignOnly bool
}

// userAddrs holds one user's deduplicated addresses.
type userAddrs struct {
	v4, v6  []netaddr.Addr
	abusive bool
}

// NewUserCentric returns an analyzer accepting every entity.
func NewUserCentric() *UserCentric {
	return &UserCentric{seen: make(map[pairKey]struct{}), users: make(map[uint64]*userAddrs)}
}

// NewUserCentricFor returns an analyzer restricted to abusive accounts
// (abusive = true) or benign users (abusive = false).
func NewUserCentricFor(abusive bool) *UserCentric {
	uc := NewUserCentric()
	uc.abusiveOnly = abusive
	uc.benignOnly = !abusive
	return uc
}

// Observe feeds one observation.
func (uc *UserCentric) Observe(o telemetry.Observation) {
	if (uc.abusiveOnly && !o.Abusive) || (uc.benignOnly && o.Abusive) {
		return
	}
	if !o.Addr.IsValid() {
		return
	}
	key := pairKey{uid: o.UserID, pfx: netaddr.PrefixFrom(o.Addr, o.Addr.Bits())}
	if _, dup := uc.seen[key]; dup {
		return
	}
	uc.seen[key] = struct{}{}
	u := uc.users[o.UserID]
	if u == nil {
		u = &userAddrs{abusive: o.Abusive}
		uc.users[o.UserID] = u
	}
	if o.Addr.Is4() {
		u.v4 = append(u.v4, o.Addr)
	} else {
		u.v6 = append(u.v6, o.Addr)
	}
}

// Users returns the number of distinct entities observed.
func (uc *UserCentric) Users() int { return len(uc.users) }

// Merge folds another analyzer's state into uc, deduplicating pairs the
// two saw in common. Both analyzers must use the same restriction. Merge
// enables sharded parallel analysis: feed disjoint telemetry shards to
// separate analyzers, then merge.
func (uc *UserCentric) Merge(other *UserCentric) {
	for key := range other.seen {
		if _, dup := uc.seen[key]; dup {
			continue
		}
		uc.seen[key] = struct{}{}
		u := uc.users[key.uid]
		if u == nil {
			ou := other.users[key.uid]
			u = &userAddrs{abusive: ou != nil && ou.abusive}
			uc.users[key.uid] = u
		}
		if key.pfx.Family() == netaddr.IPv4 {
			u.v4 = append(u.v4, key.pfx.Addr())
		} else {
			u.v6 = append(u.v6, key.pfx.Addr())
		}
	}
}

// AddrsPerUser returns the histogram of distinct addresses per user for
// one family, counting only users that have at least one address of that
// family (matching the paper's per-protocol user populations).
func (uc *UserCentric) AddrsPerUser(fam netaddr.Family) *stats.IntHist {
	h := stats.NewIntHist(64)
	for _, u := range uc.users {
		n := len(u.v4)
		if fam == netaddr.IPv6 {
			n = len(u.v6)
		}
		if n > 0 {
			h.Add(n)
		}
	}
	return h
}

// SpanShare reports, for each requested IPv6 prefix length, the fraction
// of IPv6 users whose addresses span exactly 1, at most 2, and at most 3
// distinct prefixes of that length (Figure 4).
type SpanShare struct {
	Length                int
	One, AtMost2, AtMost3 float64
}

// PrefixSpans computes Figure 4's curves for the given prefix lengths.
func (uc *UserCentric) PrefixSpans(lengths []int) []SpanShare {
	out := make([]SpanShare, len(lengths))
	for i, l := range lengths {
		var one, two, three, total int
		set := make(map[netaddr.Prefix]struct{}, 16)
		for _, u := range uc.users {
			if len(u.v6) == 0 {
				continue
			}
			clear(set)
			for _, a := range u.v6 {
				set[netaddr.PrefixFrom(a, l)] = struct{}{}
			}
			total++
			switch n := len(set); {
			case n == 1:
				one++
				two++
				three++
			case n == 2:
				two++
				three++
			case n == 3:
				three++
			}
		}
		s := SpanShare{Length: l}
		if total > 0 {
			s.One = float64(one) / float64(total)
			s.AtMost2 = float64(two) / float64(total)
			s.AtMost3 = float64(three) / float64(total)
		}
		out[i] = s
	}
	return out
}

// PrefixesPerUser returns the histogram of distinct prefixes of the
// given length per IPv6 user (used by the outlier analyses in §5.2.3).
func (uc *UserCentric) PrefixesPerUser(length int) *stats.IntHist {
	h := stats.NewIntHist(64)
	set := make(map[netaddr.Prefix]struct{}, 16)
	for _, u := range uc.users {
		if len(u.v6) == 0 {
			continue
		}
		clear(set)
		for _, a := range u.v6 {
			set[netaddr.PrefixFrom(a, length)] = struct{}{}
		}
		h.Add(len(set))
	}
	return h
}

// TopUser is a user ranked by address count.
type TopUser struct {
	UID   uint64
	Count int
}

// TopUsersByAddrs returns the k users with the most distinct addresses
// of the family, descending.
func (uc *UserCentric) TopUsersByAddrs(fam netaddr.Family, k int) []TopUser {
	tops := make([]TopUser, 0, len(uc.users))
	for uid, u := range uc.users {
		n := len(u.v4)
		if fam == netaddr.IPv6 {
			n = len(u.v6)
		}
		if n > 0 {
			tops = append(tops, TopUser{UID: uid, Count: n})
		}
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].Count != tops[j].Count {
			return tops[i].Count > tops[j].Count
		}
		return tops[i].UID < tops[j].UID
	})
	if k < len(tops) {
		tops = tops[:k]
	}
	return tops
}

// UsersWithMoreThan counts users with strictly more than n distinct
// addresses of the family.
func (uc *UserCentric) UsersWithMoreThan(fam netaddr.Family, n int) int {
	count := 0
	for _, u := range uc.users {
		c := len(u.v4)
		if fam == netaddr.IPv6 {
			c = len(u.v6)
		}
		if c > n {
			count++
		}
	}
	return count
}

// ClientAddrPatterns summarizes §4.4: the share of IPv6 users seen on
// transition-protocol addresses and on EUI-64 (MAC-embedding) addresses,
// and among multi-address EUI-64 users, the share that reuse one IID.
type ClientAddrPatterns struct {
	V6Users         int
	TeredoShare     float64
	SixToFourShare  float64
	EUI64Share      float64
	EUI64IIDReuse   float64 // among EUI-64 users with >= 2 addresses
	StructuredShare float64
	RandomIIDShare  float64
}

// AddrPatterns computes the §4.4 summary over the observed window.
func (uc *UserCentric) AddrPatterns() ClientAddrPatterns {
	var p ClientAddrPatterns
	var teredo, sixToFour, eui, structured, random int
	var euiMulti, euiReuse int
	for _, u := range uc.users {
		if len(u.v6) == 0 {
			continue
		}
		p.V6Users++
		var hasTeredo, has6to4, hasEUI, hasStruct, hasRandom bool
		iids := make(map[uint64]struct{}, 4)
		euiAddrs := 0
		for _, a := range u.v6 {
			switch netaddr.Classify(a) {
			case netaddr.KindTeredo:
				hasTeredo = true
			case netaddr.Kind6to4:
				has6to4 = true
			case netaddr.KindEUI64:
				hasEUI = true
				euiAddrs++
				iids[a.IID()] = struct{}{}
			case netaddr.KindStructuredIID:
				hasStruct = true
			default:
				hasRandom = true
			}
		}
		if hasTeredo {
			teredo++
		}
		if has6to4 {
			sixToFour++
		}
		if hasEUI {
			eui++
			if len(u.v6) >= 2 && euiAddrs >= 2 {
				euiMulti++
				if len(iids) == 1 {
					euiReuse++
				}
			}
		}
		if hasStruct {
			structured++
		}
		if hasRandom {
			random++
		}
	}
	if p.V6Users > 0 {
		n := float64(p.V6Users)
		p.TeredoShare = float64(teredo) / n
		p.SixToFourShare = float64(sixToFour) / n
		p.EUI64Share = float64(eui) / n
		p.StructuredShare = float64(structured) / n
		p.RandomIIDShare = float64(random) / n
	}
	if euiMulti > 0 {
		p.EUI64IIDReuse = float64(euiReuse) / float64(euiMulti)
	}
	return p
}
