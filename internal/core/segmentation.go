package core

import (
	"sort"

	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/stats"
	"userv6/internal/telemetry"
)

// Segmentation breaks the user-centric metrics down by access-network
// kind (mobile, residential, enterprise, ...) — the paper's first listed
// direction for future work (§8: "characterizing IPv6 behavior across
// different network types"). Observations are attributed to a segment
// via a caller-supplied classifier (typically ASN -> Kind from the world
// model, or a routing-table lookup in a real deployment).
type Segmentation struct {
	classify func(telemetry.Observation) (netmodel.Kind, bool)
	segments map[netmodel.Kind]*segmentAcc
}

type segmentAcc struct {
	seen    map[pairKey]struct{}
	userV4  map[uint64]int
	userV6  map[uint64]int
	userAny map[uint64]bool // true once the user used v6 in this segment
	reqV4   uint64
	reqV6   uint64
}

func newSegmentAcc() *segmentAcc {
	return &segmentAcc{
		seen:    make(map[pairKey]struct{}),
		userV4:  make(map[uint64]int),
		userV6:  make(map[uint64]int),
		userAny: make(map[uint64]bool),
	}
}

// NewSegmentation returns an analyzer using the given classifier.
// Observations the classifier rejects are dropped.
func NewSegmentation(classify func(telemetry.Observation) (netmodel.Kind, bool)) *Segmentation {
	return &Segmentation{
		classify: classify,
		segments: make(map[netmodel.Kind]*segmentAcc),
	}
}

// ClassifyByASN builds a classifier from an ASN->Kind table.
func ClassifyByASN(kinds map[netmodel.ASN]netmodel.Kind) func(telemetry.Observation) (netmodel.Kind, bool) {
	return func(o telemetry.Observation) (netmodel.Kind, bool) {
		k, ok := kinds[o.ASN]
		return k, ok
	}
}

// Observe feeds one observation.
func (s *Segmentation) Observe(o telemetry.Observation) {
	if !o.Addr.IsValid() {
		return
	}
	kind, ok := s.classify(o)
	if !ok {
		return
	}
	acc := s.segments[kind]
	if acc == nil {
		acc = newSegmentAcc()
		s.segments[kind] = acc
	}
	if o.Addr.Is6() {
		acc.reqV6 += uint64(o.Requests)
	} else {
		acc.reqV4 += uint64(o.Requests)
	}
	if _, exists := acc.userAny[o.UserID]; !exists {
		acc.userAny[o.UserID] = false
	}
	if o.Addr.Is6() {
		acc.userAny[o.UserID] = true
	}
	key := pairKey{uid: o.UserID, pfx: netaddr.PrefixFrom(o.Addr, o.Addr.Bits())}
	if _, dup := acc.seen[key]; dup {
		return
	}
	acc.seen[key] = struct{}{}
	if o.Addr.Is6() {
		acc.userV6[o.UserID]++
	} else {
		acc.userV4[o.UserID]++
	}
}

// SegmentReport is one network kind's behavioral summary.
type SegmentReport struct {
	Kind  netmodel.Kind
	Users int
	// V6UserShare is the fraction of the segment's users seen over v6.
	V6UserShare float64
	// V6ReqShare is the fraction of requests over v6.
	V6ReqShare float64
	// MedianV4Addrs / MedianV6Addrs are per-user medians of distinct
	// addresses (over users with at least one of the family).
	MedianV4Addrs, MedianV6Addrs int
}

// Report summarizes every observed segment, ordered by Kind.
func (s *Segmentation) Report() []SegmentReport {
	out := make([]SegmentReport, 0, len(s.segments))
	for kind, acc := range s.segments {
		r := SegmentReport{Kind: kind, Users: len(acc.userAny)}
		v6users := 0
		for _, hasV6 := range acc.userAny {
			if hasV6 {
				v6users++
			}
		}
		if r.Users > 0 {
			r.V6UserShare = float64(v6users) / float64(r.Users)
		}
		if total := acc.reqV4 + acc.reqV6; total > 0 {
			r.V6ReqShare = float64(acc.reqV6) / float64(total)
		}
		r.MedianV4Addrs = medianOfCounts(acc.userV4)
		r.MedianV6Addrs = medianOfCounts(acc.userV6)
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// Segment returns one kind's report and whether it was observed.
func (s *Segmentation) Segment(kind netmodel.Kind) (SegmentReport, bool) {
	if _, ok := s.segments[kind]; !ok {
		return SegmentReport{}, false
	}
	for _, r := range s.Report() {
		if r.Kind == kind {
			return r, true
		}
	}
	return SegmentReport{}, false
}

func medianOfCounts(m map[uint64]int) int {
	if len(m) == 0 {
		return 0
	}
	h := stats.NewIntHist(64)
	for _, c := range m {
		h.Add(c)
	}
	return h.Median()
}
