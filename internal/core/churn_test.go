package core

import (
	"math"
	"testing"
)

func TestChurnAttributionCauses(t *testing.T) {
	c := NewChurnAttribution(5)
	// History (before CountFrom): user 1 on one address.
	c.Observe(obs(1, "2001:db8:0:1::a", 0, false))

	// New IID in the known /64: rotation.
	c.Observe(obs(1, "2001:db8:0:1::b", 5, false))
	// New /64 in the known /44 (2001:db8::/44 covers both): subnet move.
	c.Observe(obs(1, "2001:db8:0:2::a", 6, false))
	// Entirely new /44: network switch.
	c.Observe(obs(1, "2a00:1450:4001::1", 7, false))

	b := c.Breakdown()
	if b.Total != 3 {
		t.Fatalf("total = %d", b.Total)
	}
	if b.IIDRotation != 1 || b.SubnetMove != 1 || b.NetworkSwitch != 1 {
		t.Fatalf("breakdown = %+v", b)
	}
	if math.Abs(b.Share(IIDRotation)-1.0/3) > 1e-12 {
		t.Fatalf("share = %v", b.Share(IIDRotation))
	}
}

func TestChurnWarmupNotCounted(t *testing.T) {
	c := NewChurnAttribution(10)
	c.Observe(obs(1, "2001:db8::1", 0, false))
	c.Observe(obs(1, "2001:db8::2", 3, false))
	if b := c.Breakdown(); b.Total != 0 {
		t.Fatalf("warmup counted: %+v", b)
	}
	// But warmup built history: a rotation after CountFrom attributes
	// against it.
	c.Observe(obs(1, "2001:db8::3", 10, false))
	b := c.Breakdown()
	if b.Total != 1 || b.IIDRotation != 1 {
		t.Fatalf("breakdown = %+v", b)
	}
}

func TestChurnDedupAndV4Ignored(t *testing.T) {
	c := NewChurnAttribution(0)
	c.Observe(obs(1, "10.0.0.1", 0, false))
	if c.Breakdown().Total != 0 {
		t.Fatal("v4 counted")
	}
	c.Observe(obs(1, "2001:db8::1", 0, false))
	c.Observe(obs(1, "2001:db8::1", 1, false))
	c.Observe(obs(1, "2001:db8::1", 2, false))
	if b := c.Breakdown(); b.Total != 1 {
		t.Fatalf("repeat sightings counted: %+v", b)
	}
}

func TestChurnFirstSightingIsNetworkSwitch(t *testing.T) {
	c := NewChurnAttribution(0)
	c.Observe(obs(7, "2001:db8::1", 0, false))
	b := c.Breakdown()
	if b.NetworkSwitch != 1 {
		t.Fatalf("first sighting = %+v", b)
	}
}

func TestChurnCauseStrings(t *testing.T) {
	if IIDRotation.String() != "iid-rotation" || SubnetMove.String() != "subnet-move" ||
		NetworkSwitch.String() != "network-switch" {
		t.Fatal("labels wrong")
	}
}
