package core

import (
	"sort"

	"userv6/internal/netmodel"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// Prevalence tracks daily IPv6 shares of users and requests (Figure 1)
// and per-ASN / per-country user IPv6 ratios (Tables 1 and 2). The zero
// value is not ready; use NewPrevalence.
type Prevalence struct {
	days map[simtime.Day]*dayTally
	// per-entity per-window tallies for ASN/country tables.
	userSeen map[userDayKey]uint8 // bitmask: 1 = any, 2 = v6
	asn      map[netmodel.ASN]*ratioTally
	country  map[string]*ratioTally
	// asnSeen/countrySeen dedup (user, asn) and (user, country).
	asnSeen     map[userASNKey]uint8
	countrySeen map[userCountryKey]uint8
}

type dayTally struct {
	reqV4, reqV6 uint64
}

type userDayKey struct {
	uid uint64
	day simtime.Day
}

type userASNKey struct {
	uid uint64
	asn netmodel.ASN
}

type userCountryKey struct {
	uid uint64
	cc  [2]byte
}

type ratioTally struct {
	users, v6Users int
}

// NewPrevalence returns an empty prevalence tracker.
func NewPrevalence() *Prevalence {
	return &Prevalence{
		days:        make(map[simtime.Day]*dayTally),
		userSeen:    make(map[userDayKey]uint8),
		asn:         make(map[netmodel.ASN]*ratioTally),
		country:     make(map[string]*ratioTally),
		asnSeen:     make(map[userASNKey]uint8),
		countrySeen: make(map[userCountryKey]uint8),
	}
}

// Observe feeds one observation (benign users only are expected, but the
// tracker is agnostic).
func (p *Prevalence) Observe(o telemetry.Observation) {
	d := p.days[o.Day]
	if d == nil {
		d = &dayTally{}
		p.days[o.Day] = d
	}
	isV6 := o.Addr.Is6()
	if isV6 {
		d.reqV6 += uint64(o.Requests)
	} else {
		d.reqV4 += uint64(o.Requests)
	}

	mark := uint8(1)
	if isV6 {
		mark = 3
	}
	p.userSeen[userDayKey{o.UserID, o.Day}] |= mark

	// ASN table: a user counts toward an ASN if they used it at all,
	// and toward its v6 ratio if they used it over IPv6.
	ak := userASNKey{o.UserID, o.ASN}
	prev := p.asnSeen[ak]
	p.asnSeen[ak] = prev | mark
	t := p.asn[o.ASN]
	if t == nil {
		t = &ratioTally{}
		p.asn[o.ASN] = t
	}
	if prev == 0 {
		t.users++
	}
	if prev&2 == 0 && mark&2 != 0 {
		t.v6Users++
	}

	ck := userCountryKey{o.UserID, o.Country}
	prevC := p.countrySeen[ck]
	p.countrySeen[ck] = prevC | mark
	ct := p.country[o.CountryCode()]
	if ct == nil {
		ct = &ratioTally{}
		p.country[o.CountryCode()] = ct
	}
	if prevC == 0 {
		ct.users++
	}
	if prevC&2 == 0 && mark&2 != 0 {
		ct.v6Users++
	}
}

// Merge folds another tracker's state into p, exactly for any split of
// the observation stream: request tallies sum, the per-(user, window)
// bitmasks OR, and the ASN/country user tallies are recomputed
// incrementally from the mask transitions — a user contributes to an
// entity's count the first time any shard saw them, and to its v6 count
// the first time any shard saw them over IPv6.
func (p *Prevalence) Merge(other *Prevalence) {
	for day, od := range other.days {
		d := p.days[day]
		if d == nil {
			d = &dayTally{}
			p.days[day] = d
		}
		d.reqV4 += od.reqV4
		d.reqV6 += od.reqV6
	}
	for k, m := range other.userSeen {
		p.userSeen[k] |= m
	}
	for k, m := range other.asnSeen {
		prev := p.asnSeen[k]
		p.asnSeen[k] = prev | m
		t := p.asn[k.asn]
		if t == nil {
			t = &ratioTally{}
			p.asn[k.asn] = t
		}
		if prev == 0 && m != 0 {
			t.users++
		}
		if prev&2 == 0 && m&2 != 0 {
			t.v6Users++
		}
	}
	for k, m := range other.countrySeen {
		prev := p.countrySeen[k]
		p.countrySeen[k] = prev | m
		cc := string(k.cc[:])
		t := p.country[cc]
		if t == nil {
			t = &ratioTally{}
			p.country[cc] = t
		}
		if prev == 0 && m != 0 {
			t.users++
		}
		if prev&2 == 0 && m&2 != 0 {
			t.v6Users++
		}
	}
}

// DayShare is one day's IPv6 prevalence.
type DayShare struct {
	Day                  simtime.Day
	UserShare, ReqShare  float64
	Users, V6Users       int
	Requests, V6Requests uint64
}

// Daily returns per-day IPv6 prevalence ordered by day (Figure 1).
func (p *Prevalence) Daily() []DayShare {
	perDay := make(map[simtime.Day]*struct{ users, v6 int })
	for k, mark := range p.userSeen {
		t := perDay[k.day]
		if t == nil {
			t = &struct{ users, v6 int }{}
			perDay[k.day] = t
		}
		t.users++
		if mark&2 != 0 {
			t.v6++
		}
	}
	out := make([]DayShare, 0, len(p.days))
	for day, d := range p.days {
		s := DayShare{Day: day, Requests: d.reqV4 + d.reqV6, V6Requests: d.reqV6}
		if s.Requests > 0 {
			s.ReqShare = float64(d.reqV6) / float64(s.Requests)
		}
		if u := perDay[day]; u != nil {
			s.Users, s.V6Users = u.users, u.v6
			if u.users > 0 {
				s.UserShare = float64(u.v6) / float64(u.users)
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Day < out[j].Day })
	return out
}

// RatioRow is one ASN's or country's IPv6 user ratio.
type RatioRow struct {
	ASN     netmodel.ASN
	Name    string
	Country string
	Users   int
	Ratio   float64
}

// TopASNs returns ASNs with at least minUsers users, ranked by v6 user
// ratio descending (Table 1). resolve maps ASNs to display names and may
// be nil.
func (p *Prevalence) TopASNs(minUsers, k int, resolve func(netmodel.ASN) string) []RatioRow {
	rows := make([]RatioRow, 0, len(p.asn))
	for asn, t := range p.asn {
		if t.users < minUsers {
			continue
		}
		r := RatioRow{ASN: asn, Users: t.users, Ratio: float64(t.v6Users) / float64(t.users)}
		if resolve != nil {
			r.Name = resolve(asn)
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Ratio != rows[j].Ratio {
			return rows[i].Ratio > rows[j].Ratio
		}
		return rows[i].ASN < rows[j].ASN
	})
	if k > 0 && k < len(rows) {
		rows = rows[:k]
	}
	return rows
}

// ASNShareBands reports the fractions of qualifying ASNs (>= minUsers)
// with zero IPv6 usage and with under 10% of users on IPv6 (§4.2).
func (p *Prevalence) ASNShareBands(minUsers int) (zero, underTen float64, total int) {
	var z, u int
	for _, t := range p.asn {
		if t.users < minUsers {
			continue
		}
		total++
		ratio := float64(t.v6Users) / float64(t.users)
		if t.v6Users == 0 {
			z++
		} else if ratio < 0.10 {
			u++
		}
	}
	if total > 0 {
		zero = float64(z) / float64(total)
		underTen = float64(u) / float64(total)
	}
	return zero, underTen, total
}

// TopCountries returns countries with at least minUsers users, ranked by
// v6 user ratio descending (Table 2 / Figure 12).
func (p *Prevalence) TopCountries(minUsers, k int) []RatioRow {
	rows := make([]RatioRow, 0, len(p.country))
	for cc, t := range p.country {
		if t.users < minUsers {
			continue
		}
		rows = append(rows, RatioRow{Country: cc, Users: t.users, Ratio: float64(t.v6Users) / float64(t.users)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Ratio != rows[j].Ratio {
			return rows[i].Ratio > rows[j].Ratio
		}
		return rows[i].Country < rows[j].Country
	})
	if k > 0 && k < len(rows) {
		rows = rows[:k]
	}
	return rows
}

// CountryRatio returns one country's v6 user ratio and user count.
func (p *Prevalence) CountryRatio(code string) (ratio float64, users int) {
	t := p.country[code]
	if t == nil || t.users == 0 {
		return 0, 0
	}
	return float64(t.v6Users) / float64(t.users), t.users
}
