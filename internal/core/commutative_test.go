package core

import (
	"reflect"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/telemetry"
)

// orderSensitive is a stand-in for an analyzer that genuinely inspects
// consecutive-observation transitions and so must never be declared
// commutative. (Churn attribution used to be the in-tree example; its
// first-sight-tuple reformulation made it order-free.)
type orderSensitive struct{ last uint64 }

func (o *orderSensitive) Observe(ob telemetry.Observation) { o.last = ob.UserID }
func (o *orderSensitive) merge(*orderSensitive)            {}

// TestCommutativeDeclaration: the Commutative flag is per-registration
// and the set only reports commutative when every analyzer opted in;
// NonCommutative names the registrations that withhold the guarantee.
func TestCommutativeDeclaration(t *testing.T) {
	empty := NewAnalyzerSet()
	if !empty.Commutative() {
		t.Fatal("empty set must be vacuously commutative")
	}

	set := NewAnalyzerSet()
	AddCommutativeAnalyzer(set, NewUserCentricFor(false),
		func() *UserCentric { return NewUserCentricFor(false) }, (*UserCentric).Merge)
	AddCommutativeAnalyzer(set, NewChurnAttribution(2),
		func() *ChurnAttribution { return NewChurnAttribution(2) }, (*ChurnAttribution).Merge)
	if !set.Commutative() {
		t.Fatal("all-commutative set must report commutative")
	}
	if names := set.NonCommutative(); len(names) != 0 {
		t.Fatalf("commutative set names offenders: %v", names)
	}

	AddAnalyzer(set, &orderSensitive{},
		func() *orderSensitive { return &orderSensitive{} },
		func(into, from *orderSensitive) { into.merge(from) })
	if set.Commutative() {
		t.Fatal("one order-dependent analyzer must veto commutativity")
	}
	names := set.NonCommutative()
	if len(names) != 1 || names[0] != "*core.orderSensitive" {
		t.Fatalf("NonCommutative = %v, want the orderSensitive registration", names)
	}
}

// TestCommutativeFoldArbitrarySplit backs the declaration with
// behavior: UserCentric and IPCentric fed a reversed stream split
// round-robin (deliberately not user-disjoint) across replicas must
// fold to exactly the sequential state. This is the property
// analyze -unordered relies on.
func TestCommutativeFoldArbitrarySplit(t *testing.T) {
	stream := pipelineStream()

	mkSet := func() (*AnalyzerSet, *UserCentric, *IPCentric) {
		set := NewAnalyzerSet()
		uc := NewUserCentricFor(false)
		AddCommutativeAnalyzer(set, uc, func() *UserCentric { return NewUserCentricFor(false) }, (*UserCentric).Merge)
		ic := NewIPCentric(netaddr.IPv6, 64)
		AddCommutativeAnalyzer(set, ic, func() *IPCentric { return NewIPCentric(netaddr.IPv6, 64) }, (*IPCentric).Merge)
		return set, uc, ic
	}

	refSet, ruc, ric := mkSet()
	for _, o := range stream {
		refSet.Observe(o)
	}

	set, uc, ic := mkSet()
	if !set.Commutative() {
		t.Fatal("test set must be commutative")
	}
	replicas := []*Replica{set.NewReplica(), set.NewReplica(), set.NewReplica()}
	for i := range stream {
		o := stream[len(stream)-1-i] // reversed order
		replicas[i%len(replicas)].Observe(o)
	}
	set.Fold(replicas...)

	if uc.Users() != ruc.Users() {
		t.Fatalf("UserCentric users %d, want %d", uc.Users(), ruc.Users())
	}
	for _, fam := range []netaddr.Family{netaddr.IPv4, netaddr.IPv6} {
		if !reflect.DeepEqual(uc.AddrsPerUser(fam), ruc.AddrsPerUser(fam)) {
			t.Fatalf("AddrsPerUser(%v) diverged under unordered delivery", fam)
		}
	}
	if !reflect.DeepEqual(uc.PrefixSpans([]int{44, 64}), ruc.PrefixSpans([]int{44, 64})) {
		t.Fatal("PrefixSpans diverged under unordered delivery")
	}
	if ic.Prefixes() != ric.Prefixes() {
		t.Fatalf("IPCentric prefixes %d, want %d", ic.Prefixes(), ric.Prefixes())
	}
	if !reflect.DeepEqual(ic.UsersPerPrefix(), ric.UsersPerPrefix()) {
		t.Fatal("UsersPerPrefix diverged under unordered delivery")
	}
	if !reflect.DeepEqual(ic.TopPrefixes(5), ric.TopPrefixes(5)) {
		t.Fatal("TopPrefixes diverged under unordered delivery")
	}
}
