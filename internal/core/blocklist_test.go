package core

import (
	"math"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/simtime"
)

func TestBlocklistBasicFlow(t *testing.T) {
	b := NewBlocklistSim(netaddr.IPv4, 32, 0.5, 2)
	// Day 0 (warmup): pure-abusive addr A; mixed addr B (ratio 1/3).
	b.ObserveDay(obs(100, "10.0.0.1", 0, true))
	b.ObserveDay(obs(101, "10.0.0.2", 0, true))
	b.ObserveDay(obs(1, "10.0.0.2", 0, false))
	b.ObserveDay(obs(2, "10.0.0.2", 0, false))
	b.EndDay()
	if b.ListSize() != 1 {
		t.Fatalf("list size = %d, want only the pure address", b.ListSize())
	}
	// No hits counted on warmup day.
	if c := b.Counts(); c.TP+c.FP+c.TN+c.FN != 0 {
		t.Fatalf("warmup day tallied: %+v", c)
	}

	// Day 1: AA 102 returns to addr A (listed -> TP); AA 103 appears on
	// fresh addr C (FN); benign 3 appears on A (FP); benign 4 elsewhere
	// (TN).
	b.ObserveDay(obs(102, "10.0.0.1", 1, true))
	b.ObserveDay(obs(103, "10.0.0.3", 1, true))
	b.ObserveDay(obs(3, "10.0.0.1", 1, false))
	b.ObserveDay(obs(4, "10.0.0.4", 1, false))
	b.EndDay()

	c := b.Counts()
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestBlocklistTTLExpiry(t *testing.T) {
	// TTL 1: an entry created at the end of day 0 covers day 1 only.
	b := NewBlocklistSim(netaddr.IPv4, 32, 0.5, 1)
	b.ObserveDay(obs(100, "10.0.0.1", 0, true))
	b.EndDay()
	if b.ListSize() != 1 {
		t.Fatalf("list = %d", b.ListSize())
	}
	b.ObserveDay(obs(101, "10.0.0.1", 1, true)) // covered (TP)
	b.ObserveDay(obs(5, "10.0.0.9", 1, false))
	b.EndDay()
	if c := b.Counts(); c.TP != 1 || c.TN != 1 {
		t.Fatalf("TTL-1 day-1 counts = %+v", c)
	}
	// The day-0 entry is gone after day 1 (it was refreshed by AA 101
	// though, covering day 2); an unrefreshed entry vanishes:
	b2 := NewBlocklistSim(netaddr.IPv4, 32, 0.5, 1)
	b2.ObserveDay(obs(100, "10.0.0.1", 0, true))
	b2.EndDay()
	b2.ObserveDay(obs(5, "10.0.0.9", 1, false)) // nothing abusive today
	b2.EndDay()
	if b2.ListSize() != 0 {
		t.Fatalf("entry not evicted: %d", b2.ListSize())
	}
	// Day 2: the original entry no longer covers.
	b2.ObserveDay(obs(102, "10.0.0.1", 2, true))
	b2.EndDay()
	if c := b2.Counts(); c.TP != 0 || c.FN != 1 {
		t.Fatalf("expired entry still hit: %+v", c)
	}

	// Longer TTL covers later days without refresh.
	b3 := NewBlocklistSim(netaddr.IPv4, 32, 0.5, 3)
	b3.ObserveDay(obs(100, "10.0.0.1", 0, true))
	b3.EndDay()
	b3.ObserveDay(obs(5, "10.0.0.9", 1, false))
	b3.EndDay()
	b3.ObserveDay(obs(103, "10.0.0.1", 2, true)) // still covered
	b3.EndDay()
	if c := b3.Counts(); c.TP != 1 {
		t.Fatalf("TTL-3 counts = %+v", c)
	}
}

func TestBlocklistRelistExtends(t *testing.T) {
	b := NewBlocklistSim(netaddr.IPv4, 32, 0.5, 2)
	for day := simtime.Day(0); day < 5; day++ {
		b.ObserveDay(obs(100+uint64(day), "10.0.0.1", day, true))
		b.EndDay()
	}
	// Re-listed daily: all 4 measured days are hits.
	if c := b.Counts(); c.TP != 4 || c.FN != 0 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestBlocklistThresholdZeroListsAnyAbuse(t *testing.T) {
	b := NewBlocklistSim(netaddr.IPv4, 32, 0, 2)
	b.ObserveDay(obs(100, "10.0.0.2", 0, true))
	for u := uint64(1); u <= 9; u++ {
		b.ObserveDay(obs(u, "10.0.0.2", 0, false))
	}
	b.EndDay()
	if b.ListSize() != 1 {
		t.Fatalf("threshold-0 did not list mixed address")
	}
}

func TestBlocklistPrefixGranularity(t *testing.T) {
	b := NewBlocklistSim(netaddr.IPv6, 64, 0, 2)
	b.ObserveDay(obs(100, "2001:db8:0:1::a", 0, true))
	b.EndDay()
	// Next day, different address in the same /64: covered.
	b.ObserveDay(obs(101, "2001:db8:0:1::b", 1, true))
	b.EndDay()
	if c := b.Counts(); c.TP != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestRateLimitCapsPerPrefixDay(t *testing.T) {
	r := NewRateLimitSim(netaddr.IPv4, 32, 2)
	// 5 benign users on one address in one day: first 2 pass, 3
	// throttled.
	for u := uint64(1); u <= 5; u++ {
		r.Observe(obs(u, "10.0.0.1", 0, false))
	}
	// Duplicate sightings don't consume extra slots.
	r.Observe(obs(1, "10.0.0.1", 0, false))
	out := r.Outcome()
	if out.Benign != 5 || out.BenignThrottled != 3 {
		t.Fatalf("outcome = %+v", out)
	}
	if math.Abs(out.BenignShare-0.6) > 1e-12 {
		t.Fatalf("benign share = %v", out.BenignShare)
	}
}

func TestRateLimitResetsDaily(t *testing.T) {
	r := NewRateLimitSim(netaddr.IPv4, 32, 2)
	for day := simtime.Day(0); day < 3; day++ {
		for u := uint64(1); u <= 2; u++ {
			r.Observe(obs(u, "10.0.0.1", day, false))
		}
	}
	if out := r.Outcome(); out.BenignThrottled != 0 {
		t.Fatalf("daily reset failed: %+v", out)
	}
}

func TestRateLimitCatchesAbusiveBursts(t *testing.T) {
	r := NewRateLimitSim(netaddr.IPv6, 64, 3)
	// 10 abusive accounts share a /64 on one day; 2 benign users too.
	for u := uint64(0); u < 10; u++ {
		addr := netaddr.MustParseAddr("2001:db8:0:1::").WithIID(100 + u)
		r.Observe(obs(1000+u, addr.String(), 0, true))
	}
	r.Observe(obs(1, "2001:db8:0:2::1", 0, false))
	r.Observe(obs(2, "2001:db8:0:2::2", 0, false))
	out := r.Outcome()
	if out.AbusiveThrottled != 7 {
		t.Fatalf("abusive throttled = %d, want 7", out.AbusiveThrottled)
	}
	if out.BenignThrottled != 0 {
		t.Fatalf("benign throttled = %d", out.BenignThrottled)
	}
	if out.AbusiveShare <= out.BenignShare {
		t.Fatal("rate limit failed to separate populations")
	}
}

func TestRateLimitFamilyFilter(t *testing.T) {
	r := NewRateLimitSim(netaddr.IPv4, 32, 1)
	r.Observe(obs(1, "2001:db8::1", 0, false))
	if out := r.Outcome(); out.Benign != 0 {
		t.Fatal("v6 observation counted by v4 limiter")
	}
}
