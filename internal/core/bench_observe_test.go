package core

import (
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/rng"
	"userv6/internal/telemetry"
)

// benchObservations builds a reusable mixed stream: many users across a
// few thousand /64s, mostly IPv6 with an IPv4 minority, the shape the
// analyzers see from real generation.
func benchObservations(n int) []telemetry.Observation {
	src := rng.New(3)
	obs := make([]telemetry.Observation, n)
	for i := range obs {
		o := telemetry.Observation{
			Day:      0,
			UserID:   uint64(src.Intn(50_000)),
			ASN:      netmodel.ASN(100 + src.Intn(64)),
			Requests: uint32(1 + src.Intn(20)),
		}
		if src.Intn(5) == 0 {
			o.Addr = netaddr.AddrFrom4(0x0a00_0000 | uint32(src.Intn(1<<16)))
		} else {
			o.Addr = netaddr.AddrFrom6(0x2001_0db8_0000_0000|uint64(src.Intn(4096)), src.Uint64())
		}
		obs[i] = o
	}
	return obs
}

// BenchmarkUserCentricObserve measures the per-record cost of the
// user-centric address accounting — the dominant analyzer in the
// parallel pipeline's per-worker loop.
func BenchmarkUserCentricObserve(b *testing.B) {
	uc := NewUserCentric()
	obs := benchObservations(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uc.Observe(obs[i%len(obs)])
	}
}

// BenchmarkIPCentricObserve measures per-record prefix attribution at
// /64, the trie-backed half of the analysis hot path.
func BenchmarkIPCentricObserve(b *testing.B) {
	ic := NewIPCentric(netaddr.IPv6, 64)
	obs := benchObservations(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ic.Observe(obs[i%len(obs)])
	}
}
