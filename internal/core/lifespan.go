package core

import (
	"userv6/internal/netaddr"
	"userv6/internal/simtime"
	"userv6/internal/stats"
	"userv6/internal/telemetry"
)

// Lifespans measures how long (user, address) and (user, prefix) pairs
// live: the engine behind Figures 5 and 6. Feed it every observation of
// a lookback window ending at the reference day; it tracks, for each
// pair at each configured prefix length, the first day the pair was seen
// and whether it was seen on the reference day.
type Lifespans struct {
	// Ref is the reference day (the paper uses Apr 19).
	Ref simtime.Day
	// lengths are the prefix lengths tracked per family; /32 covers
	// IPv4 addresses, /128 IPv6 addresses.
	lengths []int
	pairs   map[pairKey]*pairLife
	// abusiveOnly/benignOnly restrict the population.
	abusiveOnly, benignOnly bool
}

type pairLife struct {
	first simtime.Day
	onRef bool
}

// NewLifespans returns an analyzer for the given reference day and
// prefix lengths. Lengths longer than a family's width are skipped per
// observation, so one list can mix IPv4 and IPv6 lengths.
func NewLifespans(ref simtime.Day, lengths ...int) *Lifespans {
	return &Lifespans{Ref: ref, lengths: append([]int(nil), lengths...), pairs: make(map[pairKey]*pairLife)}
}

// Restrict limits accounting to abusive accounts (true) or benign users
// (false). It returns the analyzer for chaining.
func (l *Lifespans) Restrict(abusive bool) *Lifespans {
	l.abusiveOnly = abusive
	l.benignOnly = !abusive
	return l
}

// Observe feeds one observation; days after Ref are ignored.
func (l *Lifespans) Observe(o telemetry.Observation) {
	if o.Day > l.Ref || !o.Addr.IsValid() {
		return
	}
	if (l.abusiveOnly && !o.Abusive) || (l.benignOnly && o.Abusive) {
		return
	}
	max := o.Addr.Bits()
	for _, length := range l.lengths {
		if length > max {
			continue
		}
		key := pairKey{uid: o.UserID, pfx: netaddr.PrefixFrom(o.Addr, length)}
		p := l.pairs[key]
		if p == nil {
			p = &pairLife{first: o.Day}
			l.pairs[key] = p
		} else if o.Day < p.first {
			p.first = o.Day
		}
		if o.Day == l.Ref {
			p.onRef = true
		}
	}
}

// Merge folds another analyzer's pair state into l: first-seen days take
// the minimum and reference-day sightings are ORed, so the result is
// exact for any split of the observation stream. Both analyzers must use
// the same Ref, lengths, and restriction.
func (l *Lifespans) Merge(other *Lifespans) {
	for key, op := range other.pairs {
		p := l.pairs[key]
		if p == nil {
			l.pairs[key] = &pairLife{first: op.first, onRef: op.onRef}
			continue
		}
		if op.first < p.first {
			p.first = op.first
		}
		p.onRef = p.onRef || op.onRef
	}
}

// AgeHist returns the histogram of pair ages (days since first seen,
// 0 = first seen on the reference day) for pairs of the given family and
// prefix length observed on the reference day (Figure 5's "across all
// pairs" curves).
func (l *Lifespans) AgeHist(fam netaddr.Family, length int) *stats.IntHist {
	h := stats.NewIntHist(64)
	for key, p := range l.pairs {
		if !p.onRef || key.pfx.Family() != fam || key.pfx.Bits() != length {
			continue
		}
		h.Add(int(l.Ref - p.first))
	}
	return h
}

// MedianAgePerUser returns the histogram of per-user median pair ages
// (Figure 5's "User med" curves).
func (l *Lifespans) MedianAgePerUser(fam netaddr.Family, length int) *stats.IntHist {
	perUser := make(map[uint64][]int)
	for key, p := range l.pairs {
		if !p.onRef || key.pfx.Family() != fam || key.pfx.Bits() != length {
			continue
		}
		perUser[key.uid] = append(perUser[key.uid], int(l.Ref-p.first))
	}
	h := stats.NewIntHist(64)
	for _, ages := range perUser {
		h.Add(medianInt(ages))
	}
	return h
}

// medianInt returns the lower median of xs (xs must be non-empty; it is
// modified by partial sorting).
func medianInt(xs []int) int {
	// Insertion sort: per-user age lists are tiny.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs[(len(xs)-1)/2]
}

// FreshShare is one prefix length's share of reference-day pairs first
// seen within the last 1, 2, and 3 days (Figure 6).
type FreshShare struct {
	Length                    int
	Within1, Within2, Within3 float64
	Pairs                     int
}

// FreshShares computes Figure 6's curves for the given family across
// all configured lengths valid for it.
func (l *Lifespans) FreshShares(fam netaddr.Family) []FreshShare {
	counts := make(map[int][4]int) // [pairs, <=1d, <=2d, <=3d]
	for key, p := range l.pairs {
		if !p.onRef || key.pfx.Family() != fam {
			continue
		}
		c := counts[key.pfx.Bits()]
		c[0]++
		age := int(l.Ref - p.first)
		if age < 1 {
			c[1]++
		}
		if age < 2 {
			c[2]++
		}
		if age < 3 {
			c[3]++
		}
		counts[key.pfx.Bits()] = c
	}
	out := make([]FreshShare, 0, len(counts))
	for _, length := range l.lengths {
		c, ok := counts[length]
		if !ok || c[0] == 0 {
			continue
		}
		fs := FreshShare{
			Length:  length,
			Pairs:   c[0],
			Within1: float64(c[1]) / float64(c[0]),
			Within2: float64(c[2]) / float64(c[0]),
			Within3: float64(c[3]) / float64(c[0]),
		}
		out = append(out, fs)
	}
	return out
}

// Pairs returns the number of tracked (user, prefix) pairs.
func (l *Lifespans) Pairs() int { return len(l.pairs) }
