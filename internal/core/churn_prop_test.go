package core

import (
	"sort"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/rng"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// seqChurn is the original order-dependent churn formulation, kept here
// verbatim as the reference the commutative reformulation must match:
// a (user, address) pair is "new" at its first stream sighting and is
// classified against the /64 and /44 history accumulated strictly
// before that sighting. It requires a per-user non-decreasing day feed.
type seqChurn struct {
	countFrom simtime.Day
	seenAddr  map[pairKey]struct{}
	seen64    map[pairKey]struct{}
	seen44    map[pairKey]struct{}
	counts    [3]uint64
}

func newSeqChurn(countFrom simtime.Day) *seqChurn {
	return &seqChurn{
		countFrom: countFrom,
		seenAddr:  make(map[pairKey]struct{}),
		seen64:    make(map[pairKey]struct{}),
		seen44:    make(map[pairKey]struct{}),
	}
}

func (c *seqChurn) Observe(o telemetry.Observation) {
	if !o.Addr.Is6() {
		return
	}
	addrKey := pairKey{uid: o.UserID, pfx: netaddr.PrefixFrom(o.Addr, 128)}
	if _, dup := c.seenAddr[addrKey]; dup {
		return
	}
	key64 := pairKey{uid: o.UserID, pfx: netaddr.PrefixFrom(o.Addr, 64)}
	key44 := pairKey{uid: o.UserID, pfx: netaddr.PrefixFrom(o.Addr, 44)}
	_, had64 := c.seen64[key64]
	_, had44 := c.seen44[key44]
	c.seenAddr[addrKey] = struct{}{}
	c.seen64[key64] = struct{}{}
	c.seen44[key44] = struct{}{}
	if o.Day < c.countFrom {
		return
	}
	switch {
	case had64:
		c.counts[IIDRotation]++
	case had44:
		c.counts[SubnetMove]++
	default:
		c.counts[NetworkSwitch]++
	}
}

func (c *seqChurn) breakdown() ChurnBreakdown {
	return ChurnBreakdown{
		IIDRotation:   c.counts[IIDRotation],
		SubnetMove:    c.counts[SubnetMove],
		NetworkSwitch: c.counts[NetworkSwitch],
		Total:         c.counts[0] + c.counts[1] + c.counts[2],
	}
}

// churnStream synthesizes a randomized observation stream designed to
// hit every classification edge: users rotating IIDs within /64s,
// moving /64s within /44s, switching /44s, repeat sightings of old
// addresses, same-day cohorts (several new addresses of one /64 — and
// several new /64s of one /44 — all first seen the same day), IPv4
// noise, and activity straddling the CountFrom warmup boundary.
func churnStream(seed uint64, users int, days simtime.Day) []telemetry.Observation {
	src := rng.New(seed)
	type state struct {
		region, subnet, iid uint64
	}
	states := make([]state, users)
	for u := range states {
		states[u] = state{region: src.Uint64() % 6, subnet: src.Uint64() % 4, iid: src.Uint64() % 32}
	}
	var out []telemetry.Observation
	addrOf := func(st state) netaddr.Addr {
		hi := 0x2001_0db8_0000_0000 | st.region<<20 | st.subnet
		return netaddr.AddrFrom6(hi, st.iid)
	}
	for day := simtime.Day(0); day < days; day++ {
		for u := 0; u < users; u++ {
			st := &states[u]
			// A burst of sightings per (user, day) manufactures
			// same-day cohorts: multiple fresh addresses, sometimes in
			// multiple fresh /64s of a fresh /44, land on one day.
			burst := 1 + int(src.Uint64()%3)
			for b := 0; b < burst; b++ {
				switch r := src.Uint64() % 100; {
				case r < 6:
					st.region = src.Uint64() % 6
					st.subnet = src.Uint64() % 4
					st.iid = src.Uint64() % 32
				case r < 26:
					st.subnet = src.Uint64() % 4
					st.iid = src.Uint64() % 32
				case r < 72:
					st.iid = src.Uint64() % 32
				default:
					// Keep the current address: a repeat sighting.
				}
				out = append(out, telemetry.Observation{
					Day:    day,
					UserID: uint64(u),
					Addr:   addrOf(*st),
				})
			}
			if u%4 == 0 {
				out = append(out, telemetry.Observation{
					Day:    day,
					UserID: uint64(u),
					Addr:   netaddr.AddrFrom4(0x0a00_0000 | uint32(u)),
				})
			}
		}
	}
	return out
}

// shuffled returns a seeded permutation of the stream.
func shuffled(src *rng.Source, stream []telemetry.Observation) []telemetry.Observation {
	out := append([]telemetry.Observation(nil), stream...)
	for i := len(out) - 1; i > 0; i-- {
		j := int(src.Uint64() % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// TestChurnCommutativeMatchesSequential is the equivalence property the
// commutative reformulation rests on: for randomized streams, the
// min-day formulation — fed any permutation, or split arbitrarily (not
// just user-disjointly) across replicas and merged — produces exactly
// the breakdown the order-dependent walk produces on the day-ordered
// stream. CountFrom sits mid-stream so the warmup boundary is
// exercised: history built before it must suppress counting without
// suppressing attribution.
func TestChurnCommutativeMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		seed      uint64
		users     int
		days      simtime.Day
		countFrom simtime.Day
	}{
		{seed: 1, users: 60, days: 8, countFrom: 3},
		{seed: 2, users: 120, days: 6, countFrom: 0},  // no warmup
		{seed: 3, users: 40, days: 10, countFrom: 10}, // all warmup: zero counts
		{seed: 4, users: 200, days: 5, countFrom: 2},
		{seed: 5, users: 15, days: 12, countFrom: 6},
	} {
		stream := churnStream(tc.seed, tc.users, tc.days)

		// Reference: the order-dependent walk over the day-ordered
		// stream (churnStream emits days in order already; sort keeps
		// the within-day order stable, mirroring a generator feed).
		sort.SliceStable(stream, func(i, j int) bool { return stream[i].Day < stream[j].Day })
		ref := newSeqChurn(tc.countFrom)
		for _, o := range stream {
			ref.Observe(o)
		}
		want := ref.breakdown()
		if tc.countFrom == 10 && want.Total != 0 {
			t.Fatalf("seed %d: warmup-only stream counted %+v", tc.seed, want)
		}

		src := rng.New(tc.seed * 7777)
		perm := shuffled(src, stream)

		// Property 1: a single analyzer fed the shuffled stream.
		one := NewChurnAttribution(tc.countFrom)
		for _, o := range perm {
			one.Observe(o)
		}
		if got := one.Breakdown(); got != want {
			t.Fatalf("seed %d: shuffled feed %+v, want %+v", tc.seed, got, want)
		}

		// Property 2: arbitrary (round-robin, user-interleaved) splits
		// of the shuffled stream across 1..5 replicas, merged.
		for replicas := 1; replicas <= 5; replicas++ {
			parts := make([]*ChurnAttribution, replicas)
			for i := range parts {
				parts[i] = NewChurnAttribution(tc.countFrom)
			}
			for i, o := range perm {
				parts[i%replicas].Observe(o)
			}
			merged := parts[0]
			for _, p := range parts[1:] {
				merged.Merge(p)
			}
			if got := merged.Breakdown(); got != want {
				t.Fatalf("seed %d, %d replicas: merged %+v, want %+v", tc.seed, replicas, got, want)
			}
		}

		// Property 3: a skewed (size-biased, block-wise) split — the
		// shape a block-parallel reader actually produces.
		a, b := NewChurnAttribution(tc.countFrom), NewChurnAttribution(tc.countFrom)
		cut := len(perm) / 7
		for i, o := range perm {
			if i < cut || i%3 == 0 {
				a.Observe(o)
			} else {
				b.Observe(o)
			}
		}
		a.Merge(b)
		if got := a.Breakdown(); got != want {
			t.Fatalf("seed %d: block split %+v, want %+v", tc.seed, got, want)
		}
	}
}

// TestChurnWarmupBoundaryExact pins the CountFrom boundary precisely:
// a pair first seen the day before CountFrom is history only; a pair
// first seen exactly on CountFrom counts — and both verdicts survive
// shuffling and re-sighting after the boundary.
func TestChurnWarmupBoundaryExact(t *testing.T) {
	obs := []telemetry.Observation{
		{Day: 4, UserID: 1, Addr: netaddr.MustParseAddr("2001:db8:0:1::a")}, // warmup: history only
		{Day: 5, UserID: 1, Addr: netaddr.MustParseAddr("2001:db8:0:1::b")}, // on boundary: IID rotation
		{Day: 6, UserID: 1, Addr: netaddr.MustParseAddr("2001:db8:0:1::a")}, // re-sight of warmup addr: nothing
		{Day: 5, UserID: 2, Addr: netaddr.MustParseAddr("2001:db8:0:2::a")}, // on boundary, no history: network switch
	}
	want := ChurnBreakdown{IIDRotation: 1, NetworkSwitch: 1, Total: 2}

	for perm := 0; perm < 6; perm++ {
		src := rng.New(uint64(perm) + 99)
		c := NewChurnAttribution(5)
		for _, o := range shuffled(src, obs) {
			c.Observe(o)
		}
		if got := c.Breakdown(); got != want {
			t.Fatalf("perm %d: %+v, want %+v", perm, got, want)
		}
	}
}
