package core

import (
	"sort"

	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/stats"
	"userv6/internal/telemetry"
)

// IPCentric accumulates the user populations of addresses or prefixes at
// one prefix length over its feeding window: the engine behind Figures
// 7-10 and the §6 outlier analyses. Use length 32 for IPv4 addresses,
// 128 for IPv6 addresses, or any IPv6 prefix length.
type IPCentric struct {
	// Length is the aggregation prefix length; Family selects which
	// observations are counted.
	Length int
	Family netaddr.Family

	// seen maps each (user, prefix) pair to whether the entity is
	// abusive — kept as a value (not struct{}) so shards can be merged.
	seen     map[pairKey]bool
	prefixes map[netaddr.Prefix]*prefixPop
}

// prefixPop is one prefix's population tally.
type prefixPop struct {
	benign, abusive uint32
}

// NewIPCentric returns an analyzer for one family and prefix length.
func NewIPCentric(fam netaddr.Family, length int) *IPCentric {
	return &IPCentric{
		Length:   length,
		Family:   fam,
		seen:     make(map[pairKey]bool),
		prefixes: make(map[netaddr.Prefix]*prefixPop),
	}
}

// Observe feeds one observation.
func (ic *IPCentric) Observe(o telemetry.Observation) {
	if o.Addr.Family() != ic.Family || ic.Length > o.Addr.Bits() {
		return
	}
	p := netaddr.PrefixFrom(o.Addr, ic.Length)
	key := pairKey{uid: o.UserID, pfx: p}
	if _, dup := ic.seen[key]; dup {
		return
	}
	ic.seen[key] = o.Abusive
	pop := ic.prefixes[p]
	if pop == nil {
		pop = &prefixPop{}
		ic.prefixes[p] = pop
	}
	if o.Abusive {
		pop.abusive++
	} else {
		pop.benign++
	}
}

// Prefixes returns the number of distinct prefixes observed.
func (ic *IPCentric) Prefixes() int { return len(ic.prefixes) }

// Merge folds another analyzer's state into ic, deduplicating (user,
// prefix) pairs. Both must use the same family and length. Merge enables
// sharded parallel analysis.
func (ic *IPCentric) Merge(other *IPCentric) {
	for key, abusive := range other.seen {
		if _, dup := ic.seen[key]; dup {
			continue
		}
		ic.seen[key] = abusive
		pop := ic.prefixes[key.pfx]
		if pop == nil {
			pop = &prefixPop{}
			ic.prefixes[key.pfx] = pop
		}
		if abusive {
			pop.abusive++
		} else {
			pop.benign++
		}
	}
}

// UsersPerPrefix returns the histogram of total users (benign + abusive)
// per prefix (Figures 7 and 9).
func (ic *IPCentric) UsersPerPrefix() *stats.IntHist {
	h := stats.NewIntHist(256)
	for _, pop := range ic.prefixes {
		h.Add(int(pop.benign + pop.abusive))
	}
	return h
}

// BenignPerPrefix returns the histogram of benign users per prefix.
func (ic *IPCentric) BenignPerPrefix() *stats.IntHist {
	h := stats.NewIntHist(256)
	for _, pop := range ic.prefixes {
		h.Add(int(pop.benign))
	}
	return h
}

// AbusivePerAbusivePrefix returns the histogram of abusive accounts per
// prefix, over prefixes with at least one abusive account (Figures 8 and
// 10a).
func (ic *IPCentric) AbusivePerAbusivePrefix() *stats.IntHist {
	h := stats.NewIntHist(64)
	for _, pop := range ic.prefixes {
		if pop.abusive > 0 {
			h.Add(int(pop.abusive))
		}
	}
	return h
}

// BenignPerAbusivePrefix returns the histogram of benign users per
// prefix, over prefixes with at least one abusive account (Figures 8 and
// 10b).
func (ic *IPCentric) BenignPerAbusivePrefix() *stats.IntHist {
	h := stats.NewIntHist(256)
	for _, pop := range ic.prefixes {
		if pop.abusive > 0 {
			h.Add(int(pop.benign))
		}
	}
	return h
}

// PrefixesWithMoreThan counts prefixes whose total user population
// strictly exceeds n.
func (ic *IPCentric) PrefixesWithMoreThan(n int) int {
	count := 0
	for _, pop := range ic.prefixes {
		if int(pop.benign+pop.abusive) > n {
			count++
		}
	}
	return count
}

// AbusivePrefixesWithMoreThan counts prefixes whose abusive population
// strictly exceeds n.
func (ic *IPCentric) AbusivePrefixesWithMoreThan(n int) int {
	count := 0
	for _, pop := range ic.prefixes {
		if int(pop.abusive) > n {
			count++
		}
	}
	return count
}

// HeavyPrefix is a prefix ranked by its user population.
type HeavyPrefix struct {
	Prefix         netaddr.Prefix
	Users, Abusive int
}

// TopPrefixes returns the k most user-populated prefixes, descending.
func (ic *IPCentric) TopPrefixes(k int) []HeavyPrefix {
	tops := make([]HeavyPrefix, 0, len(ic.prefixes))
	for p, pop := range ic.prefixes {
		tops = append(tops, HeavyPrefix{Prefix: p, Users: int(pop.benign + pop.abusive), Abusive: int(pop.abusive)})
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].Users != tops[j].Users {
			return tops[i].Users > tops[j].Users
		}
		return tops[i].Prefix.Addr().Less(tops[j].Prefix.Addr())
	})
	if k < len(tops) {
		tops = tops[:k]
	}
	return tops
}

// HeavyConcentration summarizes where heavily populated prefixes live:
// which ASNs own them and how many carry structured (gateway-style)
// interface identifiers — the basis for the paper's finding that heavy
// IPv6 addresses are predictable (§6.1.3).
type HeavyConcentration struct {
	// Heavy is the number of prefixes above the threshold.
	Heavy int
	// TopASN and TopASNShare identify the dominant owner.
	TopASN      netmodel.ASN
	TopASNShare float64
	// ASNs is the number of distinct owning ASNs.
	ASNs int
	// StructuredShare is the fraction of heavy prefixes whose base
	// address has a structured IID (only meaningful at length 128).
	StructuredShare float64
}

// ConcentrationAbove computes the heavy-prefix concentration for
// prefixes with more than n users, attributing ownership via asnOf.
func (ic *IPCentric) ConcentrationAbove(n int, asnOf func(netaddr.Addr) netmodel.ASN) HeavyConcentration {
	var hc HeavyConcentration
	perASN := make(map[netmodel.ASN]int)
	structured := 0
	for p, pop := range ic.prefixes {
		if int(pop.benign+pop.abusive) <= n {
			continue
		}
		hc.Heavy++
		if asnOf != nil {
			perASN[asnOf(p.Addr())]++
		}
		if netaddr.IsStructuredIID(p.Addr()) {
			structured++
		}
	}
	hc.ASNs = len(perASN)
	best := 0
	for asn, c := range perASN {
		if c > best || (c == best && asn < hc.TopASN) {
			best = c
			hc.TopASN = asn
		}
	}
	if hc.Heavy > 0 && best > 0 {
		hc.TopASNShare = float64(best) / float64(hc.Heavy)
	}
	if hc.Heavy > 0 {
		hc.StructuredShare = float64(structured) / float64(hc.Heavy)
	}
	return hc
}
