package core

// Plan: the one place that decides how an analysis run executes. The
// choice among sequential, hash-routed pipeline, fused, and unordered
// used to be re-derived independently by the library's AnalyzeDataset*
// wrappers and the CLI's analyze command; both now ask the AnalyzerSet
// to plan from the same inputs — requested mode, worker count,
// tolerance, and the source's shape — and get back the mode, the
// normalized pool size, and a human-readable reason (including which
// analyzers blocked a faster mode).

import (
	"fmt"
	"runtime"
	"strings"
)

// Mode is a concrete execution strategy for one analysis run.
type Mode int

const (
	// ModeSequential feeds the set's primaries directly from a
	// single-threaded read: the reference every parallel mode must
	// match.
	ModeSequential Mode = iota
	// ModePipeline hash-routes observations to analyzer workers by user
	// ID, preserving per-user stream order — exact for every analyzer,
	// commutative or not.
	ModePipeline
	// ModeFused gives each decode worker a private replica of every
	// analyzer, fed inline from the blocks it decodes, folded once at
	// the end. Exact only for commutative sets.
	ModeFused
	// ModeUnordered delivers batches in completion order into a replica
	// pool. Exact only for commutative sets.
	ModeUnordered
)

func (m Mode) String() string {
	switch m {
	case ModeSequential:
		return "sequential"
	case ModePipeline:
		return "pipeline"
	case ModeFused:
		return "fused"
	case ModeUnordered:
		return "unordered"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ModeRequest is what the caller asked for; the planner maps it to a
// Mode it can honor (or an error when it cannot).
type ModeRequest int

const (
	// RequestAuto picks the fastest exact mode: sequential when one
	// worker is requested, fused for commutative sets, pipeline
	// otherwise.
	RequestAuto ModeRequest = iota
	// RequestSequential forces the single-threaded reference path.
	RequestSequential
	// RequestPipeline forces hash-routed ordered delivery.
	RequestPipeline
	// RequestFused asks for the fused path; a non-commutative set falls
	// back to the pipeline (the historical AnalyzeDatasetFused
	// contract).
	RequestFused
	// RequestUnordered demands completion-order delivery; a
	// non-commutative set or a single-worker request is an error, not a
	// fallback (the historical AnalyzeDatasetUnordered contract).
	RequestUnordered
)

func (r ModeRequest) String() string {
	switch r {
	case RequestAuto:
		return "auto"
	case RequestSequential:
		return "sequential"
	case RequestPipeline:
		return "pipeline"
	case RequestFused:
		return "fused"
	case RequestUnordered:
		return "unordered"
	}
	return fmt.Sprintf("ModeRequest(%d)", int(r))
}

// PlanInput is everything mode selection depends on: the request, the
// worker budget, tolerance, and the source's shape as reported by
// dataset.SourceCaps.
type PlanInput struct {
	Request ModeRequest
	// Workers is the requested pool size as the caller spelled it:
	// <= 0 means GOMAXPROCS, 1 means explicitly single-threaded. The
	// distinction matters — unordered delivery refuses an explicit 1
	// but accepts "all CPUs" even on a one-CPU machine, where it
	// degrades gracefully rather than being a spelling error.
	Workers int
	// Tolerant selects the salvage read path on every part.
	Tolerant bool
	// Parts, SeekableParts, and Codec mirror dataset.SourceCaps.
	Parts         int
	SeekableParts bool
	Codec         string
}

// Plan is a resolved execution strategy: the mode, the normalized
// worker count, and why.
type Plan struct {
	Mode Mode
	// Workers is the resolved pool size (GOMAXPROCS applied; 1 for
	// sequential).
	Workers  int
	Parts    int
	Tolerant bool
	// Why is the one-line selection rationale, naming the
	// non-commutative analyzers whenever they constrained the choice.
	Why string
}

// Plan resolves a PlanInput against the set's commutativity
// declarations. It never starts goroutines; the executor reads the
// returned Mode. The only error cases are the unordered refusals: an
// explicit single worker, or analyzers that withhold the commutative
// declaration (named in the error).
func (s *AnalyzerSet) Plan(in PlanInput) (Plan, error) {
	p := Plan{Workers: in.Workers, Parts: in.Parts, Tolerant: in.Tolerant}
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	if p.Parts <= 0 {
		p.Parts = 1
	}
	offenders := s.NonCommutative()
	switch in.Request {
	case RequestSequential:
		p.Mode, p.Workers = ModeSequential, 1
		p.Why = "sequential requested: the single-threaded reference path"
	case RequestPipeline:
		p.Mode = ModePipeline
		p.Why = "pipeline requested: hash-routed delivery preserves per-user order"
	case RequestUnordered:
		if in.Workers == 1 {
			return Plan{}, fmt.Errorf("core: unordered analysis needs the parallel reader; use workers 0 or > 1")
		}
		if len(offenders) > 0 {
			return Plan{}, fmt.Errorf("core: unordered analysis requires every analyzer to declare a commutative Merge; non-commutative: %v", offenders)
		}
		p.Mode = ModeUnordered
		p.Why = "unordered requested and every analyzer declares a commutative Merge"
	default: // RequestAuto, RequestFused
		if in.Request == RequestAuto && in.Workers == 1 {
			p.Mode, p.Workers = ModeSequential, 1
			p.Why = "one worker requested: the single-threaded reference path"
			break
		}
		if len(offenders) > 0 {
			p.Mode = ModePipeline
			p.Why = fmt.Sprintf("fused needs commutative analyzers; %s withhold the declaration, so hash-routed pipeline delivery preserves per-user order",
				strings.Join(offenders, ", "))
			break
		}
		p.Mode = ModeFused
		p.Why = "every analyzer declares a commutative Merge: decode workers feed worker-local replicas, folded once"
	}
	return p, nil
}

// Explain renders the plan as one line for humans (the CLI's -explain
// flag): mode, pool size, part fan-out, and the selection rationale.
func (p Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s workers=%d", p.Mode, p.Workers)
	if p.Parts > 1 {
		fmt.Fprintf(&b, " parts=%d", p.Parts)
	}
	if p.Tolerant {
		b.WriteString(" tolerant")
	}
	if p.Why != "" {
		b.WriteString(" — ")
		b.WriteString(p.Why)
	}
	if p.Parts > 1 {
		b.WriteString(fmt.Sprintf("; %d parts analyzed independently (disjoint user ranges fold exactly)", p.Parts))
	}
	return b.String()
}
