package core

import (
	"math"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
)

func TestIPCentricUsersPerAddr(t *testing.T) {
	ic := NewIPCentric(netaddr.IPv4, 32)
	// Addr A: users 1, 2 (user 1 twice -> dedup). Addr B: user 3.
	ic.Observe(obs(1, "10.0.0.1", 0, false))
	ic.Observe(obs(1, "10.0.0.1", 1, false))
	ic.Observe(obs(2, "10.0.0.1", 0, false))
	ic.Observe(obs(3, "10.0.0.2", 0, false))
	// IPv6 observation ignored by a v4 analyzer.
	ic.Observe(obs(4, "2001:db8::1", 0, false))

	if ic.Prefixes() != 2 {
		t.Fatalf("prefixes = %d", ic.Prefixes())
	}
	h := ic.UsersPerPrefix()
	if h.N() != 2 || h.Max() != 2 {
		t.Fatalf("hist N=%d max=%d", h.N(), h.Max())
	}
	if got := h.CDFAt(1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("single-user share = %v", got)
	}
}

func TestIPCentricPrefixAggregation(t *testing.T) {
	ic := NewIPCentric(netaddr.IPv6, 64)
	// Two users on different addresses in the same /64.
	ic.Observe(obs(1, "2001:db8:0:1::a", 0, false))
	ic.Observe(obs(2, "2001:db8:0:1::b", 0, false))
	if ic.Prefixes() != 1 {
		t.Fatalf("prefixes = %d", ic.Prefixes())
	}
	if got := ic.UsersPerPrefix().Max(); got != 2 {
		t.Fatalf("users in /64 = %d", got)
	}
}

func TestIPCentricAbusiveSplits(t *testing.T) {
	ic := NewIPCentric(netaddr.IPv4, 32)
	// Addr A: 1 abusive + 2 benign. Addr B: 2 abusive, 0 benign.
	// Addr C: benign only.
	ic.Observe(obs(100, "10.0.0.1", 0, true))
	ic.Observe(obs(1, "10.0.0.1", 0, false))
	ic.Observe(obs(2, "10.0.0.1", 0, false))
	ic.Observe(obs(101, "10.0.0.2", 0, true))
	ic.Observe(obs(102, "10.0.0.2", 0, true))
	ic.Observe(obs(3, "10.0.0.3", 0, false))

	aa := ic.AbusivePerAbusivePrefix()
	if aa.N() != 2 {
		t.Fatalf("AA prefixes = %d", aa.N())
	}
	if got := aa.CDFAt(1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("single-AA share = %v", got)
	}
	benign := ic.BenignPerAbusivePrefix()
	if benign.N() != 2 {
		t.Fatalf("benign hist over AA prefixes N = %d", benign.N())
	}
	if got := benign.CDFAt(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("zero-benign share = %v", got)
	}
	all := ic.BenignPerPrefix()
	if all.N() != 3 {
		t.Fatalf("benign hist over all prefixes N = %d", all.N())
	}
	if got := ic.AbusivePrefixesWithMoreThan(1); got != 1 {
		t.Fatalf("AbusivePrefixesWithMoreThan(1) = %d", got)
	}
	if got := ic.PrefixesWithMoreThan(2); got != 1 {
		t.Fatalf("PrefixesWithMoreThan(2) = %d", got)
	}
}

func TestTopPrefixes(t *testing.T) {
	ic := NewIPCentric(netaddr.IPv4, 32)
	for u := uint64(0); u < 5; u++ {
		ic.Observe(obs(u, "10.0.0.1", 0, false))
	}
	ic.Observe(obs(9, "10.0.0.2", 0, true))
	tops := ic.TopPrefixes(10)
	if len(tops) != 2 || tops[0].Users != 5 || tops[1].Abusive != 1 {
		t.Fatalf("tops = %+v", tops)
	}
	if got := ic.TopPrefixes(1); len(got) != 1 {
		t.Fatalf("TopPrefixes(1) = %d entries", len(got))
	}
}

func TestConcentration(t *testing.T) {
	ic := NewIPCentric(netaddr.IPv6, 128)
	// Heavy gateway-style address (structured IID) with 3 users.
	gw := netaddr.MustParseAddr("2600:380:1:2::7")
	for u := uint64(0); u < 3; u++ {
		ic.Observe(obs(u, gw.String(), 0, false))
	}
	// Light random address.
	ic.Observe(obs(9, "2001:db8::a1b2:c3d4:e5f6:1122", 0, false))

	asnOf := func(a netaddr.Addr) netmodel.ASN {
		if netaddr.PrefixFrom(a, 32) == netaddr.MustParsePrefix("2600:380::/32") {
			return 20057
		}
		return 1
	}
	hc := ic.ConcentrationAbove(2, asnOf)
	if hc.Heavy != 1 || hc.TopASN != 20057 || hc.TopASNShare != 1 || hc.StructuredShare != 1 || hc.ASNs != 1 {
		t.Fatalf("concentration = %+v", hc)
	}
	// Threshold nobody crosses.
	if hc := ic.ConcentrationAbove(100, asnOf); hc.Heavy != 0 || hc.StructuredShare != 0 {
		t.Fatalf("empty concentration = %+v", hc)
	}
	// Nil asnOf must not panic.
	_ = ic.ConcentrationAbove(2, nil)
}
