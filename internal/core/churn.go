package core

import (
	"userv6/internal/netaddr"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// ChurnCause classifies why a user appeared on a new IPv6 address — the
// paper's §8 calls for exactly this ("investigating the causes of
// dynamic IPv6 behavior, similar to the exploration of IPv4 dynamic
// address reasons by Padmanabhan et al."). The attribution uses only
// telemetry (no world-model internals), so it would run unchanged on
// real data:
//
//   - IIDRotation: new address inside a /64 the user already occupied —
//     privacy-extension / temporary-address rotation;
//   - SubnetMove: new /64 but inside a /44 the user already occupied —
//     delegated-prefix re-draw or mobile gateway move within a carrier
//     region;
//   - NetworkSwitch: new /44 as well — roaming to a different network
//     (or a provider-level renumbering).
type ChurnCause uint8

const (
	// IIDRotation is a new IID within a known /64.
	IIDRotation ChurnCause = iota
	// SubnetMove is a new /64 within a known /44.
	SubnetMove
	// NetworkSwitch is an entirely new region of the address space.
	NetworkSwitch
)

// String labels the cause.
func (c ChurnCause) String() string {
	switch c {
	case IIDRotation:
		return "iid-rotation"
	case SubnetMove:
		return "subnet-move"
	default:
		return "network-switch"
	}
}

// ChurnAttribution tallies new (user, IPv6 address) pairs by cause.
// Feed observations in non-decreasing day order.
type ChurnAttribution struct {
	// Warmup days at the start of the stream establish per-user state
	// without being counted (a pair is only "new" against history).
	CountFrom simtime.Day

	seenAddr map[pairKey]struct{}
	seen64   map[pairKey]struct{}
	seen44   map[pairKey]struct{}
	counts   [3]uint64
}

// NewChurnAttribution counts new pairs from countFrom onward; earlier
// days only build history.
func NewChurnAttribution(countFrom simtime.Day) *ChurnAttribution {
	return &ChurnAttribution{
		CountFrom: countFrom,
		seenAddr:  make(map[pairKey]struct{}),
		seen64:    make(map[pairKey]struct{}),
		seen44:    make(map[pairKey]struct{}),
	}
}

// Observe feeds one observation (IPv6 only; others are ignored).
func (c *ChurnAttribution) Observe(o telemetry.Observation) {
	if !o.Addr.Is6() {
		return
	}
	addrKey := pairKey{uid: o.UserID, pfx: netaddr.PrefixFrom(o.Addr, 128)}
	if _, dup := c.seenAddr[addrKey]; dup {
		return
	}
	key64 := pairKey{uid: o.UserID, pfx: netaddr.PrefixFrom(o.Addr, 64)}
	key44 := pairKey{uid: o.UserID, pfx: netaddr.PrefixFrom(o.Addr, 44)}
	_, had64 := c.seen64[key64]
	_, had44 := c.seen44[key44]

	c.seenAddr[addrKey] = struct{}{}
	c.seen64[key64] = struct{}{}
	c.seen44[key44] = struct{}{}

	if o.Day < c.CountFrom {
		return
	}
	switch {
	case had64:
		c.counts[IIDRotation]++
	case had44:
		c.counts[SubnetMove]++
	default:
		c.counts[NetworkSwitch]++
	}
}

// Merge folds another attribution's state into c: the pair-history sets
// are unioned and the cause tallies summed. Unlike the purely
// set-algebraic analyzers, churn attribution is order-dependent within a
// user's stream, so the merge is exact only when the two analyzers saw
// disjoint user populations (each user's full, in-order history went to
// exactly one of them) and both use the same CountFrom. That is
// precisely the split the user-hash pipeline produces.
func (c *ChurnAttribution) Merge(other *ChurnAttribution) {
	for k := range other.seenAddr {
		c.seenAddr[k] = struct{}{}
	}
	for k := range other.seen64 {
		c.seen64[k] = struct{}{}
	}
	for k := range other.seen44 {
		c.seen44[k] = struct{}{}
	}
	for i, n := range other.counts {
		c.counts[i] += n
	}
}

// ChurnBreakdown is the attribution result.
type ChurnBreakdown struct {
	IIDRotation, SubnetMove, NetworkSwitch uint64
	Total                                  uint64
}

// Share returns the cause's fraction of all attributed churn.
func (b ChurnBreakdown) Share(cause ChurnCause) float64 {
	if b.Total == 0 {
		return 0
	}
	switch cause {
	case IIDRotation:
		return float64(b.IIDRotation) / float64(b.Total)
	case SubnetMove:
		return float64(b.SubnetMove) / float64(b.Total)
	default:
		return float64(b.NetworkSwitch) / float64(b.Total)
	}
}

// Breakdown returns the tallies.
func (c *ChurnAttribution) Breakdown() ChurnBreakdown {
	return ChurnBreakdown{
		IIDRotation:   c.counts[IIDRotation],
		SubnetMove:    c.counts[SubnetMove],
		NetworkSwitch: c.counts[NetworkSwitch],
		Total:         c.counts[0] + c.counts[1] + c.counts[2],
	}
}
