package core

import (
	"userv6/internal/netaddr"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// ChurnCause classifies why a user appeared on a new IPv6 address — the
// paper's §8 calls for exactly this ("investigating the causes of
// dynamic IPv6 behavior, similar to the exploration of IPv4 dynamic
// address reasons by Padmanabhan et al."). The attribution uses only
// telemetry (no world-model internals), so it would run unchanged on
// real data:
//
//   - IIDRotation: new address inside a /64 the user already occupied —
//     privacy-extension / temporary-address rotation;
//   - SubnetMove: new /64 but inside a /44 the user already occupied —
//     delegated-prefix re-draw or mobile gateway move within a carrier
//     region;
//   - NetworkSwitch: new /44 as well — roaming to a different network
//     (or a provider-level renumbering).
type ChurnCause uint8

const (
	// IIDRotation is a new IID within a known /64.
	IIDRotation ChurnCause = iota
	// SubnetMove is a new /64 within a known /44.
	SubnetMove
	// NetworkSwitch is an entirely new region of the address space.
	NetworkSwitch
)

// String labels the cause.
func (c ChurnCause) String() string {
	switch c {
	case IIDRotation:
		return "iid-rotation"
	case SubnetMove:
		return "subnet-move"
	default:
		return "network-switch"
	}
}

// ChurnAttribution tallies new (user, IPv6 address) pairs by cause.
//
// The state is a set of (user, day, observed-prefix) first-sight
// tuples: for each user and each prefix the user was seen behind — the
// full /128 address, its /64, and its /44 — only the earliest day of
// contact is kept. Accumulation is therefore a pure min-fold: it is
// invariant under observation order and under how the stream is
// partitioned across replicas (Merge folds the maps by minimum), so
// the analyzer is safe to register with AddCommutativeAnalyzer and to
// feed from unordered or fused readers. Causes are not classified
// during the stream at all; Breakdown derives them from the first-day
// structure at query time.
type ChurnAttribution struct {
	// Warmup days at the start of the stream establish per-user state
	// without being counted (a pair is only "new" against history).
	CountFrom simtime.Day

	firstAddr map[pairKey]simtime.Day // (user, /128) -> earliest day seen
	first64   map[pairKey]simtime.Day // (user, /64)  -> earliest day seen
	first44   map[pairKey]simtime.Day // (user, /44)  -> earliest day seen
}

// NewChurnAttribution counts new pairs from countFrom onward; earlier
// days only build history.
func NewChurnAttribution(countFrom simtime.Day) *ChurnAttribution {
	return &ChurnAttribution{
		CountFrom: countFrom,
		firstAddr: make(map[pairKey]simtime.Day),
		first64:   make(map[pairKey]simtime.Day),
		first44:   make(map[pairKey]simtime.Day),
	}
}

// Observe feeds one observation (IPv6 only; others are ignored).
// Observations may arrive in any order.
func (c *ChurnAttribution) Observe(o telemetry.Observation) {
	if !o.Addr.Is6() {
		return
	}
	addrKey := pairKey{uid: o.UserID, pfx: netaddr.PrefixFrom(o.Addr, 128)}
	if cur, ok := c.firstAddr[addrKey]; ok && cur <= o.Day {
		// Dominated sighting: the address was already seen on an
		// earlier (or equal) day, so the /64 and /44 minima cannot
		// improve either — they were set at least as early.
		return
	}
	c.firstAddr[addrKey] = o.Day
	minDay(c.first64, pairKey{uid: o.UserID, pfx: netaddr.PrefixFrom(o.Addr, 64)}, o.Day)
	minDay(c.first44, pairKey{uid: o.UserID, pfx: netaddr.PrefixFrom(o.Addr, 44)}, o.Day)
}

func minDay(m map[pairKey]simtime.Day, k pairKey, d simtime.Day) {
	if cur, ok := m[k]; !ok || d < cur {
		m[k] = d
	}
}

// Merge folds another attribution's first-sight tuples into c by
// minimum day. The fold is exact for ANY split of the observation
// stream — user-disjoint, round-robin, block-wise, anything — because
// min is commutative, associative, and idempotent. Both analyzers must
// use the same CountFrom.
func (c *ChurnAttribution) Merge(other *ChurnAttribution) {
	for k, d := range other.firstAddr {
		minDay(c.firstAddr, k, d)
	}
	for k, d := range other.first64 {
		minDay(c.first64, k, d)
	}
	for k, d := range other.first44 {
		minDay(c.first44, k, d)
	}
}

// ChurnBreakdown is the attribution result.
type ChurnBreakdown struct {
	IIDRotation, SubnetMove, NetworkSwitch uint64
	Total                                  uint64
}

// Share returns the cause's fraction of all attributed churn.
func (b ChurnBreakdown) Share(cause ChurnCause) float64 {
	if b.Total == 0 {
		return 0
	}
	switch cause {
	case IIDRotation:
		return float64(b.IIDRotation) / float64(b.Total)
	case SubnetMove:
		return float64(b.SubnetMove) / float64(b.Total)
	default:
		return float64(b.NetworkSwitch) / float64(b.Total)
	}
}

// Breakdown derives the cause tallies from the first-sight structure.
//
// Each (user, address) pair whose first day is >= CountFrom counts
// exactly once. Classification reproduces the multiset of causes a
// day-ordered transition walk produces:
//
//   - the /64 was first seen on an earlier day -> IIDRotation (the
//     rotation landed in a /64 the user already had history in);
//   - the address is in its /64's first-day cohort, but another
//     address already represented that cohort -> IIDRotation (in a
//     stream walk every cohort member after the first rotates within
//     the by-then-known /64);
//   - the address opens its /64: the /44 was first seen on an earlier
//     day -> SubnetMove; otherwise the /64 is in its /44's first-day
//     cohort, whose first opener is the NetworkSwitch and the rest are
//     SubnetMoves.
//
// Which cohort member is "first" depends on map iteration order, but
// only the labels move between identical-cause members — the tallies
// are deterministic, equal to the sequential walk's for any feeding
// order or partition.
func (c *ChurnAttribution) Breakdown() ChurnBreakdown {
	var counts [3]uint64
	opener64 := make(map[pairKey]struct{})
	opener44 := make(map[pairKey]struct{})
	for k, dAddr := range c.firstAddr {
		if dAddr < c.CountFrom {
			continue
		}
		a := k.pfx.Addr()
		k64 := pairKey{uid: k.uid, pfx: netaddr.PrefixFrom(a, 64)}
		if c.first64[k64] < dAddr {
			counts[IIDRotation]++
			continue
		}
		if _, taken := opener64[k64]; taken {
			counts[IIDRotation]++
			continue
		}
		opener64[k64] = struct{}{}
		k44 := pairKey{uid: k.uid, pfx: netaddr.PrefixFrom(a, 44)}
		if c.first44[k44] < dAddr {
			counts[SubnetMove]++
			continue
		}
		if _, taken := opener44[k44]; taken {
			counts[SubnetMove]++
			continue
		}
		opener44[k44] = struct{}{}
		counts[NetworkSwitch]++
	}
	return ChurnBreakdown{
		IIDRotation:   counts[IIDRotation],
		SubnetMove:    counts[SubnetMove],
		NetworkSwitch: counts[NetworkSwitch],
		Total:         counts[0] + counts[1] + counts[2],
	}
}
