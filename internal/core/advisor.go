package core

import (
	"math"

	"userv6/internal/stats"
)

// Equivalence quantifies how closely a candidate IPv6 prefix length's
// population distribution matches the IPv4 address distribution, using
// the Kolmogorov-Smirnov distance between the integer CDFs. It backs the
// paper's findings that IPv4 addresses look like /48s for user
// populations (§6.2.1) and like /56s for abusive-account populations
// (§6.2.2).
type Equivalence struct {
	Length   int
	Distance float64
}

// ClosestToV4 returns, for each candidate histogram, the KS distance to
// the IPv4 reference, and identifies the closest candidate. maxV bounds
// the CDF comparison domain (population counts above it are rare tails).
func ClosestToV4(v4 *stats.IntHist, candidates map[int]*stats.IntHist, maxV int) (best Equivalence, all []Equivalence) {
	best.Distance = math.Inf(1)
	for length, h := range candidates {
		d := ksDistance(v4, h, maxV)
		e := Equivalence{Length: length, Distance: d}
		all = append(all, e)
		if d < best.Distance || (d == best.Distance && length > best.Length) {
			best = e
		}
	}
	return best, all
}

// ksDistance returns the maximum absolute CDF gap over [0, maxV].
func ksDistance(a, b *stats.IntHist, maxV int) float64 {
	worst := 0.0
	for v := 0; v <= maxV; v++ {
		ca, cb := a.CDFAt(v), b.CDFAt(v)
		if math.IsNaN(ca) || math.IsNaN(cb) {
			return math.NaN()
		}
		if d := math.Abs(ca - cb); d > worst {
			worst = d
		}
	}
	return worst
}

// Advice is the §7.2 policy guidance derived from measured behavior.
type Advice struct {
	// BlocklistGranularity is the recommended IPv6 actioning length
	// (128 or 64) at the operator's FPR tolerance.
	BlocklistGranularity int
	// BlocklistTPR/FPR are the achieved rates at that granularity.
	BlocklistTPR, BlocklistFPR float64
	// BlocklistTTLDays is the recommended blocklist entry lifetime,
	// derived from how fast abusive IPv6 presence decays.
	BlocklistTTLDays int
	// RateLimitUsersPerV6Addr is the benign-user budget per IPv6
	// address implied by the user population quantiles: thresholds can
	// assume this many legitimate users per address.
	RateLimitUsersPerV6Addr int
	// RateLimitV4EquivalentLength is the IPv6 prefix length whose user
	// population distribution best matches IPv4 addresses — existing
	// IPv4 rate-limit logic ports to this length.
	RateLimitV4EquivalentLength int
	// BlocklistV4EquivalentLength is the IPv6 prefix length whose
	// abusive-account distribution best matches IPv4 addresses —
	// existing IPv4 blocklist policy ports to this length.
	BlocklistV4EquivalentLength int
	// V6BeatsV4BelowFPR reports whether IPv6 actioning dominates IPv4
	// at the probed low-FPR operating points.
	V6BeatsV4BelowFPR bool
	// ThreatIntelDecay is the one-day relative decay of actioning
	// recall (1 - TPR(day n+1)/prefixes actioned): higher means shared
	// IPv6 indicators go stale faster.
	ThreatIntelDecay float64
}

// AdvisorInputs collects the measurements the advisor reasons over.
type AdvisorInputs struct {
	// ROC curves per granularity from the Actioning simulator.
	ROC128, ROC64, ROCV4 *stats.ROC
	// FPRTolerance is the operator's acceptable false-positive rate.
	FPRTolerance float64
	// UsersPerV6Addr is Figure 7's IPv6 users-per-address histogram;
	// UsersPerV4Addr the IPv4 one.
	UsersPerV6Addr, UsersPerV4Addr *stats.IntHist
	// UsersPerV6Prefix maps prefix length to users-per-prefix
	// histograms (Figure 9).
	UsersPerV6Prefix map[int]*stats.IntHist
	// AbusivePerV6Prefix maps prefix length to abusive-accounts-per-
	// prefix histograms (Figure 10a); AbusivePerV4Addr is the IPv4
	// reference.
	AbusivePerV6Prefix map[int]*stats.IntHist
	AbusivePerV4Addr   *stats.IntHist
	// V6AddrFreshShare is the fraction of (user, v6 address) pairs aged
	// under one day (Figure 5), driving the blocklist TTL.
	V6AddrFreshShare float64
}

// Advise derives the §7.2 policy guidance.
func Advise(in AdvisorInputs) Advice {
	var a Advice

	// Blocklisting granularity: pick /64 when it achieves higher recall
	// than /128 within the FPR tolerance (the paper: at practical FPR
	// like 0.1%, /64 wins; at very strict tolerances, /128 wins).
	tpr128, ok128 := in.ROC128.TPRAtFPR(in.FPRTolerance)
	tpr64, ok64 := in.ROC64.TPRAtFPR(in.FPRTolerance)
	switch {
	case ok64 && (!ok128 || tpr64 > tpr128):
		a.BlocklistGranularity = 64
		a.BlocklistTPR = tpr64
	default:
		a.BlocklistGranularity = 128
		a.BlocklistTPR = tpr128
	}
	a.BlocklistFPR = in.FPRTolerance

	// TTL: IPv6 addresses are overwhelmingly fresh day-to-day, so
	// stale entries stop matching attackers almost immediately. Scale
	// a short TTL by the observed persistence (1 - fresh share).
	persistence := 1 - in.V6AddrFreshShare
	switch {
	case persistence < 0.10:
		a.BlocklistTTLDays = 1
	case persistence < 0.25:
		a.BlocklistTTLDays = 3
	default:
		a.BlocklistTTLDays = 7
	}

	// Rate limiting: budget legitimate users per IPv6 address at the
	// 99.9th percentile of the benign distribution (the paper: <0.2% of
	// v6 addresses exceed 3 users/day, so tight thresholds are safe).
	if in.UsersPerV6Addr != nil && in.UsersPerV6Addr.N() > 0 {
		a.RateLimitUsersPerV6Addr = in.UsersPerV6Addr.QuantileInt(0.999)
	}

	// Equivalence mappings.
	if in.UsersPerV4Addr != nil && len(in.UsersPerV6Prefix) > 0 {
		best, _ := ClosestToV4(in.UsersPerV4Addr, in.UsersPerV6Prefix, 32)
		a.RateLimitV4EquivalentLength = best.Length
	}
	if in.AbusivePerV4Addr != nil && len(in.AbusivePerV6Prefix) > 0 {
		best, _ := ClosestToV4(in.AbusivePerV4Addr, in.AbusivePerV6Prefix, 16)
		a.BlocklistV4EquivalentLength = best.Length
	}

	// Low-FPR dominance (the paper: below 1% FPR, v6 curves sit above
	// IPv4's).
	probes := []float64{0.0001, 0.001, 0.01}
	a.V6BeatsV4BelowFPR = in.ROC64.DominatesBelow(in.ROCV4, probes) ||
		in.ROC128.DominatesBelow(in.ROCV4, probes)

	// Threat intel decay: share of abusive activity NOT caught next day
	// even at the most aggressive threshold.
	if t, ok := in.ROC128.TPRAtFPR(1); ok {
		a.ThreatIntelDecay = 1 - t
	}
	return a
}
