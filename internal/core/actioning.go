package core

import (
	"math"

	"userv6/internal/netaddr"
	"userv6/internal/stats"
	"userv6/internal/telemetry"
)

// Actioning simulates §7.1: on day n, compute each prefix's abusive-
// account ratio; action every prefix whose ratio meets a threshold; on
// day n+1, measure which abusive accounts were caught (TPR) and which
// benign users were hit (FPR).
//
// Feed day-n observations through ObserveDayN and day-n+1 observations
// through ObserveDayN1, then call Curve with the thresholds to evaluate.
// One instance evaluates one (family, prefix length) pair; Figure 11
// runs four of them (/128, /64, /56, IPv4).
type Actioning struct {
	Family netaddr.Family
	Length int

	seenN map[pairKey]struct{}
	dayN  map[netaddr.Prefix]*prefixPop
	// Day n+1: per-entity best (max) day-n ratio across the prefixes
	// the entity appears on; -1 means none of its prefixes existed on
	// day n.
	seenN1    map[pairKey]struct{}
	benignN1  map[uint64]float64
	abusiveN1 map[uint64]float64
}

// NewActioning returns a simulator for one family and prefix length.
func NewActioning(fam netaddr.Family, length int) *Actioning {
	return &Actioning{
		Family:    fam,
		Length:    length,
		seenN:     make(map[pairKey]struct{}),
		dayN:      make(map[netaddr.Prefix]*prefixPop),
		seenN1:    make(map[pairKey]struct{}),
		benignN1:  make(map[uint64]float64),
		abusiveN1: make(map[uint64]float64),
	}
}

// ObserveDayN feeds a day-n observation (building per-prefix abusive
// ratios).
func (ac *Actioning) ObserveDayN(o telemetry.Observation) {
	if o.Addr.Family() != ac.Family || ac.Length > o.Addr.Bits() {
		return
	}
	p := netaddr.PrefixFrom(o.Addr, ac.Length)
	key := pairKey{uid: o.UserID, pfx: p}
	if _, dup := ac.seenN[key]; dup {
		return
	}
	ac.seenN[key] = struct{}{}
	pop := ac.dayN[p]
	if pop == nil {
		pop = &prefixPop{}
		ac.dayN[p] = pop
	}
	if o.Abusive {
		pop.abusive++
	} else {
		pop.benign++
	}
}

// ObserveDayN1 feeds a day-n+1 observation (recording, per entity, the
// maximum day-n abusive ratio among the prefixes it appears on).
func (ac *Actioning) ObserveDayN1(o telemetry.Observation) {
	if o.Addr.Family() != ac.Family || ac.Length > o.Addr.Bits() {
		return
	}
	p := netaddr.PrefixFrom(o.Addr, ac.Length)
	key := pairKey{uid: o.UserID, pfx: p}
	if _, dup := ac.seenN1[key]; dup {
		return
	}
	ac.seenN1[key] = struct{}{}

	ratio := -1.0
	if pop := ac.dayN[p]; pop != nil && pop.abusive > 0 {
		ratio = float64(pop.abusive) / float64(pop.abusive+pop.benign)
	} else if pop != nil {
		ratio = 0
	}
	m := ac.benignN1
	if o.Abusive {
		m = ac.abusiveN1
	}
	if prev, ok := m[o.UserID]; !ok || ratio > prev {
		m[o.UserID] = ratio
	}
}

// Counts returns the confusion counts at one actioning threshold: an
// entity is actioned if any of its day-n+1 prefixes had a day-n abusive
// ratio >= threshold (with at least one abusive account).
func (ac *Actioning) Counts(threshold float64) stats.BinaryCounts {
	var c stats.BinaryCounts
	// A ratio of exactly 0 means the prefix was seen on day n with no
	// abusive accounts: never actioned. Thresholds are clamped to a
	// tiny positive floor so "threshold 0" means "any abusive presence".
	t := threshold
	if t <= 0 {
		t = math.SmallestNonzeroFloat64
	}
	for _, r := range ac.abusiveN1 {
		if r >= t {
			c.TP++
		} else {
			c.FN++
		}
	}
	for _, r := range ac.benignN1 {
		if r >= t {
			c.FP++
		} else {
			c.TN++
		}
	}
	return c
}

// Curve evaluates the thresholds and returns the ROC curve.
func (ac *Actioning) Curve(thresholds []float64) *stats.ROC {
	pts := make([]stats.ROCPoint, 0, len(thresholds))
	for _, t := range thresholds {
		counts := ac.Counts(t)
		pts = append(pts, stats.ROCPoint{Threshold: t, TPR: counts.TPR(), FPR: counts.FPR()})
	}
	return stats.NewROC(pts)
}

// DayNPrefixes returns how many prefixes were observed on day n.
func (ac *Actioning) DayNPrefixes() int { return len(ac.dayN) }

// DayN1Entities returns the day-n+1 population sizes (benign, abusive).
func (ac *Actioning) DayN1Entities() (benign, abusive int) {
	return len(ac.benignN1), len(ac.abusiveN1)
}

// DefaultThresholds returns the threshold sweep used for Figure 11:
// 0 (any abusive presence) through 1.0 (pure-abuse prefixes only).
func DefaultThresholds() []float64 {
	return []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0}
}
