package core

import (
	"userv6/internal/netaddr"
	"userv6/internal/simtime"
	"userv6/internal/stats"
	"userv6/internal/telemetry"
)

// BlocklistSim extends the §7.1 single-transition actioning experiment
// to a multi-day blocklist with entry TTLs — the operational form of the
// paper's §7.2 blocklisting guidance. Each day, prefixes whose abusive
// ratio meets the threshold are (re-)listed; entries expire after TTL
// days; the next day's traffic is evaluated against the current list.
//
// Feed days in ascending order: first ObserveDay with all of a day's
// observations, then call EndDay exactly once. Metrics accumulate across
// the whole run.
type BlocklistSim struct {
	Family    netaddr.Family
	Length    int
	Threshold float64
	TTLDays   int

	// list maps prefix -> expiry day (exclusive).
	list map[netaddr.Prefix]simtime.Day

	// today's accumulation.
	day      simtime.Day
	seen     map[pairKey]struct{}
	todayPop map[netaddr.Prefix]*prefixPop
	// per-entity "hit" marks for today.
	benignHit, benignAll   map[uint64]struct{}
	abusiveHit, abusiveAll map[uint64]struct{}

	// totals after each EndDay.
	total stats.BinaryCounts
	days  int
}

// NewBlocklistSim returns a simulator at one granularity, ratio
// threshold, and TTL.
func NewBlocklistSim(fam netaddr.Family, length int, threshold float64, ttlDays int) *BlocklistSim {
	if ttlDays < 1 {
		ttlDays = 1
	}
	b := &BlocklistSim{
		Family:    fam,
		Length:    length,
		Threshold: threshold,
		TTLDays:   ttlDays,
		list:      make(map[netaddr.Prefix]simtime.Day),
		day:       -1,
	}
	b.resetDay()
	return b
}

func (b *BlocklistSim) resetDay() {
	b.seen = make(map[pairKey]struct{})
	b.todayPop = make(map[netaddr.Prefix]*prefixPop)
	b.benignHit = make(map[uint64]struct{})
	b.benignAll = make(map[uint64]struct{})
	b.abusiveHit = make(map[uint64]struct{})
	b.abusiveAll = make(map[uint64]struct{})
}

// ObserveDay feeds one observation of the current day. Observations are
// evaluated against the blocklist as it stood at the start of the day.
func (b *BlocklistSim) ObserveDay(o telemetry.Observation) {
	if o.Addr.Family() != b.Family || b.Length > o.Addr.Bits() {
		return
	}
	if b.day < 0 {
		b.day = o.Day
	}
	p := netaddr.PrefixFrom(o.Addr, b.Length)
	key := pairKey{uid: o.UserID, pfx: p}
	if _, dup := b.seen[key]; dup {
		return
	}
	b.seen[key] = struct{}{}

	pop := b.todayPop[p]
	if pop == nil {
		pop = &prefixPop{}
		b.todayPop[p] = pop
	}
	listed := false
	if expiry, ok := b.list[p]; ok && expiry > o.Day {
		listed = true
	}
	if o.Abusive {
		pop.abusive++
		b.abusiveAll[o.UserID] = struct{}{}
		if listed {
			b.abusiveHit[o.UserID] = struct{}{}
		}
	} else {
		pop.benign++
		b.benignAll[o.UserID] = struct{}{}
		if listed {
			b.benignHit[o.UserID] = struct{}{}
		}
	}
}

// EndDay finalizes the current day: tallies hits against the standing
// list, then refreshes the list from today's abusive ratios.
func (b *BlocklistSim) EndDay() {
	// The first fed day only warms the list up (it was empty while its
	// traffic arrived); hits are tallied from the second day on.
	if b.days > 0 {
		b.total.TP += uint64(len(b.abusiveHit))
		b.total.FN += uint64(len(b.abusiveAll) - len(b.abusiveHit))
		b.total.FP += uint64(len(b.benignHit))
		b.total.TN += uint64(len(b.benignAll) - len(b.benignHit))
	}
	// Refresh: today's qualifying prefixes are (re-)listed, covering
	// the TTL days after today (an entry created at the end of day d is
	// active on days d+1 .. d+TTL).
	t := b.Threshold
	for p, pop := range b.todayPop {
		if pop.abusive == 0 {
			continue
		}
		ratio := float64(pop.abusive) / float64(pop.abusive+pop.benign)
		if ratio >= t || t <= 0 {
			b.list[p] = b.day + simtime.Day(b.TTLDays) + 1
		}
	}
	// Evict entries whose coverage has ended.
	for p, expiry := range b.list {
		if expiry <= b.day+1 {
			delete(b.list, p)
		}
	}
	b.days++
	b.day = -1
	b.resetDay()
}

// Counts returns the accumulated confusion counts over all measured
// days (the first fed day is list warmup and not measured).
func (b *BlocklistSim) Counts() stats.BinaryCounts { return b.total }

// ListSize returns the current number of listed prefixes.
func (b *BlocklistSim) ListSize() int { return len(b.list) }

// RateLimitSim evaluates §7.2 rate limiting: cap the number of distinct
// entities allowed per prefix per day; entities beyond the cap are
// throttled. It measures what fraction of benign users and abusive
// accounts get throttled at a given cap — tight caps are safe on IPv6
// precisely because benign populations per address are tiny.
type RateLimitSim struct {
	Family netaddr.Family
	Length int
	Cap    int

	seen  map[pairKey]struct{}
	count map[dayPrefixKey]int
	// throttledBenign/Abusive are entity sets over the whole run.
	throttledBenign, allBenign   map[uint64]struct{}
	throttledAbusive, allAbusive map[uint64]struct{}
}

type dayPrefixKey struct {
	day simtime.Day
	pfx netaddr.Prefix
}

// NewRateLimitSim returns a simulator capping entities per prefix-day.
func NewRateLimitSim(fam netaddr.Family, length, cap int) *RateLimitSim {
	if cap < 1 {
		cap = 1
	}
	return &RateLimitSim{
		Family:           fam,
		Length:           length,
		Cap:              cap,
		seen:             make(map[pairKey]struct{}),
		count:            make(map[dayPrefixKey]int),
		throttledBenign:  make(map[uint64]struct{}),
		allBenign:        make(map[uint64]struct{}),
		throttledAbusive: make(map[uint64]struct{}),
		allAbusive:       make(map[uint64]struct{}),
	}
}

// Observe feeds one observation (any day order within a day; the
// first-come-first-served cap follows feed order, as a real limiter
// would).
func (r *RateLimitSim) Observe(o telemetry.Observation) {
	if o.Addr.Family() != r.Family || r.Length > o.Addr.Bits() {
		return
	}
	p := netaddr.PrefixFrom(o.Addr, r.Length)
	// Per-day dedup: one slot per (entity, prefix, day). Reuse pairKey
	// with the day folded into the uid's high bits would risk
	// collisions; key explicitly.
	key := pairKey{uid: o.UserID ^ uint64(o.Day)<<52, pfx: p}
	if _, dup := r.seen[key]; dup {
		return
	}
	r.seen[key] = struct{}{}

	if o.Abusive {
		r.allAbusive[o.UserID] = struct{}{}
	} else {
		r.allBenign[o.UserID] = struct{}{}
	}
	dk := dayPrefixKey{day: o.Day, pfx: p}
	r.count[dk]++
	if r.count[dk] > r.Cap {
		if o.Abusive {
			r.throttledAbusive[o.UserID] = struct{}{}
		} else {
			r.throttledBenign[o.UserID] = struct{}{}
		}
	}
}

// RateLimitOutcome summarizes a rate-limit run.
type RateLimitOutcome struct {
	Cap                       int
	BenignThrottled, Benign   int
	AbusiveThrottled, Abusive int
	BenignShare, AbusiveShare float64
}

// Outcome returns the accumulated throttling shares.
func (r *RateLimitSim) Outcome() RateLimitOutcome {
	out := RateLimitOutcome{
		Cap:              r.Cap,
		BenignThrottled:  len(r.throttledBenign),
		Benign:           len(r.allBenign),
		AbusiveThrottled: len(r.throttledAbusive),
		Abusive:          len(r.allAbusive),
	}
	if out.Benign > 0 {
		out.BenignShare = float64(out.BenignThrottled) / float64(out.Benign)
	}
	if out.Abusive > 0 {
		out.AbusiveShare = float64(out.AbusiveThrottled) / float64(out.Abusive)
	}
	return out
}
