package core

import (
	"runtime"
	"strings"
	"testing"

	"userv6/internal/telemetry"
)

type nopObserver struct{}

func (nopObserver) Observe(telemetry.Observation) {}

func commutativeSet() *AnalyzerSet {
	s := NewAnalyzerSet()
	AddCommutativeAnalyzer(s, nopObserver{}, func() nopObserver { return nopObserver{} },
		func(into, from nopObserver) {})
	return s
}

type orderBound struct{}

func (orderBound) Observe(telemetry.Observation) {}

func mixedSet() *AnalyzerSet {
	s := commutativeSet()
	AddAnalyzer(s, orderBound{}, func() orderBound { return orderBound{} },
		func(into, from orderBound) {})
	return s
}

func TestPlanModeSelection(t *testing.T) {
	cases := []struct {
		name    string
		set     *AnalyzerSet
		in      PlanInput
		want    Mode
		workers int // 0 = GOMAXPROCS expected
	}{
		{"auto one worker", commutativeSet(), PlanInput{Request: RequestAuto, Workers: 1}, ModeSequential, 1},
		{"auto commutative", commutativeSet(), PlanInput{Request: RequestAuto, Workers: 4}, ModeFused, 4},
		{"auto default workers", commutativeSet(), PlanInput{Request: RequestAuto}, ModeFused, 0},
		{"auto non-commutative", mixedSet(), PlanInput{Request: RequestAuto, Workers: 4}, ModePipeline, 4},
		{"forced sequential", commutativeSet(), PlanInput{Request: RequestSequential, Workers: 8}, ModeSequential, 1},
		{"forced pipeline", commutativeSet(), PlanInput{Request: RequestPipeline, Workers: 4}, ModePipeline, 4},
		{"forced fused one worker", commutativeSet(), PlanInput{Request: RequestFused, Workers: 1}, ModeFused, 1},
		{"fused falls back", mixedSet(), PlanInput{Request: RequestFused, Workers: 4}, ModePipeline, 4},
		{"unordered", commutativeSet(), PlanInput{Request: RequestUnordered, Workers: 4}, ModeUnordered, 4},
		// Workers <= 0 means "all CPUs", which must stay legal for
		// unordered even on a single-core machine — only an explicit 1
		// is refused.
		{"unordered default workers", commutativeSet(), PlanInput{Request: RequestUnordered}, ModeUnordered, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := tc.set.Plan(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			if p.Mode != tc.want {
				t.Fatalf("mode %v, want %v (why: %s)", p.Mode, tc.want, p.Why)
			}
			wantWorkers := tc.workers
			if wantWorkers == 0 {
				wantWorkers = runtime.GOMAXPROCS(0)
			}
			if p.Workers != wantWorkers {
				t.Fatalf("workers %d, want %d", p.Workers, wantWorkers)
			}
			if p.Why == "" {
				t.Fatal("plan has no rationale")
			}
		})
	}
}

func TestPlanUnorderedRefusals(t *testing.T) {
	if _, err := commutativeSet().Plan(PlanInput{Request: RequestUnordered, Workers: 1}); err == nil {
		t.Fatal("unordered with an explicit single worker must be refused")
	}
	_, err := mixedSet().Plan(PlanInput{Request: RequestUnordered, Workers: 4})
	if err == nil || !strings.Contains(err.Error(), "core.orderBound") {
		t.Fatalf("unordered on a non-commutative set: err = %v, want offender named", err)
	}
}

func TestPlanFallbackNamesOffenders(t *testing.T) {
	p, err := mixedSet().Plan(PlanInput{Request: RequestAuto, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Why, "core.orderBound") {
		t.Fatalf("pipeline fallback rationale %q does not name the offender", p.Why)
	}
}

func TestPlanExplain(t *testing.T) {
	p, err := commutativeSet().Plan(PlanInput{Request: RequestAuto, Workers: 3, Tolerant: true, Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	ex := p.Explain()
	for _, want := range []string{"mode=fused", "workers=3", "parts=4", "tolerant"} {
		if !strings.Contains(ex, want) {
			t.Fatalf("Explain() = %q, missing %q", ex, want)
		}
	}
}

type countAnalyzer struct{ n int }

func (c *countAnalyzer) Observe(telemetry.Observation) { c.n++ }

func TestPipelineAbortLeavesPrimariesUnfolded(t *testing.T) {
	s := NewAnalyzerSet()
	primary := &countAnalyzer{}
	AddAnalyzer(s, primary, func() *countAnalyzer { return &countAnalyzer{} },
		func(into, from *countAnalyzer) { into.n += from.n })
	p := s.NewPipeline(2)
	for i := 0; i < 1000; i++ {
		p.Observe(telemetry.Observation{UserID: uint64(i)})
	}
	p.Abort()
	if primary.n != 0 {
		t.Fatalf("primary folded after Abort: %d observations", primary.n)
	}
	// Abort after Abort (and Close after Abort) must be no-ops.
	p.Abort()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
