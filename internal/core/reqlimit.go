package core

import (
	"userv6/internal/netaddr"
	"userv6/internal/telemetry"
)

// RequestRateLimit caps *requests* (not entities) per prefix per day —
// the logged-out safeguard the paper's §7.2 rate-limiting discussion
// ends on: it must work against scrapers that present no account at
// all, and its thresholds can be tight on IPv6 because so few
// legitimate users share an address.
//
// Requests beyond the cap are throttled. The simulator tallies admitted
// and throttled requests separately for benign and abusive traffic.
type RequestRateLimit struct {
	Family netaddr.Family
	Length int
	// CapPerDay is the request budget per prefix-day.
	CapPerDay uint64

	used map[dayPrefixKey]uint64
	// Tallies.
	BenignAdmitted, BenignThrottled   uint64
	AbusiveAdmitted, AbusiveThrottled uint64
}

// NewRequestRateLimit returns a limiter at one granularity and budget.
func NewRequestRateLimit(fam netaddr.Family, length int, capPerDay uint64) *RequestRateLimit {
	if capPerDay < 1 {
		capPerDay = 1
	}
	return &RequestRateLimit{
		Family:    fam,
		Length:    length,
		CapPerDay: capPerDay,
		used:      make(map[dayPrefixKey]uint64),
	}
}

// Observe feeds one observation, splitting its requests into admitted
// and throttled against the prefix-day budget.
func (r *RequestRateLimit) Observe(o telemetry.Observation) {
	if o.Addr.Family() != r.Family || r.Length > o.Addr.Bits() {
		return
	}
	dk := dayPrefixKey{day: o.Day, pfx: netaddr.PrefixFrom(o.Addr, r.Length)}
	used := r.used[dk]
	admit := uint64(0)
	if used < r.CapPerDay {
		admit = r.CapPerDay - used
		if admit > uint64(o.Requests) {
			admit = uint64(o.Requests)
		}
	}
	throttled := uint64(o.Requests) - admit
	r.used[dk] = used + admit
	if o.Abusive {
		r.AbusiveAdmitted += admit
		r.AbusiveThrottled += throttled
	} else {
		r.BenignAdmitted += admit
		r.BenignThrottled += throttled
	}
}

// BenignLossShare returns the fraction of benign requests throttled.
func (r *RequestRateLimit) BenignLossShare() float64 {
	total := r.BenignAdmitted + r.BenignThrottled
	if total == 0 {
		return 0
	}
	return float64(r.BenignThrottled) / float64(total)
}

// AbusiveBlockShare returns the fraction of abusive requests throttled.
func (r *RequestRateLimit) AbusiveBlockShare() float64 {
	total := r.AbusiveAdmitted + r.AbusiveThrottled
	if total == 0 {
		return 0
	}
	return float64(r.AbusiveThrottled) / float64(total)
}
