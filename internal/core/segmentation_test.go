package core

import (
	"math"
	"testing"

	"userv6/internal/netmodel"
	"userv6/internal/telemetry"
)

func segObs(uid uint64, addr string, asn netmodel.ASN, reqs uint32) telemetry.Observation {
	o := obs(uid, addr, 0, false)
	o.ASN = asn
	o.Requests = reqs
	return o
}

func TestSegmentationBasic(t *testing.T) {
	kinds := map[netmodel.ASN]netmodel.Kind{
		10: netmodel.Mobile,
		20: netmodel.Residential,
	}
	seg := NewSegmentation(ClassifyByASN(kinds))
	// Mobile: user 1 dual stack (2 v6 addrs), user 2 v4-only.
	seg.Observe(segObs(1, "2001:db8::1", 10, 5))
	seg.Observe(segObs(1, "2001:db8::2", 10, 5))
	seg.Observe(segObs(1, "10.0.0.1", 10, 10))
	seg.Observe(segObs(2, "10.0.0.2", 10, 10))
	// Residential: user 3 v6.
	seg.Observe(segObs(3, "2001:db8:1::1", 20, 4))
	// Unknown ASN dropped.
	seg.Observe(segObs(4, "10.9.9.9", 99, 1))

	reports := seg.Report()
	if len(reports) != 2 {
		t.Fatalf("segments = %d", len(reports))
	}
	mob, ok := seg.Segment(netmodel.Mobile)
	if !ok {
		t.Fatal("mobile segment missing")
	}
	if mob.Users != 2 {
		t.Fatalf("mobile users = %d", mob.Users)
	}
	if math.Abs(mob.V6UserShare-0.5) > 1e-12 {
		t.Fatalf("mobile v6 user share = %v", mob.V6UserShare)
	}
	if math.Abs(mob.V6ReqShare-10.0/30) > 1e-12 {
		t.Fatalf("mobile v6 req share = %v", mob.V6ReqShare)
	}
	if mob.MedianV6Addrs != 2 || mob.MedianV4Addrs != 1 {
		t.Fatalf("mobile medians = %d/%d", mob.MedianV6Addrs, mob.MedianV4Addrs)
	}
	res, _ := seg.Segment(netmodel.Residential)
	if res.Users != 1 || res.V6UserShare != 1 {
		t.Fatalf("residential = %+v", res)
	}
	if _, ok := seg.Segment(netmodel.Hosting); ok {
		t.Fatal("phantom segment")
	}
}

func TestSegmentationDedup(t *testing.T) {
	kinds := map[netmodel.ASN]netmodel.Kind{10: netmodel.Mobile}
	seg := NewSegmentation(ClassifyByASN(kinds))
	for i := 0; i < 5; i++ {
		seg.Observe(segObs(1, "2001:db8::1", 10, 1))
	}
	mob, _ := seg.Segment(netmodel.Mobile)
	if mob.MedianV6Addrs != 1 {
		t.Fatalf("median v6 addrs = %d (dedup failed)", mob.MedianV6Addrs)
	}
	// Requests still accumulate per observation.
	if math.Abs(mob.V6ReqShare-1) > 1e-12 {
		t.Fatalf("req share = %v", mob.V6ReqShare)
	}
}

func TestSegmentationInvalidAddr(t *testing.T) {
	seg := NewSegmentation(func(telemetry.Observation) (netmodel.Kind, bool) { return netmodel.Mobile, true })
	seg.Observe(telemetry.Observation{UserID: 1, Requests: 1})
	if len(seg.Report()) != 0 {
		t.Fatal("invalid address created a segment")
	}
}
