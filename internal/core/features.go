package core

import (
	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/telemetry"
)

// FeatureVector is a per-entity IP-behavior feature set of the kind the
// paper's §7.2 recommends for abuse classifiers, with IPv6-aware members
// (prefix spread, structured-IID exposure, infrastructure share) that
// IPv4-era features miss.
type FeatureVector struct {
	// V4Addrs / V6Addrs are distinct addresses per family.
	V4Addrs, V6Addrs int
	// V6Prefixes64 is the count of distinct /64s.
	V6Prefixes64 int
	// V6IIDSpread is V6Addrs / V6Prefixes64 (IID churn inside subnets).
	// NOTE: high spread is NORMAL benign behavior (privacy rotation) —
	// the paper's warning against porting IPv4 churn heuristics.
	V6IIDSpread float64
	// Observations and Requests are activity volumes.
	Observations int
	Requests     uint64
	// InfraShare is the share of observations from hosting/proxy ASNs.
	InfraShare float64
	// StructuredV6 counts structured-IID (gateway) addresses used.
	StructuredV6 int
	// DualStack marks entities seen on both families.
	DualStack bool
	// ActiveDays is the number of distinct days with activity.
	ActiveDays int
}

// FeatureExtractor accumulates per-entity feature vectors from a
// telemetry stream.
type FeatureExtractor struct {
	infra map[netmodel.ASN]bool
	ents  map[uint64]*featureAcc
}

type featureAcc struct {
	v4, v6     map[netaddr.Addr]struct{}
	p64        map[netaddr.Prefix]struct{}
	days       map[int16]struct{}
	obs        int
	reqs       uint64
	infraObs   int
	structured int
}

// NewFeatureExtractor returns an extractor treating the given ASNs as
// attacker-friendly infrastructure (hosting/proxy space).
func NewFeatureExtractor(infraASNs map[netmodel.ASN]bool) *FeatureExtractor {
	return &FeatureExtractor{infra: infraASNs, ents: make(map[uint64]*featureAcc)}
}

// Observe feeds one observation.
func (fe *FeatureExtractor) Observe(o telemetry.Observation) {
	if !o.Addr.IsValid() {
		return
	}
	acc := fe.ents[o.UserID]
	if acc == nil {
		acc = &featureAcc{
			v4:   make(map[netaddr.Addr]struct{}),
			v6:   make(map[netaddr.Addr]struct{}),
			p64:  make(map[netaddr.Prefix]struct{}),
			days: make(map[int16]struct{}),
		}
		fe.ents[o.UserID] = acc
	}
	acc.obs++
	acc.reqs += uint64(o.Requests)
	acc.days[int16(o.Day)] = struct{}{}
	if fe.infra[o.ASN] {
		acc.infraObs++
	}
	if o.Addr.Is4() {
		acc.v4[o.Addr] = struct{}{}
		return
	}
	acc.v6[o.Addr] = struct{}{}
	acc.p64[netaddr.PrefixFrom(o.Addr, 64)] = struct{}{}
	if netaddr.IsStructuredIID(o.Addr) {
		acc.structured++
	}
}

// Entities returns the number of entities with features.
func (fe *FeatureExtractor) Entities() int { return len(fe.ents) }

// Vector returns the feature vector for one entity and whether it was
// observed.
func (fe *FeatureExtractor) Vector(uid uint64) (FeatureVector, bool) {
	acc := fe.ents[uid]
	if acc == nil {
		return FeatureVector{}, false
	}
	v := FeatureVector{
		V4Addrs:      len(acc.v4),
		V6Addrs:      len(acc.v6),
		V6Prefixes64: len(acc.p64),
		Observations: acc.obs,
		Requests:     acc.reqs,
		StructuredV6: acc.structured,
		DualStack:    len(acc.v4) > 0 && len(acc.v6) > 0,
		ActiveDays:   len(acc.days),
	}
	if len(acc.p64) > 0 {
		v.V6IIDSpread = float64(len(acc.v6)) / float64(len(acc.p64))
	}
	if acc.obs > 0 {
		v.InfraShare = float64(acc.infraObs) / float64(acc.obs)
	}
	return v, true
}

// ForEach visits every entity's features.
func (fe *FeatureExtractor) ForEach(fn func(uid uint64, v FeatureVector)) {
	for uid := range fe.ents {
		if v, ok := fe.Vector(uid); ok {
			fn(uid, v)
		}
	}
}

// AbuseScore is a transparent hand-weighted baseline scorer over the
// IPv6-aware features. It exists as a documented reference point, not a
// trained model: infrastructure share dominates, young/barely-active
// entities and v4-only CGN churners add suspicion, and — deliberately —
// IID spread contributes nothing (it is benign privacy rotation).
func (v FeatureVector) AbuseScore() float64 {
	s := 0.0
	if v.InfraShare > 0.5 {
		s += 2
	}
	if v.Observations <= 3 {
		s += 0.75
	}
	if v.V4Addrs >= 3 && v.V6Addrs == 0 {
		s += 0.75
	}
	return s
}
