package core

import (
	"math"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/simtime"
)

func TestLifespanAges(t *testing.T) {
	ls := NewLifespans(10, 32, 64, 128)
	// Pair (1, v6 addr) first seen day 3, seen again on ref day 10:
	// age 7.
	ls.Observe(obs(1, "2001:db8::1", 3, false))
	ls.Observe(obs(1, "2001:db8::1", 10, false))
	// Pair (1, other addr) seen only on ref day: age 0.
	ls.Observe(obs(1, "2001:db8::2", 10, false))
	// Pair (2, v4) first seen day 0, ref day: age 10.
	ls.Observe(obs(2, "10.0.0.1", 0, false))
	ls.Observe(obs(2, "10.0.0.1", 10, false))
	// Pair seen before ref but NOT on ref: excluded.
	ls.Observe(obs(3, "2001:db8::3", 5, false))
	// Pair after ref: ignored entirely.
	ls.Observe(obs(4, "2001:db8::4", 11, false))

	h6 := ls.AgeHist(netaddr.IPv6, 128)
	if h6.N() != 2 {
		t.Fatalf("v6 pairs on ref = %d, want 2", h6.N())
	}
	if got := h6.CDFAt(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("v6 fresh share = %v", got)
	}
	if h6.Max() != 7 {
		t.Fatalf("v6 max age = %d", h6.Max())
	}
	h4 := ls.AgeHist(netaddr.IPv4, 32)
	if h4.N() != 1 || h4.Max() != 10 {
		t.Fatalf("v4 hist N=%d max=%d", h4.N(), h4.Max())
	}
}

func TestLifespanEarlierSightingLowersFirst(t *testing.T) {
	ls := NewLifespans(10, 128)
	// Out-of-order observation: later day first.
	ls.Observe(obs(1, "2001:db8::1", 10, false))
	ls.Observe(obs(1, "2001:db8::1", 2, false))
	h := ls.AgeHist(netaddr.IPv6, 128)
	if h.Max() != 8 {
		t.Fatalf("age = %d, want 8", h.Max())
	}
}

func TestLifespanPrefixLevels(t *testing.T) {
	ls := NewLifespans(10, 64, 128)
	// Same /64, different IIDs across days: /128 pairs fresh, /64 pair
	// old.
	ls.Observe(obs(1, "2001:db8:0:1::a", 4, false))
	ls.Observe(obs(1, "2001:db8:0:1::b", 10, false))
	h128 := ls.AgeHist(netaddr.IPv6, 128)
	if h128.N() != 1 || h128.Max() != 0 {
		t.Fatalf("/128: N=%d max=%d", h128.N(), h128.Max())
	}
	h64 := ls.AgeHist(netaddr.IPv6, 64)
	if h64.N() != 1 || h64.Max() != 6 {
		t.Fatalf("/64: N=%d max=%d, want age 6", h64.N(), h64.Max())
	}
}

func TestMedianAgePerUser(t *testing.T) {
	ls := NewLifespans(10, 128)
	// User 1 has three pairs with ages 0, 0, 9 -> median 0.
	ls.Observe(obs(1, "2001:db8::a", 10, false))
	ls.Observe(obs(1, "2001:db8::b", 10, false))
	ls.Observe(obs(1, "2001:db8::c", 1, false))
	ls.Observe(obs(1, "2001:db8::c", 10, false))
	// User 2 has one pair with age 5.
	ls.Observe(obs(2, "2001:db8::d", 5, false))
	ls.Observe(obs(2, "2001:db8::d", 10, false))
	h := ls.MedianAgePerUser(netaddr.IPv6, 128)
	if h.N() != 2 {
		t.Fatalf("users = %d", h.N())
	}
	if got := h.CDFAt(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("median-age CDF at 0 = %v", got)
	}
	if h.Max() != 5 {
		t.Fatalf("max median = %d", h.Max())
	}
}

func TestFreshShares(t *testing.T) {
	ls := NewLifespans(10, 64, 128)
	// Ages 0, 1, 2, 5 at /128 for user 1 (distinct /64s so the /64
	// pairs carry the same ages).
	for i, age := range []int{0, 1, 2, 5} {
		addr := netaddr.MustParsePrefix("2001:db8::/32").Subnet(64, uint64(i)).Addr().WithIID(1)
		ls.Observe(obs(1, addr.String(), simtime.Day(10-age), false))
		ls.Observe(obs(1, addr.String(), 10, false))
	}
	shares := ls.FreshShares(netaddr.IPv6)
	if len(shares) != 2 {
		t.Fatalf("lengths = %d", len(shares))
	}
	for _, fs := range shares {
		if fs.Pairs != 4 {
			t.Fatalf("/%d pairs = %d", fs.Length, fs.Pairs)
		}
		if math.Abs(fs.Within1-0.25) > 1e-12 {
			t.Fatalf("/%d within1 = %v", fs.Length, fs.Within1)
		}
		if math.Abs(fs.Within2-0.5) > 1e-12 {
			t.Fatalf("/%d within2 = %v", fs.Length, fs.Within2)
		}
		if math.Abs(fs.Within3-0.75) > 1e-12 {
			t.Fatalf("/%d within3 = %v", fs.Length, fs.Within3)
		}
	}
	if got := ls.FreshShares(netaddr.IPv4); len(got) != 0 {
		t.Fatalf("v4 shares = %v, want none", got)
	}
}

func TestLifespanRestrict(t *testing.T) {
	ls := NewLifespans(5, 128).Restrict(true)
	ls.Observe(obs(1, "2001:db8::1", 5, false))
	ls.Observe(obs(2, "2001:db8::2", 5, true))
	if ls.Pairs() != 1 {
		t.Fatalf("pairs = %d, want only the abusive one", ls.Pairs())
	}
}

func TestMedianInt(t *testing.T) {
	cases := []struct {
		in   []int
		want int
	}{
		{[]int{5}, 5},
		{[]int{2, 1}, 1},
		{[]int{3, 1, 2}, 2},
		{[]int{4, 1, 3, 2}, 2},
	}
	for _, c := range cases {
		if got := medianInt(append([]int(nil), c.in...)); got != c.want {
			t.Errorf("medianInt(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}
