package core

// Block-parallel analysis: an AnalyzerSet names the analyzers a run
// wants populated, and a Pipeline fans observations out to workers that
// each own a private replica of every registered analyzer. Observations
// route to workers by a hash of the user ID, so each user's full
// in-order history lands on exactly one worker and per-user analyzer
// state never crosses goroutines — the guarantee an order-dependent
// analyzer needs for an exact fold. (Every built-in analyzer is now
// commutative — see ChurnAttribution.Merge — so the default set can
// also skip routing entirely via the fused Replica-per-decode-worker
// path; the Pipeline remains the fallback for sets that withhold the
// declaration.) Close folds the replicas into the primaries with the
// analyzers' Merge methods.

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"

	"userv6/internal/telemetry"
)

// Observer is the streaming-analyzer interface every core analyzer
// satisfies: consume one observation, answer queries later.
type Observer interface {
	Observe(telemetry.Observation)
}

// AnalyzerSet is a named collection of analyzers to populate from one
// pass over a telemetry stream. Register each analyzer with AddAnalyzer,
// then either feed the set directly (sequential) or run a Pipeline over
// it (parallel); both leave the registered primaries holding identical
// state.
type AnalyzerSet struct {
	regs []registration
}

type registration struct {
	name        string
	primary     Observer
	mk          func() Observer
	fold        func(replica Observer)
	filter      func(telemetry.Observation) bool
	commutative bool
}

// NewAnalyzerSet returns an empty set.
func NewAnalyzerSet() *AnalyzerSet { return &AnalyzerSet{} }

// Len returns the number of registered analyzers.
func (s *AnalyzerSet) Len() int { return len(s.regs) }

// AddAnalyzer registers primary with the set. mk constructs a fresh
// replica configured identically to primary (same restriction, window,
// prefix lengths, ...); fold merges a replica's state into the
// first argument — an analyzer's Merge method expression, e.g.
// (*UserCentric).Merge, fits directly.
func AddAnalyzer[T Observer](s *AnalyzerSet, primary T, mk func() T, fold func(into, from T)) {
	AddAnalyzerFiltered(s, primary, mk, fold, nil)
}

// AddAnalyzerFiltered is AddAnalyzer with a pre-filter: only
// observations for which filter returns true reach this analyzer (nil
// accepts everything). The filter runs on the worker goroutines, so it
// must be pure.
func AddAnalyzerFiltered[T Observer](s *AnalyzerSet, primary T, mk func() T, fold func(into, from T), filter func(telemetry.Observation) bool) {
	s.regs = append(s.regs, registration{
		name:    fmt.Sprintf("%T", primary),
		primary: primary,
		mk:      func() Observer { return mk() },
		fold:    func(replica Observer) { fold(primary, replica.(T)) },
		filter:  filter,
	})
}

// AddCommutativeAnalyzer is AddAnalyzer plus a declaration: the
// analyzer's accumulated state is invariant under observation order and
// under how the stream is partitioned across replicas before folding.
// Concretely, feeding any permutation of the same multiset of
// observations — or splitting it arbitrarily (not just user-disjointly)
// across replicas and folding — must leave state identical to the
// in-order sequential feed. Declaring it is what authorizes
// completion-order delivery (analyze -unordered) and the fused
// decode+analyze path: the caller checks Commutative() before
// abandoning stream order. Analyzers whose state is a pure set- or
// lattice-fold qualify: set-shaped dedup (UserCentric's and
// IPCentric's (user, prefix) pair sets), min/OR folds (Lifespans),
// sum/OR folds (Prevalence), and min-day first-sight tuples
// (ChurnAttribution since its commutative reformulation). An analyzer
// that inspects transitions between consecutive observations at
// Observe time would not.
func AddCommutativeAnalyzer[T Observer](s *AnalyzerSet, primary T, mk func() T, fold func(into, from T)) {
	AddCommutativeAnalyzerFiltered(s, primary, mk, fold, nil)
}

// AddCommutativeAnalyzerFiltered is AddAnalyzerFiltered plus the
// order-insensitivity declaration of AddCommutativeAnalyzer. The
// filter runs on worker goroutines and must be pure; a pure filter
// preserves commutativity (it only thins the multiset).
func AddCommutativeAnalyzerFiltered[T Observer](s *AnalyzerSet, primary T, mk func() T, fold func(into, from T), filter func(telemetry.Observation) bool) {
	AddAnalyzerFiltered(s, primary, mk, fold, filter)
	s.regs[len(s.regs)-1].commutative = true
}

// Commutative reports whether every registered analyzer was declared
// order-insensitive via AddCommutativeAnalyzer (vacuously true for an
// empty set). Only then is unordered, arbitrarily-partitioned delivery
// exact.
func (s *AnalyzerSet) Commutative() bool {
	return len(s.NonCommutative()) == 0
}

// NonCommutative returns the type names of every registered analyzer
// that was NOT declared commutative — the analyzers an unordered or
// fused run would have to name when refusing to start. Empty for a set
// that is safe to feed in any order.
func (s *AnalyzerSet) NonCommutative() []string {
	var out []string
	for i := range s.regs {
		if !s.regs[i].commutative {
			out = append(out, s.regs[i].name)
		}
	}
	return out
}

// Observe feeds one observation to every registered primary directly —
// the sequential path, and the reference the pipeline must match.
func (s *AnalyzerSet) Observe(o telemetry.Observation) {
	for i := range s.regs {
		r := &s.regs[i]
		if r.filter == nil || r.filter(o) {
			r.primary.Observe(o)
		}
	}
}

// Emit adapts Observe to a telemetry.EmitFunc.
func (s *AnalyzerSet) Emit() telemetry.EmitFunc { return s.Observe }

// Replica is an independent copy of every registered analyzer, for
// producers that already partition users (e.g. sharded generation over
// disjoint user ranges): each partition feeds its own Replica with no
// routing or locking, and Fold merges them back into the primaries.
type Replica struct {
	set *AnalyzerSet
	obs []Observer
}

// NewReplica constructs a fresh replica of every registered analyzer.
// Call it (and Fold) from one goroutine; the Replica itself is then
// free to live on another.
func (s *AnalyzerSet) NewReplica() *Replica {
	r := &Replica{set: s, obs: make([]Observer, len(s.regs))}
	for i := range s.regs {
		r.obs[i] = s.regs[i].mk()
	}
	return r
}

// Observe feeds one observation to the replica's analyzers.
func (r *Replica) Observe(o telemetry.Observation) {
	for i, rep := range r.obs {
		if f := r.set.regs[i].filter; f == nil || f(o) {
			rep.Observe(o)
		}
	}
}

// Emit adapts Observe to a telemetry.EmitFunc.
func (r *Replica) Emit() telemetry.EmitFunc { return r.Observe }

// Fold merges the replicas' state into the set's primaries, in argument
// order. Exactness matches the analyzers' Merge contracts: user-disjoint
// replicas fold exactly for every analyzer; arbitrary splits are exact
// for the set-algebraic ones (see ChurnAttribution.Merge).
func (s *AnalyzerSet) Fold(replicas ...*Replica) {
	for _, r := range replicas {
		for j, rep := range r.obs {
			s.regs[j].fold(rep)
		}
	}
}

// WorkerPanicError reports a panic recovered on a pipeline worker.
type WorkerPanicError struct {
	Worker int
	Value  any
	Stack  []byte
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("core: analysis pipeline worker %d panicked: %v", e.Worker, e.Value)
}

// pipelineBatch is the router→worker handoff size: large enough to
// amortize channel synchronization, small enough to keep workers busy.
const pipelineBatch = 512

// pipelineChanDepth is each worker's channel buffer in batches. Deep
// enough that the single-goroutine router never stalls on one busy
// worker while others sit idle: with block-sized ObserveBatch sends
// (one sub-batch per worker per block) the router can stay a dozen
// blocks ahead of the slowest worker.
const pipelineChanDepth = 16

// Pipeline routes a telemetry stream across analyzer-replica workers.
// Observe must be called from a single goroutine (it is the router);
// Close flushes, waits for the workers, and folds their replicas into
// the set's primaries. After a successful Close the primaries hold
// exactly the state a sequential feed of the same stream would have
// produced.
type Pipeline struct {
	set     *AnalyzerSet
	workers []*pipeWorker
	pending [][]telemetry.Observation
	free    sync.Pool
	closed  bool
}

type pipeWorker struct {
	ch       chan []telemetry.Observation
	done     chan struct{}
	replicas []Observer
	err      error // written before done closes
}

// NewPipeline starts workers goroutines (<= 0 means GOMAXPROCS), each
// holding a fresh replica of every registered analyzer.
func (s *AnalyzerSet) NewPipeline(workers int) *Pipeline {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pipeline{
		set:     s,
		workers: make([]*pipeWorker, workers),
		pending: make([][]telemetry.Observation, workers),
	}
	for i := range p.workers {
		w := &pipeWorker{
			ch:       make(chan []telemetry.Observation, pipelineChanDepth),
			done:     make(chan struct{}),
			replicas: make([]Observer, len(s.regs)),
		}
		for j := range s.regs {
			w.replicas[j] = s.regs[j].mk()
		}
		p.workers[i] = w
		go p.run(i, w)
	}
	return p
}

// Workers returns the pool size.
func (p *Pipeline) Workers() int { return len(p.workers) }

func (p *Pipeline) run(idx int, w *pipeWorker) {
	defer close(w.done)
	defer func() {
		if v := recover(); v != nil {
			w.err = &WorkerPanicError{Worker: idx, Value: v, Stack: debug.Stack()}
			for range w.ch {
				// Drain so the router never blocks on a dead worker.
			}
		}
	}()
	// Label the goroutine so -cpuprofile output attributes analyzer
	// time to the analyze stage per worker, separate from the decode
	// pool's decode/decompress time.
	pprof.Do(context.Background(), pprof.Labels("stage", "analyze", "worker", strconv.Itoa(idx)), func(context.Context) {
		for batch := range w.ch {
			for _, o := range batch {
				for j, rep := range w.replicas {
					if f := p.set.regs[j].filter; f == nil || f(o) {
						rep.Observe(o)
					}
				}
			}
			p.free.Put(&batch)
		}
	})
}

// mix64 is the splitmix64 finalizer: user IDs are often sequential, and
// the worker index must depend on every bit so adjacent users spread
// across the pool.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Observe routes one observation to its user's worker. Single-goroutine
// only; the per-user order of calls is preserved on the worker.
func (p *Pipeline) Observe(o telemetry.Observation) {
	i := int(mix64(o.UserID) % uint64(len(p.workers)))
	b := p.pending[i]
	if b == nil {
		b = p.batch()
	}
	b = append(b, o)
	if len(b) >= pipelineBatch {
		p.workers[i].ch <- b
		b = nil
	}
	p.pending[i] = b
}

// ObserveBatch routes a slice of observations — typically one decoded
// block — in one partitioning pass: each record is appended to its
// worker's pending sub-batch (pooled slices, no per-record flush
// branch) and every sub-batch that reached the handoff threshold is
// sent once at the end. The result is at most one routed send per
// worker per block instead of a length check and potential send per
// observation, which is what keeps the single-goroutine router off the
// critical path. The records slice may be reused by the caller
// afterwards; values are copied out. Interleaves correctly with
// Observe: both append to the same per-worker pending buffers, so
// per-user order is preserved.
func (p *Pipeline) ObserveBatch(recs []telemetry.Observation) {
	n := uint64(len(p.workers))
	for _, o := range recs {
		i := int(mix64(o.UserID) % n)
		b := p.pending[i]
		if b == nil {
			b = p.batch()
		}
		p.pending[i] = append(b, o)
	}
	for i, b := range p.pending {
		if len(b) >= pipelineBatch {
			p.workers[i].ch <- b
			p.pending[i] = nil
		}
	}
}

// Emit adapts Observe to a telemetry.EmitFunc.
func (p *Pipeline) Emit() telemetry.EmitFunc { return p.Observe }

func (p *Pipeline) batch() []telemetry.Observation {
	if b, ok := p.free.Get().(*[]telemetry.Observation); ok {
		return (*b)[:0]
	}
	return make([]telemetry.Observation, 0, pipelineBatch)
}

// Close flushes the routed stream, waits for every worker, and folds
// the replicas into the set's primaries in worker order. A worker panic
// surfaces as a *WorkerPanicError and leaves the primaries unfolded.
// Close is idempotent only in that a second call returns nil without
// refolding; call it exactly once per pipeline.
func (p *Pipeline) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	for i, w := range p.workers {
		if b := p.pending[i]; len(b) > 0 {
			w.ch <- b
			p.pending[i] = nil
		}
		close(w.ch)
	}
	var firstErr error
	for _, w := range p.workers {
		<-w.done
		if w.err != nil && firstErr == nil {
			firstErr = w.err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	for _, w := range p.workers {
		for j, rep := range w.replicas {
			p.set.regs[j].fold(rep)
		}
	}
	return nil
}

// Abort tears the pipeline down without folding: pending batches are
// discarded, workers are joined, and the primaries keep whatever state
// they had before the pipeline started. This is the error path — a read
// that failed partway must not leak a partial fold into the primaries.
// Safe after Close (it becomes a no-op), so `defer p.Abort()` pairs
// naturally with an explicit Close on success.
func (p *Pipeline) Abort() {
	if p.closed {
		return
	}
	p.closed = true
	for i, w := range p.workers {
		p.pending[i] = nil
		close(w.ch)
	}
	for _, w := range p.workers {
		<-w.done
	}
}
