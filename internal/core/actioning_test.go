package core

import (
	"math"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/stats"
)

// buildActioning creates a small two-day scenario:
//
//	day n:   addr A: 1 AA (pure); addr B: 1 AA + 9 benign (ratio 0.1);
//	         addr C: benign only.
//	day n+1: AA 100 returns to A; AA 101 appears on B; AA 102 appears on
//	         a brand-new addr D; benign 1 on B, benign 2 on C, benign 3
//	         on D.
func buildActioning() *Actioning {
	ac := NewActioning(netaddr.IPv4, 32)
	ac.ObserveDayN(obs(100, "10.0.0.1", 0, true))
	ac.ObserveDayN(obs(101, "10.0.0.2", 0, true))
	for u := uint64(1); u <= 9; u++ {
		ac.ObserveDayN(obs(u, "10.0.0.2", 0, false))
	}
	ac.ObserveDayN(obs(10, "10.0.0.3", 0, false))

	ac.ObserveDayN1(obs(100, "10.0.0.1", 1, true))
	ac.ObserveDayN1(obs(101, "10.0.0.2", 1, true))
	ac.ObserveDayN1(obs(102, "10.0.0.4", 1, true))
	ac.ObserveDayN1(obs(1, "10.0.0.2", 1, false))
	ac.ObserveDayN1(obs(2, "10.0.0.3", 1, false))
	ac.ObserveDayN1(obs(3, "10.0.0.4", 1, false))
	return ac
}

func TestActioningThresholds(t *testing.T) {
	ac := buildActioning()
	if ac.DayNPrefixes() != 3 {
		t.Fatalf("dayN prefixes = %d", ac.DayNPrefixes())
	}
	if b, a := ac.DayN1Entities(); b != 3 || a != 3 {
		t.Fatalf("dayN1 entities = %d benign, %d abusive", b, a)
	}

	// Threshold 0 ("any abusive presence"): addrs A (ratio 1) and B
	// (0.1) actioned. AAs 100, 101 caught; 102 missed. Benign 1 hit.
	c := ac.Counts(0)
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 2 {
		t.Fatalf("t=0 counts = %+v", c)
	}
	if got := c.TPR(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("t=0 TPR = %v", got)
	}
	if got := c.FPR(); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("t=0 FPR = %v", got)
	}

	// Threshold 0.5: only pure addr A actioned.
	c = ac.Counts(0.5)
	if c.TP != 1 || c.FP != 0 {
		t.Fatalf("t=0.5 counts = %+v", c)
	}

	// Threshold 1.0: same here (A is ratio 1).
	c = ac.Counts(1.0)
	if c.TP != 1 || c.FP != 0 {
		t.Fatalf("t=1 counts = %+v", c)
	}
}

func TestActioningPrefixGranularity(t *testing.T) {
	ac := NewActioning(netaddr.IPv6, 64)
	// Day n: AA on one address of a /64.
	ac.ObserveDayN(obs(100, "2001:db8:0:1::a", 0, true))
	// Day n+1: a different AA on a different address, same /64.
	ac.ObserveDayN1(obs(101, "2001:db8:0:1::b", 1, true))
	// And one on another /64: missed.
	ac.ObserveDayN1(obs(102, "2001:db8:0:2::c", 1, true))
	c := ac.Counts(0)
	if c.TP != 1 || c.FN != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestActioningZeroRatioNotActioned(t *testing.T) {
	ac := NewActioning(netaddr.IPv4, 32)
	ac.ObserveDayN(obs(1, "10.0.0.1", 0, false)) // benign-only prefix
	ac.ObserveDayN1(obs(2, "10.0.0.1", 1, false))
	c := ac.Counts(0)
	if c.FP != 0 || c.TN != 1 {
		t.Fatalf("benign-only prefix actioned: %+v", c)
	}
}

func TestActioningCurve(t *testing.T) {
	ac := buildActioning()
	roc := ac.Curve(DefaultThresholds())
	if len(roc.Points) != len(DefaultThresholds()) {
		t.Fatalf("points = %d", len(roc.Points))
	}
	// TPR at the loosest threshold must be the max.
	loosest, _ := roc.At(0)
	for _, p := range roc.Points {
		if p.TPR > loosest.TPR {
			t.Fatalf("threshold %v TPR %v exceeds t=0", p.Threshold, p.TPR)
		}
	}
	if auc := roc.AUC(); auc <= 0 || auc > 1 {
		t.Fatalf("AUC = %v", auc)
	}
}

func TestActioningDedup(t *testing.T) {
	ac := NewActioning(netaddr.IPv4, 32)
	for i := 0; i < 5; i++ {
		ac.ObserveDayN(obs(100, "10.0.0.1", 0, true))
		ac.ObserveDayN1(obs(100, "10.0.0.1", 1, true))
	}
	c := ac.Counts(0)
	if c.TP != 1 {
		t.Fatalf("dedup failed: %+v", c)
	}
}

func TestAdviseEndToEnd(t *testing.T) {
	ac := buildActioning()
	roc := ac.Curve(DefaultThresholds())

	usersV6 := stats.NewIntHist(8)
	usersV6.Add(1)
	usersV6.Add(1)
	usersV6.Add(2)
	usersV4 := stats.NewIntHist(8)
	usersV4.Add(10)
	usersV4.Add(12)
	p64 := stats.NewIntHist(8)
	p64.Add(3)
	p48 := stats.NewIntHist(8)
	p48.Add(11)
	aaV4 := stats.NewIntHist(8)
	aaV4.Add(2)
	aa56 := stats.NewIntHist(8)
	aa56.Add(2)
	aa64 := stats.NewIntHist(8)
	aa64.Add(1)

	a := Advise(AdvisorInputs{
		ROC128:             roc,
		ROC64:              roc,
		ROCV4:              roc,
		FPRTolerance:       0.5,
		UsersPerV6Addr:     usersV6,
		UsersPerV4Addr:     usersV4,
		UsersPerV6Prefix:   map[int]*stats.IntHist{64: p64, 48: p48},
		AbusivePerV6Prefix: map[int]*stats.IntHist{56: aa56, 64: aa64},
		AbusivePerV4Addr:   aaV4,
		V6AddrFreshShare:   0.9,
	})
	if a.BlocklistGranularity != 128 && a.BlocklistGranularity != 64 {
		t.Fatalf("granularity = %d", a.BlocklistGranularity)
	}
	if a.BlocklistTTLDays != 1 {
		t.Fatalf("TTL = %d, want 1 for 90%% fresh addresses", a.BlocklistTTLDays)
	}
	if a.RateLimitUsersPerV6Addr < 1 || a.RateLimitUsersPerV6Addr > 2 {
		t.Fatalf("rate limit budget = %d", a.RateLimitUsersPerV6Addr)
	}
	// /48 users-per-prefix (11) is far closer to v4 (10, 12) than /64.
	if a.RateLimitV4EquivalentLength != 48 {
		t.Fatalf("rate-limit equivalent = /%d, want /48", a.RateLimitV4EquivalentLength)
	}
	// /56 abusive distribution (2) matches v4 (2) exactly.
	if a.BlocklistV4EquivalentLength != 56 {
		t.Fatalf("blocklist equivalent = /%d, want /56", a.BlocklistV4EquivalentLength)
	}
}

func TestClosestToV4(t *testing.T) {
	v4 := stats.NewIntHist(8)
	for _, v := range []int{5, 6, 7} {
		v4.Add(v)
	}
	near := stats.NewIntHist(8)
	for _, v := range []int{5, 6, 8} {
		near.Add(v)
	}
	far := stats.NewIntHist(8)
	for _, v := range []int{1, 1, 1} {
		far.Add(v)
	}
	best, all := ClosestToV4(v4, map[int]*stats.IntHist{56: near, 64: far}, 16)
	if best.Length != 56 {
		t.Fatalf("best = %+v", best)
	}
	if len(all) != 2 {
		t.Fatalf("all = %d", len(all))
	}
	for _, e := range all {
		if e.Distance < 0 || e.Distance > 1 {
			t.Fatalf("KS distance out of range: %+v", e)
		}
	}
}

func TestAdviseTTLBands(t *testing.T) {
	base := AdvisorInputs{
		ROC128: stats.NewROC([]stats.ROCPoint{{TPR: 0.1, FPR: 0.001}}),
		ROC64:  stats.NewROC([]stats.ROCPoint{{TPR: 0.2, FPR: 0.001}}),
		ROCV4:  stats.NewROC([]stats.ROCPoint{{TPR: 0.1, FPR: 0.3}}),
	}
	base.FPRTolerance = 0.01
	for _, c := range []struct {
		fresh float64
		want  int
	}{{0.95, 1}, {0.8, 3}, {0.5, 7}} {
		in := base
		in.V6AddrFreshShare = c.fresh
		if got := Advise(in).BlocklistTTLDays; got != c.want {
			t.Errorf("fresh=%v TTL = %d, want %d", c.fresh, got, c.want)
		}
	}
	// /64 outperforms /128 at tolerance: choose /64.
	if got := Advise(base).BlocklistGranularity; got != 64 {
		t.Errorf("granularity = %d, want 64", got)
	}
	// v6 dominates v4 at low FPR here.
	if !Advise(base).V6BeatsV4BelowFPR {
		t.Error("expected v6 dominance")
	}
}
