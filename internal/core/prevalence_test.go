package core

import (
	"math"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

func pobs(uid uint64, addr string, day simtime.Day, asn netmodel.ASN, cc string, reqs uint32) telemetry.Observation {
	o := telemetry.Observation{
		Day:      day,
		UserID:   uid,
		Addr:     netaddr.MustParseAddr(addr),
		ASN:      asn,
		Requests: reqs,
	}
	o.SetCountry(cc)
	return o
}

func TestPrevalenceDaily(t *testing.T) {
	p := NewPrevalence()
	// Day 0: user 1 dual-stack (3 v6 + 1 v4 requests), user 2 v4-only.
	p.Observe(pobs(1, "2001:db8::1", 0, 10, "US", 3))
	p.Observe(pobs(1, "10.0.0.1", 0, 10, "US", 1))
	p.Observe(pobs(2, "10.0.0.2", 0, 11, "BR", 4))
	// Day 1: only user 2, v4.
	p.Observe(pobs(2, "10.0.0.2", 1, 11, "BR", 2))

	days := p.Daily()
	if len(days) != 2 {
		t.Fatalf("days = %d", len(days))
	}
	d0 := days[0]
	if d0.Day != 0 || d0.Users != 2 || d0.V6Users != 1 {
		t.Fatalf("day0 = %+v", d0)
	}
	if math.Abs(d0.UserShare-0.5) > 1e-12 {
		t.Fatalf("day0 user share = %v", d0.UserShare)
	}
	if d0.Requests != 8 || d0.V6Requests != 3 {
		t.Fatalf("day0 requests = %d/%d", d0.V6Requests, d0.Requests)
	}
	if math.Abs(d0.ReqShare-3.0/8) > 1e-12 {
		t.Fatalf("day0 req share = %v", d0.ReqShare)
	}
	d1 := days[1]
	if d1.Users != 1 || d1.V6Users != 0 || d1.UserShare != 0 {
		t.Fatalf("day1 = %+v", d1)
	}
}

func TestPrevalenceASNTable(t *testing.T) {
	p := NewPrevalence()
	// ASN 10: 3 users, 2 on v6. ASN 11: 2 users, none on v6.
	p.Observe(pobs(1, "2001:db8::1", 0, 10, "US", 1))
	p.Observe(pobs(2, "2001:db8::2", 0, 10, "US", 1))
	p.Observe(pobs(3, "10.0.0.1", 0, 10, "US", 1))
	p.Observe(pobs(4, "10.0.0.2", 0, 11, "BR", 1))
	p.Observe(pobs(5, "10.0.0.3", 0, 11, "BR", 1))
	// Duplicate sightings must not inflate.
	p.Observe(pobs(1, "2001:db8::1", 1, 10, "US", 1))

	rows := p.TopASNs(1, 10, func(a netmodel.ASN) string { return "n" })
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].ASN != 10 || math.Abs(rows[0].Ratio-2.0/3) > 1e-12 || rows[0].Users != 3 {
		t.Fatalf("row0 = %+v", rows[0])
	}
	if rows[1].ASN != 11 || rows[1].Ratio != 0 {
		t.Fatalf("row1 = %+v", rows[1])
	}
	if rows[0].Name != "n" {
		t.Fatalf("resolve not applied")
	}
	// Threshold excludes small ASNs.
	if rows := p.TopASNs(3, 10, nil); len(rows) != 1 {
		t.Fatalf("thresholded rows = %d", len(rows))
	}
}

func TestASNShareBands(t *testing.T) {
	p := NewPrevalence()
	// ASN 1: zero v6 (2 users). ASN 2: 1/20 users on v6 (5%). ASN 3:
	// 3/4 on v6.
	p.Observe(pobs(1, "10.0.0.1", 0, 1, "US", 1))
	p.Observe(pobs(2, "10.0.0.2", 0, 1, "US", 1))
	for u := uint64(10); u < 30; u++ {
		addr := "10.1.0.1"
		if u == 10 {
			addr = "2001:db8::10"
		}
		p.Observe(pobs(u, addr, 0, 2, "US", 1))
	}
	for u := uint64(40); u < 44; u++ {
		addr := "2001:db8::40"
		if u == 40 {
			addr = "10.2.0.1"
		}
		p.Observe(pobs(u, addr, 0, 3, "US", 1))
	}
	zero, under, total := p.ASNShareBands(1)
	if total != 3 {
		t.Fatalf("total = %d", total)
	}
	if math.Abs(zero-1.0/3) > 1e-12 {
		t.Fatalf("zero = %v", zero)
	}
	if math.Abs(under-1.0/3) > 1e-12 {
		t.Fatalf("under = %v", under)
	}
}

func TestCountryTable(t *testing.T) {
	p := NewPrevalence()
	p.Observe(pobs(1, "2001:db8::1", 0, 1, "IN", 1))
	p.Observe(pobs(2, "10.0.0.1", 0, 1, "IN", 1))
	p.Observe(pobs(3, "10.0.0.2", 0, 2, "EG", 1))
	rows := p.TopCountries(1, 10)
	if len(rows) != 2 || rows[0].Country != "IN" || rows[0].Ratio != 0.5 {
		t.Fatalf("rows = %+v", rows)
	}
	ratio, users := p.CountryRatio("IN")
	if ratio != 0.5 || users != 2 {
		t.Fatalf("IN ratio = %v users = %d", ratio, users)
	}
	if r, u := p.CountryRatio("XX"); r != 0 || u != 0 {
		t.Fatalf("unknown country = %v/%d", r, u)
	}
}

func TestPrevalenceUserCountedOncePerASN(t *testing.T) {
	p := NewPrevalence()
	// Same user on the same ASN over v4 first, then v6: the ASN's v6
	// user count must become 1, total users stay 1.
	p.Observe(pobs(1, "10.0.0.1", 0, 10, "US", 1))
	p.Observe(pobs(1, "2001:db8::1", 0, 10, "US", 1))
	rows := p.TopASNs(1, 10, nil)
	if len(rows) != 1 || rows[0].Users != 1 || rows[0].Ratio != 1 {
		t.Fatalf("rows = %+v", rows)
	}
}
