package core

import (
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

func obs(uid uint64, addr string, day simtime.Day, abusive bool) telemetry.Observation {
	o := telemetry.Observation{
		Day:      day,
		UserID:   uid,
		Addr:     netaddr.MustParseAddr(addr),
		Requests: 1,
		Abusive:  abusive,
	}
	o.SetCountry("US")
	return o
}

func TestUserCentricDedup(t *testing.T) {
	uc := NewUserCentric()
	for i := 0; i < 5; i++ {
		uc.Observe(obs(1, "2001:db8::1", simtime.Day(i), false))
	}
	uc.Observe(obs(1, "2001:db8::2", 0, false))
	uc.Observe(obs(1, "10.0.0.1", 0, false))
	if uc.Users() != 1 {
		t.Fatalf("Users = %d", uc.Users())
	}
	h6 := uc.AddrsPerUser(netaddr.IPv6)
	if h6.N() != 1 || h6.Max() != 2 {
		t.Fatalf("v6 hist N=%d max=%d", h6.N(), h6.Max())
	}
	h4 := uc.AddrsPerUser(netaddr.IPv4)
	if h4.N() != 1 || h4.Max() != 1 {
		t.Fatalf("v4 hist N=%d max=%d", h4.N(), h4.Max())
	}
}

func TestUserCentricFamilyPopulations(t *testing.T) {
	uc := NewUserCentric()
	uc.Observe(obs(1, "10.0.0.1", 0, false)) // v4 only
	uc.Observe(obs(2, "2001:db8::1", 0, false))
	uc.Observe(obs(2, "2001:db8::2", 0, false)) // v6 only
	uc.Observe(obs(3, "10.0.0.2", 0, false))
	uc.Observe(obs(3, "2001:db8::3", 0, false)) // dual
	if got := uc.AddrsPerUser(netaddr.IPv4).N(); got != 2 {
		t.Fatalf("v4 users = %d, want 2", got)
	}
	if got := uc.AddrsPerUser(netaddr.IPv6).N(); got != 2 {
		t.Fatalf("v6 users = %d, want 2", got)
	}
}

func TestUserCentricRestriction(t *testing.T) {
	benign := NewUserCentricFor(false)
	abusive := NewUserCentricFor(true)
	both := []telemetry.Observation{
		obs(1, "10.0.0.1", 0, false),
		obs(2, "10.0.0.2", 0, true),
	}
	for _, o := range both {
		benign.Observe(o)
		abusive.Observe(o)
	}
	if benign.Users() != 1 || abusive.Users() != 1 {
		t.Fatalf("restriction failed: benign=%d abusive=%d", benign.Users(), abusive.Users())
	}
}

func TestUserCentricIgnoresInvalid(t *testing.T) {
	uc := NewUserCentric()
	uc.Observe(telemetry.Observation{UserID: 1})
	if uc.Users() != 0 {
		t.Fatal("invalid address counted")
	}
}

func TestPrefixSpans(t *testing.T) {
	uc := NewUserCentric()
	// User 1: 3 addresses in one /64.
	uc.Observe(obs(1, "2001:db8:0:1::a", 0, false))
	uc.Observe(obs(1, "2001:db8:0:1::b", 0, false))
	uc.Observe(obs(1, "2001:db8:0:1::c", 0, false))
	// User 2: 2 addresses in two /64s of the same /48.
	uc.Observe(obs(2, "2001:db8:0:1::a", 0, false))
	uc.Observe(obs(2, "2001:db8:0:2::a", 0, false))
	// User 3: v4 only (not a v6 user).
	uc.Observe(obs(3, "10.0.0.1", 0, false))

	spans := uc.PrefixSpans([]int{48, 64, 128})
	if len(spans) != 3 {
		t.Fatalf("spans = %d entries", len(spans))
	}
	at := func(l int) SpanShare {
		for _, s := range spans {
			if s.Length == l {
				return s
			}
		}
		t.Fatalf("length %d missing", l)
		return SpanShare{}
	}
	if got := at(48); got.One != 1 {
		t.Fatalf("/48 one = %v, want 1 (both v6 users in one /48)", got.One)
	}
	if got := at(64); got.One != 0.5 || got.AtMost2 != 1 {
		t.Fatalf("/64 = %+v, want one=0.5 <=2=1", got)
	}
	if got := at(128); got.One != 0 || got.AtMost2 != 0.5 || got.AtMost3 != 1 {
		t.Fatalf("/128 = %+v", got)
	}
}

func TestPrefixesPerUser(t *testing.T) {
	uc := NewUserCentric()
	uc.Observe(obs(1, "2001:db8:0:1::a", 0, false))
	uc.Observe(obs(1, "2001:db8:0:2::a", 0, false))
	uc.Observe(obs(1, "2001:db8:0:3::a", 0, false))
	h := uc.PrefixesPerUser(64)
	if h.N() != 1 || h.Max() != 3 {
		t.Fatalf("prefixes hist N=%d max=%d", h.N(), h.Max())
	}
	if h48 := uc.PrefixesPerUser(48); h48.Max() != 1 {
		t.Fatalf("/48 max = %d", h48.Max())
	}
}

func TestTopUsersAndThresholds(t *testing.T) {
	uc := NewUserCentric()
	for i := 0; i < 10; i++ {
		uc.Observe(obs(1, netaddr.AddrFrom6(0x20010db800000000, uint64(i)).String(), 0, false))
	}
	for i := 0; i < 3; i++ {
		uc.Observe(obs(2, netaddr.AddrFrom6(0x20010db800000000, 0x100+uint64(i)).String(), 0, false))
	}
	tops := uc.TopUsersByAddrs(netaddr.IPv6, 5)
	if len(tops) != 2 || tops[0].UID != 1 || tops[0].Count != 10 || tops[1].Count != 3 {
		t.Fatalf("tops = %+v", tops)
	}
	if got := uc.UsersWithMoreThan(netaddr.IPv6, 5); got != 1 {
		t.Fatalf("UsersWithMoreThan(5) = %d", got)
	}
	if got := uc.UsersWithMoreThan(netaddr.IPv6, 2); got != 2 {
		t.Fatalf("UsersWithMoreThan(2) = %d", got)
	}
	if got := uc.UsersWithMoreThan(netaddr.IPv4, 0); got != 0 {
		t.Fatalf("v4 UsersWithMoreThan = %d", got)
	}
}

func TestAddrPatterns(t *testing.T) {
	uc := NewUserCentric()
	// User 1: EUI-64, same IID across two prefixes (reuse).
	iid := netaddr.EUI64FromMAC(0xAABBCCDDEEFF)
	a1 := netaddr.MustParseAddr("2001:db8:1:1::").WithIID(iid)
	a2 := netaddr.MustParseAddr("2001:db8:2:2::").WithIID(iid)
	uc.Observe(obs(1, a1.String(), 0, false))
	uc.Observe(obs(1, a2.String(), 1, false))
	// User 2: EUI-64 with two different IIDs (randomizing).
	b1 := netaddr.MustParseAddr("2001:db8:3:3::").WithIID(netaddr.EUI64FromMAC(0x001122334455))
	b2 := netaddr.MustParseAddr("2001:db8:3:3::").WithIID(netaddr.EUI64FromMAC(0x001122334466))
	uc.Observe(obs(2, b1.String(), 0, false))
	uc.Observe(obs(2, b2.String(), 1, false))
	// User 3: teredo. User 4: 6to4. User 5: random IID.
	uc.Observe(obs(3, "2001:0:1::1234:5678:9abc", 0, false))
	uc.Observe(obs(4, "2002:0102:0304::aaaa:bbbb:cccc", 0, false))
	uc.Observe(obs(5, "2001:db8::a1b2:c3d4:e5f6:0708", 0, false))

	p := uc.AddrPatterns()
	if p.V6Users != 5 {
		t.Fatalf("V6Users = %d", p.V6Users)
	}
	if p.TeredoShare != 0.2 || p.SixToFourShare != 0.2 {
		t.Fatalf("transition shares = %v / %v", p.TeredoShare, p.SixToFourShare)
	}
	if p.EUI64Share != 0.4 {
		t.Fatalf("EUI64Share = %v", p.EUI64Share)
	}
	if p.EUI64IIDReuse != 0.5 {
		t.Fatalf("EUI64IIDReuse = %v, want 0.5 (one reuser of two multi-addr users)", p.EUI64IIDReuse)
	}
	if p.RandomIIDShare != 0.2 {
		t.Fatalf("RandomIIDShare = %v", p.RandomIIDShare)
	}
}

func TestAddrPatternsEmpty(t *testing.T) {
	uc := NewUserCentric()
	p := uc.AddrPatterns()
	if p.V6Users != 0 || p.TeredoShare != 0 || p.EUI64IIDReuse != 0 {
		t.Fatalf("empty patterns = %+v", p)
	}
}
