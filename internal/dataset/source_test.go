package dataset

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// shardedDir writes a two-part export with a complete manifest and
// returns the directory.
func shardedDir(t *testing.T, codecs ...string) string {
	t.Helper()
	dir := t.TempDir()
	meta := Meta{Seed: 7, Users: 400, FromDay: 0, ToDay: 6, Sample: "all"}
	obs := sample(400)
	man := &Manifest{
		Version: ManifestVersion, Seed: meta.Seed, Shards: 2,
		ConfigHash: ConfigHash(meta), Meta: meta, Complete: true,
	}
	for i := 0; i < 2; i++ {
		pm := meta
		if len(codecs) > i {
			pm.Codec = codecs[i]
		}
		name := filepath.Join(dir, partName(i))
		info := writePart(t, name, pm, obs[i*200:(i+1)*200])
		info.Codec = pm.Codec
		info.UserLo, info.UserHi = i*200, (i+1)*200
		man.Parts = append(man.Parts, info)
	}
	if err := WriteManifest(filepath.Join(dir, ManifestName), man); err != nil {
		t.Fatal(err)
	}
	return dir
}

func partName(i int) string {
	return [...]string{"part-0000.uv6", "part-0001.uv6"}[i]
}

// TestOpenSourceResolution: a directory means the sharded export in it,
// a .uv6m path is a manifest, anything else is a single file.
func TestOpenSourceResolution(t *testing.T) {
	dir := shardedDir(t)

	src, err := OpenSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.Kind() != "manifest" || len(src.Parts()) != 2 {
		t.Fatalf("OpenSource(dir): kind %s, %d parts", src.Kind(), len(src.Parts()))
	}

	src, err = OpenSource(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if src.Kind() != "manifest" {
		t.Fatalf("OpenSource(manifest path): kind %s", src.Kind())
	}

	src, err = OpenSource(filepath.Join(dir, partName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if src.Kind() != "file" || len(src.Parts()) != 1 {
		t.Fatalf("OpenSource(part file): kind %s, %d parts", src.Kind(), len(src.Parts()))
	}
	caps := src.Caps()
	if caps.PartCount != 1 || !caps.SeekableParts {
		t.Fatalf("file caps %+v", caps)
	}
}

// TestManifestSourceMetaAndCaps: Meta() carries the per-part record
// total (the merged header's count), and Caps' summary codec collapses
// to empty on mixed declarations.
func TestManifestSourceMetaAndCaps(t *testing.T) {
	dir := shardedDir(t)
	src, err := OpenManifestSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	meta, ok := src.Meta()
	if !ok || meta.Records != src.Manifest().TotalRecords() || meta.Records == 0 {
		t.Fatalf("manifest meta %+v (ok=%v), want records filled from parts", meta, ok)
	}
	if got, n := src.Caps(), len(src.Parts()); got.PartCount != n || !got.SeekableParts {
		t.Fatalf("manifest caps %+v, want %d seekable parts", got, n)
	}

	mixed := shardedDir(t, "lz", "")
	ms, err := OpenManifestSource(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if c := ms.Caps().Codec; c != "" {
		t.Fatalf("mixed-codec manifest summarizes codec %q, want none", c)
	}

	uniform := shardedDir(t, "lz", "lz")
	us, err := OpenManifestSource(uniform)
	if err != nil {
		t.Fatal(err)
	}
	if c := us.Caps().Codec; c != "lz" {
		t.Fatalf("uniform lz manifest summarizes codec %q", c)
	}
}

// TestManifestSourceRejections: incomplete manifests and missing parts
// fail at open time, not mid-analysis.
func TestManifestSourceRejections(t *testing.T) {
	dir := shardedDir(t)
	manPath := filepath.Join(dir, ManifestName)
	man, err := ReadManifest(manPath)
	if err != nil {
		t.Fatal(err)
	}
	man.Complete = false
	if err := WriteManifest(manPath, man); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenManifestSource(dir); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("incomplete manifest accepted: err = %v", err)
	}
	man.Complete = true
	if err := WriteManifest(manPath, man); err != nil {
		t.Fatal(err)
	}

	gone := filepath.Join(dir, man.Parts[1].Name)
	if err := os.Remove(gone); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenManifestSource(dir); err == nil || !strings.Contains(err.Error(), man.Parts[1].Name) {
		t.Fatalf("missing part not reported: err = %v", err)
	}
}

// TestPartsSource: at least one part required; metadata comes from the
// first part carrying a parseable header, skipping raw streams.
func TestPartsSource(t *testing.T) {
	if _, err := NewPartsSource(); err == nil {
		t.Fatal("empty parts source accepted")
	}

	dir := shardedDir(t)
	raw := filepath.Join(dir, "raw.uv6")
	if err := os.WriteFile(raw, []byte("uv6"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := NewPartsSource(raw, filepath.Join(dir, partName(0)), filepath.Join(dir, partName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if src.Kind() != "parts" || len(src.Parts()) != 3 {
		t.Fatalf("parts source: kind %s, %d parts", src.Kind(), len(src.Parts()))
	}
	meta, ok := src.Meta()
	if !ok || meta.Seed != 7 {
		t.Fatalf("parts meta %+v (ok=%v), want header of first headered part", meta, ok)
	}
	if _, ok := src.Expected(0); ok {
		t.Fatal("bare parts claim declared expectations")
	}

	rawOnly, err := NewPartsSource(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rawOnly.Meta(); ok {
		t.Fatal("raw-only parts source claims metadata")
	}
}
