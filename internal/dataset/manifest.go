// Manifest support for sharded dataset export. A sharded run writes N
// part files (part-0000.uv6 … each a complete, self-describing dataset
// covering one contiguous user-index range) plus one manifest.uv6m, a
// JSON document binding the parts together: the producing seed and
// config hash, the shard count, and per-part user ranges, block/record
// counts, and whole-file checksums. The manifest is what lets a merge
// verify coverage part by part — the same shard-by-shard discipline the
// hitlist pipelines use on partially damaged address corpora.
package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"userv6/internal/faultio"
)

const (
	// ManifestVersion is the current manifest schema version.
	ManifestVersion = 1
	// ManifestName is the conventional manifest filename inside a
	// sharded export directory.
	ManifestName = "manifest.uv6m"

	// PartKindBenign marks a part holding one shard's benign user range;
	// PartKindAbusive marks the single trailing part holding the
	// serially generated abusive stream.
	PartKindBenign  = "benign"
	PartKindAbusive = "abusive"
)

// PartInfo describes one part file of a sharded export.
type PartInfo struct {
	// Name is the part's filename, relative to the manifest.
	Name string `json:"name"`
	// Kind is PartKindBenign or PartKindAbusive.
	Kind string `json:"kind"`
	// UserLo and UserHi bound the part's user-index range [lo, hi).
	// Zero for the abusive part, whose accounts are not population
	// users.
	UserLo int `json:"user_lo"`
	UserHi int `json:"user_hi"`
	// Records and Blocks are the part's record and frame counts.
	Records uint64 `json:"records"`
	Blocks  uint64 `json:"blocks"`
	// Codec names the block codec the part was written under (empty
	// means identity). Merge cross-checks it against the part's actual
	// frame flags: an LZ part may legitimately hold identity-fallback
	// frames, but any frame under a codec the manifest did not declare
	// marks a mixed or mislabeled part set.
	Codec string `json:"codec,omitempty"`
	// CRC32C is the Castagnoli checksum of the entire part file
	// (header and stream), lowercase hex.
	CRC32C string `json:"crc32c"`
}

// Manifest binds the parts of a sharded export together.
type Manifest struct {
	Version int `json:"version"`
	// Seed and ConfigHash identify the producing run; a merge refuses
	// nothing on its own, but tools can compare hashes before mixing
	// parts from different configurations.
	Seed       uint64 `json:"seed"`
	ConfigHash string `json:"config_hash"`
	// Shards is the number of benign shards (the abusive part, when
	// present, is in addition).
	Shards int `json:"shards"`
	// Meta is the dataset metadata a merged output should carry —
	// identical to what a single-writer run at the same config writes.
	Meta Meta `json:"meta"`
	// Parts lists every part in canonical merge order: benign shards by
	// ascending user range, then the abusive part.
	Parts []PartInfo `json:"parts"`
	// Complete is set on the final manifest rewrite, after every part
	// has finalized. A sharded export writes a provisional manifest
	// (Complete false, zero counts, empty checksums) before generation
	// starts and updates it as parts finish, so an interrupted run
	// always leaves enough on disk for a resume to know what was
	// expected.
	Complete bool `json:"complete,omitempty"`
}

// TotalRecords sums the per-part record counts.
func (m *Manifest) TotalRecords() uint64 {
	var n uint64
	for _, p := range m.Parts {
		n += p.Records
	}
	return n
}

// TotalBlocks sums the per-part frame counts.
func (m *Manifest) TotalBlocks() uint64 {
	var n uint64
	for _, p := range m.Parts {
		n += p.Blocks
	}
	return n
}

// ConfigHash derives the manifest's config fingerprint from the
// scenario-identifying metadata fields (seed, population, window,
// sampler, benign-only). Volatile fields — record counts, completion,
// header CRC — are excluded, so a partial and a complete run of the
// same configuration hash identically.
func ConfigHash(m Meta) string {
	id := struct {
		Seed       uint64 `json:"seed"`
		Users      int    `json:"users"`
		FromDay    int    `json:"from_day"`
		ToDay      int    `json:"to_day"`
		Sample     string `json:"sample"`
		BenignOnly bool   `json:"benign_only"`
		// Codec is omitempty so every hash computed before the codec
		// field existed stays valid for identity-codec datasets.
		Codec string `json:"codec,omitempty"`
	}{m.Seed, m.Users, m.FromDay, m.ToDay, m.Sample, m.BenignOnly, m.Codec}
	b, err := json.Marshal(id)
	if err != nil {
		// Marshal of a flat struct of scalars cannot fail.
		panic(err)
	}
	return fmt.Sprintf("%08x", crc32.Checksum(b, headerCastagnoli))
}

// WriteManifest writes m to path atomically (temp + rename), so a
// crashed export never leaves a half-written manifest next to its
// parts.
func WriteManifest(path string, m *Manifest) error {
	return WriteManifestFS(faultio.OS, path, m)
}

// WriteManifestFS is WriteManifest over an explicit filesystem.
func WriteManifestFS(fsys faultio.FS, path string, m *Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("dataset: marshal manifest: %w", err)
	}
	b = append(b, '\n')
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("dataset: create manifest: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("dataset: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("dataset: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("dataset: close manifest: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("dataset: rename manifest: %w", err)
	}
	return nil
}

// ReadManifest parses and validates a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	return ReadManifestFS(faultio.OS, path)
}

// ReadManifestFS is ReadManifest over an explicit filesystem.
func ReadManifestFS(fsys faultio.FS, path string) (*Manifest, error) {
	b, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("dataset: parse manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("dataset: unsupported manifest version %d", m.Version)
	}
	if len(m.Parts) == 0 {
		return nil, fmt.Errorf("dataset: manifest lists no parts")
	}
	for i, p := range m.Parts {
		if p.Name == "" {
			return nil, fmt.Errorf("dataset: manifest part %d has no name", i)
		}
		if p.Kind != PartKindBenign && p.Kind != PartKindAbusive {
			return nil, fmt.Errorf("dataset: manifest part %q has unknown kind %q", p.Name, p.Kind)
		}
	}
	return &m, nil
}

// FileCRC32C computes the Castagnoli checksum of an entire file,
// rendered as lowercase hex — the per-part checksum recorded in the
// manifest.
func FileCRC32C(path string) (string, error) {
	return FileCRC32CFS(faultio.OS, path)
}

// FileCRC32CFS is FileCRC32C over an explicit filesystem.
func FileCRC32CFS(fsys faultio.FS, path string) (string, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return "", fmt.Errorf("dataset: checksum open: %w", err)
	}
	defer f.Close()
	h := crc32.New(headerCastagnoli)
	if _, err := io.Copy(h, bufio.NewReaderSize(f, 1<<16)); err != nil {
		return "", fmt.Errorf("dataset: checksum read: %w", err)
	}
	return fmt.Sprintf("%08x", h.Sum32()), nil
}
