package dataset

// Block-parallel dataset reading. The v2 format's independently
// checksummed, independently decodable blocks are the natural unit of
// parallelism: a single goroutine performs the sequential disk I/O
// (frame scanning), a worker pool verifies checksums and decodes
// records, and batches are delivered either in exact stream order (for
// byte-exact tooling and order-sensitive analyzers) or as they complete
// (for commutative consumers). Tolerant reads — the salvage path that
// skips corrupt blocks and reports coverage — go through the same pool.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"

	"userv6/internal/telemetry"
)

// ParallelOptions tunes a ParallelReader.
type ParallelOptions struct {
	// Workers is the decode pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Unordered delivers batches as workers finish them instead of in
	// stream order, and invokes the callback concurrently from the
	// worker goroutines. Only consumers whose accumulation is
	// commutative (and whose callback is safe for concurrent use)
	// should opt in; everything else wants the default ordered mode.
	Unordered bool
	// Tolerant switches to the salvage read path: corrupt blocks are
	// skipped instead of failing the read, and Coverage reports what
	// fraction of the stream the delivered records describe. The whole
	// stream is buffered in memory, like Salvage.
	Tolerant bool
}

// Batch is one decoded block of records. The slice is recycled after
// the delivery callback returns; consumers must copy any records they
// retain (Observation is a value type, so plain assignment copies).
type Batch struct {
	// Index is the block's 0-based position in the stream. In tolerant
	// mode indexes count intact blocks only.
	Index int
	// Recs holds the block's decoded records in stream order.
	Recs []telemetry.Observation
}

// ParallelReader reads a dataset file with concurrent block decode. It
// accepts everything Open and Salvage accept: headered dataset files
// (v1 or v2 stream) and headerless raw telemetry streams.
type ParallelReader struct {
	f    *os.File
	meta Meta
	raw  bool
	opts ParallelOptions

	consumed bool
	coverage telemetry.SalvageReport
	covered  bool
}

// OpenParallel opens path for parallel reading and parses its header
// (verifying the header CRC like Open). A file that starts directly
// with a telemetry signature is accepted as a headerless raw stream
// with zero Meta.
func OpenParallel(path string, opts ParallelOptions) (*ParallelReader, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open: %w", err)
	}
	hdr := make([]byte, headerSize)
	n, err := io.ReadFull(f, hdr)
	if err != nil && err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) {
		f.Close()
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	pr := &ParallelReader{f: f, opts: opts}
	if n >= 3 && hdr[0] == 'u' && hdr[1] == 'v' && hdr[2] == '6' {
		pr.raw = true
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("dataset: seek: %w", err)
		}
		return pr, nil
	}
	if n != headerSize {
		f.Close()
		return nil, fmt.Errorf("dataset: read header: %w", io.ErrUnexpectedEOF)
	}
	if err := json.Unmarshal(trimHeader(hdr), &pr.meta); err != nil {
		f.Close()
		return nil, fmt.Errorf("dataset: parse header: %w", err)
	}
	if err := verifyHeaderCRC(hdr, pr.meta); err != nil {
		f.Close()
		return nil, err
	}
	return pr, nil
}

// Meta returns the dataset metadata (zero for raw streams).
func (pr *ParallelReader) Meta() Meta { return pr.meta }

// Workers returns the normalized decode-pool size (the Workers option,
// with <= 0 resolved to GOMAXPROCS at open time). ForEachWorker calls
// its factory exactly this many times.
func (pr *ParallelReader) Workers() int { return pr.opts.Workers }

// Raw reports whether the file is a headerless telemetry stream.
func (pr *ParallelReader) Raw() bool { return pr.raw }

// Coverage returns the stream report of a completed read and whether
// one finished. A tolerant read mirrors Scan's accounting exactly (the
// same blocks counted intact, corrupt, or skipped); a strict read that
// ran to completion reports the intact stream it delivered — blocks,
// records, and per-codec block counts, with nothing corrupt or skipped
// by construction. A read that returned an error reports nothing.
func (pr *ParallelReader) Coverage() (telemetry.SalvageReport, bool) {
	return pr.coverage, pr.covered
}

// finishStrict sums the per-goroutine block counts of a successful
// strict read into the reader's coverage. An empty stream still reports
// as v2: there is nothing to contradict the newest format.
func (pr *ParallelReader) finishStrict(reports []telemetry.SalvageReport) {
	var total telemetry.SalvageReport
	for i := range reports {
		total.Add(reports[i])
	}
	if total.Version == 0 {
		total.Version = 2
	}
	pr.coverage, pr.covered = total, true
}

// Close closes the underlying file.
func (pr *ParallelReader) Close() error { return pr.f.Close() }

// ForEach streams every record through fn in exact stream order, like
// Reader.ForEach, with decode parallelized across the pool.
func (pr *ParallelReader) ForEach(fn telemetry.EmitFunc) error {
	if pr.opts.Unordered {
		return errors.New("dataset: ForEach requires ordered delivery (use ForEachBatch for unordered reads)")
	}
	return pr.ForEachBatch(context.Background(), func(b Batch) error {
		for _, o := range b.Recs {
			fn(o)
		}
		return nil
	})
}

// ForEachBatch decodes the stream through the worker pool and delivers
// each block's records to fn. In ordered mode (the default) fn is
// invoked from the calling goroutine, one batch at a time, in stream
// order — a strict-mode corrupt-block error surfaces only after every
// block before it has been delivered, exactly like the sequential
// reader. In unordered mode fn is invoked concurrently from the worker
// goroutines in completion order. A non-nil error from fn cancels the
// read and is returned. The reader is single-use: a second call
// returns an error.
func (pr *ParallelReader) ForEachBatch(ctx context.Context, fn func(Batch) error) error {
	if pr.consumed {
		return errors.New("dataset: stream already consumed")
	}
	pr.consumed = true
	if pr.opts.Tolerant {
		return pr.runTolerant(ctx, fn)
	}
	return pr.runStrict(ctx, fn)
}

// scanLabeled and workerLabeled attach pprof goroutine labels so CPU
// and goroutine profiles attribute time by pipeline stage and worker:
// stage=scan for the frame scanner, stage=decode for pool workers that
// only decode, stage=decode+analyze for fused ForEachWorker workers.
func scanLabeled(body func()) {
	pprof.Do(context.Background(), pprof.Labels("stage", "scan"),
		func(context.Context) { body() })
}

func workerLabeled(stage string, w int, body func()) {
	pprof.Do(context.Background(), pprof.Labels("stage", stage, "worker", strconv.Itoa(w)),
		func(context.Context) { body() })
}

// result is one decoded block (or a positioned error) on its way from
// the pool to delivery. In unordered mode only errors flow through.
// codec and cksum carry the block's stored codec and frame version so
// ordered delivery can count strict-mode coverage.
type result struct {
	idx   int
	recs  []telemetry.Observation
	err   error
	codec telemetry.CodecID
	cksum bool
}

// pools recycles payload and record-batch scratch buffers across
// blocks, so a steady-state read allocates nothing per block.
type pools struct {
	payload sync.Pool
	recs    sync.Pool
}

func (p *pools) getPayload() []byte {
	if b, ok := p.payload.Get().(*[]byte); ok {
		return *b
	}
	return nil
}

func (p *pools) putPayload(b []byte) {
	if b != nil {
		p.payload.Put(&b)
	}
}

func (p *pools) getRecs() []telemetry.Observation {
	if b, ok := p.recs.Get().(*[]telemetry.Observation); ok {
		return (*b)[:0]
	}
	return make([]telemetry.Observation, 0, telemetry.DefaultBlockRecords)
}

func (p *pools) putRecs(b []telemetry.Observation) {
	if b != nil {
		p.recs.Put(&b)
	}
}

func (pr *ParallelReader) runStrict(ctx context.Context, fn func(Batch) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var bufs pools
	jobs := make(chan telemetry.RawBlock, pr.opts.Workers)
	results := make(chan result, pr.opts.Workers*2)

	// Scanner: sequential frame I/O. A scan error is assigned the index
	// the next block would have carried, so ordered delivery emits it
	// after every block before the damage — like the sequential reader.
	go scanLabeled(func() {
		defer close(jobs)
		br := telemetry.NewBlockReader(bufio.NewReaderSize(pr.f, 1<<20))
		idx := 0
		for {
			blk, err := br.Next(bufs.getPayload())
			if err == io.EOF {
				return
			}
			if err != nil {
				select {
				case results <- result{idx: idx, err: err}:
				case <-ctx.Done():
				}
				return
			}
			idx = blk.Index + 1
			select {
			case jobs <- blk:
			case <-ctx.Done():
				return
			}
		}
	})

	// Workers: CRC verify + codec decode; in unordered mode they also
	// deliver. Each worker keeps its own decompression scratch, so a
	// compressed stream decodes with zero steady-state allocations and
	// the LZ work parallelizes with the rest of the block decode.
	// reports[w] counts worker w's unordered deliveries (ordered
	// delivery counts in deliver, at reports[Workers]).
	reports := make([]telemetry.SalvageReport, pr.opts.Workers+1)
	var wg sync.WaitGroup
	for w := 0; w < pr.opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workerLabeled("decode", w, func() {
				var scratch []byte
				for blk := range jobs {
					recs, sc, err := blk.AppendDecoded(bufs.getRecs(), scratch)
					scratch = sc
					bufs.putPayload(blk.Payload)
					if err == nil && pr.opts.Unordered {
						n := len(recs)
						err = fn(Batch{Index: blk.Index, Recs: recs})
						bufs.putRecs(recs)
						if err == nil {
							reports[w].RecordBlock(blk.Codec, blk.Checksummed(), n)
							continue
						}
						recs = nil
					}
					if err != nil {
						recs = nil
					}
					select {
					case results <- result{idx: blk.Index, recs: recs, err: err,
						codec: blk.Codec, cksum: blk.Checksummed()}:
					case <-ctx.Done():
						return
					}
				}
			})
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	if err := pr.deliver(cancel, results, fn, &bufs, &reports[pr.opts.Workers]); err != nil {
		return err
	}
	// deliver only cancels after recording an error, so a cancelled
	// context here means the caller's ctx fired mid-read.
	if err := ctx.Err(); err != nil {
		return err
	}
	// Workers have been joined (results closed), so every per-worker
	// report happens-before this sum.
	pr.finishStrict(reports)
	return nil
}

// Note that the scan error carries the index where the sequential
// reader would have failed; in the strict path corruption anywhere
// fails the read, but ordered delivery still hands over every block
// before the damage first, mirroring Reader.ForEach exactly.

func (pr *ParallelReader) runTolerant(ctx context.Context, fn func(Batch) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Buffer the stream like Salvage: resynchronization needs random
	// access, and salvage is an offline recovery path, not a hot one.
	data, err := io.ReadAll(bufio.NewReaderSize(pr.f, 1<<20))
	if err != nil {
		return fmt.Errorf("dataset: salvage read: %w", err)
	}

	var bufs pools
	type job struct {
		idx     int
		payload []byte
	}
	jobs := make(chan job, pr.opts.Workers)
	results := make(chan result, pr.opts.Workers*2)

	// Scanner: the sequential marker-resync walk, checksums included —
	// the resync position depends on each candidate frame's checksum
	// verdict, so deferring verification would change what salvage
	// recovers. Workers get the already-verified payloads to decode.
	var (
		rep     telemetry.SalvageReport
		scanErr error
	)
	go scanLabeled(func() {
		defer close(jobs)
		idx := 0
		rep, scanErr = telemetry.SalvageBlocks(data, func(payload []byte, count int) {
			select {
			case jobs <- job{idx: idx, payload: payload}:
				idx++
			case <-ctx.Done():
			}
		})
	})

	var wg sync.WaitGroup
	for w := 0; w < pr.opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workerLabeled("decode", w, func() {
				for j := range jobs {
					recs := telemetry.AppendRecords(bufs.getRecs(), j.payload)
					var err error
					if pr.opts.Unordered {
						err = fn(Batch{Index: j.idx, Recs: recs})
						bufs.putRecs(recs)
						if err == nil {
							continue
						}
						recs = nil
					}
					select {
					case results <- result{idx: j.idx, recs: recs, err: err}:
					case <-ctx.Done():
						return
					}
				}
			})
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	if err := pr.deliver(cancel, results, fn, &bufs, nil); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// The report is safe to read: SalvageBlocks returned before the
	// deferred close(jobs), which happens-before the pool drained and
	// deliver observed the closed results channel.
	if scanErr != nil {
		return scanErr
	}
	pr.coverage, pr.covered = rep, true
	return nil
}

// deliver consumes results until the pool drains. Ordered mode holds
// out-of-order blocks back until their predecessors have been handed to
// fn; unordered mode only watches for errors (delivery already happened
// in the workers). On the first error it cancels the pipeline and keeps
// draining so no goroutine is left blocked on a send. A non-nil rep
// counts each successfully delivered block (strict ordered reads;
// tolerant reads take their coverage from the salvage scan instead).
func (pr *ParallelReader) deliver(cancel context.CancelFunc, results <-chan result, fn func(Batch) error, bufs *pools, rep *telemetry.SalvageReport) error {
	var (
		firstErr error
		next     int
		held     = make(map[int]result)
	)
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			cancel()
		}
	}
	for r := range results {
		if r.err != nil {
			if pr.opts.Unordered || firstErr != nil {
				fail(r.err)
				continue
			}
			// Ordered: the error waits its turn like any block.
		}
		if pr.opts.Unordered {
			continue
		}
		held[r.idx] = r
		for {
			h, ok := held[next]
			if !ok {
				break
			}
			delete(held, next)
			if firstErr != nil {
				bufs.putRecs(h.recs)
				next++
				continue
			}
			if h.err != nil {
				fail(h.err)
				next++
				continue
			}
			if err := fn(Batch{Index: next, Recs: h.recs}); err != nil {
				fail(err)
			} else if rep != nil {
				rep.RecordBlock(h.codec, h.cksum, len(h.recs))
			}
			bufs.putRecs(h.recs)
			next++
		}
	}
	return firstErr
}

// WorkerPanicError reports a panic that escaped a ForEachWorker
// callback (or the decode feeding it). The read returns it as an
// ordinary error so callers can tell "a worker blew up" from "a block
// was corrupt"; Stack is the panicking goroutine's stack at recover.
type WorkerPanicError struct {
	Worker int
	Value  any
	Stack  []byte
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("dataset: ForEachWorker worker %d panicked: %v", e.Worker, e.Value)
}

// ForEachWorker is the fused consumption mode: newWorker is called
// serially (worker 0 first, before any goroutine starts) to build one
// callback per decode worker, and each worker then invokes its own
// callback inline on every block it decodes — no ordered-delivery
// heap, no cross-goroutine batch handoff, no router. Batches arrive in
// arbitrary order and their record slices are recycled as soon as the
// callback returns. A given callback is only ever invoked from its own
// worker goroutine, so worker-local state needs no locking, while the
// serial factory phase may freely touch shared state. The Unordered
// option is irrelevant here (delivery is inherently unordered);
// Tolerant selects the salvage scan and fills Coverage on success. The
// first decode or callback error cancels the read and is returned; a
// callback panic is recovered and returned as a *WorkerPanicError. The
// reader is single-use, like ForEachBatch.
func (pr *ParallelReader) ForEachWorker(ctx context.Context, newWorker func(worker int) func(Batch) error) error {
	if pr.consumed {
		return errors.New("dataset: stream already consumed")
	}
	pr.consumed = true
	fns := make([]func(Batch) error, pr.opts.Workers)
	for w := range fns {
		fns[w] = newWorker(w)
	}
	if pr.opts.Tolerant {
		return pr.workerTolerant(ctx, fns)
	}
	return pr.workerStrict(ctx, fns)
}

// failFunc returns a first-error-wins recorder: the first failure
// cancels the pipeline, later ones are dropped. The recorded error is
// read only after every writer goroutine has been joined.
func failFunc(cancel context.CancelFunc, firstErr *error) func(error) {
	var mu sync.Mutex
	return func(err error) {
		mu.Lock()
		if *firstErr == nil {
			*firstErr = err
			cancel()
		}
		mu.Unlock()
	}
}

func (pr *ParallelReader) workerStrict(ctx context.Context, fns []func(Batch) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		bufs     pools
		firstErr error
	)
	fail := failFunc(cancel, &firstErr)

	jobs := make(chan telemetry.RawBlock, pr.opts.Workers)
	go scanLabeled(func() {
		defer close(jobs)
		br := telemetry.NewBlockReader(bufio.NewReaderSize(pr.f, 1<<20))
		for {
			blk, err := br.Next(bufs.getPayload())
			if err == io.EOF {
				return
			}
			if err != nil {
				fail(err)
				return
			}
			select {
			case jobs <- blk:
			case <-ctx.Done():
				return
			}
		}
	})

	reports := make([]telemetry.SalvageReport, len(fns))
	var wg sync.WaitGroup
	for w := range fns {
		wg.Add(1)
		go func(w int, fn func(Batch) error) {
			defer wg.Done()
			workerLabeled("decode+analyze", w, func() {
				defer func() {
					if v := recover(); v != nil {
						fail(&WorkerPanicError{Worker: w, Value: v, Stack: debug.Stack()})
						for range jobs {
							// Drain so the scanner never blocks on a
							// send this worker would have consumed.
						}
					}
				}()
				var scratch []byte
				for blk := range jobs {
					if ctx.Err() != nil {
						continue // cancelled: drain without decoding
					}
					recs, sc, err := blk.AppendDecoded(bufs.getRecs(), scratch)
					scratch = sc
					bufs.putPayload(blk.Payload)
					if err == nil {
						err = fn(Batch{Index: blk.Index, Recs: recs})
						if err == nil {
							reports[w].RecordBlock(blk.Codec, blk.Checksummed(), len(recs))
						}
					}
					bufs.putRecs(recs)
					if err != nil {
						fail(err)
					}
				}
			})
		}(w, fns[w])
	}
	wg.Wait()
	// Workers only exit after the scanner closed jobs, so every fail()
	// happens-before this read.
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	pr.finishStrict(reports)
	return nil
}

func (pr *ParallelReader) workerTolerant(ctx context.Context, fns []func(Batch) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Buffer the stream like Salvage: resynchronization needs random
	// access (see runTolerant).
	data, err := io.ReadAll(bufio.NewReaderSize(pr.f, 1<<20))
	if err != nil {
		return fmt.Errorf("dataset: salvage read: %w", err)
	}

	var (
		bufs     pools
		firstErr error
	)
	fail := failFunc(cancel, &firstErr)

	type job struct {
		idx     int
		payload []byte
	}
	jobs := make(chan job, pr.opts.Workers)
	var (
		rep     telemetry.SalvageReport
		scanErr error
	)
	go scanLabeled(func() {
		defer close(jobs)
		idx := 0
		rep, scanErr = telemetry.SalvageBlocks(data, func(payload []byte, count int) {
			select {
			case jobs <- job{idx: idx, payload: payload}:
				idx++
			case <-ctx.Done():
			}
		})
	})

	var wg sync.WaitGroup
	for w := range fns {
		wg.Add(1)
		go func(w int, fn func(Batch) error) {
			defer wg.Done()
			workerLabeled("decode+analyze", w, func() {
				defer func() {
					if v := recover(); v != nil {
						fail(&WorkerPanicError{Worker: w, Value: v, Stack: debug.Stack()})
						for range jobs {
						}
					}
				}()
				for j := range jobs {
					if ctx.Err() != nil {
						continue
					}
					recs := telemetry.AppendRecords(bufs.getRecs(), j.payload)
					err := fn(Batch{Index: j.idx, Recs: recs})
					bufs.putRecs(recs)
					if err != nil {
						fail(err)
					}
				}
			})
		}(w, fns[w])
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// rep/scanErr were assigned before the scanner's deferred
	// close(jobs), which happens-before every worker's exit.
	if scanErr != nil {
		return scanErr
	}
	pr.coverage, pr.covered = rep, true
	return nil
}
