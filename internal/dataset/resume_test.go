package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// genOrdered builds records in canonical generation order: users
// ascending, days ascending within a user, perBatch records per
// (user, day) batch, optionally followed by an abusive tail.
func genOrdered(users, days, perBatch, abusive int) []telemetry.Observation {
	var out []telemetry.Observation
	for u := 0; u < users; u++ {
		for d := 0; d < days; d++ {
			for k := 0; k < perBatch; k++ {
				o := telemetry.Observation{
					Day: simtime.Day(d), UserID: uint64(u),
					Addr:     netaddr.AddrFrom6(0x20010db8<<32, uint64(u*1000+d*10+k)),
					Requests: uint32(k + 1),
				}
				o.SetCountry("US")
				out = append(out, o)
			}
		}
	}
	for k := 0; k < abusive; k++ {
		o := telemetry.Observation{
			Day: simtime.Day(days - 1), UserID: uint64(1<<40) | uint64(k),
			Addr: netaddr.AddrFrom6(0x20010db9<<32, uint64(k)), Requests: 3, Abusive: true,
		}
		o.SetCountry("RU")
		out = append(out, o)
	}
	return out
}

func TestDeriveFrontier(t *testing.T) {
	// Mid-benign interruption: the trailing (user, day) batch is
	// regenerated whole.
	obs := genOrdered(10, 3, 4, 0)
	cut := obs[:5*3*4+2*4+1] // user 5 complete, user... through (6, day 2) partial
	front, keep := DeriveFrontier(cut)
	if front.Restart || front.BenignDone {
		t.Fatalf("frontier = %+v", front)
	}
	last := cut[len(cut)-1]
	if front.UserID != last.UserID || front.Day != last.Day {
		t.Fatalf("frontier = %+v, want user %d day %d", front, last.UserID, last.Day)
	}
	if keep != 5*3*4+2*4 {
		t.Fatalf("keep = %d", keep)
	}
	for _, o := range cut[:keep] {
		if o.UserID == front.UserID && o.Day == front.Day {
			t.Fatal("kept prefix contains frontier-batch records")
		}
	}

	// Abusive tail: benign is complete; the abusive stream is dropped
	// and regenerated whole.
	obs = genOrdered(4, 2, 3, 5)
	front, keep = DeriveFrontier(obs[:len(obs)-2])
	if !front.BenignDone {
		t.Fatalf("frontier = %+v, want BenignDone", front)
	}
	if keep != 4*2*3 {
		t.Fatalf("keep = %d, want %d", keep, 4*2*3)
	}

	// Nothing recovered: restart from scratch.
	front, keep = DeriveFrontier(nil)
	if !front.Restart || keep != 0 {
		t.Fatalf("frontier = %+v keep=%d", front, keep)
	}
}

// TestLoadResumePrefixTruncated: a torn file yields the strictly
// verified prefix, and the frontier derived from it resumes at the
// right batch.
func TestLoadResumePrefixTruncated(t *testing.T) {
	defer func(n int) { headerFlushEvery = n }(headerFlushEvery)
	headerFlushEvery = 128 // force frequent flushes: many small blocks

	dir := t.TempDir()
	obs := genOrdered(40, 4, 5, 0) // 800 records, blocks of 128
	meta := Meta{Seed: 3, Users: 40, FromDay: 0, ToDay: 3, Sample: "all"}

	w, err := Create(filepath.Join(dir, "full.uv6"), meta)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "full.uv6"))
	if err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-way through a block: 3 blocks survive whole.
	torn := filepath.Join(dir, "torn.uv6")
	cutBytes := headerSize + 4 + 3*(16+128*40) + 700
	if err := os.WriteFile(torn, raw[:cutBytes], 0o644); err != nil {
		t.Fatal(err)
	}

	gotMeta, prefix, err := LoadResumePrefix(torn)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Seed != 3 || gotMeta.Users != 40 {
		t.Fatalf("meta = %+v", gotMeta)
	}
	if len(prefix) != 3*128 {
		t.Fatalf("prefix = %d records, want %d", len(prefix), 3*128)
	}
	for i, o := range prefix {
		if o != obs[i] {
			t.Fatalf("prefix record %d mismatch", i)
		}
	}

	front, keep := DeriveFrontier(prefix)
	if front.Restart || front.BenignDone {
		t.Fatalf("frontier = %+v", front)
	}
	last := prefix[len(prefix)-1]
	if front.UserID != last.UserID || front.Day != last.Day {
		t.Fatalf("frontier = %+v, want (%d, %d)", front, last.UserID, last.Day)
	}
	// Re-emitting the kept prefix and regenerating from the frontier
	// reconstructs the full sequence exactly.
	rebuilt := append([]telemetry.Observation{}, prefix[:keep]...)
	for _, o := range obs[keep:] {
		rebuilt = append(rebuilt, o)
	}
	if len(rebuilt) != len(obs) {
		t.Fatalf("rebuilt %d records, want %d", len(rebuilt), len(obs))
	}
	for i := range rebuilt {
		if rebuilt[i] != obs[i] {
			t.Fatalf("rebuilt record %d mismatch", i)
		}
	}
}

// TestLoadResumePrefixRejectsBadHeader: a header that fails its CRC
// cannot seed a resume.
func TestLoadResumePrefixRejectsBadHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.uv6")
	w, err := Create(path, Meta{Seed: 123456, Users: 10, FromDay: 0, ToDay: 1, Sample: "all"})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range sample(10) {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipSeedDigit(t, raw)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadResumePrefix(path); err == nil {
		t.Fatal("resume from a CRC-failing header should fail")
	}
}
