package dataset

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"userv6/internal/telemetry"
)

// TestDatasetCompressedRoundTrip: a dataset written under the lz codec
// must read back identically through every reader mode, and the file
// must be at least 2x smaller than its identity twin.
func TestDatasetCompressedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	obs := sample(5000)
	meta := Meta{Seed: 3, Users: 5000, FromDay: 0, ToDay: 6, Sample: "all"}

	plain := filepath.Join(dir, "plain.uv6")
	writePart(t, plain, meta, obs)
	lzMeta := meta
	lzMeta.Codec = "lz"
	packed := filepath.Join(dir, "packed.uv6")
	writePart(t, packed, lzMeta, obs)

	ps, err := os.Stat(plain)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := os.Stat(packed)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Size()*2 > ps.Size() {
		t.Fatalf("compressed dataset %d bytes vs %d plain, want >= 2x smaller", ls.Size(), ps.Size())
	}

	r, err := Open(packed)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Meta().Codec; got != "lz" {
		t.Fatalf("header codec = %q, want lz", got)
	}
	r.Close()

	sameRecords(t, readSequential(t, packed), obs)
	sameRecords(t, readParallel(t, packed, ParallelOptions{Workers: 4}), obs)
	sameRecords(t, readParallel(t, packed, ParallelOptions{Workers: 4, Tolerant: true}), obs)

	pr, err := OpenParallel(packed, ParallelOptions{Workers: 4, Unordered: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	var mu sync.Mutex
	var unordered []telemetry.Observation
	if err := pr.ForEachBatch(context.Background(), func(b Batch) error {
		mu.Lock()
		unordered = append(unordered, b.Recs...)
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := append([]telemetry.Observation{}, obs...)
	sortObs(unordered)
	sortObs(want)
	sameRecords(t, unordered, want)
}

func TestCreateRejectsUnknownCodec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.uv6")
	if _, err := Create(path, Meta{Codec: "zstd"}); err == nil {
		t.Fatal("Create accepted an unknown codec name")
	}
}

// TestMergeCompressedByteIdentical: merging compressed parts must
// reproduce the single-writer compressed file exactly — with
// block-aligned parts (where the passthrough fast path carries whole
// stored frames) and misaligned ones (where records re-encode).
func TestMergeCompressedByteIdentical(t *testing.T) {
	obs := sample(5000)
	meta := Meta{Seed: 11, Users: 5000, FromDay: 0, ToDay: 6, Sample: "all", Codec: "lz"}

	for name, cuts := range map[string][]int{
		"aligned":    {2048, 4096}, // part boundaries on whole 1024-record blocks
		"misaligned": {1250, 2500, 3750},
	} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				dir := t.TempDir()
				single := filepath.Join(dir, "single.uv6")
				writePart(t, single, meta, obs)

				var parts []string
				lo := 0
				for i, hi := range append(append([]int{}, cuts...), len(obs)) {
					p := filepath.Join(dir, fmt.Sprintf("part-%04d.uv6", i))
					writePart(t, p, meta, obs[lo:hi])
					parts = append(parts, p)
					lo = hi
				}

				merged := filepath.Join(dir, "merged.uv6")
				rep, err := Merge(merged, meta, parts, &MergeOptions{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Complete || rep.Records != uint64(len(obs)) {
					t.Fatalf("complete=%v records=%d", rep.Complete, rep.Records)
				}
				for _, cov := range rep.Parts {
					if !cov.CodecOK {
						t.Fatalf("part %s flagged for codec mismatch", cov.Name)
					}
				}
				want, err := os.ReadFile(single)
				if err != nil {
					t.Fatal(err)
				}
				got, err := os.ReadFile(merged)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("merged compressed dataset differs from single-writer output (%d vs %d bytes)",
						len(got), len(want))
				}
			})
		}
	}
}

// TestMergeCompressedDamagedPart: a flipped byte inside a compressed
// part costs exactly that block; the merge recovers every sibling.
func TestMergeCompressedDamagedPart(t *testing.T) {
	dir := t.TempDir()
	obs := sample(4096)
	meta := Meta{Seed: 5, Users: 4096, FromDay: 0, ToDay: 6, Sample: "all", Codec: "lz"}

	var parts []string
	for i := 0; i < 2; i++ {
		p := filepath.Join(dir, fmt.Sprintf("part-%04d.uv6", i))
		writePart(t, p, meta, obs[i*2048:(i+1)*2048])
		parts = append(parts, p)
	}
	raw, err := os.ReadFile(parts[1])
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+4+16+21] ^= 0x01 // inside part 1's first stored payload
	if err := os.WriteFile(parts[1], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	merged := filepath.Join(dir, "merged.uv6")
	rep, err := Merge(merged, meta, parts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete || rep.Records != 4096-1024 {
		t.Fatalf("complete=%v records=%d, want incomplete with %d records", rep.Complete, rep.Records, 4096-1024)
	}
	cov := rep.Parts[1]
	if cov.CorruptBlocks != 1 || cov.BlocksRecovered != 1 || !cov.CodecOK {
		t.Fatalf("damaged part coverage = %+v", cov)
	}
	want := append(append([]telemetry.Observation{}, obs[:2048]...), obs[3072:]...)
	sameRecords(t, readSequential(t, merged), want)
}

// TestMergeCodecMismatch: a part whose intact frames carry a codec the
// manifest does not declare is refused outside tolerant mode; identity
// frames inside a declared-lz part stay legitimate (writer fallback).
func TestMergeCodecMismatch(t *testing.T) {
	dir := t.TempDir()
	obs := sample(2000)
	lzMeta := Meta{Seed: 2, Users: 2000, FromDay: 0, ToDay: 6, Sample: "all", Codec: "lz"}

	part := filepath.Join(dir, "part-0000.uv6")
	info := writePart(t, part, lzMeta, obs)
	info.Codec = "lz" // what a sharded exporter records (see ExportShardedCtx)

	// The manifest says identity, the frames say lz.
	lie := info
	lie.Codec = ""
	expected := map[string]PartInfo{info.Name: lie}

	_, err := Merge(filepath.Join(dir, "refused.uv6"), lzMeta, []string{part}, &MergeOptions{Expected: expected})
	if !errors.Is(err, ErrCodecMismatch) {
		t.Fatalf("mislabeled part gave %v, want ErrCodecMismatch", err)
	}

	// An unknown declared codec is a mismatch too: the frames cannot be
	// checked against a codec this build cannot name.
	bogus := info
	bogus.Codec = "zstd"
	_, err = Merge(filepath.Join(dir, "bogus.uv6"), lzMeta, []string{part},
		&MergeOptions{Expected: map[string]PartInfo{info.Name: bogus}})
	if !errors.Is(err, ErrCodecMismatch) {
		t.Fatalf("unknown declared codec gave %v, want ErrCodecMismatch", err)
	}

	// Tolerant mode proceeds, records the mismatch, loses nothing.
	rep, err := Merge(filepath.Join(dir, "tolerant.uv6"), lzMeta, []string{part},
		&MergeOptions{Expected: expected, Tolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Parts[0].CodecOK {
		t.Fatal("tolerant merge did not record the codec mismatch")
	}
	if rep.Records != uint64(len(obs)) {
		t.Fatalf("tolerant merge kept %d records, want %d", rep.Records, len(obs))
	}

	// Truthful manifest: no error, CodecOK stays set. Identity frames
	// would also be fine under a declared-lz part.
	rep, err = Merge(filepath.Join(dir, "ok.uv6"), lzMeta, []string{part},
		&MergeOptions{Expected: map[string]PartInfo{info.Name: info}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Parts[0].CodecOK || !rep.Complete {
		t.Fatalf("truthful manifest merge: %+v", rep.Parts[0])
	}

	// Without a manifest the part's own header declares lz; a plain
	// identity part under a declared-lz merge target is also legal.
	plainMeta := lzMeta
	plainMeta.Codec = ""
	plainPart := filepath.Join(dir, "part-plain.uv6")
	writePart(t, plainPart, plainMeta, obs)
	rep, err = Merge(filepath.Join(dir, "mixed.uv6"), lzMeta, []string{part, plainPart}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Parts[0].CodecOK || !rep.Parts[1].CodecOK {
		t.Fatalf("self-declared parts flagged: %+v", rep.Parts)
	}
}

// TestManifestCodecInConfigHash: the codec participates in the config
// hash (a compressed and an uncompressed run are different artifacts),
// while an empty codec hashes exactly as before the field existed.
func TestManifestCodecInConfigHash(t *testing.T) {
	base := Meta{Seed: 1, Users: 10, FromDay: 0, ToDay: 6}
	lz := base
	lz.Codec = "lz"
	if ConfigHash(base) == ConfigHash(lz) {
		t.Fatal("codec does not affect the config hash")
	}
	identity := base
	identity.Codec = ""
	if ConfigHash(base) != ConfigHash(identity) {
		t.Fatal("empty codec changed the config hash")
	}
}
