// Package dataset persists windowed telemetry datasets with a metadata
// header: the scenario that produced them, the day range, and record
// counts. A dataset file is the unit of exchange between the generator
// (cmd/userv6gen) and offline analysis — the stand-in for the paper's
// "random sample datasets".
//
// File layout: a one-line JSON header terminated by '\n', followed by
// the binary telemetry stream (telemetry.Writer format).
package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// Meta describes a dataset.
type Meta struct {
	// Seed and Users identify the producing scenario.
	Seed  uint64 `json:"seed"`
	Users int    `json:"users"`
	// FromDay and ToDay bound the window (inclusive).
	FromDay int `json:"from_day"`
	ToDay   int `json:"to_day"`
	// Sample describes the applied sampler ("all", "user:0.1", ...).
	Sample string `json:"sample"`
	// Records is filled at Close time.
	Records uint64 `json:"records"`
	// BenignOnly marks datasets without abusive traffic.
	BenignOnly bool `json:"benign_only,omitempty"`
}

// Window returns the day range as simtime values.
func (m Meta) Window() (from, to simtime.Day) {
	return simtime.Day(m.FromDay), simtime.Day(m.ToDay)
}

// Writer writes a dataset file.
type Writer struct {
	f    *os.File
	tw   *telemetry.Writer
	meta Meta
}

// Create opens path for writing with the given metadata. The record
// count in the header is finalized by Close (the header is rewritten).
func Create(path string, meta Meta) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: create: %w", err)
	}
	w := &Writer{f: f, meta: meta}
	if err := w.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	w.tw = telemetry.NewWriter(f)
	return w, nil
}

// headerSize is the fixed on-disk header length: the JSON line is padded
// with spaces so Close can rewrite it in place with the final count.
const headerSize = 256

func (w *Writer) writeHeader() error {
	b, err := json.Marshal(w.meta)
	if err != nil {
		return fmt.Errorf("dataset: marshal header: %w", err)
	}
	if len(b) >= headerSize {
		return fmt.Errorf("dataset: header too large (%d bytes)", len(b))
	}
	buf := make([]byte, headerSize)
	for i := range buf {
		buf[i] = ' '
	}
	copy(buf, b)
	buf[headerSize-1] = '\n'
	if _, err := w.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	if _, err := w.f.Seek(headerSize, io.SeekStart); err != nil {
		return fmt.Errorf("dataset: seek: %w", err)
	}
	return nil
}

// Write appends one observation.
func (w *Writer) Write(o telemetry.Observation) error {
	return w.tw.Write(o)
}

// Emit adapts Write to a telemetry.EmitFunc, recording the first error.
func (w *Writer) Emit() (telemetry.EmitFunc, *error) {
	var firstErr error
	return func(o telemetry.Observation) {
		if firstErr == nil {
			firstErr = w.Write(o)
		}
	}, &firstErr
}

// Close flushes the stream, rewrites the header with the final record
// count, and closes the file.
func (w *Writer) Close() error {
	if err := w.tw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	w.meta.Records = w.tw.Count()
	if err := w.writeHeader(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Reader reads a dataset file.
type Reader struct {
	f    *os.File
	tr   *telemetry.Reader
	meta Meta
}

// Open opens a dataset file and parses its header.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open: %w", err)
	}
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(trimHeader(hdr), &meta); err != nil {
		f.Close()
		return nil, fmt.Errorf("dataset: parse header: %w", err)
	}
	return &Reader{f: f, tr: telemetry.NewReader(bufio.NewReaderSize(f, 1<<16)), meta: meta}, nil
}

// trimHeader strips padding from the fixed-size header line.
func trimHeader(b []byte) []byte {
	end := len(b)
	for end > 0 && (b[end-1] == ' ' || b[end-1] == '\n') {
		end--
	}
	return b[:end]
}

// Meta returns the dataset metadata.
func (r *Reader) Meta() Meta { return r.meta }

// ForEach streams every record through fn.
func (r *Reader) ForEach(fn telemetry.EmitFunc) error {
	return r.tr.ForEach(fn)
}

// Read returns the next record or io.EOF.
func (r *Reader) Read() (telemetry.Observation, error) { return r.tr.Read() }

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }
