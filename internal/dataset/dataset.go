// Package dataset persists windowed telemetry datasets with a metadata
// header: the scenario that produced them, the day range, and record
// counts. A dataset file is the unit of exchange between the generator
// (cmd/userv6gen) and offline analysis — the stand-in for the paper's
// "random sample datasets".
//
// File layout: a one-line JSON header padded to a fixed 256 bytes and
// terminated by '\n', followed by the binary telemetry stream. New
// files use the framed, checksummed v2 stream (telemetry.WriterV2) and
// are written crash-safely: records go to a temporary file alongside
// the target, the header is re-flushed periodically so an interrupted
// run is salvageable, and Close fsyncs and renames so readers only ever
// observe complete files. Legacy v1 files (unframed stream, no format
// field in the header) remain fully readable. See docs/DATASET_FORMAT.md.
package dataset

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"userv6/internal/faultio"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// FormatV2 is the current on-disk format: framed record blocks with
// per-block CRC32C checksums. Legacy files carry no format field and
// report Format 0.
const FormatV2 = 2

// Meta describes a dataset.
type Meta struct {
	// Seed and Users identify the producing scenario.
	Seed  uint64 `json:"seed"`
	Users int    `json:"users"`
	// FromDay and ToDay bound the window (inclusive).
	FromDay int `json:"from_day"`
	ToDay   int `json:"to_day"`
	// Sample describes the applied sampler ("all", "user:0.1", ...).
	Sample string `json:"sample"`
	// Records is filled at Close time (and refreshed periodically while
	// writing, so a torn file reports recent progress).
	Records uint64 `json:"records"`
	// BenignOnly marks datasets without abusive traffic.
	BenignOnly bool `json:"benign_only,omitempty"`
	// Format is the stream format version (FormatV2 for new files;
	// zero for legacy v1 files).
	Format int `json:"format,omitempty"`
	// Codec names the block codec the stream was written under ("lz";
	// empty means identity). Individual blocks may still be stored as
	// identity when encoding did not shrink them — the per-frame flags
	// are authoritative; this field only declares the writer's intent
	// so tooling can cross-check and reproduce the file.
	Codec string `json:"codec,omitempty"`
	// Complete is set when the writer finalized the file. A file with
	// Complete false was interrupted mid-write and may hold fewer
	// records than a finished run would have.
	Complete bool `json:"complete,omitempty"`
	// HeaderCRC is the self-excluding header checksum: CRC32C
	// (Castagnoli) of the full 256-byte padded header with these eight
	// hex digits replaced by "00000000", rendered as lowercase hex. It
	// closes the last silent-corruption gap — a bit-flipped seed digit
	// in the JSON header is now detected like any payload flip. Headers
	// written before the field existed omit it and are accepted
	// unchecked.
	HeaderCRC string `json:"header_crc,omitempty"`
}

// Window returns the day range as simtime values.
func (m Meta) Window() (from, to simtime.Day) {
	return simtime.Day(m.FromDay), simtime.Day(m.ToDay)
}

// headerFlushEvery is the record interval between mid-write header
// refreshes (variable so tests can force frequent flushes).
var headerFlushEvery = 1 << 16

// Writer writes a dataset file crash-safely: records stream to
// path+".tmp" and Close atomically renames the finished file into
// place, so a crash never leaves a half-written file at the target
// path (the temp file it leaves is salvageable with Salvage).
type Writer struct {
	f          faultio.File
	fsys       faultio.FS
	tw         *telemetry.WriterV2
	meta       Meta
	path       string
	tmpPath    string
	sinceFlush int
}

// Create opens path for writing with the given metadata. Records
// accumulate in a temporary file next to path until Close finalizes
// and renames it into place.
func Create(path string, meta Meta) (*Writer, error) {
	return CreateFS(faultio.OS, path, meta)
}

// CreateFS is Create over an explicit filesystem — the seam the
// fault-injection harness wraps. Production callers use Create.
func CreateFS(fsys faultio.FS, path string, meta Meta) (*Writer, error) {
	if _, ok := telemetry.CodecChainByName(meta.Codec); !ok {
		return nil, fmt.Errorf("dataset: unknown block codec %q", meta.Codec)
	}
	meta.Format = FormatV2
	meta.Complete = false
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("dataset: create: %w", err)
	}
	w := &Writer{f: f, fsys: fsys, meta: meta, path: path, tmpPath: tmp}
	if err := w.writeHeader(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return nil, err
	}
	// Position the stream just past the header; later header refreshes
	// use WriteAt and do not disturb the append offset.
	if _, err := f.Seek(headerSize, io.SeekStart); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return nil, fmt.Errorf("dataset: seek: %w", err)
	}
	w.tw, err = telemetry.NewWriterV2Policy(f, telemetry.DefaultBlockRecords, meta.Codec)
	if err != nil {
		f.Close()
		fsys.Remove(tmp)
		return nil, err
	}
	return w, nil
}

// headerSize is the fixed on-disk header length: the JSON line is padded
// with spaces so the header can be rewritten in place as counts grow.
const headerSize = 256

// headerCRCKey is the JSON prefix of the checksum field inside the raw
// header bytes; the eight hex digits follow it immediately. Writing
// computes the CRC with the digits zeroed and patches them in; reading
// zeroes them again before recomputing, so the checksum excludes itself.
const headerCRCKey = `"header_crc":"`

// headerCRCZero is the placeholder over which the checksum is computed.
const headerCRCZero = "00000000"

var headerCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrHeaderCRC reports a dataset header whose self-excluding checksum
// does not match: some byte of the 256-byte JSON header was altered.
var ErrHeaderCRC = errors.New("dataset: header checksum mismatch")

func (w *Writer) writeHeader() error {
	m := w.meta
	m.HeaderCRC = headerCRCZero
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dataset: marshal header: %w", err)
	}
	if len(b) >= headerSize {
		return fmt.Errorf("dataset: header too large (%d bytes)", len(b))
	}
	buf := make([]byte, headerSize)
	for i := range buf {
		buf[i] = ' '
	}
	copy(buf, b)
	buf[headerSize-1] = '\n'
	i := bytes.Index(buf, []byte(headerCRCKey))
	if i < 0 {
		return fmt.Errorf("dataset: header checksum field missing after marshal")
	}
	crc := crc32.Checksum(buf, headerCastagnoli)
	copy(buf[i+len(headerCRCKey):], fmt.Sprintf("%08x", crc))
	if _, err := w.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	return nil
}

// verifyHeaderCRC checks the self-excluding header checksum of the raw
// 256-byte header against the parsed metadata. Headers without the
// field (v1 and early v2 files) pass unchecked.
func verifyHeaderCRC(hdr []byte, meta Meta) error {
	if meta.HeaderCRC == "" {
		return nil
	}
	i := bytes.Index(hdr, []byte(headerCRCKey))
	if i < 0 || i+len(headerCRCKey)+len(headerCRCZero) > len(hdr) {
		return fmt.Errorf("%w (field present in metadata but not in raw header)", ErrHeaderCRC)
	}
	tmp := make([]byte, len(hdr))
	copy(tmp, hdr)
	copy(tmp[i+len(headerCRCKey):], headerCRCZero)
	if got := fmt.Sprintf("%08x", crc32.Checksum(tmp, headerCastagnoli)); got != meta.HeaderCRC {
		return fmt.Errorf("%w (stored %s, computed %s)", ErrHeaderCRC, meta.HeaderCRC, got)
	}
	return nil
}

// Path returns the final path the dataset will occupy after Close.
func (w *Writer) Path() string { return w.path }

// Records returns the number of records written so far.
func (w *Writer) Records() uint64 { return w.tw.Count() }

// Blocks returns the number of stream frames emitted so far (final
// after Close). Sharded exports record it per part in the manifest.
func (w *Writer) Blocks() uint64 { return w.tw.Blocks() }

// Write appends one observation. Every headerFlushEvery records the
// stream is flushed and the header refreshed with the running count, so
// an interrupted run leaves a salvageable temp file with honest
// progress metadata.
func (w *Writer) Write(o telemetry.Observation) error {
	if err := w.tw.Write(o); err != nil {
		return err
	}
	w.sinceFlush++
	if w.sinceFlush >= headerFlushEvery {
		w.sinceFlush = 0
		if err := w.tw.Flush(); err != nil {
			return err
		}
		w.meta.Records = w.tw.Count()
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	return nil
}

// writeEncodedBlock forwards an already-stored frame to the stream
// writer when the passthrough preconditions hold (see
// telemetry.WriterV2.WriteEncodedBlock), keeping the same header-
// refresh cadence as record-at-a-time writes: sinceFlush advances by
// the whole block, and because passthrough only happens on block
// boundaries, a refresh triggered here flushes with no partial block
// pending — the stream bytes stay identical to a single-writer run.
func (w *Writer) writeEncodedBlock(b telemetry.RawBlock) (bool, error) {
	ok, err := w.tw.WriteEncodedBlock(b)
	if !ok || err != nil {
		return ok, err
	}
	w.sinceFlush += b.Count
	if w.sinceFlush >= headerFlushEvery {
		w.sinceFlush = 0
		if err := w.tw.Flush(); err != nil {
			return true, err
		}
		w.meta.Records = w.tw.Count()
		if err := w.writeHeader(); err != nil {
			return true, err
		}
	}
	return true, nil
}

// Emit adapts Write to a telemetry.EmitFunc, recording the first error.
func (w *Writer) Emit() (telemetry.EmitFunc, *error) {
	var firstErr error
	return func(o telemetry.Observation) {
		if firstErr == nil {
			firstErr = w.Write(o)
		}
	}, &firstErr
}

// Close flushes the stream, writes the final header (record count,
// Complete flag), fsyncs, and renames the temp file to the target path.
// On error the temp file is left in place — whatever prefix reached
// disk is salvageable and a resumed run can rebuild from it — while the
// target path is never touched until the file is complete and durable.
// Call Abort to discard the temp file instead.
func (w *Writer) Close() error {
	if err := w.finalize(); err != nil {
		w.f.Close()
		return err
	}
	return nil
}

func (w *Writer) finalize() error {
	if err := w.tw.Flush(); err != nil {
		return err
	}
	w.meta.Records = w.tw.Count()
	w.meta.Complete = true
	if err := w.writeHeader(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("dataset: sync: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("dataset: close: %w", err)
	}
	if err := w.fsys.Rename(w.tmpPath, w.path); err != nil {
		return fmt.Errorf("dataset: rename: %w", err)
	}
	return nil
}

// Abort discards the in-progress dataset, removing the temp file and
// leaving the target path untouched.
func (w *Writer) Abort() error {
	w.f.Close()
	if err := w.fsys.Remove(w.tmpPath); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("dataset: abort: %w", err)
	}
	return nil
}

// Reader reads a dataset file (v1 or v2; the stream version is
// auto-detected from the telemetry signature).
type Reader struct {
	f    *os.File
	tr   *telemetry.Reader
	meta Meta
}

// Open opens a dataset file and parses its header.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open: %w", err)
	}
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(trimHeader(hdr), &meta); err != nil {
		f.Close()
		return nil, fmt.Errorf("dataset: parse header: %w", err)
	}
	if err := verifyHeaderCRC(hdr, meta); err != nil {
		f.Close()
		return nil, err
	}
	return &Reader{f: f, tr: telemetry.NewReader(bufio.NewReaderSize(f, 1<<16)), meta: meta}, nil
}

// trimHeader strips padding from the fixed-size header line.
func trimHeader(b []byte) []byte {
	end := len(b)
	for end > 0 && (b[end-1] == ' ' || b[end-1] == '\n') {
		end--
	}
	return b[:end]
}

// Meta returns the dataset metadata.
func (r *Reader) Meta() Meta { return r.meta }

// ForEach streams every record through fn.
func (r *Reader) ForEach(fn telemetry.EmitFunc) error {
	return r.tr.ForEach(fn)
}

// Read returns the next record or io.EOF.
func (r *Reader) Read() (telemetry.Observation, error) { return r.tr.Read() }

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// ScanReport is the integrity verdict for a dataset file: what the
// header claims, and what the stream actually holds.
type ScanReport struct {
	// HeaderOK reports that the JSON header parsed; Meta is only
	// meaningful when it did.
	HeaderOK bool
	// HeaderErr is set when the header parsed but failed its
	// self-excluding CRC check: the metadata cannot be trusted even
	// though it is syntactically valid.
	HeaderErr string
	Meta      Meta
	// Raw marks a headerless file that starts directly with a telemetry
	// stream signature (userv6gen -format binary output).
	Raw bool
	// Stream summarizes the salvageable content of the record stream.
	Stream telemetry.SalvageReport
	// StreamErr is set when the record stream is unrecognizable (no
	// signature and no intact block).
	StreamErr string
}

// Intact reports whether the file verifies end to end: parseable or
// absent-by-design header, a stream with no corruption or slack, and —
// when the header carries a count — a matching record count and a
// Complete finalization flag for v2 files.
func (r ScanReport) Intact() bool {
	if r.StreamErr != "" || !r.Stream.Intact() {
		return false
	}
	if r.Raw {
		return true
	}
	if !r.HeaderOK || r.HeaderErr != "" || r.Stream.Records != r.Meta.Records {
		return false
	}
	// v1 files predate the Complete flag; only v2 promises it.
	return r.Meta.Format < FormatV2 || r.Meta.Complete
}

// Scan verifies path without extracting records: it parses the header,
// walks the stream checking every block checksum, and reports what a
// Salvage pass would recover. It never fails on corrupt content — only
// on I/O errors — so it is safe to point at torn temp files.
func Scan(path string) (ScanReport, error) {
	return salvage(path, nil)
}

// Salvage recovers every intact record from path, emitting them in
// stream order, and returns the same report as Scan. Use it to rescue
// the readable blocks of a corrupted or interrupted dataset.
func Salvage(path string, emit telemetry.EmitFunc) (ScanReport, error) {
	return salvage(path, emit)
}

func salvage(path string, emit telemetry.EmitFunc) (ScanReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return ScanReport{}, fmt.Errorf("dataset: open: %w", err)
	}
	defer f.Close()

	var rep ScanReport
	hdr := make([]byte, headerSize)
	n, err := io.ReadFull(f, hdr)
	if err != nil && err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) {
		return ScanReport{}, fmt.Errorf("dataset: read header: %w", err)
	}
	hdr = hdr[:n]

	var stream io.Reader = f
	if n >= 3 && hdr[0] == 'u' && hdr[1] == 'v' && hdr[2] == '6' {
		// Headerless raw telemetry stream: scan from byte zero.
		rep.Raw = true
		stream = io.MultiReader(bytes.NewReader(hdr), f)
	} else {
		if n == headerSize {
			if jerr := json.Unmarshal(trimHeader(hdr), &rep.Meta); jerr == nil {
				rep.HeaderOK = true
				if cerr := verifyHeaderCRC(hdr, rep.Meta); cerr != nil {
					rep.HeaderErr = cerr.Error()
				}
			}
		}
	}
	sr, serr := telemetry.Salvage(stream, emit)
	rep.Stream = sr
	if serr != nil {
		rep.StreamErr = serr.Error()
	}
	return rep, nil
}
