// Merge folds the parts of a sharded export (or any list of dataset
// files) into one canonical dataset. Records are re-framed through a
// fresh writer in part order, so merging the parts of a sharded run
// reproduces, byte for byte, the dataset a single-writer run at the
// same configuration would have written. Each input goes through the
// salvage path: corrupt blocks cost only themselves, and the report
// says exactly how much of each part survived — the tolerant-merge
// shape the hitlist pipelines apply to partially damaged corpora.
package dataset

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"userv6/internal/telemetry"
)

// Hooks tests use to inject transient I/O faults and observe backoff
// without sleeping.
var (
	readFile   = os.ReadFile
	retrySleep = time.Sleep
)

// MergeOptions tunes a merge run.
type MergeOptions struct {
	// MaxRetries is how many times a transient I/O error reading one
	// part is retried before the merge fails (default 3). Retries use
	// exponential backoff starting at RetryBase (default 50ms) and
	// capped at RetryMax (default 2s). Decoding is retry-safe: a part
	// is read fully into memory before any record is emitted, so a
	// retried read can never duplicate records.
	MaxRetries int
	RetryBase  time.Duration
	RetryMax   time.Duration
	// Strict makes any corruption or checksum mismatch fatal instead of
	// skipped-and-reported.
	Strict bool
	// Expected, when non-nil, supplies per-part expectations (block
	// counts, whole-file checksums) from a manifest, keyed by part
	// name; coverage is then reported against what the producer wrote
	// rather than against what happens to be readable.
	Expected map[string]PartInfo
}

func (o *MergeOptions) withDefaults() MergeOptions {
	out := MergeOptions{MaxRetries: 3, RetryBase: 50 * time.Millisecond, RetryMax: 2 * time.Second}
	if o == nil {
		return out
	}
	out.Strict = o.Strict
	out.Expected = o.Expected
	if o.MaxRetries > 0 {
		out.MaxRetries = o.MaxRetries
	}
	if o.RetryBase > 0 {
		out.RetryBase = o.RetryBase
	}
	if o.RetryMax > 0 {
		out.RetryMax = o.RetryMax
	}
	return out
}

// PartCoverage reports how much of one input part the merge recovered.
type PartCoverage struct {
	Name string
	// BlocksRecovered of BlocksExpected frames were intact.
	// BlocksExpected comes from the manifest when available, otherwise
	// from what the scan itself saw (recovered + corrupt).
	BlocksRecovered int
	BlocksExpected  int
	CorruptBlocks   int
	Records         uint64
	SkippedBytes    int64
	// Retries counts transient read errors that were retried
	// successfully.
	Retries int
	// ChecksumOK reports the whole-file CRC32C against the manifest;
	// true when no expectation was available.
	ChecksumOK bool
}

// Coverage is the recovered fraction of expected blocks in [0, 1]
// (1 for an empty part).
func (c PartCoverage) Coverage() float64 {
	if c.BlocksExpected == 0 {
		return 1
	}
	return float64(c.BlocksRecovered) / float64(c.BlocksExpected)
}

// Intact reports whether the part contributed everything it was
// expected to hold.
func (c PartCoverage) Intact() bool {
	return c.ChecksumOK && c.CorruptBlocks == 0 && c.SkippedBytes == 0 &&
		c.BlocksRecovered == c.BlocksExpected
}

// MergeReport summarizes a merge: per-part coverage in input order and
// the merged totals.
type MergeReport struct {
	Parts   []PartCoverage
	Records uint64
	// Complete is true when every part was fully recovered — the merged
	// output holds everything the parts ever held.
	Complete bool
}

// Merge folds the given part files, in order, into one dataset at out
// carrying meta. Each part is read with capped-exponential-backoff
// retries on transient I/O errors, then salvaged: intact blocks are
// re-emitted through the output writer, corrupt blocks are skipped and
// reported. The output is finalized (complete, checksummed header)
// even when parts were damaged — the report says what was lost.
func Merge(out string, meta Meta, parts []string, opts *MergeOptions) (MergeReport, error) {
	opt := opts.withDefaults()
	w, err := Create(out, meta)
	if err != nil {
		return MergeReport{}, err
	}
	rep, err := mergeInto(w, parts, opt)
	if err != nil {
		w.Abort()
		return rep, err
	}
	if err := w.Close(); err != nil {
		return rep, err
	}
	rep.Records = w.Records()
	return rep, nil
}

// MergeManifest merges the parts listed in a manifest (resolved
// relative to the manifest's directory) into out, using the manifest's
// metadata and per-part expectations.
func MergeManifest(out, manifestPath string, opts *MergeOptions) (*Manifest, MergeReport, error) {
	man, err := ReadManifest(manifestPath)
	if err != nil {
		return nil, MergeReport{}, err
	}
	dir := filepath.Dir(manifestPath)
	paths := make([]string, len(man.Parts))
	expected := make(map[string]PartInfo, len(man.Parts))
	for i, p := range man.Parts {
		paths[i] = filepath.Join(dir, p.Name)
		expected[p.Name] = p
	}
	opt := opts.withDefaults()
	opt.Expected = expected
	rep, err := Merge(out, man.Meta, paths, &opt)
	return man, rep, err
}

func mergeInto(w *Writer, parts []string, opt MergeOptions) (MergeReport, error) {
	var rep MergeReport
	rep.Complete = true
	emit, errp := w.Emit()
	for _, path := range parts {
		cov, err := mergePart(path, emit, opt)
		if err != nil {
			return rep, fmt.Errorf("dataset: merge %s: %w", path, err)
		}
		if *errp != nil {
			return rep, *errp
		}
		rep.Parts = append(rep.Parts, cov)
		if !cov.Intact() {
			rep.Complete = false
			if opt.Strict {
				return rep, fmt.Errorf("dataset: merge %s: part damaged (%d/%d blocks intact) in strict mode",
					path, cov.BlocksRecovered, cov.BlocksExpected)
			}
		}
	}
	return rep, nil
}

func mergePart(path string, emit telemetry.EmitFunc, opt MergeOptions) (PartCoverage, error) {
	cov := PartCoverage{Name: filepath.Base(path), ChecksumOK: true}
	data, retries, err := readFileRetry(path, opt)
	cov.Retries = retries
	if err != nil {
		return cov, err
	}

	if want, ok := opt.Expected[cov.Name]; ok {
		cov.BlocksExpected = int(want.Blocks)
		got := fmt.Sprintf("%08x", crc32.Checksum(data, headerCastagnoli))
		cov.ChecksumOK = got == want.CRC32C
	}

	// Strip the dataset header when present; a raw stream (signature at
	// byte zero) is salvaged whole.
	stream := data
	if !(len(data) >= 3 && bytes.HasPrefix(data, []byte("uv6"))) {
		if len(data) < headerSize {
			cov.SkippedBytes = int64(len(data))
			return cov, nil
		}
		stream = data[headerSize:]
	}

	sr, serr := telemetry.SalvageBytes(stream, emit)
	cov.BlocksRecovered = sr.Blocks
	cov.CorruptBlocks = sr.CorruptBlocks
	cov.Records = sr.Records
	cov.SkippedBytes = sr.SkippedBytes
	if cov.BlocksExpected == 0 {
		cov.BlocksExpected = sr.Blocks + sr.CorruptBlocks
	}
	if serr != nil {
		// An unrecognizable stream recovers nothing but does not abort
		// the merge: the other parts still count. Strict mode surfaces
		// it through the damaged-part check.
		cov.ChecksumOK = false
	}
	return cov, nil
}

// readFileRetry reads path fully, retrying transient I/O errors with
// capped exponential backoff. os.ErrNotExist is terminal on the first
// attempt: a missing part will not appear by waiting.
func readFileRetry(path string, opt MergeOptions) (data []byte, retries int, err error) {
	backoff := opt.RetryBase
	for attempt := 0; ; attempt++ {
		data, err = readFile(path)
		if err == nil {
			return data, attempt, nil
		}
		if os.IsNotExist(err) && attempt == 0 {
			return nil, attempt, err
		}
		if attempt >= opt.MaxRetries {
			return nil, attempt, fmt.Errorf("after %d retries: %w", attempt, err)
		}
		retrySleep(backoff)
		backoff *= 2
		if backoff > opt.RetryMax {
			backoff = opt.RetryMax
		}
	}
}
