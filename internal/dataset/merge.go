// Merge folds the parts of a sharded export (or any list of dataset
// files) into one canonical dataset. Records are re-framed through a
// fresh writer in part order, so merging the parts of a sharded run
// reproduces, byte for byte, the dataset a single-writer run at the
// same configuration would have written. Each input goes through the
// salvage path: corrupt blocks cost only themselves, and the report
// says exactly how much of each part survived — the tolerant-merge
// shape the hitlist pipelines apply to partially damaged corpora.
//
// Two fast paths keep the pass from being the pipeline's slowest: the
// record decode/re-encode of each part fans out across a worker pool
// (the same block-parallelism as OpenParallel, threaded through the
// salvage scan), and a stored block whose frame is provably what the
// output writer would emit at that position — boundary-aligned, full,
// same codec — is copied through without being decoded at all. For a
// compressed sharded export merged at the same codec, that passthrough
// covers nearly every block, so the merge never pays the LZ re-encode.
package dataset

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"userv6/internal/faultio"
	"userv6/internal/retry"
	"userv6/internal/telemetry"
)

// MergeOptions tunes a merge run.
type MergeOptions struct {
	// Retry is the backoff policy applied to transient I/O errors while
	// reading parts (zero value = retry defaults: 3 retries, 50ms base,
	// 2s cap, jittered). Decoding is retry-safe: a part is read fully
	// into memory before any record is emitted, so a retried read can
	// never duplicate records.
	Retry retry.Policy
	// FS is the filesystem parts are read through (nil = the real OS).
	// The fault-injection tests point it at a faultio.Injector.
	FS faultio.FS
	// Strict makes any corruption or checksum mismatch fatal instead of
	// skipped-and-reported.
	Strict bool
	// Tolerant admits parts whose observed frame codecs disagree with
	// the codec their manifest entry (or their own header) declares.
	// Outside tolerant mode such a part fails the merge with
	// ErrCodecMismatch: a mixed or mislabeled part set is a labeling
	// problem to surface, not to silently absorb.
	Tolerant bool
	// Workers is the per-part decode pool size; <= 0 means GOMAXPROCS.
	// The marker-resync scan stays sequential (the resync position
	// depends on each frame's checksum verdict), but record decode and
	// re-emission fan out across the pool.
	Workers int
	// Expected, when non-nil, supplies per-part expectations (block
	// counts, whole-file checksums, codec) from a manifest, keyed by
	// part name; coverage is then reported against what the producer
	// wrote rather than against what happens to be readable.
	Expected map[string]PartInfo
}

func (o *MergeOptions) withDefaults() MergeOptions {
	out := MergeOptions{FS: faultio.OS}
	if o == nil {
		return out
	}
	out = *o
	if out.FS == nil {
		out.FS = faultio.OS
	}
	return out
}

// PartCoverage reports how much of one input part the merge recovered.
type PartCoverage struct {
	Name string
	// BlocksRecovered of BlocksExpected frames were intact.
	// BlocksExpected comes from the manifest when available, otherwise
	// from what the scan itself saw (recovered + corrupt).
	BlocksRecovered int
	BlocksExpected  int
	CorruptBlocks   int
	Records         uint64
	SkippedBytes    int64
	// Retries counts transient read errors that were retried
	// successfully.
	Retries int
	// ChecksumOK reports the whole-file CRC32C against the manifest;
	// true when no expectation was available.
	ChecksumOK bool
	// CodecOK reports that every intact frame's codec was one the part
	// declared (the declared codec, or identity — an encoder that did
	// not shrink a block legitimately falls back). True when nothing
	// declared a codec to check against. A tolerant merge records a
	// violation here instead of failing.
	CodecOK bool
}

// Coverage is the recovered fraction of expected blocks in [0, 1]
// (1 for an empty part).
func (c PartCoverage) Coverage() float64 {
	if c.BlocksExpected == 0 {
		return 1
	}
	return float64(c.BlocksRecovered) / float64(c.BlocksExpected)
}

// Intact reports whether the part contributed everything it was
// expected to hold.
func (c PartCoverage) Intact() bool {
	return c.ChecksumOK && c.CorruptBlocks == 0 && c.SkippedBytes == 0 &&
		c.BlocksRecovered == c.BlocksExpected
}

// MergeReport summarizes a merge: per-part coverage in input order and
// the merged totals.
type MergeReport struct {
	Parts   []PartCoverage
	Records uint64
	// Complete is true when every part was fully recovered — the merged
	// output holds everything the parts ever held.
	Complete bool
}

// Merge folds the given part files, in order, into one dataset at out
// carrying meta. Each part is read with capped-exponential-backoff
// retries on transient I/O errors (the shared retry policy), then
// salvaged: intact blocks are re-emitted through the output writer,
// corrupt blocks are skipped and reported. The output is finalized
// (complete, checksummed header) even when parts were damaged — the
// report says what was lost.
func Merge(out string, meta Meta, parts []string, opts *MergeOptions) (MergeReport, error) {
	return MergeCtx(context.Background(), out, meta, parts, opts)
}

// MergeCtx is Merge under a context: cancellation aborts between parts
// and interrupts any in-flight backoff sleep.
func MergeCtx(ctx context.Context, out string, meta Meta, parts []string, opts *MergeOptions) (MergeReport, error) {
	opt := opts.withDefaults()
	w, err := CreateFS(opt.FS, out, meta)
	if err != nil {
		return MergeReport{}, err
	}
	rep, err := mergeInto(ctx, w, parts, opt)
	if err != nil {
		w.Abort()
		return rep, err
	}
	if err := w.Close(); err != nil {
		return rep, err
	}
	rep.Records = w.Records()
	return rep, nil
}

// MergeManifest merges the parts listed in a manifest (resolved
// relative to the manifest's directory) into out, using the manifest's
// metadata and per-part expectations.
func MergeManifest(out, manifestPath string, opts *MergeOptions) (*Manifest, MergeReport, error) {
	return MergeManifestCtx(context.Background(), out, manifestPath, opts)
}

// MergeManifestCtx is MergeManifest under a context.
func MergeManifestCtx(ctx context.Context, out, manifestPath string, opts *MergeOptions) (*Manifest, MergeReport, error) {
	opt := opts.withDefaults()
	man, err := ReadManifestFS(opt.FS, manifestPath)
	if err != nil {
		return nil, MergeReport{}, err
	}
	dir := filepath.Dir(manifestPath)
	paths := make([]string, len(man.Parts))
	expected := make(map[string]PartInfo, len(man.Parts))
	for i, p := range man.Parts {
		paths[i] = filepath.Join(dir, p.Name)
		expected[p.Name] = p
	}
	opt.Expected = expected
	rep, err := MergeCtx(ctx, out, man.Meta, paths, &opt)
	return man, rep, err
}

// ErrCodecMismatch reports a part whose intact frames carry a codec
// its manifest entry (or its own header) did not declare. Without
// -tolerant a merge refuses such a part set outright: decoding would
// succeed block by block, but the labeling is wrong, and a mislabeled
// corpus fails later in far more confusing ways.
var ErrCodecMismatch = errors.New("dataset: part frame codec disagrees with declared codec")

func mergeInto(ctx context.Context, w *Writer, parts []string, opt MergeOptions) (MergeReport, error) {
	var rep MergeReport
	rep.Complete = true
	for _, path := range parts {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		cov, err := mergePart(ctx, w, path, opt)
		if err != nil {
			return rep, fmt.Errorf("dataset: merge %s: %w", path, err)
		}
		rep.Parts = append(rep.Parts, cov)
		if !cov.Intact() {
			rep.Complete = false
			if opt.Strict {
				return rep, fmt.Errorf("dataset: merge %s: part damaged (%d/%d blocks intact) in strict mode",
					path, cov.BlocksRecovered, cov.BlocksExpected)
			}
		}
	}
	return rep, nil
}

func mergePart(ctx context.Context, w *Writer, path string, opt MergeOptions) (PartCoverage, error) {
	cov := PartCoverage{Name: filepath.Base(path), ChecksumOK: true, CodecOK: true}
	data, retries, err := readFileRetry(ctx, path, opt)
	cov.Retries = retries
	if err != nil {
		return cov, err
	}

	// The codec the part is supposed to be stored under: the manifest
	// entry when there is one, otherwise the part's own header. A raw
	// stream (or an unparseable header) declares nothing, so nothing is
	// checked against it.
	var declared string
	var haveDeclared bool
	want, fromManifest := opt.Expected[cov.Name]
	if fromManifest {
		cov.BlocksExpected = int(want.Blocks)
		got := fmt.Sprintf("%08x", crc32.Checksum(data, headerCastagnoli))
		cov.ChecksumOK = got == want.CRC32C
		declared, haveDeclared = want.Codec, true
	}

	// Strip the dataset header when present; a raw stream (signature at
	// byte zero) is salvaged whole.
	stream := data
	if !(len(data) >= 3 && bytes.HasPrefix(data, []byte("uv6"))) {
		if len(data) < headerSize {
			cov.SkippedBytes = int64(len(data))
			return cov, nil
		}
		if !haveDeclared {
			var pm Meta
			if json.Unmarshal(trimHeader(data[:headerSize]), &pm) == nil {
				declared, haveDeclared = pm.Codec, true
			}
		}
		stream = data[headerSize:]
	}

	// Passthrough of stored frames is only provably byte-identical when
	// the part's producer ran the same per-block selection this writer
	// runs. A single-codec chain needs only the frame's codec to match
	// (the codec's own determinism covers it); a multi-codec chain picks
	// by comparing every member's output size, so the part must declare
	// the same policy — otherwise its blocks are decoded and re-encoded,
	// which costs CPU but never bytes.
	passOK := true
	if chain, ok := telemetry.CodecChainByName(w.meta.Codec); ok && len(chain) > 1 {
		passOK = haveDeclared &&
			telemetry.CanonicalPolicy(declared) == telemetry.CanonicalPolicy(w.meta.Codec)
	}

	sr, serr, werr := mergeStream(w, stream, opt.Workers, passOK)
	if werr != nil {
		return cov, werr
	}
	cov.BlocksRecovered = sr.Blocks
	cov.CorruptBlocks = sr.CorruptBlocks
	cov.Records = sr.Records
	cov.SkippedBytes = sr.SkippedBytes
	if cov.BlocksExpected == 0 {
		cov.BlocksExpected = sr.Blocks + sr.CorruptBlocks
	}
	if serr != nil {
		// An unrecognizable stream recovers nothing but does not abort
		// the merge: the other parts still count. Strict mode surfaces
		// it through the damaged-part check.
		cov.ChecksumOK = false
	}
	if haveDeclared {
		if err := CheckPartCodecs(declared, sr.Codecs); err != nil {
			cov.CodecOK = false
			if !opt.Tolerant {
				return cov, err
			}
		}
	}
	return cov, nil
}

// CheckPartCodecs verifies the codecs observed across a part's intact
// frames against the compression policy the part declares. The allowed
// set is the policy's codec chain plus identity: a writer under any
// policy falls back to identity per block when encoding does not pay,
// so identity frames inside an "lz" part are legitimate, and an "auto"
// part may mix delta, lz, and identity — but an lz frame inside an
// undeclared part is not. Merge runs it per part; direct manifest
// analysis reuses the same check on each part's read coverage.
func CheckPartCodecs(declared string, observed telemetry.CodecSet) error {
	chain, ok := telemetry.CodecChainByName(declared)
	if !ok {
		return fmt.Errorf("%w: part declares codec %q, unknown to this build", ErrCodecMismatch, declared)
	}
	allowed := telemetry.CodecSet(0)
	allowed.Add(telemetry.CodecIdentity)
	for _, c := range chain {
		allowed.Add(c.ID())
	}
	var bad []string
	for id := 0; id < 32; id++ {
		cid := telemetry.CodecID(id)
		if observed.Has(cid) && !allowed.Has(cid) {
			bad = append(bad, cid.String())
		}
	}
	if len(bad) > 0 {
		name := telemetry.CanonicalPolicy(declared)
		if name == "" {
			name = "identity"
		}
		return fmt.Errorf("%w: declared %q, found frames under %s", ErrCodecMismatch,
			name, strings.Join(bad, ", "))
	}
	return nil
}

// mergeStream salvages one part's stream into the output writer through
// a worker pool. The scanner (the sequential marker-resync walk) also
// decides, deterministically, which blocks qualify for passthrough: a
// block lands in the output byte-identically to re-writing its records
// iff the caller established policy compatibility (passOK), the writer
// has no partial block pending, the block is exactly full, and its
// stored codec is one the writer's chain could have chosen. Everything
// else is decoded by the pool and re-emitted record by record. scanErr
// reports an unrecognizable stream (non-fatal to the merge); writeErr
// reports an output-side failure (fatal).
func mergeStream(w *Writer, stream []byte, workers int, passOK bool) (rep telemetry.SalvageReport, scanErr, writeErr error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type mergeRes struct {
		idx  int
		blk  telemetry.RawBlock
		recs []telemetry.Observation
		pass bool
	}
	type mergeJob struct {
		idx     int
		blk     telemetry.RawBlock
		decoded []byte
		pass    bool
	}
	jobs := make(chan mergeJob, workers)
	results := make(chan mergeRes, workers*2)
	var bufs pools

	// Scanner: walks the salvage resync sequentially, planning
	// passthrough by simulating the writer's pending-record count. The
	// plan mirrors WriteEncodedBlock's own precondition check, so by
	// the time an aligned block reaches delivery (in order), the writer
	// is exactly where the scanner predicted.
	pending := w.tw.Pending()
	perBlock := w.tw.RecordsPerBlock()
	go func() {
		defer close(jobs)
		idx := 0
		rep, scanErr = telemetry.SalvageRawBlocks(stream, func(b telemetry.RawBlock, decoded []byte) {
			pass := passOK && pending == 0 && b.Checksummed() &&
				b.Count == perBlock && w.tw.CodecCompatible(b.Codec)
			if !pass {
				pending = (pending + b.Count) % perBlock
			}
			select {
			case jobs <- mergeJob{idx: idx, blk: b, decoded: decoded, pass: pass}:
				idx++
			case <-ctx.Done():
			}
		})
	}()

	// Workers: record decode for blocks that must be re-framed;
	// passthrough blocks skip the pool's CPU entirely (their stored
	// bytes — checksum included — are already what the output needs).
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				res := mergeRes{idx: j.idx, blk: j.blk, pass: j.pass}
				if !j.pass {
					res.recs = telemetry.AppendRecords(bufs.getRecs(), j.decoded)
				}
				select {
				case results <- res:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Delivery: strictly in stream order on this goroutine, so the
	// output bytes match a sequential merge exactly.
	var (
		next int
		held = make(map[int]mergeRes)
	)
	fail := func(err error) {
		if writeErr == nil {
			writeErr = err
			cancel()
		}
	}
	for r := range results {
		held[r.idx] = r
		for {
			h, ok := held[next]
			if !ok {
				break
			}
			delete(held, next)
			next++
			if writeErr != nil {
				bufs.putRecs(h.recs)
				continue
			}
			if h.pass {
				ok, err := w.writeEncodedBlock(h.blk)
				if err != nil {
					fail(err)
					continue
				}
				if ok {
					continue
				}
				// The writer declined (cannot happen while the scanner's
				// simulation holds, but stay safe): fall back to decoding
				// the stored block and re-emitting its records.
				recs, _, derr := h.blk.AppendDecoded(bufs.getRecs(), nil)
				if derr != nil {
					fail(derr)
					continue
				}
				h.recs = recs
			}
			for _, o := range h.recs {
				if err := w.Write(o); err != nil {
					fail(err)
					break
				}
			}
			bufs.putRecs(h.recs)
		}
	}
	return rep, scanErr, writeErr
}

// readFileRetry reads path fully through the shared retry policy.
// os.ErrNotExist is terminal on the first attempt: a missing part will
// not appear by waiting.
func readFileRetry(ctx context.Context, path string, opt MergeOptions) (data []byte, retries int, err error) {
	retries, err = opt.Retry.Do(ctx, "merge:"+filepath.Base(path), func() error {
		var rerr error
		data, rerr = opt.FS.ReadFile(path)
		if os.IsNotExist(rerr) {
			return retry.Permanent(rerr)
		}
		return rerr
	})
	if err != nil {
		return nil, retries, err
	}
	return data, retries, nil
}
