package dataset

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"userv6/internal/telemetry"
)

// readSequential drains a dataset with the plain Reader.
func readSequential(t *testing.T, path string) []telemetry.Observation {
	t.Helper()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out []telemetry.Observation
	if err := r.ForEach(func(o telemetry.Observation) { out = append(out, o) }); err != nil {
		t.Fatal(err)
	}
	return out
}

// readParallel drains a dataset with a ParallelReader in ordered mode.
func readParallel(t *testing.T, path string, opts ParallelOptions) []telemetry.Observation {
	t.Helper()
	pr, err := OpenParallel(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	var out []telemetry.Observation
	if err := pr.ForEach(func(o telemetry.Observation) { out = append(out, o) }); err != nil {
		t.Fatal(err)
	}
	return out
}

func sameRecords(t *testing.T, got, want []telemetry.Observation) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func sortObs(obs []telemetry.Observation) {
	sort.Slice(obs, func(i, j int) bool {
		a, b := obs[i], obs[j]
		if a.UserID != b.UserID {
			return a.UserID < b.UserID
		}
		return a.Requests < b.Requests
	})
}

func TestParallelReaderOrderedMatchesSequential(t *testing.T) {
	in := sample(5000) // ~5 default-size blocks
	path := writeDataset(t, in)
	want := readSequential(t, path)
	for _, workers := range []int{1, 4} {
		got := readParallel(t, path, ParallelOptions{Workers: workers})
		sameRecords(t, got, want)
	}
}

func TestParallelReaderMeta(t *testing.T) {
	path := writeDataset(t, sample(100))
	pr, err := OpenParallel(path, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	if pr.Raw() {
		t.Fatal("headered dataset reported as raw")
	}
	if m := pr.Meta(); m.Seed != 3 || m.Records != 100 || !m.Complete {
		t.Fatalf("meta = %+v", m)
	}
}

func TestParallelReaderBatchIndexesOrdered(t *testing.T) {
	path := writeDataset(t, sample(4500))
	pr, err := OpenParallel(path, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	next := 0
	if err := pr.ForEachBatch(context.Background(), func(b Batch) error {
		if b.Index != next {
			t.Fatalf("batch index %d, want %d", b.Index, next)
		}
		next++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if next != 5 {
		t.Fatalf("saw %d batches, want 5", next)
	}
}

func TestParallelReaderUnorderedMultisetEqual(t *testing.T) {
	in := sample(5000)
	path := writeDataset(t, in)
	want := readSequential(t, path)

	pr, err := OpenParallel(path, ParallelOptions{Workers: 4, Unordered: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	var (
		mu  sync.Mutex
		got []telemetry.Observation
	)
	if err := pr.ForEachBatch(context.Background(), func(b Batch) error {
		mu.Lock()
		got = append(got, b.Recs...) // Observation is a value; append copies
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sortObs(got)
	sortObs(want)
	sameRecords(t, got, want)
}

func TestParallelReaderRawStream(t *testing.T) {
	// A headerless file produced by the raw telemetry writer.
	in := sample(2500)
	path := filepath.Join(t.TempDir(), "raw.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := telemetry.NewWriterV2(f)
	for _, o := range in {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	pr, err := OpenParallel(path, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	if !pr.Raw() {
		t.Fatal("raw stream not detected")
	}
	var got []telemetry.Observation
	if err := pr.ForEach(func(o telemetry.Observation) { got = append(got, o) }); err != nil {
		t.Fatal(err)
	}
	sameRecords(t, got, in)
}

// A corrupt block in strict mode fails the read with a typed error, but
// only after every preceding block has been delivered in order — the
// exact behavior of the sequential reader.
func TestParallelReaderStrictCorruptBlock(t *testing.T) {
	in := sample(5000)
	path := writeDataset(t, in)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte deep in the stream: past the dataset header, the
	// stream signature, and two default-size blocks.
	off := headerSize + 4 + 2*(16+1024*40) + 16 + 200
	raw[off] ^= 0x01
	bad := filepath.Join(t.TempDir(), "bad.uv6")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Sequential reference: records recovered before the failure.
	var want []telemetry.Observation
	r, err := Open(bad)
	if err != nil {
		t.Fatal(err)
	}
	serr := r.ForEach(func(o telemetry.Observation) { want = append(want, o) })
	r.Close()
	if !errors.Is(serr, telemetry.ErrCorrupt) {
		t.Fatalf("sequential reader: want ErrCorrupt, got %v", serr)
	}

	pr, err := OpenParallel(bad, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	var got []telemetry.Observation
	perr := pr.ForEach(func(o telemetry.Observation) { got = append(got, o) })
	if !errors.Is(perr, telemetry.ErrCorrupt) {
		t.Fatalf("parallel reader: want ErrCorrupt, got %v", perr)
	}
	var ce *telemetry.CorruptError
	if !errors.As(perr, &ce) || ce.Block != 2 {
		t.Fatalf("want *CorruptError for block 2, got %v", perr)
	}
	sameRecords(t, got, want)
}

// Tolerant parallel reads must recover exactly what Salvage recovers
// and report identical coverage.
func TestParallelReaderTolerantMatchesSalvage(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"intact", func(b []byte) []byte { return b }},
		{"corrupt-middle", func(b []byte) []byte {
			b[headerSize+4+(16+1024*40)+16+99] ^= 0x80
			return b
		}},
		{"torn-tail", func(b []byte) []byte { return b[:len(b)-41] }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := writeDataset(t, sample(5000))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			bad := filepath.Join(t.TempDir(), "bad.uv6")
			if err := os.WriteFile(bad, tc.mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			var want []telemetry.Observation
			wantRep, err := Salvage(bad, func(o telemetry.Observation) { want = append(want, o) })
			if err != nil {
				t.Fatal(err)
			}

			got := readParallel(t, bad, ParallelOptions{Workers: 4, Tolerant: true})
			sameRecords(t, got, want)

			// Coverage accounting must match the sequential salvage walk.
			pr, err := OpenParallel(bad, ParallelOptions{Workers: 4, Tolerant: true})
			if err != nil {
				t.Fatal(err)
			}
			defer pr.Close()
			if err := pr.ForEachBatch(context.Background(), func(Batch) error { return nil }); err != nil {
				t.Fatal(err)
			}
			rep, ok := pr.Coverage()
			if !ok {
				t.Fatal("no coverage after tolerant read")
			}
			if !rep.Equal(wantRep.Stream) {
				t.Fatalf("coverage differs:\nparallel: %+v\n salvage: %+v", rep, wantRep.Stream)
			}
		})
	}
}

func TestParallelReaderTolerantUnordered(t *testing.T) {
	path := writeDataset(t, sample(5000))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+4+16+50] ^= 0x04 // corrupt block 0
	bad := filepath.Join(t.TempDir(), "bad.uv6")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var want []telemetry.Observation
	wantRep, err := Salvage(bad, func(o telemetry.Observation) { want = append(want, o) })
	if err != nil {
		t.Fatal(err)
	}

	pr, err := OpenParallel(bad, ParallelOptions{Workers: 4, Unordered: true, Tolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	var (
		mu  sync.Mutex
		got []telemetry.Observation
	)
	if err := pr.ForEachBatch(context.Background(), func(b Batch) error {
		mu.Lock()
		got = append(got, b.Recs...)
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rep, ok := pr.Coverage(); !ok || !rep.Equal(wantRep.Stream) {
		t.Fatalf("coverage %+v (ok=%v), want %+v", rep, ok, wantRep.Stream)
	}
	sortObs(got)
	sortObs(want)
	sameRecords(t, got, want)
}

func TestParallelReaderCallbackError(t *testing.T) {
	path := writeDataset(t, sample(5000))
	boom := errors.New("boom")
	for _, unordered := range []bool{false, true} {
		pr, err := OpenParallel(path, ParallelOptions{Workers: 4, Unordered: unordered})
		if err != nil {
			t.Fatal(err)
		}
		calls := 0
		err = pr.ForEachBatch(context.Background(), func(Batch) error {
			calls++
			if calls == 2 {
				return boom
			}
			return nil
		})
		pr.Close()
		if !errors.Is(err, boom) {
			t.Fatalf("unordered=%v: want callback error, got %v", unordered, err)
		}
	}
}

func TestParallelReaderContextCancel(t *testing.T) {
	path := writeDataset(t, sample(5000))
	pr, err := OpenParallel(path, ParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	ctx, cancel := context.WithCancel(context.Background())
	err = pr.ForEachBatch(ctx, func(b Batch) error {
		cancel() // fire mid-read
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestParallelReaderSingleUse(t *testing.T) {
	path := writeDataset(t, sample(100))
	pr, err := OpenParallel(path, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	if err := pr.ForEachBatch(context.Background(), func(Batch) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := pr.ForEachBatch(context.Background(), func(Batch) error { return nil }); err == nil {
		t.Fatal("second consume must fail")
	}
	if err := pr.ForEach(func(telemetry.Observation) {}); err == nil {
		t.Fatal("ForEach after consume must fail")
	}
}

func TestParallelReaderUnorderedForEachRejected(t *testing.T) {
	path := writeDataset(t, sample(100))
	pr, err := OpenParallel(path, ParallelOptions{Unordered: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	if err := pr.ForEach(func(telemetry.Observation) {}); err == nil {
		t.Fatal("ForEach must reject unordered mode")
	}
}
