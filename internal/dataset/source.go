package dataset

// Sources: the unit of analysis. The paper's analyses run over one
// logical telemetry corpus, but on disk that corpus may be a single
// merged .uv6 file, a sharded export's manifest.uv6m plus parts, or a
// bare list of part files. A Source names the parts, carries whatever
// expectations the container format declares (per-part user ranges,
// codecs, whole-file checksums from a manifest), and reports its
// capabilities so the planner can pick an execution mode without
// knowing which concrete shape it was handed.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// SourceCaps describes what a Source can promise the planner and the
// executor.
type SourceCaps struct {
	// PartCount is the number of independent part streams. A plain file
	// counts as one part.
	PartCount int
	// SeekableParts reports whether every part is an independently
	// openable file (true for all current sources; a future remote
	// manifest union may stream).
	SeekableParts bool
	// Codec is the declared compression policy when every part agrees
	// on one ("" when unknown or mixed). The executor cross-checks the
	// per-part declarations individually; this is the summary view.
	Codec string
}

// Source is one logical telemetry corpus: an ordered set of part files
// plus whatever the container declares about them. Parts are analyzed
// independently — for sharded exports each part covers a disjoint user
// range, so per-part analyzer replicas fold exactly like generation
// shards.
type Source interface {
	// Kind names the concrete shape: "file", "manifest", or "parts".
	Kind() string
	// Parts returns the part file paths in canonical order.
	Parts() []string
	// Expected returns the container's declared expectations for part i
	// (codec, CRC32C, counts) when the container records them.
	Expected(i int) (PartInfo, bool)
	// Meta returns the dataset metadata the corpus describes, when
	// known (false for headerless raw streams and bare part lists with
	// no parseable header).
	Meta() (Meta, bool)
	// Caps reports the source's capabilities for planning.
	Caps() SourceCaps
}

// probeMeta parses a dataset file's header without consuming the
// stream, mirroring OpenParallel's accept rules: a headered v1/v2 file
// yields its Meta, a headerless raw telemetry stream yields ok=false,
// anything else is an error.
func probeMeta(path string) (Meta, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, false, fmt.Errorf("dataset: open: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, headerSize)
	n, err := io.ReadFull(f, hdr)
	if err != nil && err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) {
		return Meta{}, false, fmt.Errorf("dataset: read header: %w", err)
	}
	if n >= 3 && hdr[0] == 'u' && hdr[1] == 'v' && hdr[2] == '6' {
		return Meta{}, false, nil // raw stream: no header to carry Meta
	}
	if n != headerSize {
		return Meta{}, false, fmt.Errorf("dataset: read header: %w", io.ErrUnexpectedEOF)
	}
	var meta Meta
	if err := json.Unmarshal(trimHeader(hdr), &meta); err != nil {
		return Meta{}, false, fmt.Errorf("dataset: parse header: %w", err)
	}
	if err := verifyHeaderCRC(hdr, meta); err != nil {
		return Meta{}, false, err
	}
	return meta, true, nil
}

// FileSource is a single dataset file (headered or raw stream).
type FileSource struct {
	path    string
	meta    Meta
	hasMeta bool
}

// NewFileSource probes path's header and wraps it as a one-part source.
func NewFileSource(path string) (*FileSource, error) {
	meta, ok, err := probeMeta(path)
	if err != nil {
		return nil, err
	}
	return &FileSource{path: path, meta: meta, hasMeta: ok}, nil
}

func (s *FileSource) Kind() string                  { return "file" }
func (s *FileSource) Parts() []string               { return []string{s.path} }
func (s *FileSource) Expected(int) (PartInfo, bool) { return PartInfo{}, false }
func (s *FileSource) Meta() (Meta, bool)            { return s.meta, s.hasMeta }
func (s *FileSource) Caps() SourceCaps {
	return SourceCaps{PartCount: 1, SeekableParts: true, Codec: s.meta.Codec}
}

// ManifestSource is a sharded export addressed by its manifest: part
// paths resolve relative to the manifest file, and the manifest's
// per-part declarations (codec, CRC32C, counts) become the executor's
// cross-checks — the same expectations a merge verifies part by part.
type ManifestSource struct {
	man   *Manifest
	parts []string
}

// OpenManifestSource reads a manifest and resolves its parts. path may
// be the manifest file itself or a directory containing one under the
// conventional name (manifest.uv6m). Every listed part must exist next
// to the manifest; a missing part fails here, not mid-analysis.
func OpenManifestSource(path string) (*ManifestSource, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		path = filepath.Join(path, ManifestName)
	}
	man, err := ReadManifest(path)
	if err != nil {
		return nil, err
	}
	if !man.Complete {
		return nil, fmt.Errorf("dataset: manifest %s is incomplete (export interrupted?)", path)
	}
	dir := filepath.Dir(path)
	parts := make([]string, len(man.Parts))
	for i, p := range man.Parts {
		parts[i] = filepath.Join(dir, p.Name)
		if _, err := os.Stat(parts[i]); err != nil {
			return nil, fmt.Errorf("dataset: manifest part %q: %w", p.Name, err)
		}
	}
	return &ManifestSource{man: man, parts: parts}, nil
}

func (s *ManifestSource) Kind() string    { return "manifest" }
func (s *ManifestSource) Parts() []string { return s.parts }

func (s *ManifestSource) Expected(i int) (PartInfo, bool) {
	if i < 0 || i >= len(s.man.Parts) {
		return PartInfo{}, false
	}
	return s.man.Parts[i], true
}

// Meta returns the manifest's merged-output metadata with the record
// count filled in from the per-part totals — the same header a merge of
// these parts would write.
func (s *ManifestSource) Meta() (Meta, bool) {
	m := s.man.Meta
	m.Records = s.man.TotalRecords()
	return m, true
}

func (s *ManifestSource) Caps() SourceCaps {
	caps := SourceCaps{PartCount: len(s.parts), SeekableParts: true}
	for i, p := range s.man.Parts {
		if i == 0 {
			caps.Codec = p.Codec
		} else if caps.Codec != p.Codec {
			caps.Codec = "" // mixed declarations: no summary policy
			break
		}
	}
	return caps
}

// Manifest exposes the parsed manifest for tools that report per-part
// detail (verify, merge planning).
func (s *ManifestSource) Manifest() *Manifest { return s.man }

// PartsSource is a bare ordered list of part files with no manifest:
// no declared expectations, metadata taken from the first part that
// carries a parseable header.
type PartsSource struct {
	parts   []string
	meta    Meta
	hasMeta bool
}

// NewPartsSource wraps explicit part paths as a source, in the order
// given. The caller asserts the parts cover disjoint user ranges (as
// sharded exports do); nothing re-derives that from bare files.
func NewPartsSource(paths ...string) (*PartsSource, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("dataset: parts source needs at least one part")
	}
	s := &PartsSource{parts: append([]string(nil), paths...)}
	for _, p := range paths {
		meta, ok, err := probeMeta(p)
		if err != nil {
			return nil, err
		}
		if ok {
			s.meta, s.hasMeta = meta, true
			break
		}
	}
	return s, nil
}

func (s *PartsSource) Kind() string                  { return "parts" }
func (s *PartsSource) Parts() []string               { return s.parts }
func (s *PartsSource) Expected(int) (PartInfo, bool) { return PartInfo{}, false }
func (s *PartsSource) Meta() (Meta, bool)            { return s.meta, s.hasMeta }
func (s *PartsSource) Caps() SourceCaps {
	return SourceCaps{PartCount: len(s.parts), SeekableParts: true}
}

// OpenSource resolves a user-supplied path to the right source shape:
// a directory means "the sharded export in here" (manifest.uv6m
// inside), a .uv6m path is a manifest, anything else is a single
// dataset file. This is what lets `analyze` take a merged file, an
// export directory, or a manifest interchangeably.
func OpenSource(path string) (Source, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return OpenManifestSource(filepath.Join(path, ManifestName))
	}
	if strings.HasSuffix(path, ".uv6m") || filepath.Base(path) == ManifestName {
		return OpenManifestSource(path)
	}
	return NewFileSource(path)
}
