package dataset

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	meta := Meta{Seed: 42, Users: 10_000, FromDay: 81, ToDay: 87, Sample: "user:0.5"}
	in := &Manifest{
		Version:    ManifestVersion,
		Seed:       42,
		ConfigHash: ConfigHash(meta),
		Shards:     2,
		Meta:       meta,
		Parts: []PartInfo{
			{Name: "part-0000.uv6", Kind: PartKindBenign, UserLo: 0, UserHi: 5000, Records: 120, Blocks: 1, CRC32C: "0123abcd"},
			{Name: "part-0001.uv6", Kind: PartKindBenign, UserLo: 5000, UserHi: 10000, Records: 130, Blocks: 1, CRC32C: "deadbeef"},
			{Name: "part-0002.uv6", Kind: PartKindAbusive, Records: 10, Blocks: 1, CRC32C: "00ff00ff"},
		},
	}
	path := filepath.Join(dir, ManifestName)
	if err := WriteManifest(path, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != in.Seed || got.Shards != in.Shards || got.ConfigHash != in.ConfigHash {
		t.Fatalf("manifest = %+v", got)
	}
	if got.Meta != in.Meta {
		t.Fatalf("meta round-trip: %+v != %+v", got.Meta, in.Meta)
	}
	if len(got.Parts) != 3 {
		t.Fatalf("parts = %d", len(got.Parts))
	}
	for i := range got.Parts {
		if got.Parts[i] != in.Parts[i] {
			t.Fatalf("part %d: %+v != %+v", i, got.Parts[i], in.Parts[i])
		}
	}
	if got.TotalRecords() != 260 || got.TotalBlocks() != 3 {
		t.Fatalf("totals: %d records, %d blocks", got.TotalRecords(), got.TotalBlocks())
	}
}

func TestManifestValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, m *Manifest) string {
		p := filepath.Join(dir, name)
		if err := WriteManifest(p, m); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		m    *Manifest
		want string
	}{
		{"badversion.uv6m", &Manifest{Version: 99, Parts: []PartInfo{{Name: "p", Kind: PartKindBenign}}}, "version"},
		{"noparts.uv6m", &Manifest{Version: ManifestVersion}, "no parts"},
		{"noname.uv6m", &Manifest{Version: ManifestVersion, Parts: []PartInfo{{Kind: PartKindBenign}}}, "no name"},
		{"badkind.uv6m", &Manifest{Version: ManifestVersion, Parts: []PartInfo{{Name: "p", Kind: "weird"}}}, "kind"},
	}
	for _, c := range cases {
		p := write(c.name, c.m)
		if _, err := ReadManifest(p); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
	if _, err := ReadManifest(filepath.Join(dir, "missing.uv6m")); err == nil {
		t.Fatal("missing manifest should fail")
	}
}

func TestConfigHashDistinguishesConfigs(t *testing.T) {
	base := Meta{Seed: 1, Users: 100, FromDay: 0, ToDay: 6, Sample: "all"}
	h := ConfigHash(base)
	if h != ConfigHash(base) {
		t.Fatal("config hash not deterministic")
	}
	// Volatile fields must not affect the hash: a partial and a
	// complete run of one configuration hash identically.
	volatile := base
	volatile.Records = 999
	volatile.Complete = true
	volatile.HeaderCRC = "ffffffff"
	if ConfigHash(volatile) != h {
		t.Fatal("volatile fields changed the config hash")
	}
	for _, m := range []Meta{
		{Seed: 2, Users: 100, FromDay: 0, ToDay: 6, Sample: "all"},
		{Seed: 1, Users: 101, FromDay: 0, ToDay: 6, Sample: "all"},
		{Seed: 1, Users: 100, FromDay: 1, ToDay: 6, Sample: "all"},
		{Seed: 1, Users: 100, FromDay: 0, ToDay: 6, Sample: "user:0.1"},
		{Seed: 1, Users: 100, FromDay: 0, ToDay: 6, Sample: "all", BenignOnly: true},
	} {
		if ConfigHash(m) == h {
			t.Fatalf("config hash collision with %+v", m)
		}
	}
}
