package dataset

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

func sample(n int) []telemetry.Observation {
	out := make([]telemetry.Observation, n)
	for i := range out {
		o := telemetry.Observation{
			Day:      simtime.Day(i % 7),
			UserID:   uint64(i),
			Addr:     netaddr.AddrFrom6(0x20010db8<<32, uint64(i)),
			Requests: uint32(i + 1),
			Abusive:  i%5 == 0,
		}
		o.SetCountry("US")
		out[i] = o
	}
	return out
}

func TestDatasetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.uv6")
	meta := Meta{Seed: 7, Users: 100, FromDay: 0, ToDay: 6, Sample: "all"}
	w, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	in := sample(500)
	for _, o := range in {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := r.Meta()
	if got.Seed != 7 || got.Users != 100 || got.Sample != "all" {
		t.Fatalf("meta = %+v", got)
	}
	if got.Records != 500 {
		t.Fatalf("records = %d", got.Records)
	}
	from, to := got.Window()
	if from != 0 || to != 6 {
		t.Fatalf("window = %v..%v", from, to)
	}
	i := 0
	if err := r.ForEach(func(o telemetry.Observation) {
		if o != in[i] {
			t.Fatalf("record %d mismatch", i)
		}
		i++
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(in) {
		t.Fatalf("read %d records", i)
	}
}

func TestDatasetEmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.uv6")
	w, err := Create(path, Meta{Sample: "all"})
	if err != nil {
		t.Fatal(err)
	}
	emit, errp := w.Emit()
	for _, o := range sample(10) {
		emit(o)
	}
	if *errp != nil {
		t.Fatal(*errp)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Meta().Records != 10 {
		t.Fatalf("records = %d", r.Meta().Records)
	}
}

func TestDatasetEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.uv6")
	w, err := Create(path, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Meta().Records != 0 {
		t.Fatalf("records = %d", r.Meta().Records)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestDatasetOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing.uv6")); err == nil {
		t.Fatal("opened missing file")
	}
	// Garbage header.
	path := filepath.Join(t.TempDir(), "garbage.uv6")
	if err := writeFile(path, make([]byte, headerSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("parsed garbage header")
	}
	// Too-short file.
	short := filepath.Join(t.TempDir(), "short.uv6")
	if err := writeFile(short, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(short); err == nil {
		t.Fatal("opened truncated header")
	}
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

// The golden fixture was written by the seed (pre-v2) code: a padded
// JSON header with no format field, followed by an unframed v1 stream
// of sample(64). It must keep decoding identically forever.
func TestGoldenV1Compat(t *testing.T) {
	r, err := Open("testdata/golden_v1.uv6")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	m := r.Meta()
	if m.Seed != 7 || m.Users != 100 || m.Records != 64 || m.Sample != "all" {
		t.Fatalf("meta = %+v", m)
	}
	if m.Format != 0 || m.Complete {
		t.Fatalf("v1 meta gained v2 fields: %+v", m)
	}
	in := sample(64)
	i := 0
	if err := r.ForEach(func(o telemetry.Observation) {
		if o != in[i] {
			t.Fatalf("record %d decoded differently: %+v vs %+v", i, o, in[i])
		}
		i++
	}); err != nil {
		t.Fatal(err)
	}
	if i != 64 {
		t.Fatalf("decoded %d records, want 64", i)
	}
	// The integrity scanner must also accept v1 files as intact.
	rep, err := Scan("testdata/golden_v1.uv6")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Intact() || rep.Stream.Version != 1 || rep.Stream.Records != 64 {
		t.Fatalf("scan report = %+v", rep)
	}
}

// writeDataset writes records to a fresh dataset and returns its path.
func writeDataset(t *testing.T, in []telemetry.Observation) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "d.uv6")
	w, err := Create(path, Meta{Seed: 3, Users: len(in), Sample: "all"})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range in {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// Acceptance: a dataset with any single corrupted byte is detected by
// the reader with a typed error, and Salvage recovers every record
// outside the damaged block.
func TestDatasetRandomFlipsDetectedAndSalvaged(t *testing.T) {
	in := sample(5000) // ~5 default-size blocks
	path := writeDataset(t, in)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		// Flip anywhere in the stream area (header flips are exercised
		// separately: JSON damage has no checksum to catch it).
		off := headerSize + rnd.Intn(len(orig)-headerSize)
		mut := append([]byte{}, orig...)
		mut[off] ^= byte(1 + rnd.Intn(255))
		p := filepath.Join(t.TempDir(), "bad.uv6")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}

		// Detection: the strict reader must fail with a typed error.
		r, err := Open(p)
		if err != nil {
			t.Fatalf("flip at %d: header refused: %v", off, err)
		}
		err = r.ForEach(func(telemetry.Observation) {})
		r.Close()
		if err == nil {
			t.Fatalf("flip at %d read cleanly", off)
		}
		if !errors.Is(err, telemetry.ErrCorrupt) && !errors.Is(err, telemetry.ErrBadMagic) &&
			!errors.Is(err, telemetry.ErrUnsupportedVersion) {
			t.Fatalf("flip at %d: untyped error %v", off, err)
		}
		var ce *telemetry.CorruptError
		if errors.As(err, &ce) && (ce.Offset < 0 || ce.Offset > int64(len(orig))) {
			t.Fatalf("flip at %d: implausible error offset %d", off, ce.Offset)
		}

		// Salvage: everything outside the damaged block comes back.
		var got []telemetry.Observation
		rep, err := Salvage(p, func(o telemetry.Observation) { got = append(got, o) })
		if err != nil {
			t.Fatalf("flip at %d: salvage: %v", off, err)
		}
		if rep.Stream.Records < uint64(len(in)-telemetry.DefaultBlockRecords) {
			t.Fatalf("flip at %d: only %d/%d records salvaged", off, rep.Stream.Records, len(in))
		}
		for _, o := range got {
			if int(o.UserID) >= len(in) || o != in[o.UserID] {
				t.Fatalf("flip at %d: salvage returned damaged record %+v", off, o)
			}
		}
	}
}

// Truncation at any point leaves every whole block recoverable.
func TestDatasetTruncationSalvage(t *testing.T) {
	in := sample(5000)
	path := writeDataset(t, in)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		cut := rnd.Intn(len(orig))
		p := filepath.Join(t.TempDir(), "cut.uv6")
		if err := os.WriteFile(p, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []telemetry.Observation
		rep, err := Salvage(p, func(o telemetry.Observation) { got = append(got, o) })
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if rep.Intact() && rep.HeaderOK && cut < len(orig) && rep.Stream.Records == uint64(len(in)) {
			t.Fatalf("cut at %d reported fully intact", cut)
		}
		// Recovered records are a strict prefix of the originals.
		for i, o := range got {
			if o != in[i] {
				t.Fatalf("cut at %d: recovered record %d differs", cut, i)
			}
		}
	}
}

// The bugfix satellite: Close must write temp-then-rename so a reader
// never observes a half-written dataset at the target path.
func TestDatasetAtomicClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.uv6")
	w, err := Create(path, Meta{Sample: "all"})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range sample(100) {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("target path exists before Close (err=%v)", err)
	}
	if _, err := os.Stat(path + ".tmp"); err != nil {
		t.Fatalf("temp file missing during write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after Close (err=%v)", err)
	}
	rep, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Intact() || !rep.Meta.Complete || rep.Meta.Format != FormatV2 {
		t.Fatalf("closed dataset not intact: %+v", rep)
	}
}

func TestDatasetAbort(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.uv6")
	w, err := Create(path, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range sample(10) {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("abort left files behind: %v", entries)
	}
}

// A run that dies mid-write (no Close) leaves a temp file whose header
// was refreshed at the last flush interval: Scan sees an incomplete
// file and Salvage recovers at least everything up to that flush.
func TestDatasetInterruptedRunSalvageable(t *testing.T) {
	old := headerFlushEvery
	headerFlushEvery = 1000
	defer func() { headerFlushEvery = old }()

	dir := t.TempDir()
	path := filepath.Join(dir, "d.uv6")
	w, err := Create(path, Meta{Seed: 9, Sample: "all"})
	if err != nil {
		t.Fatal(err)
	}
	in := sample(3456)
	for _, o := range in {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash: drop the file descriptor without finalizing.
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}

	tmp := path + ".tmp"
	rep, err := Scan(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HeaderOK || rep.Meta.Complete {
		t.Fatalf("torn file claims completeness: %+v", rep)
	}
	if rep.Meta.Records != 3000 {
		t.Fatalf("header records = %d, want 3000 (last flush)", rep.Meta.Records)
	}
	if rep.Intact() {
		t.Fatal("torn file reported intact")
	}
	var got []telemetry.Observation
	if _, err := Salvage(tmp, func(o telemetry.Observation) { got = append(got, o) }); err != nil {
		t.Fatal(err)
	}
	if len(got) < 3000 {
		t.Fatalf("salvaged %d records, want >= 3000", len(got))
	}
	for i, o := range got {
		if o != in[i] {
			t.Fatalf("salvaged record %d differs", i)
		}
	}
}

// Scan on a raw (headerless) telemetry stream.
func TestScanRawStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raw.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := telemetry.NewWriterV2(f)
	for _, o := range sample(50) {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rep, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Raw || !rep.Intact() || rep.Stream.Records != 50 {
		t.Fatalf("raw scan report = %+v", rep)
	}
}
