package dataset

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

func sample(n int) []telemetry.Observation {
	out := make([]telemetry.Observation, n)
	for i := range out {
		o := telemetry.Observation{
			Day:      simtime.Day(i % 7),
			UserID:   uint64(i),
			Addr:     netaddr.AddrFrom6(0x20010db8<<32, uint64(i)),
			Requests: uint32(i + 1),
			Abusive:  i%5 == 0,
		}
		o.SetCountry("US")
		out[i] = o
	}
	return out
}

func TestDatasetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.uv6")
	meta := Meta{Seed: 7, Users: 100, FromDay: 0, ToDay: 6, Sample: "all"}
	w, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	in := sample(500)
	for _, o := range in {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := r.Meta()
	if got.Seed != 7 || got.Users != 100 || got.Sample != "all" {
		t.Fatalf("meta = %+v", got)
	}
	if got.Records != 500 {
		t.Fatalf("records = %d", got.Records)
	}
	from, to := got.Window()
	if from != 0 || to != 6 {
		t.Fatalf("window = %v..%v", from, to)
	}
	i := 0
	if err := r.ForEach(func(o telemetry.Observation) {
		if o != in[i] {
			t.Fatalf("record %d mismatch", i)
		}
		i++
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(in) {
		t.Fatalf("read %d records", i)
	}
}

func TestDatasetEmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.uv6")
	w, err := Create(path, Meta{Sample: "all"})
	if err != nil {
		t.Fatal(err)
	}
	emit, errp := w.Emit()
	for _, o := range sample(10) {
		emit(o)
	}
	if *errp != nil {
		t.Fatal(*errp)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Meta().Records != 10 {
		t.Fatalf("records = %d", r.Meta().Records)
	}
}

func TestDatasetEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.uv6")
	w, err := Create(path, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Meta().Records != 0 {
		t.Fatalf("records = %d", r.Meta().Records)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestDatasetOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing.uv6")); err == nil {
		t.Fatal("opened missing file")
	}
	// Garbage header.
	path := filepath.Join(t.TempDir(), "garbage.uv6")
	if err := writeFile(path, make([]byte, headerSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("parsed garbage header")
	}
	// Too-short file.
	short := filepath.Join(t.TempDir(), "short.uv6")
	if err := writeFile(short, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(short); err == nil {
		t.Fatal("opened truncated header")
	}
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
