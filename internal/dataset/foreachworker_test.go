package dataset

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"userv6/internal/telemetry"
)

// readFused drains a dataset through ForEachWorker, returning the
// concatenated per-worker record copies. Each worker appends to its own
// slice with no locking — exactly the access pattern the fused analyze
// path relies on — so running this under -race doubles as the proof
// that a callback is never invoked from two goroutines.
func readFused(t *testing.T, path string, opts ParallelOptions) []telemetry.Observation {
	t.Helper()
	pr, err := OpenParallel(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	perWorker := make([][]telemetry.Observation, pr.Workers())
	err = pr.ForEachWorker(context.Background(), func(w int) func(Batch) error {
		return func(b Batch) error {
			perWorker[w] = append(perWorker[w], b.Recs...) // value copies
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []telemetry.Observation
	for _, recs := range perWorker {
		out = append(out, recs...)
	}
	return out
}

func TestForEachWorkerMultisetEqual(t *testing.T) {
	in := sample(5000)
	path := writeDataset(t, in)
	want := readSequential(t, path)
	sortObs(want)
	for _, workers := range []int{1, 4} {
		got := readFused(t, path, ParallelOptions{Workers: workers})
		sortObs(got)
		sameRecords(t, got, want)
	}
}

// The factory must run serially, worker 0 first, before any worker
// goroutine starts — the guarantee that lets callers build shared
// state (e.g. a replica slice) without locks.
func TestForEachWorkerSerialFactories(t *testing.T) {
	path := writeDataset(t, sample(3000))
	pr, err := OpenParallel(path, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()

	var (
		mu        sync.Mutex
		order     []int
		delivered bool
	)
	err = pr.ForEachWorker(context.Background(), func(w int) func(Batch) error {
		// No lock here on purpose: factories are specified to run
		// serially, so -race must not flag this append.
		if delivered {
			t.Error("factory ran after a batch was delivered")
		}
		order = append(order, w)
		return func(Batch) error {
			mu.Lock()
			delivered = true
			mu.Unlock()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("factory ran %d times, want 4", len(order))
	}
	for w, got := range order {
		if got != w {
			t.Fatalf("factory order %v, want worker indexes in order", order)
		}
	}
}

func TestForEachWorkerTolerantMatchesSalvage(t *testing.T) {
	path := writeDataset(t, sample(5000))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+4+(16+1024*40)+16+99] ^= 0x80 // corrupt block 1
	bad := filepath.Join(t.TempDir(), "bad.uv6")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var want []telemetry.Observation
	wantRep, err := Salvage(bad, func(o telemetry.Observation) { want = append(want, o) })
	if err != nil {
		t.Fatal(err)
	}

	pr, err := OpenParallel(bad, ParallelOptions{Workers: 4, Tolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	perWorker := make([][]telemetry.Observation, pr.Workers())
	err = pr.ForEachWorker(context.Background(), func(w int) func(Batch) error {
		return func(b Batch) error {
			perWorker[w] = append(perWorker[w], b.Recs...)
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := pr.Coverage()
	if !ok {
		t.Fatal("no coverage after tolerant fused read")
	}
	if !rep.Equal(wantRep.Stream) {
		t.Fatalf("coverage differs:\n   fused: %+v\n salvage: %+v", rep, wantRep.Stream)
	}
	var got []telemetry.Observation
	for _, recs := range perWorker {
		got = append(got, recs...)
	}
	sortObs(got)
	sortObs(want)
	sameRecords(t, got, want)
}

// A corrupt block in strict fused mode fails the read like the
// sequential reader does (the fused path has no ordered delivery, so
// no prefix guarantee — only the error contract).
func TestForEachWorkerStrictCorruptBlock(t *testing.T) {
	path := writeDataset(t, sample(5000))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+4+2*(16+1024*40)+16+200] ^= 0x01
	bad := filepath.Join(t.TempDir(), "bad.uv6")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	pr, err := OpenParallel(bad, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	err = pr.ForEachWorker(context.Background(), func(int) func(Batch) error {
		return func(Batch) error { return nil }
	})
	if !errors.Is(err, telemetry.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestForEachWorkerCallbackError(t *testing.T) {
	path := writeDataset(t, sample(5000))
	boom := errors.New("boom")
	pr, err := OpenParallel(path, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	err = pr.ForEachWorker(context.Background(), func(w int) func(Batch) error {
		return func(b Batch) error {
			if b.Index == 2 {
				return boom
			}
			return nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want callback error, got %v", err)
	}
}

// A panicking callback must surface as a typed *WorkerPanicError naming
// the worker, not crash the process or deadlock the pool.
func TestForEachWorkerPanic(t *testing.T) {
	for _, tolerant := range []bool{false, true} {
		pr, err := OpenParallel(writeDataset(t, sample(5000)), ParallelOptions{Workers: 4, Tolerant: tolerant})
		if err != nil {
			t.Fatal(err)
		}
		err = pr.ForEachWorker(context.Background(), func(w int) func(Batch) error {
			return func(b Batch) error {
				if b.Index >= 1 {
					panic("kaboom")
				}
				return nil
			}
		})
		pr.Close()
		var pe *WorkerPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("tolerant=%v: want *WorkerPanicError, got %v", tolerant, err)
		}
		if pe.Value != "kaboom" || pe.Worker < 0 || pe.Worker >= 4 {
			t.Fatalf("tolerant=%v: panic error %+v", tolerant, pe)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("tolerant=%v: panic error carries no stack", tolerant)
		}
		if _, ok := pr.Coverage(); ok && !tolerant {
			t.Fatal("strict read reported coverage")
		}
	}
}

func TestForEachWorkerSingleUse(t *testing.T) {
	pr, err := OpenParallel(writeDataset(t, sample(100)), ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	noop := func(int) func(Batch) error { return func(Batch) error { return nil } }
	if err := pr.ForEachWorker(context.Background(), noop); err != nil {
		t.Fatal(err)
	}
	if err := pr.ForEachWorker(context.Background(), noop); err == nil {
		t.Fatal("second consume must fail")
	}
	if err := pr.ForEachBatch(context.Background(), func(Batch) error { return nil }); err == nil {
		t.Fatal("ForEachBatch after ForEachWorker must fail")
	}
}

func TestForEachWorkerContextCancel(t *testing.T) {
	pr, err := OpenParallel(writeDataset(t, sample(5000)), ParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	ctx, cancel := context.WithCancel(context.Background())
	err = pr.ForEachWorker(ctx, func(int) func(Batch) error {
		return func(Batch) error {
			cancel() // fire mid-read
			return nil
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// A raw (headerless) stream reads through the fused path too.
func TestForEachWorkerRawStream(t *testing.T) {
	in := sample(2500)
	path := filepath.Join(t.TempDir(), "raw.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := telemetry.NewWriterV2(f)
	for _, o := range in {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	got := readFused(t, path, ParallelOptions{Workers: 4})
	sortObs(got)
	want := append([]telemetry.Observation(nil), in...)
	sortObs(want)
	sameRecords(t, got, want)
}
