package dataset

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"userv6/internal/faultio"
	"userv6/internal/retry"
	"userv6/internal/telemetry"
)

// writePart writes obs into a new dataset at path and returns the
// part description a sharded exporter would record for it.
func writePart(t *testing.T, path string, meta Meta, obs []telemetry.Observation) PartInfo {
	t.Helper()
	w, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	crc, err := FileCRC32C(path)
	if err != nil {
		t.Fatal(err)
	}
	return PartInfo{
		Name: filepath.Base(path), Kind: PartKindBenign,
		Records: w.Records(), Blocks: w.Blocks(), CRC32C: crc,
	}
}

// TestMergeByteIdenticalToSingleWriter: folding four shards must
// reproduce the single-writer file exactly — the acceptance bar for
// sharded export.
func TestMergeByteIdenticalToSingleWriter(t *testing.T) {
	dir := t.TempDir()
	meta := Meta{Seed: 11, Users: 5000, FromDay: 0, ToDay: 6, Sample: "all"}
	obs := sample(5000)

	single := filepath.Join(dir, "single.uv6")
	writePart(t, single, meta, obs)

	var parts []string
	per := len(obs) / 4
	for i := 0; i < 4; i++ {
		lo, hi := i*per, (i+1)*per
		if i == 3 {
			hi = len(obs)
		}
		p := filepath.Join(dir, fmt.Sprintf("part-%04d.uv6", i))
		writePart(t, p, meta, obs[lo:hi])
		parts = append(parts, p)
	}

	merged := filepath.Join(dir, "merged.uv6")
	rep, err := Merge(merged, meta, parts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("merge of intact parts reported incomplete: %+v", rep.Parts)
	}
	if rep.Records != uint64(len(obs)) {
		t.Fatalf("merged %d records, want %d", rep.Records, len(obs))
	}

	want, err := os.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("merged dataset differs from single-writer output (%d vs %d bytes)", len(got), len(want))
	}
}

// TestMergeRecoversDamagedPart: one part with a flipped payload byte
// loses exactly its corrupt block; every intact block of every part is
// recovered and the coverage report says so.
func TestMergeRecoversDamagedPart(t *testing.T) {
	dir := t.TempDir()
	meta := Meta{Seed: 5, Users: 5000, FromDay: 0, ToDay: 6, Sample: "all"}
	obs := sample(5000) // 1250 records per part: blocks of 1024 + 226

	var parts []string
	expected := map[string]PartInfo{}
	for i := 0; i < 4; i++ {
		p := filepath.Join(dir, fmt.Sprintf("part-%04d.uv6", i))
		info := writePart(t, p, meta, obs[i*1250:(i+1)*1250])
		if info.Blocks != 2 {
			t.Fatalf("part %d has %d blocks, test expects 2", i, info.Blocks)
		}
		expected[info.Name] = info
		parts = append(parts, p)
	}

	// Flip one byte inside part 2's first block payload.
	victim := parts[2]
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+4+16+37] ^= 0x40
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	merged := filepath.Join(dir, "merged.uv6")
	rep, err := Merge(merged, meta, parts, &MergeOptions{Expected: expected})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Fatal("merge with a damaged part reported complete")
	}
	// 4 parts x 2 blocks, one lost: 7 of 8 blocks, 5000-1024 records.
	if rep.Records != 5000-1024 {
		t.Fatalf("merged %d records, want %d", rep.Records, 5000-1024)
	}
	for i, cov := range rep.Parts {
		if i == 2 {
			if cov.BlocksRecovered != 1 || cov.BlocksExpected != 2 || cov.CorruptBlocks != 1 {
				t.Fatalf("damaged part coverage = %+v", cov)
			}
			if cov.Coverage() != 0.5 {
				t.Fatalf("damaged part coverage fraction = %v", cov.Coverage())
			}
			if cov.ChecksumOK {
				t.Fatal("damaged part passed its whole-file checksum")
			}
			continue
		}
		if !cov.Intact() || cov.BlocksRecovered != 2 || cov.Records != 1250 {
			t.Fatalf("intact part %d coverage = %+v", i, cov)
		}
	}

	// Every record of every intact block is in the merged output, in
	// order: parts 0, 1, 3 complete plus part 2's trailing 226.
	r, err := Open(merged)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	want := append(append([]telemetry.Observation{}, obs[:2*1250]...), obs[2*1250+1024:]...)
	i := 0
	if err := r.ForEach(func(o telemetry.Observation) {
		if o != want[i] {
			t.Fatalf("record %d mismatch after merge", i)
		}
		i++
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("merged output has %d records, want %d", i, len(want))
	}

	// Strict mode refuses the damaged part.
	if _, err := Merge(filepath.Join(dir, "strict.uv6"), meta, parts, &MergeOptions{Expected: expected, Strict: true}); err == nil {
		t.Fatal("strict merge of a damaged part should fail")
	}
}

// TestMergeRetriesTransientIO: transient read errors injected through
// faultio are retried under the shared policy with capped exponential
// backoff and never duplicate records.
func TestMergeRetriesTransientIO(t *testing.T) {
	dir := t.TempDir()
	meta := Meta{Seed: 9, Users: 100, FromDay: 0, ToDay: 6, Sample: "all"}
	obs := sample(600)
	p0 := filepath.Join(dir, "part-0000.uv6")
	p1 := filepath.Join(dir, "part-0001.uv6")
	writePart(t, p0, meta, obs[:300])
	writePart(t, p1, meta, obs[300:])

	in := faultio.New(faultio.OS, 1)
	if err := in.Arm("flaky@part-0001.uv6:readfile:n=1:x=2:err"); err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	pol := retry.Policy{
		Base: 10 * time.Millisecond, Max: 15 * time.Millisecond, NoJitter: true,
		Sleep: func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil },
	}

	merged := filepath.Join(dir, "merged.uv6")
	rep, err := Merge(merged, meta, []string{p0, p1}, &MergeOptions{FS: in, Retry: pol})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Records != 600 {
		t.Fatalf("retried merge: complete=%v records=%d", rep.Complete, rep.Records)
	}
	if rep.Parts[0].Retries != 0 || rep.Parts[1].Retries != 2 {
		t.Fatalf("retry counts = %d, %d", rep.Parts[0].Retries, rep.Parts[1].Retries)
	}
	// Exponential backoff, capped: 10ms then min(20ms, 15ms).
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 15*time.Millisecond {
		t.Fatalf("backoff schedule = %v", slept)
	}

	// A part that never stops failing exhausts its retries and fails
	// the merge.
	in2 := faultio.New(faultio.OS, 1)
	if err := in2.Arm("part-0001.uv6:readfile:x=-1:err"); err != nil {
		t.Fatal(err)
	}
	pol.MaxRetries = 2
	if _, err := Merge(filepath.Join(dir, "fail.uv6"), meta, []string{p0, p1}, &MergeOptions{FS: in2, Retry: pol}); err == nil {
		t.Fatal("persistently failing part should fail the merge")
	}
	// A missing part fails immediately, without retries.
	slept = nil
	if _, err := Merge(filepath.Join(dir, "missing.uv6"), meta, []string{filepath.Join(dir, "nope.uv6")}, &MergeOptions{Retry: pol}); err == nil {
		t.Fatal("missing part should fail the merge")
	} else if len(slept) != 0 {
		t.Fatalf("missing part slept %v before failing", slept)
	}
}

// TestMergeCtxCancelled: a cancelled context aborts the merge instead
// of sitting out its backoff schedule.
func TestMergeCtxCancelled(t *testing.T) {
	dir := t.TempDir()
	meta := Meta{Seed: 9, Users: 100, FromDay: 0, ToDay: 6, Sample: "all"}
	obs := sample(100)
	p0 := filepath.Join(dir, "part-0000.uv6")
	writePart(t, p0, meta, obs)

	in := faultio.New(faultio.OS, 1)
	if err := in.Arm("part-0000.uv6:readfile:x=-1:err"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := MergeCtx(ctx, filepath.Join(dir, "out.uv6"), meta, []string{p0},
		&MergeOptions{FS: in, Retry: retry.Policy{MaxRetries: 10, Base: time.Hour}})
	if err == nil {
		t.Fatal("cancelled merge succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled merge blocked %v", elapsed)
	}
}
