package dataset

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"userv6/internal/telemetry"
)

// flipSeedDigit alters one digit of the seed value inside a raw header,
// the canonical silent-corruption case the header CRC exists to catch.
func flipSeedDigit(t *testing.T, raw []byte) {
	t.Helper()
	i := bytes.Index(raw[:headerSize], []byte(`"seed":`))
	if i < 0 {
		t.Fatal("no seed field in header")
	}
	i += len(`"seed":`)
	if raw[i] < '0' || raw[i] > '9' {
		t.Fatalf("seed field does not start with a digit: %q", raw[i])
	}
	// Flip to a different digit so the JSON stays valid and parseable.
	if raw[i] == '9' {
		raw[i] = '1'
	} else {
		raw[i]++
	}
}

// TestHeaderCRCDetectsSeedFlip: pre-CRC headers let a flipped seed
// digit pass silently; the self-excluding checksum closes that gap.
func TestHeaderCRCDetectsSeedFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.uv6")
	w, err := Create(path, Meta{Seed: 123456, Users: 100, FromDay: 0, ToDay: 6, Sample: "all"})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range sample(100) {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The pristine file opens and scans intact, with a CRC present.
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta().HeaderCRC == "" {
		t.Fatal("new header carries no CRC")
	}
	r.Close()
	rep, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Intact() || rep.HeaderErr != "" {
		t.Fatalf("pristine scan = %+v", rep)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipSeedDigit(t, raw)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(path); !errors.Is(err, ErrHeaderCRC) {
		t.Fatalf("Open after seed flip: %v, want ErrHeaderCRC", err)
	}
	rep, err = Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HeaderErr == "" {
		t.Fatal("scan did not flag the flipped header")
	}
	if rep.Intact() {
		t.Fatal("scan reported a flipped header intact")
	}
	// The stream itself is untouched: salvage still recovers everything.
	if rep.Stream.Records != 100 || !rep.Stream.Intact() {
		t.Fatalf("stream after header flip = %+v", rep.Stream)
	}
}

// TestHeaderCRCLegacyHeadersStillReadable: headers written before the
// field existed carry no CRC and are accepted unchecked — v1 and early
// v2 files stay readable forever.
func TestHeaderCRCLegacyHeadersStillReadable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.uv6")

	// Fabricate a pre-CRC header by writing a normal file and replacing
	// its header with a CRC-less one.
	w, err := Create(path, Meta{Seed: 7, Users: 50, FromDay: 0, ToDay: 6, Sample: "all"})
	if err != nil {
		t.Fatal(err)
	}
	obs := sample(50)
	for _, o := range obs {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	legacy := Meta{Seed: 7, Users: 50, FromDay: 0, ToDay: 6, Sample: "all",
		Records: 50, Format: FormatV2, Complete: true}
	b, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("header_crc")) {
		t.Fatal("legacy fixture unexpectedly has a CRC field")
	}
	hdr := bytes.Repeat([]byte{' '}, headerSize)
	copy(hdr, b)
	hdr[headerSize-1] = '\n'
	copy(raw[:headerSize], hdr)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatalf("legacy header rejected: %v", err)
	}
	defer r.Close()
	if r.Meta().HeaderCRC != "" {
		t.Fatal("legacy header grew a CRC")
	}
	n := 0
	if err := r.ForEach(func(telemetry.Observation) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("read %d records", n)
	}
	rep, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Intact() {
		t.Fatalf("legacy scan = %+v", rep)
	}
}
