package dataset

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"userv6/internal/telemetry"
)

// fuzzFile materializes fuzz input as a file, since the dataset API is
// path-based.
func fuzzFile(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fuzz.uv6")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// FuzzDatasetOpen: arbitrary file contents must never panic Open,
// Read, ForEach, or Scan — they either decode or return an error.
func FuzzDatasetOpen(f *testing.F) {
	// Seed with a well-formed dataset and assorted malformations.
	dir, err := os.MkdirTemp("", "uv6fuzzseed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	seedPath := filepath.Join(dir, "seed.uv6")
	w, err := Create(seedPath, Meta{Seed: 1, Users: 10, Sample: "all"})
	if err != nil {
		f.Fatal(err)
	}
	for _, o := range sample(64) {
		if err := w.Write(o); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:headerSize])
	f.Add(seed[:len(seed)-13])
	f.Add([]byte{})
	f.Add([]byte("{}"))
	golden, err := os.ReadFile("testdata/golden_v1.uv6")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(golden)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := fuzzFile(t, data)
		r, err := Open(path)
		if err == nil {
			r.Meta()
			for {
				if _, err := r.Read(); err != nil {
					break // io.EOF or a decode error — both acceptable
				}
			}
			r.Close()
		}
		rep, err := Scan(path)
		if err != nil {
			t.Fatalf("Scan I/O error on in-memory file: %v", err)
		}
		var n uint64
		if _, err := Salvage(path, func(telemetry.Observation) { n++ }); err == nil {
			if rep.Stream.Records != n {
				t.Fatalf("scan reported %d records, salvage emitted %d", rep.Stream.Records, n)
			}
		}
	})
}

// FuzzDatasetRoundTrip: any mutation of a valid dataset either opens
// and decodes some prefix without panicking, or errors; and an
// unmutated round trip through Salvage preserves every record.
func FuzzDatasetRoundTrip(f *testing.F) {
	f.Add(uint16(0), byte(0xff))
	f.Add(uint16(300), byte(0x01))
	f.Add(uint16(2000), byte(0x80))
	f.Fuzz(func(t *testing.T, off uint16, mask byte) {
		path := filepath.Join(t.TempDir(), "d.uv6")
		w, err := Create(path, Meta{Sample: "all"})
		if err != nil {
			t.Fatal(err)
		}
		in := sample(100)
		for _, o := range in {
			if err := w.Write(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[int(off)%len(data)] ^= mask
		mut := fuzzFile(t, data)
		if r, err := Open(mut); err == nil {
			var got []telemetry.Observation
			for {
				o, err := r.Read()
				if err != nil {
					if err != io.EOF && mask == 0 {
						t.Fatalf("unmutated dataset failed: %v", err)
					}
					break
				}
				got = append(got, o)
			}
			r.Close()
			// The v2 checksum rejects a damaged block before serving any
			// of it, so every record that *was* served must be pristine,
			// no matter where the flip landed.
			for i, o := range got {
				if int(o.UserID) >= len(in) || o != in[o.UserID] {
					t.Fatalf("served record %d is damaged: %+v", i, o)
				}
			}
		}
	})
}
