// Checkpoint/resume support. A partial dataset — a finalized
// interrupted run, or a torn temp file — holds a prefix of the
// canonical generation order (benign users ascending, days ascending
// within a user, then the abusive stream). Because generation is a pure
// function of (user, day), the resume point is fully determined by that
// prefix: re-emit the records that are certainly complete, restart
// deterministic generation at the first possibly-incomplete (user, day)
// batch, and the finished file is byte-identical to an uninterrupted
// run.
package dataset

import (
	"errors"
	"fmt"
	"io"

	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// Frontier is the resume point derived from a partial dataset: the
// first (user, day) generation batch that must be regenerated.
type Frontier struct {
	// UserID and Day name the batch to restart at (inclusive). The
	// last batch observed in the prefix is regenerated because the
	// interruption may have torn it mid-batch.
	UserID uint64
	Day    simtime.Day
	// BenignDone marks a prefix that already contains abusive records:
	// every benign batch is complete, and only the (small, serially
	// generated) abusive stream needs regenerating.
	BenignDone bool
	// Restart marks an unusable prefix (no records recovered):
	// regenerate from scratch.
	Restart bool
}

// DeriveFrontier computes the resume frontier for a record sequence in
// canonical generation order. It returns the frontier and the number of
// leading records that are certainly complete: the trailing records of
// the frontier batch itself are excluded (the batch is regenerated
// whole), and any abusive records are excluded (the abusive stream is
// not range-resumable, but it is cheap to regenerate entirely).
func DeriveFrontier(obs []telemetry.Observation) (Frontier, int) {
	if len(obs) == 0 {
		return Frontier{Restart: true}, 0
	}
	last := obs[len(obs)-1]
	if last.Abusive {
		// The run reached the abusive phase, so the benign stream is
		// complete. Keep exactly the benign prefix.
		keep := len(obs)
		for keep > 0 && obs[keep-1].Abusive {
			keep--
		}
		return Frontier{BenignDone: true}, keep
	}
	keep := len(obs)
	for keep > 0 && obs[keep-1].UserID == last.UserID && obs[keep-1].Day == last.Day {
		keep--
	}
	return Frontier{UserID: last.UserID, Day: last.Day}, keep
}

// LoadResumePrefix opens a partial dataset and returns its metadata
// plus the strictly verified record prefix: records are read through
// the checksumming reader and collection stops at the first damaged or
// truncated block, so everything returned is pristine and in canonical
// order. The header must parse and pass its CRC — a run cannot be
// resumed under metadata it cannot trust.
func LoadResumePrefix(path string) (Meta, []telemetry.Observation, error) {
	r, err := Open(path)
	if err != nil {
		return Meta{}, nil, err
	}
	defer r.Close()
	meta := r.Meta()
	var obs []telemetry.Observation
	for {
		o, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A torn tail or corrupt block ends the trusted prefix;
			// anything else (a real I/O failure) aborts the resume.
			if errors.Is(err, telemetry.ErrCorrupt) || errors.Is(err, telemetry.ErrBadMagic) {
				break
			}
			return meta, nil, fmt.Errorf("dataset: resume read: %w", err)
		}
		obs = append(obs, o)
	}
	return meta, obs, nil
}
