package dataset

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"userv6/internal/telemetry"
)

// codecPolicies is every compression policy a dataset can be written
// under: the full codec × reader compatibility matrix runs over it.
var codecPolicies = []string{"", "lz", "delta", "auto"}

// readUnordered drains a dataset unordered and returns the records
// sorted back into a canonical order for comparison.
func readUnordered(t *testing.T, path string) []telemetry.Observation {
	t.Helper()
	pr, err := OpenParallel(path, ParallelOptions{Workers: 4, Unordered: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	var mu sync.Mutex
	var out []telemetry.Observation
	if err := pr.ForEachBatch(context.Background(), func(b Batch) error {
		mu.Lock()
		out = append(out, b.Recs...)
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sortObs(out)
	return out
}

// TestCodecReaderMatrix: every codec policy × every reader mode must
// deliver exactly the records that went in — equal record streams mean
// equal analyze output, whatever the wire bytes look like. The "" row
// doubles as the pre-codec round trip: an identity dataset's frames
// are flags=0, bit-for-bit the layout files written before the codec
// layer existed carry.
func TestCodecReaderMatrix(t *testing.T) {
	obs := sample(5000)
	for _, policy := range codecPolicies {
		t.Run("policy="+policyLabel(policy), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "d.uv6")
			meta := Meta{Seed: 9, Users: 5000, FromDay: 0, ToDay: 6, Sample: "all", Codec: policy}
			writePart(t, path, meta, obs)

			if policy == "" {
				assertIdentityFrames(t, path)
			}

			sameRecords(t, readSequential(t, path), obs)
			sameRecords(t, readParallel(t, path, ParallelOptions{Workers: 4}), obs)
			sameRecords(t, readParallel(t, path, ParallelOptions{Workers: 4, Tolerant: true}), obs)

			sorted := append([]telemetry.Observation{}, obs...)
			sortObs(sorted)
			sameRecords(t, readUnordered(t, path), sorted)
		})
	}
}

func policyLabel(p string) string {
	if p == "" {
		return "identity"
	}
	return p
}

// assertIdentityFrames fails unless every frame in the file carries
// flags byte 0 — the pre-codec wire layout.
func assertIdentityFrames(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := telemetry.Scan(bytes.NewReader(raw[headerSize:]))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Intact() || !rep.Codecs.Has(telemetry.CodecIdentity) || len(rep.CodecBlocks) != 1 {
		t.Fatalf("identity dataset is not pure flags=0: %+v", rep)
	}
}

// TestCodecMergeMatrix: for every policy, merging block-aligned parts
// written under that policy must reproduce the single-writer file byte
// for byte (exercising the passthrough fast path for the policy's
// codecs), and merging identity parts into the same policy target must
// too (exercising the decode + re-encode path — cross-policy parts
// never qualify for passthrough but always re-encode correctly).
func TestCodecMergeMatrix(t *testing.T) {
	obs := sample(5000)
	cuts := []int{2048, 4096} // part boundaries on whole 1024-record blocks
	for _, policy := range codecPolicies {
		t.Run("policy="+policyLabel(policy), func(t *testing.T) {
			dir := t.TempDir()
			meta := Meta{Seed: 13, Users: 5000, FromDay: 0, ToDay: 6, Sample: "all", Codec: policy}
			single := filepath.Join(dir, "single.uv6")
			writePart(t, single, meta, obs)
			want, err := os.ReadFile(single)
			if err != nil {
				t.Fatal(err)
			}

			writeParts := func(sub string, partMeta Meta) []string {
				var parts []string
				lo := 0
				for i, hi := range append(append([]int{}, cuts...), len(obs)) {
					p := filepath.Join(dir, fmt.Sprintf("%s-%04d.uv6", sub, i))
					writePart(t, p, partMeta, obs[lo:hi])
					parts = append(parts, p)
					lo = hi
				}
				return parts
			}

			for name, partMeta := range map[string]Meta{
				"same-policy": meta,
				"identity-parts": func() Meta {
					m := meta
					m.Codec = ""
					return m
				}(),
			} {
				t.Run(name, func(t *testing.T) {
					merged := filepath.Join(dir, name+"-merged.uv6")
					rep, err := Merge(merged, meta, writeParts(name, partMeta), &MergeOptions{Workers: 4})
					if err != nil {
						t.Fatal(err)
					}
					if !rep.Complete || rep.Records != uint64(len(obs)) {
						t.Fatalf("complete=%v records=%d", rep.Complete, rep.Records)
					}
					for _, cov := range rep.Parts {
						if !cov.CodecOK {
							t.Fatalf("part %s flagged for codec mismatch", cov.Name)
						}
					}
					got, err := os.ReadFile(merged)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(want, got) {
						t.Fatalf("merged %s dataset differs from single-writer output (%d vs %d bytes)",
							policyLabel(policy), len(got), len(want))
					}
				})
			}
		})
	}
}

// TestCompressionRatioGate is the CI bench-smoke lane's ratio
// assertion: on the fixture workload the delta policy must not store
// more bytes than lz, and auto must beat lz strictly — the measured
// success criterion of the delta codec. A regression here means the
// codec selection or the delta transform itself stopped paying.
func TestCompressionRatioGate(t *testing.T) {
	dir := t.TempDir()
	obs := sample(20_000)
	sizes := map[string]int64{}
	for _, policy := range codecPolicies {
		path := filepath.Join(dir, policyLabel(policy)+".uv6")
		writePart(t, path, Meta{Seed: 17, Users: 20_000, FromDay: 0, ToDay: 6, Sample: "all", Codec: policy}, obs)
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		sizes[policyLabel(policy)] = st.Size()
	}
	t.Logf("bytes: identity=%d lz=%d delta=%d auto=%d",
		sizes["identity"], sizes["lz"], sizes["delta"], sizes["auto"])
	if sizes["delta"] > sizes["lz"] {
		t.Fatalf("delta %d bytes > lz %d bytes on the fixture config", sizes["delta"], sizes["lz"])
	}
	if sizes["auto"] >= sizes["lz"] {
		t.Fatalf("auto %d bytes, want strictly smaller than lz (%d)", sizes["auto"], sizes["lz"])
	}
	if sizes["auto"] > sizes["delta"] {
		t.Fatalf("auto %d bytes > delta %d bytes: auto must never lose to its own chain member",
			sizes["auto"], sizes["delta"])
	}
}

// TestManifestPolicyInConfigHash: policy labels are config-relevant
// ("auto" and "lz" runs are different artifacts) and distinct from one
// another, while identity aliases all hash like the pre-codec field.
func TestManifestPolicyInConfigHash(t *testing.T) {
	base := Meta{Seed: 1, Users: 10, FromDay: 0, ToDay: 6}
	seen := map[string]string{}
	for _, policy := range []string{"lz", "delta", "auto"} {
		m := base
		m.Codec = policy
		h := ConfigHash(m)
		if h == ConfigHash(base) {
			t.Fatalf("policy %q does not affect the config hash", policy)
		}
		for other, oh := range seen {
			if h == oh {
				t.Fatalf("policies %q and %q collide in the config hash", policy, other)
			}
		}
		seen[policy] = h
	}
}
