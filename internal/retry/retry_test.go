package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestDoSchedule: with jitter off and an injected clock, Do sleeps the
// exact base-doubling schedule capped at Max and stops after
// MaxRetries.
func TestDoSchedule(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxRetries: 3, Base: 10 * time.Millisecond, Max: 15 * time.Millisecond,
		NoJitter: true,
		Sleep:    func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil },
	}
	boom := errors.New("boom")
	retries, err := p.Do(context.Background(), "t", func() error { return boom })
	if retries != 3 || !errors.Is(err, boom) {
		t.Fatalf("retries=%d err=%v", retries, err)
	}
	// 10ms, then min(20, 15), then the cap again.
	want := []time.Duration{10 * time.Millisecond, 15 * time.Millisecond, 15 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

// TestDoSucceedsAfterTransient: a failure that clears is retried and
// the retry count reports how many attempts it took.
func TestDoSucceedsAfterTransient(t *testing.T) {
	n := 0
	p := Policy{NoJitter: true, Sleep: func(context.Context, time.Duration) error { return nil }}
	retries, err := p.Do(context.Background(), "t", func() error {
		n++
		if n < 3 {
			return fmt.Errorf("transient %d", n)
		}
		return nil
	})
	if err != nil || retries != 2 {
		t.Fatalf("retries=%d err=%v", retries, err)
	}
}

// TestDoPermanent: a Permanent error fails immediately and is unwrapped
// back to the original.
func TestDoPermanent(t *testing.T) {
	boom := errors.New("gone")
	p := Policy{Sleep: func(context.Context, time.Duration) error {
		t.Fatal("permanent error slept")
		return nil
	}}
	retries, err := p.Do(context.Background(), "t", func() error { return Permanent(boom) })
	if retries != 0 || err != boom {
		t.Fatalf("retries=%d err=%v", retries, err)
	}
	if !IsPermanent(Permanent(boom)) || IsPermanent(boom) {
		t.Fatal("IsPermanent misclassifies")
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

// TestDoCancelledMidBackoff: cancellation during a backoff sleep aborts
// Do with the context error instead of blocking out the interval —
// the regression the shared policy exists to prevent.
func TestDoCancelledMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxRetries: 10, Base: time.Hour, NoJitter: true}
	start := time.Now()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := p.Do(ctx, "t", func() error { return errors.New("always") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled Do blocked %v", elapsed)
	}
}

// TestDoAlreadyCancelled: a context cancelled before Do is called makes
// one attempt (the operation may succeed without waiting) but never
// sleeps.
func TestDoAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	p := Policy{Sleep: func(context.Context, time.Duration) error {
		t.Fatal("slept under a dead context")
		return nil
	}}
	_, err := p.Do(ctx, "t", func() error { calls++; return errors.New("x") })
	if calls != 1 || !errors.Is(err, context.Canceled) {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
	if _, err := p.Do(ctx, "t", func() error { calls++; return nil }); err != nil {
		t.Fatalf("successful op under dead context err=%v", err)
	}
}

// TestJitterDeterministicAndBounded: the same (seed, label) yields the
// same schedule; different labels diverge; every jittered wait stays in
// [d/2, d].
func TestJitterDeterministicAndBounded(t *testing.T) {
	schedule := func(seed uint64, label string) []time.Duration {
		var slept []time.Duration
		p := Policy{
			MaxRetries: 6, Base: 8 * time.Millisecond, Max: 500 * time.Millisecond, Seed: seed,
			Sleep: func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil },
		}
		p.Do(context.Background(), label, func() error { return errors.New("x") })
		return slept
	}
	a, b := schedule(7, "merge"), schedule(7, "merge")
	if len(a) != 6 {
		t.Fatalf("schedule length %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed+label diverged: %v vs %v", a, b)
		}
	}
	c := schedule(7, "manifest")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different labels produced identical jitter")
	}
	base := 8 * time.Millisecond
	for i, d := range a {
		lo := base / 2
		if d < lo || d > base {
			t.Fatalf("wait %d = %v outside [%v, %v]", i, d, lo, base)
		}
		base *= 2
		if base > 500*time.Millisecond {
			base = 500 * time.Millisecond
		}
	}
}
