// Package retry is the one backoff policy in the tree: capped
// exponential backoff with deterministic jitter, aborted promptly when
// the caller's context is cancelled.
//
// Every component that retries transient failures — the merge engine
// re-reading a glitching part file, the CLI re-attempting a manifest
// write — goes through Policy.Do, so backoff behavior is tuned (and
// tested) in exactly one place. Jitter is seeded through internal/rng
// and derived from a per-call-site label, which keeps concurrent
// retriers (e.g. shard merges hitting the same filesystem) from
// thundering in lockstep while leaving every schedule reproducible:
// the same seed and label always sleep the same durations. Jitter
// shapes only the waiting, never the work, so retried operations stay
// byte-identical to un-retried ones.
package retry

import (
	"context"
	"errors"
	"fmt"
	"time"

	"userv6/internal/rng"
)

// Defaults applied by Policy.withDefaults for zero fields.
const (
	DefaultMaxRetries = 3
	DefaultBase       = 50 * time.Millisecond
	DefaultMax        = 2 * time.Second
)

// Policy describes one capped-exponential-backoff schedule. The zero
// Policy is valid and uses the package defaults with jitter enabled.
type Policy struct {
	// MaxRetries is how many times the operation is re-attempted after
	// the first failure (default 3; a Do call makes at most
	// MaxRetries+1 attempts).
	MaxRetries int
	// Base is the first backoff interval (default 50ms); each retry
	// doubles it, capped at Max (default 2s).
	Base time.Duration
	Max  time.Duration
	// Seed feeds the deterministic jitter stream. Two policies with the
	// same Seed sleep identical schedules for the same label, so runs
	// stay reproducible; distinct labels decorrelate concurrent
	// retriers.
	Seed uint64
	// NoJitter disables jitter, producing the exact base-doubling
	// schedule — for tests that assert sleep durations.
	NoJitter bool
	// Sleep, when non-nil, replaces the real context-aware sleep: the
	// injected clock for tests. It must return ctx.Err() if the context
	// is done before the duration elapses.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) withDefaults() Policy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = DefaultMaxRetries
	}
	if p.Base <= 0 {
		p.Base = DefaultBase
	}
	if p.Max <= 0 {
		p.Max = DefaultMax
	}
	if p.Sleep == nil {
		p.Sleep = sleep
	}
	return p
}

// sleep is the real clock: a timer raced against ctx.Done, so a
// cancelled caller never waits out a backoff interval.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Policy.Do fails immediately instead of
// retrying — for failures waiting cannot fix (a missing file, a parse
// error). Do unwraps the marker before returning, so callers see the
// original error.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Do runs fn until it succeeds, returns a Permanent error, exhausts
// MaxRetries, or the context is cancelled mid-backoff. label names the
// call site ("merge-read part-0001.uv6"): it seeds the jitter stream
// and appears in the exhaustion error. The returned count is the number
// of retries performed (0 when the first attempt settled the matter).
func (p Policy) Do(ctx context.Context, label string, fn func() error) (retries int, err error) {
	p = p.withDefaults()
	var src *rng.Source
	if !p.NoJitter {
		src = rng.New(rng.Derive(p.Seed, "retry:"+label))
	}
	backoff := p.Base
	for attempt := 0; ; attempt++ {
		err = fn()
		if err == nil {
			return attempt, nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return attempt, pe.err
		}
		if err2 := ctx.Err(); err2 != nil {
			return attempt, err2
		}
		if attempt >= p.MaxRetries {
			return attempt, fmt.Errorf("retry: %s: after %d retries: %w", label, attempt, err)
		}
		if serr := p.Sleep(ctx, jitter(backoff, p.NoJitter, src)); serr != nil {
			return attempt, serr
		}
		backoff *= 2
		if backoff > p.Max {
			backoff = p.Max
		}
	}
}

// jitter applies equal-jitter to a backoff interval: half the interval
// held, half redrawn uniformly — enough spread to break retry herds
// while keeping every wait within [d/2, d].
func jitter(d time.Duration, off bool, src *rng.Source) time.Duration {
	if off || d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(src.Uint64n(uint64(d-half)+1))
}
