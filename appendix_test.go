package userv6

import (
	"math"
	"testing"
)

// TestPandemicRobustness reproduces Appendix A: the lockdown shifts the
// metrics only slightly, so the paper's (and our) conclusions hold in
// both regimes.
func TestPandemicRobustness(t *testing.T) {
	sim := testSim(t)
	c := sim.ComparePandemic()

	if c.Pre.From == c.Lockdown.From {
		t.Fatal("windows identical")
	}
	// Medians move by at most 2 either way.
	if d := absInt(c.Pre.MedianV4Addrs - c.Lockdown.MedianV4Addrs); d > 2 {
		t.Fatalf("v4 median moved by %d: %+v", d, c)
	}
	if d := absInt(c.Pre.MedianV6Addrs - c.Lockdown.MedianV6Addrs); d > 2 {
		t.Fatalf("v6 median moved by %d: %+v", d, c)
	}
	// The v6 > v4 ordering holds in both regimes.
	if c.Pre.MedianV6Addrs < c.Pre.MedianV4Addrs || c.Lockdown.MedianV6Addrs < c.Lockdown.MedianV4Addrs {
		t.Fatalf("ordering broke: %+v", c)
	}
	// Freshness gap persists in both regimes.
	for _, w := range []PandemicWindowMetrics{c.Pre, c.Lockdown} {
		if w.FreshV6 < w.FreshV4+0.2 {
			t.Fatalf("freshness gap missing in window %d-%d: %+v", w.From, w.To, w)
		}
	}
	// Appendix A.5: lifespans slightly LONGER during lockdown (users
	// more stationary) — fresh shares drop or stay level, within a few
	// points.
	if c.Lockdown.FreshV4 > c.Pre.FreshV4+0.05 {
		t.Fatalf("v4 freshness rose under lockdown: %+v", c)
	}
	// /64 spans stable within a few points (Appendix A.4).
	if math.Abs(c.Pre.SingleSlash64Share-c.Lockdown.SingleSlash64Share) > 0.08 {
		t.Fatalf("/64 span share moved too much: %+v", c)
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
