package userv6

// The paper's §8 closes by naming attacker classes it did not study:
// logged-out scraping and account hijacking. This file wires the models
// of both into the public API, with evaluation experiments for each.

import (
	"userv6/internal/abuse"
	"userv6/internal/core"
	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// Scrapers returns a scraper-fleet generator for this sim's world,
// scaled to the population.
func (s *Sim) Scrapers() *abuse.ScraperGen {
	cfg := abuse.DefaultScraperConfig()
	cfg.Seed = s.Scenario.Seed
	cfg.Bots = int(float64(cfg.Bots) * s.Scenario.Scale())
	if cfg.Bots < 12 {
		cfg.Bots = 12
	}
	return abuse.NewScraperGen(s.World, cfg)
}

// Hijacks returns an account-hijacking generator over this sim's
// population.
func (s *Sim) Hijacks() *abuse.HijackGen {
	cfg := abuse.DefaultHijackConfig()
	cfg.Seed = s.Scenario.Seed
	return abuse.NewHijackGen(s.World, s.Pop, cfg)
}

// ScraperDefenseResult evaluates request-rate limits against scrapers at
// one granularity and budget.
type ScraperDefenseResult struct {
	Name              string
	Length            int
	CapPerDay         uint64
	BenignLossShare   float64
	ScraperBlockShare float64
}

// ScraperDefense runs logged-out request-rate limiting over one analysis
// day with benign traffic plus the scraper fleet, at /128 and /64 for
// each budget. Scrapers hop IIDs inside their /64, so per-address caps
// leak most of their volume; the /64 limiter (whose budget is 10x the
// per-address budget, since whole households and sites share a /64)
// catches what hopping hides.
func (s *Sim) ScraperDefense(caps []uint64) []ScraperDefenseResult {
	day := simtime.AnalysisWeekStart
	grans := []struct {
		name   string
		length int
		mult   uint64
	}{{"/128", 128, 1}, {"/64", 64, 10}}

	limiters := make([]*core.RequestRateLimit, 0, len(grans)*len(caps))
	var results []ScraperDefenseResult
	for _, g := range grans {
		for _, c := range caps {
			budget := c * g.mult
			limiters = append(limiters, core.NewRequestRateLimit(netaddr.IPv6, g.length, budget))
			results = append(results, ScraperDefenseResult{Name: g.name, Length: g.length, CapPerDay: budget})
		}
	}
	feed := func(o telemetry.Observation) {
		// The §7.2 carve-out: heavily populated gateway addresses are
		// predictable from their structured IIDs, so the rate limiter
		// exempts them (they get a dedicated policy) rather than
		// throttling hundreds of legitimate users behind one address.
		if netaddr.IsStructuredIID(o.Addr) {
			return
		}
		for _, l := range limiters {
			l.Observe(o)
		}
	}
	s.Benign.GenerateDay(day, feed)
	s.Scrapers().GenerateDay(day, feed)
	for i, l := range limiters {
		results[i].BenignLossShare = l.BenignLossShare()
		results[i].ScraperBlockShare = l.AbusiveBlockShare()
	}
	return results
}

// HijackDetectionResult evaluates the IP-novelty hijack detector.
type HijackDetectionResult struct {
	Victims, Detected  int
	Recall             float64
	FalseAlarms, Users int
	FalseAlarmShare    float64
}

// DetectHijacks runs a simple IP-novelty detector over the full study
// window: flag an account when it appears on a hosting/proxy-network
// address after having been seen only on access networks — the paper's
// suggested use of user-level IP features for compromise detection.
func (s *Sim) DetectHijacks() HijackDetectionResult {
	hijacks := s.Hijacks()
	hosting := make(map[netmodel.ASN]bool)
	for _, n := range s.World.Hosting {
		hosting[n.ASN] = true
	}
	for _, n := range s.World.Proxies {
		hosting[n.ASN] = true
	}

	// Pass: accumulate per-user "seen on access network" then flag on a
	// hosting appearance. Stream day by day, benign first (so a victim
	// has history before the compromise fires, as in reality).
	established := make(map[uint64]bool)
	flagged := make(map[uint64]bool)
	observe := func(o telemetry.Observation) {
		if hosting[o.ASN] {
			if established[o.UserID] && !flagged[o.UserID] {
				flagged[o.UserID] = true
			}
			return
		}
		established[o.UserID] = true
	}
	for d := simtime.Day(0); d < simtime.StudyDays; d++ {
		s.Benign.GenerateDay(d, observe)
		hijacks.GenerateDay(d, observe)
	}

	victims := hijacks.Victims()
	victimSet := make(map[uint64]bool, len(victims))
	for _, v := range victims {
		victimSet[v.UserID] = true
	}
	var r HijackDetectionResult
	r.Victims = len(victims)
	r.Users = len(established)
	for uid := range flagged {
		if victimSet[uid] {
			r.Detected++
		} else {
			r.FalseAlarms++
		}
	}
	if r.Victims > 0 {
		r.Recall = float64(r.Detected) / float64(r.Victims)
	}
	if r.Users > 0 {
		r.FalseAlarmShare = float64(r.FalseAlarms) / float64(r.Users)
	}
	return r
}
