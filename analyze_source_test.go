package userv6

// Parity matrix for the source/plan/execute stack: every source shape
// (merged file, manifest, bare part list) under every execution mode,
// strict and tolerant, must produce analyzer state identical to the
// sequential replay of the merged file — and analyzing a manifest
// directly must account coverage exactly like merging it first.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"userv6/internal/core"
	"userv6/internal/dataset"
	"userv6/internal/telemetry"
)

// exportShardedWeek writes a 4-shard analysis-week export and returns
// the directory, the manifest, and a strict merge of it.
func exportShardedWeek(t *testing.T, sim *Sim, users int) (dir, merged string, man *dataset.Manifest) {
	t.Helper()
	from, to := AnalysisWeek()
	dir = t.TempDir()
	meta := dataset.Meta{Seed: 1, Users: users, FromDay: int(from), ToDay: int(to), Sample: "all"}
	man, err := sim.ExportShardedCtx(context.Background(), dir, 4, meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	merged = filepath.Join(t.TempDir(), "merged.uv6")
	if _, _, err := dataset.MergeManifest(merged, filepath.Join(dir, dataset.ManifestName), &dataset.MergeOptions{Strict: true}); err != nil {
		t.Fatal(err)
	}
	return dir, merged, man
}

func sequentialBaseline(t *testing.T, path string) analyzeSet {
	t.Helper()
	base := newAnalyzeSet()
	r, err := dataset.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.ForEach(base.set.Emit()); err != nil {
		t.Fatal(err)
	}
	return base
}

// TestAnalyzeSourceParityMatrix sweeps source {file, manifest, parts} ×
// mode {sequential, pipeline, fused, unordered} × {strict, tolerant}
// against the merged-file sequential baseline. Inputs are intact here;
// damage is TestAnalyzeManifestTolerantCorruptPart's job.
func TestAnalyzeSourceParityMatrix(t *testing.T) {
	users := fusedTestUsers()
	sim := NewSim(DefaultScenario(users))
	dir, merged, man := exportShardedWeek(t, sim, users)
	base := sequentialBaseline(t, merged)

	partPaths := make([]string, len(man.Parts))
	for i, p := range man.Parts {
		partPaths[i] = filepath.Join(dir, p.Name)
	}
	sources := []struct {
		name string
		open func() (dataset.Source, error)
	}{
		{"file", func() (dataset.Source, error) { return dataset.NewFileSource(merged) }},
		{"manifest", func() (dataset.Source, error) { return dataset.OpenManifestSource(dir) }},
		{"parts", func() (dataset.Source, error) { return dataset.NewPartsSource(partPaths...) }},
	}
	modes := []struct {
		name string
		req  core.ModeRequest
	}{
		{"seq", core.RequestSequential},
		{"pipeline", core.RequestPipeline},
		{"fused", core.RequestFused},
		{"unordered", core.RequestUnordered},
	}

	for _, srcCase := range sources {
		for _, mode := range modes {
			for _, tolerant := range []bool{false, true} {
				label := fmt.Sprintf("%s/%s/tolerant=%v", srcCase.name, mode.name, tolerant)
				t.Run(label, func(t *testing.T) {
					src, err := srcCase.open()
					if err != nil {
						t.Fatal(err)
					}
					got := newAnalyzeSet()
					rep, err := AnalyzeSource(context.Background(), src, got.set,
						AnalyzeOptions{Workers: 4, Tolerant: tolerant, Mode: mode.req})
					if err != nil {
						t.Fatal(err)
					}
					got.assertEqual(t, base, label)
					if rep.Records != man.TotalRecords() {
						t.Fatalf("%s: coverage %d records, want %d", label, rep.Records, man.TotalRecords())
					}
					if rep.CorruptBlocks != 0 || rep.Blocks == 0 {
						t.Fatalf("%s: coverage %+v, want intact blocks only", label, rep)
					}
					// Merging re-packs records into new block boundaries, so
					// block counts are only comparable for part-shaped sources.
					if srcCase.name != "file" && rep.Blocks != int(man.TotalBlocks()) {
						t.Fatalf("%s: coverage %d blocks, manifest declares %d", label, rep.Blocks, man.TotalBlocks())
					}
				})
			}
		}
	}
}

// Direct manifest analysis must account coverage exactly like a
// tolerant merge: a corrupt part costs the same blocks/records in the
// aggregated report as in the merge's per-part coverage rows, and the
// analyzer state must match replaying the tolerant-merged output.
func TestAnalyzeManifestTolerantCorruptPart(t *testing.T) {
	users := fusedTestUsers()
	sim := NewSim(DefaultScenario(users))
	dir, _, man := exportShardedWeek(t, sim, users)

	// Corrupt one payload byte in block 0 of the first part.
	p0 := filepath.Join(dir, man.Parts[0].Name)
	raw, err := os.ReadFile(p0)
	if err != nil {
		t.Fatal(err)
	}
	raw[256+4+16+2000] ^= 0x20
	if err := os.WriteFile(p0, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	mergedBad := filepath.Join(t.TempDir(), "merged-bad.uv6")
	_, mrep, err := dataset.MergeManifest(mergedBad, filepath.Join(dir, dataset.ManifestName), nil)
	if err != nil {
		t.Fatal(err)
	}
	if mrep.Complete {
		t.Fatal("merge of a corrupted part reported complete")
	}
	base := sequentialBaseline(t, mergedBad)

	var wantBlocks, wantCorrupt int
	var wantRecords uint64
	for _, cov := range mrep.Parts {
		wantBlocks += cov.BlocksRecovered
		wantCorrupt += cov.CorruptBlocks
		wantRecords += cov.Records
	}

	for _, mode := range []core.ModeRequest{core.RequestSequential, core.RequestPipeline, core.RequestFused, core.RequestUnordered} {
		src, err := dataset.OpenManifestSource(dir)
		if err != nil {
			t.Fatal(err)
		}
		got := newAnalyzeSet()
		rep, err := AnalyzeSource(context.Background(), src, got.set,
			AnalyzeOptions{Workers: 4, Tolerant: true, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		got.assertEqual(t, base, mode.String())
		if rep.Blocks != wantBlocks || rep.CorruptBlocks != wantCorrupt || rep.Records != wantRecords {
			t.Fatalf("%s: aggregated coverage %+v, want %d blocks / %d corrupt / %d records (merge per-part sums)",
				mode, rep, wantBlocks, wantCorrupt, wantRecords)
		}
	}

	// Strict mode must refuse up front: the part's bytes no longer match
	// the manifest checksum, and nothing should be analyzed or folded.
	src, err := dataset.OpenManifestSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	strict := newAnalyzeSet()
	_, err = AnalyzeSource(context.Background(), src, strict.set,
		AnalyzeOptions{Workers: 4, Mode: core.RequestFused})
	if err == nil || !strings.Contains(err.Error(), man.Parts[0].Name) {
		t.Fatalf("strict analysis of corrupted part: err = %v, want checksum mismatch naming %s", err, man.Parts[0].Name)
	}
	if strict.uc.Users() != 0 {
		t.Fatalf("primaries touched after strict refusal: %d users", strict.uc.Users())
	}
}

// The aggregated strict coverage of a manifest must carry the same
// per-codec block counts as verifying the parts individually — the
// detail `verify` prints across parts.
func TestAnalyzeManifestAggregatesCodecBlocks(t *testing.T) {
	users := 600
	sim := NewSim(DefaultScenario(users))
	from, to := AnalysisWeek()
	dir := t.TempDir()
	meta := dataset.Meta{Seed: 3, Users: users, FromDay: int(from), ToDay: int(to), Sample: "all", Codec: "auto"}
	man, err := sim.ExportShardedCtx(context.Background(), dir, 3, meta, nil)
	if err != nil {
		t.Fatal(err)
	}

	want := map[telemetry.CodecID]uint64{}
	for _, p := range man.Parts {
		scan, err := dataset.Scan(filepath.Join(dir, p.Name))
		if err != nil {
			t.Fatal(err)
		}
		for id, n := range scan.Stream.CodecBlocks {
			want[id] += n
		}
	}

	src, err := dataset.OpenManifestSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := newAnalyzeSet()
	rep, err := AnalyzeSource(context.Background(), src, got.set, AnalyzeOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CodecBlocks) == 0 {
		t.Fatal("aggregated report carries no per-codec block counts")
	}
	for id, n := range want {
		if rep.CodecBlocks[id] != n {
			t.Fatalf("codec %s: aggregated %d blocks, parts hold %d", id, rep.CodecBlocks[id], n)
		}
	}
}

// Sim.Analyze and the AnalyzeDataset* wrappers are the same machinery;
// spot-check the Sim entry point over a manifest.
func TestSimAnalyzeManifest(t *testing.T) {
	users := 500
	sim := NewSim(DefaultScenario(users))
	dir, merged, _ := exportShardedWeek(t, sim, users)
	base := sequentialBaseline(t, merged)

	src, err := dataset.OpenSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.Kind() != "manifest" {
		t.Fatalf("OpenSource(%q) resolved to %s, want manifest", dir, src.Kind())
	}
	got := newAnalyzeSet()
	if _, err := sim.Analyze(context.Background(), src, got.set, AnalyzeOptions{}); err != nil {
		t.Fatal(err)
	}
	got.assertEqual(t, base, "Sim.Analyze(manifest)")
}
