package userv6

import "testing"

func TestScraperDefenseShapes(t *testing.T) {
	sim := testSim(t)
	results := sim.ScraperDefense([]uint64{200, 1000})
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	get := func(name string, baseCap uint64) ScraperDefenseResult {
		for _, r := range results {
			if r.Name == name && (r.CapPerDay == baseCap || r.CapPerDay == baseCap*10) {
				return r
			}
		}
		t.Fatalf("missing %s cap %d", name, baseCap)
		return ScraperDefenseResult{}
	}
	for _, r := range results {
		if r.BenignLossShare < 0 || r.BenignLossShare > 1 ||
			r.ScraperBlockShare < 0 || r.ScraperBlockShare > 1 {
			t.Fatalf("shares out of range: %+v", r)
		}
		// Even tight IPv6 budgets cost only a sliver of benign traffic
		// (the cost is heavy individual users, not shared addresses).
		if r.BenignLossShare > 0.12 {
			t.Fatalf("benign loss %v at %+v", r.BenignLossShare, r)
		}
	}
	// At the tight budget, the /64 limiter separates scrapers from
	// benign users decisively; the /128 limiter cannot (IID hopping) —
	// which is the point of the experiment.
	if r := get("/64", 200); r.ScraperBlockShare < r.BenignLossShare*3 {
		t.Fatalf("tight /64 limiter fails to separate: %+v", r)
	}
	if get("/64", 200).ScraperBlockShare < 0.5 {
		t.Fatalf("tight /64 cap too weak: %+v", get("/64", 200))
	}
	// At a loose per-ADDRESS budget, IID-hopping scrapers escape most
	// limiting — the finding that pushes limits to /64 granularity.
	if get("/128", 1000).ScraperBlockShare > get("/64", 1000).ScraperBlockShare {
		t.Fatalf("loose /128 cap beat the /64 cap: %+v", results)
	}
	// A generous budget is nearly free for benign users.
	if get("/64", 1000).BenignLossShare > 0.02 {
		t.Fatalf("loose cap benign loss = %v", get("/64", 1000).BenignLossShare)
	}
	// /64 limits catch at least as much scraper volume as /128 limits
	// at the same budget (IID hopping defeats per-address caps).
	if get("/64", 200).ScraperBlockShare < get("/128", 200).ScraperBlockShare {
		t.Fatalf("/64 cap blocks less than /128: %+v", results)
	}
	// The scraper fleet loses most of its volume to a tight /64 cap.
	if get("/64", 200).ScraperBlockShare < 0.5 {
		t.Fatalf("scrapers barely limited: %+v", get("/64", 200))
	}
	// A looser budget blocks no more than a tighter one.
	if get("/64", 1000).ScraperBlockShare > get("/64", 200).ScraperBlockShare+1e-9 {
		t.Fatal("looser cap blocked more")
	}
}

func TestDetectHijacksShapes(t *testing.T) {
	sim := testSim(t)
	r := sim.DetectHijacks()
	if r.Victims == 0 {
		t.Fatal("no victims synthesized")
	}
	// The novelty detector catches the bulk of compromises...
	if r.Recall < 0.6 {
		t.Fatalf("hijack recall = %v (%d of %d)", r.Recall, r.Detected, r.Victims)
	}
	// ...at a false-alarm rate bounded by the benign VPN/hosting user
	// share (those users legitimately touch proxy space).
	if r.FalseAlarmShare > 0.08 {
		t.Fatalf("false alarms = %v of users", r.FalseAlarmShare)
	}
	if r.Detected > r.Victims {
		t.Fatal("detected more victims than exist")
	}
}
