package userv6

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"userv6/internal/dataset"
	"userv6/internal/telemetry"
)

// writeSingle runs the canonical single-writer export and returns the
// file bytes plus every observation in emission order.
func writeSingle(t *testing.T, sim *Sim, path string, meta dataset.Meta) ([]byte, []telemetry.Observation) {
	t.Helper()
	w, err := dataset.Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	var obs []telemetry.Observation
	emit, errp := w.Emit()
	from, to := meta.Window()
	if err := sim.GenerateCtx(context.Background(), from, to, func(o telemetry.Observation) {
		obs = append(obs, o)
		emit(o)
	}); err != nil {
		t.Fatal(err)
	}
	if *errp != nil {
		t.Fatal(*errp)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw, obs
}

// TestShardedMergeByteIdentical: the acceptance bar for sharded export
// — four shards merged through their manifest reproduce the
// single-writer file byte for byte.
func TestShardedMergeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	sim := NewSim(DefaultScenario(1_200).WithSeed(21))
	from, to := AnalysisWeek()
	meta := dataset.Meta{
		Seed: 21, Users: 1_200, FromDay: int(from), ToDay: int(to), Sample: "all",
	}

	want, obs := writeSingle(t, sim, filepath.Join(dir, "single.uv6"), meta)

	shardDir := filepath.Join(dir, "shards")
	man, err := sim.ExportShardedCtx(context.Background(), shardDir, 4, meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	if man.Shards != 4 || len(man.Parts) != 5 {
		t.Fatalf("manifest: %d shards, %d parts", man.Shards, len(man.Parts))
	}
	if man.ConfigHash != dataset.ConfigHash(meta) {
		t.Fatalf("manifest config hash %q", man.ConfigHash)
	}
	// Benign parts partition [0, users) contiguously; the abusive
	// stream rides in one trailing part.
	next := 0
	for i, p := range man.Parts[:4] {
		if p.Kind != dataset.PartKindBenign || p.Name != PartName(i) {
			t.Fatalf("part %d = %+v", i, p)
		}
		if p.UserLo != next || p.UserHi <= p.UserLo {
			t.Fatalf("part %d range [%d,%d), want lo %d", i, p.UserLo, p.UserHi, next)
		}
		next = p.UserHi
	}
	if next != 1_200 {
		t.Fatalf("benign parts cover [0,%d), want [0,1200)", next)
	}
	if last := man.Parts[4]; last.Kind != dataset.PartKindAbusive {
		t.Fatalf("trailing part = %+v", last)
	}
	if man.TotalRecords() != uint64(len(obs)) {
		t.Fatalf("manifest totals %d records, single writer emitted %d", man.TotalRecords(), len(obs))
	}

	merged := filepath.Join(dir, "merged.uv6")
	_, rep, err := dataset.MergeManifest(merged, filepath.Join(shardDir, dataset.ManifestName), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Records != uint64(len(obs)) {
		t.Fatalf("merge report: complete=%v records=%d", rep.Complete, rep.Records)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged sharded export differs from single-writer run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestShardedMergeReportsDamagedPart: a flipped byte in one part file
// fails that part's manifest checksum and surfaces as partial coverage
// — the merge still recovers every intact block.
func TestShardedMergeReportsDamagedPart(t *testing.T) {
	dir := t.TempDir()
	sim := NewSim(DefaultScenario(900).WithSeed(4))
	from, to := AnalysisWeek()
	meta := dataset.Meta{
		Seed: 4, Users: 900, FromDay: int(from), ToDay: int(to), Sample: "all",
	}
	man, err := sim.ExportShardedCtx(context.Background(), dir, 3, meta, nil)
	if err != nil {
		t.Fatal(err)
	}

	victim := filepath.Join(dir, man.Parts[1].Name)
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-20] ^= 0x01 // inside the final block's payload
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rep, err := dataset.MergeManifest(filepath.Join(dir, "merged.uv6"), filepath.Join(dir, dataset.ManifestName), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Fatal("merge with a damaged part reported complete")
	}
	cov := rep.Parts[1]
	if cov.ChecksumOK {
		t.Fatal("damaged part passed its manifest checksum")
	}
	if cov.CorruptBlocks == 0 || uint64(cov.BlocksRecovered+cov.CorruptBlocks) != man.Parts[1].Blocks {
		t.Fatalf("damaged part coverage = %+v (manifest: %d blocks)", cov, man.Parts[1].Blocks)
	}
	for _, i := range []int{0, 2, 3} {
		if !rep.Parts[i].Intact() {
			t.Fatalf("intact part %d coverage = %+v", i, rep.Parts[i])
		}
	}
}

// TestResumeByteIdentical: resuming from a finalized partial dataset —
// re-emitting the verified prefix and restarting generation at the
// derived frontier — reproduces the uninterrupted run byte for byte,
// both mid-benign and mid-abusive.
func TestResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	sim := NewSim(DefaultScenario(600).WithSeed(9))
	from, to := AnalysisWeek()
	meta := dataset.Meta{
		Seed: 9, Users: 600, FromDay: int(from), ToDay: int(to), Sample: "all",
	}
	want, obs := writeSingle(t, sim, filepath.Join(dir, "full.uv6"), meta)

	benign := 0
	for _, o := range obs {
		if !o.Abusive {
			benign++
		}
	}
	if benign == len(obs) {
		t.Fatal("scenario produced no abusive records; resume test needs both phases")
	}

	cuts := map[string]int{
		"mid-benign":  benign * 2 / 5,
		"mid-abusive": benign + (len(obs)-benign)/2,
	}
	for name, cut := range cuts {
		t.Run(name, func(t *testing.T) {
			// An interrupted run finalizes whatever it has: a valid,
			// complete-framed dataset holding a prefix of the stream.
			partial := filepath.Join(dir, name+".uv6")
			w, err := dataset.Create(partial, meta)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range obs[:cut] {
				if err := w.Write(o); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			gotMeta, prefix, err := dataset.LoadResumePrefix(partial)
			if err != nil {
				t.Fatal(err)
			}
			if gotMeta.Seed != meta.Seed || gotMeta.Users != meta.Users {
				t.Fatalf("resume meta = %+v", gotMeta)
			}
			front, keep := dataset.DeriveFrontier(prefix)
			if front.Restart {
				t.Fatalf("frontier = %+v from %d-record prefix", front, len(prefix))
			}

			resumed := filepath.Join(dir, name+"-resumed.uv6")
			rw, err := dataset.Create(resumed, dataset.Meta{
				Seed: gotMeta.Seed, Users: gotMeta.Users,
				FromDay: gotMeta.FromDay, ToDay: gotMeta.ToDay, Sample: gotMeta.Sample,
			})
			if err != nil {
				t.Fatal(err)
			}
			emit, errp := rw.Emit()
			for _, o := range prefix[:keep] {
				emit(o)
			}
			rsim := NewSim(DefaultScenario(gotMeta.Users).WithSeed(gotMeta.Seed))
			if front.BenignDone {
				rsim.Abusive.Generate(from, to, emit)
			} else {
				idx := rsim.UserIndex(front.UserID)
				if idx < 0 {
					t.Fatalf("frontier user %d not in population", front.UserID)
				}
				if err := rsim.GenerateResumeCtx(context.Background(), idx, front.Day, from, to, emit); err != nil {
					t.Fatal(err)
				}
			}
			if *errp != nil {
				t.Fatal(*errp)
			}
			if err := rw.Close(); err != nil {
				t.Fatal(err)
			}

			got, err := os.ReadFile(resumed)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("resumed run differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
			}
		})
	}
}
