package userv6

import (
	"math"
	"testing"
)

func TestDefaultScenario(t *testing.T) {
	s := DefaultScenario(0)
	if s.Users != ReferenceUsers {
		t.Fatalf("users = %d", s.Users)
	}
	if s.Scale() != 1 {
		t.Fatalf("scale = %v", s.Scale())
	}
	s = DefaultScenario(20_000)
	if math.Abs(s.Scale()-0.1) > 1e-12 {
		t.Fatalf("scale = %v", s.Scale())
	}
	if s.Population.StaticIIDShare <= 0 || s.Abuse.AccountsPerDay <= 0 {
		t.Fatal("default sub-configs not populated")
	}
}

func TestWithSeed(t *testing.T) {
	s := DefaultScenario(100).WithSeed(99)
	if s.Seed != 99 {
		t.Fatalf("seed = %d", s.Seed)
	}
	// The original is unchanged (value semantics).
	base := DefaultScenario(100)
	_ = base.WithSeed(7)
	if base.Seed != 1 {
		t.Fatal("WithSeed mutated the receiver")
	}
}

func TestNewSimScalesAbuse(t *testing.T) {
	small := NewSim(DefaultScenario(2_000))
	big := NewSim(DefaultScenario(20_000))
	if small.Abusive.Cfg.AccountsPerDay >= big.Abusive.Cfg.AccountsPerDay {
		t.Fatalf("abuse volume not scaled: %d vs %d",
			small.Abusive.Cfg.AccountsPerDay, big.Abusive.Cfg.AccountsPerDay)
	}
	if small.Abusive.Cfg.AccountsPerDay < 8 {
		t.Fatal("abuse floor not applied")
	}
	// Unscaled mode preserves the configured volume.
	sc := DefaultScenario(2_000)
	sc.AbuseUnscaled = true
	raw := NewSim(sc)
	if raw.Abusive.Cfg.AccountsPerDay != sc.Abuse.AccountsPerDay {
		t.Fatalf("unscaled abuse volume changed: %d", raw.Abusive.Cfg.AccountsPerDay)
	}
}

func TestNewSimPopulationSize(t *testing.T) {
	sim := NewSim(DefaultScenario(1234))
	if len(sim.Pop.Users) != 1234 {
		t.Fatalf("population = %d", len(sim.Pop.Users))
	}
	if sim.World.Scale() <= 0 {
		t.Fatal("world scale missing")
	}
}

func TestAnalysisWeek(t *testing.T) {
	from, to := AnalysisWeek()
	if to-from != 6 {
		t.Fatalf("analysis week spans %d days", to-from+1)
	}
}

func TestASNOfExposed(t *testing.T) {
	sim := NewSim(DefaultScenario(500))
	n := sim.World.CountryByCode("US").ResV6
	addr := n.V4AddrAt(1, 0, 0)
	if sim.ASNOf(addr) != n.ASN {
		t.Fatal("ASNOf mismatch")
	}
}
