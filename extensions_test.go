package userv6

import (
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
)

func TestBlocklistSweepShapes(t *testing.T) {
	sim := testSim(t)
	results := sim.BlocklistSweep(DefaultBlocklistPolicies())
	if len(results) != len(DefaultBlocklistPolicies()) {
		t.Fatalf("results = %d", len(results))
	}
	byName := make(map[string]BlocklistSweepResult, len(results))
	for _, r := range results {
		if r.TPR < 0 || r.TPR > 1 || r.FPR < 0 || r.FPR > 1 {
			t.Fatalf("%s rates out of range: %+v", r.Policy.Name, r)
		}
		byName[r.Policy.Name] = r
	}
	// Longer TTLs never reduce recall at the same granularity and
	// threshold.
	if byName["/64 t=10% ttl=3"].TPR < byName["/64 t=10% ttl=1"].TPR {
		t.Fatalf("TTL-3 recall %.3f below TTL-1 %.3f",
			byName["/64 t=10% ttl=3"].TPR, byName["/64 t=10% ttl=1"].TPR)
	}
	// Stricter thresholds never raise FPR.
	if byName["/64 t=50% ttl=3"].FPR > byName["/64 t=10% ttl=3"].FPR {
		t.Fatal("threshold 50% has more collateral than 10%")
	}
	// /64 catches at least as much as /128.
	if byName["/64 t=10% ttl=3"].TPR < byName["/128 t=10% ttl=3"].TPR {
		t.Fatal("/64 recall below /128")
	}
}

func TestRateLimitSweepShapes(t *testing.T) {
	sim := testSim(t)
	caps := []int{1, 3, 10, 100}
	v6 := sim.RateLimitSweep(netaddr.IPv6, 128, caps)
	v4 := sim.RateLimitSweep(netaddr.IPv4, 32, caps)
	if len(v6) != len(caps) || len(v4) != len(caps) {
		t.Fatal("sweep sizes wrong")
	}
	// Throttling decreases monotonically with the cap.
	for i := 1; i < len(caps); i++ {
		if v6[i].BenignShare > v6[i-1].BenignShare+1e-9 {
			t.Fatalf("v6 benign throttling not monotone: %+v", v6)
		}
		if v4[i].BenignShare > v4[i-1].BenignShare+1e-9 {
			t.Fatalf("v4 benign throttling not monotone: %+v", v4)
		}
	}
	// The paper's rate-limiting claim: a tight per-address cap hurts
	// far fewer benign users on IPv6 than on IPv4.
	if v6[1].BenignShare >= v4[1].BenignShare {
		t.Fatalf("cap=3 benign throttling: v6 %.4f >= v4 %.4f", v6[1].BenignShare, v4[1].BenignShare)
	}
	// At cap 3, v6 benign collateral is tiny (paper: <0.2% of addresses
	// exceed 3 users/day).
	if v6[1].BenignShare > 0.02 {
		t.Fatalf("v6 cap-3 benign throttling = %.4f", v6[1].BenignShare)
	}
}

func TestSegmentsShapes(t *testing.T) {
	sim := testSim(t)
	reports := sim.Segments()
	byKind := make(map[netmodel.Kind]bool)
	var mobile, residential, enterprise *float64
	for i := range reports {
		r := reports[i]
		byKind[r.Kind] = true
		if r.Users <= 0 {
			t.Fatalf("segment %v has no users", r.Kind)
		}
		if r.V6UserShare < 0 || r.V6UserShare > 1 {
			t.Fatalf("segment %v share %v", r.Kind, r.V6UserShare)
		}
		switch r.Kind {
		case netmodel.Mobile:
			mobile = &reports[i].V6UserShare
		case netmodel.Residential:
			residential = &reports[i].V6UserShare
		case netmodel.Enterprise:
			enterprise = &reports[i].V6UserShare
		}
	}
	for _, want := range []netmodel.Kind{netmodel.Mobile, netmodel.Residential, netmodel.Enterprise} {
		if !byKind[want] {
			t.Fatalf("segment %v missing", want)
		}
	}
	// The appendix-B premise: enterprise < residential and mobile in
	// IPv6 deployment.
	if enterprise == nil || residential == nil || mobile == nil {
		t.Fatal("missing segment shares")
	}
	if *enterprise >= *residential || *enterprise >= *mobile {
		t.Fatalf("enterprise v6 share %.3f should trail residential %.3f and mobile %.3f",
			*enterprise, *residential, *mobile)
	}
}

func TestSketchedOutliersAgree(t *testing.T) {
	sim := testSim(t)
	r := sim.SketchedOutliers(128)
	if r.HeavyRecall < 0.7 {
		t.Fatalf("heavy recall = %v", r.HeavyRecall)
	}
	if r.TopError > 0.25 {
		t.Fatalf("top estimate error = %v", r.TopError)
	}
	if len(r.Top) == 0 {
		t.Fatal("no sketched top prefixes")
	}
	// Cardinality estimate within HLL error of the exact count.
	ratio := r.PrefixEstimate / float64(r.ExactPrefixes)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("prefix cardinality ratio = %v (est %v vs exact %d)", ratio, r.PrefixEstimate, r.ExactPrefixes)
	}
}

func TestTTLRecallCurveDecays(t *testing.T) {
	sim := testSim(t)
	v6 := sim.TTLRecallCurve(netaddr.IPv6, 128, 4)
	v64 := sim.TTLRecallCurve(netaddr.IPv6, 64, 4)
	v4 := sim.TTLRecallCurve(netaddr.IPv4, 32, 4)
	if len(v6) != 4 || len(v64) != 4 || len(v4) != 4 {
		t.Fatal("curve lengths wrong")
	}
	// /64 indicators outlast /128 indicators on day 1.
	if v64[0] <= v6[0] {
		t.Fatalf("day-1 recall: /64 %.3f <= /128 %.3f", v64[0], v6[0])
	}
	// IPv4 indicators hold the most value (paper: v4 addresses recur).
	if v4[0] <= v64[0] {
		t.Fatalf("day-1 recall: v4 %.3f <= /64 %.3f", v4[0], v64[0])
	}
	// Decay: day-4 v6 recall below day-1.
	if v6[3] > v6[0]+1e-9 {
		t.Fatalf("/128 recall grew with age: %v", v6)
	}
}

func TestChurnReasonsShapes(t *testing.T) {
	sim := testSim(t)
	b := sim.ChurnReasons()
	if b.Total == 0 {
		t.Fatal("no churn attributed")
	}
	// Privacy rotation dominates new-address churn (the paper's §5.1
	// explanation for why users accumulate v6 addresses).
	if b.Share(0) < 0.4 {
		t.Fatalf("IID rotation share = %v, want dominant: %+v", b.Share(0), b)
	}
	// Every cause occurs.
	if b.SubnetMove == 0 || b.NetworkSwitch == 0 {
		t.Fatalf("missing causes: %+v", b)
	}
	shares := b.Share(0) + b.Share(1) + b.Share(2)
	if shares < 0.999 || shares > 1.001 {
		t.Fatalf("shares sum to %v", shares)
	}
}
