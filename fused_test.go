package userv6

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"userv6/internal/core"
	"userv6/internal/dataset"
	"userv6/internal/telemetry"
)

// fusedTestUsers scales the generated population down under -short so
// the -race CI lane stays fast while the full sweep keeps real volume.
func fusedTestUsers() int {
	if testing.Short() {
		return 400
	}
	return 1_500
}

// writeAnalyzeDataset generates one analysis week of telemetry into a
// dataset file and returns its path.
func writeAnalyzeDataset(t *testing.T, sim *Sim, users int) string {
	t.Helper()
	from, to := AnalysisWeek()
	path := filepath.Join(t.TempDir(), "w.uv6")
	w, err := dataset.Create(path, dataset.Meta{Seed: 1, Users: users, FromDay: int(from), ToDay: int(to), Sample: "all"})
	if err != nil {
		t.Fatal(err)
	}
	emit, errp := w.Emit()
	sim.Generate(from, to, emit)
	if *errp != nil {
		t.Fatal(*errp)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// The fused path — worker-local replicas fed straight from the decode
// pool, folded once — must reproduce a sequential replay exactly for
// every analyzer in the (now fully commutative) default set, at any
// worker count, in strict and tolerant mode. Run under -race this is
// also the data-race proof for the whole fused pipeline.
func TestAnalyzeDatasetFusedMatchesSequential(t *testing.T) {
	users := fusedTestUsers()
	sim := NewSim(DefaultScenario(users))
	path := writeAnalyzeDataset(t, sim, users)

	seq := newAnalyzeSet()
	if !seq.set.Commutative() {
		t.Fatal("default analyzer set must be commutative")
	}
	r, err := dataset.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ForEach(seq.set.Emit()); err != nil {
		t.Fatal(err)
	}
	r.Close()

	for _, workers := range []int{1, 4} {
		fused := newAnalyzeSet()
		rep, err := sim.AnalyzeDatasetFused(context.Background(), path, workers, fused.set, false)
		if err != nil {
			t.Fatal(err)
		}
		fused.assertEqual(t, seq, "fused strict")
		if rep.Records == 0 || rep.CorruptBlocks != 0 {
			t.Fatalf("workers=%d: strict report %+v", workers, rep)
		}
	}

	// Tolerant fused on a damaged copy must match dataset.Salvage, both
	// in analyzer state and coverage accounting.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[256+4+16+2000] ^= 0x20 // corrupt block 0
	bad := filepath.Join(t.TempDir(), "bad.uv6")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	tseq := newAnalyzeSet()
	srep, err := dataset.Salvage(bad, tseq.set.Emit())
	if err != nil {
		t.Fatal(err)
	}
	tfused := newAnalyzeSet()
	frep, err := sim.AnalyzeDatasetFused(context.Background(), bad, 4, tfused.set, true)
	if err != nil {
		t.Fatal(err)
	}
	tfused.assertEqual(t, tseq, "fused tolerant")
	if !frep.Equal(srep.Stream) {
		t.Fatalf("tolerant coverage %+v, want %+v", frep, srep.Stream)
	}
}

// AnalyzeDatasetUnordered (completion-order delivery into a replica
// pool) must also reproduce the sequential replay on the default set.
func TestAnalyzeDatasetUnorderedMatchesSequential(t *testing.T) {
	users := fusedTestUsers()
	sim := NewSim(DefaultScenario(users))
	path := writeAnalyzeDataset(t, sim, users)

	seq := newAnalyzeSet()
	r, err := dataset.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ForEach(seq.set.Emit()); err != nil {
		t.Fatal(err)
	}
	r.Close()

	un := newAnalyzeSet()
	rep, err := sim.AnalyzeDatasetUnordered(context.Background(), path, 4, un.set, false)
	if err != nil {
		t.Fatal(err)
	}
	un.assertEqual(t, seq, "unordered")
	if rep.Records == 0 {
		t.Fatalf("unordered report %+v", rep)
	}
}

// orderBound is an analyzer that never declares commutativity; it
// stands in for genuinely order-sensitive accumulation.
type orderBound struct{ last uint64 }

func (o *orderBound) Observe(ob telemetry.Observation) { o.last = ob.UserID }

// A set containing a non-commutative registration must silently fall
// back to the hash-routed pipeline (per-user order preserved), still
// matching the sequential replay; the unordered path must instead
// refuse, naming the offending registration.
func TestAnalyzeDatasetFusedNonCommutativeFallback(t *testing.T) {
	users := fusedTestUsers()
	sim := NewSim(DefaultScenario(users))
	path := writeAnalyzeDataset(t, sim, users)

	seq := newAnalyzeSet()
	core.AddAnalyzer(seq.set, &orderBound{},
		func() *orderBound { return &orderBound{} },
		func(into, from *orderBound) {})
	r, err := dataset.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ForEach(seq.set.Emit()); err != nil {
		t.Fatal(err)
	}
	r.Close()

	mixed := newAnalyzeSet()
	core.AddAnalyzer(mixed.set, &orderBound{},
		func() *orderBound { return &orderBound{} },
		func(into, from *orderBound) {})
	if mixed.set.Commutative() {
		t.Fatal("orderBound registration must veto commutativity")
	}
	if _, err := sim.AnalyzeDatasetFused(context.Background(), path, 4, mixed.set, false); err != nil {
		t.Fatal(err)
	}
	mixed.assertEqual(t, seq, "fused fallback")

	refuse := newAnalyzeSet()
	core.AddAnalyzer(refuse.set, &orderBound{},
		func() *orderBound { return &orderBound{} },
		func(into, from *orderBound) {})
	_, err = sim.AnalyzeDatasetUnordered(context.Background(), path, 4, refuse.set, false)
	if err == nil || !strings.Contains(err.Error(), "*userv6.orderBound") {
		t.Fatalf("unordered on non-commutative set: err = %v, want offender named", err)
	}
}

// bombAnalyzer panics partway into the stream, exercising the fused
// path's worker fault isolation.
type bombAnalyzer struct{ n int }

func (b *bombAnalyzer) Observe(telemetry.Observation) {
	if b.n++; b.n > 100 {
		panic("bomb")
	}
}

// A panic inside a fused worker's analyzer replica must surface as a
// typed *dataset.WorkerPanicError and leave the set's primaries
// unfolded — no partial fold masquerading as a result.
func TestAnalyzeDatasetFusedWorkerPanic(t *testing.T) {
	users := fusedTestUsers()
	sim := NewSim(DefaultScenario(users))
	path := writeAnalyzeDataset(t, sim, users)

	s := newAnalyzeSet()
	core.AddCommutativeAnalyzer(s.set, &bombAnalyzer{},
		func() *bombAnalyzer { return &bombAnalyzer{} },
		func(into, from *bombAnalyzer) {})
	if !s.set.Commutative() {
		t.Fatal("bomb set must stay commutative so the fused path engages")
	}
	_, err := sim.AnalyzeDatasetFused(context.Background(), path, 4, s.set, false)
	var pe *dataset.WorkerPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *dataset.WorkerPanicError, got %v", err)
	}
	if pe.Value != "bomb" {
		t.Fatalf("panic value %v, want bomb", pe.Value)
	}
	if got := s.uc.Users(); got != 0 {
		t.Fatalf("primaries folded after failure: %d users", got)
	}
	if got := s.churn.Breakdown(); got.Total != 0 {
		t.Fatalf("churn primary folded after failure: %+v", got)
	}
}
