package userv6

import (
	"context"

	"userv6/internal/abuse"
	"userv6/internal/netmodel"
	"userv6/internal/population"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// Sim is a materialized simulation: the constructed world, synthesized
// population, and the benign and abusive telemetry generators. A Sim is
// deterministic: two Sims from equal Scenarios produce identical
// telemetry. Sims are safe for concurrent readers once constructed.
type Sim struct {
	Scenario Scenario
	World    *netmodel.World
	Pop      *population.Population
	Benign   *telemetry.Generator
	Abusive  *abuse.Generator
}

// NewSim builds the simulation from a scenario.
func NewSim(sc Scenario) *Sim {
	world := netmodel.BuildWorld(sc.worldConfig())

	pcfg := sc.Population
	pcfg.Seed = sc.Seed
	pcfg.Users = sc.Users
	pop := population.Synthesize(world, pcfg)

	acfg := sc.Abuse
	acfg.Seed = sc.Seed
	if !sc.AbuseUnscaled {
		acfg.AccountsPerDay = int(float64(acfg.AccountsPerDay) * sc.Scale())
		if acfg.AccountsPerDay < 8 {
			acfg.AccountsPerDay = 8
		}
	}

	return &Sim{
		Scenario: sc,
		World:    world,
		Pop:      pop,
		Benign:   telemetry.NewGenerator(pop, sc.Seed),
		Abusive:  abuse.NewGenerator(world, acfg),
	}
}

// Generate streams the merged benign + abusive telemetry for days
// [from, to] inclusive: first benign users, then abusive accounts, both
// in deterministic order.
func (s *Sim) Generate(from, to simtime.Day, emit telemetry.EmitFunc) {
	s.Benign.Generate(from, to, emit)
	s.Abusive.Generate(from, to, emit)
}

// GenerateCtx is Generate with cooperative cancellation: the benign
// stream checks ctx between (user, day) batches; the abusive stream is
// small and runs uninterrupted once started. Returns ctx.Err() when
// cancelled, nil on completion.
func (s *Sim) GenerateCtx(ctx context.Context, from, to simtime.Day, emit telemetry.EmitFunc) error {
	if err := s.Benign.GenerateCtx(ctx, from, to, emit); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.Abusive.Generate(from, to, emit)
	return nil
}

// GenerateDay streams one day of merged telemetry.
func (s *Sim) GenerateDay(day simtime.Day, emit telemetry.EmitFunc) {
	s.Generate(day, day, emit)
}

// AnalysisWeek returns the Apr 13-19 window most analyses run on.
func AnalysisWeek() (from, to simtime.Day) {
	return simtime.AnalysisWeekStart, simtime.AnalysisWeekEnd
}
