package userv6

import (
	"context"

	"userv6/internal/abuse"
	"userv6/internal/netmodel"
	"userv6/internal/population"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// Sim is a materialized simulation: the constructed world, synthesized
// population, and the benign and abusive telemetry generators. A Sim is
// deterministic: two Sims from equal Scenarios produce identical
// telemetry. Sims are safe for concurrent readers once constructed.
type Sim struct {
	Scenario Scenario
	World    *netmodel.World
	Pop      *population.Population
	Benign   *telemetry.Generator
	Abusive  *abuse.Generator
}

// NewSim builds the simulation from a scenario.
func NewSim(sc Scenario) *Sim {
	world := netmodel.BuildWorld(sc.worldConfig())

	pcfg := sc.Population
	pcfg.Seed = sc.Seed
	pcfg.Users = sc.Users
	pop := population.Synthesize(world, pcfg)

	acfg := sc.Abuse
	acfg.Seed = sc.Seed
	if !sc.AbuseUnscaled {
		acfg.AccountsPerDay = int(float64(acfg.AccountsPerDay) * sc.Scale())
		if acfg.AccountsPerDay < 8 {
			acfg.AccountsPerDay = 8
		}
	}

	return &Sim{
		Scenario: sc,
		World:    world,
		Pop:      pop,
		Benign:   telemetry.NewGenerator(pop, sc.Seed),
		Abusive:  abuse.NewGenerator(world, acfg),
	}
}

// Generate streams the merged benign + abusive telemetry for days
// [from, to] inclusive: first benign users, then abusive accounts, both
// in deterministic order.
func (s *Sim) Generate(from, to simtime.Day, emit telemetry.EmitFunc) {
	s.Benign.Generate(from, to, emit)
	s.Abusive.Generate(from, to, emit)
}

// GenerateCtx is Generate with cooperative cancellation: the benign
// stream checks ctx between (user, day) batches; the abusive stream is
// small and runs uninterrupted once started. Returns ctx.Err() when
// cancelled, nil on completion.
func (s *Sim) GenerateCtx(ctx context.Context, from, to simtime.Day, emit telemetry.EmitFunc) error {
	if err := s.Benign.GenerateCtx(ctx, from, to, emit); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.Abusive.Generate(from, to, emit)
	return nil
}

// GenerateResumeCtx continues an interrupted run from a (user, day)
// frontier: benign telemetry restarts at the user with index startUser
// on startDay (then days [from, to] for every later user), followed by
// the full abusive stream. Combined with a re-emitted verified prefix,
// the resumed output is identical to an uninterrupted
// GenerateCtx(ctx, from, to, emit) run — resuming at (0, from) *is*
// that run.
func (s *Sim) GenerateResumeCtx(ctx context.Context, startUser int, startDay, from, to simtime.Day, emit telemetry.EmitFunc) error {
	if err := s.Benign.GenerateFromCtx(ctx, startUser, startDay, from, to, emit); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.Abusive.Generate(from, to, emit)
	return nil
}

// UserIndex maps a benign telemetry UserID back to its population
// index, or -1 when no such user exists (e.g. an abusive account ID).
// Synthesis assigns IDs sequentially, so the common case is O(1); the
// scan is a safety net should that ever change.
func (s *Sim) UserIndex(id uint64) int {
	if id < uint64(len(s.Pop.Users)) && s.Pop.Users[id].ID == id {
		return int(id)
	}
	for i := range s.Pop.Users {
		if s.Pop.Users[i].ID == id {
			return i
		}
	}
	return -1
}

// GenerateDay streams one day of merged telemetry.
func (s *Sim) GenerateDay(day simtime.Day, emit telemetry.EmitFunc) {
	s.Generate(day, day, emit)
}

// AnalysisWeek returns the Apr 13-19 window most analyses run on.
func AnalysisWeek() (from, to simtime.Day) {
	return simtime.AnalysisWeekStart, simtime.AnalysisWeekEnd
}
