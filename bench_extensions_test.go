package userv6

// Benchmarks for the extension experiments and the ablation studies
// DESIGN.md calls out: CGN pool size (drives the paper's v4 actioning
// asymmetry) and detection speed (drives the abusive lifespan skew).

import (
	"testing"

	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
)

// BenchmarkBlocklistSweep runs the multi-day TTL blocklist policies.
func BenchmarkBlocklistSweep(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		rs := sim.BlocklistSweep(DefaultBlocklistPolicies())
		if i == b.N-1 {
			for _, r := range rs {
				if r.Policy.Name == "/64 t=10% ttl=3" {
					b.ReportMetric(r.TPR*100, "v6_64_ttl3_TPR_%")
					b.ReportMetric(r.FPR*100, "v6_64_ttl3_FPR_%")
				}
			}
		}
	}
}

// BenchmarkRateLimitSweep measures collateral at tight per-address caps.
func BenchmarkRateLimitSweep(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		v6 := sim.RateLimitSweep(netaddr.IPv6, 128, []int{3})
		v4 := sim.RateLimitSweep(netaddr.IPv4, 32, []int{3})
		if i == b.N-1 {
			b.ReportMetric(v6[0].BenignShare*100, "v6_cap3_benign_%")
			b.ReportMetric(v4[0].BenignShare*100, "v4_cap3_benign_%")
		}
	}
}

// BenchmarkSegments measures the per-network-kind breakdown.
func BenchmarkSegments(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		rs := sim.Segments()
		if i == b.N-1 {
			for _, r := range rs {
				switch r.Kind {
				case netmodel.Mobile:
					b.ReportMetric(r.V6UserShare*100, "mobile_v6_%")
				case netmodel.Enterprise:
					b.ReportMetric(r.V6UserShare*100, "enterprise_v6_%")
				}
			}
		}
	}
}

// BenchmarkSketchedOutliers measures the fixed-memory pipeline and its
// agreement with exact counting.
func BenchmarkSketchedOutliers(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		r := sim.SketchedOutliers(128)
		if i == b.N-1 {
			b.ReportMetric(r.HeavyRecall*100, "heavy_recall_%")
			b.ReportMetric(r.TopError*100, "top_err_%")
		}
	}
}

// BenchmarkTTLRecallCurve measures threat-intel decay curves.
func BenchmarkTTLRecallCurve(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		v64 := sim.TTLRecallCurve(netaddr.IPv6, 64, 3)
		if i == b.N-1 && len(v64) == 3 {
			b.ReportMetric(v64[0]*100, "day1_recall_%")
			b.ReportMetric(v64[2]*100, "day3_recall_%")
		}
	}
}

// BenchmarkAblationMegaCGN quantifies the mega-CGN's role in the IPv4
// collateral story: growing Telkom-class pools from "tiny" to "ample"
// collapses the per-address benign populations and with them the v4
// actioning FPR.
func BenchmarkAblationMegaCGN(b *testing.B) {
	// Baseline is the default scenario; the ablated world regenerates
	// with mega-CGN pools widened to the normal carrier size.
	sim := NewSim(DefaultScenario(benchUsers))
	for _, c := range sim.World.Countries {
		if c.MobV4.ASN == 23693 { // Telkom-class mega pool
			c.MobV4.V4.PoolSize = 2500 * benchUsers / ReferenceUsers
			if c.MobV4.V4.PoolSize < 128 {
				c.MobV4.V4.PoolSize = 128
			}
		}
	}
	for i := 0; i < b.N; i++ {
		r := sim.Fig11()
		if i == b.N-1 {
			if p, ok := r.Curves["IPv4"].At(0); ok {
				b.ReportMetric(p.FPR*100, "v4_FPR0_%")
				b.ReportMetric(p.TPR*100, "v4_TPR0_%")
			}
		}
	}
}

// BenchmarkAblationSlowDetection quantifies detection speed: with slow
// detection, abusive accounts live long and their address counts grow
// toward benign-like levels, washing out the Figure 3 contrast.
func BenchmarkAblationSlowDetection(b *testing.B) {
	sc := DefaultScenario(benchUsers)
	sc.Abuse.DetectFirstDay = 0.2
	sc.Abuse.SurvivorDailyDeath = 0.15
	sim := NewSim(sc)
	for i := 0; i < b.N; i++ {
		r := sim.Fig3()
		if i == b.N-1 {
			b.ReportMetric(float64(r.WeekV4.Median()), "AA_v4_week_median")
			b.ReportMetric(float64(r.WeekV6.Median()), "AA_v6_week_median")
		}
	}
}

// BenchmarkScraperDefense measures logged-out request-rate limiting
// against IID-hopping scraper fleets.
func BenchmarkScraperDefense(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		rs := sim.ScraperDefense([]uint64{200})
		if i == b.N-1 {
			for _, r := range rs {
				switch r.Name {
				case "/128":
					b.ReportMetric(r.ScraperBlockShare*100, "v6_128_blocked_%")
				case "/64":
					b.ReportMetric(r.ScraperBlockShare*100, "v6_64_blocked_%")
				}
			}
		}
	}
}

// BenchmarkDetectHijacks measures the IP-novelty compromise detector.
func BenchmarkDetectHijacks(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		r := sim.DetectHijacks()
		if i == b.N-1 {
			b.ReportMetric(r.Recall*100, "recall_%")
			b.ReportMetric(r.FalseAlarmShare*100, "false_alarm_%")
		}
	}
}

// BenchmarkChurnReasons measures the new-address cause attribution.
func BenchmarkChurnReasons(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		r := sim.ChurnReasons()
		if i == b.N-1 {
			b.ReportMetric(r.Share(0)*100, "iid_rotation_%")
			b.ReportMetric(r.Share(1)*100, "subnet_move_%")
			b.ReportMetric(r.Share(2)*100, "network_switch_%")
		}
	}
}

// BenchmarkPandemic measures the Appendix A robustness comparison.
func BenchmarkPandemic(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		c := sim.ComparePandemic()
		if i == b.N-1 {
			b.ReportMetric(float64(c.Pre.MedianV6Addrs), "pre_v6_median")
			b.ReportMetric(float64(c.Lockdown.MedianV6Addrs), "lockdown_v6_median")
		}
	}
}
