package userv6

// Extensions beyond the paper's published experiments, in the directions
// its §8 future work sketches: multi-day blocklists with TTLs, rate-limit
// threshold sweeps, and per-network-type behavioral segmentation.

import (
	"userv6/internal/core"
	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// BlocklistPolicy identifies one blocklist configuration to evaluate.
type BlocklistPolicy struct {
	Name      string
	Family    netaddr.Family
	Length    int
	Threshold float64
	TTLDays   int
}

// BlocklistSweepResult is one policy's outcome over the analysis week.
type BlocklistSweepResult struct {
	Policy   BlocklistPolicy
	TPR, FPR float64
	// FinalListSize is the number of listed prefixes after the run.
	FinalListSize int
}

// DefaultBlocklistPolicies spans the granularities and TTLs the §7.2
// discussion weighs.
func DefaultBlocklistPolicies() []BlocklistPolicy {
	return []BlocklistPolicy{
		{"/128 t=10% ttl=1", netaddr.IPv6, 128, 0.1, 1},
		{"/128 t=10% ttl=3", netaddr.IPv6, 128, 0.1, 3},
		{"/64 t=10% ttl=1", netaddr.IPv6, 64, 0.1, 1},
		{"/64 t=10% ttl=3", netaddr.IPv6, 64, 0.1, 3},
		{"/64 t=50% ttl=3", netaddr.IPv6, 64, 0.5, 3},
		{"IPv4 t=10% ttl=1", netaddr.IPv4, 32, 0.1, 1},
		{"IPv4 t=10% ttl=3", netaddr.IPv4, 32, 0.1, 3},
	}
}

// BlocklistSweep runs every policy over the analysis week (day 1 warms
// the list; days 2-7 are measured).
func (s *Sim) BlocklistSweep(policies []BlocklistPolicy) []BlocklistSweepResult {
	from, to := AnalysisWeek()
	sims := make([]*core.BlocklistSim, len(policies))
	for i, p := range policies {
		sims[i] = core.NewBlocklistSim(p.Family, p.Length, p.Threshold, p.TTLDays)
	}
	for day := from; day <= to; day++ {
		s.GenerateDay(day, func(o telemetry.Observation) {
			for _, b := range sims {
				b.ObserveDay(o)
			}
		})
		for _, b := range sims {
			b.EndDay()
		}
	}
	out := make([]BlocklistSweepResult, len(policies))
	for i, p := range policies {
		c := sims[i].Counts()
		out[i] = BlocklistSweepResult{
			Policy:        p,
			TPR:           c.TPR(),
			FPR:           c.FPR(),
			FinalListSize: sims[i].ListSize(),
		}
	}
	return out
}

// RateLimitSweep evaluates per-prefix-day entity caps at one granularity
// across several cap values, over the analysis week.
func (s *Sim) RateLimitSweep(fam netaddr.Family, length int, caps []int) []core.RateLimitOutcome {
	from, to := AnalysisWeek()
	sims := make([]*core.RateLimitSim, len(caps))
	for i, c := range caps {
		sims[i] = core.NewRateLimitSim(fam, length, c)
	}
	s.Generate(from, to, func(o telemetry.Observation) {
		for _, r := range sims {
			r.Observe(o)
		}
	})
	out := make([]core.RateLimitOutcome, len(caps))
	for i, r := range sims {
		out[i] = r.Outcome()
	}
	return out
}

// Segments computes the per-network-kind behavioral breakdown over the
// analysis week for benign users (§8 future work).
func (s *Sim) Segments() []core.SegmentReport {
	kinds := make(map[netmodel.ASN]netmodel.Kind, len(s.World.Networks()))
	for _, n := range s.World.Networks() {
		kinds[n.ASN] = n.Kind
	}
	seg := core.NewSegmentation(core.ClassifyByASN(kinds))
	from, to := AnalysisWeek()
	s.Benign.Generate(from, to, seg.Observe)
	return seg.Report()
}

// SketchedOutliers runs the fixed-memory heavy-hitter pipeline over the
// analysis week and cross-checks it against the exact analyzer,
// returning the sketched top prefixes plus agreement metrics.
type SketchedOutliersResult struct {
	Top            []core.SketchedHeavy
	TopError       float64
	HeavyRecall    float64
	PrefixEstimate float64
	ExactPrefixes  int
}

// SketchedOutliers exercises the production-scale counting path.
func (s *Sim) SketchedOutliers(length int) SketchedOutliersResult {
	from, to := AnalysisWeek()
	sk := core.NewSketchedIPCentric(netaddr.IPv6, length, 2048)
	exact := core.NewIPCentric(netaddr.IPv6, length)
	s.Generate(from, to, func(o telemetry.Observation) {
		sk.Observe(o)
		exact.Observe(o)
	})
	topErr, recall := core.CompareExact(sk, exact, 10)
	return SketchedOutliersResult{
		Top:            sk.Top(10),
		TopError:       topErr,
		HeavyRecall:    recall,
		PrefixEstimate: sk.Prefixes(),
		ExactPrefixes:  exact.Prefixes(),
	}
}

// TTLRecallCurve measures how recall decays with indicator age: the
// fraction of day (n+k) abusive accounts covered by day-n indicators,
// for k = 1..horizon (the threat-exchange decay experiment).
func (s *Sim) TTLRecallCurve(fam netaddr.Family, length int, horizon int) []float64 {
	day0 := simtime.AnalysisWeekStart
	indicators := make(map[netaddr.Prefix]struct{})
	s.Abusive.GenerateDay(day0, func(o telemetry.Observation) {
		if o.Addr.Family() == fam {
			indicators[netaddr.PrefixFrom(o.Addr, length)] = struct{}{}
		}
	})
	out := make([]float64, 0, horizon)
	for k := 1; k <= horizon; k++ {
		caught := make(map[uint64]struct{})
		total := make(map[uint64]struct{})
		s.Abusive.GenerateDay(day0+simtime.Day(k), func(o telemetry.Observation) {
			if o.Addr.Family() != fam {
				return
			}
			total[o.UserID] = struct{}{}
			if _, hit := indicators[netaddr.PrefixFrom(o.Addr, length)]; hit {
				caught[o.UserID] = struct{}{}
			}
		})
		if len(total) == 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, float64(len(caught))/float64(len(total)))
	}
	return out
}

// ChurnReasons attributes the analysis week's new (user, IPv6 address)
// pairs to causes — IID rotation, subnet moves, network switches — after
// a one-week warmup (the §8 "causes of dynamic IPv6 behavior" study).
func (s *Sim) ChurnReasons() core.ChurnBreakdown {
	from, to := AnalysisWeek()
	warmup := from - 7
	if warmup < 0 {
		warmup = 0
	}
	ca := core.NewChurnAttribution(from)
	s.Benign.Generate(warmup, to, ca.Observe)
	return ca.Breakdown()
}
