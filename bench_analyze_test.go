package userv6

// Benchmarks for the block-parallel analysis engine: sequential dataset
// replay versus the parallel decode + analyzer fan-out, over the same
// file and the same registered analyzers. The two names land side by
// side in the bench artifact so the speedup ratio is recorded per run.

import (
	"context"
	"path/filepath"
	"testing"

	"userv6/internal/dataset"
)

// benchAnalyzeWorkers is the pool size for the parallel benchmark;
// speedup is only visible on multicore hardware, but correctness (and
// the gate) holds at any core count.
const benchAnalyzeWorkers = 4

// writeBenchDataset generates one analysis week of benign telemetry for
// the shared benchmark population into a fresh dataset file.
func writeBenchDataset(b *testing.B) string {
	b.Helper()
	sim := getBenchSim()
	from, to := AnalysisWeek()
	path := filepath.Join(b.TempDir(), "bench.uv6")
	w, err := dataset.Create(path, dataset.Meta{
		Seed: 1, Users: benchUsers, FromDay: int(from), ToDay: int(to), Sample: "all",
	})
	if err != nil {
		b.Fatal(err)
	}
	emit, errp := w.Emit()
	sim.Generate(from, to, emit)
	if *errp != nil {
		b.Fatal(*errp)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return path
}

// BenchmarkAnalyzeSequential replays the dataset through every analyzer
// on one goroutine — the reference the parallel engine must beat.
func BenchmarkAnalyzeSequential(b *testing.B) {
	path := writeBenchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newAnalyzeSet()
		r, err := dataset.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.ForEach(s.set.Emit()); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

// BenchmarkAnalyzeParallel runs the same replay through the
// block-parallel pipeline: concurrent block decode + CRC, user-hash
// routed analyzer workers, merge on close.
func BenchmarkAnalyzeParallel(b *testing.B) {
	path := writeBenchDataset(b)
	sim := getBenchSim()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newAnalyzeSet()
		if _, err := sim.AnalyzeDatasetParallel(context.Background(), path, benchAnalyzeWorkers, s.set, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeFused runs the replay on the fused fast path: the
// decode workers are the analyzer workers, each feeding a worker-local
// replica with no ordered-delivery heap, no hash router, and no
// cross-goroutine record handoff; one fold at the end.
func BenchmarkAnalyzeFused(b *testing.B) {
	path := writeBenchDataset(b)
	sim := getBenchSim()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newAnalyzeSet()
		if _, err := sim.AnalyzeDatasetFused(context.Background(), path, benchAnalyzeWorkers, s.set, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeUnordered runs the replay with completion-order batch
// delivery into a channel pool of analyzer replicas — one cross-
// goroutine handoff per batch, against the fused path's zero.
func BenchmarkAnalyzeUnordered(b *testing.B) {
	path := writeBenchDataset(b)
	sim := getBenchSim()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newAnalyzeSet()
		if _, err := sim.AnalyzeDatasetUnordered(context.Background(), path, benchAnalyzeWorkers, s.set, false); err != nil {
			b.Fatal(err)
		}
	}
}

// writeBenchShardedExport writes the benchmark week as a 4-shard export
// and returns its directory.
func writeBenchShardedExport(b *testing.B) string {
	b.Helper()
	sim := getBenchSim()
	from, to := AnalysisWeek()
	dir := b.TempDir()
	meta := dataset.Meta{Seed: 1, Users: benchUsers, FromDay: int(from), ToDay: int(to), Sample: "all"}
	if _, err := sim.ExportShardedCtx(context.Background(), dir, 4, meta, nil); err != nil {
		b.Fatal(err)
	}
	return dir
}

// BenchmarkAnalyzeManifest analyzes a sharded export in place: strict
// per-part checksum gate, then the fused engine fanned out part by
// part — the path that replaces merge-then-analyze.
func BenchmarkAnalyzeManifest(b *testing.B) {
	dir := writeBenchShardedExport(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := dataset.OpenManifestSource(dir)
		if err != nil {
			b.Fatal(err)
		}
		s := newAnalyzeSet()
		if _, err := AnalyzeSource(context.Background(), src, s.set, AnalyzeOptions{Workers: benchAnalyzeWorkers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeMergeAnalyze is the round-trip BenchmarkAnalyzeManifest
// must beat: strict merge of the same export to a scratch file, then the
// fused engine over the merged output.
func BenchmarkAnalyzeMergeAnalyze(b *testing.B) {
	dir := writeBenchShardedExport(b)
	sim := getBenchSim()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged := filepath.Join(b.TempDir(), "merged.uv6")
		if _, _, err := dataset.MergeManifest(merged, filepath.Join(dir, dataset.ManifestName), &dataset.MergeOptions{Strict: true}); err != nil {
			b.Fatal(err)
		}
		s := newAnalyzeSet()
		if _, err := sim.AnalyzeDatasetFused(context.Background(), merged, benchAnalyzeWorkers, s.set, false); err != nil {
			b.Fatal(err)
		}
	}
}
