package userv6

// Appendix A of the paper re-runs the user-centric analyses on
// pre-pandemic data to check that the COVID-19 lockdowns did not change
// the conclusions. PandemicComparison reproduces that robustness check:
// the same metrics over a February (pre-lockdown) week and the April
// (lockdown) analysis week.

import (
	"userv6/internal/core"
	"userv6/internal/netaddr"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// PandemicWindowMetrics are the Appendix-A metrics for one week window.
type PandemicWindowMetrics struct {
	From, To simtime.Day
	// Addresses per user (weekly medians, Appendix A.3).
	MedianV4Addrs, MedianV6Addrs int
	// Single-/64 user share (prefix diversity, Appendix A.4).
	SingleSlash64Share float64
	// Day-fresh pair shares at the window end (Appendix A.5), with a
	// lookback capped at the window start.
	FreshV4, FreshV6 float64
}

// PandemicComparison computes the metrics for the Feb 12-18 week (days
// 20-26) and the Apr 13-19 analysis week.
type PandemicComparison struct {
	Pre, Lockdown PandemicWindowMetrics
}

// ComparePandemic runs the Appendix-A robustness check.
func (s *Sim) ComparePandemic() PandemicComparison {
	return PandemicComparison{
		Pre:      s.windowMetrics(20, 26),
		Lockdown: s.windowMetrics(simtime.AnalysisWeekStart, simtime.AnalysisWeekEnd),
	}
}

func (s *Sim) windowMetrics(from, to simtime.Day) PandemicWindowMetrics {
	uc := core.NewUserCentricFor(false)
	// Lifespans with a 14-day lookback so both windows use the same
	// horizon (the February window has less history before it).
	lookback := to - 13
	if lookback < 0 {
		lookback = 0
	}
	ls := core.NewLifespans(to, 32, 128).Restrict(false)
	s.Benign.Generate(lookback, to, func(o telemetry.Observation) {
		ls.Observe(o)
		if o.Day >= from {
			uc.Observe(o)
		}
	})

	m := PandemicWindowMetrics{From: from, To: to}
	m.MedianV4Addrs = uc.AddrsPerUser(netaddr.IPv4).Median()
	m.MedianV6Addrs = uc.AddrsPerUser(netaddr.IPv6).Median()
	for _, span := range uc.PrefixSpans([]int{64}) {
		if span.Length == 64 {
			m.SingleSlash64Share = span.One
		}
	}
	if h := ls.AgeHist(netaddr.IPv4, 32); h.N() > 0 {
		m.FreshV4 = h.CDFAt(0)
	}
	if h := ls.AgeHist(netaddr.IPv6, 128); h.N() > 0 {
		m.FreshV6 = h.CDFAt(0)
	}
	return m
}
