package userv6

// Integration tests: build a small simulation and assert that the
// paper's qualitative findings — orderings, modal shifts, directional
// differences — hold end to end. These are the "shape pass criteria"
// from DESIGN.md §3; absolute magnitudes are compared in EXPERIMENTS.md.

import (
	"testing"

	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// testSim is shared across the integration tests (read-only analyses).
var testSimCache *Sim

func testSim(t testing.TB) *Sim {
	t.Helper()
	if testSimCache == nil {
		testSimCache = NewSim(DefaultScenario(12_000))
	}
	return testSimCache
}

func TestSimDeterministic(t *testing.T) {
	a := NewSim(DefaultScenario(800))
	b := NewSim(DefaultScenario(800))
	var oa, ob []telemetry.Observation
	a.Generate(10, 11, func(o telemetry.Observation) { oa = append(oa, o) })
	b.Generate(10, 11, func(o telemetry.Observation) { ob = append(ob, o) })
	if len(oa) == 0 || len(oa) != len(ob) {
		t.Fatalf("lengths: %d vs %d", len(oa), len(ob))
	}
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("observation %d differs", i)
		}
	}
	c := NewSim(DefaultScenario(800).WithSeed(2))
	var oc []telemetry.Observation
	c.Generate(10, 11, func(o telemetry.Observation) { oc = append(oc, o) })
	if len(oc) == len(oa) {
		same := true
		for i := range oc {
			if oc[i] != oa[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical telemetry")
		}
	}
}

func TestFig1Shapes(t *testing.T) {
	sim := testSim(t)
	days := sim.Fig1(0, simtime.StudyDays-1)
	if len(days) != simtime.StudyDays {
		t.Fatalf("days = %d", len(days))
	}
	var userSum, reqSum float64
	for _, d := range days {
		if d.UserShare <= 0 || d.UserShare >= 1 || d.ReqShare <= 0 || d.ReqShare >= 1 {
			t.Fatalf("day %v shares out of range: %+v", d.Day, d)
		}
		// Users counted via "any v6 request" always exceed the raw
		// request share (paper §4.1).
		if d.UserShare <= d.ReqShare {
			t.Fatalf("day %v: user share %.3f <= request share %.3f", d.Day, d.UserShare, d.ReqShare)
		}
		userSum += d.UserShare
		reqSum += d.ReqShare
	}
	meanUser := userSum / float64(len(days))
	meanReq := reqSum / float64(len(days))
	// Paper bands: 34.5-36.5% users, 22.5-25% requests. Allow slack for
	// the small simulation.
	if meanUser < 0.30 || meanUser > 0.45 {
		t.Fatalf("mean user share = %.3f", meanUser)
	}
	if meanReq < 0.17 || meanReq > 0.30 {
		t.Fatalf("mean request share = %.3f", meanReq)
	}
	// Lockdown decreases the user share relative to pre-pandemic:
	// integrate over all weekdays of each phase to beat sampling noise.
	var pre, preN, locked, lockedN float64
	for _, d := range days {
		if d.Day.IsWeekend() {
			continue
		}
		switch simtime.PhaseOf(d.Day) {
		case simtime.PrePandemic:
			pre += d.UserShare
			preN++
		case simtime.Lockdown:
			locked += d.UserShare
			lockedN++
		}
	}
	pre /= preN
	locked /= lockedN
	if locked >= pre {
		t.Fatalf("lockdown user share %.4f did not drop below pre-pandemic %.4f", locked, pre)
	}
}

func TestTable1Shapes(t *testing.T) {
	sim := testSim(t)
	r := sim.Table1(AnalysisWeek())
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Ratios descend and stay in the paper's plausible band.
	for i, row := range r.Rows {
		if i > 0 && row.Ratio > r.Rows[i-1].Ratio {
			t.Fatal("rows not sorted")
		}
		if row.Ratio < 0.6 || row.Ratio > 1 {
			t.Fatalf("row %d ratio %.2f outside top-ASN band", i, row.Ratio)
		}
	}
	// Reliance Jio tops the list, as in Table 1.
	if r.Rows[0].ASN != 55836 {
		t.Fatalf("top ASN = %d (%s), want Reliance Jio", r.Rows[0].ASN, r.Rows[0].Name)
	}
	// The named carriers appear in the top 10.
	named := map[uint32]bool{}
	for _, row := range r.Rows {
		named[uint32(row.ASN)] = true
	}
	for _, want := range []uint32{55836, 21928} {
		if !named[want] {
			t.Errorf("ASN %d missing from top 10", want)
		}
	}
	// §4.2 bands: some ASNs zero, more under 10%.
	if r.ZeroShare <= 0 || r.ZeroShare > 0.35 {
		t.Fatalf("zero share = %.3f", r.ZeroShare)
	}
	if r.UnderTenShare <= r.ZeroShare {
		t.Fatalf("under-10%% share %.3f should exceed zero share %.3f", r.UnderTenShare, r.ZeroShare)
	}
}

func TestTable2Shapes(t *testing.T) {
	sim := testSim(t)
	r := sim.Table2()
	if len(r.April) != 10 || len(r.January) != 10 {
		t.Fatalf("rows: jan=%d apr=%d", len(r.January), len(r.April))
	}
	if r.April[0].Country != "IN" {
		t.Fatalf("top April country = %s, want IN", r.April[0].Country)
	}
	// Germany rises under lockdown; Greece declines.
	if r.GermanyApr <= r.GermanyJan {
		t.Fatalf("Germany %.3f -> %.3f: no lockdown rise", r.GermanyJan, r.GermanyApr)
	}
	if r.GreeceApr >= r.GreeceJan {
		t.Fatalf("Greece %.3f -> %.3f: no decline", r.GreeceJan, r.GreeceApr)
	}
}

func TestClientAddrPatternShapes(t *testing.T) {
	sim := testSim(t)
	p := sim.ClientAddrPatterns()
	if p.V6Users == 0 {
		t.Fatal("no v6 users")
	}
	// Transition protocols: well under 1% (paper: < 0.01%).
	if p.TeredoShare+p.SixToFourShare > 0.005 {
		t.Fatalf("transition share = %v", p.TeredoShare+p.SixToFourShare)
	}
	// EUI-64 share around 2.5%.
	if p.EUI64Share < 0.01 || p.EUI64Share > 0.05 {
		t.Fatalf("EUI-64 share = %v", p.EUI64Share)
	}
	// Most multi-address EUI-64 users reuse one IID (paper: 83%).
	if p.EUI64IIDReuse < 0.6 {
		t.Fatalf("EUI-64 IID reuse = %v", p.EUI64IIDReuse)
	}
	// Random IIDs dominate.
	if p.RandomIIDShare < 0.8 {
		t.Fatalf("random IID share = %v", p.RandomIIDShare)
	}
}

func TestFig2Fig3Shapes(t *testing.T) {
	sim := testSim(t)
	users := sim.Fig2()
	// Users gain more v6 than v4 addresses over a week (paper: medians
	// 9 vs 6).
	if users.WeekV6.Median() <= users.WeekV4.Median() {
		t.Fatalf("weekly medians: v6 %d <= v4 %d", users.WeekV6.Median(), users.WeekV4.Median())
	}
	// Counts grow with the window.
	if users.WeekV6.Median() <= users.DayV6.Median() {
		t.Fatalf("v6 medians: week %d <= day %d", users.WeekV6.Median(), users.DayV6.Median())
	}

	aas := sim.Fig3()
	// The majority of abusive accounts use one address per day on both
	// protocols...
	if aas.DayV6.CDFAt(1) < 0.5 || aas.DayV4.CDFAt(1) < 0.5 {
		t.Fatalf("AA single-address shares: v4=%.2f v6=%.2f", aas.DayV4.CDFAt(1), aas.DayV6.CDFAt(1))
	}
	// ...and have at most as many v6 as v4 addresses — the inverse of
	// benign users (§5.1.2).
	if aas.DayV6.CDFAt(1) < aas.DayV4.CDFAt(1) {
		t.Fatalf("AA v6 single share %.2f below v4 %.2f", aas.DayV6.CDFAt(1), aas.DayV4.CDFAt(1))
	}
	// Benign users show the opposite ordering on the single-day view.
	if users.DayV6.CDFAt(1) > users.DayV4.CDFAt(1) {
		t.Fatalf("benign v6 single share %.2f above v4 %.2f", users.DayV6.CDFAt(1), users.DayV4.CDFAt(1))
	}
}

func TestFig4Shapes(t *testing.T) {
	sim := testSim(t)
	r := sim.Fig4()
	share := func(l int) float64 {
		for _, s := range r.Users {
			if s.Length == l {
				return s.One
			}
		}
		t.Fatalf("length %d missing", l)
		return 0
	}
	// Modal shift at /64: single-prefix share jumps from /72 to /64.
	if share(64) < share(72)+0.2 {
		t.Fatalf("no /64 modal shift: /72=%.2f /64=%.2f", share(72), share(64))
	}
	// Aggregation at prefixes shorter than /48 (routing-prefix level).
	if share(40) < share(48)+0.02 {
		t.Fatalf("no short-prefix aggregation: /48=%.2f /40=%.2f", share(48), share(40))
	}
	// Monotone nondecreasing as prefixes shorten.
	prev := 0.0
	for i := len(r.Users) - 1; i >= 0; i-- {
		if r.Users[i].One+1e-9 < prev {
			t.Fatalf("user one-share not monotone at /%d", r.Users[i].Length)
		}
		prev = r.Users[i].One
		if r.Users[i].One > r.Users[i].AtMost2+1e-9 || r.Users[i].AtMost2 > r.Users[i].AtMost3+1e-9 {
			t.Fatalf("span ordering violated at /%d", r.Users[i].Length)
		}
	}
	// Abusive accounts also aggregate at /64 (Figure 4b).
	var aa72, aa64 float64
	for _, s := range r.Abusive {
		if s.Length == 72 {
			aa72 = s.One
		}
		if s.Length == 64 {
			aa64 = s.One
		}
	}
	if aa64 <= aa72 {
		t.Fatalf("abusive /64 shift missing: /72=%.2f /64=%.2f", aa72, aa64)
	}
}

func TestFig5Fig6Shapes(t *testing.T) {
	sim := testSim(t)
	r := sim.Fig5And6(false)
	// IPv6 pairs are far fresher than IPv4 pairs (paper: 84% vs 66%).
	fresh6, fresh4 := r.AgeV6.CDFAt(0), r.AgeV4.CDFAt(0)
	if fresh6 < fresh4+0.2 {
		t.Fatalf("freshness gap missing: v6=%.3f v4=%.3f", fresh6, fresh4)
	}
	// Week-old pairs: v4 much more common (22% vs 1.2%).
	if r.AgeV4.FracAbove(7) < 4*r.AgeV6.FracAbove(7) {
		t.Fatalf(">7d: v4=%.3f v6=%.3f", r.AgeV4.FracAbove(7), r.AgeV6.FracAbove(7))
	}
	// The per-user median CDF sits below the pair-level CDF (paper
	// §5.3.1: users maintain activity on some addresses for longer, so
	// grouping per user skews older).
	if r.MedianV6.CDFAt(0) > fresh6+0.02 {
		t.Fatalf("median curve above pair curve: %.3f > %.3f", r.MedianV6.CDFAt(0), fresh6)
	}
	// Figure 6: freshness decreases (lifespans lengthen) at /64 and
	// again at the routing prefix for IPv6.
	within1 := map[int]float64{}
	for _, fs := range r.FreshV6 {
		within1[fs.Length] = fs.Within1
	}
	if within1[64] >= within1[128] {
		t.Fatalf("/64 pairs should outlive /128 pairs: %.3f vs %.3f", within1[64], within1[128])
	}
	if within1[48] > within1[64] {
		t.Fatalf("/48 pairs should outlive /64 pairs: %.3f vs %.3f", within1[48], within1[64])
	}
}

func TestIPCentricShapes(t *testing.T) {
	sim := testSim(t)
	r := sim.IPCentricWeek()

	// Figure 7: v6 addresses nearly single-user; v4 far from it.
	v6single := r.V6[128].UsersPerPrefix().CDFAt(1)
	v4single := r.V4.UsersPerPrefix().CDFAt(1)
	if v6single < 0.9 {
		t.Fatalf("v6 single-user share = %.3f", v6single)
	}
	if v4single > v6single-0.3 {
		t.Fatalf("v4 single-user share %.3f too close to v6 %.3f", v4single, v6single)
	}
	// Over 99% of v6 addresses hold at most two users.
	if r.V6[128].UsersPerPrefix().CDFAt(2) < 0.99 {
		t.Fatalf("v6 <=2 users share = %.4f", r.V6[128].UsersPerPrefix().CDFAt(2))
	}

	// Figure 9: single-user share decreases with shorter prefixes, with
	// the /68 -> /64 drop being pronounced.
	s := func(l int) float64 { return r.V6[l].UsersPerPrefix().CDFAt(1) }
	if !(s(128) >= s(72) && s(72) >= s(68) && s(68) > s(64) && s(64) >= s(48) && s(48) >= s(44)) {
		t.Fatalf("fig9 ordering violated: 128=%.2f 72=%.2f 68=%.2f 64=%.2f 48=%.2f 44=%.2f",
			s(128), s(72), s(68), s(64), s(48), s(44))
	}
	if s(68)-s(64) < 0.1 {
		t.Fatalf("/64 aggregation too weak: /68=%.2f /64=%.2f", s(68), s(64))
	}

	// Figure 8: abusive v4 addresses swim in benign users; abusive v6
	// addresses are mostly isolated.
	b4 := r.V4.BenignPerAbusivePrefix()
	b6 := r.V6[128].BenignPerAbusivePrefix()
	if b4.CDFAt(0) > 0.2 {
		t.Fatalf("v4 AA addrs with zero benign = %.3f, want small", b4.CDFAt(0))
	}
	if b6.CDFAt(0) < 0.5 {
		t.Fatalf("v6 AA addrs with zero benign = %.3f, want majority", b6.CDFAt(0))
	}
	if b4.FracAbove(10) < 0.3 {
		t.Fatalf("v4 AA addrs with >10 benign = %.3f", b4.FracAbove(10))
	}

	// Figure 10: abusive aggregation appears by /56 (hosting ranges).
	aaSingle := func(l int) float64 { return r.V6[l].AbusivePerAbusivePrefix().CDFAt(1) }
	if aaSingle(56) >= aaSingle(128) {
		t.Fatalf("no abusive aggregation at /56: /128=%.2f /56=%.2f", aaSingle(128), aaSingle(56))
	}
}

func TestOutlierShapes(t *testing.T) {
	sim := testSim(t)
	r := sim.Outliers()
	// IPv4 outliers dwarf IPv6 outliers in both directions.
	if r.V4MaxUsers <= r.V6MaxUsers {
		t.Fatalf("max users per addr: v4 %d <= v6 %d", r.V4MaxUsers, r.V6MaxUsers)
	}
	if r.V4HeavyAddrs <= r.V6HeavyAddrs {
		t.Fatalf("heavy addrs: v4 %d <= v6 %d", r.V4HeavyAddrs, r.V6HeavyAddrs)
	}
	// Heavy v6 addresses concentrate in the gateway ASN with structured
	// IIDs (paper: 96% in ASN 20057, structured signature).
	if r.V6Concentration.Heavy > 0 {
		if r.V6Concentration.TopASN != 20057 {
			t.Fatalf("top heavy-v6 ASN = %d", r.V6Concentration.TopASN)
		}
		if r.V6Concentration.TopASNShare < 0.8 || r.V6Concentration.StructuredShare < 0.8 {
			t.Fatalf("concentration = %+v", r.V6Concentration)
		}
	}
	// The /64 maximum exceeds the address maximum (aggregation).
	if r.V6Max64Users < r.V6MaxUsers {
		t.Fatalf("/64 max %d below address max %d", r.V6Max64Users, r.V6MaxUsers)
	}
}

func TestFig11Shapes(t *testing.T) {
	sim := testSim(t)
	r := sim.Fig11()
	c128, c64, cv4 := r.Curves["/128"], r.Curves["/64"], r.Curves["IPv4"]

	p128, _ := c128.At(0)
	p64, _ := c64.At(0)
	pv4, _ := cv4.At(0)
	// IPv4 actioning at threshold 0: high recall, high collateral.
	if pv4.TPR <= p128.TPR {
		t.Fatalf("v4 TPR %.3f <= /128 TPR %.3f at t=0", pv4.TPR, p128.TPR)
	}
	if pv4.FPR <= p64.FPR {
		t.Fatalf("v4 FPR %.4f <= /64 FPR %.4f at t=0", pv4.FPR, p64.FPR)
	}
	// /64 beats /128 on recall at threshold 0 (spatial locality).
	if p64.TPR <= p128.TPR {
		t.Fatalf("/64 TPR %.3f <= /128 TPR %.3f", p64.TPR, p128.TPR)
	}
	// At low FPR, some v6 curve dominates IPv4 (the paper's headline
	// actionability claim).
	probes := []float64{0.001, 0.01}
	if !c64.DominatesBelow(cv4, probes) && !c128.DominatesBelow(cv4, probes) {
		t.Fatal("no v6 dominance at low FPR")
	}
	// Raising the threshold never raises TPR.
	for name, curve := range r.Curves {
		prevTPR := 2.0
		for _, th := range []float64{0, 0.1, 0.5, 1.0} {
			if p, ok := curve.At(th); ok {
				if p.TPR > prevTPR+1e-9 {
					t.Fatalf("%s: TPR increased with threshold", name)
				}
				prevTPR = p.TPR
			}
		}
	}
}

func TestAdviseShapes(t *testing.T) {
	sim := testSim(t)
	a := sim.Advise(0.001)
	if a.BlocklistGranularity != 64 && a.BlocklistGranularity != 128 {
		t.Fatalf("granularity = %d", a.BlocklistGranularity)
	}
	if a.BlocklistTTLDays < 1 || a.BlocklistTTLDays > 7 {
		t.Fatalf("TTL = %d", a.BlocklistTTLDays)
	}
	// v6 addresses hold very few benign users: tight budgets.
	if a.RateLimitUsersPerV6Addr < 1 || a.RateLimitUsersPerV6Addr > 30 {
		t.Fatalf("rate-limit budget = %d", a.RateLimitUsersPerV6Addr)
	}
	// The v4-equivalents are short prefixes (paper: /48 for users, /56
	// for abuse).
	if a.RateLimitV4EquivalentLength > 64 {
		t.Fatalf("rate-limit equivalent /%d too long", a.RateLimitV4EquivalentLength)
	}
	if a.BlocklistV4EquivalentLength > 64 {
		t.Fatalf("blocklist equivalent /%d too long", a.BlocklistV4EquivalentLength)
	}
	if a.ThreatIntelDecay < 0.4 {
		t.Fatalf("threat-intel decay = %.3f, want fast decay", a.ThreatIntelDecay)
	}
}
