module userv6

go 1.22
