// Package userv6 reproduces "Towards A User-Level Understanding of IPv6
// Behavior" (Li & Freeman, IMC 2020) as a reusable Go library.
//
// The paper's raw telemetry is proprietary, so this library pairs the
// paper's analysis methodology with a calibrated synthetic substrate:
//
//   - a world model of access networks and their address-assignment
//     mechanics (NAT, CGN, SLAAC privacy extensions, per-session mobile
//     /64s, structured-IID mobile gateways — internal/netmodel);
//   - a synthetic user population and attacker campaigns
//     (internal/population, internal/abuse);
//   - a deterministic streaming telemetry generator
//     (internal/telemetry);
//   - the user-level analyzers that constitute the paper's contribution
//     (internal/core): user-centric and IP-centric behavior, lifespans,
//     actioning ROC simulation, outlier characterization, and the
//     security-policy advisor.
//
// The entry point is a Scenario (the experiment configuration) and a Sim
// built from it. Every figure and table in the paper has a corresponding
// Sim method that regenerates it; see EXPERIMENTS.md for the index.
package userv6

import (
	"userv6/internal/abuse"
	"userv6/internal/netmodel"
	"userv6/internal/population"
)

// ReferenceUsers is the population size the default calibration targets.
// Shared-pool sizes and attacker volume scale linearly from it.
const ReferenceUsers = 200_000

// Scenario configures a simulation run. Construct with DefaultScenario
// and adjust via the With* helpers; the zero value is not usable.
type Scenario struct {
	// Seed drives every random choice in the run.
	Seed uint64
	// Users is the benign population size.
	Users int
	// Population tunes user synthesis; its Users and Seed fields are
	// overridden by the Scenario's.
	Population population.Config
	// Abuse tunes the attacker model; AccountsPerDay is scaled to the
	// population size unless AbuseUnscaled is set.
	Abuse         abuse.Config
	AbuseUnscaled bool
}

// DefaultScenario returns the calibrated scenario at the given
// population size (0 means ReferenceUsers).
func DefaultScenario(users int) Scenario {
	if users <= 0 {
		users = ReferenceUsers
	}
	return Scenario{
		Seed:       1,
		Users:      users,
		Population: population.DefaultConfig(),
		Abuse:      abuse.DefaultConfig(),
	}
}

// WithSeed returns a copy with a different seed.
func (s Scenario) WithSeed(seed uint64) Scenario {
	s.Seed = seed
	return s
}

// Scale returns the pool/volume scale factor implied by the population.
func (s Scenario) Scale() float64 {
	return float64(s.Users) / ReferenceUsers
}

// worldConfig derives the world-model configuration.
func (s Scenario) worldConfig() netmodel.WorldConfig {
	return netmodel.WorldConfig{Seed: s.Seed, Scale: s.Scale()}
}
