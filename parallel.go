package userv6

// Parallel generation: because telemetry is a pure function of (user,
// day), disjoint user ranges generate concurrently with zero
// coordination, and the mergeable analyzers fold shard results together.
// This is the throughput path for large populations.

import (
	"runtime"
	"sync"

	"userv6/internal/core"
	"userv6/internal/netaddr"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// GenerateParallel streams benign telemetry for days [from, to] across
// shards goroutines (0 means GOMAXPROCS). newConsumer is called once per
// shard to create that shard's consumer; consumers never see another
// shard's observations, so they need no locking. It returns the
// consumers for merging.
//
// Abusive telemetry is not included: attacker volume is small enough to
// stream serially afterwards.
func (s *Sim) GenerateParallel(from, to simtime.Day, shards int, newConsumer func() telemetry.EmitFunc) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	users := len(s.Pop.Users)
	if shards > users {
		shards = users
	}
	var wg sync.WaitGroup
	per := (users + shards - 1) / shards
	for sh := 0; sh < shards; sh++ {
		lo := sh * per
		hi := lo + per
		if hi > users {
			hi = users
		}
		if lo >= hi {
			break
		}
		emit := newConsumer()
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s.Benign.GenerateUsers(lo, hi, from, to, emit)
		}(lo, hi)
	}
	wg.Wait()
}

// Fig2Parallel computes the Figure 2 histograms using sharded
// generation and merged analyzers — identical results to Fig2, faster
// on multicore machines.
func (s *Sim) Fig2Parallel(shards int) AddrsPerUserResult {
	from, to := AnalysisWeek()
	var mu sync.Mutex
	var weeks, days []*core.UserCentric

	s.GenerateParallel(from, to, shards, func() telemetry.EmitFunc {
		week := core.NewUserCentricFor(false)
		day := core.NewUserCentricFor(false)
		mu.Lock()
		weeks = append(weeks, week)
		days = append(days, day)
		mu.Unlock()
		return func(o telemetry.Observation) {
			week.Observe(o)
			if o.Day == to {
				day.Observe(o)
			}
		}
	})

	week := core.NewUserCentricFor(false)
	day := core.NewUserCentricFor(false)
	for _, w := range weeks {
		week.Merge(w)
	}
	for _, d := range days {
		day.Merge(d)
	}
	return AddrsPerUserResult{
		DayV4:    day.AddrsPerUser(netaddr.IPv4),
		DayV6:    day.AddrsPerUser(netaddr.IPv6),
		WeekV4:   week.AddrsPerUser(netaddr.IPv4),
		WeekV6:   week.AddrsPerUser(netaddr.IPv6),
		Entities: week.Users(),
	}
}

// IPCentricParallel computes users-per-prefix at one granularity with
// sharded generation and merged analyzers.
func (s *Sim) IPCentricParallel(fam netaddr.Family, length, shards int) *core.IPCentric {
	from, to := AnalysisWeek()
	var mu sync.Mutex
	var parts []*core.IPCentric
	s.GenerateParallel(from, to, shards, func() telemetry.EmitFunc {
		ic := core.NewIPCentric(fam, length)
		mu.Lock()
		parts = append(parts, ic)
		mu.Unlock()
		return ic.Observe
	})
	// Abusive traffic streams serially into the merged result.
	out := core.NewIPCentric(fam, length)
	for _, p := range parts {
		out.Merge(p)
	}
	s.Abusive.Generate(from, to, out.Observe)
	return out
}
