package userv6

// Parallel generation: because telemetry is a pure function of (user,
// day), disjoint user ranges generate concurrently with zero
// coordination, and the mergeable analyzers fold shard results together.
// This is the throughput path for large populations.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"userv6/internal/core"
	"userv6/internal/dataset"
	"userv6/internal/netaddr"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// ShardPanicError reports a panic recovered inside one generation
// shard, attributing the fault to the shard's user-index range so a
// bad user record (or a buggy consumer) can be localized without
// taking down the run.
type ShardPanicError struct {
	Shard          int
	UserLo, UserHi int // user-index range [UserLo, UserHi) of the shard
	Value          any // the recovered panic value
	Stack          []byte
}

func (e *ShardPanicError) Error() string {
	return fmt.Sprintf("userv6: generation shard %d (users [%d,%d)) panicked: %v",
		e.Shard, e.UserLo, e.UserHi, e.Value)
}

// GenerateParallelCtx streams benign telemetry for days [from, to]
// across shards goroutines (0 means GOMAXPROCS), with cancellation and
// fault isolation. newConsumer is called once per shard to create that
// shard's consumer; consumers never see another shard's observations,
// so they need no locking.
//
// Each shard checks ctx between (user, day) batches, so cancellation —
// external or triggered by a sibling's failure — stops the run within
// one batch. A panic in a shard (generator or consumer) is recovered,
// converted into a *ShardPanicError naming the shard's user range, and
// cancels the remaining shards. The first real fault wins: cancellation
// noise from siblings never masks the error that caused it. A nil
// return means every shard completed.
//
// Abusive telemetry is not included: attacker volume is small enough to
// stream serially afterwards.
func (s *Sim) GenerateParallelCtx(ctx context.Context, from, to simtime.Day, shards int, newConsumer func() telemetry.EmitFunc) error {
	return s.GenerateParallelRangesCtx(ctx, from, to, shards, func(_, _, _ int) telemetry.EmitFunc {
		return newConsumer()
	})
}

// ShardRanges returns the contiguous user-index ranges [lo, hi) that
// GenerateParallelRangesCtx assigns to each shard for the given shard
// count (0 means GOMAXPROCS, clamped to the population size). Sharded
// sinks use it to size manifests before generation starts.
func (s *Sim) ShardRanges(shards int) [][2]int {
	users := len(s.Pop.Users)
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > users {
		shards = users
	}
	var out [][2]int
	if shards == 0 {
		return out
	}
	per := (users + shards - 1) / shards
	for sh := 0; sh < shards; sh++ {
		lo := sh * per
		hi := min(lo+per, users)
		if lo >= hi {
			break
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// GenerateParallelRangesCtx is GenerateParallelCtx with the shard's
// identity exposed: newConsumer receives the shard index and its
// user-index range [lo, hi), which per-shard sinks (sharded dataset
// part files, manifest bookkeeping) need to label their output.
// Factories run serially, in shard order, before any generation
// starts, so they may append to shared state without locking.
func (s *Sim) GenerateParallelRangesCtx(ctx context.Context, from, to simtime.Day, shards int, newConsumer func(shard, lo, hi int) telemetry.EmitFunc) error {
	return s.GenerateParallelSinksCtx(ctx, from, to, shards, func(sh, lo, hi int) (telemetry.EmitFunc, func(error) error) {
		return newConsumer(sh, lo, hi), nil
	})
}

// GenerateParallelSinksCtx is GenerateParallelRangesCtx for sinks with
// per-shard completion work: newSink returns the shard's emit func plus
// an optional done hook. done runs on the shard's goroutine as soon as
// that shard's user range finishes generating — before sibling shards
// complete — receiving the shard's generation error (nil on success,
// including the factory-serial guarantee: a done hook may not touch
// shared state without locking). The error done returns replaces the
// shard's result, so a sink can finalize its output file the moment its
// range is done and surface finalization failures with the same
// first-fault-wins semantics as generation errors. A shard whose
// generation was cancelled still gets its done(err) call, letting sinks
// flush what they hold.
func (s *Sim) GenerateParallelSinksCtx(ctx context.Context, from, to simtime.Day, shards int, newSink func(shard, lo, hi int) (telemetry.EmitFunc, func(error) error)) error {
	ranges := s.ShardRanges(shards)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
	)
	report := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if firstErr == nil || (isCancellation(firstErr) && !isCancellation(err)) {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for sh, r := range ranges {
		lo, hi := r[0], r[1]
		emit, done := newSink(sh, lo, hi)
		wg.Add(1)
		go func(sh, lo, hi int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					report(&ShardPanicError{Shard: sh, UserLo: lo, UserHi: hi,
						Value: v, Stack: debug.Stack()})
				}
			}()
			err := s.Benign.GenerateUsersCtx(ctx, lo, hi, from, to, emit)
			if done != nil {
				err = done(err)
			}
			report(err)
		}(sh, lo, hi)
	}
	wg.Wait()
	return firstErr
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// GenerateParallel is the errorless variant of GenerateParallelCtx,
// kept for callers with nowhere to route an error. It never cancels;
// a shard panic is re-raised in the caller's goroutine (the pre-context
// behavior, minus the torn-down sibling goroutines).
func (s *Sim) GenerateParallel(from, to simtime.Day, shards int, newConsumer func() telemetry.EmitFunc) {
	if err := s.GenerateParallelCtx(context.Background(), from, to, shards, newConsumer); err != nil {
		// Background context never cancels, so the only possible error
		// is a recovered shard panic.
		panic(err)
	}
}

// AnalyzeParallelCtx populates an AnalyzerSet from freshly generated
// telemetry for days [from, to], fanning generation across shards
// goroutines (0 means GOMAXPROCS). Each generation shard — a disjoint
// user range — feeds a private replica of every registered analyzer, so
// no analyzer state crosses goroutines; the replicas fold into the
// set's primaries when every shard completes. User-disjoint sharding
// makes the fold exact for every analyzer, even ones that withhold the
// commutative declaration. The benign stream runs sharded;
// abusive telemetry (when includeAbusive is set) streams serially into
// the folded primaries afterwards, mirroring Generate's ordering. On
// error — cancellation or a *ShardPanicError — the set's primaries are
// left unfolded.
func (s *Sim) AnalyzeParallelCtx(ctx context.Context, from, to simtime.Day, shards int, set *core.AnalyzerSet, includeAbusive bool) error {
	var replicas []*core.Replica
	// Consumer factories run serially before generation starts, so the
	// append needs no lock.
	err := s.GenerateParallelCtx(ctx, from, to, shards, func() telemetry.EmitFunc {
		r := set.NewReplica()
		replicas = append(replicas, r)
		return r.Emit()
	})
	if err != nil {
		return err
	}
	set.Fold(replicas...)
	if includeAbusive {
		s.Abusive.Generate(from, to, set.Emit())
	}
	return nil
}

// analyzeFileAs wraps path as a FileSource and runs it under the
// requested mode — the shared body of the historical AnalyzeDataset*
// entry points, which are now thin shims over the source/plan/execute
// stack (see analyze.go).
func analyzeFileAs(ctx context.Context, path string, workers int, set *core.AnalyzerSet, tolerant bool, req core.ModeRequest) (telemetry.SalvageReport, error) {
	src, err := dataset.NewFileSource(path)
	if err != nil {
		return telemetry.SalvageReport{}, err
	}
	return AnalyzeSource(ctx, src, set, AnalyzeOptions{Workers: workers, Tolerant: tolerant, Mode: req})
}

// AnalyzeDatasetParallel replays a dataset file through an AnalyzerSet
// with both halves of the pipeline parallel: workers goroutines decode
// and checksum-verify blocks (dataset.OpenParallel) while an equal pool
// of analyzer workers consumes the records, routed by user hash
// (AnalyzerSet.NewPipeline). tolerant switches to the salvage read path
// and reports what fraction of the stream the results describe; in
// strict mode the returned report covers the intact stream. The set's
// primaries are only folded on success.
func (s *Sim) AnalyzeDatasetParallel(ctx context.Context, path string, workers int, set *core.AnalyzerSet, tolerant bool) (telemetry.SalvageReport, error) {
	return analyzeFileAs(ctx, path, workers, set, tolerant, core.RequestPipeline)
}

// AnalyzeDatasetFused replays a dataset file through an AnalyzerSet on
// the fused fast path: each decode worker owns a private Replica of
// every registered analyzer and feeds it directly from the block it
// just decoded — no ordered-delivery heap, no hash router, no
// cross-goroutine record handoff at all. The replicas fold into the
// set's primaries once, when the whole stream has been consumed; on
// error (including a recovered worker panic, surfaced as a
// *dataset.WorkerPanicError) the primaries are left unfolded. The path
// is exact only when every registered analyzer declared a commutative
// Merge, so a set that does not report Commutative() falls back to
// the hash-routed pipeline, which preserves per-user order. tolerant
// selects the salvage read; the returned report then covers what the
// results describe, otherwise the intact stream.
func (s *Sim) AnalyzeDatasetFused(ctx context.Context, path string, workers int, set *core.AnalyzerSet, tolerant bool) (telemetry.SalvageReport, error) {
	return analyzeFileAs(ctx, path, workers, set, tolerant, core.RequestFused)
}

// AnalyzeDatasetUnordered replays a dataset file with completion-order
// batch delivery: the parallel reader's workers invoke the callback
// concurrently as blocks finish decoding, and a channel of analyzer
// replicas serves as the consumption pool. Unlike the fused path the
// batch still crosses a goroutine boundary conceptually (any replica
// may consume any block), which is exactly the property the
// commutativity requirement covers — so instead of falling back, a
// non-commutative set is an error naming the offending registrations.
// The set's primaries are only folded on success.
func (s *Sim) AnalyzeDatasetUnordered(ctx context.Context, path string, workers int, set *core.AnalyzerSet, tolerant bool) (telemetry.SalvageReport, error) {
	return analyzeFileAs(ctx, path, workers, set, tolerant, core.RequestUnordered)
}

// Fig2Parallel computes the Figure 2 histograms using sharded
// generation and merged analyzers — identical results to Fig2, faster
// on multicore machines.
func (s *Sim) Fig2Parallel(shards int) AddrsPerUserResult {
	from, to := AnalysisWeek()
	set := core.NewAnalyzerSet()
	mkUC := func() *core.UserCentric { return core.NewUserCentricFor(false) }
	week := mkUC()
	core.AddAnalyzer(set, week, mkUC, (*core.UserCentric).Merge)
	day := mkUC()
	core.AddAnalyzerFiltered(set, day, mkUC, (*core.UserCentric).Merge,
		func(o telemetry.Observation) bool { return o.Day == to })

	// Background context never cancels, so the only possible error is a
	// recovered shard panic; re-raise it like GenerateParallel.
	if err := s.AnalyzeParallelCtx(context.Background(), from, to, shards, set, false); err != nil {
		panic(err)
	}
	return AddrsPerUserResult{
		DayV4:    day.AddrsPerUser(netaddr.IPv4),
		DayV6:    day.AddrsPerUser(netaddr.IPv6),
		WeekV4:   week.AddrsPerUser(netaddr.IPv4),
		WeekV6:   week.AddrsPerUser(netaddr.IPv6),
		Entities: week.Users(),
	}
}

// IPCentricParallel computes users-per-prefix at one granularity with
// sharded generation and merged analyzers.
func (s *Sim) IPCentricParallel(fam netaddr.Family, length, shards int) *core.IPCentric {
	from, to := AnalysisWeek()
	set := core.NewAnalyzerSet()
	mk := func() *core.IPCentric { return core.NewIPCentric(fam, length) }
	out := mk()
	core.AddAnalyzer(set, out, mk, (*core.IPCentric).Merge)
	if err := s.AnalyzeParallelCtx(context.Background(), from, to, shards, set, true); err != nil {
		panic(err)
	}
	return out
}
