package userv6

import (
	"userv6/internal/core"
	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/simtime"
	"userv6/internal/stats"
	"userv6/internal/telemetry"
)

// Fig4Lengths are the prefix lengths swept by Figure 4.
var Fig4Lengths = []int{32, 36, 40, 44, 48, 52, 56, 60, 64, 68, 72, 80, 96, 112, 128}

// Fig9Lengths are the prefix lengths compared in Figure 9 (plus IPv4).
var Fig9Lengths = []int{128, 96, 72, 68, 64, 56, 48, 44}

// Fig1 computes the daily IPv6 prevalence series for [from, to]
// (Figure 1). Only benign traffic counts, as in the paper's user and
// request random samples.
func (s *Sim) Fig1(from, to simtime.Day) []core.DayShare {
	prev := core.NewPrevalence()
	s.Benign.Generate(from, to, prev.Observe)
	return prev.Daily()
}

// Table1Result is the ASN prevalence table plus the §4.2 bands.
type Table1Result struct {
	Rows              []core.RatioRow
	ZeroShare         float64
	UnderTenShare     float64
	QualifyingASNs    int
	MinUsersThreshold int
}

// Table1 ranks ASNs by IPv6 user ratio over [from, to] (Table 1).
func (s *Sim) Table1(from, to simtime.Day) Table1Result {
	prev := core.NewPrevalence()
	s.Benign.Generate(from, to, prev.Observe)
	min := s.Scenario.Users / 150
	if min < 20 {
		min = 20
	}
	zero, under, total := prev.ASNShareBands(min)
	rows := prev.TopASNs(min, 10, s.World.ASNName)
	// Attribute each ASN to its operator's country.
	countryOf := make(map[netmodel.ASN]string, len(s.World.Networks()))
	for _, n := range s.World.Networks() {
		countryOf[n.ASN] = n.Country
	}
	for i := range rows {
		rows[i].Country = countryOf[rows[i].ASN]
	}
	return Table1Result{
		Rows:              rows,
		ZeroShare:         zero,
		UnderTenShare:     under,
		QualifyingASNs:    total,
		MinUsersThreshold: min,
	}
}

// Table2Result holds country IPv6 ratios for two comparison windows.
type Table2Result struct {
	January, April []core.RatioRow
	// Germany captures the lockdown shift (Appendix A.2).
	GermanyJan, GermanyApr float64
	GreeceJan, GreeceApr   float64
}

// Table2 computes country IPv6 user ratios for the Jan 23-29 and
// Apr 13-19 weeks (Table 2 / Figure 12).
func (s *Sim) Table2() Table2Result {
	min := s.Scenario.Users / 1000
	if min < 10 {
		min = 10
	}
	jan := core.NewPrevalence()
	s.Benign.Generate(simtime.JanWeekStart, simtime.JanWeekEnd, jan.Observe)
	apr := core.NewPrevalence()
	s.Benign.Generate(simtime.AnalysisWeekStart, simtime.AnalysisWeekEnd, apr.Observe)
	var r Table2Result
	r.January = jan.TopCountries(min, 10)
	r.April = apr.TopCountries(min, 10)
	r.GermanyJan, _ = jan.CountryRatio("DE")
	r.GermanyApr, _ = apr.CountryRatio("DE")
	r.GreeceJan, _ = jan.CountryRatio("GR")
	r.GreeceApr, _ = apr.CountryRatio("GR")
	return r
}

// CountryRatios returns every qualifying country's IPv6 user ratio over
// the analysis week, descending — the data behind the Figure 12
// choropleth.
func (s *Sim) CountryRatios() []core.RatioRow {
	min := s.Scenario.Users / 1000
	if min < 10 {
		min = 10
	}
	prev := core.NewPrevalence()
	s.Benign.Generate(simtime.AnalysisWeekStart, simtime.AnalysisWeekEnd, prev.Observe)
	return prev.TopCountries(min, 0)
}

// ClientAddrPatterns computes the §4.4 transition-protocol and IID
// structure summary over the analysis week.
func (s *Sim) ClientAddrPatterns() core.ClientAddrPatterns {
	uc := core.NewUserCentric()
	s.Benign.Generate(simtime.AnalysisWeekStart, simtime.AnalysisWeekEnd, uc.Observe)
	return uc.AddrPatterns()
}

// AddrsPerUserResult holds Figure 2/3 histograms: distinct addresses per
// entity for one day and one week, per family.
type AddrsPerUserResult struct {
	DayV4, DayV6, WeekV4, WeekV6 *stats.IntHist
	Entities                     int
}

// Fig2 computes benign addresses-per-user CDF inputs (Figure 2) over the
// analysis week, with the single-day cut on the week's last day.
func (s *Sim) Fig2() AddrsPerUserResult {
	return s.addrsPerEntity(false)
}

// Fig3 computes the abusive-account equivalent (Figure 3).
func (s *Sim) Fig3() AddrsPerUserResult {
	return s.addrsPerEntity(true)
}

func (s *Sim) addrsPerEntity(abusive bool) AddrsPerUserResult {
	from, to := AnalysisWeek()
	week := core.NewUserCentricFor(abusive)
	day := core.NewUserCentricFor(abusive)
	feed := func(o telemetry.Observation) {
		week.Observe(o)
		if o.Day == to {
			day.Observe(o)
		}
	}
	if abusive {
		s.Abusive.Generate(from, to, feed)
	} else {
		s.Benign.Generate(from, to, feed)
	}
	return AddrsPerUserResult{
		DayV4:    day.AddrsPerUser(netaddr.IPv4),
		DayV6:    day.AddrsPerUser(netaddr.IPv6),
		WeekV4:   week.AddrsPerUser(netaddr.IPv4),
		WeekV6:   week.AddrsPerUser(netaddr.IPv6),
		Entities: week.Users(),
	}
}

// Fig4Result holds the prefix-span curves for users and abusive
// accounts.
type Fig4Result struct {
	Users, Abusive []core.SpanShare
}

// Fig4 computes the share of entities whose IPv6 addresses span 1/2/3
// prefixes at each length over the analysis week (Figure 4).
func (s *Sim) Fig4() Fig4Result {
	from, to := AnalysisWeek()
	users := core.NewUserCentricFor(false)
	aas := core.NewUserCentricFor(true)
	s.Benign.Generate(from, to, users.Observe)
	s.Abusive.Generate(from, to, aas.Observe)
	return Fig4Result{
		Users:   users.PrefixSpans(Fig4Lengths),
		Abusive: aas.PrefixSpans(Fig4Lengths),
	}
}

// LifespanResult holds Figure 5/6 outputs for one population.
type LifespanResult struct {
	// AgeV4/AgeV6 are the pair-age histograms at address granularity;
	// MedianV4/MedianV6 the per-user median age histograms (Figure 5).
	AgeV4, AgeV6       *stats.IntHist
	MedianV4, MedianV6 *stats.IntHist
	// FreshV4/FreshV6 are Figure 6's per-length freshness curves.
	FreshV4, FreshV6 []core.FreshShare
}

// LifespanLengths are the prefix lengths Figure 6 sweeps.
var LifespanLengths = []int{8, 16, 24, 32, 48, 64, 80, 96, 112, 128}

// Fig5And6 computes address and prefix lifespans over a 28-day lookback
// ending on the analysis week's last day, for benign users
// (abusive=false) or abusive accounts (abusive=true).
func (s *Sim) Fig5And6(abusive bool) LifespanResult {
	_, ref := AnalysisWeek()
	ls := core.NewLifespans(ref, LifespanLengths...).Restrict(abusive)
	from := ref - 27
	if from < 0 {
		from = 0
	}
	if abusive {
		s.Abusive.Generate(from, ref, ls.Observe)
	} else {
		s.Benign.Generate(from, ref, ls.Observe)
	}
	return LifespanResult{
		AgeV4:    ls.AgeHist(netaddr.IPv4, 32),
		AgeV6:    ls.AgeHist(netaddr.IPv6, 128),
		MedianV4: ls.MedianAgePerUser(netaddr.IPv4, 32),
		MedianV6: ls.MedianAgePerUser(netaddr.IPv6, 128),
		FreshV4:  ls.FreshShares(netaddr.IPv4),
		FreshV6:  ls.FreshShares(netaddr.IPv6),
	}
}

// IPCentricResult bundles the per-granularity population analyzers for
// Figures 7-10 and the outlier work. Keys are prefix lengths; V4 holds
// the IPv4 address analyzer.
type IPCentricResult struct {
	V4 *core.IPCentric
	V6 map[int]*core.IPCentric
	// DayV4/DayV6 are single-day views (first day of the window).
	DayV4, DayV6 *core.IPCentric
}

// IPCentricWeek runs the IP-centric analyzers over the analysis week at
// the Figure 9 lengths, feeding both benign and abusive telemetry.
func (s *Sim) IPCentricWeek() IPCentricResult {
	from, to := AnalysisWeek()
	r := IPCentricResult{
		V4:    core.NewIPCentric(netaddr.IPv4, 32),
		V6:    make(map[int]*core.IPCentric, len(Fig9Lengths)),
		DayV4: core.NewIPCentric(netaddr.IPv4, 32),
		DayV6: core.NewIPCentric(netaddr.IPv6, 128),
	}
	for _, l := range Fig9Lengths {
		r.V6[l] = core.NewIPCentric(netaddr.IPv6, l)
	}
	feed := func(o telemetry.Observation) {
		r.V4.Observe(o)
		for _, ic := range r.V6 {
			ic.Observe(o)
		}
		if o.Day == from {
			r.DayV4.Observe(o)
			r.DayV6.Observe(o)
		}
	}
	s.Generate(from, to, feed)
	return r
}

// OutlierResult summarizes RQ3: extreme users and extreme prefixes.
type OutlierResult struct {
	// Users with more than K addresses, per family, and the maxima.
	HeavyUserThreshold         int
	V4HeavyUsers, V6HeavyUsers int
	V4MaxAddrs, V6MaxAddrs     int
	// Addresses with more than K users, per family, and the maxima.
	HeavyAddrThreshold         int
	V4HeavyAddrs, V6HeavyAddrs int
	V4MaxUsers, V6MaxUsers     int
	V6Max64Users               int
	// Concentration of heavy IPv6 addresses (ASN / structured IIDs).
	V6Concentration core.HeavyConcentration
}

// Outliers computes the §5.1.3/§6.1.3 outlier summary over the analysis
// week. Thresholds scale with the population (the paper's absolute
// counts come from a 0.1% sample of a billion-user platform).
func (s *Sim) Outliers() OutlierResult {
	from, to := AnalysisWeek()
	uc := core.NewUserCentric()
	s.Benign.Generate(from, to, uc.Observe)
	ipc := s.IPCentricWeek()

	userThresh := 30
	addrThresh := s.Scenario.Users / 1500
	if addrThresh < 20 {
		addrThresh = 20
	}
	r := OutlierResult{
		HeavyUserThreshold: userThresh,
		HeavyAddrThreshold: addrThresh,
		V4HeavyUsers:       uc.UsersWithMoreThan(netaddr.IPv4, userThresh),
		V6HeavyUsers:       uc.UsersWithMoreThan(netaddr.IPv6, userThresh),
		V4HeavyAddrs:       ipc.V4.PrefixesWithMoreThan(addrThresh),
		V6HeavyAddrs:       ipc.V6[128].PrefixesWithMoreThan(addrThresh),
		V6Concentration:    ipc.V6[128].ConcentrationAbove(addrThresh, s.World.ASNOf),
	}
	if tops := uc.TopUsersByAddrs(netaddr.IPv4, 1); len(tops) > 0 {
		r.V4MaxAddrs = tops[0].Count
	}
	if tops := uc.TopUsersByAddrs(netaddr.IPv6, 1); len(tops) > 0 {
		r.V6MaxAddrs = tops[0].Count
	}
	if tops := ipc.V4.TopPrefixes(1); len(tops) > 0 {
		r.V4MaxUsers = tops[0].Users
	}
	if tops := ipc.V6[128].TopPrefixes(1); len(tops) > 0 {
		r.V6MaxUsers = tops[0].Users
	}
	if tops := ipc.V6[64].TopPrefixes(1); len(tops) > 0 {
		r.V6Max64Users = tops[0].Users
	}
	return r
}

// Fig11Granularity identifies one ROC curve of Figure 11.
type Fig11Granularity struct {
	Name   string
	Family netaddr.Family
	Length int
}

// Fig11Granularities returns the four granularities the paper plots.
func Fig11Granularities() []Fig11Granularity {
	return []Fig11Granularity{
		{Name: "/128", Family: netaddr.IPv6, Length: 128},
		{Name: "/64", Family: netaddr.IPv6, Length: 64},
		{Name: "/56", Family: netaddr.IPv6, Length: 56},
		{Name: "IPv4", Family: netaddr.IPv4, Length: 32},
	}
}

// Fig11Result maps granularity name to its ROC curve.
type Fig11Result struct {
	Curves map[string]*stats.ROC
	// DayN and DayN1 are the evaluation days used.
	DayN, DayN1 simtime.Day
}

// Fig11 runs the §7.1 actioning simulation: day n = Apr 18, day n+1 =
// Apr 19, sweeping DefaultThresholds at each granularity.
func (s *Sim) Fig11() Fig11Result {
	_, to := AnalysisWeek()
	dayN, dayN1 := to-1, to
	acts := make([]*core.Actioning, 0, 4)
	for _, g := range Fig11Granularities() {
		acts = append(acts, core.NewActioning(g.Family, g.Length))
	}
	s.GenerateDay(dayN, func(o telemetry.Observation) {
		for _, a := range acts {
			a.ObserveDayN(o)
		}
	})
	s.GenerateDay(dayN1, func(o telemetry.Observation) {
		for _, a := range acts {
			a.ObserveDayN1(o)
		}
	})
	r := Fig11Result{Curves: make(map[string]*stats.ROC, 4), DayN: dayN, DayN1: dayN1}
	for i, g := range Fig11Granularities() {
		r.Curves[g.Name] = acts[i].Curve(core.DefaultThresholds())
	}
	return r
}

// Advise runs the full §7.2 policy advisor at the given FPR tolerance,
// deriving every input from the simulation.
func (s *Sim) Advise(fprTolerance float64) core.Advice {
	roc := s.Fig11()
	ipc := s.IPCentricWeek()
	life := s.Fig5And6(false)

	v6Users := make(map[int]*stats.IntHist, len(Fig9Lengths))
	v6Abusive := make(map[int]*stats.IntHist, len(Fig9Lengths))
	for l, ic := range ipc.V6 {
		v6Users[l] = ic.UsersPerPrefix()
		v6Abusive[l] = ic.AbusivePerAbusivePrefix()
	}
	freshV6 := 0.0
	if life.AgeV6.N() > 0 {
		freshV6 = life.AgeV6.CDFAt(0)
	}
	return core.Advise(core.AdvisorInputs{
		ROC128:             roc.Curves["/128"],
		ROC64:              roc.Curves["/64"],
		ROCV4:              roc.Curves["IPv4"],
		FPRTolerance:       fprTolerance,
		UsersPerV6Addr:     ipc.V6[128].UsersPerPrefix(),
		UsersPerV4Addr:     ipc.V4.UsersPerPrefix(),
		UsersPerV6Prefix:   v6Users,
		AbusivePerV6Prefix: v6Abusive,
		AbusivePerV4Addr:   ipc.V4.AbusivePerAbusivePrefix(),
		V6AddrFreshShare:   freshV6,
	})
}

// ASNOf exposes routing attribution for downstream tools.
func (s *Sim) ASNOf(a netaddr.Addr) netmodel.ASN { return s.World.ASNOf(a) }
