// Pipeline: the offline workflow — generate a telemetry dataset once,
// persist it with metadata, then run analyses from the file without
// regeneration. This is how the library would be used against real
// telemetry exports (see docs/REPLICATION.md).
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"userv6"
	"userv6/internal/core"
	"userv6/internal/dataset"
	"userv6/internal/netaddr"
	"userv6/internal/report"
	"userv6/internal/sampling"
	"userv6/internal/telemetry"
)

func main() {
	dir, err := os.MkdirTemp("", "userv6-pipeline")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "week.uv6")

	// Step 1: generate one analysis week into a dataset file, applying
	// the paper's user-sampling methodology at 50%.
	sim := userv6.NewSim(userv6.DefaultScenario(8_000))
	from, to := userv6.AnalysisWeek()
	sampler := sampling.ByUser(0.5, 42)
	w, err := dataset.Create(path, dataset.Meta{
		Seed: sim.Scenario.Seed, Users: sim.Scenario.Users,
		FromDay: int(from), ToDay: int(to), Sample: "user:0.5",
	})
	if err != nil {
		panic(err)
	}
	emit, emitErr := w.Emit()
	sim.Generate(from, to, sampling.Filter(sampler, emit))
	if *emitErr != nil {
		panic(*emitErr)
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("step 1: wrote %s (%d KiB)\n", filepath.Base(path), st.Size()/1024)

	// Step 1b: verify integrity before shipping the file anywhere. Scan
	// walks every block checksum without extracting records — the same
	// check `userv6gen verify` runs, and what a consumer should do on
	// receipt before trusting a dataset.
	rep, err := dataset.Scan(path)
	if err != nil {
		panic(err)
	}
	fmt.Printf("step 1b: verified %d blocks, %d records, intact=%v\n",
		rep.Stream.Blocks, rep.Stream.Records, rep.Intact())

	// Step 2: reopen and analyze — no simulator involved from here on.
	r, err := dataset.Open(path)
	if err != nil {
		panic(err)
	}
	defer r.Close()
	m := r.Meta()
	fmt.Printf("step 2: dataset seed=%d users=%d days=%d..%d sample=%s records=%d\n\n",
		m.Seed, m.Users, m.FromDay, m.ToDay, m.Sample, m.Records)

	uc := core.NewUserCentricFor(false)
	ic6 := core.NewIPCentric(netaddr.IPv6, 128)
	fromDay, _ := m.Window()
	churn := core.NewChurnAttribution(fromDay)
	if err := r.ForEach(func(o telemetry.Observation) {
		uc.Observe(o)
		ic6.Observe(o)
		churn.Observe(o)
	}); err != nil {
		panic(err)
	}

	h4, h6 := uc.AddrsPerUser(netaddr.IPv4), uc.AddrsPerUser(netaddr.IPv6)
	report.NewTable("metric", "value").
		Row("sampled users", uc.Users()).
		Row("extrapolated users", fmt.Sprintf("%.0f", float64(uc.Users())/0.5)).
		Row("v4 / v6 weekly medians", fmt.Sprintf("%d / %d", h4.Median(), h6.Median())).
		Row("single-user v6 addresses", report.Percent(ic6.UsersPerPrefix().CDFAt(1))).
		Write(os.Stdout)

	b := churn.Breakdown()
	fmt.Printf("\nnew-address causes: %s rotation, %s subnet move, %s network switch\n",
		report.Percent(b.Share(0)), report.Percent(b.Share(1)), report.Percent(b.Share(2)))
}
