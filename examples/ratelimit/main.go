// Rate-limit threshold derivation: size per-address and per-prefix
// request budgets from the measured user populations, the §7.2
// rate-limiting guidance.
//
// IPv4 thresholds must be generous because a single address can front
// thousands of users; IPv6 thresholds can be tight because addresses are
// nearly single-user — except for a small, predictable set of heavy
// gateway addresses that deserve a dedicated policy.
//
// Run with: go run ./examples/ratelimit
package main

import (
	"fmt"
	"os"

	"userv6"
	"userv6/internal/report"
	"userv6/internal/stats"
)

func main() {
	sim := userv6.NewSim(userv6.DefaultScenario(20_000))
	ipc := sim.IPCentricWeek()

	// Benign user population quantiles per granularity: a rate limiter
	// that budgets R requests per legitimate user can multiply these.
	t := report.NewTable("granularity", "P50 users", "P99 users", "P99.9 users", "max")
	rows := []struct {
		name string
		h    *stats.IntHist
	}{
		{"IPv4 address", ipc.V4.BenignPerPrefix()},
		{"IPv6 address", ipc.V6[128].BenignPerPrefix()},
		{"IPv6 /64", ipc.V6[64].BenignPerPrefix()},
		{"IPv6 /48", ipc.V6[48].BenignPerPrefix()},
	}
	for _, r := range rows {
		t.Row(r.name, r.h.QuantileInt(0.5), r.h.QuantileInt(0.99), r.h.QuantileInt(0.999), r.h.Max())
	}
	t.Write(os.Stdout)

	// Identify the heavy IPv6 addresses that need carve-outs: the paper
	// found they concentrate in one mobile-gateway ASN and carry a
	// recognizable structured-IID signature.
	thresh := sim.Scenario.Users / 1500
	if thresh < 20 {
		thresh = 20
	}
	conc := ipc.V6[128].ConcentrationAbove(thresh, sim.ASNOf)
	fmt.Printf("\nheavy IPv6 addresses (>%d users/week): %d\n", thresh, conc.Heavy)
	if conc.Heavy > 0 {
		fmt.Printf("  owned by %d ASN(s); top: AS%d (%s) with %s\n",
			conc.ASNs, conc.TopASN, sim.World.ASNName(conc.TopASN), report.Percent(conc.TopASNShare))
		fmt.Printf("  structured-IID signature on %s of them -> allowlist by signature, not by observed load\n",
			report.Percent(conc.StructuredShare))
	}

	// The v4-equivalence mapping: where existing IPv4 rate-limit logic
	// should be attached in IPv6 space.
	a := sim.Advise(0.001)
	fmt.Printf("\nIPv4-address rate limits translate to IPv6 /%d prefixes\n", a.RateLimitV4EquivalentLength)
	fmt.Printf("budget %d legitimate user(s) per IPv6 address (99.9th percentile)\n", a.RateLimitUsersPerV6Addr)
}
