// ML feature extraction: build per-entity IP-behavior feature vectors of
// the kind the paper's §7.2 discusses for abuse classifiers, and show
// that the features separate benign users from abusive accounts.
//
// Features per entity over a week:
//
//	v4Addrs, v6Addrs     distinct addresses per family
//	v6Prefixes64         distinct /64s
//	v6PrefixSpread       v6Addrs / v6Prefixes64 (IID churn inside /64s)
//	crossFamily          active on both protocols
//	structuredShare      share of v6 addresses with structured IIDs
//	hostingShare         share of observations from hosting/proxy ASNs
//
// The feature extraction lives in the library (core.FeatureExtractor /
// FeatureVector.AbuseScore); this example runs it over a simulated week
// and shows the scorer separating abusive accounts from benign users —
// and why an IPv4-era "address churn" feature would misfire on IPv6.
//
// Run with: go run ./examples/mlfeatures
package main

import (
	"fmt"
	"os"
	"sort"

	"userv6"
	"userv6/internal/core"
	"userv6/internal/netmodel"
	"userv6/internal/report"
	"userv6/internal/stats"
	"userv6/internal/telemetry"
)

func main() {
	sim := userv6.NewSim(userv6.DefaultScenario(15_000))
	from, to := userv6.AnalysisWeek()

	hosting := make(map[netmodel.ASN]bool)
	for _, n := range sim.World.Hosting {
		hosting[n.ASN] = true
	}
	for _, n := range sim.World.Proxies {
		hosting[n.ASN] = true
	}

	fe := core.NewFeatureExtractor(hosting)
	labels := make(map[uint64]bool)
	sim.Generate(from, to, func(o telemetry.Observation) {
		fe.Observe(o)
		if o.Abusive {
			labels[o.UserID] = true
		}
	})

	var benign, abusive []float64
	fe.ForEach(func(uid uint64, v core.FeatureVector) {
		if labels[uid] {
			abusive = append(abusive, v.AbuseScore())
		} else {
			benign = append(benign, v.AbuseScore())
		}
	})
	be, ae := stats.NewECDF(benign), stats.NewECDF(abusive)

	report.NewTable("population", "N", "mean score", "P90 score", "share >= 1.0").
		Row("benign users", be.N(), be.Mean(), be.Quantile(0.9), 1-be.At(0.999)).
		Row("abusive accounts", ae.N(), ae.Mean(), ae.Quantile(0.9), 1-ae.At(0.999)).
		Write(os.Stdout)

	// Detection quality at a simple cutoff.
	cut := 1.25
	var tp, fp int
	for _, v := range abusive {
		if v >= cut {
			tp++
		}
	}
	for _, v := range benign {
		if v >= cut {
			fp++
		}
	}
	fmt.Printf("\nthreshold %.1f: recall %.1f%% of abusive accounts at %.2f%% benign false positives\n",
		cut, 100*float64(tp)/float64(len(abusive)), 100*float64(fp)/float64(len(benign)))

	// Show the top-scoring entities for inspection.
	type scored struct {
		id    uint64
		s     float64
		badge string
	}
	var all []scored
	fe.ForEach(func(id uint64, v core.FeatureVector) {
		badge := "benign"
		if labels[id] {
			badge = "ABUSIVE"
		}
		all = append(all, scored{id, v.AbuseScore(), badge})
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].id < all[j].id
	})
	fmt.Println("\ntop-scored entities:")
	for i := 0; i < 10 && i < len(all); i++ {
		fmt.Printf("  %d. entity %d  score %.2f  (%s)\n", i+1, all[i].id, all[i].s, all[i].badge)
	}
}
