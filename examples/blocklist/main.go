// Blocklist policy evaluation: pick an IPv6 blocklisting granularity and
// threshold for an operator's false-positive budget, the §7.1/§7.2
// workflow.
//
// The program simulates day-n actioning evaluated on day n+1 at every
// granularity the paper considers, prints the operating points, and asks
// the policy advisor for a recommendation at three FPR tolerances.
//
// Run with: go run ./examples/blocklist
package main

import (
	"fmt"
	"os"

	"userv6"
	"userv6/internal/report"
)

func main() {
	sim := userv6.NewSim(userv6.DefaultScenario(20_000))

	roc := sim.Fig11()
	fmt.Printf("actioning simulation: day %s -> day %s\n\n", roc.DayN, roc.DayN1)

	t := report.NewTable("granularity", "AUC", "TPR@0.01% FPR", "TPR@0.1% FPR", "TPR@1% FPR")
	for _, g := range userv6.Fig11Granularities() {
		curve := roc.Curves[g.Name]
		row := []any{g.Name, curve.AUC()}
		for _, tol := range []float64{0.0001, 0.001, 0.01} {
			if tpr, ok := curve.TPRAtFPR(tol); ok {
				row = append(row, report.Percent(tpr))
			} else {
				row = append(row, "-")
			}
		}
		t.Row(row...)
	}
	t.Write(os.Stdout)

	fmt.Println("\npolicy advisor:")
	for _, tol := range []float64{0.0001, 0.001, 0.01} {
		a := sim.Advise(tol)
		fmt.Printf("  at %s FPR budget: block /%d prefixes, TTL %d day(s), recall %s\n",
			report.Percent(tol), a.BlocklistGranularity, a.BlocklistTTLDays, report.Percent(a.BlocklistTPR))
	}

	a := sim.Advise(0.001)
	fmt.Printf("\nexisting IPv4 blocklist policies translate to IPv6 /%d prefixes\n", a.BlocklistV4EquivalentLength)
	if a.V6BeatsV4BelowFPR {
		fmt.Println("at low FPR operating points, IPv6 actioning outperforms IPv4 — as the paper found")
	}
}
