// Threat-exchange value decay: how fast do shared IPv6 indicators go
// stale? The paper (§7.2) concludes that intelligence on abusive IPv6
// addresses degrades within a day; this example measures indicator
// half-life directly by re-evaluating day-n indicators on each following
// day.
//
// Run with: go run ./examples/threatexchange
package main

import (
	"fmt"
	"os"

	"userv6"
	"userv6/internal/netaddr"
	"userv6/internal/report"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

func main() {
	sim := userv6.NewSim(userv6.DefaultScenario(20_000))
	day0 := simtime.AnalysisWeekStart

	// Collect day-0 indicators: every address (or /64) that hosted an
	// abusive account.
	type granularity struct {
		name   string
		fam    netaddr.Family
		length int
	}
	grans := []granularity{
		{"IPv6 /128", netaddr.IPv6, 128},
		{"IPv6 /64", netaddr.IPv6, 64},
		{"IPv4 addr", netaddr.IPv4, 32},
	}
	indicators := make([]map[netaddr.Prefix]struct{}, len(grans))
	for i := range indicators {
		indicators[i] = make(map[netaddr.Prefix]struct{})
	}
	sim.Abusive.GenerateDay(day0, func(o telemetry.Observation) {
		for i, g := range grans {
			if o.Addr.Family() == g.fam {
				indicators[i][netaddr.PrefixFrom(o.Addr, g.length)] = struct{}{}
			}
		}
	})

	// For each subsequent day, what fraction of that day's abusive
	// accounts appear on a day-0 indicator?
	t := report.NewTable("days later", grans[0].name, grans[1].name, grans[2].name)
	for offset := simtime.Day(1); offset <= 5; offset++ {
		day := day0 + offset
		caught := make([]map[uint64]struct{}, len(grans))
		total := make([]map[uint64]struct{}, len(grans))
		for i := range grans {
			caught[i] = make(map[uint64]struct{})
			total[i] = make(map[uint64]struct{})
		}
		sim.Abusive.GenerateDay(day, func(o telemetry.Observation) {
			for i, g := range grans {
				if o.Addr.Family() != g.fam {
					continue
				}
				total[i][o.UserID] = struct{}{}
				if _, hit := indicators[i][netaddr.PrefixFrom(o.Addr, g.length)]; hit {
					caught[i][o.UserID] = struct{}{}
				}
			}
		})
		row := []any{int(offset)}
		for i := range grans {
			if len(total[i]) == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, report.Percent(float64(len(caught[i]))/float64(len(total[i]))))
		}
		t.Row(row...)
	}
	fmt.Printf("recall of day-0 indicators against later abusive activity (%d /128, %d /64, %d v4 indicators):\n\n",
		len(indicators[0]), len(indicators[1]), len(indicators[2]))
	t.Write(os.Stdout)

	// Compare with the advisor's one-day decay estimate.
	a := sim.Advise(0.001)
	fmt.Printf("\nadvisor one-day decay estimate: %s of abusive activity is NOT covered next day\n",
		report.Percent(a.ThreatIntelDecay))
	fmt.Println("conclusion: share IPv6 indicators at /64 granularity and expire them fast.")
}
