// Quickstart: build a small simulation, stream one day of telemetry,
// and print the headline user-level IPv6 vs IPv4 contrasts.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"userv6"
	"userv6/internal/core"
	"userv6/internal/netaddr"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

func main() {
	// A 10k-user world is plenty to see the paper's shapes.
	sim := userv6.NewSim(userv6.DefaultScenario(10_000))

	// Stream one day of merged benign + abusive telemetry through two
	// analyzers at once: nothing is buffered.
	day := simtime.AnalysisWeekEnd
	users := core.NewUserCentricFor(false)
	addrs := core.NewIPCentric(netaddr.IPv6, 128)
	addrs4 := core.NewIPCentric(netaddr.IPv4, 32)
	var observations int
	sim.GenerateDay(day, func(o telemetry.Observation) {
		observations++
		users.Observe(o)
		addrs.Observe(o)
		addrs4.Observe(o)
	})

	fmt.Printf("one day (%s): %d observations from %d users\n\n", day, observations, users.Users())

	h4 := users.AddrsPerUser(netaddr.IPv4)
	h6 := users.AddrsPerUser(netaddr.IPv6)
	fmt.Printf("addresses per user today:   IPv4 median %d, IPv6 median %d\n", h4.Median(), h6.Median())
	fmt.Printf("single-address users:       IPv4 %.0f%%, IPv6 %.0f%%\n", h4.CDFAt(1)*100, h6.CDFAt(1)*100)

	u4 := addrs4.UsersPerPrefix()
	u6 := addrs.UsersPerPrefix()
	fmt.Printf("single-user addresses:      IPv4 %.0f%%, IPv6 %.0f%%\n", u4.CDFAt(1)*100, u6.CDFAt(1)*100)
	fmt.Printf("max users on one address:   IPv4 %d, IPv6 %d\n\n", u4.Max(), u6.Max())

	// The §4.4 client-address patterns over a full week.
	pat := sim.ClientAddrPatterns()
	fmt.Printf("IPv6 users on EUI-64 (MAC-embedding) addresses: %.1f%%\n", pat.EUI64Share*100)
	fmt.Printf("IPv6 users on 6to4/Teredo transition addresses: %.3f%%\n",
		(pat.SixToFourShare+pat.TeredoShare)*100)
}
