package userv6_test

// Tested godoc examples for the public API.

import (
	"fmt"

	"userv6"
	"userv6/internal/core"
	"userv6/internal/netaddr"
	"userv6/internal/telemetry"
)

// Building a simulation and streaming telemetry through an analyzer.
func ExampleNewSim() {
	sim := userv6.NewSim(userv6.DefaultScenario(1_000))
	uc := core.NewUserCentricFor(false)
	from, _ := userv6.AnalysisWeek()
	sim.GenerateDay(from, uc.Observe)
	fmt.Println(uc.Users() > 500)
	// Output: true
}

// Determinism: the same scenario always produces the same telemetry.
func ExampleScenario_WithSeed() {
	count := func(seed uint64) int {
		sim := userv6.NewSim(userv6.DefaultScenario(500).WithSeed(seed))
		n := 0
		sim.GenerateDay(10, func(telemetry.Observation) { n++ })
		return n
	}
	fmt.Println(count(7) == count(7))
	// Output: true
}

// Running a paper experiment end to end.
func ExampleSim_Fig11() {
	sim := userv6.NewSim(userv6.DefaultScenario(4_000))
	roc := sim.Fig11()
	v4, _ := roc.Curves["IPv4"].At(0)
	v6, _ := roc.Curves["/128"].At(0)
	// IPv4 actioning recalls more but at far higher collateral.
	fmt.Println(v4.TPR > v6.TPR, v4.FPR > v6.FPR)
	// Output: true true
}

// Classifying IPv6 address structure.
func Example_classify() {
	for _, s := range []string{
		"2002:c000:201::1",              // 6to4
		"2001:db8::a11:22ff:fe33:4455",  // EUI-64 MAC embedding
		"2600:380:1234:5678::1f3a",      // gateway-style structured IID
		"2001:db8::a1b2:c3d4:e5f6:789a", // privacy/temporary
	} {
		fmt.Println(netaddr.Classify(netaddr.MustParseAddr(s)))
	}
	// Output:
	// 6to4
	// eui64
	// structured-iid
	// random-iid
}
