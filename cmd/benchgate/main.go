// Command benchgate turns `go test -bench` output into a CI quality
// gate. It parses benchmark result lines, writes them as JSON, and
// compares ns/op against a checked-in baseline: a benchmark that slows
// down by more than -max-ratio, disappears from the run, or a run that
// panicked or FAILed, all exit non-zero.
//
// The baseline is a deliberately coarse tripwire, not a profiler:
// shared CI runners are noisy, so only order-of-magnitude regressions
// (default 3x) fail the gate. Refresh it with -update after intentional
// performance changes.
//
// Usage:
//
//	go test -bench=... -benchtime=1x ./... | tee bench.txt
//	benchgate -in bench.txt -baseline bench/BENCH_baseline.json -out BENCH_results.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result holds one benchmark's measurement.
type Result struct {
	NsPerOp float64 `json:"ns_per_op"`
	Iters   int64   `json:"iters,omitempty"`
}

// File is the on-disk shape of both the baseline and the results
// artifact.
type File struct {
	// MaxRatio documents the gate the baseline was recorded for.
	MaxRatio   float64           `json:"max_ratio,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "-", "bench output to read (- for stdin)")
	baseline := flag.String("baseline", "bench/BENCH_baseline.json", "checked-in baseline to gate against (empty to skip gating)")
	out := flag.String("out", "BENCH_results.json", "results artifact to write (empty to skip)")
	maxRatio := flag.Float64("max-ratio", 3, "fail when ns/op exceeds baseline by this factor")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	results, bad, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(results.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in %s", *in))
	}
	results.MaxRatio = *maxRatio

	if *out != "" {
		if err := writeJSON(*out, results); err != nil {
			fatal(err)
		}
	}
	if bad != "" {
		fatal(fmt.Errorf("bench run did not pass: %s", bad))
	}
	if *update {
		if err := writeJSON(*baseline, results); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: baseline %s updated (%d benchmarks)\n", *baseline, len(results.Benchmarks))
		return
	}
	if *baseline == "" {
		fmt.Printf("benchgate: %d benchmarks recorded, no baseline to gate against\n", len(results.Benchmarks))
		return
	}

	base, err := readJSON(*baseline)
	if err != nil {
		fatal(fmt.Errorf("baseline: %w (run with -update to create one)", err))
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failures := 0
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := results.Benchmarks[name]
		if !ok {
			fmt.Printf("benchgate: FAIL %-28s missing from this run (baseline %.0f ns/op)\n", name, want.NsPerOp)
			failures++
			continue
		}
		ratio := got.NsPerOp / want.NsPerOp
		status := "ok  "
		if ratio > *maxRatio {
			status = "FAIL"
			failures++
		}
		fmt.Printf("benchgate: %s %-28s %12.0f ns/op  (baseline %12.0f, %5.2fx)\n",
			status, name, got.NsPerOp, want.NsPerOp, ratio)
	}
	if failures > 0 {
		fatal(fmt.Errorf("%d of %d gated benchmarks regressed beyond %.1fx (or vanished)", failures, len(names), *maxRatio))
	}
	fmt.Printf("benchgate: all %d gated benchmarks within %.1fx of baseline\n", len(names), *maxRatio)
}

// parse extracts benchmark result lines from `go test -bench` output.
// The returned bad string is non-empty when the run itself failed
// (panic or FAIL), which must gate even if every parsed line looks
// healthy.
func parse(r io.Reader) (*File, string, error) {
	out := &File{Benchmarks: map[string]Result{}}
	bad := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "panic:") || strings.HasPrefix(trimmed, "fatal error:") {
			if bad == "" {
				bad = trimmed
			}
			continue
		}
		if trimmed == "FAIL" || strings.HasPrefix(trimmed, "FAIL\t") || strings.HasPrefix(trimmed, "--- FAIL") {
			if bad == "" {
				bad = trimmed
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		// BenchmarkName-8  <iters>  <ns> ns/op  [extra metrics...]
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		var ns float64
		found := false
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				ns, err = strconv.ParseFloat(fields[i], 64)
				found = err == nil
				break
			}
		}
		if !found {
			continue
		}
		out.Benchmarks[name] = Result{NsPerOp: ns, Iters: iters}
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	return out, bad, nil
}

func readJSON(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &f, nil
}

func writeJSON(path string, f *File) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
