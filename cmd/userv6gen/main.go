// Command userv6gen exports synthetic telemetry to files and inspects
// them: the offline half of the pipeline, for feeding the datasets into
// external tooling (the JSONL form) or replaying them through the
// analyzers without regeneration (the binary form).
//
// Usage:
//
//	userv6gen gen  -users 20000 -from 81 -to 87 -format binary -o week.uv6
//	userv6gen gen  -users 200000 -shards 8 -o weekdir            (sharded export)
//	userv6gen gen  -resume -o week.uv6                           (continue a partial run)
//	userv6gen gen  -resume -o weekdir                            (continue a sharded run)
//	userv6gen info -i week.uv6
//	userv6gen analyze -i week.uv6 [-tolerant] [-explain]
//	userv6gen analyze -i weekdir                                 (sharded export, no merge)
//	userv6gen verify -i week.uv6
//	userv6gen verify -i weekdir/manifest.uv6m                    (all parts + codec mix)
//	userv6gen salvage -i torn.uv6.tmp -o recovered.uv6
//	userv6gen merge -manifest weekdir/manifest.uv6m -o week.uv6
//	userv6gen merge -o week.uv6 part-0000.uv6 part-0001.uv6 ...
//
// gen finalizes a valid dataset file even when interrupted by SIGINT or
// SIGTERM; with -shards N it writes per-shard part-NNNN.uv6 files plus
// a manifest.uv6m instead of one file, and with -resume it derives the
// last completed (user, day) frontier from a partial dataset and
// continues deterministically into the same output — pointing -resume
// at a sharded directory keeps every checksummed-complete part and
// regenerates only the unfinished ones. The -faults flag arms named
// failpoints over the dataset layer's filesystem seam (injected errors,
// torn writes, crash-at-offset) for rehearsing exactly those recovery
// paths; see docs/FAULT_INJECTION.md. verify (alias:
// scan) checks block checksums and reports how many records a salvage
// pass would recover; salvage rewrites every intact record of a
// damaged file into a fresh dataset; merge folds part files (possibly
// partially damaged — corrupt blocks are skipped and coverage is
// reported per part) into one canonical dataset, byte-identical to a
// single-writer run when the parts are intact.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"userv6"
	"userv6/internal/core"
	"userv6/internal/dataset"
	"userv6/internal/faultio"
	"userv6/internal/netaddr"
	"userv6/internal/report"
	"userv6/internal/retry"
	"userv6/internal/sampling"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "gen":
		runGen(args)
	case "info":
		runInfo(args)
	case "analyze":
		runAnalyze(args)
	case "verify", "scan":
		runVerify(args)
	case "salvage":
		runSalvage(args)
	case "merge":
		runMerge(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: userv6gen <gen|info|analyze|verify|salvage|merge> [flags]

  gen      generate a telemetry dataset file
           -shards N  sharded export: part-NNNN.uv6 files + manifest.uv6m
           -resume    continue a partial dataset from its (user, day) frontier
                      (-o a sharded directory: regenerate only the unfinished parts)
           -compress[=lz|delta|auto]  block compression policy (auto picks
                      the smallest of delta/lz/identity per block; bare
                      -compress means lz)
           -faults S  arm fault-injection failpoints (debug; docs/FAULT_INJECTION.md)
  info     summarize a dataset file
  analyze  run the user/IP-centric + churn analyzers over a dataset file,
           a sharded export directory, or a manifest.uv6m (no merge needed:
           parts stream through the same workers the merged file would)
           -tolerant  salvage-path read: skip corrupt blocks, report coverage
           -workers N block-parallel decode + analysis (0 = all CPUs, 1 = sequential);
                      the default analyzer set is commutative, so parallel runs
                      use the fused path (decode workers feed worker-local
                      analyzer replicas, folded once at the end)
           -unordered completion-order batch delivery into a replica pool
                      (errors if any analyzer withholds the commutative
                      declaration, naming the offender)
           -explain   print the planner's chosen mode and rationale
  verify   check dataset integrity (block checksums, record counts); on a
           manifest or export directory, checks every part and aggregates
           per-codec block counts across parts
  salvage  recover intact records from a damaged dataset into a new file
  merge    fold sharded part files into one canonical dataset
           -tolerant  admit parts whose frame codecs disagree with their label`)
	os.Exit(2)
}

// inputArg lets read-style subcommands take the input path positionally
// (`userv6gen verify week.uv6`) as well as via -i; a silently ignored
// positional would otherwise fall through to the default path.
func inputArg(fs *flag.FlagSet, in *string) {
	switch fs.NArg() {
	case 0:
	case 1:
		*in = fs.Arg(0)
	default:
		fatal(fmt.Errorf("%s: at most one input path, got %q", fs.Name(), fs.Args()))
	}
}

// compressFlag parses -compress both as a boolean switch (bare
// -compress, the pre-policy spelling, meaning lz) and as a policy name
// (-compress=lz|delta|auto|none). IsBoolFlag makes the flag package
// accept the bare form; the policy form must use '=' like any Go bool
// flag.
type compressFlag struct {
	policy string
}

func (c *compressFlag) String() string   { return c.policy }
func (c *compressFlag) IsBoolFlag() bool { return true }
func (c *compressFlag) Set(v string) error {
	switch strings.ToLower(v) {
	case "true":
		c.policy = "lz"
	case "false", "", "none", "identity":
		c.policy = ""
	case "lz", "delta", "auto":
		c.policy = strings.ToLower(v)
	default:
		return fmt.Errorf("unknown compression policy %q (want lz, delta, auto, or none)", v)
	}
	return nil
}

func runGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	users := fs.Int("users", 20_000, "population size")
	seed := fs.Uint64("seed", 1, "scenario seed")
	from := fs.Int("from", int(simtime.AnalysisWeekStart), "first day index")
	to := fs.Int("to", int(simtime.AnalysisWeekEnd), "last day index")
	format := fs.String("format", "dataset", "dataset (headered), binary, or jsonl")
	out := fs.String("o", "telemetry.uv6", "output path (directory with -shards)")
	benignOnly := fs.Bool("benign-only", false, "omit abusive accounts")
	sampleSpec := fs.String("sample", "all", "sampler: all, user:R, addr:R, prefixL:R")
	shards := fs.Int("shards", 0, "sharded export: write N part files + manifest into the -o directory")
	resume := fs.Bool("resume", false, "continue a partial dataset at -o from its last completed (user, day)")
	var compress compressFlag
	fs.Var(&compress, "compress", "compression policy: lz, delta, auto, or none (bare -compress means lz; dataset and binary formats)")
	faults := fs.String("faults", "", "fault-injection spec, e.g. 'part-0001.uv6.tmp:write:off=41232:crash' (debug; see docs/FAULT_INJECTION.md)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this path")
	memprofile := fs.String("memprofile", "", "write a heap profile to this path at exit")
	fs.Parse(args)

	// -faults arms named failpoints over the dataset layer's filesystem
	// seam: a debug rehearsal of the crash/transient-error recovery the
	// fault-injection tests sweep exhaustively. Armed before anything
	// opens a file — every write this command makes (datasets,
	// manifests, even profiles) goes through the seam so coverage
	// cannot silently erode.
	fsys := faultio.OS
	var injector *faultio.Injector
	if *faults != "" {
		injector = faultio.New(faultio.OS, *seed)
		if err := injector.Arm(*faults); err != nil {
			fatal(err)
		}
		fsys = injector
	}
	// Registered before the profile defers so it runs after them:
	// profile bytes flush at StopCPUProfile/WriteHeapProfile time, and
	// a campaign aimed at a profile file must count those hits.
	defer func() {
		if injector == nil {
			return
		}
		for _, p := range injector.Points() {
			fmt.Fprintf(os.Stderr, "failpoint %s: fired %d time(s)\n", p.Name, p.Hits)
		}
	}()

	stopProf := startCPUProfile(fsys, *cpuprofile)
	defer stopProf()
	defer writeMemProfile(fsys, *memprofile)

	// A SIGINT/SIGTERM cancels generation at the next (user, day) batch;
	// the writer then finalizes, so an interrupted run still leaves a
	// valid, verifiable dataset holding everything generated so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	codecName := compress.policy

	if *resume {
		if compress.policy != "" {
			fatal(fmt.Errorf("gen: -resume reads the codec from the partial dataset's header; drop -compress"))
		}
		// A directory target (or one holding a manifest) is a sharded
		// export; -shards is ignored because the manifest fixes the
		// layout.
		if st, err := os.Stat(*out); err == nil && st.IsDir() {
			runGenShardedResume(ctx, fsys, *out)
			return
		}
		runGenResume(ctx, fsys, *out)
		return
	}

	sampler, err := sampling.Parse(*sampleSpec, *seed)
	if err != nil {
		fatal(err)
	}

	sim := userv6.NewSim(userv6.DefaultScenario(*users).WithSeed(*seed))

	if *shards != 0 {
		if *format != "dataset" {
			fatal(fmt.Errorf("gen: -shards requires -format dataset"))
		}
		meta := dataset.Meta{
			Seed: *seed, Users: *users, FromDay: *from, ToDay: *to,
			Sample: *sampleSpec, BenignOnly: *benignOnly, Codec: codecName,
		}
		man, err := sim.ExportShardedFS(ctx, fsys, *out, *shards, meta, func(emit telemetry.EmitFunc) telemetry.EmitFunc {
			return sampling.Filter(sampler, emit)
		})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fatal(fmt.Errorf("interrupted: parts and provisional manifest left in %s; continue with `userv6gen gen -resume -o %s`", *out, *out))
			}
			fatal(err)
		}
		fmt.Printf("wrote sharded dataset (%d users, days %d-%d) to %s: %d parts, %d records, %d blocks (config %s)\n",
			*users, *from, *to, *out, len(man.Parts), man.TotalRecords(), man.TotalBlocks(), man.ConfigHash)
		fmt.Printf("analyze directly with: userv6gen analyze -i %s (or merge: userv6gen merge -manifest %s -o merged.uv6)\n",
			*out, filepath.Join(*out, dataset.ManifestName))
		return
	}

	generate := func(emit telemetry.EmitFunc) error {
		emit = sampling.Filter(sampler, emit)
		if *benignOnly {
			return sim.Benign.GenerateCtx(ctx, simtime.Day(*from), simtime.Day(*to), emit)
		}
		return sim.GenerateCtx(ctx, simtime.Day(*from), simtime.Day(*to), emit)
	}

	if *format == "dataset" {
		meta := dataset.Meta{
			Seed: *seed, Users: *users, FromDay: *from, ToDay: *to,
			Sample: *sampleSpec, BenignOnly: *benignOnly, Codec: codecName,
		}
		w, err := dataset.CreateFS(fsys, *out, meta)
		if err != nil {
			fatal(err)
		}
		emit, errp := w.Emit()
		genErr := generate(emit)
		if *errp != nil {
			w.Abort()
			fatal(*errp)
		}
		if genErr != nil && !errors.Is(genErr, context.Canceled) {
			w.Abort()
			fatal(genErr)
		}
		if err := w.Close(); err != nil {
			fatal(err)
		}
		st, _ := os.Stat(*out)
		if genErr != nil {
			fmt.Printf("interrupted: finalized partial dataset (%d users, days %d-%d) at %s (%d bytes)\n",
				*users, *from, *to, *out, st.Size())
			return
		}
		fmt.Printf("wrote dataset (%d users, days %d-%d) to %s (%d bytes)\n",
			*users, *from, *to, *out, st.Size())
		return
	}

	f, err := fsys.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var write func(telemetry.Observation) error
	var flush func() error
	switch *format {
	case "binary":
		w, err := telemetry.NewWriterV2Policy(f, telemetry.DefaultBlockRecords, compress.policy)
		if err != nil {
			fatal(err)
		}
		write, flush = w.Write, w.Flush
	case "jsonl":
		if compress.policy != "" {
			fatal(fmt.Errorf("gen: -compress applies to block formats (dataset, binary), not jsonl"))
		}
		w := telemetry.NewJSONLWriter(f)
		write, flush = w.Write, w.Flush
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}

	n := 0
	genErr := generate(func(o telemetry.Observation) {
		if err := write(o); err != nil {
			fatal(err)
		}
		n++
	})
	if genErr != nil && !errors.Is(genErr, context.Canceled) {
		fatal(genErr)
	}
	if err := flush(); err != nil {
		fatal(err)
	}
	var size int64
	if st, err := fsys.Stat(*out); err == nil {
		size = st.Size()
	}
	note := ""
	if genErr != nil {
		note = " [interrupted]"
	}
	fmt.Printf("wrote %d observations (%d users, days %d-%d, %s) to %s (%d bytes)%s\n",
		n, *users, *from, *to, *format, *out, size, note)
}

// runGenResume continues an interrupted dataset generation run. The
// partial file (the -o target, or its crash-safe .tmp sibling) supplies
// the run configuration from its header and a strictly verified record
// prefix; the frontier — the last (user, day) batch certain to be
// complete — is derived from that prefix, the prefix is re-emitted into
// a fresh writer, and deterministic generation restarts at the
// frontier. The finished file is byte-identical to an uninterrupted
// run.
func runGenResume(ctx context.Context, fsys faultio.FS, out string) {
	src := out
	if _, err := os.Stat(src); err != nil {
		if _, terr := os.Stat(out + ".tmp"); terr == nil {
			src = out + ".tmp"
		} else {
			fatal(fmt.Errorf("gen -resume: no partial dataset at %s (or %s.tmp)", out, out))
		}
	}
	// Note that a finalized header (complete:true) does not mean the
	// whole window was generated — an interrupted gen finalizes a valid
	// partial dataset. Resume is idempotent: resuming a genuinely
	// complete file regenerates only its final batch and reproduces the
	// identical bytes.
	meta, obs, err := dataset.LoadResumePrefix(src)
	if err != nil {
		fatal(err)
	}
	front, keep := dataset.DeriveFrontier(obs)

	sampler, err := sampling.Parse(meta.Sample, meta.Seed)
	if err != nil {
		fatal(err)
	}
	sim := userv6.NewSim(userv6.DefaultScenario(meta.Users).WithSeed(meta.Seed))
	from, to := meta.Window()

	// The resumed file carries the original run's configuration — the
	// block codec included, or the resumed bytes would diverge from the
	// uninterrupted run's; counts and completion are rewritten by the
	// new writer.
	w, err := dataset.CreateFS(fsys, out, dataset.Meta{
		Seed: meta.Seed, Users: meta.Users, FromDay: meta.FromDay, ToDay: meta.ToDay,
		Sample: meta.Sample, BenignOnly: meta.BenignOnly, Codec: meta.Codec,
	})
	if err != nil {
		fatal(err)
	}
	emit, errp := w.Emit()
	for _, o := range obs[:keep] {
		emit(o)
	}
	femit := sampling.Filter(sampler, emit)

	var genErr error
	switch {
	case front.Restart:
		if meta.BenignOnly {
			genErr = sim.Benign.GenerateCtx(ctx, from, to, femit)
		} else {
			genErr = sim.GenerateCtx(ctx, from, to, femit)
		}
	case front.BenignDone:
		sim.Abusive.Generate(from, to, femit)
	default:
		idx := sim.UserIndex(front.UserID)
		if idx < 0 {
			w.Abort()
			fatal(fmt.Errorf("gen -resume: frontier user %d not in population (%d users); header untrustworthy?",
				front.UserID, meta.Users))
		}
		if meta.BenignOnly {
			genErr = sim.Benign.GenerateFromCtx(ctx, idx, front.Day, from, to, femit)
		} else {
			genErr = sim.GenerateResumeCtx(ctx, idx, front.Day, from, to, femit)
		}
	}
	if *errp != nil {
		w.Abort()
		fatal(*errp)
	}
	if genErr != nil && !errors.Is(genErr, context.Canceled) {
		w.Abort()
		fatal(genErr)
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	st, _ := os.Stat(out)
	note := ""
	if genErr != nil {
		note = " [interrupted again; resume to continue]"
	}
	switch {
	case front.Restart:
		fmt.Printf("resumed %s from scratch (no usable prefix): %d records, %d bytes%s\n",
			out, w.Records(), st.Size(), note)
	case front.BenignDone:
		fmt.Printf("resumed %s at the abusive phase (kept %d benign records): %d records, %d bytes%s\n",
			out, keep, w.Records(), st.Size(), note)
	default:
		fmt.Printf("resumed %s at user %d, day %d (kept %d records): %d records, %d bytes%s\n",
			out, front.UserID, int(front.Day), keep, w.Records(), st.Size(), note)
	}
}

// runGenShardedResume continues an interrupted sharded export. The
// directory's manifest (provisional or complete) fixes the expected
// layout and run configuration; every part whose recorded checksum
// matches its bytes is kept untouched, and only the missing or
// unfinished parts are regenerated — each from its own salvaged
// prefix, exactly like single-file resume. The finished directory is
// byte-identical to an uninterrupted sharded run, manifest included.
func runGenShardedResume(ctx context.Context, fsys faultio.FS, dir string) {
	manPath := filepath.Join(dir, dataset.ManifestName)
	man, err := dataset.ReadManifestFS(fsys, manPath)
	if err != nil {
		fatal(fmt.Errorf("gen -resume: %w (a sharded resume needs the directory's %s)", err, dataset.ManifestName))
	}
	meta := man.Meta
	sampler, err := sampling.Parse(meta.Sample, meta.Seed)
	if err != nil {
		fatal(err)
	}
	sim := userv6.NewSim(userv6.DefaultScenario(meta.Users).WithSeed(meta.Seed))

	man, err = sim.ResumeShardedFS(ctx, fsys, dir, func(emit telemetry.EmitFunc) telemetry.EmitFunc {
		return sampling.Filter(sampler, emit)
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fatal(fmt.Errorf("interrupted again: rerun `userv6gen gen -resume -o %s` to continue", dir))
		}
		fatal(err)
	}
	fmt.Printf("resumed sharded dataset (%d users, days %d-%d) in %s: %d parts, %d records, %d blocks (config %s)\n",
		meta.Users, meta.FromDay, meta.ToDay, dir, len(man.Parts), man.TotalRecords(), man.TotalBlocks(), man.ConfigHash)
	fmt.Printf("analyze directly with: userv6gen analyze -i %s (or merge: userv6gen merge -manifest %s -o merged.uv6)\n", dir, manPath)
}

// runMerge folds N part files — a sharded export's manifest, or an
// explicit file list — into one canonical dataset. Damaged parts cost
// only their corrupt blocks; the per-part coverage report states
// exactly what was recovered. Transient read errors are retried with
// capped exponential backoff.
func runMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "merged.uv6", "output path for the merged dataset")
	manifest := fs.String("manifest", "", "manifest.uv6m path (parts resolved next to it)")
	retries := fs.Int("retries", 3, "max retries per part on transient I/O errors")
	strict := fs.Bool("strict", false, "fail on any damaged part instead of skipping corrupt blocks")
	tolerant := fs.Bool("tolerant", false, "admit parts whose frame codecs disagree with their declared codec")
	workers := fs.Int("workers", 0, "per-part decode workers (0 = all CPUs)")
	fs.Parse(args)

	// A SIGINT/SIGTERM aborts the merge between parts and interrupts any
	// in-flight backoff sleep instead of blocking it out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := &dataset.MergeOptions{
		Retry:  retry.Policy{MaxRetries: *retries},
		Strict: *strict, Tolerant: *tolerant, Workers: *workers,
	}
	var (
		rep dataset.MergeReport
		err error
	)
	if *manifest != "" {
		if fs.NArg() > 0 {
			fatal(fmt.Errorf("merge: use -manifest or positional part files, not both"))
		}
		var man *dataset.Manifest
		man, rep, err = dataset.MergeManifestCtx(ctx, *out, *manifest, opts)
		if man != nil {
			fmt.Printf("manifest: seed=%d shards=%d parts=%d config=%s expected %d records in %d blocks\n",
				man.Seed, man.Shards, len(man.Parts), man.ConfigHash, man.TotalRecords(), man.TotalBlocks())
		}
	} else {
		parts := fs.Args()
		if len(parts) == 0 {
			fatal(fmt.Errorf("merge: no inputs (use -manifest or list part files)"))
		}
		// Without a manifest the output inherits the first readable
		// part's header configuration.
		var meta dataset.Meta
		for _, p := range parts {
			if scan, serr := dataset.Scan(p); serr == nil && scan.HeaderOK && scan.HeaderErr == "" {
				meta = scan.Meta
				break
			}
		}
		rep, err = dataset.MergeCtx(ctx, *out, meta, parts, opts)
	}
	printMergeReport(rep)
	if err != nil {
		fatal(err)
	}
	st, _ := os.Stat(*out)
	verdict := "complete"
	if !rep.Complete {
		verdict = "INCOMPLETE (some blocks unrecoverable; see coverage above)"
	}
	fmt.Printf("merged %d records to %s (%d bytes): %s\n", rep.Records, *out, st.Size(), verdict)
}

func printMergeReport(rep dataset.MergeReport) {
	if len(rep.Parts) == 0 {
		return
	}
	t := report.NewTable("part", "blocks", "coverage", "records", "corrupt", "skipped B", "retries", "checksum", "codec")
	for _, c := range rep.Parts {
		sum := "ok"
		if !c.ChecksumOK {
			sum = "MISMATCH"
		}
		codec := "ok"
		if !c.CodecOK {
			codec = "MISMATCH"
		}
		t.Row(c.Name,
			fmt.Sprintf("%d/%d", c.BlocksRecovered, c.BlocksExpected),
			report.Percent(c.Coverage()),
			c.Records, c.CorruptBlocks, c.SkippedBytes, c.Retries, sum, codec)
	}
	t.Write(os.Stdout)
}

// runVerify checks a dataset (or raw stream) file end to end: header
// parse, per-block checksums, and header-vs-stream record counts. Exit
// status 0 means intact; 1 means damaged (the report shows what a
// salvage pass would recover).
func runVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("i", "telemetry.uv6", "input path (dataset file, sharded export directory, or manifest.uv6m)")
	fs.Parse(args)
	inputArg(fs, in)

	// A directory or manifest path verifies the whole sharded export:
	// per-part rows plus codec-mix and coverage aggregated across parts.
	if fi, err := os.Stat(*in); (err == nil && fi.IsDir()) ||
		strings.HasSuffix(*in, ".uv6m") || filepath.Base(*in) == dataset.ManifestName {
		runVerifyManifest(*in)
		return
	}

	rep, err := dataset.Scan(*in)
	if err != nil {
		fatal(err)
	}
	printScanReport(rep)
	if !rep.Intact() {
		os.Exit(1)
	}
}

// runVerifyManifest checks every part of a sharded export against the
// manifest: per-part block checksums, whole-file CRC32C, and declared
// codec, then the aggregate view — total coverage and the per-codec
// block counts summed across parts (SalvageReport.Add), which is what
// a compression-policy regression in one shard shows up in.
func runVerifyManifest(path string) {
	src, err := dataset.OpenManifestSource(path)
	if err != nil {
		fatal(err)
	}
	man := src.Manifest()
	fmt.Printf("manifest: seed=%d shards=%d parts=%d config=%s expected %d records in %d blocks\n\n",
		man.Seed, man.Shards, len(man.Parts), man.ConfigHash, man.TotalRecords(), man.TotalBlocks())

	t := report.NewTable("part", "blocks", "records", "corrupt", "checksum", "codec")
	var agg telemetry.SalvageReport
	intact := true
	for i, p := range src.Parts() {
		want, _ := src.Expected(i)
		rep, err := dataset.Scan(p)
		if err != nil {
			fatal(err)
		}
		sum := "ok"
		if want.CRC32C != "" {
			if got, err := dataset.FileCRC32C(p); err != nil || got != want.CRC32C {
				sum, intact = "MISMATCH", false
			}
		}
		codec := "ok"
		if err := dataset.CheckPartCodecs(want.Codec, rep.Stream.Codecs); err != nil {
			codec, intact = "MISMATCH", false
		}
		if !rep.Intact() {
			intact = false
		}
		t.Row(want.Name,
			fmt.Sprintf("%d/%d", rep.Stream.Blocks, want.Blocks),
			rep.Stream.Records, rep.Stream.CorruptBlocks, sum, codec)
		agg.Add(rep.Stream)
	}
	t.Write(os.Stdout)

	fmt.Printf("\ntotal: %d intact blocks, %d records, %d corrupt blocks, %d bytes skipped\n",
		agg.Blocks, agg.Records, agg.CorruptBlocks, agg.SkippedBytes)
	if line := codecBlocksLine(agg.CodecBlocks); line != "" {
		fmt.Printf("block codecs across parts: %s\n", line)
	}
	verdict := "INTACT"
	if !intact {
		verdict = "DAMAGED (merge -tolerant or analyze -tolerant still use the intact blocks)"
	}
	fmt.Printf("verdict: %s\n", verdict)
	if !intact {
		os.Exit(1)
	}
}

// codecBlocksLine renders per-codec intact-block counts ("identity: 3,
// lz: 12") in stable codec-ID order; empty when the stream is v1 or has
// no intact blocks.
func codecBlocksLine(counts map[telemetry.CodecID]uint64) string {
	if len(counts) == 0 {
		return ""
	}
	var parts []string
	for id := 0; id < 32; id++ {
		cid := telemetry.CodecID(id)
		if n, ok := counts[cid]; ok {
			parts = append(parts, fmt.Sprintf("%s: %d", cid, n))
		}
	}
	return strings.Join(parts, ", ")
}

func printScanReport(rep dataset.ScanReport) {
	t := report.NewTable("check", "result")
	switch {
	case rep.Raw:
		t.Row("header", "none (raw telemetry stream)")
	case rep.HeaderOK && rep.HeaderErr != "":
		t.Row("header", "CORRUPT: "+rep.HeaderErr)
	case rep.HeaderOK:
		m := rep.Meta
		hdr := "ok"
		if m.HeaderCRC != "" {
			hdr = "ok (crc " + m.HeaderCRC + ")"
		}
		t.Row("header", hdr).
			Row("header format", formatName(m.Format)).
			Row("header complete", m.Complete).
			Row("header records", m.Records)
		if m.Codec != "" {
			t.Row("header codec", m.Codec)
		}
	default:
		t.Row("header", "CORRUPT (unparseable)")
	}
	if rep.StreamErr != "" {
		t.Row("stream", "UNRECOGNIZABLE: "+rep.StreamErr)
	} else {
		t.Row("stream version", rep.Stream.Version).
			Row("intact blocks", rep.Stream.Blocks).
			Row("corrupt blocks", rep.Stream.CorruptBlocks).
			Row("salvageable records", rep.Stream.Records).
			Row("skipped bytes", rep.Stream.SkippedBytes)
		// Per-codec block counts, not just the codec set: with a
		// fallback-chain writer the mix (how often the preferred codec
		// actually won) is what a compression-ratio regression shows up
		// in, and it is diagnosable from the dataset alone.
		if line := codecBlocksLine(rep.Stream.CodecBlocks); line != "" {
			t.Row("block codecs", line)
		}
	}
	verdict := "INTACT"
	if !rep.Intact() {
		verdict = "DAMAGED (run `userv6gen salvage` to recover intact records)"
	}
	t.Row("verdict", verdict).Write(os.Stdout)
}

func formatName(f int) string {
	if f >= dataset.FormatV2 {
		return fmt.Sprintf("v%d (framed, checksummed)", f)
	}
	return "v1 (legacy, unframed)"
}

// runSalvage recovers every intact record from a damaged or interrupted
// dataset into a fresh, complete v2 dataset file.
func runSalvage(args []string) {
	fs := flag.NewFlagSet("salvage", flag.ExitOnError)
	in := fs.String("i", "telemetry.uv6", "input path (possibly damaged)")
	out := fs.String("o", "recovered.uv6", "output path for the recovered dataset")
	fs.Parse(args)
	inputArg(fs, in)

	scan, err := dataset.Scan(*in)
	if err != nil {
		fatal(err)
	}
	meta := scan.Meta // zero Meta when the header was lost: still salvageable
	w, err := dataset.Create(*out, meta)
	if err != nil {
		fatal(err)
	}
	emit, errp := w.Emit()
	rep, err := dataset.Salvage(*in, emit)
	if err != nil {
		w.Abort()
		fatal(err)
	}
	if *errp != nil {
		w.Abort()
		fatal(*errp)
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("salvaged %d records (%d intact blocks, %d corrupt, %d bytes skipped) from %s to %s\n",
		rep.Stream.Records, rep.Stream.Blocks, rep.Stream.CorruptBlocks,
		rep.Stream.SkippedBytes, *in, *out)
}

func runInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "telemetry.uv6", "input path (binary format)")
	fs.Parse(args)
	inputArg(fs, in)

	r := openReader(*in)
	var codec string
	if dr, ok := r.(*dataset.Reader); ok {
		codec = dr.Meta().Codec
	}
	var (
		n, abusive int
		v4, v6     int
		users      = map[uint64]struct{}{}
		minD, maxD = simtime.Day(1 << 30), simtime.Day(-1)
		requests   uint64
	)
	err := r.ForEach(func(o telemetry.Observation) {
		n++
		if o.Abusive {
			abusive++
		}
		if o.Addr.Is6() {
			v6++
		} else {
			v4++
		}
		users[o.UserID] = struct{}{}
		if o.Day < minD {
			minD = o.Day
		}
		if o.Day > maxD {
			maxD = o.Day
		}
		requests += uint64(o.Requests)
	})
	if err != nil {
		fatal(err)
	}
	tbl := report.NewTable("metric", "value").
		Row("observations", n).
		Row("abusive observations", abusive).
		Row("IPv4 / IPv6 observations", fmt.Sprintf("%d / %d", v4, v6)).
		Row("distinct entities", len(users)).
		Row("days", fmt.Sprintf("%d..%d", int(minD), int(maxD))).
		Row("total requests", requests)
	if codec != "" {
		tbl.Row("block codec", codec)
	}
	tbl.Write(os.Stdout)
}

func runAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("i", "telemetry.uv6", "input path (dataset file, sharded export directory, or manifest.uv6m)")
	tolerant := fs.Bool("tolerant", false, "salvage-path read: analyze intact blocks of a damaged source and report coverage")
	workers := fs.Int("workers", 0, "block decode + analysis workers (0 = all CPUs, 1 = sequential)")
	unordered := fs.Bool("unordered", false, "deliver blocks in completion order (requires commutative analyzers and -workers != 1)")
	explain := fs.Bool("explain", false, "print the planner's chosen execution mode and why before analyzing")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the analysis to this path")
	memprofile := fs.String("memprofile", "", "write a heap profile to this path after analysis")
	fs.Parse(args)
	inputArg(fs, in)

	// The input may be a merged file, a sharded export directory, or a
	// manifest path; the source layer resolves the shape and the
	// planner picks the execution mode from it — `analyze` itself no
	// longer re-implements the fused/unordered/pipeline decision.
	src, err := dataset.OpenSource(*in)
	if err != nil {
		fatal(err)
	}

	// Every analyzer this command registers — including churn, since its
	// first-sight-tuple reformulation — folds exactly under arbitrary
	// stream partition, so the whole set declares commutative
	// accumulation. That legalizes the fused default and -unordered
	// delivery; an order-sensitive analyzer would register with
	// AddAnalyzer and the planner would name it when refusing (or when
	// falling back to the pipeline).
	set := core.NewAnalyzerSet()
	uc := core.NewUserCentricFor(false)
	core.AddCommutativeAnalyzer(set, uc,
		func() *core.UserCentric { return core.NewUserCentricFor(false) }, (*core.UserCentric).Merge)
	addIC := func(fam netaddr.Family, length int) *core.IPCentric {
		ic := core.NewIPCentric(fam, length)
		core.AddCommutativeAnalyzer(set, ic,
			func() *core.IPCentric { return core.NewIPCentric(fam, length) }, (*core.IPCentric).Merge)
		return ic
	}
	ic4 := addIC(netaddr.IPv4, 32)
	ic6 := addIC(netaddr.IPv6, 128)
	ic64 := addIC(netaddr.IPv6, 64)
	// Churn counts new-address events after a one-day warmup: the first
	// recorded day only builds history (every address is trivially "new"
	// then). A headerless raw stream has no window metadata, so it gets
	// no warmup and day-0 sightings count.
	meta, haveMeta := src.Meta()
	countFrom := simtime.Day(0)
	if haveMeta && meta.ToDay > meta.FromDay {
		countFrom = simtime.Day(meta.FromDay + 1)
	}
	churn := core.NewChurnAttribution(countFrom)
	core.AddCommutativeAnalyzer(set, churn,
		func() *core.ChurnAttribution { return core.NewChurnAttribution(countFrom) }, (*core.ChurnAttribution).Merge)

	req := core.RequestAuto
	if *unordered {
		req = core.RequestUnordered
	}
	opts := userv6.AnalyzeOptions{Workers: *workers, Tolerant: *tolerant, Mode: req}
	plan, err := userv6.PlanSource(src, set, opts)
	if err != nil {
		fatal(fmt.Errorf("analyze: %w", err))
	}
	if *explain {
		fmt.Printf("plan: %s\n", plan.Explain())
	}
	if haveMeta {
		fmt.Printf("%s\n\n", metaLine(meta))
	}

	// A SIGINT/SIGTERM cancels the read at the next block boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	stopProf := startCPUProfile(faultio.OS, *cpuprofile)
	rep, err := userv6.ExecutePlan(ctx, src, set, plan)
	stopProf()
	writeMemProfile(faultio.OS, *memprofile)
	if err != nil {
		if !*tolerant {
			err = fmt.Errorf("%w (rerun with -tolerant to analyze the intact blocks)", err)
		}
		fatal(err)
	}
	if *tolerant {
		printCoverage(rep)
	}

	h4, h6 := uc.AddrsPerUser(netaddr.IPv4), uc.AddrsPerUser(netaddr.IPv6)
	report.NewTable("metric", "IPv4", "IPv6").
		Row("users", int(h4.N()), int(h6.N())).
		Row("median addrs/user", h4.Median(), h6.Median()).
		Row("single-addr users", report.Percent(h4.CDFAt(1)), report.Percent(h6.CDFAt(1))).
		Row("addresses seen", ic4.Prefixes(), ic6.Prefixes()).
		Row("single-user addrs", report.Percent(ic4.UsersPerPrefix().CDFAt(1)), report.Percent(ic6.UsersPerPrefix().CDFAt(1))).
		Write(os.Stdout)
	fmt.Printf("\nIPv6 /64s: %d (single-user: %s)\n",
		ic64.Prefixes(), report.Percent(ic64.UsersPerPrefix().CDFAt(1)))
	pat := uc.AddrPatterns()
	fmt.Printf("EUI-64 users: %s; transition-protocol users: %s\n",
		report.Percent(pat.EUI64Share), report.Percent(pat.TeredoShare+pat.SixToFourShare))
	bd := churn.Breakdown()
	fmt.Printf("address churn (from day %d): %d events — IID rotation %s, subnet move %s, network switch %s\n",
		int(countFrom), bd.Total,
		report.Percent(bd.Share(core.IIDRotation)),
		report.Percent(bd.Share(core.SubnetMove)),
		report.Percent(bd.Share(core.NetworkSwitch)))
}

// metaLine renders the one-line dataset summary shown before analysis
// output. The codec deliberately does not appear: analyze output over
// a compressed dataset must be byte-identical to the uncompressed run
// (the contract diff-based tooling relies on); `info` and `verify`
// surface the codec instead.
func metaLine(m dataset.Meta) string {
	return fmt.Sprintf("dataset: seed=%d users=%d days=%d..%d sample=%s records=%d",
		m.Seed, m.Users, m.FromDay, m.ToDay, m.Sample, m.Records)
}

func printCoverage(rep telemetry.SalvageReport) {
	total := rep.Blocks + rep.CorruptBlocks
	fmt.Printf("tolerant read: analyzed %d of %d blocks (%d records; %d corrupt blocks, %d bytes skipped)\n\n",
		rep.Blocks, total, rep.Records, rep.CorruptBlocks, rep.SkippedBytes)
}

// startCPUProfile begins CPU profiling when path is non-empty and
// returns the stop function (a no-op otherwise). The profile file is
// created through the faultio seam so a `gen -faults` campaign covers
// every write the command makes.
func startCPUProfile(fsys faultio.FS, path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := fsys.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		fatal(err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeMemProfile snapshots the heap to path (after a GC, so the
// profile reflects live memory) when path is non-empty.
func writeMemProfile(fsys faultio.FS, path string) {
	if path == "" {
		return
	}
	f, err := fsys.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
}

// streamSource abstracts dataset and raw binary inputs.
type streamSource interface {
	ForEach(telemetry.EmitFunc) error
}

// openReader opens a dataset file (headered) or a raw binary stream,
// printing the dataset metadata when available.
func openReader(path string) streamSource {
	if r, err := dataset.Open(path); err == nil {
		fmt.Printf("%s\n\n", metaLine(r.Meta()))
		return r
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	return telemetry.NewReader(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "userv6gen:", err)
	os.Exit(1)
}
