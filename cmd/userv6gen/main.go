// Command userv6gen exports synthetic telemetry to files and inspects
// them: the offline half of the pipeline, for feeding the datasets into
// external tooling (the JSONL form) or replaying them through the
// analyzers without regeneration (the binary form).
//
// Usage:
//
//	userv6gen gen  -users 20000 -from 81 -to 87 -format binary -o week.uv6
//	userv6gen info -i week.uv6
//	userv6gen analyze -i week.uv6
package main

import (
	"flag"
	"fmt"
	"os"

	"userv6"
	"userv6/internal/core"
	"userv6/internal/dataset"
	"userv6/internal/netaddr"
	"userv6/internal/report"
	"userv6/internal/sampling"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "gen":
		runGen(args)
	case "info":
		runInfo(args)
	case "analyze":
		runAnalyze(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: userv6gen <gen|info|analyze> [flags]

  gen      generate a telemetry dataset file
  info     summarize a dataset file
  analyze  run the user/IP-centric analyzers over a dataset file`)
	os.Exit(2)
}

func runGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	users := fs.Int("users", 20_000, "population size")
	seed := fs.Uint64("seed", 1, "scenario seed")
	from := fs.Int("from", int(simtime.AnalysisWeekStart), "first day index")
	to := fs.Int("to", int(simtime.AnalysisWeekEnd), "last day index")
	format := fs.String("format", "dataset", "dataset (headered), binary, or jsonl")
	out := fs.String("o", "telemetry.uv6", "output path")
	benignOnly := fs.Bool("benign-only", false, "omit abusive accounts")
	sampleSpec := fs.String("sample", "all", "sampler: all, user:R, addr:R, prefixL:R")
	fs.Parse(args)

	sampler, err := sampling.Parse(*sampleSpec, *seed)
	if err != nil {
		fatal(err)
	}

	sim := userv6.NewSim(userv6.DefaultScenario(*users).WithSeed(*seed))

	if *format == "dataset" {
		meta := dataset.Meta{
			Seed: *seed, Users: *users, FromDay: *from, ToDay: *to,
			Sample: *sampleSpec, BenignOnly: *benignOnly,
		}
		w, err := dataset.Create(*out, meta)
		if err != nil {
			fatal(err)
		}
		emit, errp := w.Emit()
		emit = sampling.Filter(sampler, emit)
		if *benignOnly {
			sim.Benign.Generate(simtime.Day(*from), simtime.Day(*to), emit)
		} else {
			sim.Generate(simtime.Day(*from), simtime.Day(*to), emit)
		}
		if *errp != nil {
			fatal(*errp)
		}
		if err := w.Close(); err != nil {
			fatal(err)
		}
		st, _ := os.Stat(*out)
		fmt.Printf("wrote dataset (%d users, days %d-%d) to %s (%d bytes)\n",
			*users, *from, *to, *out, st.Size())
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var write func(telemetry.Observation) error
	var flush func() error
	switch *format {
	case "binary":
		w := telemetry.NewWriter(f)
		write, flush = w.Write, w.Flush
	case "jsonl":
		w := telemetry.NewJSONLWriter(f)
		write, flush = w.Write, w.Flush
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}

	n := 0
	var emit telemetry.EmitFunc = func(o telemetry.Observation) {
		if err := write(o); err != nil {
			fatal(err)
		}
		n++
	}
	emit = sampling.Filter(sampler, emit)
	if *benignOnly {
		sim.Benign.Generate(simtime.Day(*from), simtime.Day(*to), emit)
	} else {
		sim.Generate(simtime.Day(*from), simtime.Day(*to), emit)
	}
	if err := flush(); err != nil {
		fatal(err)
	}
	st, _ := f.Stat()
	fmt.Printf("wrote %d observations (%d users, days %d-%d, %s) to %s (%d bytes)\n",
		n, *users, *from, *to, *format, *out, st.Size())
}

func runInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "telemetry.uv6", "input path (binary format)")
	fs.Parse(args)

	r := openReader(*in)
	var (
		n, abusive int
		v4, v6     int
		users      = map[uint64]struct{}{}
		minD, maxD = simtime.Day(1 << 30), simtime.Day(-1)
		requests   uint64
	)
	err := r.ForEach(func(o telemetry.Observation) {
		n++
		if o.Abusive {
			abusive++
		}
		if o.Addr.Is6() {
			v6++
		} else {
			v4++
		}
		users[o.UserID] = struct{}{}
		if o.Day < minD {
			minD = o.Day
		}
		if o.Day > maxD {
			maxD = o.Day
		}
		requests += uint64(o.Requests)
	})
	if err != nil {
		fatal(err)
	}
	report.NewTable("metric", "value").
		Row("observations", n).
		Row("abusive observations", abusive).
		Row("IPv4 / IPv6 observations", fmt.Sprintf("%d / %d", v4, v6)).
		Row("distinct entities", len(users)).
		Row("days", fmt.Sprintf("%d..%d", int(minD), int(maxD))).
		Row("total requests", requests).
		Write(os.Stdout)
}

func runAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("i", "telemetry.uv6", "input path (binary format)")
	fs.Parse(args)

	r := openReader(*in)
	uc := core.NewUserCentricFor(false)
	ic4 := core.NewIPCentric(netaddr.IPv4, 32)
	ic6 := core.NewIPCentric(netaddr.IPv6, 128)
	ic64 := core.NewIPCentric(netaddr.IPv6, 64)
	if err := r.ForEach(func(o telemetry.Observation) {
		uc.Observe(o)
		ic4.Observe(o)
		ic6.Observe(o)
		ic64.Observe(o)
	}); err != nil {
		fatal(err)
	}

	h4, h6 := uc.AddrsPerUser(netaddr.IPv4), uc.AddrsPerUser(netaddr.IPv6)
	report.NewTable("metric", "IPv4", "IPv6").
		Row("users", int(h4.N()), int(h6.N())).
		Row("median addrs/user", h4.Median(), h6.Median()).
		Row("single-addr users", report.Percent(h4.CDFAt(1)), report.Percent(h6.CDFAt(1))).
		Row("addresses seen", ic4.Prefixes(), ic6.Prefixes()).
		Row("single-user addrs", report.Percent(ic4.UsersPerPrefix().CDFAt(1)), report.Percent(ic6.UsersPerPrefix().CDFAt(1))).
		Write(os.Stdout)
	fmt.Printf("\nIPv6 /64s: %d (single-user: %s)\n",
		ic64.Prefixes(), report.Percent(ic64.UsersPerPrefix().CDFAt(1)))
	pat := uc.AddrPatterns()
	fmt.Printf("EUI-64 users: %s; transition-protocol users: %s\n",
		report.Percent(pat.EUI64Share), report.Percent(pat.TeredoShare+pat.SixToFourShare))
}

// streamSource abstracts dataset and raw binary inputs.
type streamSource interface {
	ForEach(telemetry.EmitFunc) error
}

// openReader opens a dataset file (headered) or a raw binary stream,
// printing the dataset metadata when available.
func openReader(path string) streamSource {
	if r, err := dataset.Open(path); err == nil {
		m := r.Meta()
		fmt.Printf("dataset: seed=%d users=%d days=%d..%d sample=%s records=%d\n\n",
			m.Seed, m.Users, m.FromDay, m.ToDay, m.Sample, m.Records)
		return r
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	return telemetry.NewReader(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "userv6gen:", err)
	os.Exit(1)
}
