package main

import (
	"fmt"
	"os"

	"userv6"
	"userv6/internal/report"
)

func init() {
	experimentOrder = append(experimentOrder, "scrapers", "hijacks", "pandemic")
	experiments["scrapers"] = experiment{"logged-out scraper defense (§8 future work)", runScrapers}
	experiments["hijacks"] = experiment{"account-hijack detection (§8 future work)", runHijacks}
	experiments["pandemic"] = experiment{"Appendix A pre/post-lockdown robustness", runPandemic}
}

func runScrapers(sim *userv6.Sim) {
	t := report.NewTable("granularity", "budget/day", "scraper volume blocked", "benign volume lost")
	for _, r := range sim.ScraperDefense([]uint64{100, 200, 500, 1000}) {
		t.Row(r.Name, r.CapPerDay, report.Percent(r.ScraperBlockShare), report.Percent(r.BenignLossShare))
	}
	t.Write(os.Stdout)
	fmt.Println("\nIID-hopping defeats per-address caps; /64 budgets recover the lost volume.")
}

func runHijacks(sim *userv6.Sim) {
	r := sim.DetectHijacks()
	report.NewTable("metric", "value").
		Row("compromised accounts", r.Victims).
		Row("detected by IP novelty", r.Detected).
		Row("recall", report.Percent(r.Recall)).
		Row("false alarms", r.FalseAlarms).
		Row("false-alarm share of users", report.Percent(r.FalseAlarmShare)).
		Write(os.Stdout)
	fmt.Println("\ndetector: established account suddenly on hosting/proxy space.")
}

func runPandemic(sim *userv6.Sim) {
	c := sim.ComparePandemic()
	t := report.NewTable("metric", "pre-lockdown (Feb)", "lockdown (Apr)")
	t.Row("median v4 addrs/user", c.Pre.MedianV4Addrs, c.Lockdown.MedianV4Addrs)
	t.Row("median v6 addrs/user", c.Pre.MedianV6Addrs, c.Lockdown.MedianV6Addrs)
	t.Row("single-/64 users", report.Percent(c.Pre.SingleSlash64Share), report.Percent(c.Lockdown.SingleSlash64Share))
	t.Row("day-fresh v4 pairs", report.Percent(c.Pre.FreshV4), report.Percent(c.Lockdown.FreshV4))
	t.Row("day-fresh v6 pairs", report.Percent(c.Pre.FreshV6), report.Percent(c.Lockdown.FreshV6))
	t.Write(os.Stdout)
	fmt.Println("\nshifts are small: the study's conclusions hold in both regimes (Appendix A).")
}
