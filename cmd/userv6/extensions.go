package main

import (
	"fmt"
	"os"

	"userv6"
	"userv6/internal/netaddr"
	"userv6/internal/report"
)

func init() {
	experimentOrder = append(experimentOrder,
		"segments", "blocklist-sweep", "ratelimit-sweep", "sketched", "ttlcurve")
	experiments["segments"] = experiment{"per-network-type behavior (§8 future work)", runSegments}
	experiments["blocklist-sweep"] = experiment{"multi-day blocklist policies with TTLs", runBlocklistSweep}
	experiments["ratelimit-sweep"] = experiment{"per-prefix entity caps vs collateral", runRateLimitSweep}
	experiments["sketched"] = experiment{"fixed-memory heavy-hitter pipeline vs exact", runSketched}
	experiments["ttlcurve"] = experiment{"indicator recall decay by age", runTTLCurve}
}

func runSegments(sim *userv6.Sim) {
	t := report.NewTable("network kind", "users", "v6 users", "v6 requests", "med v4 addrs", "med v6 addrs")
	for _, r := range sim.Segments() {
		t.Row(r.Kind.String(), r.Users, report.Percent(r.V6UserShare), report.Percent(r.V6ReqShare),
			r.MedianV4Addrs, r.MedianV6Addrs)
	}
	t.Write(os.Stdout)
}

func runBlocklistSweep(sim *userv6.Sim) {
	t := report.NewTable("policy", "TPR", "FPR", "final list size")
	for _, r := range sim.BlocklistSweep(userv6.DefaultBlocklistPolicies()) {
		t.Row(r.Policy.Name, report.Percent(r.TPR), report.Percent(r.FPR), r.FinalListSize)
	}
	t.Write(os.Stdout)
}

func runRateLimitSweep(sim *userv6.Sim) {
	caps := []int{1, 2, 3, 5, 10, 50}
	for _, g := range []struct {
		name   string
		fam    netaddr.Family
		length int
	}{
		{"IPv6 /128", netaddr.IPv6, 128},
		{"IPv6 /64", netaddr.IPv6, 64},
		{"IPv4 addr", netaddr.IPv4, 32},
	} {
		fmt.Printf("-- %s --\n", g.name)
		t := report.NewTable("cap", "benign throttled", "abusive throttled")
		for _, o := range sim.RateLimitSweep(g.fam, g.length, caps) {
			t.Row(o.Cap, report.Percent(o.BenignShare), report.Percent(o.AbusiveShare))
		}
		t.Write(os.Stdout)
		fmt.Println()
	}
}

func runSketched(sim *userv6.Sim) {
	r := sim.SketchedOutliers(128)
	fmt.Printf("prefix cardinality: sketched %.0f vs exact %d\n", r.PrefixEstimate, r.ExactPrefixes)
	fmt.Printf("heavy-hitter recall vs exact top-10: %s; top estimate error: %s\n\n",
		report.Percent(r.HeavyRecall), report.Percent(r.TopError))
	t := report.NewTable("#", "prefix", "est users", "sightings")
	for i, h := range r.Top {
		t.Row(i+1, h.Prefix.String(), fmt.Sprintf("%.0f", h.Users), h.Count)
	}
	t.Write(os.Stdout)
}

func runTTLCurve(sim *userv6.Sim) {
	const horizon = 5
	v128 := sim.TTLRecallCurve(netaddr.IPv6, 128, horizon)
	v64 := sim.TTLRecallCurve(netaddr.IPv6, 64, horizon)
	v4 := sim.TTLRecallCurve(netaddr.IPv4, 32, horizon)
	t := report.NewTable("age (days)", "IPv6 /128", "IPv6 /64", "IPv4")
	for k := 0; k < horizon; k++ {
		t.Row(k+1, report.Percent(v128[k]), report.Percent(v64[k]), report.Percent(v4[k]))
	}
	t.Write(os.Stdout)
	fmt.Println("\nindicator value decays fastest at /128; /64 buys roughly one extra day.")
}

func init() {
	experimentOrder = append(experimentOrder, "churn")
	experiments["churn"] = experiment{"causes of new IPv6 addresses (§8 future work)", runChurn}
}

func runChurn(sim *userv6.Sim) {
	b := sim.ChurnReasons()
	report.NewTable("cause", "new pairs", "share").
		Row("IID rotation (same /64)", b.IIDRotation, report.Percent(b.Share(0))).
		Row("subnet move (same /44)", b.SubnetMove, report.Percent(b.Share(1))).
		Row("network switch", b.NetworkSwitch, report.Percent(b.Share(2))).
		Write(os.Stdout)
	fmt.Printf("\n%d new (user, IPv6 address) pairs attributed\n", b.Total)
}

func init() {
	experimentOrder = append(experimentOrder, "fig12")
	experiments["fig12"] = experiment{"per-country IPv6 ratios (choropleth as table)", runFig12}
}

func runFig12(sim *userv6.Sim) {
	t := report.NewTable("country", "v6 user ratio", "users")
	for _, row := range sim.CountryRatios() {
		t.Row(row.Country, report.Percent(row.Ratio), row.Users)
	}
	t.Write(os.Stdout)
}
