// Command userv6 regenerates every table and figure of "Towards A
// User-Level Understanding of IPv6 Behavior" (IMC 2020) on the synthetic
// substrate, printing the same rows and series the paper reports.
//
// Usage:
//
//	userv6 [-users N] [-seed S] <experiment>
//
// Experiments: fig1 table1 table2 clientaddr fig2 fig3 fig4 fig5 fig6
// fig7 fig8 fig9 fig10 fig11 outliers advise all
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"userv6"
	"userv6/internal/report"
	"userv6/internal/simtime"
	"userv6/internal/stats"
)

func main() {
	users := flag.Int("users", 40_000, "benign population size")
	seed := flag.Uint64("seed", 1, "scenario seed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: userv6 [-users N] [-seed S] <experiment>\n\nexperiments:\n")
		for _, e := range experimentOrder {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", e, experiments[e].desc)
		}
		fmt.Fprintln(os.Stderr, "  all         run every experiment")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)

	sim := userv6.NewSim(userv6.DefaultScenario(*users).WithSeed(*seed))
	fmt.Printf("# userv6: %d users, seed %d (reference scale %.2f)\n\n", *users, *seed, sim.Scenario.Scale())

	if name == "all" {
		for _, e := range experimentOrder {
			fmt.Printf("== %s: %s ==\n", e, experiments[e].desc)
			experiments[e].run(sim)
			fmt.Println()
		}
		return
	}
	exp, ok := experiments[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
		flag.Usage()
		os.Exit(2)
	}
	exp.run(sim)
}

type experiment struct {
	desc string
	run  func(*userv6.Sim)
}

var experimentOrder = []string{
	"fig1", "table1", "table2", "clientaddr", "fig2", "fig3", "fig4",
	"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "outliers",
	"advise",
}

var experiments = map[string]experiment{
	"fig1":       {"daily IPv6 share of users and requests", runFig1},
	"table1":     {"top ASNs by IPv6 user ratio", runTable1},
	"table2":     {"top countries by IPv6 user ratio, Jan vs Apr", runTable2},
	"clientaddr": {"§4.4 transition protocols and IID structure", runClientAddr},
	"fig2":       {"addresses per user (1 day / 7 days)", runFig2},
	"fig3":       {"addresses per abusive account (1 day)", runFig3},
	"fig4":       {"prefixes spanned per entity vs prefix length", runFig4},
	"fig5":       {"address lifespans for users", runFig5},
	"fig6":       {"prefix lifespans vs prefix length", runFig6},
	"fig7":       {"users per address (day / week)", runFig7},
	"fig8":       {"populations on addresses with abusive accounts", runFig8},
	"fig9":       {"users per IPv6 prefix by length", runFig9},
	"fig10":      {"abusive/benign populations per prefix", runFig10},
	"fig11":      {"actioning ROC curves (day n -> n+1)", runFig11},
	"outliers":   {"RQ3 outlier summary", runOutliers},
	"advise":     {"§7.2 policy advisor", runAdvise},
}

func runFig1(sim *userv6.Sim) {
	days := sim.Fig1(0, simtime.StudyDays-1)
	t := report.NewTable("day", "date", "weekend", "phase", "userV6", "reqV6")
	for _, d := range days {
		if int(d.Day)%7 != 0 && !d.Day.IsWeekend() && d.Day != simtime.StudyDays-1 {
			continue // print a readable subset: weekly anchors + weekends
		}
		t.Row(int(d.Day), d.Day.Date().Format("Jan 02"), d.Day.IsWeekend(),
			simtime.PhaseOf(d.Day).String(), report.Percent(d.UserShare), report.Percent(d.ReqShare))
	}
	t.Write(os.Stdout)

	userSeries := report.Series{Name: "users on IPv6"}
	reqSeries := report.Series{Name: "requests on IPv6"}
	for _, d := range days {
		userSeries.Points = append(userSeries.Points, stats.Point{X: float64(d.Day), Y: d.UserShare})
		reqSeries.Points = append(reqSeries.Points, stats.Point{X: float64(d.Day), Y: d.ReqShare})
	}
	fmt.Println()
	report.Plot(os.Stdout, 72, 14, userSeries, reqSeries)
}

func runTable1(sim *userv6.Sim) {
	from, to := userv6.AnalysisWeek()
	r := sim.Table1(from, to)
	t := report.NewTable("#", "ASN", "name", "country", "users", "v6 ratio", "95% CI")
	for i, row := range r.Rows {
		lo, hi := stats.WilsonInterval(uint64(float64(row.Users)*row.Ratio+0.5), uint64(row.Users))
		t.Row(i+1, row.ASN, row.Name, row.Country, row.Users, row.Ratio,
			fmt.Sprintf("[%.2f, %.2f]", lo, hi))
	}
	t.Write(os.Stdout)
	fmt.Printf("\nASNs with >%d users: %d; zero IPv6: %s; under 10%%: %s\n",
		r.MinUsersThreshold, r.QualifyingASNs, report.Percent(r.ZeroShare), report.Percent(r.UnderTenShare))
}

func runTable2(sim *userv6.Sim) {
	r := sim.Table2()
	t := report.NewTable("#", "country (Jan)", "ratio", "country (Apr)", "ratio")
	for i := 0; i < len(r.January) || i < len(r.April); i++ {
		var jc, ac string
		var jr, ar any = "", ""
		if i < len(r.January) {
			jc, jr = r.January[i].Country, r.January[i].Ratio
		}
		if i < len(r.April) {
			ac, ar = r.April[i].Country, r.April[i].Ratio
		}
		t.Row(i+1, jc, jr, ac, ar)
	}
	t.Write(os.Stdout)
	fmt.Printf("\nGermany (lockdown shift): %s -> %s\nGreece (enterprise-v6 loss): %s -> %s\n",
		report.Percent(r.GermanyJan), report.Percent(r.GermanyApr),
		report.Percent(r.GreeceJan), report.Percent(r.GreeceApr))
}

func runClientAddr(sim *userv6.Sim) {
	p := sim.ClientAddrPatterns()
	report.NewTable("metric", "value").
		Row("IPv6 users", p.V6Users).
		Row("Teredo share", report.Percent(p.TeredoShare)).
		Row("6to4 share", report.Percent(p.SixToFourShare)).
		Row("EUI-64 (MAC) share", report.Percent(p.EUI64Share)).
		Row("EUI-64 IID reuse", report.Percent(p.EUI64IIDReuse)).
		Row("structured-IID share", report.Percent(p.StructuredShare)).
		Row("random-IID share", report.Percent(p.RandomIIDShare)).
		Write(os.Stdout)
}

func addrsTable(r userv6.AddrsPerUserResult, entity string) {
	t := report.NewTable("window", "family", "N("+entity+")", "median", "P(=1)", "P(>5)", "max")
	add := func(window, fam string, h *stats.IntHist) {
		t.Row(window, fam, int(h.N()), h.Median(), h.CDFAt(1), h.FracAbove(5), h.Max())
	}
	add("1 day", "IPv4", r.DayV4)
	add("1 day", "IPv6", r.DayV6)
	add("7 days", "IPv4", r.WeekV4)
	add("7 days", "IPv6", r.WeekV6)
	t.Write(os.Stdout)
	fmt.Println()
	report.Plot(os.Stdout, 64, 12,
		report.CDFSeries("IPv4 1d", r.DayV4, 30),
		report.CDFSeries("IPv6 1d", r.DayV6, 30),
		report.CDFSeries("IPv4 7d", r.WeekV4, 30),
		report.CDFSeries("IPv6 7d", r.WeekV6, 30),
	)
}

func runFig2(sim *userv6.Sim) { addrsTable(sim.Fig2(), "users") }
func runFig3(sim *userv6.Sim) { addrsTable(sim.Fig3(), "accounts") }

func runFig4(sim *userv6.Sim) {
	r := sim.Fig4()
	t := report.NewTable("prefix", "users =1", "users <=2", "users <=3", "AA =1", "AA <=2", "AA <=3")
	for i := range r.Users {
		u, a := r.Users[i], r.Abusive[i]
		t.Row(fmt.Sprintf("/%d", u.Length), u.One, u.AtMost2, u.AtMost3, a.One, a.AtMost2, a.AtMost3)
	}
	t.Write(os.Stdout)
}

func runFig5(sim *userv6.Sim) {
	r := sim.Fig5And6(false)
	t := report.NewTable("curve", "pairs", "age=0", "age>7d", "age>=27d")
	t.Row("across v4 pairs", int(r.AgeV4.N()), r.AgeV4.CDFAt(0), r.AgeV4.FracAbove(7), r.AgeV4.FracAbove(26))
	t.Row("across v6 pairs", int(r.AgeV6.N()), r.AgeV6.CDFAt(0), r.AgeV6.FracAbove(7), r.AgeV6.FracAbove(26))
	t.Row("v4 user median", int(r.MedianV4.N()), r.MedianV4.CDFAt(0), r.MedianV4.FracAbove(7), r.MedianV4.FracAbove(26))
	t.Row("v6 user median", int(r.MedianV6.N()), r.MedianV6.CDFAt(0), r.MedianV6.FracAbove(7), r.MedianV6.FracAbove(26))
	t.Write(os.Stdout)
	fmt.Println()
	report.Plot(os.Stdout, 64, 12,
		report.CDFSeries("v6 pairs", r.AgeV6, 27),
		report.CDFSeries("v4 pairs", r.AgeV4, 27),
	)
}

func runFig6(sim *userv6.Sim) {
	for _, pop := range []struct {
		name    string
		abusive bool
	}{{"users", false}, {"abusive accounts", true}} {
		r := sim.Fig5And6(pop.abusive)
		fmt.Printf("-- %s --\n", pop.name)
		t := report.NewTable("family", "prefix", "pairs", "<=1d", "<=2d", "<=3d")
		for _, fs := range r.FreshV4 {
			t.Row("IPv4", fmt.Sprintf("/%d", fs.Length), fs.Pairs, fs.Within1, fs.Within2, fs.Within3)
		}
		for _, fs := range r.FreshV6 {
			t.Row("IPv6", fmt.Sprintf("/%d", fs.Length), fs.Pairs, fs.Within1, fs.Within2, fs.Within3)
		}
		t.Write(os.Stdout)
	}
}

func runFig7(sim *userv6.Sim) {
	r := sim.IPCentricWeek()
	t := report.NewTable("window", "family", "addresses", "P(=1 user)", "P(<=2)", "max users")
	day4, day6 := r.DayV4.UsersPerPrefix(), r.DayV6.UsersPerPrefix()
	week4, week6 := r.V4.UsersPerPrefix(), r.V6[128].UsersPerPrefix()
	t.Row("1 day", "IPv4", r.DayV4.Prefixes(), day4.CDFAt(1), day4.CDFAt(2), day4.Max())
	t.Row("1 day", "IPv6", r.DayV6.Prefixes(), day6.CDFAt(1), day6.CDFAt(2), day6.Max())
	t.Row("7 days", "IPv4", r.V4.Prefixes(), week4.CDFAt(1), week4.CDFAt(2), week4.Max())
	t.Row("7 days", "IPv6", r.V6[128].Prefixes(), week6.CDFAt(1), week6.CDFAt(2), week6.Max())
	t.Write(os.Stdout)
}

func runFig8(sim *userv6.Sim) {
	r := sim.IPCentricWeek()
	t := report.NewTable("family", "AA addrs", "P(1 AA)", "P(0 benign)", "P(<=1 benign)", "P(>10 benign)")
	aa4, aa6 := r.V4.AbusivePerAbusivePrefix(), r.V6[128].AbusivePerAbusivePrefix()
	b4, b6 := r.V4.BenignPerAbusivePrefix(), r.V6[128].BenignPerAbusivePrefix()
	t.Row("IPv4", int(aa4.N()), aa4.CDFAt(1), b4.CDFAt(0), b4.CDFAt(1), b4.FracAbove(10))
	t.Row("IPv6", int(aa6.N()), aa6.CDFAt(1), b6.CDFAt(0), b6.CDFAt(1), b6.FracAbove(10))
	t.Write(os.Stdout)
}

func runFig9(sim *userv6.Sim) {
	r := sim.IPCentricWeek()
	t := report.NewTable("prefix", "prefixes", "P(=1 user)", "P(<=2)", "median", "max")
	lengths := append([]int(nil), userv6.Fig9Lengths...)
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	for _, l := range lengths {
		h := r.V6[l].UsersPerPrefix()
		t.Row(fmt.Sprintf("/%d", l), r.V6[l].Prefixes(), h.CDFAt(1), h.CDFAt(2), h.Median(), h.Max())
	}
	h4 := r.V4.UsersPerPrefix()
	t.Row("IPv4", r.V4.Prefixes(), h4.CDFAt(1), h4.CDFAt(2), h4.Median(), h4.Max())
	t.Write(os.Stdout)
}

func runFig10(sim *userv6.Sim) {
	r := sim.IPCentricWeek()
	t := report.NewTable("prefix", "AA prefixes", "P(1 AA)", "P(<=1 benign)", "P(>10 benign)")
	for _, l := range []int{128, 64, 56, 48} {
		aa := r.V6[l].AbusivePerAbusivePrefix()
		b := r.V6[l].BenignPerAbusivePrefix()
		t.Row(fmt.Sprintf("/%d", l), int(aa.N()), aa.CDFAt(1), b.CDFAt(1), b.FracAbove(10))
	}
	aa4, b4 := r.V4.AbusivePerAbusivePrefix(), r.V4.BenignPerAbusivePrefix()
	t.Row("IPv4", int(aa4.N()), aa4.CDFAt(1), b4.CDFAt(1), b4.FracAbove(10))
	t.Write(os.Stdout)
}

func runFig11(sim *userv6.Sim) {
	r := sim.Fig11()
	t := report.NewTable("granularity", "threshold", "TPR", "FPR")
	for _, g := range userv6.Fig11Granularities() {
		roc := r.Curves[g.Name]
		for _, th := range []float64{0, 0.1, 1.0} {
			if p, ok := roc.At(th); ok {
				t.Row(g.Name, th, p.TPR, p.FPR)
			}
		}
	}
	t.Write(os.Stdout)
	fmt.Println()
	series := make([]report.Series, 0, 4)
	for _, g := range userv6.Fig11Granularities() {
		series = append(series, report.ROCSeries(g.Name, r.Curves[g.Name]))
	}
	report.Plot(os.Stdout, 64, 14, series...)
	fmt.Println("\n(x axis: log10 FPR; y axis: TPR)")
	for _, g := range userv6.Fig11Granularities() {
		fmt.Printf("AUC %-5s %.3f\n", g.Name, r.Curves[g.Name].AUC())
	}
}

func runOutliers(sim *userv6.Sim) {
	r := sim.Outliers()
	report.NewTable("metric", "IPv4", "IPv6").
		Row(fmt.Sprintf("users with >%d addrs", r.HeavyUserThreshold), r.V4HeavyUsers, r.V6HeavyUsers).
		Row("max addrs per user", r.V4MaxAddrs, r.V6MaxAddrs).
		Row(fmt.Sprintf("addrs with >%d users", r.HeavyAddrThreshold), r.V4HeavyAddrs, r.V6HeavyAddrs).
		Row("max users per addr", r.V4MaxUsers, r.V6MaxUsers).
		Row("max users per /64", "-", r.V6Max64Users).
		Write(os.Stdout)
	c := r.V6Concentration
	fmt.Printf("\nheavy IPv6 addresses: %d, top ASN %d (%s, %s of heavy), %s structured IIDs, %d ASNs total\n",
		c.Heavy, c.TopASN, sim.World.ASNName(c.TopASN), report.Percent(c.TopASNShare),
		report.Percent(c.StructuredShare), c.ASNs)
}

func runAdvise(sim *userv6.Sim) {
	for _, tol := range []float64{0.0001, 0.001, 0.01} {
		a := sim.Advise(tol)
		fmt.Printf("-- FPR tolerance %s --\n", report.Percent(tol))
		report.NewTable("recommendation", "value").
			Row("blocklist granularity", fmt.Sprintf("/%d", a.BlocklistGranularity)).
			Row("blocklist TPR at tolerance", report.Percent(a.BlocklistTPR)).
			Row("blocklist TTL (days)", a.BlocklistTTLDays).
			Row("rate-limit users per v6 addr", a.RateLimitUsersPerV6Addr).
			Row("rate-limit v4-equivalent length", fmt.Sprintf("/%d", a.RateLimitV4EquivalentLength)).
			Row("blocklist v4-equivalent length", fmt.Sprintf("/%d", a.BlocklistV4EquivalentLength)).
			Row("v6 beats v4 at low FPR", a.V6BeatsV4BelowFPR).
			Row("threat-intel 1-day decay", report.Percent(a.ThreatIntelDecay)).
			Write(os.Stdout)
		fmt.Println()
	}
}
