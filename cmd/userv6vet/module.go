package main

// Module loading: userv6vet type-checks the whole module from source
// using only the standard library. Packages inside the module are
// parsed and checked here, in dependency order, so every unit sees
// fully-resolved types for its module-internal imports; everything
// else (the standard library — the module has no other dependencies)
// is resolved by go/importer's source-mode importer.
//
// Each directory yields up to three compilation units, mirroring the
// go tool's test build:
//
//   - the base package (non-test files) — cached for import resolution,
//   - the in-package test unit (base files + same-package _test.go
//     files), and
//   - the external test unit (the foo_test package).
//
// Rules see every unit; the driver keeps only _test.go-positioned
// diagnostics from test units so base-file findings are never
// reported twice.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked compilation unit.
type Package struct {
	// Path is the unit's import path (module path + directory).
	Path string
	// Dir is the absolute directory the unit's files live in.
	Dir string
	// Files holds the unit's parsed files, in deterministic order.
	Files []*ast.File
	// Types and Info are the go/types results for the unit.
	Types *types.Package
	Info  *types.Info
	// Test marks the in-package and external test units.
	Test bool
}

// Module is a loaded, fully type-checked module tree.
type Module struct {
	// Root is the absolute directory holding go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset positions every file in every unit.
	Fset *token.FileSet
	// Pkgs lists every unit: all base packages first (in dependency
	// order), then the test units.
	Pkgs []*Package
}

// RelPath returns a unit path relative to the module path ("." for
// the module root package). Rules scope themselves by these paths so
// fixtures under any module name exercise the same logic.
func (m *Module) RelPath(p *Package) string {
	if p.Path == m.Path {
		return "."
	}
	return strings.TrimPrefix(p.Path, m.Path+"/")
}

// The source-mode stdlib importer re-type-checks each standard
// library package it touches, which costs a second or two; one shared
// instance (and one shared FileSet) amortizes that across every
// loadModule call in a process — the fixture tests load many tiny
// modules and would otherwise re-check "os" and friends per fixture.
var (
	sharedMu   sync.Mutex
	sharedFset = token.NewFileSet()
	stdImport  = importer.ForCompiler(sharedFset, "source", nil)
)

// moduleImporter resolves module-internal imports from the units
// type-checked so far and defers everything else to the shared
// source importer.
type moduleImporter struct {
	module string
	cache  map[string]*types.Package
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.cache[path]; ok {
		return p, nil
	}
	if path == mi.module || strings.HasPrefix(path, mi.module+"/") {
		return nil, fmt.Errorf("module package %s not loaded (import cycle?)", path)
	}
	return stdImport.Import(path)
}

// parsedDir is one directory's files, pre-partitioned into units.
type parsedDir struct {
	dir      string
	path     string // import path
	base     []*ast.File
	inTest   []*ast.File // same-package _test.go files
	extTest  []*ast.File // package foo_test files
	imports  []string    // module-internal imports of the base files
	baseName string
}

// loadModule parses and type-checks every package under root, which
// must hold a go.mod. Directories named testdata or vendor, hidden
// directories, and nested modules (a subdirectory with its own
// go.mod) are skipped.
func loadModule(root string) (*Module, error) {
	sharedMu.Lock()
	defer sharedMu.Unlock()

	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{Root: root, Path: modPath, Fset: sharedFset}

	dirs, err := collectDirs(root)
	if err != nil {
		return nil, err
	}
	var pdirs []*parsedDir
	for _, dir := range dirs {
		pd, err := parseDir(m, dir)
		if err != nil {
			return nil, err
		}
		if pd != nil {
			pdirs = append(pdirs, pd)
		}
	}

	ordered, err := topoSort(pdirs)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{module: modPath, cache: map[string]*types.Package{}}
	// Base units first, in dependency order, feeding the import cache.
	for _, pd := range ordered {
		pkg, err := check(m, imp, pd.path, pd.dir, pd.base, false)
		if err != nil {
			return nil, err
		}
		imp.cache[pd.path] = pkg.Types
		m.Pkgs = append(m.Pkgs, pkg)
	}
	// Then the test units: every base package is now importable, so
	// order no longer matters. The in-package unit re-checks the base
	// files together with the _test.go files, exactly as `go test`
	// compiles them.
	for _, pd := range ordered {
		if len(pd.inTest) > 0 {
			files := append(append([]*ast.File{}, pd.base...), pd.inTest...)
			pkg, err := check(m, imp, pd.path, pd.dir, files, true)
			if err != nil {
				return nil, err
			}
			m.Pkgs = append(m.Pkgs, pkg)
		}
		if len(pd.extTest) > 0 {
			pkg, err := check(m, imp, pd.path+"_test", pd.dir, pd.extTest, true)
			if err != nil {
				return nil, err
			}
			m.Pkgs = append(m.Pkgs, pkg)
		}
	}
	return m, nil
}

// check type-checks one unit.
func check(m *Module, imp types.Importer, path, dir string, files []*ast.File, test bool) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, m.Fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, errs[0])
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info, Test: test}, nil
}

// parseDir parses one directory into a parsedDir, or nil when it has
// no buildable Go files.
func parseDir(m *Module, dir string) (*parsedDir, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	path := m.Path
	if rel != "." {
		path = m.Path + "/" + filepath.ToSlash(rel)
	}
	pd := &parsedDir{dir: dir, path: path}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		file, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkgName := file.Name.Name
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			if pd.baseName == "" {
				pd.baseName = pkgName
			}
			pd.base = append(pd.base, file)
			for _, spec := range file.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				if ip == m.Path || strings.HasPrefix(ip, m.Path+"/") {
					pd.imports = append(pd.imports, ip)
				}
			}
		case strings.HasSuffix(pkgName, "_test"):
			pd.extTest = append(pd.extTest, file)
		default:
			pd.inTest = append(pd.inTest, file)
		}
	}
	if len(pd.base) == 0 && len(pd.inTest) == 0 && len(pd.extTest) == 0 {
		return nil, nil
	}
	return pd, nil
}

// collectDirs walks root for package directories, skipping testdata,
// vendor, hidden directories, and nested modules.
func collectDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// topoSort orders base units so every module-internal import precedes
// its importer.
func topoSort(pdirs []*parsedDir) ([]*parsedDir, error) {
	byPath := make(map[string]*parsedDir, len(pdirs))
	for _, pd := range pdirs {
		byPath[pd.path] = pd
	}
	var (
		out     []*parsedDir
		state   = map[string]int{} // 0 unvisited, 1 in progress, 2 done
		visit   func(pd *parsedDir) error
		visitMu []string // active stack, for the cycle message
	)
	visit = func(pd *parsedDir) error {
		switch state[pd.path] {
		case 1:
			return fmt.Errorf("import cycle through %s (stack %v)", pd.path, visitMu)
		case 2:
			return nil
		}
		state[pd.path] = 1
		visitMu = append(visitMu, pd.path)
		for _, ip := range pd.imports {
			if dep, ok := byPath[ip]; ok && dep != pd {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		visitMu = visitMu[:len(visitMu)-1]
		state[pd.path] = 2
		out = append(out, pd)
		return nil
	}
	for _, pd := range pdirs {
		if err := visit(pd); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// readModulePath extracts the module path from a go.mod.
func readModulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("userv6vet: %w (run from inside a module or pass a module root)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("no module path in %s", path)
}
