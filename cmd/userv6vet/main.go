// Command userv6vet is the repo's static-analysis gate: a small
// go/ast + go/types pass framework enforcing the cross-cutting
// invariants the test suite cannot see locally — mutating file I/O
// flows through the internal/faultio seam, backoff sleeps stay
// ctx-aware via internal/retry, commutative-analyzer registrations
// carry a usable Merge, sentinel errors are matched with errors.Is,
// and sync.Pool Gets have Puts. Zero dependencies: module-internal
// packages are type-checked here and the standard library resolves
// through go/importer's source mode.
//
// Usage:
//
//	userv6vet [packages]
//
// Package arguments select the module to analyze (the module whose
// go.mod governs the named directory); analysis always covers the
// whole module, because the invariants are module-wide ("./..." and
// "." both mean the module around the working directory). Findings
// print as file:line:col: rule-name: message and any finding makes
// the exit status 1.
//
// Per-file suppression: a //userv6vet:ignore rule-name comment
// anywhere in a file silences that rule for the file. Unknown rule
// names and suppressions that no longer match any finding are
// themselves findings, so stale comments rot loudly, not silently.
// See docs/STATIC_ANALYSIS.md for the rule catalog and how to add a
// rule.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

func main() {
	list := flag.Bool("rules", false, "list the rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: userv6vet [-rules] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	rules := allRules()
	if *list {
		for _, r := range rules {
			fmt.Println(r.Name())
		}
		return
	}

	root, err := moduleRootFor(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "userv6vet:", err)
		os.Exit(2)
	}
	mod, err := loadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "userv6vet:", err)
		os.Exit(2)
	}
	diags := runRules(mod, rules)
	for _, d := range diags {
		fmt.Println(relToCwd(d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "userv6vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRootFor maps the package arguments ("./...", ".", a directory)
// to the enclosing module root: the nearest parent directory holding a
// go.mod. All arguments must land in the same module.
func moduleRootFor(args []string) (string, error) {
	if len(args) == 0 {
		args = []string{"."}
	}
	root := ""
	for _, arg := range args {
		dir := filepath.Clean(trimPattern(arg))
		r, err := findModuleRoot(dir)
		if err != nil {
			return "", err
		}
		if root == "" {
			root = r
		} else if root != r {
			return "", fmt.Errorf("arguments span two modules (%s and %s)", root, r)
		}
	}
	return root, nil
}

// trimPattern strips a trailing /... wildcard ("./..." -> ".").
func trimPattern(arg string) string {
	if arg == "..." {
		return "."
	}
	if len(arg) > 4 && arg[len(arg)-4:] == "/..." {
		return arg[:len(arg)-4]
	}
	return arg
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
		d = parent
	}
}

// relToCwd renders a diagnostic with a working-directory-relative
// file path when that is shorter, matching go vet's output style.
func relToCwd(d Diagnostic) string {
	if cwd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && len(rel) < len(d.Pos.Filename) {
			d.Pos.Filename = rel
		}
	}
	return d.String()
}
