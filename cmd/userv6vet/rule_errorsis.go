package main

// errors-is: sentinel errors (package-level `var ErrFoo = ...`) must
// be matched with errors.Is, never == or !=. The moment any layer
// wraps the error with fmt.Errorf("...: %w", err) — which the
// dataset/merge/salvage stack does freely — an equality test silently
// stops matching and a tolerant path turns into a hard failure, or
// vice versa. The rule applies to test files too: an assertion that
// breaks under wrapping is a refactor landmine. io.EOF comparisons
// are untouched (the name carries no Err prefix, and the io.Reader
// contract hands EOF back unwrapped by convention).

import (
	"go/ast"
	"go/token"
	"go/types"
	"unicode"
)

type errorsIsRule struct{}

func (errorsIsRule) Name() string { return "errors-is" }

func (r errorsIsRule) Check(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			v := sentinelVar(info, bin.X)
			if v == nil {
				v = sentinelVar(info, bin.Y)
			}
			if v != nil {
				diags = append(diags, pass.Diag(r.Name(), bin.Pos(),
					"%s compared with %s breaks under error wrapping; use errors.Is(err, %s)",
					v.Name(), bin.Op, v.Name()))
			}
			return true
		})
	}
	return diags
}

// sentinelVar resolves expr to a package-level error variable whose
// name starts with Err, or nil.
func sentinelVar(info *types.Info, expr ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	name := v.Name()
	// The Err prefix per Go convention: "ErrFoo", not "Errors" or
	// "ErrorKind" (the char after Err must not be lowercase).
	if len(name) < 4 || name[:3] != "Err" || unicode.IsLower(rune(name[3])) {
		return nil
	}
	if !implementsError(v.Type()) {
		return nil
	}
	return v
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return types.Implements(t, errorIface)
}
