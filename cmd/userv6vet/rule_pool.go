package main

// pool-discipline: a sync.Pool.Get with no matching Put leaks the
// pooled object — the pool drains under load and every "hit" becomes
// a fresh allocation, which defeats the reason the hot paths
// (LZ tables, delta scratch buffers, pipeline batches) pool at all.
// The rule flags Get calls in functions that contain no Put on any
// path. Two shapes are recognized as transferring Put responsibility
// elsewhere and exempted:
//
//   - the function Puts somewhere (including inside a defer or a
//     nested function literal — path-sensitivity is approximated by
//     presence);
//   - the Get result is returned to the caller (directly, or via a
//     variable that appears in a return statement), the accessor
//     shape dataset's pools and the pipeline's batch() use: the
//     caller owns the object and its Put.

import (
	"go/ast"
	"go/token"
	"go/types"
)

type poolRule struct{}

func (poolRule) Name() string { return "pool-discipline" }

func (r poolRule) Check(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pass.Pkg.Files {
		if pass.FileIsTest(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, r.checkFunc(pass, fd)...)
		}
	}
	return diags
}

func (r poolRule) checkFunc(pass *Pass, fd *ast.FuncDecl) []Diagnostic {
	info := pass.Pkg.Info
	var (
		gets    []*ast.CallExpr
		putSeen bool
		returns []*ast.ReturnStmt
	)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch poolMethod(info, n) {
			case "Get":
				gets = append(gets, n)
			case "Put":
				putSeen = true
			}
		case *ast.ReturnStmt:
			returns = append(returns, n)
		}
		return true
	})
	if len(gets) == 0 || putSeen {
		return nil
	}
	var diags []Diagnostic
	for _, get := range gets {
		if getEscapesViaReturn(info, fd.Body, get, returns) {
			continue
		}
		diags = append(diags, pass.Diag(r.Name(), get.Pos(),
			"sync.Pool.Get with no Put on any return path leaks the pooled object (Put it, return it to the caller, or move the Put here)"))
	}
	return diags
}

// poolMethod returns "Get"/"Put" when call invokes the corresponding
// sync.Pool method, else "".
func poolMethod(info *types.Info, call *ast.CallExpr) string {
	fn := calledFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	if fn.Name() != "Get" && fn.Name() != "Put" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Name() != "Pool" {
		return ""
	}
	return fn.Name()
}

// getEscapesViaReturn reports whether the Get result itself reaches a
// return statement: the returned expression is the Get call, or a
// variable the call was assigned to, possibly through a chain of
// derefs/slices/field selections/type assertions. Merely mentioning
// the variable inside a wider expression (return len(*b)) does not
// hand the object to the caller.
func getEscapesViaReturn(info *types.Info, body *ast.BlockStmt, get *ast.CallExpr, returns []*ast.ReturnStmt) bool {
	// Objects the Get result is bound to, from the assignment whose
	// RHS holds the call.
	var bound []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		rhsHasGet := false
		for _, rhs := range asg.Rhs {
			if containsNode(rhs, get) {
				rhsHasGet = true
				break
			}
		}
		if !rhsHasGet {
			return true
		}
		for _, lhs := range asg.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					bound = append(bound, obj)
				} else if obj := info.Uses[id]; obj != nil {
					bound = append(bound, obj)
				}
			}
		}
		return true
	})
	for _, ret := range returns {
		for _, res := range ret.Results {
			if exprYieldsGet(info, res, get, bound) {
				return true
			}
		}
	}
	return false
}

// exprYieldsGet reports whether e evaluates to the pooled object:
// the Get call or a bound variable, unwrapped through the value-
// preserving layers (deref, address-of, slice, index, field,
// type assertion, parens).
func exprYieldsGet(info *types.Info, e ast.Expr, get *ast.CallExpr, bound []types.Object) bool {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return false
			}
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		case *ast.CallExpr:
			return v == get
		case *ast.Ident:
			obj := info.Uses[v]
			for _, b := range bound {
				if obj == b {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
}

// containsNode reports whether node target occurs within root.
func containsNode(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
