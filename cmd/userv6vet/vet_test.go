package main

// Golden-fixture tests, analysistest-style but hand-rolled: each
// directory under testdata/src is a tiny self-contained module named
// after the rule it exercises, and every expected finding is marked
// on its line with a
//
//	// want `regex`
//
// comment. The harness loads the fixture module, runs the full rule
// suite over it, and demands an exact match in both directions: every
// diagnostic must land on a line with a matching want, and every want
// must be consumed. Flipping any fixture line — deleting a violation
// or adding one — fails the test.
//
// TestRealTreeClean is the self-check: the repo this tool ships in
// must satisfy its own invariants.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRe = regexp.MustCompile("// want `([^`]+)`")

type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, root string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regex: %v", path, line, err)
				}
				abs, err := filepath.Abs(path)
				if err != nil {
					return err
				}
				wants = append(wants, &want{file: abs, line: line, pattern: re})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func TestFixtures(t *testing.T) {
	ents, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("no fixtures under testdata/src")
	}
	ruleNames := map[string]bool{suppressRule: true}
	for _, r := range allRules() {
		ruleNames[r.Name()] = true
	}
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		t.Run(ent.Name(), func(t *testing.T) {
			if !ruleNames[ent.Name()] {
				t.Fatalf("fixture %q does not name a rule (have %v)", ent.Name(), ruleNames)
			}
			dir := filepath.Join("testdata", "src", ent.Name())
			mod, err := loadModule(dir)
			if err != nil {
				t.Fatal(err)
			}
			diags := runRules(mod, allRules())
			wants := collectWants(t, dir)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no // want expectations", ent.Name())
			}
			for _, d := range diags {
				if !claim(wants, d) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.pattern)
				}
			}
		})
	}
}

// claim marks the first unconsumed want matching d and reports
// whether one existed. Wants match on file, line, and a regex over
// "rule: message".
func claim(wants []*want, d Diagnostic) bool {
	text := d.Rule + ": " + d.Message
	for _, w := range wants {
		if w.matched || w.line != d.Pos.Line || w.file != d.Pos.Filename {
			continue
		}
		if w.pattern.MatchString(text) {
			w.matched = true
			return true
		}
	}
	return false
}

// TestRealTreeClean asserts the repository itself passes its own
// lint gate: zero findings over every package of the module,
// suppressions included. If this fails, either fix the finding or —
// when the code is right and the rule's approximation is wrong —
// add a //userv6vet:ignore with a justification and adjust the rule's
// fixture to cover the pattern.
func TestRealTreeClean(t *testing.T) {
	mod, err := loadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "userv6" {
		t.Fatalf("loaded module %q, want userv6 (wrong root?)", mod.Path)
	}
	if len(mod.Pkgs) < 20 {
		t.Fatalf("loaded only %d units — the walk lost packages", len(mod.Pkgs))
	}
	diags := runRules(mod, allRules())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestRuleNamesUniqueAndStable(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range allRules() {
		name := r.Name()
		if seen[name] {
			t.Errorf("duplicate rule name %q", name)
		}
		seen[name] = true
		if name != strings.ToLower(name) || strings.ContainsAny(name, " \t") {
			t.Errorf("rule name %q is not kebab-case", name)
		}
		if name == suppressRule {
			t.Errorf("rule name %q collides with the driver's suppression findings", name)
		}
	}
	for _, expect := range []string{"faultio-seam", "ctx-sleep", "commutative-contract", "errors-is", "pool-discipline"} {
		if !seen[expect] {
			t.Errorf("shipped rule %q missing from allRules", expect)
		}
	}
}
