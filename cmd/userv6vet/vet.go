package main

// The pass framework: a Rule inspects one type-checked unit at a time
// and returns diagnostics; the driver runs every rule over every unit,
// applies per-file suppression comments, and reports findings as
// file:line:col: rule-name: message.
//
// Adding a rule is three steps (docs/STATIC_ANALYSIS.md walks through
// them): implement Rule, add the value to allRules, and drop a fixture
// package under testdata/src/<rule-name>/ with // want expectations.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Pass is the per-unit context handed to each rule: the parsed files,
// the go/types results, the unit's import path, and the whole module
// for rules that need cross-package facts (commutative-contract scans
// every unit for registrations before judging one).
type Pass struct {
	Module *Module
	Pkg    *Package
}

// Fset returns the position table for the pass's files.
func (p *Pass) Fset() *token.FileSet { return p.Module.Fset }

// RelPath returns the unit's module-relative import path, the key
// rules scope themselves by.
func (p *Pass) RelPath() string { return p.Module.RelPath(p.Pkg) }

// FileIsTest reports whether f is a _test.go file.
func (p *Pass) FileIsTest(f *ast.File) bool {
	return strings.HasSuffix(p.Fset().Position(f.Pos()).Filename, "_test.go")
}

// Diag constructs a diagnostic for the rule at pos.
func (p *Pass) Diag(rule string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: p.Fset().Position(pos), Rule: rule, Message: fmt.Sprintf(format, args...)}
}

// Rule is one invariant check.
type Rule interface {
	// Name is the identifier printed in findings and accepted by
	// //userv6vet:ignore comments.
	Name() string
	// Check inspects one unit and returns its findings.
	Check(*Pass) []Diagnostic
}

// allRules returns fresh instances of every shipped rule. Fresh per
// run so per-module caches (commutative-contract's registration scan)
// never leak across loads.
func allRules() []Rule {
	return []Rule{
		&faultioSeamRule{},
		&ctxSleepRule{},
		&commutativeRule{},
		&errorsIsRule{},
		&poolRule{},
	}
}

// suppressRule names the driver's own findings about suppression
// comments (unknown rule names, comments that no longer suppress
// anything). They are not themselves suppressible — a rotten
// suppression must be deleted, not ignored harder.
const suppressRule = "suppression"

const suppressPrefix = "userv6vet:ignore"

// runRules applies rules to every unit of m and returns the surviving
// diagnostics, sorted by position. Suppression comments of the form
//
//	//userv6vet:ignore rule-a,rule-b
//
// silence the named rules for the whole file they appear in; a
// comment naming an unknown rule, or one whose rules produced no
// findings in that file, is itself reported (that is what keeps the
// nightly lint run honest about suppression rot).
func runRules(m *Module, rules []Rule) []Diagnostic {
	known := map[string]bool{}
	for _, r := range rules {
		known[r.Name()] = true
	}

	var diags []Diagnostic
	for _, pkg := range m.Pkgs {
		pass := &Pass{Module: m, Pkg: pkg}
		for _, r := range rules {
			for _, d := range r.Check(pass) {
				// Test units re-check the base files; keep only what is
				// positioned in _test.go files so base findings surface
				// exactly once, from the base unit.
				if pkg.Test && !strings.HasSuffix(d.Pos.Filename, "_test.go") {
					continue
				}
				diags = append(diags, d)
			}
		}
	}

	// Per-file suppression. Directives are collected from every unit
	// (base files appear in two units; the map is idempotent).
	type directive struct {
		pos   token.Position
		rules []string
	}
	fileDirectives := map[string][]directive{}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			name := m.Fset.Position(f.Pos()).Filename
			if _, seen := fileDirectives[name]; seen {
				continue
			}
			dirs := []directive{}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					rest, ok := strings.CutPrefix(text, suppressPrefix)
					if !ok {
						continue
					}
					// Rule names, comma or space separated; an embedded
					// "//" starts trailing commentary (the place to
					// justify the suppression).
					var names []string
					for _, part := range strings.Fields(strings.ReplaceAll(rest, ",", " ")) {
						if strings.HasPrefix(part, "//") {
							break
						}
						names = append(names, part)
					}
					dirs = append(dirs, directive{pos: m.Fset.Position(c.Pos()), rules: names})
				}
			}
			fileDirectives[name] = dirs
		}
	}

	suppressed := map[string]map[string]bool{} // file -> rule -> suppressed
	var suppDiags []Diagnostic
	for file, dirs := range fileDirectives {
		for _, d := range dirs {
			if len(d.rules) == 0 {
				suppDiags = append(suppDiags, Diagnostic{Pos: d.pos, Rule: suppressRule,
					Message: "ignore directive names no rules (want //userv6vet:ignore rule-name)"})
				continue
			}
			for _, rn := range d.rules {
				if !known[rn] {
					suppDiags = append(suppDiags, Diagnostic{Pos: d.pos, Rule: suppressRule,
						Message: fmt.Sprintf("ignore directive names unknown rule %q", rn)})
					continue
				}
				if suppressed[file] == nil {
					suppressed[file] = map[string]bool{}
				}
				suppressed[file][rn] = true
			}
		}
	}

	kept := diags[:0]
	used := map[string]map[string]bool{} // file -> rule -> had findings
	for _, d := range diags {
		if used[d.Pos.Filename] == nil {
			used[d.Pos.Filename] = map[string]bool{}
		}
		used[d.Pos.Filename][d.Rule] = true
		if suppressed[d.Pos.Filename][d.Rule] {
			continue
		}
		kept = append(kept, d)
	}
	for file, dirs := range fileDirectives {
		for _, d := range dirs {
			for _, rn := range d.rules {
				if known[rn] && !used[file][rn] {
					suppDiags = append(suppDiags, Diagnostic{Pos: d.pos, Rule: suppressRule,
						Message: fmt.Sprintf("unused suppression: rule %q reports nothing in this file", rn)})
				}
			}
		}
	}
	kept = append(kept, suppDiags...)

	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	// Deduplicate: a base file can in principle yield the same finding
	// from two units.
	dedup := kept[:0]
	for i, d := range kept {
		if i > 0 && d == kept[i-1] {
			continue
		}
		dedup = append(dedup, d)
	}
	return dedup
}

// calledFunc resolves the function or method a call expression
// invokes, seeing through parentheses and generic instantiation.
// Returns nil for calls through function-typed variables, conversions,
// and builtins.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	case *ast.IndexExpr:
		id = instIdent(fn.X)
	case *ast.IndexListExpr:
		id = instIdent(fn.X)
	}
	if id == nil {
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

func instIdent(x ast.Expr) *ast.Ident {
	switch fn := ast.Unparen(x).(type) {
	case *ast.Ident:
		return fn
	case *ast.SelectorExpr:
		return fn.Sel
	}
	return nil
}

// relPathMatches reports whether a module-relative package path is, or
// ends with, target (so fixtures under any module name hit the same
// scoping as the real tree).
func relPathMatches(rel, target string) bool {
	return rel == target || strings.HasSuffix(rel, "/"+target)
}
